// Multiprog: the paper's methodological question (§3.1, Table 4) — what do
// you miss by simulating only application code? Runs the SPECInt95
// multiprogrammed workload twice on each processor: once with the
// behavioral OS, once in application-only mode where system calls and TLB
// traps complete instantly.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

func measure(proc core.ProcessorKind, appOnly bool) report.Snapshot {
	sim := core.NewSPECInt(core.Options{
		Processor:     proc,
		Seed:          1,
		AppOnly:       appOnly,
		CyclesPer10ms: 250_000,
	})
	sim.Run(2_500_000)
	before := report.Take(sim)
	sim.Run(3_500_000)
	after := report.Take(sim)
	return report.Delta(before, after)
}

func main() {
	fmt.Println("SPECInt95 with and without operating-system execution (cf. Table 4)")
	fmt.Println()
	for _, proc := range []core.ProcessorKind{core.SMT, core.Superscalar} {
		app := measure(proc, true)
		full := measure(proc, false)
		drop := 0.0
		if app.IPC() > 0 {
			drop = 100 * (full.IPC() - app.IPC()) / app.IPC()
		}
		fmt.Printf("%-12s app-only IPC %.2f   with-OS IPC %.2f   change %+.0f%%   (L1I %.2f%% -> %.2f%%)\n",
			proc, app.IPC(), full.IPC(), drop,
			app.L1I.MissRateOverall(), full.L1I.MissRateOverall())
	}
	fmt.Println("\nPaper: SMT 5.9 -> 5.6 (-5%); superscalar 3.0 -> 2.6 (-15%).")
	fmt.Println("Conclusion (paper §3.1.2): application-only simulation is acceptable for SMT")
	fmt.Println("bottom-line numbers on SPECInt, less so for superscalars or component studies.")
}
