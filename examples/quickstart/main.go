// Quickstart: boot the reproduced system — the 8-context SMT with its
// behavioral Digital Unix kernel — run the multiprogrammed SPECInt95
// workload for a few million cycles, and print what the paper would call
// the bottom line: instruction throughput and where the cycles went.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	sim := core.NewSPECInt(core.Options{
		Processor:     core.SMT,
		Seed:          1,
		CyclesPer10ms: 200_000,
	})

	// Let the workload move past cold start, then measure a window —
	// the same start-up vs steady-state distinction as the paper's Fig. 1.
	sim.Run(2_000_000)
	before := report.Take(sim)
	sim.Run(3_000_000)
	after := report.Take(sim)
	w := report.Delta(before, after)

	fmt.Print(report.Summary("SPECInt95 on the 8-context SMT", w))
	fmt.Printf("\nThe paper reports ~5.6 IPC with the OS included and ~5%% kernel time in steady state.\n")
	fmt.Printf("This run: %.2f IPC, %.1f%% kernel time.\n", w.IPC(), w.CycleAt.KernelPct())
}
