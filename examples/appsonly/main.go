// Appsonly: drive the application-only simulator (§2.3.1) directly on the
// Apache workload and inspect what of the paper's story survives when the
// OS is invisible: the workload still runs (requests are served), but the
// kernel-dominated cycle breakdown — the paper's whole subject — vanishes.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sys"
)

func main() {
	sim := core.NewApache(core.Options{
		Processor:     core.SMT,
		Seed:          3,
		AppOnly:       true,
		CyclesPer10ms: 150_000,
	})
	sim.Run(1_500_000)
	before := report.Take(sim)
	sim.Run(2_500_000)
	after := report.Take(sim)
	w := report.Delta(before, after)

	fmt.Print(report.Summary("Apache in application-only mode (no kernel code executes)", w))
	fmt.Printf("\nrequests completed: %d (the server still works — syscalls return instantly)\n", w.NetCompleted)
	fmt.Printf("kernel cycles: %.1f%% (the >75%% OS story is invisible in this mode)\n", w.CycleAt.KernelPct())
	fmt.Printf("syscall events seen by the pipeline: %d\n", w.Metrics.SyscallsSeen)
	fmt.Printf("netisr cycles: %.1f%%\n", w.CycleAt.PctCat(sys.CatNetisr))
}
