// Webserver: the paper's headline experiment. Run the Apache/SPECWeb
// workload on the 8-context SMT and on the otherwise-identical out-of-order
// superscalar, and compare throughput — the paper's 4.2x gain, the largest
// reported for any SMT workload at the time (§3.2, Table 6).
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

func measure(proc core.ProcessorKind) report.Snapshot {
	sim := core.NewApache(core.Options{
		Processor:     proc,
		Seed:          1,
		CyclesPer10ms: 200_000,
	})
	sim.Run(2_500_000)
	before := report.Take(sim)
	sim.Run(4_000_000)
	after := report.Take(sim)
	return report.Delta(before, after)
}

func main() {
	smt := measure(core.SMT)
	ss := measure(core.Superscalar)

	fmt.Print(report.Summary("Apache + SPECWeb on the 8-context SMT", smt))
	fmt.Println()
	fmt.Print(report.Summary("Apache + SPECWeb on the superscalar", ss))

	ratio := 0.0
	if ss.IPC() > 0 {
		ratio = smt.IPC() / ss.IPC()
	}
	fmt.Printf("\nSMT/superscalar throughput ratio: %.1fx (paper: 4.6 IPC vs 1.1 IPC = 4.2x)\n", ratio)
	fmt.Printf("Kernel share of cycles on SMT: %.1f%% (paper: >75%%)\n", smt.CycleAt.KernelPct())
}
