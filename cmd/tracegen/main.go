// Command tracegen dumps the synthetic instruction stream of a workload
// model, for inspecting what the pipeline actually fetches: the SPECInt
// benchmark models, the Apache server text, or one of the behavioral
// kernel's service routines (run through a small live simulation).
//
//	tracegen -program gcc -n 40
//	tracegen -program apache -n 100
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/workload"
	"repro/internal/workload/apache"
	"repro/internal/workload/specint"
)

func main() {
	var (
		program = flag.String("program", "gcc", "program: one of the SPECInt names, or apache")
		n       = flag.Int("n", 50, "instructions to dump")
		seed    = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	var w *workload.Walker
	switch *program {
	case "apache":
		srv := apache.New(apache.Config{Processes: 1, Seed: *seed})
		w = srv.Programs()[0].Walker()
	default:
		found := false
		for i, spec := range specint.Suite() {
			if spec.Name == *program {
				w = specint.New(spec, i+1, *seed).Walker()
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown program %q; try apache or one of:", *program)
			for _, s := range specint.Suite() {
				fmt.Fprintf(os.Stderr, " %s", s.Name)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
	}
	fmt.Printf("%-4s %-18s %-13s %-6s %-18s %s\n", "#", "pc", "class", "taken", "addr/target", "deps")
	for i := 0; i < *n; i++ {
		in, ok := w.Next()
		if !ok {
			break
		}
		addr := ""
		if in.Class.IsMem() {
			phys := ""
			if in.Physical {
				phys = " (phys)"
			}
			addr = fmt.Sprintf("%#x%s", in.Addr, phys)
		} else if in.ControlTransfer() {
			addr = fmt.Sprintf("-> %#x", in.Target)
		}
		fmt.Printf("%-4d %#-18x %-13s %-6v %-18s d1=%d d2=%d\n",
			i, in.PC, in.Class, in.Taken, addr, in.Dep1, in.Dep2)
	}
}
