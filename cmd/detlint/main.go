// Command detlint is the determinism and snapshot-coverage linter for this
// repository. It runs the four analyzers of repro/internal/analysis —
// maporder, walltime, snapshotcomplete, nogoroutine — over the given package
// patterns and exits nonzero on any diagnostic. See ANALYSIS.md for the
// determinism contract each analyzer enforces and the
// //detlint:ignore <analyzer> <reason> exemption convention.
//
//	detlint ./internal/...          # the Makefile `lint` gate
//	detlint -list                   # describe the analyzers
//	detlint -only maporder ./...    # one analyzer
//
// Run it from the module root (it resolves patterns with `go list`).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		list = flag.Bool("list", false, "describe the analyzers and exit")
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	)
	flag.Parse()

	all := analysis.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "detlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/..."}
	}
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
