// Command detlint is the determinism, snapshot-coverage, and performance-
// contract linter for this repository. It runs the seven analyzers of
// repro/internal/analysis — maporder, walltime, snapshotcomplete,
// nogoroutine, hotalloc, counterflow, seedflow — over the given package
// patterns and exits nonzero on any diagnostic. See ANALYSIS.md for the
// contract each analyzer enforces, the //detlint:ignore <analyzer> <reason>
// exemption convention, and the //detlint:hot <reason> hot-root directive.
//
//	detlint ./internal/... ./cmd/...   # the Makefile `lint` gate
//	detlint -list                      # describe the analyzers
//	detlint -only maporder ./...       # one analyzer
//	detlint -json ./...                # machine-readable findings (CI)
//
// Run it from the module root (it resolves patterns with `go list`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

// finding is the machine-readable form of one diagnostic, for -json; CI
// turns these into file:line annotations.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	var (
		list    = flag.Bool("list", false, "describe the analyzers and exit")
		only    = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array on stdout")
	)
	flag.Parse()

	all := analysis.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "detlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analyzers)
	if *jsonOut {
		findings := make([]finding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, finding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
