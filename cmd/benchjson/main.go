// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, so `make bench` can record a
// BENCH_<date>.json trajectory artifact that future performance work can
// diff against.
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson > BENCH_2026-08-06.json
//
// Every benchmark line becomes one record carrying all reported metrics
// (ns/op, allocs/op, and custom ones like simcycles/s). The converter is a
// pure function of its input: identical bench output yields identical
// bytes, so artifact diffs show performance changes only.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// record is one benchmark result.
type record struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix kept, since
	// parallelism is part of the measurement's identity.
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in.
	Pkg string `json:"pkg"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "value unit" pair on the line.
	Metrics map[string]float64 `json:"metrics"`
}

// document is the whole artifact.
type document struct {
	Date       string   `json:"date,omitempty"`
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	date := flag.String("date", "", "date stamp recorded in the artifact (the caller supplies it so the converter itself stays deterministic)")
	flag.Parse()

	doc := document{Date: *date}
	var pkg string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line, pkg); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// parseBench decodes one result line of the form
//
//	BenchmarkName-8   4   478490193 ns/op   627635 simcycles/s   0 allocs/op
func parseBench(line, pkg string) (record, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return record{}, false
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Name: f[0], Pkg: pkg, Iterations: n, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return record{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}
