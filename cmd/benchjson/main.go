// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, so `make bench` can record a
// BENCH_<date>.json trajectory artifact that future performance work can
// diff against.
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson > BENCH_2026-08-06.json
//
// Every benchmark line becomes one record carrying all reported metrics
// (ns/op, allocs/op, and custom ones like simcycles/s). The converter is a
// pure function of its input: identical bench output yields identical
// bytes, so artifact diffs show performance changes only.
//
// With -diff it instead compares two artifacts:
//
//	benchjson -diff BENCH_old.json BENCH_new.json
//
// printing the per-benchmark ns/op delta (plus any custom metrics) and
// exiting 1 if any benchmark regressed by more than -threshold percent
// (default 10). Benchmarks present on only one side are reported but never
// fail the diff, and benchmarks faster than -floor nanoseconds on both
// sides are reported but not gated: at -benchtime 1x a sub-millisecond
// measurement is dominated by scheduler and cache noise, not code changes.
// The figureRegenSec metric (BenchmarkFigureRegen's checkpoint-library
// figure-regeneration wall clock) is gated like ns/op, with its own
// -regen-floor (default 0.05 s). The netTickNs metric (BenchmarkNetTick's
// per-tick cost of the event-driven client driver at 10^3..10^6 clients) is
// gated the same way, with its own -nettick-floor (default 200 µs): letting
// it creep with fleet size would silently lose the O(active + arrivals)
// tick.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// record is one benchmark result.
type record struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix kept, since
	// parallelism is part of the measurement's identity.
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in.
	Pkg string `json:"pkg"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "value unit" pair on the line.
	Metrics map[string]float64 `json:"metrics"`
}

// document is the whole artifact.
type document struct {
	Date       string   `json:"date,omitempty"`
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	date := flag.String("date", "", "date stamp recorded in the artifact (the caller supplies it so the converter itself stays deterministic)")
	diff := flag.Bool("diff", false, "compare two artifacts: benchjson -diff old.json new.json")
	threshold := flag.Float64("threshold", 10, "with -diff, exit 1 if ns/op regresses by more than this percent")
	floor := flag.Float64("floor", 1e6, "with -diff, ignore regressions when both sides run faster than this many ns/op (timing noise)")
	regenFloor := flag.Float64("regen-floor", 0.05, "with -diff, ignore figureRegenSec regressions when both sides run faster than this many seconds (timing noise)")
	netTickFloor := flag.Float64("nettick-floor", 200_000, "with -diff, ignore netTickNs regressions when both sides run faster than this many nanoseconds per tick (timing noise)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff old.json new.json")
			os.Exit(2)
		}
		os.Exit(diffArtifacts(flag.Arg(0), flag.Arg(1), *threshold, *floor, *regenFloor, *netTickFloor))
	}

	doc := document{Date: *date}
	var pkg string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line, pkg); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// diffArtifacts prints per-benchmark deltas between two artifacts and
// returns the process exit code: 1 if any gated metric regresses by more
// than threshold percent, 0 otherwise. Three metrics are gated: ns/op on
// benchmarks at or above floor nanoseconds, figureRegenSec — the
// checkpoint-library figure-regeneration wall clock — at or above
// regenFloor seconds, and netTickNs — the event-driven client driver's
// per-tick cost — at or above netTickFloor nanoseconds.
func diffArtifacts(oldPath, newPath string, threshold, floor, regenFloor, netTickFloor float64) int {
	oldDoc, err := loadArtifact(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	newDoc, err := loadArtifact(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	keyOf := func(r record) string { return r.Pkg + "." + r.Name }
	old := make(map[string]record, len(oldDoc.Benchmarks))
	for _, r := range oldDoc.Benchmarks {
		old[keyOf(r)] = r
	}
	seen := make(map[string]bool, len(newDoc.Benchmarks))
	regressed := false
	for _, nr := range newDoc.Benchmarks {
		k := keyOf(nr)
		seen[k] = true
		or, ok := old[k]
		if !ok {
			fmt.Printf("%-60s new benchmark (%.0f ns/op)\n", k, nr.Metrics["ns/op"])
			continue
		}
		oldNs, newNs := or.Metrics["ns/op"], nr.Metrics["ns/op"]
		if oldNs <= 0 || newNs <= 0 {
			fmt.Printf("%-60s no ns/op on one side, skipped\n", k)
			continue
		}
		pct := 100 * (newNs - oldNs) / oldNs
		verdict := "ok"
		switch {
		case oldNs < floor && newNs < floor:
			verdict = "below floor, not gated"
		case pct > threshold:
			verdict = fmt.Sprintf("REGRESSION (> %.0f%%)", threshold)
			regressed = true
		}
		fmt.Printf("%-60s %12.0f -> %12.0f ns/op  %+7.1f%%  %s\n", k, oldNs, newNs, pct, verdict)
		for _, unit := range sortedUnits(nr.Metrics) {
			ov, ook := or.Metrics[unit]
			if unit == "ns/op" || !ook || ov == 0 {
				continue
			}
			upct := 100 * (nr.Metrics[unit] - ov) / ov
			note := ""
			// figureRegenSec and netTickNs are gated metrics like ns/op:
			// each is the whole point of its subsystem (the checkpoint
			// library's regen speedup; the event-driven netsim's
			// O(active + arrivals) tick), so letting either creep would
			// silently lose the optimization.
			gatedFloor, gated := 0.0, false
			switch unit {
			case "figureRegenSec":
				gatedFloor, gated = regenFloor, true
			case "netTickNs":
				gatedFloor, gated = netTickFloor, true
			}
			if gated && !(ov < gatedFloor && nr.Metrics[unit] < gatedFloor) && upct > threshold {
				note = fmt.Sprintf("  REGRESSION (> %.0f%%)", threshold)
				regressed = true
			}
			fmt.Printf("    %-56s %12.4g -> %12.4g %s  %+7.1f%%%s\n",
				"", ov, nr.Metrics[unit], unit, upct, note)
		}
	}
	for _, or := range oldDoc.Benchmarks {
		if k := keyOf(or); !seen[k] {
			fmt.Printf("%-60s removed\n", k)
		}
	}
	if regressed {
		fmt.Printf("FAIL: at least one gated metric (ns/op, figureRegenSec, or netTickNs) regressed by more than %.0f%%\n", threshold)
		return 1
	}
	return 0
}

func loadArtifact(path string) (document, error) {
	var doc document
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// sortedUnits returns metric units in a stable order.
func sortedUnits(m map[string]float64) []string {
	units := make([]string, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sort.Strings(units)
	return units
}

// parseBench decodes one result line of the form
//
//	BenchmarkName-8   4   478490193 ns/op   627635 simcycles/s   0 allocs/op
func parseBench(line, pkg string) (record, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return record{}, false
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Name: f[0], Pkg: pkg, Iterations: n, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return record{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}
