// Command experiments regenerates the paper's tables and figures.
//
//	experiments                 # run everything at full scale
//	experiments -run tab6       # one experiment
//	experiments -quick          # reduced cycle budget (CI/laptop smoke)
//	experiments -list           # available experiment ids
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "", "experiment id to run (empty = all)")
		quick = flag.Bool("quick", false, "reduced cycle budget")
		seed  = flag.Uint64("seed", 1, "simulation seed")
		seeds = flag.Int("seeds", 1, "run with this many seeds and report mean +/- spread of key values")
		list  = flag.Bool("list", false, "list experiment ids")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	sc := experiments.Full
	if *quick {
		sc = experiments.Quick
	}
	if *run == "" {
		fmt.Print(experiments.RenderAll(sc, *seed))
		return
	}
	if *seeds > 1 {
		multiSeed(*run, sc, *seed, *seeds)
		return
	}
	res, err := experiments.Run(*run, sc, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s — %s\n\n%s\n", res.ID, res.Title, res.Text)
}

// multiSeed reruns one experiment across seeds and reports, for every key
// value, the mean and min..max spread — a sanity check that a conclusion
// does not hinge on one random stream.
func multiSeed(id string, sc experiments.Scale, seed uint64, n int) {
	acc := map[string][]float64{}
	var title string
	for i := 0; i < n; i++ {
		res, err := experiments.Run(id, sc, seed+uint64(i))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		title = res.Title
		for k, v := range res.Values {
			acc[k] = append(acc[k], v)
		}
	}
	fmt.Printf("%s — %s (%d seeds)\n\n", id, title, n)
	keys := make([]string, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		vs := acc[k]
		mean, lo, hi := 0.0, math.Inf(1), math.Inf(-1)
		for _, v := range vs {
			mean += v
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		mean /= float64(len(vs))
		fmt.Printf("  %-24s mean %.3f   range [%.3f, %.3f]\n", k, mean, lo, hi)
	}
}
