// Command experiments regenerates the paper's tables and figures.
//
//	experiments                 # run everything at full scale
//	experiments -run tab6       # one experiment
//	experiments -quick          # reduced cycle budget (CI/laptop smoke)
//	experiments -list           # available experiment ids
//	experiments -quick -json -audit 300000    # machine-readable, audited
//	experiments -timeout 5m     # per-experiment budget, retry from checkpoint
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "", "experiment id to run (empty = all)")
		quick   = flag.Bool("quick", false, "reduced cycle budget")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		seeds   = flag.Int("seeds", 1, "run with this many seeds and report mean +/- spread of key values")
		list    = flag.Bool("list", false, "list experiment ids")
		jsonOut = flag.Bool("json", false, "emit machine-readable JSON (implies supervised runs)")
		timeout = flag.Duration("timeout", 0, "per-experiment wall-clock budget; on a trip the experiment retries once, resuming from checkpoints (0 = none)")
		auditAt = flag.Uint64("audit", 0, "run the invariant auditor every N cycles during each experiment (0 = off)")
	)
	flag.Parse()

	if *seeds < 1 {
		fmt.Fprintf(os.Stderr, "experiments: -seeds must be at least 1 (got %d)\n", *seeds)
		os.Exit(2)
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	sc := experiments.Full
	if *quick {
		sc = experiments.Quick
	}
	ids := experiments.IDs()
	if *run != "" {
		ids = []string{*run}
	}

	// Supervision (timeout, audits) and JSON reporting share the
	// supervised path; the plain paths below keep their exact output.
	if *jsonOut || *timeout > 0 || *auditAt > 0 {
		supervised(ids, sc, *seed, *seeds, *timeout, *auditAt, *jsonOut)
		return
	}

	if *run == "" {
		fmt.Print(experiments.RenderAll(sc, *seed))
		return
	}
	if *seeds > 1 {
		multiSeed(*run, sc, *seed, *seeds)
		return
	}
	res, err := experiments.Run(*run, sc, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s — %s\n\n%s\n", res.ID, res.Title, res.Text)
}

// jsonRecord is the machine-readable form of one experiment.
type jsonRecord struct {
	ID            string                `json:"id"`
	Title         string                `json:"title"`
	Status        string                `json:"status"` // "ok" or "partial"
	Retried       bool                  `json:"retried"`
	Error         string                `json:"error,omitempty"`
	Seeds         []uint64              `json:"seeds"`
	Values        map[string]float64    `json:"values"`
	Spread        map[string][2]float64 `json:"spread,omitempty"` // [min,max] across seeds
	Audits        uint64                `json:"audits"`
	Checkpoints   uint64                `json:"checkpoints"`
	FaultCrashes  uint64                `json:"faultCrashes"`
	FramesDropped uint64                `json:"framesDropped"`
}

// supervised runs the ids under per-experiment supervision and renders
// either JSON records or the human report.
func supervised(ids []string, sc experiments.Scale, seed uint64, nSeeds int, timeout time.Duration, auditAt uint64, jsonOut bool) {
	var records []jsonRecord
	failed := false
	for _, id := range ids {
		rec := jsonRecord{ID: id, Status: "ok", Values: map[string]float64{}}
		acc := map[string][]float64{}
		var lastText string
		for i := 0; i < nSeeds; i++ {
			s := seed + uint64(i)
			res, st, err := experiments.RunSupervised(id, sc, s, timeout, auditAt)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			rec.Title = res.Title
			rec.Seeds = append(rec.Seeds, s)
			rec.Audits += st.Audits
			rec.Checkpoints += st.Checkpoints
			rec.FaultCrashes += st.FaultCrashes
			rec.FramesDropped += st.FramesDropped
			rec.Retried = rec.Retried || st.Retried
			if !st.OK {
				rec.Status = "partial"
				rec.Error = st.Error
				failed = true
			}
			for k, v := range res.Values {
				acc[k] = append(acc[k], v)
			}
			lastText = res.Text
		}
		for k, vs := range acc {
			mean, lo, hi := 0.0, math.Inf(1), math.Inf(-1)
			for _, v := range vs {
				mean += v
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			rec.Values[k] = mean / float64(len(vs))
			if len(vs) > 1 {
				if rec.Spread == nil {
					rec.Spread = map[string][2]float64{}
				}
				rec.Spread[k] = [2]float64{lo, hi}
			}
		}
		if jsonOut {
			records = append(records, rec)
			continue
		}
		status := rec.Status
		if rec.Retried {
			status += " (retried)"
		}
		fmt.Printf("################ %s — %s [%s]\n\n%s\n", rec.ID, rec.Title, status, lastText)
		if rec.Error != "" {
			fmt.Printf("  partial result; last error: %s\n\n", rec.Error)
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// multiSeed reruns one experiment across seeds and reports, for every key
// value, the mean and min..max spread — a sanity check that a conclusion
// does not hinge on one random stream.
func multiSeed(id string, sc experiments.Scale, seed uint64, n int) {
	acc := map[string][]float64{}
	var title string
	for i := 0; i < n; i++ {
		res, err := experiments.Run(id, sc, seed+uint64(i))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		title = res.Title
		for k, v := range res.Values {
			acc[k] = append(acc[k], v)
		}
	}
	fmt.Printf("%s — %s (%d seeds)\n\n", id, title, n)
	keys := make([]string, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		vs := acc[k]
		mean, lo, hi := 0.0, math.Inf(1), math.Inf(-1)
		for _, v := range vs {
			mean += v
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		mean /= float64(len(vs))
		fmt.Printf("  %-24s mean %.3f   range [%.3f, %.3f]\n", k, mean, lo, hi)
	}
}
