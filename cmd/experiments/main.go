// Command experiments regenerates the paper's tables and figures.
//
//	experiments                 # run everything at full scale
//	experiments -run tab6       # one experiment
//	experiments -quick          # reduced cycle budget (CI/laptop smoke)
//	experiments -list           # available experiment ids
//	experiments -quick -json -audit 300000    # machine-readable, audited
//	experiments -timeout 5m     # per-experiment budget, retry from checkpoint
//	experiments -parallel 4     # worker pool; output identical to -parallel 1
//	experiments -windows-parallel 4           # checkpoint-library regeneration
//	experiments -quick -cpuprofile cpu.pprof  # profile the whole sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	// The -window-job child protocol bypasses flag parsing entirely: the
	// parent (this same binary, or a test harness) appends positional
	// arguments the flag package would reject.
	if len(os.Args) > 1 && os.Args[1] == "-window-job" {
		os.Exit(experiments.WindowJobMain(os.Args[2:], os.Stdout, os.Stderr))
	}
	// All paths return through here so profile-stopping defers run
	// before the process exits.
	os.Exit(run())
}

func run() int {
	var (
		runID        = flag.String("run", "", "experiment id to run (empty = all)")
		quick        = flag.Bool("quick", false, "reduced cycle budget")
		seed         = flag.Uint64("seed", 1, "simulation seed")
		seeds        = flag.Int("seeds", 1, "run with this many seeds and report mean +/- spread of key values")
		list         = flag.Bool("list", false, "list experiment ids")
		jsonOut      = flag.Bool("json", false, "emit machine-readable JSON (implies supervised runs)")
		timeout      = flag.Duration("timeout", 0, "per-experiment wall-clock budget; on a trip the experiment retries once, resuming from checkpoints (0 = none)")
		auditAt      = flag.Uint64("audit", 0, "run the invariant auditor every N cycles during each experiment (0 = off)")
		parallel     = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size for independent (experiment, seed) jobs; results are ordered, so output is identical for any value")
		sample       = flag.Bool("sample", false, "run simulations in sampled mode (fast-forward with warming between detailed windows); percentage metrics stay comparable, raw counters do not")
		winParallel  = flag.Int("windows-parallel", 0, "regenerate from a checkpoint library with this many window jobs in parallel, each in its own OS process (0 = off; builds the library on first use)")
		libraryDir   = flag.String("library", "", "checkpoint-library root for -windows-parallel (default: <tmpdir>/ossmt-library)")
		samplePeriod = flag.Uint64("sample-period", 200_000, "cycles per sampling period (with -sample)")
		sampleWindow = flag.Uint64("sample-window", 0, "detailed window per period in cycles (0 = period/10, with -sample)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *seeds < 1 {
		fmt.Fprintf(os.Stderr, "experiments: -seeds must be at least 1 (got %d)\n", *seeds)
		return 2
	}
	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "experiments: -parallel must be at least 1 (got %d)\n", *parallel)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return 0
	}
	sc := experiments.Full
	if *quick {
		sc = experiments.Quick
	}
	if *sample {
		// One mutation before dispatch covers every path below (plain,
		// multi-seed, supervised, JSON): they all carry sc by value.
		sc.Sampling = core.Sampling{Period: *samplePeriod, DetailWindow: *sampleWindow}
	}
	ids := experiments.IDs()
	if *runID != "" {
		ids = []string{*runID}
	}

	if *winParallel > 0 {
		// Checkpoint-library regeneration: windows restore and run in
		// parallel OS processes; experiment output is assembled serially in
		// id order, so the bytes are identical for any worker count.
		if !sc.Sampling.Enabled() {
			sc.Sampling = experiments.WindowedSampling(sc)
		}
		dir := *libraryDir
		if dir == "" {
			dir = filepath.Join(os.TempDir(), "ossmt-library")
		}
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		wr := experiments.NewWindowRunner(experiments.WindowedConfig{
			Dir:     dir,
			Workers: *winParallel,
			Exec:    []string{exe, "-window-job"},
		})
		fmt.Print(experiments.RenderWindowed(ids, sc, *seed, wr))
		return 0
	}

	// Supervision (timeout, audits) and JSON reporting share the
	// supervised path; the plain paths below keep their exact output.
	if *jsonOut || *timeout > 0 || *auditAt > 0 {
		return supervised(ids, sc, *seed, *seeds, *timeout, *auditAt, *jsonOut, *parallel)
	}

	if *seeds > 1 {
		return multiSeed(ids, sc, *seed, *seeds, *parallel)
	}
	if *runID == "" {
		fmt.Print(experiments.RenderAllParallel(sc, *seed, *parallel))
		return 0
	}
	res, err := experiments.Run(*runID, sc, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("%s — %s\n\n%s\n", res.ID, res.Title, res.Text)
	return 0
}

// sweep builds the id-major, seed-minor job list shared by the supervised
// and multi-seed paths; job i*nSeeds+j is (ids[i], seed+j).
func sweep(ids []string, seed uint64, nSeeds int) []experiments.Job {
	jobs := make([]experiments.Job, 0, len(ids)*nSeeds)
	for _, id := range ids {
		for j := 0; j < nSeeds; j++ {
			jobs = append(jobs, experiments.Job{ID: id, Seed: seed + uint64(j)})
		}
	}
	return jobs
}

// jsonRecord is the machine-readable form of one experiment.
type jsonRecord struct {
	ID            string                `json:"id"`
	Title         string                `json:"title"`
	Status        string                `json:"status"` // "ok" or "partial"
	Retried       bool                  `json:"retried"`
	Error         string                `json:"error,omitempty"`
	Seeds         []uint64              `json:"seeds"`
	Values        map[string]float64    `json:"values"`
	Spread        map[string][2]float64 `json:"spread,omitempty"` // [min,max] across seeds
	Audits        uint64                `json:"audits"`
	Checkpoints   uint64                `json:"checkpoints"`
	FaultCrashes  uint64                `json:"faultCrashes"`
	FramesDropped uint64                `json:"framesDropped"`
}

// supervised runs the ids under per-experiment supervision and renders
// either JSON records or the human report. Jobs execute on the worker
// pool; aggregation walks them in job order, so output matches serial.
func supervised(ids []string, sc experiments.Scale, seed uint64, nSeeds int, timeout time.Duration, auditAt uint64, jsonOut bool, workers int) int {
	jobs := sweep(ids, seed, nSeeds)
	results := experiments.RunJobsSupervised(jobs, sc, timeout, auditAt, workers)
	var records []jsonRecord
	failed := false
	for i, id := range ids {
		rec := jsonRecord{ID: id, Status: "ok", Values: map[string]float64{}}
		acc := map[string][]float64{}
		var lastText string
		for j := 0; j < nSeeds; j++ {
			jr := results[i*nSeeds+j]
			if jr.Err != nil {
				fmt.Fprintln(os.Stderr, jr.Err)
				return 1
			}
			res, st := jr.Res, jr.Status
			rec.Title = res.Title
			rec.Seeds = append(rec.Seeds, jobs[i*nSeeds+j].Seed)
			rec.Audits += st.Audits
			rec.Checkpoints += st.Checkpoints
			rec.FaultCrashes += st.FaultCrashes
			rec.FramesDropped += st.FramesDropped
			rec.Retried = rec.Retried || st.Retried
			if !st.OK {
				rec.Status = "partial"
				rec.Error = st.Error
				failed = true
			}
			for k, v := range res.Values {
				acc[k] = append(acc[k], v)
			}
			lastText = res.Text
		}
		for k, vs := range acc {
			mean, lo, hi := 0.0, math.Inf(1), math.Inf(-1)
			for _, v := range vs {
				mean += v
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			rec.Values[k] = mean / float64(len(vs))
			if len(vs) > 1 {
				if rec.Spread == nil {
					//detlint:ignore maporder idempotent lazy init; the per-key writes below are keyed by the loop variable
					rec.Spread = map[string][2]float64{}
				}
				rec.Spread[k] = [2]float64{lo, hi}
			}
		}
		if jsonOut {
			records = append(records, rec)
			continue
		}
		status := rec.Status
		if rec.Retried {
			status += " (retried)"
		}
		fmt.Printf("################ %s — %s [%s]\n\n%s\n", id, rec.Title, status, lastText)
		if rec.Error != "" {
			fmt.Printf("  partial result; last error: %s\n\n", rec.Error)
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if failed {
		return 1
	}
	return 0
}

// multiSeed reruns each experiment across seeds and reports, for every key
// value, the mean and min..max spread — a sanity check that a conclusion
// does not hinge on one random stream. With several ids (-seeds without
// -run) the blocks are separated by a blank line.
func multiSeed(ids []string, sc experiments.Scale, seed uint64, n, workers int) int {
	jobs := sweep(ids, seed, n)
	results := experiments.RunJobs(jobs, sc, workers)
	for i := range ids {
		acc := map[string][]float64{}
		var title string
		for j := 0; j < n; j++ {
			jr := results[i*n+j]
			if jr.Err != nil {
				fmt.Fprintln(os.Stderr, jr.Err)
				return 1
			}
			title = jr.Res.Title
			for k, v := range jr.Res.Values {
				acc[k] = append(acc[k], v)
			}
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("%s — %s (%d seeds)\n\n", jobs[i*n].ID, title, n)
		keys := make([]string, 0, len(acc))
		for k := range acc {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			vs := acc[k]
			mean, lo, hi := 0.0, math.Inf(1), math.Inf(-1)
			for _, v := range vs {
				mean += v
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			mean /= float64(len(vs))
			fmt.Printf("  %-24s mean %.3f   range [%.3f, %.3f]\n", k, mean, lo, hi)
		}
	}
	return 0
}
