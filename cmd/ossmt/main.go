// Command ossmt runs one simulation of the reproduced system — the paper's
// SMT (or superscalar baseline) executing the behavioral Digital Unix kernel
// under a SPECInt95 or Apache/SPECWeb workload — and prints a measurement
// summary.
//
// Examples:
//
//	ossmt -workload apache -cycles 6000000
//	ossmt -workload specint -proc ss -apponly -cycles 4000000
//	ossmt -workload apache -warmup 3000000 -cycles 6000000 -seed 7
//	ossmt -workload apache -loss 0.05 -crashrate 0.01 -deadline 2m
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/report"
)

func main() {
	// All paths return through here so profile-stopping defers run
	// before the process exits.
	os.Exit(run())
}

func run() int {
	var (
		workload = flag.String("workload", "apache", "workload: specint | apache")
		proc     = flag.String("proc", "smt", "processor: smt | ss")
		cycles   = flag.Uint64("cycles", 4_000_000, "measured cycles")
		warmup   = flag.Uint64("warmup", 2_000_000, "warm-up cycles before measurement")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		appOnly  = flag.Bool("apponly", false, "application-only simulation (syscalls/traps instant)")
		omitOS   = flag.Bool("omitpriv", false, "omit privileged references to caches/BTB (Table 9 mode)")
		interval = flag.Uint64("interval", 200_000, "cycles per simulated 10ms (interrupt granularity)")
		contexts = flag.Int("contexts", 0, "override SMT hardware contexts (default 8)")
		procs    = flag.Int("procs", 0, "override Apache server processes (default 64)")
		clients  = flag.Int("clients", 0, "override SPECWeb clients (default 128)")
		think    = flag.Int("think", 0, "client think time between requests in 10ms ticks (0 = default)")
		stagger  = flag.Int("stagger", 0, "stagger initial client arrivals over N 10ms ticks (0 = synchronized start)")
		measLat  = flag.Bool("measure-latency", false, "record per-request latency percentiles even without overload faults")
		idleSpin = flag.Bool("idlespin", false, "idle contexts spin instead of halting")
		rrFetch  = flag.Bool("rrfetch", false, "round-robin fetch instead of ICOUNT")
		perProg  = flag.Bool("perthread", false, "print a per-thread breakdown")

		// Sampled simulation (see EXPERIMENTS.md, "Sampled runs").
		sample       = flag.Bool("sample", false, "sampled simulation: fast-forward with warming between detailed windows")
		samplePeriod = flag.Uint64("sample-period", 200_000, "cycles per sampling period (with -sample)")
		sampleWindow = flag.Uint64("sample-window", 0, "detailed window per period in cycles (0 = period/10, with -sample)")

		// Fault injection (see FAULTS.md).
		loss      = flag.Float64("loss", 0, "per-frame network loss probability [0,1]")
		corrupt   = flag.Float64("corrupt", 0, "per-frame network corruption probability [0,1]")
		delayRate = flag.Float64("delay", 0, "per-frame network delay probability [0,1]")
		maxDelay  = flag.Int("maxdelay", 0, "max in-transit delay in 10ms ticks (0 = default)")
		crashRate = flag.Float64("crashrate", 0, "per-syscall Apache worker crash probability [0,1]")
		faultSeed = flag.Uint64("faultseed", 0, "fault-sampling seed (0 = derive from -seed)")
		deadline  = flag.Duration("deadline", 0, "wall-clock budget for the whole run (0 = none)")
		watchdog  = flag.Uint64("watchdog", 0, "livelock window in cycles (0 = default)")

		// Overload (see FAULTS.md, "Overload").
		backlog     = flag.Int("backlog", 0, "accept-backlog bound on the listen socket (0 = default 1024)")
		idleTimeout = flag.Int("idle-timeout", 0, "reap connections idle for N 10ms ticks (0 = off)")
		slowRate    = flag.Float64("slowrate", 0, "probability a client is a slow-trickle (slowloris) sender [0,1]")
		trickle     = flag.Int("trickle", 0, "ticks between a slow client's request chunks (0 = default)")
		stormRate   = flag.Float64("stormrate", 0, "probability a client is a keep-alive storm client [0,1]")
		stormHold   = flag.Int("stormhold", 0, "ticks a storm client holds its connection idle (0 = default)")
		burstEvery  = flag.Int("burst-every", 0, "activate a flash-crowd burst every N ticks (0 = off)")
		burstSize   = flag.Int("burst-size", 0, "clients per flash-crowd burst (0 = default)")

		// Resource exhaustion (see FAULTS.md, "Exhaustion").
		memFrames     = flag.Uint64("mem-frames", 0, "cap the frame allocator at N frames (0 = all of physical memory)")
		sockTable     = flag.Int("sock-table", 0, "socket-table size (0 = default 4096)")
		mbufPool      = flag.Int("mbuf-pool", 0, "mbuf-pool frames (0 = default 8192)")
		procTable     = flag.Int("proc-table", 0, "process-table slots (0 = default 256)")
		fdLimit       = flag.Int("fd-limit", 0, "per-process descriptor limit (0 = default 64)")
		memSqueeze    = flag.Float64("mem-squeeze", 0, "mid-run squeeze: shrink effective memory by this fraction [0,1)")
		poolSqueeze   = flag.Float64("pool-squeeze", 0, "mid-run squeeze: shrink effective pool capacities by this fraction [0,1)")
		squeezeTick   = flag.Int("squeeze-tick", 0, "10ms tick at which the squeeze lands (0 = default 50)")
		squeezeJitter = flag.Int("squeeze-jitter", 0, "max extra ticks of seeded jitter on the squeeze time (0 = none)")

		// Checkpoint/restore and auditing (see CHECKPOINT.md).
		ckptPath  = flag.String("checkpoint", "", "write a checkpoint here when the run finishes")
		restore   = flag.String("restore", "", "resume from this checkpoint instead of a fresh boot")
		ckptEvery = flag.Uint64("ckpt-every", 0, "also auto-checkpoint every N cycles (needs -checkpoint)")
		auditAt   = flag.Uint64("audit", 0, "run the invariant auditor every N cycles (0 = off)")

		// Profiling (see EXPERIMENTS.md, "Performance work").
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	opts := core.Options{
		Seed:             *seed,
		AppOnly:          *appOnly,
		OmitPrivileged:   *omitOS,
		CyclesPer10ms:    *interval,
		Contexts:         *contexts,
		ServerProcesses:  *procs,
		Clients:          *clients,
		ThinkTicks:       *think,
		StaggerTicks:     *stagger,
		MeasureLatency:   *measLat,
		IdleSpin:         *idleSpin,
		RoundRobinFetch:  *rrFetch,
		AcceptBacklog:    *backlog,
		IdleTimeoutTicks: *idleTimeout,
		MemFrameLimit:    *memFrames,
		SocketTable:      *sockTable,
		MbufPool:         *mbufPool,
		ProcTable:        *procTable,
		FDLimit:          *fdLimit,
		Faults: faults.Config{
			Seed:               *faultSeed,
			LossRate:           *loss,
			CorruptRate:        *corrupt,
			DelayRate:          *delayRate,
			MaxDelayTicks:      *maxDelay,
			CrashRate:          *crashRate,
			LivelockWindow:     *watchdog,
			SlowClientRate:     *slowRate,
			TrickleTicks:       *trickle,
			StormClientRate:    *stormRate,
			StormHoldTicks:     *stormHold,
			BurstEvery:         *burstEvery,
			BurstSize:          *burstSize,
			MemSqueezeFrac:     *memSqueeze,
			PoolSqueezeFrac:    *poolSqueeze,
			SqueezeAtTick:      *squeezeTick,
			SqueezeJitterTicks: *squeezeJitter,
		},
	}
	if *sample {
		opts.Sampling = core.Sampling{Period: *samplePeriod, DetailWindow: *sampleWindow}
	}
	switch *proc {
	case "smt":
		opts.Processor = core.SMT
	case "ss", "superscalar":
		opts.Processor = core.Superscalar
	default:
		fmt.Fprintf(os.Stderr, "unknown processor %q (smt|ss)\n", *proc)
		return 2
	}

	var sim *core.Simulator
	var err error
	if *restore != "" {
		// The checkpoint carries its own workload and options; the
		// configuration flags above are ignored on resume.
		sim, err = core.RestoreFile(*restore)
		if err == nil {
			*workload = sim.Workload
			fmt.Fprintf(os.Stderr, "ossmt: resumed %s/%s at cycle %d from %s\n",
				sim.Workload, sim.Opts.Processor, sim.Now(), *restore)
		}
	} else {
		sim, err = core.New(*workload, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	sim.Sup = core.Supervision{
		CheckpointEvery: *ckptEvery,
		CheckpointPath:  *ckptPath,
		AuditEvery:      *auditAt,
	}

	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	if err := sim.RunChecked(ctx, *warmup); err != nil {
		return fail(err)
	}
	before := report.Take(sim)
	if err := sim.RunChecked(ctx, *cycles); err != nil {
		return fail(err)
	}
	after := report.Take(sim)
	w := report.Delta(before, after)

	if *ckptPath != "" {
		if err := sim.WriteCheckpoint(*ckptPath); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "ossmt: checkpoint written to %s (cycle %d)\n", *ckptPath, sim.Now())
	}
	if *auditAt > 0 {
		if err := sim.Audit(); err != nil {
			return fail(err)
		}
	}

	title := fmt.Sprintf("%s on %s (seed %d, warmup %d, measured %d cycles)",
		*workload, sim.Opts.Processor, sim.Opts.Seed, *warmup, *cycles)
	fmt.Print(report.Summary(title, w))
	if *perProg {
		fmt.Println()
		fmt.Print(report.PerProgram(sim))
	}
	return 0
}

// fail prints a structured error (watchdog trip, recovered panic, invariant
// audit failure — each already carries its diagnostics) and returns the
// nonzero exit code.
func fail(err error) int {
	var (
		ll *faults.LivelockError
		dl *faults.DeadlineError
		pe *faults.PanicError
		ae *audit.Error
	)
	switch {
	case errors.As(err, &ll):
		fmt.Fprintln(os.Stderr, "ossmt: watchdog tripped (livelock)")
	case errors.As(err, &dl):
		fmt.Fprintln(os.Stderr, "ossmt: watchdog tripped (deadline)")
	case errors.As(err, &pe):
		fmt.Fprintln(os.Stderr, "ossmt: simulation panic (recovered)")
	case errors.As(err, &ae):
		fmt.Fprintln(os.Stderr, "ossmt: invariant audit failed")
	}
	fmt.Fprintln(os.Stderr, err)
	return 1
}
