// Command ossmt runs one simulation of the reproduced system — the paper's
// SMT (or superscalar baseline) executing the behavioral Digital Unix kernel
// under a SPECInt95 or Apache/SPECWeb workload — and prints a measurement
// summary.
//
// Examples:
//
//	ossmt -workload apache -cycles 6000000
//	ossmt -workload specint -proc ss -apponly -cycles 4000000
//	ossmt -workload apache -warmup 3000000 -cycles 6000000 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	var (
		workload = flag.String("workload", "apache", "workload: specint | apache")
		proc     = flag.String("proc", "smt", "processor: smt | ss")
		cycles   = flag.Uint64("cycles", 4_000_000, "measured cycles")
		warmup   = flag.Uint64("warmup", 2_000_000, "warm-up cycles before measurement")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		appOnly  = flag.Bool("apponly", false, "application-only simulation (syscalls/traps instant)")
		omitOS   = flag.Bool("omitpriv", false, "omit privileged references to caches/BTB (Table 9 mode)")
		interval = flag.Uint64("interval", 200_000, "cycles per simulated 10ms (interrupt granularity)")
		contexts = flag.Int("contexts", 0, "override SMT hardware contexts (default 8)")
		procs    = flag.Int("procs", 0, "override Apache server processes (default 64)")
		clients  = flag.Int("clients", 0, "override SPECWeb clients (default 128)")
		idleSpin = flag.Bool("idlespin", false, "idle contexts spin instead of halting")
		rrFetch  = flag.Bool("rrfetch", false, "round-robin fetch instead of ICOUNT")
		perProg  = flag.Bool("perthread", false, "print a per-thread breakdown")
	)
	flag.Parse()

	opts := core.Options{
		Seed:            *seed,
		AppOnly:         *appOnly,
		OmitPrivileged:  *omitOS,
		CyclesPer10ms:   *interval,
		Contexts:        *contexts,
		ServerProcesses: *procs,
		Clients:         *clients,
		IdleSpin:        *idleSpin,
		RoundRobinFetch: *rrFetch,
	}
	switch *proc {
	case "smt":
		opts.Processor = core.SMT
	case "ss", "superscalar":
		opts.Processor = core.Superscalar
	default:
		fmt.Fprintf(os.Stderr, "unknown processor %q (smt|ss)\n", *proc)
		os.Exit(2)
	}

	var sim *core.Simulator
	switch *workload {
	case "specint":
		sim = core.NewSPECInt(opts)
	case "apache":
		sim = core.NewApache(opts)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q (specint|apache)\n", *workload)
		os.Exit(2)
	}

	sim.Run(*warmup)
	before := report.Take(sim)
	sim.Run(*cycles)
	after := report.Take(sim)
	w := report.Delta(before, after)

	title := fmt.Sprintf("%s on %s (seed %d, warmup %d, measured %d cycles)",
		*workload, opts.Processor, *seed, *warmup, *cycles)
	fmt.Print(report.Summary(title, w))
	if *perProg {
		fmt.Println()
		fmt.Print(report.PerProgram(sim))
	}
}
