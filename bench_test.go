package repro

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/kernel"
	"repro/internal/netsim"
)

// benchScale keeps each regenerated artifact affordable under `go test
// -bench`. One benchmark iteration = one full experiment (warm-up +
// measured window); key numbers are attached as custom metrics so `-bench`
// output doubles as a results table.
var benchScale = experiments.Scale{Warmup: 400_000, Measure: 600_000, Interval: 100_000}

// runExperiment executes one paper artifact per benchmark iteration and
// reports its key values as benchmark metrics.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchScale, uint64(1+i))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for k, v := range last.Values {
		b.ReportMetric(v, k)
	}
}

// --- Figures ---

// BenchmarkFig1SPECIntCycleBreakdown regenerates Figure 1 (user/kernel/idle
// cycle shares over time for SPECInt95 on SMT).
func BenchmarkFig1SPECIntCycleBreakdown(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig2KernelTimeBreakdown regenerates Figure 2 (kernel-time
// categories, start-up vs steady state, SMT and superscalar).
func BenchmarkFig2KernelTimeBreakdown(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig3VMEntries regenerates Figure 3 (kernel memory-management
// incursions by kind).
func BenchmarkFig3VMEntries(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4Syscalls regenerates Figure 4 (system calls as % of cycles).
func BenchmarkFig4Syscalls(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5ApacheModes regenerates Figure 5 (kernel/user activity in
// Apache on SMT).
func BenchmarkFig5ApacheModes(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6ApacheKernelBreakdown regenerates Figure 6 (Apache kernel
// activity vs SPECInt phases).
func BenchmarkFig6ApacheKernelBreakdown(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7ApacheSyscalls regenerates Figure 7 (Apache syscall time by
// name and by resource).
func BenchmarkFig7ApacheSyscalls(b *testing.B) { runExperiment(b, "fig7") }

// --- Tables ---

// BenchmarkTable2InstructionMix regenerates Table 2 (SPECInt instruction mix).
func BenchmarkTable2InstructionMix(b *testing.B) { runExperiment(b, "tab2") }

// BenchmarkTable3MissClassification regenerates Table 3 (SPECInt miss rates
// and conflict classification).
func BenchmarkTable3MissClassification(b *testing.B) { runExperiment(b, "tab3") }

// BenchmarkTable4OSImpact regenerates Table 4 (SPEC with/without OS on SMT
// and superscalar).
func BenchmarkTable4OSImpact(b *testing.B) { runExperiment(b, "tab4") }

// BenchmarkTable5ApacheInstructionMix regenerates Table 5 (Apache mix).
func BenchmarkTable5ApacheInstructionMix(b *testing.B) { runExperiment(b, "tab5") }

// BenchmarkTable6ApacheArchMetrics regenerates Table 6 (Apache/SMT vs
// SPECInt/SMT vs Apache/superscalar) — the paper's headline 4.2x result.
func BenchmarkTable6ApacheArchMetrics(b *testing.B) { runExperiment(b, "tab6") }

// BenchmarkTable7ApacheMissClassification regenerates Table 7 (Apache miss
// causes across six hardware structures).
func BenchmarkTable7ApacheMissClassification(b *testing.B) { runExperiment(b, "tab7") }

// BenchmarkTable8ConstructiveSharing regenerates Table 8 (misses avoided by
// interthread prefetching, SMT vs superscalar).
func BenchmarkTable8ConstructiveSharing(b *testing.B) { runExperiment(b, "tab8") }

// BenchmarkTable9OSImpactApache regenerates Table 9 (OS impact on hardware
// structures for Apache).
func BenchmarkTable9OSImpactApache(b *testing.B) { runExperiment(b, "tab9") }

// --- Ablations (design choices called out in DESIGN.md §6) ---

// BenchmarkAblationFetchPolicy compares ICOUNT 2.8 against round-robin fetch.
func BenchmarkAblationFetchPolicy(b *testing.B) { runExperiment(b, "ablation-fetch") }

// BenchmarkAblationContexts sweeps the hardware context count 1..8.
func BenchmarkAblationContexts(b *testing.B) { runExperiment(b, "ablation-contexts") }

// BenchmarkAblationIdleLoop compares halting vs spinning idle loops.
func BenchmarkAblationIdleLoop(b *testing.B) { runExperiment(b, "ablation-idle") }

// BenchmarkAblationInterruptInterval sweeps the 10 ms interrupt granularity.
func BenchmarkAblationInterruptInterval(b *testing.B) { runExperiment(b, "ablation-interrupt") }

// BenchmarkAblationServerProcesses sweeps the Apache pool size.
func BenchmarkAblationServerProcesses(b *testing.B) { runExperiment(b, "ablation-procs") }

// BenchmarkFigureRegen measures regenerating all of Figures 1–7 from a warm
// checkpoint library at the reporting scale (experiments.Full) — the
// `cmd/experiments -windows-parallel` workflow. The one-time library build
// is setup cost outside the timer; the figureRegenSec metric is the
// wall-clock for a full warm regeneration, which `make bench-diff` gates so
// the library path's speedup over serial rendering cannot silently rot.
func BenchmarkFigureRegen(b *testing.B) {
	figs := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7"}
	sc := experiments.Full
	sc.Sampling = experiments.WindowedSampling(sc)
	dir := b.TempDir()
	// Prime: builds the three configuration libraries and proves the render
	// path works before the timer starts.
	workers := runtime.GOMAXPROCS(0)
	prime := experiments.NewWindowRunner(experiments.WindowedConfig{Dir: dir, Workers: workers})
	if out := experiments.RenderWindowed(figs, sc, 1, prime); strings.Count(out, "################") != len(figs) {
		b.Fatalf("priming render failed:\n%s", out)
	}
	runtime.GC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh runner per iteration drops the memoized window results,
		// so every iteration restores and re-simulates each library window.
		wr := experiments.NewWindowRunner(experiments.WindowedConfig{Dir: dir, Workers: workers})
		out := experiments.RenderWindowed(figs, sc, 1, wr)
		if len(out) == 0 {
			b.Fatal("empty windowed render")
		}
	}
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N), "figureRegenSec")
}

// BenchmarkSimulatorThroughput measures raw simulator speed (simulated
// cycles per second) on the Apache workload — an engineering metric, not a
// paper artifact.
func BenchmarkSimulatorThroughput(b *testing.B) {
	// Collect garbage left by earlier benchmarks in the same binary so GC
	// pressure from their heaps does not distort the throughput numbers.
	runtime.GC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run("fig5", experiments.Scale{
			Warmup: 200_000, Measure: 1_800_000, Interval: 60_000,
		}, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	b.ReportMetric(float64(2_000_000)*float64(b.N)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkSimulatorThroughputSampled measures the same workload and scale
// as BenchmarkSimulatorThroughput in sampled mode (fast-forward with
// warming between detailed windows). The simcycles/s ratio between the two
// is the sampled-mode speedup.
func BenchmarkSimulatorThroughputSampled(b *testing.B) {
	runtime.GC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run("fig5", experiments.Scale{
			Warmup: 200_000, Measure: 1_800_000, Interval: 60_000,
			Sampling: core.Sampling{Period: 250_000, DetailWindow: 5_000},
		}, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	b.ReportMetric(float64(2_000_000)*float64(b.N)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkAblationSampling regenerates the sampled-vs-full validation.
func BenchmarkAblationSampling(b *testing.B) { runExperiment(b, "ablation-sampling") }

// BenchmarkAblationNetworkDMA tests the paper's §2.2.1 claim that omitting
// NIC DMA from the memory bus does not change the bottom line.
func BenchmarkAblationNetworkDMA(b *testing.B) { runExperiment(b, "ablation-dma") }

// BenchmarkAblationAffinityScheduler compares the stock FIFO scheduler with
// the cache-affinity extension (the paper's future-work direction).
func BenchmarkAblationAffinityScheduler(b *testing.B) { runExperiment(b, "ablation-affinity") }

// BenchmarkAblationKeepAlive compares per-request connections (the paper's
// SPECWeb96 setup) with persistent HTTP/1.1-style connections.
func BenchmarkAblationKeepAlive(b *testing.B) { runExperiment(b, "ablation-keepalive") }

// BenchmarkAblationDiskBound contrasts the paper's cached fileset with a
// disk-bound one (every miss runs the driver + DMA; the disk is free).
func BenchmarkAblationDiskBound(b *testing.B) { runExperiment(b, "ablation-diskbound") }

// --- Event-driven netsim scaling (see DESIGN.md "Event-driven netsim") ---

// benchNetTick measures one network tick against a minimal in-process
// responder, holding the active load fixed (~250 arrivals per tick via
// think/stagger scaling) while the fleet size sweeps 1k→1M. The netTickNs
// metric lands in BENCH_<date>.json and is gated by `make bench-diff`: per
// tick the event-driven driver is O(active + arrivals), so netTickNs must
// stay flat as the dormant population grows 1000x.
func benchNetTick(b *testing.B, clients int) {
	const arrivalsPerTick = 250
	stagger := clients / arrivalsPerTick
	if stagger < 1 {
		stagger = 1
	}
	net := netsim.New(netsim.Config{
		Clients: clients, Seed: 7, RequestBytes: 300,
		ThinkTicks: stagger, StaggerTicks: stagger,
	})
	// The responder serves each known connection up to two 1460-byte
	// segments per tick — enough protocol back-and-forth to exercise acks,
	// demux, and multi-tick responses without dragging the kernel in.
	left := map[int]int{}
	var order []int
	tick := uint64(0)
	step := func() {
		tick++
		for _, fr := range net.Tick(tick) {
			switch {
			case fr.Corrupt || fr.Ack || fr.Conn == 0:
			case fr.Close:
				delete(left, fr.Conn)
			default:
				if _, ok := left[fr.Conn]; !ok {
					if sz := net.FileSize(fr.Conn); sz > 0 {
						left[fr.Conn] = sz
						order = append(order, fr.Conn)
					}
				}
			}
		}
		kept := order[:0]
		for _, conn := range order {
			n, ok := left[conn]
			if !ok {
				continue
			}
			for seg := 0; seg < 2 && n > 0; seg++ {
				chunk := 1460
				if chunk > n {
					chunk = n
				}
				n -= chunk
				net.Transmit(kernel.Frame{Conn: conn, Bytes: chunk}, 0)
			}
			if n == 0 {
				delete(left, conn)
			} else {
				left[conn] = n
				kept = append(kept, conn)
			}
		}
		order = kept
	}
	// Reach steady state (arrival waves overlapping completions) off-timer.
	for i := 0; i < 2048; i++ {
		step()
	}
	runtime.GC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "netTickNs")
}

// BenchmarkNetTick1k is the small-fleet baseline tick cost.
func BenchmarkNetTick1k(b *testing.B) { benchNetTick(b, 1_000) }

// BenchmarkNetTick100k holds the active load of the 1k fleet with 100x the
// dormant population.
func BenchmarkNetTick100k(b *testing.B) { benchNetTick(b, 100_000) }

// BenchmarkNetTick1M is the million-client point: same active load, 1000x
// the population; netTickNs must stay within noise of the 100k point.
func BenchmarkNetTick1M(b *testing.B) { benchNetTick(b, 1_000_000) }
