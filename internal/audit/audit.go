// Package audit is the runtime invariant auditor: a registry of cross-layer
// consistency checks over the live simulator (pipeline, kernel, memory,
// TLBs). The checks catch state corruption — a leaked page table after
// process exit, a stale TLB entry, a socket owned by a dead worker, a frame
// both free and mapped, issue-queue bookkeeping drift — close to where it
// happens rather than thousands of cycles later in a garbled report.
//
// Audits run on demand (Run), on every checkpoint (a snapshot is written
// only if the audit is clean), and periodically when enabled in the
// supervisor. All checks are read-only.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/tlb"
)

// Target is the simulator state the auditor inspects.
type Target struct {
	Engine *pipeline.Engine
	Kernel *kernel.Kernel
}

// Finding is one invariant violation.
type Finding struct {
	// Check is the name of the violated check.
	Check string
	// Detail says what was inconsistent, with identifiers for diagnosis.
	Detail string
}

func (f Finding) String() string { return f.Check + ": " + f.Detail }

// Error carries all findings of a failed audit.
type Error struct {
	// Cycle is the simulation cycle at which the audit ran.
	Cycle uint64
	// Findings are the violations, in check-registry order.
	Findings []Finding
}

func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d invariant violation(s) at cycle %d", len(e.Findings), e.Cycle)
	for _, f := range e.Findings {
		b.WriteString("\n  ")
		b.WriteString(f.String())
	}
	return b.String()
}

// Check is one registered consistency check.
type Check struct {
	// Name identifies the check in findings and documentation.
	Name string
	// Run inspects the target and returns any violations.
	Run func(t Target) []Finding
}

// Checks returns the full check registry.
func Checks() []Check {
	return []Check{
		{Name: "page-ownership", Run: checkPageOwnership},
		{Name: "frame-accounting", Run: checkFrameAccounting},
		{Name: "tlb-consistency", Run: checkTLBConsistency},
		{Name: "socket-ownership", Run: checkSocketOwnership},
		{Name: "backlog-timers", Run: checkBacklogTimers},
		{Name: "resource-accounting", Run: checkResourceAccounting},
		{Name: "pipeline-queues", Run: checkPipelineQueues},
	}
}

// Run executes every registered check and returns an *Error carrying all
// findings, or nil if the state is consistent.
func Run(t Target) error {
	var all []Finding
	for _, c := range Checks() {
		all = append(all, c.Run(t)...)
	}
	if len(all) == 0 {
		return nil
	}
	return &Error{Cycle: t.Engine.Now(), Findings: all}
}

// checkPageOwnership verifies every populated page table belongs to the
// kernel or to a live process: once an exited process's teardown has
// retired (Released), its address space must be gone. An exited thread
// whose exit path is still draining through the pipeline legitimately
// owns its pages until the teardown instruction retires.
func checkPageOwnership(t Target) []Finding {
	live := map[uint64]bool{mem.KernelPID: true}
	for _, ti := range t.Kernel.ThreadInfos() {
		if ti.Kind == "user" && !(ti.Exited && ti.Released) {
			live[ti.PID] = true
		}
	}
	pages := map[uint64]int{}
	for _, pte := range t.Kernel.Mem.AllMappings() {
		pages[pte.PID]++
	}
	var out []Finding
	for _, pid := range t.Kernel.Mem.TablePIDs() {
		if !live[pid] {
			out = append(out, Finding{
				Check:  "page-ownership",
				Detail: fmt.Sprintf("pid %d is not a live process but owns %d mapped page(s)", pid, pages[pid]),
			})
		}
	}
	return out
}

// checkFrameAccounting verifies physical-frame bookkeeping: no frame mapped
// twice, no frame both free and mapped, no frame outside physical memory,
// no duplicate free-list entries.
func checkFrameAccounting(t Target) []Finding {
	m := t.Kernel.Mem
	var out []Finding
	mapped := map[uint64]mem.PTE{}
	for _, pte := range m.AllMappings() {
		if pte.PFN >= m.Frames() {
			out = append(out, Finding{
				Check:  "frame-accounting",
				Detail: fmt.Sprintf("pid %d vpn %#x maps frame %d beyond physical memory (%d frames)", pte.PID, pte.VPN, pte.PFN, m.Frames()),
			})
		}
		if prev, dup := mapped[pte.PFN]; dup {
			out = append(out, Finding{
				Check:  "frame-accounting",
				Detail: fmt.Sprintf("frame %d mapped twice: pid %d vpn %#x and pid %d vpn %#x", pte.PFN, prev.PID, prev.VPN, pte.PID, pte.VPN),
			})
		}
		mapped[pte.PFN] = pte
	}
	free := m.FreeFrames()
	seen := map[uint64]bool{}
	for _, pfn := range free {
		if seen[pfn] {
			out = append(out, Finding{
				Check:  "frame-accounting",
				Detail: fmt.Sprintf("frame %d appears twice on the free list", pfn),
			})
		}
		seen[pfn] = true
		if pte, ok := mapped[pfn]; ok {
			out = append(out, Finding{
				Check:  "frame-accounting",
				Detail: fmt.Sprintf("frame %d is on the free list but mapped by pid %d vpn %#x", pfn, pte.PID, pte.VPN),
			})
		}
	}
	return out
}

// checkTLBConsistency verifies every valid TLB entry against the page
// tables and the ASN generation: the entry's ASN must belong to the kernel
// or a live thread, and that owner's page table must map the entry's page
// to the entry's frame.
func checkTLBConsistency(t Target) []Finding {
	// ASN -> live owning PIDs. ASNs recycle, so an ASN can briefly have
	// several live owners; the entry is consistent if any of them matches.
	// A thread whose exit teardown has not retired yet still owns its ASN
	// (the invalidation happens at teardown retirement).
	owners := map[uint16][]uint64{}
	for _, ti := range t.Kernel.ThreadInfos() {
		if !(ti.Exited && ti.Released) {
			owners[ti.ASN] = append(owners[ti.ASN], ti.PID)
		}
	}
	var out []Finding
	for _, pair := range []struct {
		name string
		t    *tlb.TLB
	}{{"ITLB", t.Engine.ITLB}, {"DTLB", t.Engine.DTLB}} {
		for _, e := range pair.t.LiveEntries() {
			pids := owners[e.ASN]
			if e.ASN == tlb.GlobalASN {
				pids = []uint64{mem.KernelPID}
			}
			if len(pids) == 0 {
				out = append(out, Finding{
					Check:  "tlb-consistency",
					Detail: fmt.Sprintf("%s entry asn %d vpn %#x: no live thread owns this ASN (stale after exit/recycle)", pair.name, e.ASN, e.VPN),
				})
				continue
			}
			sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
			ok := false
			for _, pid := range pids {
				if pfn, mapped := t.Kernel.Mem.Peek(pid, e.Addr); mapped && pfn == e.PFN {
					ok = true
					break
				}
			}
			if !ok {
				out = append(out, Finding{
					Check:  "tlb-consistency",
					Detail: fmt.Sprintf("%s entry asn %d vpn %#x -> pfn %d disagrees with the page tables of pid(s) %v", pair.name, e.ASN, e.VPN, e.PFN, pids),
				})
			}
		}
	}
	return out
}

// checkSocketOwnership verifies no open socket is owned by a dead thread:
// the crash path must reap a dead worker's descriptors.
func checkSocketOwnership(t Target) []Finding {
	exited := map[uint32]bool{}
	known := map[uint32]bool{}
	for _, ti := range t.Kernel.ThreadInfos() {
		known[ti.TID] = true
		if ti.Exited {
			exited[ti.TID] = true
		}
	}
	var out []Finding
	for _, s := range t.Kernel.SocketInfos() {
		if s.Closed || s.Owner == 0 {
			continue
		}
		switch {
		case !known[s.Owner]:
			out = append(out, Finding{
				Check:  "socket-ownership",
				Detail: fmt.Sprintf("socket %d (conn %d) owned by unknown thread %d", s.ID, s.Conn, s.Owner),
			})
		case exited[s.Owner]:
			out = append(out, Finding{
				Check:  "socket-ownership",
				Detail: fmt.Sprintf("socket %d (conn %d) still owned by exited thread %d", s.ID, s.Conn, s.Owner),
			})
		}
	}
	return out
}

// checkBacklogTimers verifies the overload-control bookkeeping: accept
// queues stay within the configured backlog bound and reference real
// unowned connection sockets, a listen socket never has both blocked
// acceptors and queued connections, and no socket's idle-timer clock
// (last-activity tick) runs ahead of the network clock.
func checkBacklogTimers(t Target) []Finding {
	var out []Finding
	socks := t.Kernel.SocketInfos()
	byID := map[int]kernel.SocketInfo{}
	for _, s := range socks {
		byID[s.ID] = s
	}
	limit := t.Kernel.AcceptBacklogLimit()
	now := t.Kernel.NetTicks()
	for _, s := range socks {
		if s.LastActive > now {
			out = append(out, Finding{
				Check:  "backlog-timers",
				Detail: fmt.Sprintf("socket %d last-active tick %d is ahead of the network clock %d", s.ID, s.LastActive, now),
			})
		}
		if !s.Listen {
			continue
		}
		if len(s.AcceptQ) > limit {
			out = append(out, Finding{
				Check:  "backlog-timers",
				Detail: fmt.Sprintf("listen socket %d accept queue holds %d connections, over the backlog bound %d", s.ID, len(s.AcceptQ), limit),
			})
		}
		if len(s.AcceptQ) > 0 && s.Waiters > 0 {
			out = append(out, Finding{
				Check:  "backlog-timers",
				Detail: fmt.Sprintf("listen socket %d has %d blocked acceptor(s) while %d connection(s) sit queued", s.ID, s.Waiters, len(s.AcceptQ)),
			})
		}
		seen := map[int]bool{}
		for _, id := range s.AcceptQ {
			if seen[id] {
				out = append(out, Finding{
					Check:  "backlog-timers",
					Detail: fmt.Sprintf("listen socket %d queues socket %d twice", s.ID, id),
				})
			}
			seen[id] = true
			q, ok := byID[id]
			switch {
			case !ok:
				out = append(out, Finding{
					Check:  "backlog-timers",
					Detail: fmt.Sprintf("listen socket %d queues unknown socket %d", s.ID, id),
				})
			case q.Listen:
				out = append(out, Finding{
					Check:  "backlog-timers",
					Detail: fmt.Sprintf("listen socket %d queues listen socket %d", s.ID, id),
				})
			case q.Owner != 0:
				out = append(out, Finding{
					Check:  "backlog-timers",
					Detail: fmt.Sprintf("listen socket %d queues socket %d already owned by thread %d", s.ID, id, q.Owner),
				})
			}
		}
	}
	return out
}

// checkResourceAccounting verifies the finite-pool bookkeeping end to end:
// socket table in-use + freelist == table size (with a well-formed freelist),
// per-process RSS matches the page tables and sums to the frames in use,
// per-thread descriptor counts match the sockets they own (no FD leak after
// teardown), and the process table's slots, freelist, and live count agree
// with the thread inventory.
func checkResourceAccounting(t Target) []Finding {
	var out []Finding
	k := t.Kernel
	bad := func(format string, args ...any) {
		out = append(out, Finding{Check: "resource-accounting", Detail: fmt.Sprintf(format, args...)})
	}

	// --- socket table ---
	socks := k.SocketInfos()
	sockStatic, _, _, procStatic := k.PoolSizes()
	if len(socks) > sockStatic {
		bad("socket table holds %d entries, over the configured size %d", len(socks), sockStatic)
	}
	freeIDs := k.SockFreeIDs()
	onFree := map[int]bool{}
	for _, id := range freeIDs {
		if onFree[id] {
			bad("socket %d appears twice on the socket freelist", id)
		}
		onFree[id] = true
		switch {
		case id < 0 || id >= len(socks):
			bad("socket freelist references out-of-range id %d (table size %d)", id, len(socks))
		case !socks[id].Free:
			bad("socket %d is on the freelist but not marked free", id)
		}
	}
	liveSocks := 0
	ownedBy := map[uint32]int{}
	for _, s := range socks {
		if s.Free {
			if !onFree[s.ID] {
				bad("socket %d is marked free but missing from the freelist", s.ID)
			}
			continue
		}
		liveSocks++
		if !s.Listen && s.Owner != 0 {
			ownedBy[s.Owner]++
		}
	}
	if liveSocks+len(freeIDs) != len(socks) {
		bad("socket accounting drift: %d in use + %d free != %d table entries", liveSocks, len(freeIDs), len(socks))
	}

	// --- memory: RSS vs page tables ---
	m := k.Mem
	perPID := map[uint64]uint64{}
	for _, pte := range m.AllMappings() {
		perPID[pte.PID]++
	}
	var rssSum uint64
	rssPIDs := map[uint64]bool{}
	for _, e := range m.RSSEntries() {
		rssPIDs[e.PID] = true
		rssSum += e.Pages
		if perPID[e.PID] != e.Pages {
			bad("pid %d RSS %d disagrees with its %d mapped page(s)", e.PID, e.Pages, perPID[e.PID])
		}
	}
	for pid, n := range perPID {
		if !rssPIDs[pid] && n > 0 {
			bad("pid %d maps %d page(s) but has no RSS entry", pid, n)
		}
	}
	if inUse := m.FramesInUse(); rssSum != inUse {
		bad("RSS total %d != frames in use %d (free %d, reclaim-staged %d)",
			rssSum, inUse, len(m.FreeFrames()), len(m.DirtyFrames()))
	}

	// --- per-thread descriptor accounting & process table ---
	slots, freeSlots := k.ProcTable()
	inSlot := map[uint32]int{}
	usedSlots := 0
	for i, tid := range slots {
		if tid == 0 {
			continue
		}
		usedSlots++
		if prev, dup := inSlot[tid]; dup {
			bad("thread %d occupies process-table slots %d and %d", tid, prev, i)
		}
		inSlot[tid] = i
	}
	if usedSlots+freeSlots != len(slots) {
		bad("process-table drift: %d used + %d free != %d slots", usedSlots, freeSlots, len(slots))
	}
	if live := k.LiveUserProcs(); live != usedSlots {
		bad("live-process count %d disagrees with %d occupied slot(s)", live, usedSlots)
	}
	if len(slots) != procStatic {
		bad("process table holds %d slots, configured size is %d", len(slots), procStatic)
	}
	for _, ti := range k.ThreadInfos() {
		if ti.Kind != "user" {
			continue
		}
		torn := ti.Exited && ti.Released
		switch {
		case torn && ti.Slot >= 0:
			bad("released thread %d still holds process-table slot %d", ti.TID, ti.Slot)
		case !torn && ti.Slot < 0:
			bad("live user thread %d has no process-table slot", ti.TID)
		case !torn && (ti.Slot >= len(slots) || slots[ti.Slot] != ti.TID):
			bad("thread %d claims slot %d but the table disagrees", ti.TID, ti.Slot)
		}
		if torn && (ti.FDs != 0 || ownedBy[ti.TID] != 0) {
			bad("released thread %d leaks descriptors: fds=%d, owned sockets=%d", ti.TID, ti.FDs, ownedBy[ti.TID])
		}
		if !torn && ti.FDs != ownedBy[ti.TID] {
			bad("thread %d descriptor count %d != %d owned socket(s)", ti.TID, ti.FDs, ownedBy[ti.TID])
		}
	}
	return out
}

// checkPipelineQueues verifies pipeline bookkeeping: issue-queue occupancy
// against ROB contents, and the engine's own structural invariants
// (renaming-register accounting, ROB sequence continuity).
func checkPipelineQueues(t Target) (out []Finding) {
	defer func() {
		if r := recover(); r != nil {
			out = append(out, Finding{
				Check:  "pipeline-queues",
				Detail: fmt.Sprintf("engine invariant violated: %v", r),
			})
		}
	}()
	for _, d := range t.Engine.CheckQueueConsistency() {
		out = append(out, Finding{Check: "pipeline-queues", Detail: d})
	}
	t.Engine.CheckInvariants()
	return out
}
