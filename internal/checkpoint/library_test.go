package checkpoint

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func libManifest() LibraryManifest {
	return LibraryManifest{
		Fingerprint: "abc123",
		CodeVersion: "test-1",
		Seed:        7,
		Window:      4,
		Cycle:       123_456,
		Retired:     654_321,
	}
}

func TestLibraryManifestRoundTrip(t *testing.T) {
	img := NewImage()
	if err := PutManifest(img, libManifest()); err != nil {
		t.Fatalf("PutManifest: %v", err)
	}
	got, err := Manifest(img)
	if err != nil {
		t.Fatalf("Manifest: %v", err)
	}
	if got != libManifest() {
		t.Fatalf("manifest round trip: got %+v, want %+v", got, libManifest())
	}
}

func TestVerifyManifestMatches(t *testing.T) {
	img := NewImage()
	if err := PutManifest(img, libManifest()); err != nil {
		t.Fatalf("PutManifest: %v", err)
	}
	m, err := VerifyManifest(img, "win-0004.ckpt", "abc123")
	if err != nil {
		t.Fatalf("VerifyManifest: %v", err)
	}
	if m.Window != 4 || m.Cycle != 123_456 {
		t.Fatalf("VerifyManifest returned %+v", m)
	}
}

func TestVerifyManifestRejectsStaleFingerprint(t *testing.T) {
	img := NewImage()
	if err := PutManifest(img, libManifest()); err != nil {
		t.Fatalf("PutManifest: %v", err)
	}
	_, err := VerifyManifest(img, "win-0004.ckpt", "different")
	if err == nil {
		t.Fatal("VerifyManifest accepted a mismatched fingerprint")
	}
	var ferr *FormatError
	if !errors.As(err, &ferr) {
		t.Fatalf("error is %T (%v), want *FormatError", err, err)
	}
	if !strings.Contains(ferr.Reason, "stale library image") {
		t.Fatalf("error reason %q does not identify the image as stale", ferr.Reason)
	}
}

func TestVerifyManifestMissingSection(t *testing.T) {
	_, err := VerifyManifest(NewImage(), "x.ckpt", "abc")
	var ferr *FormatError
	if !errors.As(err, &ferr) {
		t.Fatalf("error is %T (%v), want *FormatError", err, err)
	}
}

func TestLibraryIndexRoundTrip(t *testing.T) {
	dir := t.TempDir()
	idx := LibraryIndex{
		Fingerprint: "abc123",
		CodeVersion: "test-1",
		Workload:    "specint",
		Seed:        7,
		Span:        250_000,
		Windows: []LibraryWindow{
			{File: "win-0000.ckpt", Cycle: 0, Retired: 0},
			{File: "win-0001.ckpt", Cycle: 10_000, Retired: 55_000},
		},
	}
	if err := WriteLibraryIndex(dir, idx); err != nil {
		t.Fatalf("WriteLibraryIndex: %v", err)
	}
	got, err := ReadLibraryIndex(dir)
	if err != nil {
		t.Fatalf("ReadLibraryIndex: %v", err)
	}
	if got.Fingerprint != idx.Fingerprint || got.Span != idx.Span || len(got.Windows) != 2 {
		t.Fatalf("index round trip: got %+v", got)
	}
	if got.Windows[1] != idx.Windows[1] {
		t.Fatalf("window entry round trip: got %+v, want %+v", got.Windows[1], idx.Windows[1])
	}
}

func TestReadLibraryIndexMissing(t *testing.T) {
	_, err := ReadLibraryIndex(t.TempDir())
	var ferr *FormatError
	if !errors.As(err, &ferr) {
		t.Fatalf("error is %T (%v), want *FormatError", err, err)
	}
}

func TestLibraryWindowPath(t *testing.T) {
	got := LibraryWindowPath("lib", 7)
	want := filepath.Join("lib", "win-0007.ckpt")
	if got != want {
		t.Fatalf("LibraryWindowPath = %q, want %q", got, want)
	}
}
