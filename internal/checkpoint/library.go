// Checkpoint libraries: a directory of per-window checkpoint images plus a
// JSON index, produced once per (workload, options, span) configuration and
// consumed by the parallel-window regeneration pass. Each image carries a
// manifest section binding it to the configuration fingerprint that produced
// it, so a stale library (different options, seed partitioning, or simulator
// code version) is rejected with a *FormatError instead of silently running
// divergent state.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestSection is the image section naming the library manifest.
const ManifestSection = "library-manifest"

// IndexFile is the name of the library's JSON index inside its directory.
const IndexFile = "index.json"

// LibraryManifest binds one window image to the configuration that produced
// it. Fingerprint covers the workload, full option set, seed partitioning and
// code version (see core.Fingerprint); the rest locates the window.
type LibraryManifest struct {
	// Fingerprint is the configuration fingerprint the image belongs to.
	Fingerprint string
	// CodeVersion is the simulator code-version string at build time
	// (redundant with Fingerprint, kept for human diagnosis).
	CodeVersion string
	// Seed is the configuration's base seed.
	Seed uint64
	// Window is the zero-based window index within the library.
	Window int
	// Cycle and Retired are the simulated-cycle and retired-instruction
	// positions of the window's opening boundary.
	Cycle, Retired uint64
}

// PutManifest stores m as the image's manifest section.
func PutManifest(img *Image, m LibraryManifest) error {
	return img.Put(ManifestSection, m)
}

// Manifest decodes the image's manifest section. A missing section is a
// *FormatError (the image predates libraries or is not a library image).
func Manifest(img *Image) (LibraryManifest, error) {
	var m LibraryManifest
	err := img.Get(ManifestSection, &m)
	return m, err
}

// VerifyManifest decodes the manifest and rejects the image unless its
// fingerprint matches wantFP. The error is a *FormatError so callers can
// distinguish "stale library, rebuild it" from I/O failures the same way they
// distinguish corrupt files.
func VerifyManifest(img *Image, path, wantFP string) (LibraryManifest, error) {
	m, err := Manifest(img)
	if err != nil {
		if fe, ok := err.(*FormatError); ok && fe.Path == "" {
			fe.Path = path
		}
		return m, err
	}
	if m.Fingerprint != wantFP {
		return m, &FormatError{
			Path: path,
			Reason: fmt.Sprintf("stale library image: fingerprint %s does not match configuration %s (options, seed partitioning, or code version changed; rebuild the library)",
				m.Fingerprint, wantFP),
		}
	}
	return m, nil
}

// LibraryWindow locates one window image within a library.
type LibraryWindow struct {
	// File is the image file name, relative to the library directory.
	File string
	// Cycle and Retired are the window's opening-boundary positions.
	Cycle, Retired uint64
}

// LibraryIndex is the JSON index of a checkpoint library directory.
type LibraryIndex struct {
	// Fingerprint identifies the configuration; restores verify it against
	// each image's manifest.
	Fingerprint string
	// CodeVersion is the simulator code-version string at build time.
	CodeVersion string
	// Workload is the workload name ("specint", "apache", ...).
	Workload string
	// Seed is the configuration's base seed.
	Seed uint64
	// Span is the total simulated-cycle span the library covers.
	Span uint64
	// Windows lists the window images in window order.
	Windows []LibraryWindow
}

// LibraryWindowPath returns the image path for window win inside dir.
func LibraryWindowPath(dir string, win int) string {
	return filepath.Join(dir, fmt.Sprintf("win-%04d.ckpt", win))
}

// WriteLibraryIndex writes idx to dir's index file atomically. The index is
// written last during a build, so a directory with a valid index has all its
// window images in place.
func WriteLibraryIndex(dir string, idx LibraryIndex) error {
	raw, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: encoding library index: %w", err)
	}
	raw = append(raw, '\n')
	tmp, err := os.CreateTemp(dir, ".index-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: writing library index: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: writing library index: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, IndexFile)); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// ReadLibraryIndex reads dir's index file. Any failure — including the file
// simply not existing yet — is a *FormatError, which callers treat as "no
// usable library here, build one".
func ReadLibraryIndex(dir string) (LibraryIndex, error) {
	var idx LibraryIndex
	raw, err := os.ReadFile(filepath.Join(dir, IndexFile))
	if err != nil {
		return idx, &FormatError{Path: filepath.Join(dir, IndexFile), Reason: "reading library index", Err: err}
	}
	if err := json.Unmarshal(raw, &idx); err != nil {
		return idx, &FormatError{Path: filepath.Join(dir, IndexFile), Reason: "decoding library index", Err: err}
	}
	return idx, nil
}
