// Package checkpoint defines the on-disk container for simulator
// checkpoints: a versioned, CRC-protected set of named gob-encoded
// sections. The package knows nothing about the simulator — core composes
// the sections — so it can be imported from every layer without cycles.
//
// Format (all integers little-endian):
//
//	8 bytes  magic "OSSMTCKP"
//	4 bytes  format version
//	4 bytes  section count
//	per section:
//	  4 bytes  name length, then the name (UTF-8)
//	  8 bytes  payload length, then the payload (gob)
//	4 bytes  CRC-32 (IEEE) of everything above
//
// Sections are written sorted by name, so the same state always produces
// the same bytes. Decoding a corrupt or truncated file returns a
// *FormatError; it never panics.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Magic identifies a checkpoint file.
const Magic = "OSSMTCKP"

// Version is the current format version. Readers reject other versions.
const Version = 1

// Sanity bounds on decoded lengths, so a corrupt header cannot drive a
// multi-gigabyte allocation before the CRC check is reached.
const (
	maxSections   = 1 << 12
	maxNameLen    = 1 << 10
	maxPayloadLen = 1 << 31
)

// FormatError describes a malformed, truncated, or corrupt checkpoint.
type FormatError struct {
	// Path is the file involved ("" for stream decoding).
	Path string
	// Reason says what was wrong.
	Reason string
	// Err is the underlying error, if any.
	Err error
}

func (e *FormatError) Error() string {
	where := "checkpoint"
	if e.Path != "" {
		where = fmt.Sprintf("checkpoint %s", e.Path)
	}
	if e.Err != nil {
		return fmt.Sprintf("%s: %s: %v", where, e.Reason, e.Err)
	}
	return fmt.Sprintf("%s: %s", where, e.Reason)
}

func (e *FormatError) Unwrap() error { return e.Err }

// Image is an in-memory checkpoint: named, independently decodable
// sections.
type Image struct {
	sections map[string][]byte
}

// NewImage returns an empty image.
func NewImage() *Image {
	return &Image{sections: map[string][]byte{}}
}

// Put gob-encodes v into the named section, replacing any previous content.
func (img *Image) Put(name string, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("checkpoint: encoding section %q: %w", name, err)
	}
	img.sections[name] = buf.Bytes()
	return nil
}

// Get decodes the named section into v (a pointer). A missing section is a
// *FormatError.
func (img *Image) Get(name string, v any) error {
	b, ok := img.sections[name]
	if !ok {
		return &FormatError{Reason: fmt.Sprintf("missing section %q", name)}
	}
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return &FormatError{Reason: fmt.Sprintf("decoding section %q", name), Err: err}
	}
	return nil
}

// Has reports whether the named section exists.
func (img *Image) Has(name string) bool {
	_, ok := img.sections[name]
	return ok
}

// SectionLen returns the encoded byte length of the named section (0 if
// absent) — cheap introspection for size accounting and tests.
func (img *Image) SectionLen(name string) int {
	return len(img.sections[name])
}

// Names returns the section names in sorted order.
func (img *Image) Names() []string {
	names := make([]string, 0, len(img.sections))
	for name := range img.sections {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Encode writes the image to w in the documented format.
func (img *Image) Encode(w io.Writer) error {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	var u32 [4]byte
	var u64 [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		buf.Write(u32[:])
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		buf.Write(u64[:])
	}
	put32(Version)
	names := img.Names()
	put32(uint32(len(names)))
	for _, name := range names {
		put32(uint32(len(name)))
		buf.WriteString(name)
		payload := img.sections[name]
		put64(uint64(len(payload)))
		buf.Write(payload)
	}
	put32(crc32.ChecksumIEEE(buf.Bytes()))
	_, err := w.Write(buf.Bytes())
	return err
}

// Decode reads an image from r, verifying structure and checksum.
func Decode(r io.Reader) (*Image, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, &FormatError{Reason: "reading", Err: err}
	}
	return decode(raw, "")
}

func decode(raw []byte, path string) (*Image, error) {
	fail := func(reason string) (*Image, error) {
		return nil, &FormatError{Path: path, Reason: reason}
	}
	if len(raw) < len(Magic)+4+4+4 {
		return fail("truncated header")
	}
	if string(raw[:len(Magic)]) != Magic {
		return fail("bad magic (not a checkpoint file)")
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return fail("checksum mismatch (corrupt or truncated)")
	}
	off := len(Magic)
	get32 := func() (uint32, bool) {
		if off+4 > len(body) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(body[off:])
		off += 4
		return v, true
	}
	get64 := func() (uint64, bool) {
		if off+8 > len(body) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(body[off:])
		off += 8
		return v, true
	}
	ver, _ := get32()
	if ver != Version {
		return fail(fmt.Sprintf("unsupported format version %d (want %d)", ver, Version))
	}
	count, ok := get32()
	if !ok || count > maxSections {
		return fail("bad section count")
	}
	img := NewImage()
	for i := uint32(0); i < count; i++ {
		nameLen, ok := get32()
		if !ok || nameLen > maxNameLen || off+int(nameLen) > len(body) {
			return fail("bad section name")
		}
		name := string(body[off : off+int(nameLen)])
		off += int(nameLen)
		payLen, ok := get64()
		if !ok || payLen > maxPayloadLen || off+int(payLen) > len(body) {
			return fail(fmt.Sprintf("bad payload length for section %q", name))
		}
		img.sections[name] = append([]byte(nil), body[off:off+int(payLen)]...)
		off += int(payLen)
	}
	if off != len(body) {
		return fail("trailing garbage after sections")
	}
	return img, nil
}

// WriteFile writes the image to path atomically (temp file + rename), so a
// crash mid-write never leaves a half-written checkpoint behind.
func WriteFile(path string, img *Image) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := img.Encode(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// ReadFile reads and verifies a checkpoint file.
func ReadFile(path string) (*Image, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, &FormatError{Path: path, Reason: "reading", Err: err}
	}
	return decode(raw, path)
}
