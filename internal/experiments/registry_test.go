package experiments

import (
	"strings"
	"testing"
)

// TestRegisterDuplicatePanics guards the registry against two experiments
// silently shadowing each other under one id: before this check, the later
// init() would overwrite the earlier registration and the lost experiment
// would simply vanish from `experiments -list`.
func TestRegisterDuplicatePanics(t *testing.T) {
	ids := IDs()
	if len(ids) == 0 {
		t.Fatal("registry is empty")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("register() with a duplicate id did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, ids[0]) {
			t.Fatalf("panic message %v does not name the duplicate id %q", r, ids[0])
		}
	}()
	register(ids[0], "duplicate", func(ev *env, sc Scale, seed uint64) Result { return Result{} })
}
