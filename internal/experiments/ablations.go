package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sys"
)

func init() {
	register("ablation-fetch", "Ablation: ICOUNT 2.8 fetch vs round-robin", ablationFetch)
	register("ablation-contexts", "Ablation: hardware context count 1..8", ablationContexts)
	register("ablation-idle", "Ablation: halting vs spinning idle loop", ablationIdle)
	register("ablation-interrupt", "Ablation: network interrupt granularity", ablationInterrupt)
	register("ablation-procs", "Ablation: Apache server-process pool size", ablationProcs)
}

func ablationFetch(ev *env, sc Scale, seed uint64) Result {
	icount := ev.window(apacheSim(sc, seed, core.Options{}), sc)
	rr := ev.window(apacheSim(sc, seed, core.Options{RoundRobinFetch: true}), sc)
	t := report.NewTable("policy", "IPC", "squash%", "fetchable")
	t.Row("icount-2.8", report.F2(icount.IPC()), report.F1(icount.Metrics.SquashPct()), report.F1(icount.Metrics.AvgFetchable()))
	t.Row("round-robin", report.F2(rr.IPC()), report.F1(rr.Metrics.SquashPct()), report.F1(rr.Metrics.AvgFetchable()))
	text := t.String() + "\nICOUNT starves clogged contexts of fetch slots; round-robin feeds them anyway.\n"
	return Result{Text: text, Values: map[string]float64{
		"icountIPC": icount.IPC(), "rrIPC": rr.IPC(),
	}}
}

func ablationContexts(ev *env, sc Scale, seed uint64) Result {
	t := report.NewTable("contexts", "IPC", "kernel%", "fetchable")
	vals := map[string]float64{}
	for _, n := range []int{1, 2, 4, 8} {
		w := ev.window(apacheSim(sc, seed, core.Options{Contexts: n}), sc)
		t.Row(fmt.Sprintf("%d", n), report.F2(w.IPC()), report.F1(w.CycleAt.KernelPct()), report.F1(w.Metrics.AvgFetchable()))
		vals[fmt.Sprintf("ipc%d", n)] = w.IPC()
	}
	text := t.String() + "\nThroughput scales with contexts as SMT converts thread-level into instruction-level parallelism.\n"
	return Result{Text: text, Values: vals}
}

func ablationIdle(ev *env, sc Scale, seed uint64) Result {
	// Half-loaded machine: 4 Apache processes on 8 contexts leaves idle
	// contexts whose spin loop competes for fetch slots.
	halt := ev.window(apacheSim(sc, seed, core.Options{ServerProcesses: 4, Clients: 8}), sc)
	spin := ev.window(apacheSim(sc, seed, core.Options{ServerProcesses: 4, Clients: 8, IdleSpin: true}), sc)
	t := report.NewTable("idle model", "IPC", "retired/kcycle")
	perK := func(w report.Snapshot) float64 {
		if w.Metrics.Cycles == 0 {
			return 0
		}
		return float64(w.Metrics.Retired) / float64(w.Metrics.Cycles) * 1000
	}
	t.Row("halting", report.F2(halt.IPC()), report.F1(perK(halt)))
	t.Row("spinning", report.F2(spin.IPC()), report.F1(perK(spin)))
	text := t.String() + "\nThe paper (§2.2.2): the idle loop is unnecessary work that wastes SMT resources.\n" +
		"(Spinning inflates IPC with useless idle instructions while stealing fetch slots from real work.)\n"
	return Result{Text: text, Values: map[string]float64{
		"haltIPC": halt.IPC(), "spinIPC": spin.IPC(),
	}}
}

func ablationInterrupt(ev *env, sc Scale, seed uint64) Result {
	t := report.NewTable("interval(cycles)", "IPC", "requests done", "netisr%")
	vals := map[string]float64{}
	for _, iv := range []uint64{sc.Interval / 2, sc.Interval, sc.Interval * 2} {
		sim := core.NewApache(core.Options{Seed: seed, CyclesPer10ms: iv, Sampling: sc.Sampling})
		w := ev.window(sim, sc)
		t.Row(fmt.Sprintf("%d", iv), report.F2(w.IPC()), report.I(w.NetCompleted),
			report.F1(w.CycleAt.PctCat(sys.CatNetisr)))
		vals[fmt.Sprintf("done%d", iv)] = float64(w.NetCompleted)
	}
	text := t.String() + "\nCoarser interrupt granularity batches request arrivals and delays responses.\n"
	return Result{Text: text, Values: vals}
}

func ablationProcs(ev *env, sc Scale, seed uint64) Result {
	t := report.NewTable("server processes", "IPC", "requests done", "kernel%")
	vals := map[string]float64{}
	for _, n := range []int{8, 16, 32, 64} {
		w := ev.window(apacheSim(sc, seed, core.Options{ServerProcesses: n}), sc)
		t.Row(fmt.Sprintf("%d", n), report.F2(w.IPC()), report.I(w.NetCompleted), report.F1(w.CycleAt.KernelPct()))
		vals[fmt.Sprintf("done%d", n)] = float64(w.NetCompleted)
	}
	text := t.String() + "\nThe paper runs 64 processes; fewer processes leave contexts idle when requests block.\n"
	return Result{Text: text, Values: vals}
}

func init() {
	register("ablation-dma", "Ablation: network-interface DMA on the memory bus (§2.2.1 omission)", ablationDMA)
	register("ablation-affinity", "Ablation: FIFO vs cache-affinity scheduling (OS-optimization future work)", ablationAffinity)
}

func ablationDMA(ev *env, sc Scale, seed uint64) Result {
	off := ev.window(apacheSim(sc, seed, core.Options{}), sc)
	on := ev.window(apacheSim(sc, seed, core.Options{ModelNetworkDMA: true}), sc)
	t := report.NewTable("network DMA", "IPC", "requests done", "L2 miss%")
	t.Row("omitted (paper)", report.F2(off.IPC()), report.I(off.NetCompleted), report.F2(off.L2.MissRateOverall()))
	t.Row("modeled", report.F2(on.IPC()), report.I(on.NetCompleted), report.F2(on.L2.MissRateOverall()))
	text := t.String() + "\nThe paper omits NIC DMA, arguing average memory-bus delay stays insignificant;\n" +
		"modeling it here should (and does) barely move the bottom line.\n"
	return Result{Text: text, Values: map[string]float64{
		"ipcOff": off.IPC(), "ipcOn": on.IPC(),
	}}
}

func ablationAffinity(ev *env, sc Scale, seed uint64) Result {
	// Oversubscribed machine so scheduling decisions matter: 64 processes
	// with frequent preemption on 8 contexts.
	fifo := ev.window(apacheSim(sc, seed, core.Options{}), sc)
	aff := ev.window(apacheSim(sc, seed, core.Options{AffinityScheduler: true}), sc)
	t := report.NewTable("scheduler", "IPC", "requests done", "L1D miss%", "DTLB miss%")
	t.Row("fifo (paper's MP scheduler)", report.F2(fifo.IPC()), report.I(fifo.NetCompleted),
		report.F2(fifo.L1D.MissRateOverall()), report.F2(fifo.DTLB.MissRateOverall()))
	t.Row("cache-affinity", report.F2(aff.IPC()), report.I(aff.NetCompleted),
		report.F2(aff.L1D.MissRateOverall()), report.F2(aff.DTLB.MissRateOverall()))
	text := t.String() + "\nThe paper leaves SMT-aware scheduling as future work (§2.2.2); this is the\n" +
		"simplest such policy: keep a thread on the context whose caches it warmed.\n"
	return Result{Text: text, Values: map[string]float64{
		"fifoIPC": fifo.IPC(), "affinityIPC": aff.IPC(),
	}}
}

func init() {
	register("ablation-keepalive", "Ablation: one-request connections vs HTTP/1.1 keep-alive", ablationKeepAlive)
}

func ablationKeepAlive(ev *env, sc Scale, seed uint64) Result {
	one := ev.window(apacheSim(sc, seed, core.Options{}), sc)
	ka := ev.window(apacheSim(sc, seed, core.Options{KeepAliveRequests: 8}), sc)
	t := report.NewTable("connections", "IPC", "requests done", "accept cyc%", "netisr%")
	rowFor := func(label string, w report.Snapshot) {
		t.Row(label, report.F2(w.IPC()), report.I(w.NetCompleted),
			report.F1(w.CycleAt.PctSyscall(sys.SysAccept)),
			report.F1(w.CycleAt.PctCat(sys.CatNetisr)))
	}
	rowFor("1 request/conn (paper)", one)
	rowFor("8 requests/conn (keep-alive)", ka)
	text := t.String() + "\nPersistent connections amortize accept/connection setup across requests —\n" +
		"a server-structure change the paper's per-request syscall profile (Fig. 7) motivates.\n"
	return Result{Text: text, Values: map[string]float64{
		"oneIPC": one.IPC(), "kaIPC": ka.IPC(),
		"oneDone": float64(one.NetCompleted), "kaDone": float64(ka.NetCompleted),
	}}
}

func init() {
	register("ablation-sampling", "Ablation: sampled simulation vs full detail (Fig 1 / Fig 5 headline metrics)", ablationSampling)
	register("ablation-diskbound", "Ablation: cached vs disk-bound fileset (§2.2.1 speculation)", ablationDiskBound)
}

// runToRetired advances sim in small chunks until at least target
// instructions have retired; chunked so supervised runs keep auditing and
// checkpointing on schedule.
func (ev *env) runToRetired(sim *core.Simulator, target uint64) {
	for sim.Engine.Metrics.Retired < target {
		ev.advance(sim, 5_000)
	}
}

// ablationSampling validates the sampled-simulation mode: for each workload
// it measures the paper's headline kernel-time share (Fig 1 steady state for
// SPECInt, Fig 5 for Apache) once in sampled mode and once in full detail,
// and checks the sampled estimate lands within its own 4-standard-error
// band. The full-detail arm replays the same retired-instruction region the
// sampled arm measured: fast-forward compresses simulated time, so a
// cycle-aligned comparison would contrast different program phases.
func ablationSampling(ev *env, sc Scale, seed uint64) Result {
	t := report.NewTable("workload", "metric", "full", "sampled", "err", "band", "verdict")
	vals := map[string]float64{}
	for _, wl := range []struct {
		name, metric string
		build        func(core.Options) *core.Simulator
	}{
		{"specint", "fig1 steady kernel%", core.NewSPECInt},
		{"apache", "fig5 kernel%", core.NewApache},
	} {
		base := core.Options{Seed: seed, CyclesPer10ms: sc.Interval}
		so := base
		so.Sampling = core.Sampling{Period: sc.Interval}
		sampled := wl.build(so)
		ev.advance(sampled, sc.Warmup)
		a := report.Take(sampled)
		ev.advance(sampled, sc.Measure)
		b := report.Take(sampled)
		d := report.Delta(a, b)
		sampledPct := d.CycleAt.KernelPct()

		full := wl.build(base)
		ev.runToRetired(full, a.Metrics.Retired)
		fa := report.Take(full)
		ev.runToRetired(full, b.Metrics.Retired)
		fb := report.Take(full)
		fd := report.Delta(fa, fb)
		fullPct := fd.CycleAt.KernelPct()

		band := 4 * d.Sampling.KernelPct.StdErr()
		if band < 5 {
			band = 5 // absolute floor when the per-window stderr is tiny
		}
		errAbs := math.Abs(sampledPct - fullPct)
		within, verdict := 0.0, "OUTSIDE BAND"
		if errAbs <= band {
			within, verdict = 1, "within"
		}
		t.Row(wl.name, wl.metric, report.F1(fullPct), report.F1(sampledPct),
			report.F1(errAbs), report.F1(band), verdict)
		vals[wl.name+"FullKernelPct"] = fullPct
		vals[wl.name+"SampledKernelPct"] = sampledPct
		vals[wl.name+"Err"] = errAbs
		vals[wl.name+"Band"] = band
		vals[wl.name+"Within"] = within
	}
	text := t.String() + "\nThe sampled arm fast-forwards between detailed windows (warming caches,\n" +
		"TLBs and branch predictors functionally); the full arm replays the same\n" +
		"instruction region in detail. Err is the absolute difference, band is\n" +
		"max(4 stderr, 5 points) from the sampled run's own window estimator.\n"
	return Result{Text: text, Values: vals}
}

func ablationDiskBound(ev *env, sc Scale, seed uint64) Result {
	cached := ev.window(apacheSim(sc, seed, core.Options{}), sc)
	bound := ev.window(apacheSim(sc, seed, core.Options{BufferCacheHitRate: 0.3}), sc)
	t := report.NewTable("fileset", "IPC", "requests done", "read cyc%", "L1D miss%")
	rowFor := func(label string, w report.Snapshot) {
		t.Row(label, report.F2(w.IPC()), report.I(w.NetCompleted),
			report.F1(w.CycleAt.PctSyscall(sys.SysRead)),
			report.F2(w.L1D.MissRateOverall()))
	}
	rowFor("mostly cached (paper)", cached)
	rowFor("disk-bound (30% hit)", bound)
	text := t.String() + "\nThe paper simulates a large fast disk array (zero latency) and notes a\n" +
		"disk-bound machine could alter behavior; here cache misses still cost the\n" +
		"driver path and DMA even though the disk itself stays free.\n"
	return Result{Text: text, Values: map[string]float64{
		"cachedIPC": cached.IPC(), "boundIPC": bound.IPC(),
	}}
}
