// Deterministic parallel experiment runner. Every experiment run is fully
// seeded and isolated — each job builds its own simulators and (when
// supervised) its own supervisor, so (experiment, seed) jobs can execute on
// a bounded worker pool with no shared mutable state. Determinism is
// preserved by construction: workers only decide *when* a job runs, never
// what it computes, and results are collected into a slice indexed by job
// position, so callers assemble output in the same fixed order as the
// serial path and the bytes come out identical.
//
// This package is deliberately outside detlint's nogoroutine scope: the
// analyzer pins the cycle-level core (pipeline, kernel, core, mem, cache,
// tlb, bpred) to straight-line code, while whole-simulation fan-out like
// this lives a layer above, where goroutine interleaving cannot reach
// simulated time.
package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Job names one (experiment, seed) unit of work in a sweep.
type Job struct {
	ID   string
	Seed uint64
}

// JobResult is the outcome of one plain (unsupervised) job.
type JobResult struct {
	Res Result
	Err error
}

// SupervisedJobResult is the outcome of one supervised job.
type SupervisedJobResult struct {
	Res    Result
	Status RunStatus
	Err    error
}

// forEach invokes fn(i) for every i in [0,n) using at most workers
// goroutines, blocking until all calls return. fn writes its result into a
// caller-owned slot at index i, so completion order never leaks into
// output order. workers <= 1 degenerates to a plain serial loop.
func forEach(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// RunJobs runs the jobs on a worker pool of the given size and returns
// their results in job order. Each result is field-identical to what a
// serial Run of the same (id, seed) would produce.
func RunJobs(jobs []Job, sc Scale, workers int) []JobResult {
	out := make([]JobResult, len(jobs))
	forEach(len(jobs), workers, func(i int) {
		out[i].Res, out[i].Err = Run(jobs[i].ID, sc, jobs[i].Seed)
	})
	return out
}

// RunJobsSupervised is RunJobs under per-job supervision (deadline, audits,
// checkpoint-resumed retry); every job gets its own supervisor.
func RunJobsSupervised(jobs []Job, sc Scale, timeout time.Duration, auditEvery uint64, workers int) []SupervisedJobResult {
	out := make([]SupervisedJobResult, len(jobs))
	forEach(len(jobs), workers, func(i int) {
		out[i].Res, out[i].Status, out[i].Err = RunSupervised(jobs[i].ID, sc, jobs[i].Seed, timeout, auditEvery)
	})
	return out
}

// RunAll runs every registered experiment at the given scale and seed on a
// worker pool and returns the results in IDs() order.
func RunAll(sc Scale, seed uint64, workers int) []JobResult {
	ids := IDs()
	jobs := make([]Job, len(ids))
	for i, id := range ids {
		jobs[i] = Job{ID: id, Seed: seed}
	}
	return RunJobs(jobs, sc, workers)
}

// RenderAll runs every experiment and returns the full report (used by
// cmd/experiments and EXPERIMENTS.md generation). Serial; identical to
// RenderAllParallel with one worker.
func RenderAll(sc Scale, seed uint64) string {
	return RenderAllParallel(sc, seed, 1)
}

// RenderAllParallel is RenderAll on a worker pool. The report is assembled
// in IDs() order from per-job results, so its bytes are identical to the
// serial rendering regardless of worker count.
func RenderAllParallel(sc Scale, seed uint64, workers int) string {
	ids := IDs()
	results := RunAll(sc, seed, workers)
	var b strings.Builder
	for i, jr := range results {
		if jr.Err != nil {
			fmt.Fprintf(&b, "%s: %v\n", ids[i], jr.Err)
			continue
		}
		fmt.Fprintf(&b, "################ %s — %s\n\n%s\n", jr.Res.ID, jr.Res.Title, jr.Res.Text)
	}
	return b.String()
}
