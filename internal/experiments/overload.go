package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/report"
)

func init() {
	register("ablation-overload", "Ablation: offered load vs throughput under overload (backlog + idle reaping)", ablationOverload)
}

// Client counts treated as 1x offered load in the overload sweep — the
// capacity knee of each machine at the sweep's scales. Capacity is a
// property of the processor: the paper's SMT serves several times the
// superscalar's request rate, so "10x capacity" is a different absolute
// client count on each.
const (
	baseOverloadClientsSMT = 32
	baseOverloadClientsSS  = 8
)

// checkedWindow is window() with the simulation guardrails on: outside a
// supervised sweep it advances through RunChecked, so a livelock, deadline,
// or invariant panic surfaces as a structured error instead of a wedged or
// corrupted run. Supervised sweeps already route every step through the
// supervisor's own RunChecked.
func (ev *env) checkedWindow(sim *core.Simulator, sc Scale) (report.Snapshot, error) {
	if ev.sup != nil {
		return ev.window(sim, sc), nil
	}
	ctx := context.Background()
	if err := sim.RunChecked(ctx, sc.Warmup); err != nil {
		return report.Snapshot{}, err
	}
	a := report.Take(sim)
	if err := sim.RunChecked(ctx, sc.Measure); err != nil {
		return report.Snapshot{}, err
	}
	return report.Delta(a, report.Take(sim)), nil
}

// ablationOverload sweeps offered load from 0.5x to 10x of the nominal
// capacity point on both processors, with the full overload client mix
// active (slow-trickle senders, keep-alive storms, flash-crowd bursts) and
// the kernel's overload controls on (bounded accept backlog, idle reaping).
// The shape under test: completed-request throughput rises to the capacity
// knee and then plateaus — excess offered load is shed at the backlog and
// by the reaper rather than dragging completed work down — and the whole
// sweep runs under the watchdog without a single trip.
func ablationOverload(ev *env, sc Scale, seed uint64) Result {
	t := report.NewTable("proc", "load", "clients", "done", "refused",
		"idle-reap", "slow-reap", "p50", "p99", "p999")
	vals := map[string]float64{}
	trips := 0
	for _, p := range []core.ProcessorKind{core.SMT, core.Superscalar} {
		tag := "smt"
		scP := sc
		// All tick-denominated overload parameters scale with the
		// processor's service rate: a timeout that is generous on the SMT
		// machine mistakes normal in-service waits for stalls on the slower
		// baseline, reaping healthy connections (the classic too-aggressive-
		// timeout collapse), so the sweep tunes them per machine like an
		// operator would.
		tickScale := 1
		base := baseOverloadClientsSMT
		if p == core.Superscalar {
			tag = "ss"
			base = baseOverloadClientsSS
			// The one-context baseline retires a few times slower on Apache
			// (the paper's central result); give it a proportionally longer
			// window so each row measures enough served work to show the
			// plateau rather than an all-zero column.
			tickScale = 4
			scP.Warmup *= 4
			scP.Measure *= 4
		}
		peak, last := 0.0, 0.0
		for _, load := range []struct {
			label string
			mult  float64
		}{{"0.5x", 0.5}, {"1x", 1}, {"2x", 2}, {"5x", 5}, {"10x", 10}} {
			nc := int(float64(base) * load.mult)
			bs := nc / 8
			if bs < 2 {
				bs = 2
			}
			sim := apacheSim(scP, seed, core.Options{
				Processor:         p,
				Clients:           nc,
				KeepAliveRequests: 4,
				AcceptBacklog:     32,
				IdleTimeoutTicks:  4 * tickScale,
				Faults: faults.Config{
					SlowClientRate:  0.10,
					TrickleTicks:    2 * tickScale,
					StormClientRate: 0.10,
					StormHoldTicks:  5 * tickScale,
					BurstEvery:      3 * tickScale,
					BurstSize:       bs,
				},
			})
			w, err := ev.checkedWindow(sim, scP)
			if err != nil {
				trips++
				t.Row(tag, load.label, fmt.Sprintf("%d", nc),
					"trip", "-", "-", "-", "-", "-", "-")
				continue
			}
			done := float64(w.NetCompleted)
			if done > peak {
				peak = done
			}
			last = done
			t.Row(tag, load.label, fmt.Sprintf("%d", nc),
				report.I(w.NetCompleted), report.I(w.ConnsRefused),
				report.I(w.ReapedIdle), report.I(w.ReapedSlowloris),
				report.I(w.Latency.Quantile(0.50)), report.I(w.Latency.Quantile(0.99)),
				report.I(w.Latency.Quantile(0.999)))
		}
		vals[tag+"Peak"] = peak
		vals[tag+"Done10x"] = last
	}
	vals["watchdogTrips"] = float64(trips)
	text := t.String() + "\nPast the capacity knee the server sheds load instead of collapsing: SYNs\n" +
		"over the backlog bound are refused (clients recover via retransmit),\n" +
		"stalled and idle-parked connections are reaped on the idle timer, and\n" +
		"completed throughput plateaus while tail latency absorbs the pressure.\n"
	return Result{Text: text, Values: vals}
}
