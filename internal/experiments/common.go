// Package experiments regenerates every table and figure of the paper's
// evaluation (Figures 1–7, Tables 2–9), plus the ablations DESIGN.md calls
// out. Each experiment builds the right simulations, runs a warm-up phase
// (the paper measures a booted system in steady state over hundreds of
// millions of instructions), measures a window, and renders the paper's
// artifact next to the paper's published values.
package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
)

// Scale sets the cycle budget of an experiment.
type Scale struct {
	// Warmup is the cycles run before measurement begins.
	Warmup uint64
	// Measure is the measured window in cycles.
	Measure uint64
	// Interval is the 10 ms interrupt granularity in cycles.
	Interval uint64
	// Sampling, when enabled, runs every simulation built through the
	// standard specSim/apacheSim helpers in sampled mode (fast-forward with
	// warming between detailed windows). Percentage-style metrics remain
	// estimates of the detailed windows; raw counters are not comparable to
	// full-detail runs.
	Sampling core.Sampling
}

// Quick is the test-suite scale (seconds per experiment).
var Quick = Scale{Warmup: 600_000, Measure: 900_000, Interval: 120_000}

// Full is the reporting scale used for EXPERIMENTS.md.
var Full = Scale{Warmup: 2_500_000, Measure: 4_000_000, Interval: 200_000}

// Result is one regenerated artifact.
type Result struct {
	// ID is the experiment id ("fig1" … "tab9", "ablation-…").
	ID string
	// Title describes the artifact.
	Title string
	// Text is the rendered report.
	Text string
	// Values holds the key numbers for tests, benches and EXPERIMENTS.md.
	Values map[string]float64
}

// env carries per-run context through an experiment function — the
// supervisor when the run is supervised, and the checkpoint-library runner
// when the run regenerates from windows (both nil on plain runs). Each job
// in a parallel sweep gets its own env, so experiment functions never share
// mutable state across goroutines.
type env struct {
	sup *supervisor
	win *WindowRunner
}

// runner builds one experiment.
type runner struct {
	title string
	fn    func(ev *env, sc Scale, seed uint64) Result
}

var registry = map[string]runner{}

func register(id, title string, fn func(ev *env, sc Scale, seed uint64) Result) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate experiment id " + strconv.Quote(id))
	}
	registry[id] = runner{title: title, fn: fn}
}

// IDs returns all experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run regenerates one experiment.
func Run(id string, sc Scale, seed uint64) (Result, error) {
	r, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	res := r.fn(&env{}, sc, seed)
	res.ID = id
	res.Title = r.title
	return res, nil
}

// --------------------------------------------------------------- helpers

// advance moves a simulation forward by n cycles. Under RunSupervised it
// routes through the run's supervisor (deadline, periodic audits, checkpoint
// memoization); otherwise it is a plain Run.
func (ev *env) advance(sim *core.Simulator, n uint64) {
	if ev.sup != nil {
		ev.sup.step(sim, n)
		return
	}
	sim.Run(n)
}

// window runs warmup, then measures for sc.Measure cycles and returns the
// delta snapshot of the measured window. Under a WindowRunner the simulation
// never runs here: the result is the merged deltas of the library windows
// that open after warmup.
func (ev *env) window(sim *core.Simulator, sc Scale) report.Snapshot {
	if ev.win != nil {
		return ev.win.merged(sim, sc, sc.Warmup, ^uint64(0))
	}
	ev.advance(sim, sc.Warmup)
	a := report.Take(sim)
	ev.advance(sim, sc.Measure)
	b := report.Take(sim)
	return report.Delta(a, b)
}

// phases runs the simulation from cold and returns the start-up window
// (the first sc.Warmup cycles) and the steady window (the next sc.Measure).
// Under a WindowRunner the two phases are the merged library windows that
// open before and after the warmup boundary.
func (ev *env) phases(sim *core.Simulator, sc Scale) (startup, steady report.Snapshot) {
	if ev.win != nil {
		return ev.win.merged(sim, sc, 0, sc.Warmup), ev.win.merged(sim, sc, sc.Warmup, ^uint64(0))
	}
	zero := report.Take(sim)
	ev.advance(sim, sc.Warmup)
	a := report.Take(sim)
	ev.advance(sim, sc.Measure)
	b := report.Take(sim)
	return report.Delta(zero, a), report.Delta(a, b)
}

// stepWin is one time-series bucket of a steps() sweep: the cycle at which
// the bucket ends and its window delta.
type stepWin struct {
	end uint64
	w   report.Snapshot
}

// steps splits the full span into n equal time buckets and returns each
// bucket's delta, for the Figure 1/5 time series. Under a WindowRunner a
// bucket holds the merged library windows opening inside it (the windowed
// sampling period guarantees at least one per bucket); otherwise the
// simulation advances bucket by bucket.
func (ev *env) steps(sim *core.Simulator, sc Scale, n int) []stepWin {
	total := sc.Warmup + sc.Measure
	step := total / uint64(n)
	out := make([]stepWin, n)
	if ev.win != nil {
		for i := 0; i < n; i++ {
			from, to := uint64(i)*step, uint64(i+1)*step
			if i == n-1 {
				// Integer division can leave a tail after the last bucket
				// boundary; fold any window opening there into the last
				// bucket rather than dropping it.
				to = ^uint64(0)
			}
			out[i] = stepWin{end: uint64(i+1) * step, w: ev.win.merged(sim, sc, from, to)}
		}
		return out
	}
	prev := report.Take(sim)
	for i := 0; i < n; i++ {
		ev.advance(sim, step)
		cur := report.Take(sim)
		out[i] = stepWin{end: sim.Now(), w: report.Delta(prev, cur)}
		prev = cur
	}
	return out
}

// paperNote renders a "paper reported" reference block.
func paperNote(lines ...string) string {
	var b strings.Builder
	b.WriteString("\nPaper reference (ASPLOS 2000):\n")
	for _, l := range lines {
		b.WriteString("  " + l + "\n")
	}
	return b.String()
}

func specSim(sc Scale, seed uint64, o core.Options) *core.Simulator {
	o.Seed = seed
	o.CyclesPer10ms = sc.Interval
	o.Sampling = sc.Sampling
	return core.NewSPECInt(o)
}

func apacheSim(sc Scale, seed uint64, o core.Options) *core.Simulator {
	o.Seed = seed
	o.CyclesPer10ms = sc.Interval
	o.Sampling = sc.Sampling
	return core.NewApache(o)
}
