package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

func init() {
	register("ablation-scale", "Ablation: client-population scaling 10^3..10^6 under the event-driven netsim", ablationScale)
}

// scaleArrivalsPerTick is the per-tick arrival wave held constant across the
// sweep: the server's offered load does not change, only the dormant
// population behind it. It matches the overload sweep's 1x capacity point so
// the server stays at its knee rather than in collapse.
const scaleArrivalsPerTick = 32

// ablationScale sweeps the client population from one thousand to one
// million while holding the offered load fixed: think time and arrival
// stagger scale with the population, so every row presents the same
// per-tick arrival wave and only the dormant fleet grows 1000x. Under the
// old per-tick full-scan driver the largest row was unrunnable (every tick
// walked a million state machines); under the timer wheel a tick costs
// O(active + arrivals), so completed throughput and tail latency must stay
// flat across three orders of magnitude. Every run advances through
// RunChecked — watchdog, deadline, and invariant audits on — and the
// latency percentiles come from the driver's deterministic histogram
// (MeasureLatency, no fault injection needed).
func ablationScale(ev *env, sc Scale, seed uint64) Result {
	t := report.NewTable("clients", "stagger", "done", "refused",
		"idle-reap", "p50", "p99", "p999")
	vals := map[string]float64{}
	trips := 0
	var base float64
	for _, row := range []struct {
		label   string
		clients int
	}{{"1k", 1_000}, {"10k", 10_000}, {"100k", 100_000}, {"1m", 1_000_000}} {
		stagger := row.clients / scaleArrivalsPerTick
		sim := apacheSim(sc, seed, core.Options{
			Clients:          row.clients,
			ThinkTicks:       stagger,
			StaggerTicks:     stagger,
			MeasureLatency:   true,
			IdleTimeoutTicks: 8,
		})
		w, err := ev.checkedWindow(sim, sc)
		if err != nil {
			trips++
			t.Row(row.label, fmt.Sprintf("%d", stagger),
				"trip", "-", "-", "-", "-", "-")
			continue
		}
		done := float64(w.NetCompleted)
		if base == 0 {
			base = done
		}
		t.Row(row.label, fmt.Sprintf("%d", stagger),
			report.I(w.NetCompleted), report.I(w.ConnsRefused),
			report.I(w.ReapedIdle+w.ReapedSlowloris),
			report.I(w.Latency.Quantile(0.50)), report.I(w.Latency.Quantile(0.99)),
			report.I(w.Latency.Quantile(0.999)))
		vals["done"+row.label] = done
	}
	vals["watchdogTrips"] = float64(trips)
	if base > 0 {
		vals["done1mOver1k"] = vals["done1m"] / base
	}
	text := t.String() + "\nThe arrival wave is identical in every row; only the dormant population\n" +
		"grows. With the event-driven driver the per-tick cost is O(active +\n" +
		"arrivals), so a million mostly-idle clients complete the same work at\n" +
		"the same tail latency as a thousand (ns/tick scaling is pinned\n" +
		"separately by BenchmarkNetTick in bench form).\n"
	return Result{Text: text, Values: vals}
}
