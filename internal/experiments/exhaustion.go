package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/report"
)

func init() {
	register("ablation-exhaustion", "Ablation: kernel resource exhaustion (frame limit + finite pools) vs throughput", ablationExhaustion)
}

// Offered load held constant across the exhaustion sweep: the same capacity
// points as the overload ablation, so the only variable is how much memory
// and pool headroom the kernel has.
const (
	baseExhaustClientsSMT = 32
	baseExhaustClientsSS  = 8
)

// ablationExhaustion measures graceful degradation under kernel resource
// exhaustion. Per processor it first runs unconstrained to measure demand —
// peak frames in use, peak sockets, peak mbuf occupancy — then replays the
// identical workload with physical memory and every kernel pool capped at a
// sweep of multiples of that demand, from 2x headroom down to 0.5x. The
// caps land mid-run through the exhaustion fault domain (static sizes are
// 2x demand; a squeeze to fraction 1-f/2 leaves exactly f times demand),
// which also arms the clients' retransmit recovery. The shape under test:
// throughput holds near baseline while headroom exists, degrades gradually
// as the caps bite — reclaim scans, ENOBUFS SYN drops, EMFILE accept
// rejects — and never collapses or wedges (zero watchdog trips).
func ablationExhaustion(ev *env, sc Scale, seed uint64) Result {
	t := report.NewTable("proc", "headroom", "done", "reclaims", "scans",
		"sock-rej", "mbuf-drop", "fd-rej", "retrans")
	vals := map[string]float64{}
	trips := 0
	for _, p := range []core.ProcessorKind{core.SMT, core.Superscalar} {
		tag := "smt"
		scP := sc
		tickScale := 1
		clients := baseExhaustClientsSMT
		if p == core.Superscalar {
			tag = "ss"
			clients = baseExhaustClientsSS
			// The one-context baseline serves requests a few times slower
			// (the paper's central result); stretch its windows so every
			// row completes enough work to compare against.
			tickScale = 4
			scP.Warmup *= 4
			scP.Measure *= 4
		}
		opts := func() core.Options {
			return core.Options{
				Processor:         p,
				Clients:           clients,
				KeepAliveRequests: 4,
				IdleTimeoutTicks:  4 * tickScale,
			}
		}

		// Unconstrained baseline: throughput and peak resource demand.
		sim := apacheSim(scP, seed, opts())
		w0, err := ev.checkedWindow(sim, scP)
		if err != nil {
			trips++
			t.Row(tag, "base", "trip", "-", "-", "-", "-", "-", "-")
			continue
		}
		frameDemand := w0.FramesHighwater
		sockDemand := w0.SockHighwater
		mbufDemand := w0.MbufHighwater
		if sockDemand < 4 {
			sockDemand = 4
		}
		if mbufDemand < 8 {
			mbufDemand = 8
		}
		base := float64(w0.NetCompleted)
		vals[tag+"Base"] = base
		vals[tag+"FrameDemand"] = float64(frameDemand)
		t.Row(tag, "base", report.I(w0.NetCompleted), report.I(w0.MemReclaims),
			report.I(w0.MemReclaimScans), report.I(w0.SockPoolRejects),
			report.I(w0.MbufDrops), report.I(w0.FDRejects), report.I(w0.NetRetransmits))

		for _, h := range []struct {
			label  string
			key    string
			factor float64
		}{
			{"2x", "200", 2}, {"1.5x", "150", 1.5}, {"1x", "100", 1},
			{"0.75x", "075", 0.75}, {"0.5x", "050", 0.5},
		} {
			// Static capacities are 2x measured demand; the squeeze takes
			// them to factor x demand on the first network tick, so the
			// whole measured window runs under the cap.
			o := opts()
			o.MemFrameLimit = 2 * frameDemand
			o.SocketTable = 2 * sockDemand
			o.MbufPool = 2 * mbufDemand
			o.FDLimit = 4
			if frac := 1 - h.factor/2; frac > 0 {
				o.Faults = faults.Config{
					MemSqueezeFrac:  frac,
					PoolSqueezeFrac: frac,
					SqueezeAtTick:   1,
				}
			}
			sim := apacheSim(scP, seed, o)
			w, err := ev.checkedWindow(sim, scP)
			if err != nil {
				trips++
				t.Row(tag, h.label, "trip", "-", "-", "-", "-", "-", "-")
				continue
			}
			vals[tag+"Done"+h.key] = float64(w.NetCompleted)
			vals[tag+"Reclaims"+h.key] = float64(w.MemReclaims)
			vals[tag+"Rejects"+h.key] = float64(w.SockPoolRejects + w.MbufDrops + w.FDRejects + w.ForkRejects)
			t.Row(tag, h.label, report.I(w.NetCompleted), report.I(w.MemReclaims),
				report.I(w.MemReclaimScans), report.I(w.SockPoolRejects),
				report.I(w.MbufDrops), report.I(w.FDRejects), report.I(w.NetRetransmits))
		}
	}
	vals["watchdogTrips"] = float64(trips)
	text := t.String() + fmt.Sprintf("\nEvery kernel resource is finite: physical frames (reclaimed FIFO with a\n"+
		"second chance below the low watermark), the socket and process tables,\n"+
		"the mbuf pool, and per-process descriptors. As headroom shrinks from 2x\n"+
		"demand to 0.5x, the kernel sheds work through structured errors —\n"+
		"ENOBUFS SYN drops, EMFILE accept rejects, EAGAIN forks — that clients\n"+
		"recover from by retransmit and backoff, so completed throughput degrades\n"+
		"gradually instead of collapsing (watchdog trips: %d).\n", trips)
	return Result{Text: text, Values: vals}
}
