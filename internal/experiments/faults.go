package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/report"
)

func init() {
	register("ablation-loss", "Ablation: network loss rate vs throughput (retry/backoff)", ablationLoss)
	register("ablation-crash", "Ablation: Apache worker crash rate vs recovery cost", ablationCrash)
}

// ablationLoss sweeps the wire's frame-loss probability and shows how the
// client retry/backoff machinery converts loss into latency: requests still
// complete, but each drop costs a timeout plus a retransmission, and the
// network side of the kernel does the protocol work twice.
func ablationLoss(ev *env, sc Scale, seed uint64) Result {
	t := report.NewTable("loss", "IPC", "done", "retransmits", "resets", "aborted", "dropped")
	vals := map[string]float64{}
	for _, loss := range []float64{0, 0.02, 0.05, 0.10} {
		sim := apacheSim(sc, seed, core.Options{
			Faults: faults.Config{LossRate: loss},
		})
		w := ev.window(sim, sc)
		t.Row(fmt.Sprintf("%.2f", loss), report.F2(w.IPC()), report.I(w.NetCompleted),
			report.I(w.NetRetransmits), report.I(w.NetResets), report.I(w.NetAborted),
			report.I(w.FramesDropped))
		key := fmt.Sprintf("done%.0f", loss*100)
		vals[key] = float64(w.NetCompleted)
		vals[fmt.Sprintf("retx%.0f", loss*100)] = float64(w.NetRetransmits)
	}
	text := t.String() + "\nEvery dropped frame costs the client a timeout (capped exponential backoff)\n" +
		"and the server a duplicate of the protocol-stack work; throughput degrades\n" +
		"gracefully rather than wedging, because retransmits re-open lost connections.\n"
	return Result{Text: text, Values: vals}
}

// ablationCrash sweeps the per-syscall worker crash probability: each crash
// exercises the involuntary-exit path (lock release, socket reap, address-
// space teardown with ASN invalidation) plus a re-fork, and the client
// answers the mid-request reset with a fresh connection.
func ablationCrash(ev *env, sc Scale, seed uint64) Result {
	t := report.NewTable("crashrate", "IPC", "done", "crashes", "respawns", "resets", "asn-recycles")
	vals := map[string]float64{}
	for _, cr := range []float64{0, 0.0005, 0.002, 0.01} {
		sim := apacheSim(sc, seed, core.Options{
			Faults: faults.Config{CrashRate: cr},
		})
		w := ev.window(sim, sc)
		t.Row(fmt.Sprintf("%.4f", cr), report.F2(w.IPC()), report.I(w.NetCompleted),
			report.I(w.WorkerCrashes), report.I(w.WorkerRespawns), report.I(w.NetResets),
			report.I(w.ASNRecycles))
		key := fmt.Sprintf("crashes%.0f", cr*10000)
		vals[key] = float64(w.WorkerCrashes)
		vals[fmt.Sprintf("done%.0f", cr*10000)] = float64(w.NetCompleted)
	}
	text := t.String() + "\nA crashed worker dies at a syscall boundary: its locks are released, its\n" +
		"sockets reset (the client reconnects), its address space torn down through\n" +
		"the same exit path a voluntary exit uses, and the master forks a fresh\n" +
		"worker — churning pids and ASNs, so sustained crash rates recycle ASNs.\n"
	return Result{Text: text, Values: vals}
}
