package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/report"
	"repro/internal/sys"
)

func init() {
	register("fig5", "Figure 5: kernel and user activity in Apache on SMT", fig5)
	register("fig6", "Figure 6: breakdown of kernel activity in Apache vs SPECInt", fig6)
	register("fig7", "Figure 7: Apache system-call time by name and by resource", fig7)
	register("tab5", "Table 5: Apache dynamic instruction mix", tab5)
	register("tab6", "Table 6: architectural metrics — Apache/SMT, SPECInt/SMT, Apache/superscalar", tab6)
	register("tab7", "Table 7: Apache miss-cause distribution", tab7)
	register("tab8", "Table 8: misses avoided by interthread cooperation (Apache)", tab8)
	register("tab9", "Table 9: impact of the OS on hardware structures (Apache)", tab9)
}

func fig5(ev *env, sc Scale, seed uint64) Result {
	sim := apacheSim(sc, seed, core.Options{})
	t := report.NewTable("cycles(k)", "user%", "kernel%", "pal%", "idle%")
	var lastKernel float64
	for _, sw := range ev.steps(sim, sc, 12) {
		w := sw.w
		lastKernel = w.CycleAt.PctMode(isa.Kernel) + w.CycleAt.PctMode(isa.PAL)
		t.Row(report.I(sw.end/1000),
			report.F1(w.CycleAt.PctMode(isa.User)),
			report.F1(w.CycleAt.PctMode(isa.Kernel)),
			report.F1(w.CycleAt.PctMode(isa.PAL)),
			report.F1(w.CycleAt.PctCat(sys.CatIdle)))
	}
	text := t.String() + paperNote(
		"Apache has almost no start-up phase",
		"once requests arrive, over 75% of cycles are spent in the OS")
	return Result{Text: text, Values: map[string]float64{"kernelPct": lastKernel}}
}

func fig6(ev *env, sc Scale, seed uint64) Result {
	ap := apacheSim(sc, seed, core.Options{})
	apW := ev.window(ap, sc)
	sp := specSim(sc, seed, core.Options{})
	spStart, spSteady := ev.phases(sp, sc)

	t := report.NewTable("workload", "syscall%", "dtlb%", "itlb%", "intr%", "netisr%", "sched%", "spin%", "other%", "pal%")
	kernelBreakdownRows(t, "apache", apW)
	kernelBreakdownRows(t, "spec-startup", spStart)
	kernelBreakdownRows(t, "spec-steady", spSteady)

	netShare := apW.CycleAt.PctCat(sys.CatNetisr) + apW.CycleAt.PctCat(sys.CatInterrupt)
	text := t.String() + paperNote(
		"Apache: 57% of kernel time in system calls; 34% of kernel cycles in interrupts+netisr (26% of all cycles)",
		"Apache DTLB handling only ~13% of kernel time, vs 82% for steady-state SPECInt",
		"SPECInt kernel time is dominated by TLB-miss handling")
	return Result{Text: text, Values: map[string]float64{
		"apacheSyscallPct": apW.CycleAt.PctCat(sys.CatSyscall),
		"apacheNetPct":     netShare,
		"apacheDTLBPct":    apW.CycleAt.PctCat(sys.CatDTLB),
	}}
}

func fig7(ev *env, sc Scale, seed uint64) Result {
	sim := apacheSim(sc, seed, core.Options{})
	// phases covers the whole span, so startup+steady telescopes to the same
	// full-run service-instruction totals the resource chart needs, while
	// the syscall table keeps using the steady (measured) window.
	startup, steady := ev.phases(sim, sc)
	w := steady

	t := report.NewTable("syscall", "% of all cycles")
	for n := uint16(1); n < sys.NumSyscalls; n++ {
		p := w.CycleAt.PctSyscall(n)
		if p < 0.05 {
			continue
		}
		t.Row(sys.Name(n), report.F1(p))
	}
	t.Row("(kernel preamble+PAL in each)", "")

	// Right-hand chart: group service work by resource (instruction-count
	// proxy over the same window).
	var res [5]uint64
	var resTotal uint64
	for i := range res {
		res[i] = startup.SvcInstByRes[i] + steady.SvcInstByRes[i]
		resTotal += res[i]
	}
	t2 := report.NewTable("resource", "% of service instructions")
	var netPct, filePct float64
	for i := range res {
		if resTotal == 0 {
			break
		}
		p := 100 * float64(res[i]) / float64(resTotal)
		switch sys.Resource(i) {
		case sys.ResNet:
			netPct = p
		case sys.ResFile:
			filePct = p
		}
		t2.Row(sys.Resource(i).String(), report.F1(p))
	}
	text := t.String() + "\n" + t2.String() + paperNote(
		"stat ~10% of all cycles; read/write/writev ~19%; I/O control ~10%",
		"network read/write is the largest consumer (~17% of cycles)",
		"network and file syscall time are nearly balanced (21% vs 18% of kernel cycles)")
	return Result{Text: text, Values: map[string]float64{
		"statPct":    w.CycleAt.PctSyscall(sys.SysStat),
		"rwPct":      w.CycleAt.PctSyscall(sys.SysRead) + w.CycleAt.PctSyscall(sys.SysWrite) + w.CycleAt.PctSyscall(sys.SysWritev),
		"netResPct":  netPct,
		"fileResPct": filePct,
	}}
}

func tab5(ev *env, sc Scale, seed uint64) Result {
	sim := apacheSim(sc, seed, core.Options{})
	w := ev.window(sim, sc)
	t := report.NewTable("type", "user", "kernel", "overall")
	mixRows(t, "apache", w)
	text := t.String() + paperNote(
		"user: 21.8% loads, 10.1% stores, 16.7% branches, no FP",
		"kernel: ~54%/40% of loads/stores physically addressed",
		"overall ~42%/33% of loads/stores bypass the DTLB")
	return Result{Text: text, Values: map[string]float64{
		"kernelPhysLoadPct": w.Mix.PhysFrac(true, false),
		"userLoadPct":       w.Mix.Pct(false, isa.Load),
		"userFPPct":         w.Mix.Pct(false, isa.FPALU),
	}}
}

func tab6(ev *env, sc Scale, seed uint64) Result {
	ap := apacheSim(sc, seed, core.Options{})
	apW := ev.window(ap, sc)
	sp := specSim(sc, seed, core.Options{})
	_, spW := ev.phases(sp, sc)
	ss := apacheSim(sc, seed, core.Options{Processor: core.Superscalar})
	ssW := ev.window(ss, sc)

	t := report.NewTable("metric", "apache/smt", "spec/smt", "apache/ss")
	row := func(name string, f func(w report.Snapshot) float64, fmtF func(float64) string) {
		t.Row(name, fmtF(f(apW)), fmtF(f(spW)), fmtF(f(ssW)))
	}
	row("IPC", report.Snapshot.IPC, report.F2)
	row("squashed % of fetched", func(w report.Snapshot) float64 { return w.Metrics.SquashPct() }, report.F1)
	row("avg fetchable contexts", func(w report.Snapshot) float64 { return w.Metrics.AvgFetchable() }, report.F1)
	row("branch mispredict %", report.Snapshot.BpMispredictRate, report.F1)
	row("ITLB miss %", func(w report.Snapshot) float64 { return w.ITLB.MissRateOverall() }, report.F2)
	row("DTLB miss %", func(w report.Snapshot) float64 { return w.DTLB.MissRateOverall() }, report.F2)
	row("L1I miss %", func(w report.Snapshot) float64 { return w.L1I.MissRateOverall() }, report.F2)
	row("L1D miss %", func(w report.Snapshot) float64 { return w.L1D.MissRateOverall() }, report.F2)
	row("L2 miss %", func(w report.Snapshot) float64 { return w.L2.MissRateOverall() }, report.F2)
	row("0-fetch cycles %", func(w report.Snapshot) float64 { return w.Metrics.PctCycles(w.Metrics.ZeroFetch) }, report.F1)
	row("0-issue cycles %", func(w report.Snapshot) float64 { return w.Metrics.PctCycles(w.Metrics.ZeroIssue) }, report.F1)
	row("max(6)-issue cycles %", func(w report.Snapshot) float64 { return w.Metrics.PctCycles(w.Metrics.MaxIssue) }, report.F1)
	row("outstanding I$ misses", func(w report.Snapshot) float64 { return w.AvgOutstanding(0) }, report.F1)
	row("outstanding D$ misses", func(w report.Snapshot) float64 { return w.AvgOutstanding(1) }, report.F1)
	row("outstanding L2$ misses", func(w report.Snapshot) float64 { return w.AvgOutstanding(2) }, report.F1)

	ratio := 0.0
	if ssW.IPC() > 0 {
		ratio = apW.IPC() / ssW.IPC()
	}
	text := t.String() + fmt.Sprintf("\nApache SMT/superscalar throughput ratio: %.1fx\n", ratio) +
		paperNote(
			"Apache: 4.6 IPC on SMT vs 1.1 on the superscalar — a 4.2x gain, the largest of any SMT workload",
			"SPECInt steady state: 5.6 IPC on SMT",
			"the superscalar could not fetch or issue in over 60% of cycles on Apache")
	return Result{Text: text, Values: map[string]float64{
		"apacheSMTIPC": apW.IPC(),
		"specSMTIPC":   spW.IPC(),
		"apacheSSIPC":  ssW.IPC(),
		"smtSSRatio":   ratio,
	}}
}

func tab7(ev *env, sc Scale, seed uint64) Result {
	sim := apacheSim(sc, seed, core.Options{})
	w := ev.window(sim, sc)
	var b strings.Builder
	structRows(&b, "BTB", w.BTB)
	structRows(&b, "L1I", w.L1I)
	structRows(&b, "L1D", w.L1D)
	structRows(&b, "L2", w.L2)
	structRows(&b, "DTLB", w.DTLB)
	structRows(&b, "ITLB", w.ITLB)

	kkShare := func(s report.StructStats) float64 {
		return s.Causes.Percent(true, 1) + s.Causes.Percent(true, 2) // kernel intra+inter
	}
	text := b.String() + paperNote(
		"kernel conflicts dominate Apache's cache misses: 65% of L1I, 65% of L1D, 41% of L2",
		"user-kernel conflicts are significant: 25% of L1I, 10% of L1D, 22% of L2",
		"user code causes the majority of TLB misses despite being only 22% of cycles")
	return Result{Text: text, Values: map[string]float64{
		"kernelShareL1I": kkShare(w.L1I),
		"kernelShareL1D": kkShare(w.L1D),
		"kernelShareL2":  kkShare(w.L2),
	}}
}

func tab8(ev *env, sc Scale, seed uint64) Result {
	smt := apacheSim(sc, seed, core.Options{})
	smtW := ev.window(smt, sc)
	ss := apacheSim(sc, seed, core.Options{Processor: core.Superscalar})
	ssW := ev.window(ss, sc)

	var b strings.Builder
	renderSharing := func(label string, w report.Snapshot) {
		t := report.NewTable("structure", "user<-user", "user<-kernel", "kernel<-user", "kernel<-kernel")
		each := func(name string, s report.StructStats) {
			t.Row(name,
				report.F1(s.AvoidedPct(false, false)), report.F1(s.AvoidedPct(false, true)),
				report.F1(s.AvoidedPct(true, false)), report.F1(s.AvoidedPct(true, true)))
		}
		each("L1I", w.L1I)
		each("L1D", w.L1D)
		each("L2", w.L2)
		each("DTLB", w.DTLB)
		fmt.Fprintf(&b, "%s (avoided misses as %% of total misses; row = mode that would have missed, col = mode that prefetched)\n%s\n",
			label, t.String())
	}
	renderSharing("Apache on SMT", smtW)
	renderSharing("Apache on superscalar", ssW)

	text := b.String() + paperNote(
		"on SMT, kernel-kernel I-cache prefetching avoided misses worth 66% of the observed misses (28% on the superscalar)",
		"kernel-kernel L2 sharing avoided an additional 71% of misses",
		"12% of kernel TLB misses were avoided by interthread prefetching")
	return Result{Text: text, Values: map[string]float64{
		"smtKernelKernelL1I": smtW.L1I.AvoidedPct(true, true),
		"ssKernelKernelL1I":  ssW.L1I.AvoidedPct(true, true),
		"smtKernelKernelL2":  smtW.L2.AvoidedPct(true, true),
	}}
}

func tab9(ev *env, sc Scale, seed uint64) Result {
	type cfgT struct {
		label string
		opt   core.Options
	}
	cfgs := []cfgT{
		{"smt-only", core.Options{OmitPrivileged: true}},
		{"smt+os", core.Options{}},
		{"ss-only", core.Options{Processor: core.Superscalar, OmitPrivileged: true}},
		{"ss+os", core.Options{Processor: core.Superscalar}},
	}
	ws := map[string]report.Snapshot{}
	for _, c := range cfgs {
		sim := apacheSim(sc, seed, c.opt)
		ws[c.label] = ev.window(sim, sc)
	}
	t := report.NewTable("metric", "smt-only", "smt+os", "chg", "ss-only", "ss+os", "chg")
	chg := func(a, b float64) string {
		if a == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", b/a)
	}
	row := func(name string, f func(w report.Snapshot) float64) {
		so, sw := f(ws["smt-only"]), f(ws["smt+os"])
		co, cw := f(ws["ss-only"]), f(ws["ss+os"])
		t.Row(name, report.F2(so), report.F2(sw), chg(so, sw), report.F2(co), report.F2(cw), chg(co, cw))
	}
	// "only" runs omit privileged references, so overall rates there are
	// user-reference rates, as in the paper's footnote.
	row("branch mispredict %", report.Snapshot.BpMispredictRate)
	row("BTB miss %", func(w report.Snapshot) float64 { return w.BTB.MissRateOverall() })
	row("L1I miss %", func(w report.Snapshot) float64 { return w.L1I.MissRateOverall() })
	row("L1D miss %", func(w report.Snapshot) float64 { return w.L1D.MissRateOverall() })
	row("L2 miss %", func(w report.Snapshot) float64 { return w.L2.MissRateOverall() })
	text := t.String() + paperNote(
		"the OS multiplies Apache's L1I miss rate ~5.5x (SMT) and L2 ~3.5x",
		"branch misprediction roughly doubles with the OS",
		"effects exceed those seen for SPECInt because OS activity dominates Apache")
	return Result{Text: text, Values: map[string]float64{
		"smtL1IOnly": ws["smt-only"].L1I.MissRateOverall(),
		"smtL1IFull": ws["smt+os"].L1I.MissRateOverall(),
		"smtL2Only":  ws["smt-only"].L2.MissRateOverall(),
		"smtL2Full":  ws["smt+os"].L2.MissRateOverall(),
	}}
}
