// Checkpoint-library regeneration: build a library of per-window checkpoint
// images once per simulation configuration, then regenerate figures by
// restoring the windows independently — in-process on a worker pool or
// fanned out across OS processes — and folding the per-window report deltas
// back together in window order. The fold is the same left-to-right
// accumulation a serial run performs, so rendered output is byte-identical
// for any worker and process count.
//
// Library layout on disk (one directory per configuration fingerprint):
//
//	<dir>/<fingerprint>/index.json     window list, span, code version
//	<dir>/<fingerprint>/win-0000.ckpt  checkpoint.Image + library manifest
//	<dir>/<fingerprint>/win-0001.ckpt  ...
//
// Invalidation is by fingerprint: the manifest embedded in every image names
// the configuration (workload, options, seed partitioning, code version,
// span) that produced it, and restores reject a mismatch with a structured
// *checkpoint.FormatError instead of silently replaying stale state. A
// missing or mismatched index triggers a rebuild.
package experiments

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/report"
)

// WindowedConfig configures a WindowRunner.
type WindowedConfig struct {
	// Dir is the library root; each configuration gets a fingerprint-named
	// subdirectory.
	Dir string
	// Workers bounds concurrent window jobs (<= 1 is serial).
	Workers int
	// Exec, when non-empty, is the argv prefix used to run each worker's
	// batch of window jobs in its own OS process (the batch's
	// dir/fingerprint/window arguments are appended; the child replies with
	// a gob-encoded []WindowResult on stdout). Empty runs jobs in-process
	// on the worker pool.
	Exec []string
}

// WindowResult is the outcome of one restored window: its position and the
// report delta of its measurement window.
type WindowResult struct {
	// Window is the window index within the library.
	Window int
	// Cycle and Retired locate the window's opening boundary.
	Cycle, Retired uint64
	// W is the measurement-window report delta.
	W report.Snapshot
}

// libEntry memoizes one configuration's window results within a runner.
type libEntry struct {
	once sync.Once
	res  []WindowResult
	err  error
}

// WindowRunner regenerates experiments from checkpoint libraries. It
// memoizes window results per configuration fingerprint, so experiments that
// share a configuration (most figures reuse the same three simulations) pay
// for its windows once.
type WindowRunner struct {
	cfg  WindowedConfig
	mu   sync.Mutex
	memo map[string]*libEntry
}

// NewWindowRunner returns a runner over the given library root.
func NewWindowRunner(cfg WindowedConfig) *WindowRunner {
	return &WindowRunner{cfg: cfg, memo: map[string]*libEntry{}}
}

// results returns the window results for one configuration, building the
// library and running the window jobs on first use.
func (wr *WindowRunner) results(workloadName string, o core.Options, span uint64) ([]WindowResult, error) {
	fp := core.Fingerprint(workloadName, o, span)
	wr.mu.Lock()
	e, ok := wr.memo[fp]
	if !ok {
		e = &libEntry{}
		wr.memo[fp] = e
	}
	wr.mu.Unlock()
	e.once.Do(func() {
		e.res, e.err = wr.run(fp, workloadName, o, span)
	})
	return e.res, e.err
}

// run ensures a current library for the configuration and executes its
// window jobs.
func (wr *WindowRunner) run(fp, workloadName string, o core.Options, span uint64) ([]WindowResult, error) {
	dir := filepath.Join(wr.cfg.Dir, fp)
	idx, err := checkpoint.ReadLibraryIndex(dir)
	if err != nil || idx.Fingerprint != fp || idx.Span != span {
		// No usable library (first run, stale fingerprint, different span):
		// build one. The index is written last, so a crash mid-build leaves
		// no index and the next run rebuilds.
		idx, err = BuildLibrary(dir, workloadName, o, span)
		if err != nil {
			return nil, err
		}
	}
	// Windows are dealt round-robin into one batch per worker: a batch
	// shares one restored simulator (the static machine is rebuilt once,
	// then each window's state is overwritten in place), which amortizes
	// the workload-construction cost that would otherwise dominate every
	// job. Round-robin keeps the batches balanced — early windows carry
	// less cache state and restore faster than late ones.
	batches := roundRobin(len(idx.Windows), wr.cfg.Workers)
	out := make([]WindowResult, len(idx.Windows))
	errs := make([]error, len(batches))
	forEach(len(batches), wr.cfg.Workers, func(i int) {
		var res []WindowResult
		if len(wr.cfg.Exec) > 0 {
			res, errs[i] = wr.execJob(dir, fp, batches[i])
		} else {
			res, errs[i] = RunWindowJobs(dir, batches[i], fp)
		}
		// Scatter by window index: batch order is a scheduling detail,
		// the merged fold below always walks windows in library order.
		for _, r := range res {
			out[r.Window] = r
		}
	})
	for _, jerr := range errs {
		if jerr != nil {
			return nil, jerr
		}
	}
	return out, nil
}

// roundRobin deals n items into at most workers non-empty batches.
func roundRobin(n, workers int) [][]int {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	batches := make([][]int, workers)
	for i := 0; i < n; i++ {
		batches[i%workers] = append(batches[i%workers], i)
	}
	return batches
}

// execJob runs a batch of window jobs in a child OS process and decodes its
// results.
func (wr *WindowRunner) execJob(dir, fp string, wins []int) ([]WindowResult, error) {
	args := append(append([]string(nil), wr.cfg.Exec[1:]...), dir, fp)
	for _, w := range wins {
		args = append(args, strconv.Itoa(w))
	}
	cmd := exec.Command(wr.cfg.Exec[0], args...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("experiments: window jobs %v (%s): %w", wins, dir, err)
	}
	var res []WindowResult
	if err := gob.NewDecoder(&stdout).Decode(&res); err != nil {
		return nil, fmt.Errorf("experiments: decoding window job results %v: %w", wins, err)
	}
	return res, nil
}

// BuildLibrary generates the checkpoint library for one configuration: the
// simulation fast-forwards in library-build mode (functionally warming
// caches, TLBs and the branch predictor, never paying for detail), and at
// each window-opening boundary the audited full-machine state is written as
// one image. The index is written last.
func BuildLibrary(dir, workloadName string, o core.Options, span uint64) (checkpoint.LibraryIndex, error) {
	fp := core.Fingerprint(workloadName, o, span)
	idx := checkpoint.LibraryIndex{
		Fingerprint: fp,
		CodeVersion: core.CodeVersion,
		Workload:    workloadName,
		Seed:        o.Seed,
		Span:        span,
	}
	if !o.Sampling.Enabled() {
		return idx, fmt.Errorf("experiments: library build needs sampling enabled (set Scale.Sampling)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return idx, fmt.Errorf("experiments: %w", err)
	}
	sim, err := core.New(workloadName, o)
	if err != nil {
		return idx, err
	}
	sim.Engine.SetSampleLibraryBuild(true)
	var cycle uint64
	for {
		if sim.Engine.AtWindowStart() && cycle < span {
			if err := sim.Audit(); err != nil {
				return idx, fmt.Errorf("experiments: refusing to checkpoint inconsistent state at window %d: %w", len(idx.Windows), err)
			}
			img, err := sim.Checkpoint()
			if err != nil {
				return idx, err
			}
			m := checkpoint.LibraryManifest{
				Fingerprint: fp,
				CodeVersion: core.CodeVersion,
				Seed:        o.Seed,
				Window:      len(idx.Windows),
				Cycle:       cycle,
				Retired:     sim.Engine.Metrics.Retired,
			}
			if err := checkpoint.PutManifest(img, m); err != nil {
				return idx, err
			}
			path := checkpoint.LibraryWindowPath(dir, m.Window)
			if err := checkpoint.WriteFile(path, img); err != nil {
				return idx, err
			}
			idx.Windows = append(idx.Windows, checkpoint.LibraryWindow{
				File:    filepath.Base(path),
				Cycle:   m.Cycle,
				Retired: m.Retired,
			})
		}
		if cycle >= span {
			break
		}
		ran, _ := sim.Engine.RunToNextWindow(span - cycle)
		cycle += ran
	}
	if err := checkpoint.WriteLibraryIndex(dir, idx); err != nil {
		return idx, err
	}
	return idx, nil
}

// RunWindowJob restores one window image and runs only its warmup and
// measurement phases in full detail, returning the measurement-window report
// delta. wantFP guards against stale libraries (manifest fingerprint
// mismatch is a *checkpoint.FormatError).
func RunWindowJob(dir string, win int, wantFP string) (WindowResult, error) {
	res, err := RunWindowJobs(dir, []int{win}, wantFP)
	if err != nil {
		return WindowResult{}, err
	}
	return res[0], nil
}

// RunWindowJobs restores each listed window image and runs only its warmup
// and measurement phases in full detail. The windows must come from one
// library (same configuration): the static machine is built once, from the
// first image, and every later image only overwrites its mutable state —
// restores are independent, so the per-window deltas are identical to
// running each window in its own process.
func RunWindowJobs(dir string, wins []int, wantFP string) ([]WindowResult, error) {
	out := make([]WindowResult, 0, len(wins))
	var sim *core.Simulator
	for _, win := range wins {
		path := checkpoint.LibraryWindowPath(dir, win)
		img, err := checkpoint.ReadFile(path)
		if err != nil {
			return nil, err
		}
		m, err := checkpoint.VerifyManifest(img, path, wantFP)
		if err != nil {
			return nil, err
		}
		if sim == nil {
			sim, err = core.Restore(img)
		} else {
			err = sim.RestoreInto(img)
		}
		if err != nil {
			return nil, err
		}
		// The image was captured in library-build mode; this run executes
		// the deferred detail work.
		sim.Engine.SetSampleLibraryBuild(false)
		warmup, detail := sim.Engine.SampleWindow()
		sim.Run(warmup)
		a := report.Take(sim)
		// The trailing FSM advance inside Run closes the window after its
		// last cycle, so the delta's Sampling series carries exactly this
		// window's observation.
		sim.Run(detail)
		b := report.Take(sim)
		out = append(out, WindowResult{Window: win, Cycle: m.Cycle, Retired: m.Retired, W: report.Delta(a, b)})
	}
	return out, nil
}

// WindowJobMain is the child-process entry point behind cmd/experiments
// -window-job: args are <dir> <fingerprint> <window>...; the results are
// gob-encoded to stdout as a []WindowResult. Returns the process exit code.
func WindowJobMain(args []string, stdout, stderr io.Writer) int {
	if len(args) < 3 {
		fmt.Fprintln(stderr, "usage: experiments -window-job <dir> <fingerprint> <window>...")
		return 2
	}
	wins := make([]int, 0, len(args)-2)
	for _, a := range args[2:] {
		win, err := strconv.Atoi(a)
		if err != nil {
			fmt.Fprintf(stderr, "experiments: bad window index %q: %v\n", a, err)
			return 2
		}
		wins = append(wins, win)
	}
	res, err := RunWindowJobs(args[0], wins, args[1])
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := gob.NewEncoder(stdout).Encode(res); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

// merged folds the report deltas of every window whose opening boundary lies
// in [from, to), in window order. sim is used only as the configuration spec
// (workload + options); it is never run.
func (wr *WindowRunner) merged(sim *core.Simulator, sc Scale, from, to uint64) report.Snapshot {
	span := sc.Warmup + sc.Measure
	res, err := wr.results(sim.Workload, sim.Opts, span)
	if err != nil {
		// Experiment functions have no error path; a broken library is an
		// environment failure, not a measurement.
		panic(fmt.Sprintf("experiments: checkpoint library for %s: %v", sim.Workload, err))
	}
	var acc report.Snapshot
	first := true
	for _, r := range res {
		if r.Cycle < from || r.Cycle >= to {
			continue
		}
		if first {
			acc = r.W
			first = false
			continue
		}
		acc = report.Merge(acc, r.W)
	}
	return acc
}

// WindowedSampling returns the sampling configuration the windowed pipeline
// uses for a scale: 32 windows across the span. Every figure bucket (16
// steps for Figure 1, 12 for Figure 5) is then at least two periods long, so
// the jittered placement cannot leave a bucket without a window.
func WindowedSampling(sc Scale) core.Sampling {
	return core.Sampling{Period: (sc.Warmup + sc.Measure) / 32}
}

// RunWindowed regenerates one experiment from the runner's checkpoint
// libraries. sc.Sampling must be enabled (use WindowedSampling for the
// standard configuration).
func RunWindowed(id string, sc Scale, seed uint64, wr *WindowRunner) (Result, error) {
	if !sc.Sampling.Enabled() {
		return Result{}, fmt.Errorf("experiments: windowed regeneration needs sampling enabled (see WindowedSampling)")
	}
	r, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	res := r.fn(&env{win: wr}, sc, seed)
	res.ID = id
	res.Title = r.title
	return res, nil
}

// RenderWindowed renders the ids in order from checkpoint libraries. The
// experiments run serially; parallelism lives inside the window jobs, and
// the memoized libraries are shared across ids, so every configuration's
// windows run once. Output is byte-identical for any worker/process count.
func RenderWindowed(ids []string, sc Scale, seed uint64, wr *WindowRunner) string {
	var b bytes.Buffer
	for _, id := range ids {
		res, err := RunWindowed(id, sc, seed, wr)
		if err != nil {
			fmt.Fprintf(&b, "%s: %v\n", id, err)
			continue
		}
		fmt.Fprintf(&b, "################ %s — %s\n\n%s\n", res.ID, res.Title, res.Text)
	}
	return b.String()
}
