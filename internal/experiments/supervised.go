// Supervised experiment runs: a wall-clock deadline around each experiment,
// periodic invariant audits, in-memory auto-checkpoints at every step
// boundary, and — when the deadline trips — one retry that fast-forwards
// through the already-completed steps by restoring their checkpoints instead
// of re-simulating them. An experiment that still cannot finish yields a
// partial result (whatever windows did complete) plus a structured status,
// so one pathological configuration cannot sink a whole sweep.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/faults"
)

// RunStatus describes how a supervised experiment run went.
type RunStatus struct {
	// ID is the experiment id.
	ID string
	// OK is true when every simulation step completed.
	OK bool
	// Partial is true when the result was rendered from incomplete runs.
	Partial bool
	// Retried is true when the run was retried after a deadline trip.
	Retried bool
	// Error is the final failure ("" when OK).
	Error string
	// Audits counts periodic invariant audits that ran clean.
	Audits uint64
	// Checkpoints counts step-boundary checkpoints memoized for resume.
	Checkpoints uint64
	// FaultCrashes / FramesDropped total the injector activity across the
	// experiment's fault-enabled simulations (zero otherwise).
	FaultCrashes  uint64
	FramesDropped uint64
}

// supervisor threads deadline, audits, and checkpoint memoization through
// an experiment's simulation steps. Experiment functions are deterministic,
// so a step's ordinal identifies it across attempts: on retry, steps whose
// checkpoint image is memoized are restored instead of re-simulated.
type supervisor struct {
	ctx        context.Context
	auditEvery uint64
	calls      int
	images     map[int]*checkpoint.Image
	failed     error
	audits     uint64
	ckpts      uint64
	faultBySim map[*core.Simulator]faults.Snapshot
}

// step advances sim by n cycles under supervision.
func (s *supervisor) step(sim *core.Simulator, n uint64) {
	ord := s.calls
	s.calls++
	if img, ok := s.images[ord]; ok {
		// A previous attempt completed this step: jump straight to its
		// end state instead of re-simulating.
		if err := sim.RestoreInto(img); err == nil {
			s.noteFaults(sim)
			return
		}
		delete(s.images, ord)
	}
	if s.failed != nil {
		// A prior step already failed this attempt; rendering continues
		// on the partial state, but no further cycles run.
		return
	}
	sim.Sup.AuditEvery = s.auditEvery
	err := sim.RunChecked(s.ctx, n)
	s.audits += sim.Sup.Audits
	sim.Sup.Audits = 0
	s.noteFaults(sim)
	if err != nil {
		s.failed = err
		return
	}
	if img, cerr := sim.Checkpoint(); cerr == nil {
		s.images[ord] = img
		s.ckpts++
	}
}

// noteFaults records the latest injector counters for sim (keyed by the
// simulator, so multi-step experiments are not double-counted).
func (s *supervisor) noteFaults(sim *core.Simulator) {
	if sim.Faults != nil {
		s.faultBySim[sim] = sim.Faults.Snapshot()
	}
}

// RunSupervised regenerates one experiment under a per-experiment timeout
// (0 = none) with invariant audits every auditEvery cycles (0 = off). On a
// deadline trip it retries once, resuming completed steps from their
// checkpoints. The Result is always rendered — marked Partial in the status
// when some steps never finished.
func RunSupervised(id string, sc Scale, seed uint64, timeout time.Duration, auditEvery uint64) (Result, RunStatus, error) {
	r, ok := registry[id]
	if !ok {
		return Result{}, RunStatus{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	st := RunStatus{ID: id}
	images := map[int]*checkpoint.Image{}

	attempt := func() (Result, *supervisor) {
		ctx := context.Background()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		s := &supervisor{
			ctx:        ctx,
			auditEvery: auditEvery,
			images:     images,
			faultBySim: map[*core.Simulator]faults.Snapshot{},
		}
		res := r.fn(&env{sup: s}, sc, seed)
		res.ID, res.Title = id, r.title
		return res, s
	}

	res, s := attempt()
	var dl *faults.DeadlineError
	if s.failed != nil && errors.As(s.failed, &dl) {
		// Deadline trips are the retryable class: the budget may simply
		// have been too tight for a cold start, and completed steps now
		// resume from their checkpoints.
		st.Retried = true
		res, s = attempt()
	}
	st.Audits = s.audits
	st.Checkpoints = s.ckpts
	for _, fs := range s.faultBySim {
		st.FaultCrashes += fs.Crashes
		st.FramesDropped += fs.DroppedToServer + fs.DroppedToClient
	}
	if s.failed != nil {
		st.Partial = true
		st.Error = s.failed.Error()
		return res, st, nil
	}
	st.OK = true
	return res, st, nil
}
