package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// parallelScale is deliberately tiny: these tests compare parallel against
// serial execution, so every experiment runs twice.
var parallelScale = Scale{Warmup: 60_000, Measure: 90_000, Interval: 12_000}

// TestRenderAllParallelMatchesSerial is the determinism referee for the
// worker pool: the full report rendered on 4 workers must be byte-identical
// to the serial rendering.
func TestRenderAllParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the full report twice")
	}
	serial := RenderAll(parallelScale, 1)
	par := RenderAllParallel(parallelScale, 1, 4)
	if serial != par {
		i := 0
		for i < len(serial) && i < len(par) && serial[i] == par[i] {
			i++
		}
		lo, hi := i-80, i+80
		if lo < 0 {
			lo = 0
		}
		clip := func(s string) string {
			if hi < len(s) {
				return s[lo:hi]
			}
			return s[lo:]
		}
		t.Fatalf("parallel report diverges from serial at byte %d:\nserial: %q\nparallel: %q",
			i, clip(serial), clip(par))
	}
	if !strings.Contains(par, "################ ") {
		t.Fatalf("report looks empty: %q", par)
	}
}

// TestRunJobsMatchesSerial checks field-identical Results for a multi-seed
// job list — the shape the -seeds sweep dispatches.
func TestRunJobsMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs each job twice")
	}
	ids := []string{"ablation-fetch", "ablation-idle"}
	var jobs []Job
	for _, id := range ids {
		for s := uint64(1); s <= 2; s++ {
			jobs = append(jobs, Job{ID: id, Seed: s})
		}
	}
	par := RunJobs(jobs, parallelScale, 4)
	for i, j := range jobs {
		want, err := Run(j.ID, parallelScale, j.Seed)
		if err != nil {
			t.Fatal(err)
		}
		if par[i].Err != nil {
			t.Fatalf("job %v: %v", j, par[i].Err)
		}
		got := par[i].Res
		if got.Text != want.Text {
			t.Errorf("job %v: Text differs\nparallel: %q\nserial:   %q", j, got.Text, want.Text)
		}
		if !reflect.DeepEqual(got.Values, want.Values) {
			t.Errorf("job %v: Values differ\nparallel: %v\nserial:   %v", j, got.Values, want.Values)
		}
	}
}

// TestRunJobsSupervisedMatchesSerial checks the supervised pool (the -json
// and -timeout paths) against serial RunSupervised.
func TestRunJobsSupervisedMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs each supervised job twice")
	}
	jobs := []Job{{ID: "ablation-fetch", Seed: 1}, {ID: "ablation-fetch", Seed: 2}}
	par := RunJobsSupervised(jobs, parallelScale, 0, 30_000, 4)
	for i, j := range jobs {
		want, wantSt, err := RunSupervised(j.ID, parallelScale, j.Seed, 0, 30_000)
		if err != nil {
			t.Fatal(err)
		}
		if par[i].Err != nil {
			t.Fatalf("job %v: %v", j, par[i].Err)
		}
		if got := par[i].Res; got.Text != want.Text || !reflect.DeepEqual(got.Values, want.Values) {
			t.Errorf("job %v: supervised Result differs from serial", j)
		}
		if got := par[i].Status; got != wantSt {
			t.Errorf("job %v: RunStatus differs\nparallel: %+v\nserial:   %+v", j, got, wantSt)
		}
	}
}

// TestWorkerPoolConcurrent stays enabled under -short so the `make race`
// leg exercises concurrent jobs through the pool on every run.
func TestWorkerPoolConcurrent(t *testing.T) {
	sc := Scale{Warmup: 20_000, Measure: 30_000, Interval: 8_000}
	jobs := []Job{
		{ID: "ablation-fetch", Seed: 1}, {ID: "ablation-fetch", Seed: 2},
		{ID: "ablation-idle", Seed: 1}, {ID: "ablation-idle", Seed: 2},
	}
	for i, jr := range RunJobs(jobs, sc, 4) {
		if jr.Err != nil {
			t.Fatalf("job %v: %v", jobs[i], jr.Err)
		}
		if jr.Res.Text == "" || len(jr.Res.Values) == 0 {
			t.Fatalf("job %v: empty result %+v", jobs[i], jr.Res)
		}
	}
}

// TestRunJobsUnknownID confirms an unknown id surfaces as a per-job error
// in position, not a panic or a dropped slot.
func TestRunJobsUnknownID(t *testing.T) {
	jobs := []Job{{ID: "no-such-experiment", Seed: 1}}
	out := RunJobs(jobs, parallelScale, 2)
	if len(out) != 1 || out[0].Err == nil {
		t.Fatalf("want one errored result, got %+v", out)
	}
}
