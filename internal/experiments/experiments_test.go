package experiments

import (
	"strings"
	"testing"
)

// tiny is a minimal scale for smoke tests; shape assertions use Quick.
var tiny = Scale{Warmup: 250_000, Measure: 350_000, Interval: 80_000}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"tab2", "tab3", "tab4", "tab5", "tab6", "tab7", "tab8", "tab9",
		"ablation-fetch", "ablation-contexts", "ablation-idle",
		"ablation-interrupt", "ablation-procs", "ablation-dma",
		"ablation-affinity", "ablation-keepalive", "ablation-diskbound",
		"ablation-loss", "ablation-crash", "ablation-sampling",
		"ablation-overload", "ablation-exhaustion", "ablation-scale",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %s not registered", id)
		}
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("nope", tiny, 1); err == nil {
		t.Fatal("unknown id did not error")
	}
}

// TestEverySPECIntExperimentRenders smoke-runs the cheap (SPECInt-only)
// experiments at tiny scale and checks they produce text and values.
func TestEverySPECIntExperimentRenders(t *testing.T) {
	for _, id := range []string{"fig1", "fig3", "fig4", "tab2", "tab3"} {
		res, err := Run(id, tiny, 1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Text) < 50 || !strings.Contains(res.Text, "Paper reference") {
			t.Fatalf("%s produced thin output:\n%s", id, res.Text)
		}
		if len(res.Values) == 0 {
			t.Fatalf("%s produced no key values", id)
		}
	}
}

func TestApacheExperimentsRender(t *testing.T) {
	for _, id := range []string{"fig5", "fig7", "tab5"} {
		res, err := Run(id, tiny, 1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Text) < 50 {
			t.Fatalf("%s produced thin output", id)
		}
	}
}

// TestHeadlineShape asserts the paper's central result at Quick scale:
// SMT beats the superscalar on Apache by a large factor, and Apache is
// kernel-dominated.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("headline shape needs Quick scale")
	}
	res, err := Run("tab6", Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values
	if v["apacheSMTIPC"] <= v["apacheSSIPC"]*2 {
		t.Fatalf("SMT/SS Apache ratio too small: %.2f vs %.2f", v["apacheSMTIPC"], v["apacheSSIPC"])
	}
	if v["specSMTIPC"] <= v["apacheSMTIPC"] {
		t.Fatalf("SPECInt should out-IPC Apache on SMT: %.2f vs %.2f", v["specSMTIPC"], v["apacheSMTIPC"])
	}

	res5, err := Run("fig5", Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res5.Values["kernelPct"] < 50 {
		t.Fatalf("Apache kernel share %.1f%%, expected dominant", res5.Values["kernelPct"])
	}
}

// TestOSImpactShape asserts Table 4's shape: adding the OS reduces IPC on
// both processors.
func TestOSImpactShape(t *testing.T) {
	if testing.Short() {
		t.Skip("needs Quick scale")
	}
	res, err := Run("tab4", Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values
	if !(v["ipcSMTApp"] > v["ipcSMTFull"]) {
		t.Fatalf("OS did not cost SMT anything: %.2f vs %.2f", v["ipcSMTApp"], v["ipcSMTFull"])
	}
	if !(v["ipcSSApp"] > v["ipcSSFull"]) {
		t.Fatalf("OS did not cost the superscalar: %.2f vs %.2f", v["ipcSSApp"], v["ipcSSFull"])
	}
	if !(v["ipcSMTFull"] > v["ipcSSFull"]*1.5) {
		t.Fatalf("SMT not clearly ahead on SPECInt: %.2f vs %.2f", v["ipcSMTFull"], v["ipcSSFull"])
	}
}

func TestDeterministicExperiments(t *testing.T) {
	a, err := Run("fig3", tiny, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig3", tiny, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Text != b.Text {
		t.Fatal("experiment output nondeterministic")
	}
}

// TestExperimentsProduceStableKeys pins the key-value names benches and
// docs rely on.
func TestExperimentsProduceStableKeys(t *testing.T) {
	wantKeys := map[string][]string{
		"fig1": {"startupKernelPct", "steadyKernelPct"},
		"fig3": {"startupAllocPct"},
		"tab2": {"steadyKernelPhysLoadPct", "steadyUserLoadPct"},
	}
	for id, keys := range wantKeys {
		res, err := Run(id, tiny, 2)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, k := range keys {
			if _, ok := res.Values[k]; !ok {
				t.Fatalf("%s missing key %q (has %v)", id, k, res.Values)
			}
		}
	}
}

// TestSamplingAblationWithinBand asserts the sampled-mode validation at
// Quick scale: both headline metrics (Fig 1 steady kernel share, Fig 5
// kernel share) must land inside the experiment's stated error band.
func TestSamplingAblationWithinBand(t *testing.T) {
	if testing.Short() {
		t.Skip("full-detail replay of the sampled instruction region is slow")
	}
	res, err := Run("ablation-sampling", Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range []string{"specint", "apache"} {
		if res.Values[wl+"Within"] != 1 {
			t.Errorf("%s: sampled %.2f vs full %.2f — err %.2f outside band %.2f",
				wl, res.Values[wl+"SampledKernelPct"], res.Values[wl+"FullKernelPct"],
				res.Values[wl+"Err"], res.Values[wl+"Band"])
		}
	}
}

// TestFaultAblationsRender smoke-runs the fault-injection ablations at tiny
// scale: both must render via the registry, and the faulted rows must show
// recovery activity at tiny scale too.
func TestFaultAblationsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("several multi-hundred-kilocycle simulations")
	}
	for _, id := range []string{"ablation-loss", "ablation-crash"} {
		res, err := Run(id, tiny, 1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Text) < 50 || len(res.Values) == 0 {
			t.Fatalf("%s produced thin output:\n%s", id, res.Text)
		}
	}
}

// TestOverloadAblationShape asserts graceful degradation at Quick scale:
// pushing offered load to 10x of the capacity point must keep completed
// throughput within 80% of the sweep's peak on both processors (shedding,
// not collapse), must actually exercise the shedding machinery, and must
// never trip the watchdog. Identical seeds must reproduce the table
// byte-for-byte.
func TestOverloadAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ten supervised simulations at Quick scale")
	}
	res, err := Run("ablation-overload", Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values
	if v["watchdogTrips"] != 0 {
		t.Fatalf("watchdog tripped %v time(s) during the sweep:\n%s", v["watchdogTrips"], res.Text)
	}
	for _, tag := range []string{"smt", "ss"} {
		peak, last := v[tag+"Peak"], v[tag+"Done10x"]
		if peak <= 0 {
			t.Fatalf("%s: no completed requests anywhere in the sweep:\n%s", tag, res.Text)
		}
		if last < 0.8*peak {
			t.Fatalf("%s: throughput collapsed under overload: done@10x %.0f < 80%% of peak %.0f\n%s",
				tag, last, peak, res.Text)
		}
	}
	rerun, err := Run("ablation-overload", Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Text != rerun.Text {
		t.Fatal("overload ablation nondeterministic across identical runs")
	}
}

// TestExhaustionAblationShape asserts graceful degradation under resource
// exhaustion at Quick scale: capping memory at 0.75x of measured demand must
// keep completed throughput at >= 50% of the unconstrained baseline on both
// processors, the capped rows must actually exercise the exhaustion
// machinery (reclaims or structured rejects), the watchdog must never trip,
// and identical seeds must reproduce the table byte-for-byte.
func TestExhaustionAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("a dozen supervised simulations at Quick scale")
	}
	res, err := Run("ablation-exhaustion", Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values
	if v["watchdogTrips"] != 0 {
		t.Fatalf("watchdog tripped %v time(s) during the sweep:\n%s", v["watchdogTrips"], res.Text)
	}
	for _, tag := range []string{"smt", "ss"} {
		base := v[tag+"Base"]
		if base <= 0 {
			t.Fatalf("%s: unconstrained baseline completed nothing:\n%s", tag, res.Text)
		}
		if done := v[tag+"Done075"]; done < 0.5*base {
			t.Fatalf("%s: throughput collapsed at 0.75x demand: %.0f < 50%% of baseline %.0f\n%s",
				tag, done, base, res.Text)
		}
		if v[tag+"Reclaims050"]+v[tag+"Rejects050"] == 0 {
			t.Fatalf("%s: 0.5x-demand row never exercised reclaim or admission control:\n%s", tag, res.Text)
		}
	}
	rerun, err := Run("ablation-exhaustion", Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Text != rerun.Text {
		t.Fatal("exhaustion ablation nondeterministic across identical runs")
	}
}

// TestScaleAblationShape is the million-client acceptance test: the
// 10^3..10^6 sweep must complete under RunChecked without a watchdog trip,
// every row (including the million-client one) must finish real requests,
// and — since the arrival wave is identical in every row — completed
// throughput must not degrade as the dormant population grows 1000x.
// Identical seeds must reproduce the table byte-for-byte.
func TestScaleAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a million-client fleet at Quick scale")
	}
	res, err := Run("ablation-scale", Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values
	if v["watchdogTrips"] != 0 {
		t.Fatalf("watchdog tripped %v time(s) during the sweep:\n%s", v["watchdogTrips"], res.Text)
	}
	for _, row := range []string{"1k", "10k", "100k", "1m"} {
		if v["done"+row] <= 0 {
			t.Fatalf("%s-client row completed nothing:\n%s", row, res.Text)
		}
	}
	if r := v["done1mOver1k"]; r < 0.5 {
		t.Fatalf("throughput degraded with dormant population: 1m/1k ratio %.2f\n%s", r, res.Text)
	}
	rerun, err := Run("ablation-scale", Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Text != rerun.Text {
		t.Fatal("scale ablation nondeterministic across identical runs")
	}
}
