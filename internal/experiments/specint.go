package experiments

import (
	"fmt"
	"strings"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/report"
	"repro/internal/sys"
)

func init() {
	register("fig1", "Figure 1: cycle breakdown for SPECInt95 on SMT (start-up vs steady state)", fig1)
	register("fig2", "Figure 2: breakdown of kernel time for SPECInt95", fig2)
	register("fig3", "Figure 3: incursions into kernel memory management", fig3)
	register("fig4", "Figure 4: system calls as a percentage of execution cycles", fig4)
	register("tab2", "Table 2: SPECInt dynamic instruction mix by type", tab2)
	register("tab3", "Table 3: SPECInt miss rates and conflict classification", tab3)
	register("tab4", "Table 4: SPECInt with and without the OS, SMT vs superscalar", tab4)
}

// fig1 samples the user/kernel/idle cycle shares over time.
func fig1(ev *env, sc Scale, seed uint64) Result {
	sim := specSim(sc, seed, core.Options{})
	t := report.NewTable("cycles(k)", "user%", "kernel%", "pal%", "idle%")
	var lastKernel, startKernel float64
	for i, sw := range ev.steps(sim, sc, 16) {
		w := sw.w
		kp := w.CycleAt.PctMode(isa.Kernel) + w.CycleAt.PctMode(isa.PAL)
		if i == 0 {
			startKernel = kp
		}
		lastKernel = kp
		t.Row(report.I(sw.end/1000),
			report.F1(w.CycleAt.PctMode(isa.User)),
			report.F1(w.CycleAt.PctMode(isa.Kernel)),
			report.F1(w.CycleAt.PctMode(isa.PAL)),
			report.F1(w.CycleAt.PctCat(sys.CatIdle)))
	}
	text := t.String() + paperNote(
		"start-up: OS presence ~18% of execution cycles",
		"steady state: OS presence drops to a consistent ~5%",
		"idle cycles <= 0.7% of steady-state cycles")
	return Result{Text: text, Values: map[string]float64{
		"startupKernelPct": startKernel,
		"steadyKernelPct":  lastKernel,
	}}
}

// kernelBreakdownRows renders the per-category kernel-time split (as % of
// all cycles) used by Figures 2 and 6.
func kernelBreakdownRows(t *report.Table, label string, w report.Snapshot) {
	cats := []sys.Category{
		sys.CatSyscall, sys.CatDTLB, sys.CatITLB, sys.CatInterrupt,
		sys.CatNetisr, sys.CatSched, sys.CatSpin, sys.CatOtherKernel,
	}
	row := []string{label}
	for _, c := range cats {
		row = append(row, report.F1(w.CycleAt.PctCat(c)))
	}
	row = append(row, report.F1(w.CycleAt.PctMode(isa.PAL)))
	t.Row(row...)
}

func fig2(ev *env, sc Scale, seed uint64) Result {
	sim := specSim(sc, seed, core.Options{})
	startup, steady := ev.phases(sim, sc)
	ss := specSim(sc, seed, core.Options{Processor: core.Superscalar})
	ssStartup, ssSteady := ev.phases(ss, sc)

	t := report.NewTable("phase", "syscall%", "dtlb%", "itlb%", "intr%", "netisr%", "sched%", "spin%", "other%", "pal%")
	kernelBreakdownRows(t, "smt-startup", startup)
	kernelBreakdownRows(t, "smt-steady", steady)
	kernelBreakdownRows(t, "ss-startup", ssStartup)
	kernelBreakdownRows(t, "ss-steady", ssSteady)

	tlbStart := startup.CycleAt.PctCat(sys.CatDTLB) + startup.CycleAt.PctCat(sys.CatITLB)
	tlbSteady := steady.CycleAt.PctCat(sys.CatDTLB) + steady.CycleAt.PctCat(sys.CatITLB)
	text := t.String() + paperNote(
		"start-up: TLB miss handling ~12% of all cycles, system calls ~5%",
		"steady state: kernel ~5% of cycles, same proportions (TLB-dominated)",
		"the OS distribution is similar on the superscalar")
	return Result{Text: text, Values: map[string]float64{
		"startupTLBPct":     tlbStart,
		"steadyTLBPct":      tlbSteady,
		"startupSyscallPct": startup.CycleAt.PctCat(sys.CatSyscall),
	}}
}

func fig3(ev *env, sc Scale, seed uint64) Result {
	sim := specSim(sc, seed, core.Options{})
	startup, steady := ev.phases(sim, sc)
	// The paper's Figure 3 counts incursions into *kernel memory
	// management* — TLB refills of already-mapped pages are handled
	// entirely in PAL and never reach the VM layer, so they are shown
	// separately, not as VM entries.
	t := report.NewTable("phase", "page-alloc", "page-reclaim", "unmap", "(pal-only refills)", "alloc% of VM entries")
	row := func(label string, w report.Snapshot) float64 {
		alloc := w.VMFaults[1]
		reclaim := w.VMFaults[2]
		vmEntries := alloc + reclaim + w.MemUnmaps
		pct := 0.0
		if vmEntries > 0 {
			pct = 100 * float64(alloc) / float64(vmEntries)
		}
		t.Row(label, report.I(alloc), report.I(reclaim), report.I(w.MemUnmaps), report.I(w.VMFaults[0]), report.F1(pct))
		return pct
	}
	sPct := row("startup", startup)
	row("steady", steady)
	text := t.String() + paperNote(
		"page allocation accounts for the majority of kernel memory-management entries",
		"most TLB activity is user-space data TLB misses (~95%)")
	return Result{Text: text, Values: map[string]float64{"startupAllocPct": sPct}}
}

func fig4(ev *env, sc Scale, seed uint64) Result {
	sim := specSim(sc, seed, core.Options{})
	startup, steady := ev.phases(sim, sc)
	t := report.NewTable("syscall", "startup % of cycles", "steady % of cycles")
	var readStart float64
	for n := uint16(1); n < sys.NumSyscalls; n++ {
		a := startup.CycleAt.PctSyscall(n)
		b := steady.CycleAt.PctSyscall(n)
		if a < 0.05 && b < 0.05 {
			continue
		}
		if n == sys.SysRead {
			readStart = a
		}
		t.Row(sys.Name(n), report.F1(a), report.F1(b))
	}
	text := t.String() + paperNote(
		"reading input files contributes ~3.5% of execution cycles during start-up",
		"file-read calls shrink once programs leave initialization")
	return Result{Text: text, Values: map[string]float64{"startupReadPct": readStart}}
}

// mixRows renders one Table 2/5-style column set.
func mixRows(t *report.Table, label string, m report.Snapshot) {
	mx := &m.Mix
	add := func(name string, user, kern, overall string) { t.Row(label+"/"+name, user, kern, overall) }
	overall := func(c isa.Class) float64 { return mx.PctOverall(c) }
	add("load",
		fmt.Sprintf("%.1f (%.0f%% phys)", mx.Pct(false, isa.Load), mx.PhysFrac(false, false)),
		fmt.Sprintf("%.1f (%.0f%% phys)", mx.Pct(true, isa.Load), mx.PhysFrac(true, false)),
		report.F1(overall(isa.Load)))
	add("store",
		fmt.Sprintf("%.1f (%.0f%% phys)", mx.Pct(false, isa.Store), mx.PhysFrac(false, true)),
		fmt.Sprintf("%.1f (%.0f%% phys)", mx.Pct(true, isa.Store), mx.PhysFrac(true, true)),
		report.F1(overall(isa.Store)))
	add("branch", report.F1(mx.BranchPct(false)), report.F1(mx.BranchPct(true)),
		report.F1((mx.BranchPct(false)+mx.BranchPct(true))/2))
	add("  cond",
		fmt.Sprintf("%.1f (%.0f%% taken)", mx.BranchSubPct(false, isa.CondBranch), mx.CondTakenPct(false)),
		fmt.Sprintf("%.1f (%.0f%% taken)", mx.BranchSubPct(true, isa.CondBranch), mx.CondTakenPct(true)),
		"")
	add("  uncond", report.F1(mx.BranchSubPct(false, isa.UncondBranch)), report.F1(mx.BranchSubPct(true, isa.UncondBranch)), "")
	add("  indirect", report.F1(mx.BranchSubPct(false, isa.IndirectJump)), report.F1(mx.BranchSubPct(true, isa.IndirectJump)), "")
	add("  pal", report.F1(mx.BranchSubPct(false, isa.PALCall)), report.F1(mx.BranchSubPct(true, isa.PALCall)), "")
	add("fp", report.F1(mx.Pct(false, isa.FPALU)), report.F1(mx.Pct(true, isa.FPALU)), report.F1(overall(isa.FPALU)))
	add("other-int", report.F1(mx.Pct(false, isa.IntALU)+mx.Pct(false, isa.Sync)),
		report.F1(mx.Pct(true, isa.IntALU)+mx.Pct(true, isa.Sync)), "")
}

func tab2(ev *env, sc Scale, seed uint64) Result {
	sim := specSim(sc, seed, core.Options{})
	startup, steady := ev.phases(sim, sc)
	t := report.NewTable("phase/type", "user", "kernel", "overall")
	mixRows(t, "startup", startup)
	mixRows(t, "steady", steady)
	text := t.String() + paperNote(
		"kernel memory ops often carry physical addresses (~51-57% start-up; 35%/68% steady loads/stores)",
		"kernel conditional branches taken less often than user's (26% vs 56% steady)",
		"user steady mix: ~20% loads, ~10% stores, ~15% branches, ~2% FP")
	return Result{Text: text, Values: map[string]float64{
		"steadyKernelPhysLoadPct": steady.Mix.PhysFrac(true, false),
		"steadyUserLoadPct":       steady.Mix.Pct(false, isa.Load),
	}}
}

// structRows renders a Table 3/7-style block for one hardware structure.
func structRows(b *strings.Builder, name string, s report.StructStats) {
	fmt.Fprintf(b, "%-5s total miss rate: user %.1f%%  kernel %.1f%%\n",
		name, s.MissRate(false), s.MissRate(true))
	t := report.NewTable("cause", "user%", "kernel%")
	for c := 0; c < conflict.NumCauses; c++ {
		t.Row(conflict.Cause(c).String(),
			report.F1(s.Causes.Percent(false, conflict.Cause(c))),
			report.F1(s.Causes.Percent(true, conflict.Cause(c))))
	}
	b.WriteString(t.String())
}

func tab3(ev *env, sc Scale, seed uint64) Result {
	sim := specSim(sc, seed, core.Options{})
	w := ev.window(sim, sc)
	var b strings.Builder
	structRows(&b, "BTB", w.BTB)
	structRows(&b, "L1I", w.L1I)
	structRows(&b, "L1D", w.L1D)
	structRows(&b, "L2", w.L2)
	structRows(&b, "DTLB", w.DTLB)
	text := b.String() + paperNote(
		"kernel miss rates far exceed user miss rates (BTB 75 vs 31, L1I 8.4 vs 1.8, L1D 19 vs 3.2)",
		"application conflicts dominate misses except in the I-cache, where the kernel causes ~60%",
		"compulsory misses are minuscule except in the L2")
	return Result{Text: text, Values: map[string]float64{
		"kernelL1IMissRate": w.L1I.MissRate(true),
		"userL1DMissRate":   w.L1D.MissRate(false),
		"kernelBTBMissRate": w.BTB.MissRate(true),
	}}
}

func tab4(ev *env, sc Scale, seed uint64) Result {
	type cfg struct {
		label string
		opt   core.Options
	}
	cfgs := []cfg{
		{"smt+os", core.Options{}},
		{"smt-apponly", core.Options{AppOnly: true}},
		{"ss+os", core.Options{Processor: core.Superscalar}},
		{"ss-apponly", core.Options{Processor: core.Superscalar, AppOnly: true}},
	}
	t := report.NewTable("metric", "smt-only", "smt+os", "chg%", "ss-only", "ss+os", "chg%")
	ws := map[string]report.Snapshot{}
	for _, c := range cfgs {
		sim := specSim(sc, seed, c.opt)
		ws[c.label] = ev.window(sim, sc)
	}
	chg := func(only, with float64) string {
		if only == 0 {
			return "-"
		}
		return fmt.Sprintf("%+.0f%%", 100*(with-only)/only)
	}
	metric := func(name string, f func(w report.Snapshot) float64, f2 func(float64) string) {
		so, sw := f(ws["smt-apponly"]), f(ws["smt+os"])
		co, cw := f(ws["ss-apponly"]), f(ws["ss+os"])
		t.Row(name, f2(so), f2(sw), chg(so, sw), f2(co), f2(cw), chg(co, cw))
	}
	metric("IPC", func(w report.Snapshot) float64 { return w.IPC() }, report.F2)
	metric("avg fetchable contexts", func(w report.Snapshot) float64 { return w.Metrics.AvgFetchable() }, report.F1)
	metric("branch mispredict %", func(w report.Snapshot) float64 { return w.BpMispredictRate() }, report.F1)
	metric("squashed % of fetched", func(w report.Snapshot) float64 { return w.Metrics.SquashPct() }, report.F1)
	metric("L1I miss %", func(w report.Snapshot) float64 { return w.L1I.MissRateOverall() }, report.F2)
	metric("L1D miss %", func(w report.Snapshot) float64 { return w.L1D.MissRateOverall() }, report.F2)
	metric("L2 miss %", func(w report.Snapshot) float64 { return w.L2.MissRateOverall() }, report.F2)
	metric("ITLB miss %", func(w report.Snapshot) float64 { return w.ITLB.MissRateOverall() }, report.F2)
	metric("DTLB miss %", func(w report.Snapshot) float64 { return w.DTLB.MissRateOverall() }, report.F2)
	text := t.String() + paperNote(
		"SMT: 5.9 IPC app-only vs 5.6 with OS (-5%); superscalar: 3.0 vs 2.6 (-15%)",
		"the OS perturbs the superscalar more than the SMT",
		"L1I miss rate rises sharply when the OS is included (flush-induced)")
	return Result{Text: text, Values: map[string]float64{
		"ipcSMTApp":  ws["smt-apponly"].IPC(),
		"ipcSMTFull": ws["smt+os"].IPC(),
		"ipcSSApp":   ws["ss-apponly"].IPC(),
		"ipcSSFull":  ws["ss+os"].IPC(),
	}}
}
