package experiments

import (
	"reflect"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/report"
)

// TestBitIdenticalReplay is the runtime half of the determinism contract the
// detlint analyzers enforce statically (see ANALYSIS.md): two same-seed
// Apache simulations at Quick scale must produce bit-identical statistics.
// The comparison is field-by-field over the full report.Snapshot so a
// divergence names the exact counter that drifted, not just "snapshots
// differ".
func TestBitIdenticalReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two Quick-scale Apache simulations")
	}
	run := func() report.Snapshot {
		sim := apacheSim(Quick, 42, core.Options{})
		sim.Run(Quick.Warmup + Quick.Measure)
		return report.Take(sim)
	}
	a, b := run(), run()
	diffValues(t, "Snapshot", reflect.ValueOf(a), reflect.ValueOf(b))
}

// diffValues recursively compares two values of the same type and reports
// every leaf field whose bits differ, with its full path.
func diffValues(t *testing.T, path string, a, b reflect.Value) {
	t.Helper()
	switch a.Kind() {
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			diffValues(t, path+"."+a.Type().Field(i).Name, a.Field(i), b.Field(i))
		}
	case reflect.Array:
		for i := 0; i < a.Len(); i++ {
			diffValues(t, indexPath(path, i), a.Index(i), b.Index(i))
		}
	case reflect.Slice:
		if a.Len() != b.Len() {
			t.Errorf("%s: length %d vs %d", path, a.Len(), b.Len())
			return
		}
		for i := 0; i < a.Len(); i++ {
			diffValues(t, indexPath(path, i), a.Index(i), b.Index(i))
		}
	case reflect.Map:
		if !reflect.DeepEqual(a.Interface(), b.Interface()) {
			t.Errorf("%s: %v != %v", path, a.Interface(), b.Interface())
		}
	default:
		if !reflect.DeepEqual(a.Interface(), b.Interface()) {
			t.Errorf("%s: %v != %v", path, a.Interface(), b.Interface())
		}
	}
}

func indexPath(path string, i int) string {
	return path + "[" + strconv.Itoa(i) + "]"
}
