package experiments

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
)

// winScale keeps the windowed tests fast: 16 windows of ~1.6k detail cycles.
var winScale = func() Scale {
	sc := Scale{Warmup: 100_000, Measure: 150_000, Interval: 40_000}
	sc.Sampling = WindowedSampling(sc)
	return sc
}()

func renderBoth(t *testing.T, wr *WindowRunner) (fig1, fig5 string) {
	t.Helper()
	r1, err := RunWindowed("fig1", winScale, 1, wr)
	if err != nil {
		t.Fatalf("fig1: %v", err)
	}
	r5, err := RunWindowed("fig5", winScale, 1, wr)
	if err != nil {
		t.Fatalf("fig5: %v", err)
	}
	return r1.Text, r5.Text
}

// TestWindowedByteIdentity regenerates Figure 1 (SPECInt) and Figure 5
// (Apache) from a checkpoint library under different worker counts and
// library temperatures. Every variant must be byte-identical: window merge
// order is fixed by the library, not by scheduling.
func TestWindowedByteIdentity(t *testing.T) {
	dir := t.TempDir()

	// Cold pass builds the library as a side effect.
	cold := NewWindowRunner(WindowedConfig{Dir: dir, Workers: 1})
	fig1Cold, fig5Cold := renderBoth(t, cold)

	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		wr := NewWindowRunner(WindowedConfig{Dir: dir, Workers: workers})
		fig1, fig5 := renderBoth(t, wr)
		if fig1 != fig1Cold {
			t.Errorf("fig1 with %d workers (warm library) differs from cold single-worker output", workers)
		}
		if fig5 != fig5Cold {
			t.Errorf("fig5 with %d workers (warm library) differs from cold single-worker output", workers)
		}
	}
}

// TestWindowJobHelper is not a test: it is the child half of
// TestWindowedProcessMode, running the real -window-job entry point inside
// the test binary.
func TestWindowJobHelper(t *testing.T) {
	if os.Getenv("WINDOW_JOB_HELPER") != "1" {
		t.Skip("helper process for TestWindowedProcessMode")
	}
	var args []string
	for i, a := range os.Args {
		if a == "--" {
			args = os.Args[i+1:]
			break
		}
	}
	os.Exit(WindowJobMain(args, os.Stdout, os.Stderr))
}

// TestWindowedProcessMode runs the window jobs in child OS processes (the
// -windows-parallel path) and checks the output is byte-identical to the
// in-process run.
func TestWindowedProcessMode(t *testing.T) {
	dir := t.TempDir()
	inproc := NewWindowRunner(WindowedConfig{Dir: dir, Workers: 2})
	fig1In, fig5In := renderBoth(t, inproc)

	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	t.Setenv("WINDOW_JOB_HELPER", "1")
	procs := NewWindowRunner(WindowedConfig{
		Dir:     dir,
		Workers: 2,
		Exec:    []string{exe, "-test.run=^TestWindowJobHelper$", "--"},
	})
	fig1Proc, fig5Proc := renderBoth(t, procs)
	if fig1Proc != fig1In {
		t.Errorf("fig1 from OS-process window jobs differs from in-process output")
	}
	if fig5Proc != fig5In {
		t.Errorf("fig5 from OS-process window jobs differs from in-process output")
	}
}

// TestWindowedStaleLibrary checks that a window image refuses to restore
// under the wrong configuration fingerprint with a structured *FormatError,
// and that the mismatch triggers a rebuild (not reuse) through the runner.
func TestWindowedStaleLibrary(t *testing.T) {
	dir := t.TempDir()
	o := core.Options{Seed: 1, CyclesPer10ms: winScale.Interval, Sampling: winScale.Sampling}
	span := winScale.Warmup + winScale.Measure
	fp := core.Fingerprint("specint", o, span)
	if _, err := BuildLibrary(filepath.Join(dir, fp), "specint", o, span); err != nil {
		t.Fatalf("BuildLibrary: %v", err)
	}

	_, err := RunWindowJob(filepath.Join(dir, fp), 0, "0000deadbeef0000")
	if err == nil {
		t.Fatal("RunWindowJob with wrong fingerprint succeeded, want *checkpoint.FormatError")
	}
	var ferr *checkpoint.FormatError
	if !errors.As(err, &ferr) {
		t.Fatalf("RunWindowJob error is %T (%v), want *checkpoint.FormatError", err, err)
	}

	// The right fingerprint restores fine.
	if _, err := RunWindowJob(filepath.Join(dir, fp), 0, fp); err != nil {
		t.Fatalf("RunWindowJob with matching fingerprint: %v", err)
	}
}

// TestWindowedMidWindowAudit restores a library window, runs partway into
// its detail window, and audits: a mid-window machine state reconstructed
// from disk must satisfy every kernel/engine invariant.
func TestWindowedMidWindowAudit(t *testing.T) {
	dir := t.TempDir()
	o := core.Options{Seed: 1, CyclesPer10ms: winScale.Interval, Sampling: winScale.Sampling}
	span := winScale.Warmup + winScale.Measure
	fp := core.Fingerprint("specint", o, span)
	idx, err := BuildLibrary(filepath.Join(dir, fp), "specint", o, span)
	if err != nil {
		t.Fatalf("BuildLibrary: %v", err)
	}
	if len(idx.Windows) < 4 {
		t.Fatalf("library has %d windows, want at least 4", len(idx.Windows))
	}

	img, err := checkpoint.ReadFile(checkpoint.LibraryWindowPath(filepath.Join(dir, fp), 3))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	sim, err := core.Restore(img)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	sim.Engine.SetSampleLibraryBuild(false)
	if err := sim.Audit(); err != nil {
		t.Fatalf("audit immediately after restore: %v", err)
	}
	warmup, detail := sim.Engine.SampleWindow()
	sim.Run(warmup + detail/2)
	if err := sim.Audit(); err != nil {
		t.Fatalf("audit mid detail window: %v", err)
	}
}

// TestWindowedRequiresSampling pins the error paths: windowed regeneration
// and library builds both need an enabled sampling configuration.
func TestWindowedRequiresSampling(t *testing.T) {
	sc := Scale{Warmup: 100_000, Measure: 150_000, Interval: 40_000}
	wr := NewWindowRunner(WindowedConfig{Dir: t.TempDir(), Workers: 1})
	if _, err := RunWindowed("fig1", sc, 1, wr); err == nil {
		t.Fatal("RunWindowed without sampling succeeded, want error")
	}
	o := core.Options{Seed: 1, CyclesPer10ms: sc.Interval}
	if _, err := BuildLibrary(t.TempDir(), "specint", o, 250_000); err == nil {
		t.Fatal("BuildLibrary without sampling succeeded, want error")
	}
}
