package isa

import "testing"

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		c      Class
		branch bool
		mem    bool
		fp     bool
	}{
		{IntALU, false, false, false},
		{FPALU, false, false, true},
		{Load, false, true, false},
		{Store, false, true, false},
		{Sync, false, true, false},
		{CondBranch, true, false, false},
		{UncondBranch, true, false, false},
		{IndirectJump, true, false, false},
		{PALCall, true, false, false},
		{PALReturn, true, false, false},
		{Nop, false, false, false},
	}
	for _, c := range cases {
		if got := c.c.IsBranch(); got != c.branch {
			t.Errorf("%v.IsBranch() = %v, want %v", c.c, got, c.branch)
		}
		if got := c.c.IsMem(); got != c.mem {
			t.Errorf("%v.IsMem() = %v, want %v", c.c, got, c.mem)
		}
		if got := c.c.UsesFP(); got != c.fp {
			t.Errorf("%v.UsesFP() = %v, want %v", c.c, got, c.fp)
		}
	}
}

func TestClassString(t *testing.T) {
	if IntALU.String() != "IntALU" || IndirectJump.String() != "IndirectJump" {
		t.Fatal("class names wrong")
	}
	if Class(200).String() == "" {
		t.Fatal("out-of-range class should still stringify")
	}
}

func TestModeString(t *testing.T) {
	want := map[Mode]string{User: "user", Kernel: "kernel", PAL: "pal", Idle: "idle"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
}

func TestModePrivileged(t *testing.T) {
	if User.Privileged() || Idle.Privileged() {
		t.Fatal("user/idle must not be privileged")
	}
	if !Kernel.Privileged() || !PAL.Privileged() {
		t.Fatal("kernel/pal must be privileged")
	}
}

func TestLatencyPositive(t *testing.T) {
	for c := 0; c < NumClasses; c++ {
		in := Inst{Class: Class(c)}
		if in.Latency() < 1 {
			t.Errorf("class %v has latency %d", Class(c), in.Latency())
		}
	}
	fp := Inst{Class: FPALU}
	alu := Inst{Class: IntALU}
	if fp.Latency() <= alu.Latency() {
		t.Fatal("FP should be slower than integer ALU")
	}
}

func TestControlTransfer(t *testing.T) {
	takenBr := Inst{Class: CondBranch, Taken: true}
	ntBr := Inst{Class: CondBranch, Taken: false}
	jmp := Inst{Class: IndirectJump}
	alu := Inst{Class: IntALU, Taken: true}
	if !takenBr.ControlTransfer() {
		t.Fatal("taken conditional should transfer")
	}
	if ntBr.ControlTransfer() {
		t.Fatal("not-taken conditional should not transfer")
	}
	if !jmp.ControlTransfer() {
		t.Fatal("indirect jump should transfer")
	}
	if alu.ControlTransfer() {
		t.Fatal("ALU op should not transfer")
	}
}
