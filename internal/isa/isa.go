// Package isa defines the Alpha-like instruction abstraction shared by the
// workload generators, the behavioral kernel model, and the pipeline.
//
// The original study executes real Alpha binaries (including PAL code) under
// SimOS. This reproduction is execution-driven on synthetic instruction
// streams, so the "ISA" carries exactly the information the microarchitecture
// reacts to: instruction class, program counter, memory address and
// addressing mode (virtual vs. physical — kernel code on the Alpha issues
// many physically-addressed accesses that bypass the TLB, see the paper's
// Tables 2 and 5), branch outcome and target, and register dependency
// distances that determine extractable ILP.
package isa

import "fmt"

// Class is the instruction category, matching the rows of the paper's
// instruction-mix tables (Tables 2 and 5).
type Class uint8

const (
	// IntALU is a simple integer operation (the tables' "remaining integer").
	IntALU Class = iota
	// FPALU is a floating-point operation.
	FPALU
	// Load reads memory.
	Load
	// Store writes memory.
	Store
	// CondBranch is a conditional branch.
	CondBranch
	// UncondBranch is an unconditional direct branch (including calls).
	UncondBranch
	// IndirectJump is a jump through a register (returns, jsr, switch tables).
	IndirectJump
	// PALCall enters PAL code (call_pal: callsys, TLB fill, swpipl, ...).
	PALCall
	// PALReturn leaves PAL/kernel back toward the interrupted stream.
	PALReturn
	// Sync is a synchronization memory operation (load-locked /
	// store-conditional, memory barrier); it issues to the SMT's dedicated
	// synchronization units.
	Sync
	// Nop does nothing but occupy a slot.
	Nop

	// NumClasses is the number of instruction classes.
	NumClasses = int(Nop) + 1
)

var classNames = [NumClasses]string{
	"IntALU", "FPALU", "Load", "Store", "CondBranch", "UncondBranch",
	"IndirectJump", "PALCall", "PALReturn", "Sync", "Nop",
}

// String returns the class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// IsBranch reports whether the class is a control transfer (including PAL
// entry/return, which the paper counts among branch instructions).
func (c Class) IsBranch() bool {
	switch c {
	case CondBranch, UncondBranch, IndirectJump, PALCall, PALReturn:
		return true
	}
	return false
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool {
	return c == Load || c == Store || c == Sync
}

// UsesFP reports whether the class issues to the floating-point units.
func (c Class) UsesFP() bool { return c == FPALU }

// Mode is the execution mode a cycle or instruction is attributed to.
// It drives the user/kernel/PAL/idle breakdowns of Figures 1, 5 and 6 and
// the ownership tags used for conflict-miss classification (Tables 3 and 7).
type Mode uint8

const (
	// User is application code.
	User Mode = iota
	// Kernel is operating-system code proper.
	Kernel
	// PAL is Alpha PALcode (below the OS: TLB fill, syscall entry, SETIPL).
	PAL
	// Idle marks cycles with no runnable thread (the OS idle loop is
	// attributed here, as in Figure 1).
	Idle

	// NumModes is the number of execution modes.
	NumModes = int(Idle) + 1
)

var modeNames = [NumModes]string{"user", "kernel", "pal", "idle"}

// String returns the mode name.
func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Privileged reports whether the mode executes with kernel privilege
// (kernel proper or PAL code). For the coarse user-vs-kernel split used in
// the paper's tables, PAL counts as kernel.
func (m Mode) Privileged() bool { return m == Kernel || m == PAL }

// Inst is one dynamic instruction as produced by a workload stream.
//
// Dep1 and Dep2 are register-dependency distances: the instruction's source
// operands were produced by the instructions Dep1 and Dep2 positions earlier
// in the same thread's dynamic stream (0 means no dependency). The pipeline
// uses them to decide when an instruction's operands are ready; workload
// generators draw them from per-program distributions, which is what makes
// kernel code (long dependence chains, little ILP) behave differently from
// tuned user loops.
type Inst struct {
	// PC is the virtual program counter.
	PC uint64
	// Addr is the virtual (or physical, if Physical) data address for
	// memory classes.
	Addr uint64
	// Target is the actual target for taken control transfers.
	Target uint64
	// Dep1 and Dep2 are backward dependency distances (0 = none).
	Dep1, Dep2 uint16
	// Syscall carries the service number for a PALCall that is a system
	// call entry; 0 otherwise.
	Syscall uint16
	// Class is the instruction category.
	Class Class
	// Mode is the execution mode the instruction belongs to.
	Mode Mode
	// Taken is the actual branch outcome for CondBranch (always true for
	// other control transfers).
	Taken bool
	// Physical marks a memory access that carries a physical address and
	// bypasses the data TLB (common in kernel code).
	Physical bool
	// Size is the access size in bytes for memory classes (default 8).
	Size uint8
}

// Latency returns the execution latency in cycles for the instruction's
// class, excluding memory-hierarchy time (which the pipeline adds from the
// cache model). The values are characteristic of late-1990s Alpha cores.
func (in *Inst) Latency() int {
	switch in.Class {
	case IntALU, Nop:
		return 1
	case FPALU:
		return 4
	case Load, Sync:
		return 1 // address generation; cache time added separately
	case Store:
		return 1
	case CondBranch, UncondBranch, IndirectJump:
		return 1
	case PALCall, PALReturn:
		return 2
	}
	return 1
}

// ControlTransfer reports whether the dynamic instruction redirects the PC:
// all branch classes, with conditional branches only when taken.
func (in *Inst) ControlTransfer() bool {
	if !in.Class.IsBranch() {
		return false
	}
	if in.Class == CondBranch {
		return in.Taken
	}
	return true
}
