// Package flatmap is a deterministic flat int→int hash table with
// free-listed entries — the replacement for the Go maps that used to sit on
// the network demux paths (netsim's conn→file-size table, the kernel's
// conn→socket table).
//
// Why not a Go map: iteration order aside (snapshots needed canonical-sort
// workarounds), Go maps allocate per growth increment and cannot recycle
// entry storage. This table is two flat slices — power-of-two bucket heads
// and a chained entry pool with a LIFO freelist — so steady-state
// Put/Get/Delete touch no allocator at all and layout is a pure function of
// the operation history, which is itself deterministic.
//
// The table is not serialized: checkpoint users rebuild it from their own
// serialized state on restore (Range provides a deterministic entry-pool
// walk for snapshot emitters, which sort by key anyway).
package flatmap

const (
	minBuckets = 8
	// maxLoadNum/maxLoadDen is the load factor that triggers a bucket-array
	// doubling: 13/16 ≈ 0.81, snug for chained buckets.
	maxLoadNum = 13
	maxLoadDen = 16
)

type entry struct {
	key, val int
	next     int32 // bucket chain or freelist link; -1 ends either
	live     bool
}

// IntMap maps int keys to int values. The zero value is not ready; use New.
type IntMap struct {
	buckets []int32 // head entry index per bucket; -1 = empty
	entries []entry // flat entry pool; dead entries sit on the freelist
	free    int32   // freelist head; -1 = empty
	n       int     // live entries
	mask    uint64
}

// New returns a table pre-sized for about hint live entries.
func New(hint int) *IntMap {
	nb := minBuckets
	for hint*maxLoadDen > nb*maxLoadNum {
		nb <<= 1
	}
	m := &IntMap{
		buckets: make([]int32, nb),
		free:    -1,
		mask:    uint64(nb - 1),
	}
	for i := range m.buckets {
		m.buckets[i] = -1
	}
	if hint > 0 {
		m.entries = make([]entry, 0, hint)
	}
	return m
}

// bucket returns the bucket index for a key (Fibonacci hashing: multiply by
// the 64-bit golden ratio and keep the top bits — deterministic and well
// mixed for the small sequential ids the network layer uses).
func (m *IntMap) bucket(key int) uint64 {
	return (uint64(key) * 0x9e3779b97f4a7c15 >> 32) & m.mask
}

// Len returns the number of live entries.
func (m *IntMap) Len() int { return m.n }

// Get returns the value stored for key.
func (m *IntMap) Get(key int) (int, bool) {
	for i := m.buckets[m.bucket(key)]; i >= 0; i = m.entries[i].next {
		if m.entries[i].key == key {
			return m.entries[i].val, true
		}
	}
	return 0, false
}

// Put inserts or overwrites the value for key.
func (m *IntMap) Put(key, val int) {
	b := m.bucket(key)
	for i := m.buckets[b]; i >= 0; i = m.entries[i].next {
		if m.entries[i].key == key {
			m.entries[i].val = val
			return
		}
	}
	if (m.n+1)*maxLoadDen > len(m.buckets)*maxLoadNum {
		m.grow()
		b = m.bucket(key)
	}
	var idx int32
	if m.free >= 0 {
		idx = m.free
		m.free = m.entries[idx].next
		m.entries[idx] = entry{key: key, val: val, next: m.buckets[b], live: true}
	} else {
		idx = int32(len(m.entries))
		m.entries = append(m.entries, entry{key: key, val: val, next: m.buckets[b], live: true})
	}
	m.buckets[b] = idx
	m.n++
}

// Delete removes key, returning whether it was present. The entry slot goes
// on the LIFO freelist for the next Put.
func (m *IntMap) Delete(key int) bool {
	b := m.bucket(key)
	prev := int32(-1)
	for i := m.buckets[b]; i >= 0; i = m.entries[i].next {
		if m.entries[i].key != key {
			prev = i
			continue
		}
		if prev < 0 {
			m.buckets[b] = m.entries[i].next
		} else {
			m.entries[prev].next = m.entries[i].next
		}
		m.entries[i] = entry{next: m.free}
		m.free = i
		m.n--
		return true
	}
	return false
}

// grow doubles the bucket array and rechains every live entry. The chain
// order after a rehash is a deterministic function of entry-pool positions.
func (m *IntMap) grow() {
	nb := len(m.buckets) * 2
	m.buckets = make([]int32, nb) //detlint:ignore hotalloc amortized doubling, same budget as slice growth
	m.mask = uint64(nb - 1)
	for i := range m.buckets {
		m.buckets[i] = -1
	}
	for i := range m.entries {
		e := &m.entries[i]
		if !e.live {
			continue
		}
		b := m.bucket(e.key)
		e.next = m.buckets[b]
		m.buckets[b] = int32(i)
	}
}

// Range calls f for every live entry in entry-pool order (deterministic but
// not sorted; snapshot emitters sort by key). Not for hot paths.
func (m *IntMap) Range(f func(key, val int)) {
	for i := range m.entries {
		if m.entries[i].live {
			f(m.entries[i].key, m.entries[i].val)
		}
	}
}
