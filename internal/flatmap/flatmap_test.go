package flatmap

import (
	"math/rand"
	"sort"
	"testing"
)

// TestAgainstGoMap cross-checks the flat table against a Go map over a
// seeded random op mix, including heavy delete/reinsert churn that exercises
// the freelist and chain unlinking.
func TestAgainstGoMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New(0)
	ref := map[int]int{}
	for op := 0; op < 200_000; op++ {
		k := rng.Intn(4096)
		switch rng.Intn(3) {
		case 0:
			v := rng.Intn(1 << 20)
			m.Put(k, v)
			ref[k] = v
		case 1:
			got := m.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
			delete(ref, k)
		case 2:
			gv, gok := m.Get(k)
			wv, wok := ref[k]
			if gok != wok || (gok && gv != wv) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", op, k, gv, gok, wv, wok)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, m.Len(), len(ref))
		}
	}
	// Full content check through Range.
	got := map[int]int{}
	m.Range(func(k, v int) { got[k] = v })
	if len(got) != len(ref) {
		t.Fatalf("Range saw %d entries, want %d", len(got), len(ref))
	}
	for k, v := range ref {
		if got[k] != v {
			t.Fatalf("Range[%d] = %d, want %d", k, got[k], v)
		}
	}
}

// TestRangeDeterministic pins that two tables built by the same op sequence
// walk their entries in the same order — the snapshot-stability property.
func TestRangeDeterministic(t *testing.T) {
	build := func() *IntMap {
		m := New(4)
		for i := 0; i < 300; i++ {
			m.Put(i*3, i)
		}
		for i := 0; i < 300; i += 2 {
			m.Delete(i * 3)
		}
		for i := 1000; i < 1100; i++ {
			m.Put(i, -i)
		}
		return m
	}
	var a, b []int
	build().Range(func(k, _ int) { a = append(a, k) })
	build().Range(func(k, _ int) { b = append(b, k) })
	if len(a) != len(b) {
		t.Fatalf("walk lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("walk order diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestFreelistReuse pins that deleted slots are recycled before the pool
// grows: a bounded live population must not grow the entry pool unboundedly.
func TestFreelistReuse(t *testing.T) {
	m := New(64)
	for i := 0; i < 10_000; i++ {
		m.Put(i, i)
		if i >= 32 {
			m.Delete(i - 32)
		}
	}
	if m.Len() != 32 {
		t.Fatalf("Len = %d, want 32", m.Len())
	}
	if got := len(m.entries); got > 64 {
		t.Fatalf("entry pool grew to %d slots for a live population of 32", got)
	}
}

// TestSortedEmission mirrors how snapshots consume Range: collect and sort.
func TestSortedEmission(t *testing.T) {
	m := New(0)
	keys := []int{9, 2, 71, 33, 5}
	for _, k := range keys {
		m.Put(k, k*10)
	}
	var got []int
	m.Range(func(k, _ int) { got = append(got, k) })
	sort.Ints(got)
	sort.Ints(keys)
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("sorted keys %v, want %v", got, keys)
		}
	}
}

func BenchmarkPutGetDelete(b *testing.B) {
	m := New(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 1023
		m.Put(k, i)
		if v, ok := m.Get(k); !ok || v != i {
			b.Fatal("lost entry")
		}
		m.Delete(k)
	}
}
