// Checkpoint serialization for the fault injector: all three RNG streams and
// the injection counters, so a restored run replays the same fault schedule.
package faults

// Snapshot captures the injector's mutable state.
type Snapshot struct {
	NetRNG          [4]uint64
	ProcRNG         [4]uint64
	OvlRNG          [4]uint64
	ExhRNG          [4]uint64
	SqueezeTick     uint64
	SqueezeArmed    bool
	DroppedToServer uint64
	DroppedToClient uint64
	Corrupted       uint64
	Delayed         uint64
	Crashes         uint64
	Squeezes        uint64
}

// Snapshot returns the injector's mutable state.
func (i *Injector) Snapshot() Snapshot {
	return Snapshot{
		NetRNG:          i.netRng.State(),
		ProcRNG:         i.procRng.State(),
		OvlRNG:          i.ovlRng.State(),
		ExhRNG:          i.exhRng.State(),
		SqueezeTick:     i.squeezeTick,
		SqueezeArmed:    i.squeezeArmed,
		DroppedToServer: i.DroppedToServer,
		DroppedToClient: i.DroppedToClient,
		Corrupted:       i.Corrupted,
		Delayed:         i.Delayed,
		Crashes:         i.Crashes,
		Squeezes:        i.Squeezes,
	}
}

// Restore overwrites the injector's state from a snapshot.
func (i *Injector) Restore(s Snapshot) {
	i.netRng.SetState(s.NetRNG)
	i.procRng.SetState(s.ProcRNG)
	i.ovlRng.SetState(s.OvlRNG)
	i.exhRng.SetState(s.ExhRNG)
	i.squeezeTick = s.SqueezeTick
	i.squeezeArmed = s.SqueezeArmed
	i.DroppedToServer = s.DroppedToServer
	i.DroppedToClient = s.DroppedToClient
	i.Corrupted = s.Corrupted
	i.Delayed = s.Delayed
	i.Crashes = s.Crashes
	i.Squeezes = s.Squeezes
}
