// Package faults is the deterministic fault-injection subsystem of the
// reproduction's resilience layer. The paper's measurement stack assumes a
// perfect world — a lossless zero-latency network (§2.3), an Apache pool
// that never loses a worker, and a simulator that either finishes or
// panics. This package parameterizes three fault domains so the degraded
// modes can be measured too:
//
//   - network: per-frame loss, corruption, and delay on the simulated wire
//     (package netsim reacts with client timeout + retransmit under capped
//     exponential backoff);
//   - process: Apache worker crashes at syscall boundaries (package kernel
//     reacts by running the exit path, tearing the address space down, and
//     re-forking a replacement worker);
//   - overload: misbehaving client populations — slowloris-style trickle
//     senders, keep-alive storms that hold connections across long think
//     times, and flash-crowd arrival bursts (package kernel reacts with a
//     bounded accept backlog and per-connection idle reaping; see FAULTS.md
//     "Overload");
//   - simulation guardrails: a watchdog (core.RunChecked) that detects
//     livelock and deadline overrun, and converts engine panics into
//     structured errors carrying a diagnostic snapshot.
//
// Everything is seeded and replayable: each fault domain draws from its own
// deterministic stream, so the same seed and fault configuration produce
// bit-identical metrics across runs. A zero Config disables injection
// entirely and, by construction, perturbs nothing: disabled paths consume
// no randomness, so fault-free runs are bit-identical to a build without
// this package.
package faults

import (
	"fmt"

	"repro/internal/rng"
)

// Defaults for the client retry machinery and the watchdog.
const (
	// DefaultRetryTimeoutTicks is the initial client retransmit timeout in
	// 10 ms network ticks.
	DefaultRetryTimeoutTicks = 3
	// DefaultBackoffCapTicks caps the exponential retransmit backoff.
	DefaultBackoffCapTicks = 48
	// DefaultMaxRetries is how many retransmits a client attempts before
	// abandoning the request and reconnecting fresh.
	DefaultMaxRetries = 5
	// DefaultLivelockWindow is the watchdog's no-retirement window in
	// cycles before a run is declared livelocked.
	DefaultLivelockWindow = 2_000_000
	// DefaultTrickleTicks is the gap between request chunks a slow-trickle
	// client sends, in 10 ms network ticks.
	DefaultTrickleTicks = 8
	// DefaultStormHoldTicks is how long a keep-alive-storm client holds its
	// connection idle between requests, in network ticks.
	DefaultStormHoldTicks = 64
	// DefaultBurstSize is how many dormant flash-crowd clients activate per
	// burst.
	DefaultBurstSize = 32
	// DefaultSqueezeAtTick is the network tick at which an enabled
	// exhaustion squeeze takes effect when SqueezeAtTick is 0.
	DefaultSqueezeAtTick = 50
)

// Config parameterizes fault injection. The zero value disables every
// domain (the default, zero-perturbation configuration).
type Config struct {
	// Seed drives all fault sampling; 0 lets the simulation derive one
	// from its own seed so that fault decisions are replayable.
	Seed uint64

	// LossRate is the per-frame probability the wire drops a frame
	// (either direction).
	LossRate float64
	// CorruptRate is the per-frame probability a frame arrives damaged;
	// the receiver discards it after paying the protocol-stack cost.
	CorruptRate float64
	// DelayRate is the per-frame probability a frame is held in transit.
	DelayRate float64
	// MaxDelayTicks is the maximum in-transit delay in network ticks
	// (uniform 1..MaxDelayTicks; 0 means a default of 2 when DelayRate>0).
	MaxDelayTicks int

	// RetryTimeoutTicks overrides the initial client retransmit timeout
	// (0 = DefaultRetryTimeoutTicks).
	RetryTimeoutTicks int
	// BackoffCapTicks overrides the retransmit backoff cap
	// (0 = DefaultBackoffCapTicks).
	BackoffCapTicks int
	// MaxRetries overrides the per-request retransmit budget
	// (0 = DefaultMaxRetries).
	MaxRetries int

	// CrashRate is the per-syscall-boundary probability that an Apache
	// worker process dies mid-request.
	CrashRate float64
	// MaxCrashes caps total injected crashes (0 = unlimited).
	MaxCrashes uint64

	// LivelockWindow is the watchdog's no-retirement window in cycles for
	// core.RunChecked (0 = DefaultLivelockWindow).
	LivelockWindow uint64

	// SlowClientRate is the probability a simulated client is a
	// slowloris-style trickle sender: it opens a connection with a bare SYN
	// and dribbles its request in chunks every TrickleTicks, occupying a
	// server worker (or backlog slot) the whole time.
	SlowClientRate float64
	// TrickleTicks is the gap between a slow client's request chunks in
	// network ticks (0 = DefaultTrickleTicks).
	TrickleTicks int
	// StormClientRate is the probability a client is a keep-alive storm
	// client: it completes requests normally but holds its connection open
	// across StormHoldTicks of think time, pinning a worker in a blocked
	// read until the kernel's idle reaper intervenes.
	StormClientRate float64
	// StormHoldTicks is a storm client's idle hold between requests in
	// network ticks (0 = DefaultStormHoldTicks).
	StormHoldTicks int
	// BurstEvery, when > 0, activates a flash-crowd burst of BurstSize
	// dormant clients every BurstEvery network ticks; each opens a fresh
	// one-shot connection, spiking the accept backlog.
	BurstEvery int
	// BurstSize is the number of clients per flash-crowd burst
	// (0 = DefaultBurstSize).
	BurstSize int

	// MemSqueezeFrac, when > 0, is the fraction of effective physical
	// memory the exhaustion domain removes mid-run: the kernel caps the
	// frame allocator at (1-frac) of its pre-squeeze effective size,
	// forcing the low-watermark reclaimer to page under pressure.
	MemSqueezeFrac float64
	// PoolSqueezeFrac, when > 0, shrinks the kernel's bounded resource
	// pools (socket table, mbuf pool, process table, per-process FD limit)
	// to (1-frac) of their configured capacities mid-run; exhaustion then
	// surfaces as structured syscall errors and refused SYNs that clients
	// recover from via retransmit/backoff.
	PoolSqueezeFrac float64
	// SqueezeAtTick is the network tick at which the squeeze lands
	// (0 = DefaultSqueezeAtTick when a squeeze fraction is set).
	SqueezeAtTick int
	// SqueezeJitterTicks adds a seeded uniform 0..N jitter to the squeeze
	// tick, so sweeps can decorrelate the squeeze from workload phases.
	SqueezeJitterTicks int
}

// Enabled reports whether any fault domain injects (the client retry
// machinery arms whenever this is true, so crashes are recoverable even
// without network faults).
func (c Config) Enabled() bool {
	return c.LossRate > 0 || c.CorruptRate > 0 || c.DelayRate > 0 || c.CrashRate > 0 ||
		c.OverloadEnabled() || c.ExhaustEnabled()
}

// ExhaustEnabled reports whether the exhaustion domain squeezes anything.
// Exhaustion counts as a fault domain for Enabled so that clients arm their
// retry machinery — a SYN dropped by a full socket table or mbuf pool is
// recovered through the ordinary retransmit path.
func (c Config) ExhaustEnabled() bool {
	return c.MemSqueezeFrac > 0 || c.PoolSqueezeFrac > 0
}

// OverloadEnabled reports whether any overload client behavior is
// configured. Overload counts as a fault domain for Enabled so that clients
// arm their retry machinery — a SYN refused by a full accept backlog is
// recovered through the ordinary retransmit path.
func (c Config) OverloadEnabled() bool {
	return c.SlowClientRate > 0 || c.StormClientRate > 0 || c.BurstEvery > 0
}

// Validate rejects nonsensical fault parameters.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"LossRate", c.LossRate},
		{"CorruptRate", c.CorruptRate},
		{"DelayRate", c.DelayRate},
		{"CrashRate", c.CrashRate},
		{"SlowClientRate", c.SlowClientRate},
		{"StormClientRate", c.StormClientRate},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s %v outside [0,1]", p.name, p.v)
		}
	}
	if c.MaxDelayTicks < 0 {
		return fmt.Errorf("faults: negative MaxDelayTicks %d", c.MaxDelayTicks)
	}
	if c.RetryTimeoutTicks < 0 || c.BackoffCapTicks < 0 || c.MaxRetries < 0 {
		return fmt.Errorf("faults: negative retry parameter (timeout %d, cap %d, retries %d)",
			c.RetryTimeoutTicks, c.BackoffCapTicks, c.MaxRetries)
	}
	if c.TrickleTicks < 0 || c.StormHoldTicks < 0 {
		return fmt.Errorf("faults: negative overload tick parameter (trickle %d, storm hold %d)",
			c.TrickleTicks, c.StormHoldTicks)
	}
	if c.BurstEvery < 0 || c.BurstSize < 0 {
		return fmt.Errorf("faults: negative burst parameter (every %d, size %d)",
			c.BurstEvery, c.BurstSize)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"MemSqueezeFrac", c.MemSqueezeFrac},
		{"PoolSqueezeFrac", c.PoolSqueezeFrac},
	} {
		if p.v < 0 || p.v >= 1 {
			return fmt.Errorf("faults: %s %v outside [0,1)", p.name, p.v)
		}
	}
	if c.SqueezeAtTick < 0 || c.SqueezeJitterTicks < 0 {
		return fmt.Errorf("faults: negative squeeze parameter (at %d, jitter %d)",
			c.SqueezeAtTick, c.SqueezeJitterTicks)
	}
	return nil
}

// withDefaults fills zero retry/delay parameters.
func (c Config) withDefaults() Config {
	if c.RetryTimeoutTicks == 0 {
		c.RetryTimeoutTicks = DefaultRetryTimeoutTicks
	}
	if c.BackoffCapTicks == 0 {
		c.BackoffCapTicks = DefaultBackoffCapTicks
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.MaxDelayTicks == 0 {
		c.MaxDelayTicks = 2
	}
	if c.TrickleTicks == 0 {
		c.TrickleTicks = DefaultTrickleTicks
	}
	if c.StormHoldTicks == 0 {
		c.StormHoldTicks = DefaultStormHoldTicks
	}
	if c.BurstSize == 0 {
		c.BurstSize = DefaultBurstSize
	}
	if c.SqueezeAtTick == 0 {
		c.SqueezeAtTick = DefaultSqueezeAtTick
	}
	return c
}

// Injector samples fault decisions and accumulates counters. Each domain
// draws from its own stream so that, e.g., enabling crashes does not
// perturb which network frames are dropped.
type Injector struct {
	Cfg Config //detlint:ignore snapshotcomplete configuration fixed at construction

	netRng  *rng.Rand
	procRng *rng.Rand
	ovlRng  *rng.Rand
	exhRng  *rng.Rand

	// squeezeTick is the armed exhaustion-squeeze tick (jitter applied
	// once, so replays and restores see the same schedule).
	squeezeTick  uint64
	squeezeArmed bool

	// DroppedToServer / DroppedToClient count frames the wire lost, by
	// direction; Corrupted counts frames delivered damaged; Delayed counts
	// frames held in transit.
	DroppedToServer uint64
	DroppedToClient uint64
	Corrupted       uint64
	Delayed         uint64
	// Crashes counts injected worker deaths.
	Crashes uint64
	// Squeezes counts exhaustion squeezes applied by the kernel.
	Squeezes uint64
}

// NewInjector builds an injector. Call only with a validated config; the
// zero-rate domains never sample their stream.
func NewInjector(cfg Config) *Injector {
	cfg = cfg.withDefaults()
	return &Injector{
		Cfg:     cfg,
		netRng:  rng.New(cfg.Seed ^ 0x6e657466_61756c74), // "netfault"
		procRng: rng.New(cfg.Seed ^ 0x70726f63_66617574), // "procfaut"
		ovlRng:  rng.New(cfg.Seed ^ 0x6f766572_6c6f6164), // "overload"
		exhRng:  rng.New(cfg.Seed ^ 0x65786861_75737421), // "exhaust!"
	}
}

// SqueezeTick returns the network tick at which the exhaustion squeeze takes
// effect, arming it (applying the seeded jitter once) on first call. ok is
// false when the exhaustion domain is disabled.
func (i *Injector) SqueezeTick() (tick uint64, ok bool) {
	if !i.Cfg.ExhaustEnabled() {
		return 0, false
	}
	if !i.squeezeArmed {
		t := uint64(i.Cfg.SqueezeAtTick)
		if i.Cfg.SqueezeJitterTicks > 0 {
			t += uint64(i.exhRng.Intn(i.Cfg.SqueezeJitterTicks + 1))
		}
		i.squeezeTick = t
		i.squeezeArmed = true
	}
	return i.squeezeTick, true
}

// DropFrame decides whether the wire loses a frame.
func (i *Injector) DropFrame() bool {
	return i.Cfg.LossRate > 0 && i.netRng.Bool(i.Cfg.LossRate)
}

// CorruptFrame decides whether a frame arrives damaged.
func (i *Injector) CorruptFrame() bool {
	if i.Cfg.CorruptRate > 0 && i.netRng.Bool(i.Cfg.CorruptRate) {
		i.Corrupted++
		return true
	}
	return false
}

// DelayTicks returns the in-transit delay for a frame (0 = deliver now).
func (i *Injector) DelayTicks() int {
	if i.Cfg.DelayRate <= 0 || !i.netRng.Bool(i.Cfg.DelayRate) {
		return 0
	}
	i.Delayed++
	return 1 + i.netRng.Intn(i.Cfg.MaxDelayTicks)
}

// SlowClient decides whether one client of the population is a
// slow-trickle sender (sampled once per client at wiring time).
func (i *Injector) SlowClient() bool {
	return i.Cfg.SlowClientRate > 0 && i.ovlRng.Bool(i.Cfg.SlowClientRate)
}

// StormClient decides whether one client is a keep-alive storm client
// (sampled once per client at wiring time).
func (i *Injector) StormClient() bool {
	return i.Cfg.StormClientRate > 0 && i.ovlRng.Bool(i.Cfg.StormClientRate)
}

// CrashNow decides whether a worker dies at this syscall boundary.
func (i *Injector) CrashNow() bool {
	if i.Cfg.CrashRate <= 0 {
		return false
	}
	if i.Cfg.MaxCrashes > 0 && i.Crashes >= i.Cfg.MaxCrashes {
		return false
	}
	if !i.procRng.Bool(i.Cfg.CrashRate) {
		return false
	}
	i.Crashes++
	return true
}
