package faults

import "testing"

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{},
		{LossRate: 0.5, CorruptRate: 1, DelayRate: 0.01, CrashRate: 0.2},
		{MaxDelayTicks: 3, RetryTimeoutTicks: 2, BackoffCapTicks: 10, MaxRetries: 7},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}
	bad := []Config{
		{LossRate: -0.1},
		{LossRate: 1.5},
		{CorruptRate: 2},
		{DelayRate: -1},
		{CrashRate: 7},
		{MaxDelayTicks: -1},
		{RetryTimeoutTicks: -1},
		{BackoffCapTicks: -2},
		{MaxRetries: -3},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	for _, c := range []Config{
		{LossRate: 0.1}, {CorruptRate: 0.1}, {DelayRate: 0.1}, {CrashRate: 0.1},
	} {
		if !c.Enabled() {
			t.Fatalf("config %+v reports disabled", c)
		}
	}
	// Retry tuning alone does not enable injection.
	if (Config{MaxRetries: 3, RetryTimeoutTicks: 5}).Enabled() {
		t.Fatal("retry-only config reports enabled")
	}
}

func TestDefaultsFilled(t *testing.T) {
	c := Config{}.withDefaults()
	if c.RetryTimeoutTicks != DefaultRetryTimeoutTicks ||
		c.BackoffCapTicks != DefaultBackoffCapTicks ||
		c.MaxRetries != DefaultMaxRetries {
		t.Fatalf("defaults not filled: %+v", c)
	}
	c = Config{RetryTimeoutTicks: 9, BackoffCapTicks: 99, MaxRetries: 2}.withDefaults()
	if c.RetryTimeoutTicks != 9 || c.BackoffCapTicks != 99 || c.MaxRetries != 2 {
		t.Fatalf("explicit values overridden: %+v", c)
	}
}

// TestInjectorDeterministic: the same seed produces the same fault decisions.
func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, LossRate: 0.3, CorruptRate: 0.1, DelayRate: 0.2, CrashRate: 0.05}
	a, b := NewInjector(cfg), NewInjector(cfg)
	for i := 0; i < 10_000; i++ {
		if a.DropFrame() != b.DropFrame() {
			t.Fatalf("DropFrame diverged at draw %d", i)
		}
		if a.CorruptFrame() != b.CorruptFrame() {
			t.Fatalf("CorruptFrame diverged at draw %d", i)
		}
		if a.DelayTicks() != b.DelayTicks() {
			t.Fatalf("DelayTicks diverged at draw %d", i)
		}
		if a.CrashNow() != b.CrashNow() {
			t.Fatalf("CrashNow diverged at draw %d", i)
		}
	}
	if a.DroppedToServer+a.DroppedToClient != 0 {
		t.Fatal("DropFrame must not count; direction counters belong to the caller")
	}
	if a.Corrupted == 0 || a.Delayed == 0 || a.Crashes == 0 {
		t.Fatalf("expected nonzero counters: %+v", a)
	}
}

// TestStreamsIndependent: the process-fault stream does not perturb the
// network stream — enabling crashes must not change which frames drop.
func TestStreamsIndependent(t *testing.T) {
	netOnly := NewInjector(Config{Seed: 7, LossRate: 0.25})
	both := NewInjector(Config{Seed: 7, LossRate: 0.25, CrashRate: 0.5})
	for i := 0; i < 10_000; i++ {
		both.CrashNow() // interleave process-domain draws
		if netOnly.DropFrame() != both.DropFrame() {
			t.Fatalf("net stream perturbed by crash sampling at draw %d", i)
		}
	}
}

// TestDisabledDomainsDrawNothing: a domain with rate 0 consumes no
// randomness, so enabling one domain cannot shift another (and a fully
// disabled config perturbs nothing).
func TestDisabledDomainsDrawNothing(t *testing.T) {
	i := NewInjector(Config{Seed: 3}) // all rates zero
	for n := 0; n < 1000; n++ {
		if i.DropFrame() || i.CorruptFrame() || i.DelayTicks() != 0 || i.CrashNow() {
			t.Fatal("disabled injector produced a fault")
		}
	}
	if i.Corrupted+i.Delayed+i.Crashes != 0 {
		t.Fatalf("disabled injector counted faults: %+v", i)
	}
}

func TestMaxCrashesCap(t *testing.T) {
	i := NewInjector(Config{Seed: 1, CrashRate: 1, MaxCrashes: 3})
	n := 0
	for k := 0; k < 100; k++ {
		if i.CrashNow() {
			n++
		}
	}
	if n != 3 || i.Crashes != 3 {
		t.Fatalf("crash cap not honored: fired %d, counted %d", n, i.Crashes)
	}
}
