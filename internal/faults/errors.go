package faults

import "fmt"

// LivelockError reports that the watchdog saw no instruction retire for a
// full window of cycles: the simulation is burning cycles without forward
// progress (every context starved, blocked, or wedged).
type LivelockError struct {
	// Cycle is the simulation cycle at which the watchdog tripped.
	Cycle uint64
	// Window is the no-retirement window that elapsed.
	Window uint64
	// Diag is the diagnostic state snapshot taken on trip.
	Diag string
}

func (e *LivelockError) Error() string {
	return fmt.Sprintf("faults: livelock — no instruction retired in %d cycles (at cycle %d)\n%s",
		e.Window, e.Cycle, e.Diag)
}

// DeadlineError reports that a run was cut short by its context (wall-clock
// deadline or cancellation), with the simulation state at the cut.
type DeadlineError struct {
	// Cycle is the simulation cycle reached before the deadline hit.
	Cycle uint64
	// Cause is the context's error (context.DeadlineExceeded/Canceled).
	Cause error
	// Diag is the diagnostic state snapshot taken on trip.
	Diag string
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("faults: run stopped at cycle %d: %v\n%s", e.Cycle, e.Cause, e.Diag)
}

// Unwrap exposes the context error for errors.Is.
func (e *DeadlineError) Unwrap() error { return e.Cause }

// PanicError wraps an engine invariant panic recovered by RunChecked. The
// simulation state is inconsistent afterwards and must not be reused.
type PanicError struct {
	// Value is the recovered panic value.
	Value interface{}
	// Stack is the goroutine stack at the panic.
	Stack []byte
	// Diag is the diagnostic state snapshot taken on recovery (best
	// effort: the state it describes is the broken one).
	Diag string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("faults: simulation panic: %v\n%s\n%s", e.Value, e.Diag, e.Stack)
}
