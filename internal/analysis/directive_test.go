package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// loadSrc type-checks one in-memory file as a fixture package.
func loadSrc(t *testing.T, src string) *analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	pkg, err := analysis.CheckFixture(fset, "fix", []*ast.File{f}, nil)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return pkg
}

func runMapOrder(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	return analysis.Run([]*analysis.Package{loadSrc(t, src)}, []*analysis.Analyzer{analysis.MapOrder})
}

const flaggedLoop = `package fix

func f(m map[string]int) string {
	last := ""
	for k := range m {
		last = k
	}
	return last
}
`

func TestDirectiveSuppresses(t *testing.T) {
	src := strings.Replace(flaggedLoop, "\t\tlast = k",
		"\t\t//detlint:ignore maporder test reason\n\t\tlast = k", 1)
	if diags := runMapOrder(t, src); len(diags) != 0 {
		t.Fatalf("directive with reason should suppress; got %v", diags)
	}
}

func TestDirectiveSameLine(t *testing.T) {
	src := strings.Replace(flaggedLoop, "last = k",
		"last = k //detlint:ignore maporder test reason", 1)
	if diags := runMapOrder(t, src); len(diags) != 0 {
		t.Fatalf("same-line directive should suppress; got %v", diags)
	}
}

func TestDirectiveMissingReason(t *testing.T) {
	src := strings.Replace(flaggedLoop, "\t\tlast = k",
		"\t\t//detlint:ignore maporder\n\t\tlast = k", 1)
	diags := runMapOrder(t, src)
	if len(diags) != 2 {
		t.Fatalf("want original diagnostic + malformed-directive report, got %v", diags)
	}
	var sawOriginal, sawMalformed bool
	for _, d := range diags {
		switch d.Analyzer {
		case "maporder":
			sawOriginal = true
		case "detlint":
			sawMalformed = true
			if !strings.Contains(d.Message, "no reason") {
				t.Errorf("malformed-directive message = %q", d.Message)
			}
		}
	}
	if !sawOriginal || !sawMalformed {
		t.Errorf("reason-less directive must not suppress and must be reported; got %v", diags)
	}
}

func TestDirectiveUnknownAnalyzer(t *testing.T) {
	src := strings.Replace(flaggedLoop, "\t\tlast = k",
		"\t\t//detlint:ignore bogus some reason\n\t\tlast = k", 1)
	diags := runMapOrder(t, src)
	var sawUnknown bool
	for _, d := range diags {
		if d.Analyzer == "detlint" && strings.Contains(d.Message, `unknown analyzer "bogus"`) {
			sawUnknown = true
		}
	}
	if !sawUnknown {
		t.Errorf("directive naming an unknown analyzer must be reported; got %v", diags)
	}
}

func TestDiagnosticString(t *testing.T) {
	diags := runMapOrder(t, flaggedLoop)
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %v", diags)
	}
	if got := diags[0].String(); !strings.HasPrefix(got, "fix.go:6:3: maporder: ") {
		t.Errorf("String() = %q, want file:line:col: analyzer: prefix", got)
	}
}

func TestAnalyzersSuite(t *testing.T) {
	all := analysis.Analyzers()
	want := []string{"maporder", "walltime", "snapshotcomplete", "nogoroutine", "hotalloc", "counterflow", "seedflow"}
	if len(all) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q missing Doc", a.Name)
		}
		if (a.Run == nil) == (a.RunSuite == nil) {
			t.Errorf("analyzer %q must set exactly one of Run and RunSuite", a.Name)
		}
	}
}
