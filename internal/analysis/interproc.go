// Interprocedural scaffolding for the suite-level analyzers (hotalloc,
// counterflow, seedflow): a call graph over every function declared in the
// analyzed packages, plus the //detlint:hot root directive.
//
// The graph is deliberately modest — exactly what the three contract
// analyzers need and no more:
//
//   - Nodes are function and method declarations in the analyzed packages.
//     Function literals are attributed to their enclosing declaration (a
//     closure created by a hot function runs on the hot path until proven
//     otherwise).
//   - Edges are static calls: direct calls to package-level functions
//     (including dot-imported and package-qualified ones) and method calls
//     through concrete receivers. Cross-package edges resolve by a stable
//     (package path, receiver, name) key, because each package is
//     type-checked separately and sees its dependencies through export data
//     — the *types.Func identities differ between the importing and the
//     defining package even though they name the same function.
//   - Calls through interface values are a boundary, not an edge. This is a
//     feature: the pipeline's Feed interface is exactly the line between the
//     zero-alloc engine and the kernel, and the dynamic allocation gate
//     (TestEngineStepZeroAlloc) measures the same side of it. Boxing at
//     such a boundary is still visible to hotalloc at the call site.
//
// A root is marked in source:
//
//	//detlint:hot <why this path must not allocate>
//
// on the line directly above (or the last line of the doc comment of) a
// function declaration. The reason is mandatory and a directive that does
// not attach to a function declaration is itself reported, mirroring the
// //detlint:ignore rules, so hot roots can never rot silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Suite gives suite-level analyzers every package of one Run invocation at
// once, plus the shared call graph.
type Suite struct {
	Pkgs []*Package

	graph *CallGraph
}

// A SuitePass provides one suite-level analyzer with the Suite and a
// diagnostic sink.
type SuitePass struct {
	Analyzer *Analyzer
	Suite    *Suite

	dirs  fileDirectives
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos, resolved through fset (positions are
// fset-relative, and every package of one Load shares its fset — use the
// owning package's).
func (p *SuitePass) Reportf(fset *token.FileSet, pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Ignored reports whether an ignore directive for this analyzer covers pos
// (same line or the line above), for declaration-level exemptions.
func (p *SuitePass) Ignored(fset *token.FileSet, pos token.Pos) bool {
	return p.dirs.covers(p.Analyzer.Name, fset.Position(pos))
}

// ------------------------------------------------------------- call graph

// A FuncNode is one function or method declaration in the suite.
type FuncNode struct {
	// Key is the stable cross-package identity (see funcKey).
	Key string
	// Obj is the source-checked function object.
	Obj *types.Func
	// Decl is the declaration; Decl.Body may be nil (assembly stubs).
	Decl *ast.FuncDecl
	// Pkg is the package declaring the function.
	Pkg *Package
	// Calls are the callee keys of every static call in the body, deduped,
	// in source order. Keys without a FuncNode are outside the suite
	// (standard library, interface methods) — boundaries, not edges.
	Calls []string
	// HotReason is non-empty when a //detlint:hot directive marks the
	// function as a hot-path root.
	HotReason string
}

// A CallGraph indexes the suite's function declarations.
type CallGraph struct {
	// Funcs maps key → node.
	Funcs map[string]*FuncNode
	// Order lists keys deterministically (package path, then file position).
	Order []string
}

// Graph builds (once) and returns the suite call graph.
func (s *Suite) Graph() *CallGraph {
	if s.graph == nil {
		s.graph = buildCallGraph(s.Pkgs)
	}
	return s.graph
}

// funcKey returns the stable identity of fn across packages: the defining
// package path plus receiver type (for methods) plus name. Works identically
// for source-checked objects and objects materialized from export data.
func funcKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if name := namedNameOf(sig.Recv().Type()); name != "" {
			return pkg + ".(" + name + ")." + fn.Name()
		}
		// Interface methods and weird receivers: include the full receiver
		// type string so distinct methods never collide.
		return pkg + ".(" + sig.Recv().Type().String() + ")." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// namedNameOf unwraps pointers and returns the named type's bare name.
func namedNameOf(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	}
	return ""
}

// buildCallGraph assembles nodes and static edges for every declaration.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Funcs: map[string]*FuncNode{}}
	for _, pkg := range pkgs {
		dirs := parseDirectives(pkg.Fset, pkg.Files)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{
					Key:       funcKey(obj),
					Obj:       obj,
					Decl:      fd,
					Pkg:       pkg,
					HotReason: hotReasonFor(pkg.Fset, fd, dirs),
				}
				node.Calls = staticCallees(pkg, fd)
				g.Funcs[node.Key] = node
				g.Order = append(g.Order, node.Key)
			}
		}
	}
	sort.Strings(g.Order)
	return g
}

// hotReasonFor returns the reason of a //detlint:hot directive attached to
// fd (on the declaration line or the line directly above it, which is where
// the last line of a doc comment sits), or "".
func hotReasonFor(fset *token.FileSet, fd *ast.FuncDecl, dirs fileDirectives) string {
	pos := fset.Position(fd.Pos())
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range dirs.hotsByLine(pos.Filename, line) {
			if d.reason != "" {
				return d.reason
			}
		}
	}
	return ""
}

// staticCallees extracts the callee keys of every static call in fd's body
// (function literals included), deduped in source order.
func staticCallees(pkg *Package, fd *ast.FuncDecl) []string {
	if fd.Body == nil {
		return nil
	}
	var out []string
	seen := map[string]bool{}
	add := func(fn *types.Func) {
		k := funcKey(fn)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := unparen(call.Fun).(type) {
		case *ast.Ident:
			if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
				add(fn)
			}
		case *ast.SelectorExpr:
			if sel := pkg.Info.Selections[fun]; sel != nil {
				if sel.Kind() == types.MethodVal {
					if fn, ok := sel.Obj().(*types.Func); ok {
						add(fn)
					}
				}
				break
			}
			// No selection recorded: package-qualified function (pkg.F).
			if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
				add(fn)
			}
		}
		return true
	})
	return out
}

// HotRoots returns the //detlint:hot-annotated nodes in deterministic order.
func (g *CallGraph) HotRoots() []*FuncNode {
	var roots []*FuncNode
	for _, k := range g.Order {
		if n := g.Funcs[k]; n.HotReason != "" {
			roots = append(roots, n)
		}
	}
	return roots
}

// ReachableFrom walks static edges from the given roots and returns, for
// every reached node key, the key of the node it was first reached from
// (roots map to ""). The traversal order is deterministic: breadth-first
// over the sorted root list and each node's source-order callee list.
func (g *CallGraph) ReachableFrom(roots []*FuncNode) map[string]string {
	parent := map[string]string{}
	var queue []string
	for _, r := range roots {
		if _, ok := parent[r.Key]; !ok {
			parent[r.Key] = ""
			queue = append(queue, r.Key)
		}
	}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		node := g.Funcs[k]
		if node == nil {
			continue
		}
		for _, callee := range node.Calls {
			if _, ok := parent[callee]; ok {
				continue
			}
			if g.Funcs[callee] == nil {
				continue // outside the suite: boundary
			}
			parent[callee] = k
			queue = append(queue, callee)
		}
	}
	return parent
}

// CallChain renders the path root → … → key through the parent map, for
// diagnostics ("step → issue → memIssue").
func (g *CallGraph) CallChain(parent map[string]string, key string) string {
	var chain []string
	for k := key; k != ""; k = parent[k] {
		node := g.Funcs[k]
		if node == nil {
			break
		}
		chain = append(chain, shortFuncName(node))
		if parent[k] == "" {
			break
		}
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return strings.Join(chain, " → ")
}

// shortFuncName renders a node as pkgname.Recv.Name for diagnostics.
func shortFuncName(n *FuncNode) string {
	name := n.Obj.Name()
	if sig, ok := n.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if recv := namedNameOf(sig.Recv().Type()); recv != "" {
			name = recv + "." + name
		}
	}
	return n.Pkg.Types.Name() + "." + name
}

// ------------------------------------------------------------- field keys

// fieldKeyOf returns a stable cross-package identity for the struct field
// accessed by a selection: defining package path + owning named type + field
// name, derived from the selection's receiver so the importing and defining
// packages compute the same key. ok is false for non-field selections or
// receivers without a named type.
func fieldKeyOf(sel *types.Selection) (string, bool) {
	if sel.Kind() != types.FieldVal {
		return "", false
	}
	f, ok := sel.Obj().(*types.Var)
	if !ok || f.Pkg() == nil {
		return "", false
	}
	owner := namedNameOf(sel.Recv())
	if owner == "" {
		return "", false
	}
	return f.Pkg().Path() + "." + owner + "." + f.Name(), true
}
