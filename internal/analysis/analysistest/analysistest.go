// Package analysistest runs a detlint analyzer over fixture packages under
// testdata/src and checks its diagnostics against expectations written in
// the fixtures, mirroring the golang.org/x/tools/go/analysis/analysistest
// convention (reimplemented on the standard library; see package analysis
// for why no external modules are used).
//
// An expectation is a comment on the line a diagnostic should appear on:
//
//	keys = append(keys, k) // want `append to slice keys`
//
// The quoted text (backquoted or double-quoted Go string syntax) is a
// regular expression matched against the diagnostic message. Multiple
// expectations on one line match multiple diagnostics. Every diagnostic must
// match an expectation and every expectation must be matched. Diagnostics
// pass through the ignore-directive filter first, so fixtures exercise the
// //detlint:ignore path too.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run analyzes each fixture package (a path like "maporder/a" under
// dir/src/) with a and reports mismatches via t. Fixture packages may import
// the standard library; imports between fixtures are not supported.
func Run(t *testing.T, dir string, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	for _, fx := range fixtures {
		fx := fx
		t.Run(strings.ReplaceAll(fx, "/", "_"), func(t *testing.T) {
			t.Helper()
			runOne(t, dir, a, fx)
		})
	}
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer, fixture string) {
	t.Helper()
	pkgDir := filepath.Join(dir, "src", filepath.FromSlash(fixture))
	pkg, err := loadFixture(pkgDir, fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})

	wants := collectWants(t, pkg.Fset, pkg.Files)
	for _, d := range diags {
		key := posKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", posString(d.Pos.Filename, d.Pos.Line), d.Analyzer, d.Message)
		}
	}
	unmatchedKeys := make([]posKey, 0, len(wants))
	for key := range wants {
		unmatchedKeys = append(unmatchedKeys, key)
	}
	sort.Slice(unmatchedKeys, func(i, j int) bool {
		a, b := unmatchedKeys[i], unmatchedKeys[j]
		if a.file != b.file {
			return a.file < b.file
		}
		return a.line < b.line
	})
	for _, key := range unmatchedKeys {
		for _, w := range wants[key] {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", posString(key.file, key.line), w.re)
			}
		}
	}
}

// loadFixture parses and type-checks one fixture directory as a package.
func loadFixture(pkgDir, path string) (*analysis.Package, error) {
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(pkgDir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			imports[p] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", pkgDir)
	}
	pkg, err := analysis.CheckFixture(fset, path, files, keys(imports))
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

type posKey struct {
	file string
	line int
}

func posString(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`// want (.*)$`)

// collectWants extracts `// want "re" ...` expectations from the fixtures.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[posKey][]*want {
	t.Helper()
	out := map[posKey][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range splitLiterals(m[1]) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					key := posKey{pos.Filename, pos.Line}
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
	return out
}

// splitLiterals splits a want payload into Go string literals.
func splitLiterals(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			break
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == quote && (quote == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			break
		}
		out = append(out, s[:end+1])
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}
