package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// CounterFlow enforces the counter→report pipeline: every monotone counter a
// simulated subsystem increments must flow into the report package's Take
// snapshot AND be differenced in Delta. This is the PR 6/7 bug class made
// compile-time: a counter wired into Take but dropped from Delta reports
// zeros for every measurement window, forever, silently.
var CounterFlow = &Analyzer{
	Name: "counterflow",
	Doc: `require every monotone subsystem counter to reach report.Take and Delta

A monotone counter is a uint64 (or [N]uint64) struct field that some function
in a counted subsystem package (kernel, mem, cache, tlb, netsim, faults — or
any package defining its own Take/Delta pair) increments with ++ or += and
never decrements or plainly reassigns outside New*/Restore*/Reset* functions.
Each such counter must be read by some function reachable from the report
sink's Take (directly, or through an accessor method Take calls), and every
top-level field of the snapshot type Take returns must be referenced in both
Take and Delta. Counters that are deliberately internal carry
//detlint:ignore counterflow <reason> on their field declaration.`,
	RunSuite: runCounterFlow,
}

// counterScopePkgs are the package-name bases whose counters must be
// reported.
var counterScopePkgs = map[string]bool{
	"kernel": true, "mem": true, "cache": true,
	"tlb": true, "netsim": true, "faults": true,
}

// counterSink is one report-shaped package: package-level Take returning a
// struct, package-level Delta.
type counterSink struct {
	pkg         *Package
	take, delta *ast.FuncDecl
	takeObj     *types.Func
	snap        *types.Named // Take's result type
}

func runCounterFlow(pass *SuitePass) error {
	sinks := findCounterSinks(pass.Suite)
	if len(sinks) == 0 {
		return nil // nothing to flow into (e.g. detlint -only over one package)
	}
	g := pass.Suite.Graph()

	// Everything reachable from any sink's Take captures counters by reading
	// their fields.
	var roots []*FuncNode
	for _, s := range sinks {
		if n := g.Funcs[funcKey(s.takeObj)]; n != nil {
			roots = append(roots, n)
		}
	}
	captured := map[string]bool{}
	parent := g.ReachableFrom(roots)
	for _, key := range g.Order {
		if _, ok := parent[key]; !ok {
			continue
		}
		node := g.Funcs[key]
		if node.Decl.Body == nil {
			continue
		}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if s := node.Pkg.Info.Selections[sel]; s != nil {
				if k, ok := fieldKeyOf(s); ok {
					captured[k] = true
				}
			}
			return true
		})
	}

	for _, pkg := range pass.Suite.Pkgs {
		if !counterScoped(pkg, sinks) {
			continue
		}
		for _, c := range monotoneCounters(pkg) {
			if captured[c.key] {
				continue
			}
			if pass.Ignored(pkg.Fset, c.declPos) {
				continue
			}
			pass.Reportf(pkg.Fset, c.declPos,
				"monotone counter %s is incremented at %s but never read on any path from report Take; wire it into the snapshot or annotate //detlint:ignore counterflow <reason>",
				c.name, pkg.Fset.Position(c.incPos))
		}
	}

	for _, s := range sinks {
		checkSnapshotFieldFlow(pass, s)
	}
	return nil
}

// findCounterSinks locates packages declaring a package-level Take (returning
// a named struct) and Delta.
func findCounterSinks(s *Suite) []*counterSink {
	var out []*counterSink
	for _, pkg := range s.Pkgs {
		sink := &counterSink{pkg: pkg}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv != nil {
					continue
				}
				switch fd.Name.Name {
				case "Take":
					sink.take = fd
				case "Delta":
					sink.delta = fd
				}
			}
		}
		if sink.take == nil || sink.delta == nil {
			continue
		}
		obj, ok := pkg.Info.Defs[sink.take.Name].(*types.Func)
		if !ok {
			continue
		}
		sig := obj.Type().(*types.Signature)
		if sig.Results().Len() != 1 {
			continue
		}
		named, ok := sig.Results().At(0).Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			continue
		}
		sink.takeObj = obj
		sink.snap = named
		out = append(out, sink)
	}
	return out
}

// counterScoped reports whether pkg's counters fall under the contract.
func counterScoped(pkg *Package, sinks []*counterSink) bool {
	if counterScopePkgs[path.Base(pkg.Types.Path())] {
		return true
	}
	for _, s := range sinks {
		if s.pkg == pkg {
			return true
		}
	}
	return false
}

// counter is one monotone counter field of a scoped package.
type counter struct {
	key     string
	name    string // Type.Field for diagnostics
	declPos token.Pos
	incPos  token.Pos // first increment, for diagnostics
}

// monotoneCounters finds pkg's counter fields: uint64 / [N]uint64 fields with
// at least one ++/+= and no decrement or plain reassignment outside
// New*/Restore*/Reset* (or init) functions. Results are in deterministic
// (first increment position) order.
func monotoneCounters(pkg *Package) []counter {
	inc := map[string]*counter{}
	disqualified := map[string]bool{}
	note := func(e ast.Expr, isInc, exemptFunc bool) {
		sel, ok := counterSelector(e)
		if !ok {
			return
		}
		s := pkg.Info.Selections[sel]
		if s == nil {
			return
		}
		key, ok := fieldKeyOf(s)
		if !ok || !counterFieldType(s.Obj().Type()) {
			return
		}
		if !isInc {
			if !exemptFunc {
				disqualified[key] = true
			}
			return
		}
		if inc[key] == nil {
			inc[key] = &counter{
				key:     key,
				name:    namedNameOf(s.Recv()) + "." + s.Obj().Name(),
				declPos: s.Obj().Pos(),
				incPos:  e.Pos(),
			}
		}
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			exempt := counterExemptFunc(fd.Name.Name)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.IncDecStmt:
					note(n.X, n.Tok == token.INC, exempt)
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						switch n.Tok {
						case token.ADD_ASSIGN:
							note(lhs, true, exempt)
						case token.DEFINE:
						default:
							note(lhs, false, exempt)
						}
					}
				}
				return true
			})
		}
	}
	var out []counter
	for _, c := range inc {
		if !disqualified[c.key] {
			out = append(out, *c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].incPos < out[j].incPos })
	return out
}

// counterExemptFunc reports whether writes in a function named name may
// freely assign counter fields (construction, checkpoint restore, reset).
func counterExemptFunc(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "Restore") ||
		strings.HasPrefix(name, "Reset") || name == "init"
}

// counterSelector unwraps index chains (SyscallCount[n]++, Accesses[i]++)
// down to the field selector.
func counterSelector(e ast.Expr) (*ast.SelectorExpr, bool) {
	for {
		switch x := unparen(e).(type) {
		case *ast.SelectorExpr:
			return x, true
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// counterFieldType reports whether t is uint64 or an array of uint64.
func counterFieldType(t types.Type) bool {
	if a, ok := t.Underlying().(*types.Array); ok {
		t = a.Elem()
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

// checkSnapshotFieldFlow requires every top-level field of the sink's
// snapshot struct to be referenced in both Take and Delta.
func checkSnapshotFieldFlow(pass *SuitePass, s *counterSink) {
	st := s.snap.Underlying().(*types.Struct)
	inTake := fieldsReferenced(s.pkg, s.take)
	inDelta := fieldsReferenced(s.pkg, s.delta)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if pass.Ignored(s.pkg.Fset, f.Pos()) {
			continue
		}
		switch {
		case !inTake[f] && !inDelta[f]:
			pass.Reportf(s.pkg.Fset, f.Pos(), "snapshot field %s.%s is populated by neither Take nor Delta and will always read zero", s.snap.Obj().Name(), f.Name())
		case !inTake[f]:
			pass.Reportf(s.pkg.Fset, f.Pos(), "snapshot field %s.%s is differenced in Delta but never captured by Take", s.snap.Obj().Name(), f.Name())
		case !inDelta[f]:
			pass.Reportf(s.pkg.Fset, f.Pos(), "snapshot field %s.%s is captured by Take but dropped from Delta; every window will report zero", s.snap.Obj().Name(), f.Name())
		}
	}
}

// fieldsReferenced collects every struct-field object an identifier in fd's
// body resolves to — plain selections and composite-literal keys alike (both
// are recorded in Info.Uses).
func fieldsReferenced(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Body == nil {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj, ok := pkg.Info.Uses[id].(*types.Var); ok && obj.IsField() {
			out[obj] = true
		}
		return true
	})
	return out
}
