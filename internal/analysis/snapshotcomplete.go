package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// SnapshotComplete verifies checkpoint coverage: for every type that
// participates in the checkpoint layer — it has both a Snapshot method and a
// Restore (or Restore-prefixed) method — every struct field must be
// referenced in both methods, directly or through same-type helper methods.
// This catches checkpoint drift the moment a struct grows a field that the
// serialization code does not know about: the class of bug that silently
// breaks crash-consistent restore (see CHECKPOINT.md).
var SnapshotComplete = &Analyzer{
	Name: "snapshotcomplete",
	Doc: `verify every field of a Snapshot/Restore type is covered by both methods

A type with a Snapshot/Restore method pair is part of the checkpoint
contract: its entire mutable state must round-trip. The analyzer enumerates
the type's struct fields with go/types and requires each one to be selected
somewhere in the body of Snapshot and of Restore (helper methods on the same
type are followed; passing the whole receiver to an encoder counts as
covering every field). Fields that are configuration, derived indexes
rebuilt on restore, or wiring re-established by the caller are annotated
//detlint:ignore snapshotcomplete <reason> on the field line; a directive on
the type declaration line exempts the whole type.`,
	Run: runSnapshotComplete,
}

func runSnapshotComplete(pass *Pass) error {
	methods := methodDecls(pass)
	typeNames := make([]string, 0, len(methods))
	for name := range methods {
		typeNames = append(typeNames, name)
	}
	sort.Strings(typeNames)
	for _, typeName := range typeNames {
		byName := methods[typeName]
		snap := byName["Snapshot"]
		rest := byName["Restore"]
		if rest == nil {
			// Accept a Restore-prefixed variant (kernel uses RestoreState);
			// pick the first in name order so the choice is deterministic.
			methodNames := make([]string, 0, len(byName))
			for name := range byName {
				methodNames = append(methodNames, name)
			}
			sort.Strings(methodNames)
			for _, name := range methodNames {
				if strings.HasPrefix(name, "Restore") {
					rest = byName[name]
					break
				}
			}
		}
		if snap == nil || rest == nil {
			continue
		}
		obj := pass.Pkg.Scope().Lookup(typeName)
		if obj == nil {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok || st.NumFields() == 0 {
			continue
		}
		if pass.Ignored(obj.Pos()) {
			continue // type-level exemption on the declaration line
		}
		inSnap := coveredFields(pass, named, snap, methods[typeName])
		inRest := coveredFields(pass, named, rest, methods[typeName])
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "_" {
				continue
			}
			missSnap := inSnap != nil && !inSnap[i]
			missRest := inRest != nil && !inRest[i]
			if !missSnap && !missRest {
				continue
			}
			var where string
			switch {
			case missSnap && missRest:
				where = snap.Name.Name + " or " + rest.Name.Name
			case missSnap:
				where = snap.Name.Name
			default:
				where = rest.Name.Name
			}
			pass.Reportf(f.Pos(), "field %s.%s is not referenced in %s: checkpoint state may drift — persist it, or annotate //detlint:ignore snapshotcomplete <reason> if it is configuration or rebuilt on restore", typeName, f.Name(), where)
		}
	}
	return nil
}

// methodDecls indexes the package's method declarations by receiver type
// name then method name.
func methodDecls(pass *Pass) map[string]map[string]*ast.FuncDecl {
	out := map[string]map[string]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			name := receiverTypeName(fd.Recv.List[0].Type)
			if name == "" {
				continue
			}
			if out[name] == nil {
				out[name] = map[string]*ast.FuncDecl{}
			}
			out[name][fd.Name.Name] = fd
		}
	}
	return out
}

// receiverTypeName unwraps a method receiver type expression to its name.
func receiverTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr: // generic receiver
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// coveredFields returns which top-level fields of named are selected within
// fn's body, following calls to other methods of the same type (one common
// pattern splits Restore into per-subsystem helpers). A nil result means
// "everything covered": the whole receiver escaped (passed to an encoder,
// copied with *t = s, returned), so field-level accounting is impossible and
// the method is taken to cover all state.
func coveredFields(pass *Pass, named *types.Named, fn *ast.FuncDecl, siblings map[string]*ast.FuncDecl) map[int]bool {
	covered := map[int]bool{}
	visited := map[*ast.FuncDecl]bool{}
	var visit func(fd *ast.FuncDecl) bool
	visit = func(fd *ast.FuncDecl) bool {
		if visited[fd] {
			return true
		}
		visited[fd] = true
		if fd.Body == nil {
			return true
		}
		recv := receiverObj(pass, fd)
		if receiverEscapes(pass, fd, recv) {
			return false // whole receiver handed off: all fields covered
		}
		ok := true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel := pass.TypesInfo.Selections[n]; sel != nil {
					if sameNamed(sel.Recv(), named) && len(sel.Index()) > 0 {
						covered[sel.Index()[0]] = true
					}
					// Follow helper methods on the same type.
					if sel.Kind() == types.MethodVal && sameNamed(sel.Recv(), named) {
						if callee := siblings[n.Sel.Name]; callee != nil {
							if !visit(callee) {
								ok = false
							}
						}
					}
				}
			}
			return true
		})
		return ok
	}
	if !visit(fn) {
		return nil
	}
	return covered
}

// receiverObj returns the object of fn's receiver variable (nil if unnamed).
func receiverObj(pass *Pass, fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fn.Recv.List[0].Names[0]]
}

// receiverEscapes reports whether the receiver is used as a whole value —
// anywhere other than as the base of a field/method selection — e.g.
// enc.Encode(t), *t = tmp, return *t. Such methods cover all fields.
func receiverEscapes(pass *Pass, fn *ast.FuncDecl, recv types.Object) bool {
	if recv == nil || fn.Body == nil {
		return false
	}
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	escaped := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv {
			p := parents[id]
			for {
				if pe, ok := p.(*ast.ParenExpr); ok {
					_ = pe
					p = parents[p]
					continue
				}
				break
			}
			// Deref (*t) and address (&t) still count as a whole-value use
			// unless the result is immediately selected from.
			if star, ok := p.(*ast.StarExpr); ok {
				p2 := parents[star]
				if sel, ok := p2.(*ast.SelectorExpr); ok && sel.X == star {
					return true
				}
			}
			if sel, ok := p.(*ast.SelectorExpr); ok && sel.X == id {
				return true // t.field or t.method(...): a selection, not an escape
			}
			escaped = true
		}
		return true
	})
	return escaped
}

// sameNamed reports whether t (possibly a pointer) is the named type n.
func sameNamed(t types.Type, n *types.Named) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	got, ok := t.(*types.Named)
	return ok && got.Obj() == n.Obj()
}
