// Package analysis is the static-analysis framework behind cmd/detlint: a
// small, self-contained reimplementation of the golang.org/x/tools/go/analysis
// Analyzer/Pass model on top of the standard go/ast and go/types stacks.
//
// The simulator's headline guarantee — bit-identical replay across seeds,
// checkpoints, and fault-injected runs — rests on a determinism contract that
// until this package was enforced only by golden tests after the fact.
// PR 1 had to hand-fix a latent map-iteration-order bug in mem.ReleaseProcess,
// and the checkpoint layer added in PR 2 silently drifts whenever a struct
// grows a field without matching Snapshot/Restore lines. The four analyzers in
// this package (maporder, walltime, snapshotcomplete, nogoroutine) turn those
// failure classes into compile-time diagnostics; see ANALYSIS.md for the
// contract each one enforces.
//
// The framework mirrors the x/tools API shape deliberately, but depends only
// on the standard library (this build environment has no module proxy access),
// loading type information for whole packages offline via `go list -export`
// and the gc export-data importer.
//
// # Ignore directives
//
// A diagnostic is suppressed by a comment on the flagged line, or on the line
// directly above it, of the form
//
//	//detlint:ignore <analyzer> <reason>
//
// The reason is mandatory: a directive without one is itself reported. The
// directive is scoped to a single line so every exemption stays next to the
// code it excuses.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. Exactly one of Run and RunSuite is
// set: per-package analyzers see one package at a time, suite analyzers see
// every package of an invocation at once (the interprocedural contracts —
// hot-path allocations, counter→report flow — span package boundaries).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// RunSuite applies the analyzer to all packages at once.
	RunSuite func(*SuitePass) error
}

// A Pass provides one analyzer with one type-checked package and a sink for
// its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	dirs  fileDirectives
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos. Diagnostics on a line covered by a
// matching //detlint:ignore directive are dropped by the runner.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Ignored reports whether a //detlint:ignore directive for this pass's
// analyzer covers pos (same line or the line above). Analyzers use this for
// declaration-level exemptions — e.g. snapshotcomplete skips a whole type
// when its type declaration line carries the directive; plain per-diagnostic
// suppression needs no explicit check because the runner applies it.
func (p *Pass) Ignored(pos token.Pos) bool {
	return p.dirs.covers(p.Analyzer.Name, p.Fset.Position(pos))
}

// A Diagnostic is one finding, with its position resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Comment prefixes of the detlint directives.
const (
	directivePrefix = "//detlint:ignore"
	hotPrefix       = "//detlint:hot"
)

// directive is one parsed //detlint:ignore or //detlint:hot comment. For
// ignore directives analyzer names the suppressed analyzer; for hot
// directives analyzer is empty and reason explains why the annotated
// function is a hot-path root.
type directive struct {
	analyzer string
	reason   string
	pos      token.Position
}

// fileDirectives holds a package's directives: indexed by file and line for
// suppression lookups, plus flat lists in file order so walking every
// directive is itself deterministic.
type fileDirectives struct {
	byLine map[string]map[int][]directive
	all    []directive
	// hots are the //detlint:hot root markers, indexed like byLine.
	hotLines map[string]map[int][]directive
	hots     []directive
}

func (fd fileDirectives) hotsByLine(file string, line int) []directive {
	return fd.hotLines[file][line]
}

func (fd fileDirectives) covers(analyzer string, pos token.Position) bool {
	lines := fd.byLine[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range lines[line] {
			if d.analyzer == analyzer && d.reason != "" {
				return true
			}
		}
	}
	return false
}

// parseDirectives extracts every //detlint:ignore and //detlint:hot comment
// of the files.
func parseDirectives(fset *token.FileSet, files []*ast.File) fileDirectives {
	fd := fileDirectives{
		byLine:   map[string]map[int][]directive{},
		hotLines: map[string]map[int][]directive{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				switch {
				case strings.HasPrefix(c.Text, directivePrefix):
					rest := strings.TrimPrefix(c.Text, directivePrefix)
					fields := strings.Fields(rest)
					d := directive{pos: fset.Position(c.Pos())}
					if len(fields) > 0 {
						d.analyzer = fields[0]
					}
					if len(fields) > 1 {
						d.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
					}
					name := d.pos.Filename
					if fd.byLine[name] == nil {
						fd.byLine[name] = map[int][]directive{}
					}
					fd.byLine[name][d.pos.Line] = append(fd.byLine[name][d.pos.Line], d)
					fd.all = append(fd.all, d)
				case strings.HasPrefix(c.Text, hotPrefix):
					d := directive{
						reason: strings.TrimSpace(strings.TrimPrefix(c.Text, hotPrefix)),
						pos:    fset.Position(c.Pos()),
					}
					name := d.pos.Filename
					if fd.hotLines[name] == nil {
						fd.hotLines[name] = map[int][]directive{}
					}
					fd.hotLines[name][d.pos.Line] = append(fd.hotLines[name][d.pos.Line], d)
					fd.hots = append(fd.hots, d)
				}
			}
		}
	}
	return fd
}

// Run applies the analyzers to each package and returns the surviving
// diagnostics, sorted by position. Diagnostics on lines covered by a valid
// ignore directive are suppressed; malformed directives (unknown analyzer
// name, or no reason) are reported under the analyzer name "detlint" so a
// suppression can never silently rot.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	// The whole suite counts as known even when only a subset runs
	// (detlint -only): a directive for an analyzer that is merely switched
	// off this invocation is not malformed.
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	merged := fileDirectives{
		byLine:   map[string]map[int][]directive{},
		hotLines: map[string]map[int][]directive{},
	}
	for _, pkg := range pkgs {
		dirs := parseDirectives(pkg.Fset, pkg.Files)
		for file, lines := range dirs.byLine {
			merged.byLine[file] = lines
		}
		for file, lines := range dirs.hotLines {
			merged.hotLines[file] = lines
		}
		var raw []Diagnostic
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				dirs:      dirs,
				diags:     &raw,
			}
			if err := a.Run(pass); err != nil {
				raw = append(raw, Diagnostic{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(pkg.Files[0].Pos()),
					Message:  fmt.Sprintf("analyzer failed: %v", err),
				})
			}
		}
		for _, d := range raw {
			if dirs.covers(d.Analyzer, d.Pos) {
				continue
			}
			out = append(out, d)
		}
		for _, d := range dirs.all {
			switch {
			case !known[d.analyzer]:
				out = append(out, Diagnostic{
					Analyzer: "detlint",
					Pos:      d.pos,
					Message:  fmt.Sprintf("ignore directive names unknown analyzer %q", d.analyzer),
				})
			case d.reason == "":
				out = append(out, Diagnostic{
					Analyzer: "detlint",
					Pos:      d.pos,
					Message:  fmt.Sprintf("ignore directive for %q has no reason; write //detlint:ignore %s <why this is safe>", d.analyzer, d.analyzer),
				})
			}
		}
		declLines := funcDeclLines(pkg)
		for _, d := range dirs.hots {
			switch {
			case d.reason == "":
				out = append(out, Diagnostic{
					Analyzer: "detlint",
					Pos:      d.pos,
					Message:  "hot directive has no reason; write //detlint:hot <why this path must not allocate>",
				})
			case !declLines[d.pos.Filename][d.pos.Line] && !declLines[d.pos.Filename][d.pos.Line+1]:
				out = append(out, Diagnostic{
					Analyzer: "detlint",
					Pos:      d.pos,
					Message:  "hot directive does not attach to a function declaration (put it on the line directly above func)",
				})
			}
		}
	}
	suite := &Suite{Pkgs: pkgs}
	for _, a := range analyzers {
		if a.RunSuite == nil {
			continue
		}
		var raw []Diagnostic
		pass := &SuitePass{Analyzer: a, Suite: suite, dirs: merged, diags: &raw}
		if err := a.RunSuite(pass); err != nil && len(pkgs) > 0 {
			raw = append(raw, Diagnostic{
				Analyzer: a.Name,
				Pos:      pkgs[0].Fset.Position(pkgs[0].Files[0].Pos()),
				Message:  fmt.Sprintf("analyzer failed: %v", err),
			})
		}
		for _, d := range raw {
			if merged.covers(d.Analyzer, d.Pos) {
				continue
			}
			out = append(out, d)
		}
	}
	return dedupe(out)
}

// funcDeclLines records, per file, the starting line of every function
// declaration — the lines a //detlint:hot directive may attach to.
func funcDeclLines(pkg *Package) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				pos := pkg.Fset.Position(fd.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = map[int]bool{}
				}
				out[pos.Filename][pos.Line] = true
			}
		}
	}
	return out
}

// dedupe drops repeated (analyzer, position, message) triples — a nested
// map-range body, for example, is inspected once per enclosing loop — and
// sorts by file position.
func dedupe(diags []Diagnostic) []Diagnostic {
	seen := map[string]bool{}
	var out []Diagnostic
	for _, d := range diags {
		k := d.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// Analyzers returns the full detlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapOrder, WallTime, SnapshotComplete, NoGoroutine, HotAlloc, CounterFlow, SeedFlow}
}
