// Fixture for the seedflow analyzer: every generator must derive its seed
// from the partition stream, with a subsystem-unique derivation, and must
// stay fixed after construction.
package sim

import "repro/internal/rng"

type config struct {
	Seed  uint64
	Width int
}

type system struct {
	r *rng.Rand
}

// NewSystem constructs the generators; assignments here are exempt.
func NewSystem(cfg config) *system {
	s := &system{}
	s.r = rng.New(cfg.Seed ^ 0x1001)
	return s
}

func badLiteral() *rng.Rand {
	return rng.New(42) // want `generator is seeded with the constant 42`
}

func badDerivation(cfg config) *rng.Rand {
	return rng.New(uint64(cfg.Width) * 2654435761) // want `seed expression .* does not derive from a SeedPartitions stream`
}

// aliased repeats NewSystem's derivation fingerprint: same stream.
func aliased(cfg config) *rng.Rand {
	return rng.New(cfg.Seed ^ 0x1001) // want `seed derivation \{4097\} duplicates the stream created at`
}

// distinct mixes a different constant in, so it gets its own stream.
func distinct(cfg config) *rng.Rand {
	return rng.New(cfg.Seed ^ 0x2002)
}

// reseed replaces generator state outside construction: both forms flagged.
func (s *system) reseed(cfg config) {
	s.r.SetState([4]uint64{1, 2, 3, 4}) // want `SetState re-seeds a generator outside a New\*/Restore\* function \(reseed\)`
	s.r = rng.New(cfg.Seed ^ 0x3003)    // want `stored generator s\.r is replaced outside a New\*/Restore\* function \(reseed\)`
}

// RestoreSystem rebuilds generator state from a checkpoint; exempt.
func RestoreSystem(s *system, st [4]uint64) {
	s.r.SetState(st)
}
