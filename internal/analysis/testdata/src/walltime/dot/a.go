// Fixture for the walltime analyzer's dot-import fallback: wall-clock and
// global-rand identifiers are flagged even without a package qualifier.
package dot

import . "time"

func now() int64 {
	t := Now() // want `time\.Now \(dot import\) reads the wall clock`
	return t.Unix()
}

func timer() {
	_ = After(Second) // want `time\.After \(dot import\) reads the wall clock`
}

// Durations and time constants through the dot import do not read the clock.
func budget() Duration {
	return 3 * Second
}
