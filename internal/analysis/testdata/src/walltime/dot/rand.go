package dot

import . "math/rand"

func perm() []int {
	return Perm(8) // want `math/rand\.Perm \(dot import\) uses the process-global random source`
}

func shuffle(xs []int) {
	Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand\.Shuffle \(dot import\) uses the process-global random source`
}
