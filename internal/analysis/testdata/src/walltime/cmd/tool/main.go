// Fixture: cmd/ entry points may use wall-clock supervision budgets. No
// diagnostics expected.
package main

import "time"

func main() {
	deadline := time.Now().Add(time.Minute)
	_ = deadline
}
