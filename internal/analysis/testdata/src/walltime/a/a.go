// Fixture for the walltime analyzer: wall-clock reads and global math/rand
// are flagged in simulation packages; constants and types from package time
// are fine.
package a

import (
	"math/rand"
	"time"
)

func now() int64 {
	t := time.Now() // want `time\.Now reads the wall clock`
	return t.Unix()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func pause() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

func draw() int {
	return rand.Intn(6) // want `math/rand\.Intn uses the process-global random source`
}

// Timers read the wall clock at construction and fire on it thereafter.
func timers() {
	_ = time.After(time.Second)     // want `time\.After reads the wall clock`
	_ = time.NewTimer(time.Second)  // want `time\.NewTimer reads the wall clock`
	_ = time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
}

// Shuffle and Perm draw from the process-global source like Intn.
func reorder(xs []int) []int {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand\.Shuffle uses the process-global random source`
	return rand.Perm(len(xs))                                            // want `math/rand\.Perm uses the process-global random source`
}

// Durations and time constants do not read the clock.
func budget() time.Duration {
	return 3 * time.Second
}
