// Fixture: packages under internal/rng are the seed boundary and may read
// the wall clock. No diagnostics expected.
package rng

import "time"

func WallSeed() int64 { return time.Now().UnixNano() }
