// Fixture for the counterflow analyzer. This package is its own report sink
// (package-level Take and Delta), so its monotone counters must be read on
// some path from Take, and every Snapshot field must appear in both Take and
// Delta.
package missing

// core is the counted subsystem.
type core struct {
	hits     uint64
	misses   uint64 // want `monotone counter core\.misses is incremented at .* but never read on any path from report Take`
	retries  uint64
	ticks    uint64 //detlint:ignore counterflow fixture: tick clock, not a metric
	lowWater uint64
}

func (c *core) hit()   { c.hits++ }
func (c *core) miss()  { c.misses++ }
func (c *core) retry() { c.retries += 2 }
func (c *core) tick()  { c.ticks++ }

// drain reassigns lowWater outside a New*/Restore*/Reset* function, so it is
// not monotone and not subject to the contract.
func (c *core) drain() {
	c.lowWater++
	c.lowWater = 0
}

// Snapshot is the report type Take returns.
type Snapshot struct {
	Hits    uint64
	Retries uint64
	Stalls  uint64 // want `snapshot field Snapshot\.Stalls is captured by Take but dropped from Delta; every window will report zero`
	Ghost   uint64 // want `snapshot field Snapshot\.Ghost is populated by neither Take nor Delta and will always read zero`
	Phantom uint64 // want `snapshot field Snapshot\.Phantom is differenced in Delta but never captured by Take`
}

// Take captures the counters, one directly and one through an accessor.
func Take(c *core) Snapshot {
	return Snapshot{
		Hits:    c.hits,
		Retries: c.retryCount(),
		Stalls:  c.stallEstimate(),
	}
}

func (c *core) retryCount() uint64    { return c.retries }
func (c *core) stallEstimate() uint64 { return c.hits / 2 }

// Delta differences two snapshots; Stalls is deliberately dropped.
func Delta(a, b Snapshot) Snapshot {
	return Snapshot{
		Hits:    b.Hits - a.Hits,
		Retries: b.Retries - a.Retries,
		Phantom: b.Phantom - a.Phantom,
	}
}
