// Fixture for the hotalloc analyzer: every allocation shape reachable from a
// //detlint:hot root is flagged; amortized-scratch idioms, panic paths, and
// functions the root cannot reach are not.
package hot

import "fmt"

type event struct{ n int }

type engine struct {
	fpQ   []uint64
	buf   []event
	log   string
	cbs   []func()
}

//detlint:hot fixture root: the per-cycle step
func (e *engine) step(v uint64) {
	e.enqueue(v)
	e.grow()
	e.box(v)
	e.format()
	e.strings()
	e.closures()
	e.guarded(v)
	e.keyed()
}

// enqueue shows the allowed scratch idioms: append to a field, append through
// a pointer, and append to a local resliced from long-lived storage.
func (e *engine) enqueue(v uint64) {
	e.fpQ = append(e.fpQ, v)
	q := e.fpQ[:0]
	q = append(q, v)
	e.fpQ = q
	appendTo(&e.fpQ, v)
}

func appendTo(p *[]uint64, v uint64) {
	*p = append(*p, v)
}

// grow allocates in every shape the analyzer knows.
func (e *engine) grow() {
	s := make([]int, 4) // want `make allocates on hot path`
	p := new(event)     // want `new allocates on hot path`
	l := []int{1, 2}    // want `slice literal allocates on hot path`
	m := map[int]int{}  // want `map literal allocates on hot path`
	ev := &event{n: 1}  // want `address-taken composite literal escapes to the heap on hot path`
	var fresh []int
	fresh = append(fresh, 1) // want `append grows fresh, which is not amortized scratch, on hot path`
	_, _, _, _, _, _ = s, p, l, m, ev, fresh
}

func sink(v any) { _ = v }

// box shows interface boxing at argument positions and in conversions.
func (e *engine) box(v uint64) {
	sink(v)     // want `argument boxes uint64 into interface parameter on hot path`
	x := any(v) // want `conversion boxes uint64 into interface on hot path`
	_ = x
	var err error
	sink(err) // interface to interface: no boxing
}

// format: fmt always allocates, but panic arguments never run hot.
func (e *engine) format() {
	fmt.Println("x") // want `fmt\.Println call allocates on hot path`
	if impossible() {
		panic(fmt.Sprintf("corrupt state: %d", 7))
	}
}

func impossible() bool { return false }

// strings: concatenation, +=, and string<->[]byte conversions all copy.
func (e *engine) strings() {
	a := "x" + e.log   // want `string concatenation allocates on hot path`
	e.log += "y"       // want `string \+= allocates on hot path`
	b := []byte(e.log) // want `string/byte-slice conversion allocates on hot path`
	_, _ = a, b
}

// closures: a literal passed straight into another suite function stays on
// the stack; a stored literal must be assumed heap.
func (e *engine) closures() {
	e.each(func() {})
	e.cbs = append(e.cbs, func() {}) // want `closure may be heap-allocated on hot path`
}

func (e *engine) each(f func()) { f() }

// guarded shows the suppression path for a deliberate allocation.
func (e *engine) guarded(v uint64) {
	//detlint:ignore hotalloc fixture: amortized warmup table build
	t := make([]int, int(v))
	_ = t
}

// keyed is reachable but clean: arithmetic and element writes in place.
func (e *engine) keyed() {
	for i := range e.buf {
		e.buf[i].n++
	}
}

// cold is not reachable from the root, so its allocations are not flagged.
func cold() []int {
	return make([]int, 128)
}
