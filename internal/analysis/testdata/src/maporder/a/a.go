// Fixture for the maporder analyzer: order-sensitive effects inside
// range-over-map loops are flagged; commutative accumulation, keyed writes,
// and the sorted-keys idiom are not.
package a

import "sort"

type emitter struct{ n int }

func (e *emitter) Emit(v int) { e.n += v }

type point struct{ x int }

func (p point) Dist() int { return p.x }

// rebuild is the PR 1 mem.ReleaseProcess bug shape: the free list comes out
// in map iteration order.
func rebuild(m map[uint64]uint64) []uint64 {
	var free []uint64
	for pfn := range m {
		free = append(free, pfn) // want `append to slice free declared outside the loop`
	}
	return free
}

// sortedKeys is the standard deterministic idiom: append then sort.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fieldSorted is the field-targeted variant (cache/mem snapshot code shape).
type snap struct{ Items []int }

func (s *snap) fill(m map[int]int) {
	for k := range m {
		s.Items = append(s.Items, k)
	}
	sort.Ints(s.Items)
}

// nested sorts once after the outer loop; both ranges stay quiet.
func nested(outer map[int]map[int]int) []int {
	var all []int
	for _, inner := range outer {
		for k := range inner {
			all = append(all, k)
		}
	}
	sort.Ints(all)
	return all
}

func plainWrite(m map[string]int) string {
	last := ""
	for k := range m {
		last = k // want `write to last declared outside the loop`
	}
	return last
}

// commutative integer accumulation is order-independent.
func commutative(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
		total++
	}
	return total
}

// float accumulation is NOT commutative (rounding depends on order).
func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `write to sum declared outside the loop`
	}
	return sum
}

// keyed writes land on the same element regardless of visit order.
func keyedWrites(m map[int]int, out map[int]int, s []int) {
	for k, v := range m {
		out[k] = v
		s[k] = v
	}
}

// loop-carried index: element position depends on iteration order.
func loopCarried(m map[int]int, s []int) {
	i := 0
	for _, v := range m {
		s[i] = v // want `write to s indexed by loop-carried state`
		i++
	}
}

func fieldWrite(m map[int]int, e *emitter) {
	for k := range m {
		e.n = k // want `write to field of e declared outside the loop`
	}
}

func ptrWrite(m map[int]int, p *int) {
	for k := range m {
		*p = k // want `write through pointer p declared outside the loop`
	}
}

// method calls on outer receivers can observe order (event emission).
func emits(m map[int]int, e *emitter) {
	for _, v := range m {
		e.Emit(v) // want `call to method e.Emit on e declared outside the loop`
	}
}

// value-receiver methods with no pointer params cannot mutate the receiver.
func valueMethod(m map[int]int, p point) int {
	n := 0
	for range m {
		n += p.Dist()
	}
	return n
}

func send(m map[int]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `channel send`
	}
}

// ---- interprocedural: package-level helpers called from loop bodies ----

var eventLog []int

// record writes package-level state.
func record(v int) { eventLog = append(eventLog, v) }

// recordVia reaches the package var only through record; the write summary
// propagates across the same-package call.
func recordVia(v int) { record(v) }

// addTo writes through its first argument.
func addTo(dst *[]int, v int) { *dst = append(*dst, v) }

// pureSum mutates nothing beyond its own frame.
func pureSum(a, b int) int { return a + b }

// rebind only rebinds its parameter, which the caller never observes.
func rebind(s []int) { s = nil; sinkSlice(s) }

func sinkSlice([]int) {}

func viaPkgWriter(m map[int]int) {
	for _, v := range m {
		record(v) // want `call to record, which writes package-level state,`
	}
}

func viaTransitiveWriter(m map[int]int) {
	for _, v := range m {
		recordVia(v) // want `call to recordVia, which writes package-level state,`
	}
}

func viaPtrArg(m map[int]int) []int {
	var out []int
	for _, v := range m {
		addTo(&out, v) // want `call to addTo, which writes through its argument`
	}
	return out
}

// viaPtrArgLocal writes into loop-local storage: order cannot leak.
func viaPtrArgLocal(m map[int]int) {
	for _, v := range m {
		var tmp []int
		addTo(&tmp, v)
		sinkSlice(tmp)
	}
}

// pureCalls and rebindCall stay quiet: no summary reports a write.
func pureCalls(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += pureSum(v, 1)
	}
	return n
}

func rebindCall(m map[int]int, s []int) {
	for range m {
		rebind(s)
	}
}

// ignored exercises the //detlint:ignore suppression path.
func ignored(m map[string]int) string {
	last := ""
	for k := range m {
		//detlint:ignore maporder fixture exercising the suppression path
		last = k
	}
	return last
}
