// Fixture for nogoroutine: the package's path ends in a cycle-level core
// segment ("pipeline"), so every goroutine and channel construct is flagged.
package pipeline

func spawn(f func()) {
	go f() // want `go statement in cycle-level package pipeline`
}

func channels(n int) {
	ch := make(chan int, n) // want `channel construction in cycle-level package pipeline`
	ch <- 1                 // want `channel send in cycle-level package pipeline`
	v := <-ch               // want `channel receive in cycle-level package pipeline`
	_ = v
	for w := range ch { // want `range over channel in cycle-level package pipeline`
		_ = w
	}
}

func choose(a, b chan int) int {
	select { // want `select statement in cycle-level package pipeline`
	case v := <-a: // want `channel receive in cycle-level package pipeline`
		return v
	case v := <-b: // want `channel receive in cycle-level package pipeline`
		return v
	}
}
