// Fixture for nogoroutine: packages outside the cycle-level core may use
// goroutines and channels freely. No diagnostics expected.
package util

func fanout(n int) chan int {
	ch := make(chan int, n)
	go func() { ch <- n }()
	return ch
}
