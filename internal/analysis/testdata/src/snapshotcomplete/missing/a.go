// Fixture for snapshotcomplete: a deliberately missing field is flagged on
// its declaration line, for the method(s) that fail to reference it.
package missing

type Core struct {
	cycles uint64
	pc     uint64
	phase  uint8 // want `field Core\.phase is not referenced in Snapshot or Restore`
}

type CoreSnap struct {
	Cycles, PC uint64
}

func (c *Core) Snapshot() CoreSnap {
	return CoreSnap{Cycles: c.cycles, PC: c.pc}
}

func (c *Core) Restore(s CoreSnap) {
	c.cycles = s.Cycles
	c.pc = s.PC
}

// Half persists b but forgets to put it back.
type Half struct {
	a uint64
	b uint64 // want `field Half\.b is not referenced in Restore`
}

type HalfSnap struct {
	A, B uint64
}

func (h *Half) Snapshot() HalfSnap { return HalfSnap{A: h.a, B: h.b} }

func (h *Half) Restore(s HalfSnap) { h.a = s.A }

// Machine uses the Restore-prefixed variant (kernel.RestoreState shape).
type Machine struct {
	mode int
	seq  uint64 // want `field Machine\.seq is not referenced in RestoreState`
}

type MachineSnap struct {
	Mode int
	Seq  uint64
}

func (m *Machine) Snapshot() MachineSnap {
	return MachineSnap{Mode: m.mode, Seq: m.seq}
}

func (m *Machine) RestoreState(s MachineSnap) { m.mode = s.Mode }
