// Fixture for snapshotcomplete exemptions: field-level and type-level
// //detlint:ignore directives suppress coverage requirements.
package exempt

type Tagged struct {
	data []int
	name string //detlint:ignore snapshotcomplete label fixed at construction
}

type TaggedSnap struct {
	Data []int
}

func (t *Tagged) Snapshot() TaggedSnap {
	return TaggedSnap{Data: append([]int(nil), t.data...)}
}

func (t *Tagged) Restore(s TaggedSnap) {
	t.data = append(t.data[:0], s.Data...)
}

//detlint:ignore snapshotcomplete scratch type whose state is rebuilt each run
type Whole struct {
	x int
}

func (w *Whole) Snapshot() int { return 0 }

func (w *Whole) Restore(int) {}
