// Fixture for snapshotcomplete: fully-covered types produce no diagnostics,
// including coverage through same-type helper methods.
package complete

type Counter struct {
	ticks uint64
	hits  uint64
}

type CounterSnap struct {
	Ticks, Hits uint64
}

func (c *Counter) Snapshot() CounterSnap {
	return CounterSnap{Ticks: c.ticks, Hits: c.hits}
}

func (c *Counter) Restore(s CounterSnap) {
	c.ticks = s.Ticks
	c.hits = s.Hits
}

// Split covers one field through a helper method on the same type.
type Split struct {
	x, y int
}

func (s *Split) Snapshot() [2]int { return [2]int{s.x, s.snapY()} }

func (s *Split) snapY() int { return s.y }

func (s *Split) Restore(v [2]int) {
	s.x = v[0]
	s.restY(v[1])
}

func (s *Split) restY(v int) { s.y = v }

// NoPair has no Restore method: not part of the checkpoint contract.
type NoPair struct {
	scratch int
}

func (n *NoPair) Snapshot() int { return 0 }

// Hist mirrors the report latency histogram: a fixed bucket array plus
// scalar tallies, all round-tripped by value. Array-typed fields must count
// as covered when copied whole.
type Hist struct {
	buckets [8]uint64
	count   uint64
	sum     uint64
}

type HistSnap struct {
	Buckets [8]uint64
	Count   uint64
	Sum     uint64
}

func (h *Hist) Snapshot() HistSnap {
	return HistSnap{Buckets: h.buckets, Count: h.count, Sum: h.sum}
}

func (h *Hist) Restore(s HistSnap) {
	h.buckets = s.Buckets
	h.count = s.Count
	h.sum = s.Sum
}
