// Fixture for snapshotcomplete: passing the whole receiver to an encoder
// makes field-level accounting impossible, so the type counts as covered.
package gob

import (
	"bytes"
	"encoding/gob"
)

type Blob struct {
	a, b, c int
}

func (t *Blob) Snapshot() []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(t); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func (t *Blob) Restore(data []byte) {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(t); err != nil {
		panic(err)
	}
}
