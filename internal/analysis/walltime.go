package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallTime forbids wall-clock and globally-seeded randomness in simulation
// code. Simulation time is the cycle counter and every random stream flows
// from the seeded generators in repro/internal/rng; a single time.Now or
// global math/rand call makes two same-seed runs diverge.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc: `forbid wall-clock time and global math/rand outside internal/rng and cmd/

time.Now, time.Since, time.Tick and friends read the host clock; package-level
math/rand functions draw from a process-global, unseeded source. Either one
breaks bit-identical replay. Simulation code must use the cycle counter for
time and seeded repro/internal/rng streams for randomness. The rng package
itself and the cmd/ entry points (flag parsing, wall-clock experiment
timeouts) are exempt by path.`,
	Run: runWallTime,
}

// wallClockFuncs are the time package functions that read the host clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true, "After": true,
	"AfterFunc": true, "NewTicker": true, "NewTimer": true, "Sleep": true,
}

// walltimeExempt reports whether a package path may touch the wall clock:
// the seeded rng package (it documents the boundary) and command entry
// points, where wall-clock supervision budgets are legitimate.
func walltimeExempt(path string) bool {
	return strings.Contains(path, "internal/rng") ||
		strings.HasPrefix(path, "cmd/") ||
		strings.Contains(path, "/cmd/")
}

func runWallTime(pass *Pass) error {
	if walltimeExempt(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		// handled marks selector Sel idents so the dot-import fallback below
		// does not re-report the qualified form at a second position.
		handled := map[*ast.Ident]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				handled[n.Sel] = true
				pkgIdent, ok := unparen(n.X).(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
				if !ok {
					return true
				}
				switch path := pn.Imported().Path(); path {
				case "time":
					if wallClockFuncs[n.Sel.Name] {
						pass.Reportf(n.Pos(), "time.%s reads the wall clock; simulation time is the cycle counter (deterministic replay contract, see ANALYSIS.md)", n.Sel.Name)
					}
				case "math/rand", "math/rand/v2":
					pass.Reportf(n.Pos(), "%s.%s uses the process-global random source; use a seeded repro/internal/rng stream instead", path, n.Sel.Name)
				}
			case *ast.Ident:
				// Dot-imported references (`import . "time"; Now()`) never go
				// through a SelectorExpr; resolve the object directly.
				if handled[n] {
					return true
				}
				obj, ok := pass.TypesInfo.Uses[n].(*types.Func)
				if !ok || obj.Pkg() == nil {
					return true
				}
				switch path := obj.Pkg().Path(); path {
				case "time":
					if wallClockFuncs[obj.Name()] {
						pass.Reportf(n.Pos(), "time.%s (dot import) reads the wall clock; simulation time is the cycle counter (deterministic replay contract, see ANALYSIS.md)", obj.Name())
					}
				case "math/rand", "math/rand/v2":
					pass.Reportf(n.Pos(), "%s.%s (dot import) uses the process-global random source; use a seeded repro/internal/rng stream instead", path, obj.Name())
				}
			}
			return true
		})
	}
	return nil
}
