package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallTime forbids wall-clock and globally-seeded randomness in simulation
// code. Simulation time is the cycle counter and every random stream flows
// from the seeded generators in repro/internal/rng; a single time.Now or
// global math/rand call makes two same-seed runs diverge.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc: `forbid wall-clock time and global math/rand outside internal/rng and cmd/

time.Now, time.Since, time.Tick and friends read the host clock; package-level
math/rand functions draw from a process-global, unseeded source. Either one
breaks bit-identical replay. Simulation code must use the cycle counter for
time and seeded repro/internal/rng streams for randomness. The rng package
itself and the cmd/ entry points (flag parsing, wall-clock experiment
timeouts) are exempt by path.`,
	Run: runWallTime,
}

// wallClockFuncs are the time package functions that read the host clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true, "After": true,
	"AfterFunc": true, "NewTicker": true, "NewTimer": true, "Sleep": true,
}

// walltimeExempt reports whether a package path may touch the wall clock:
// the seeded rng package (it documents the boundary) and command entry
// points, where wall-clock supervision budgets are legitimate.
func walltimeExempt(path string) bool {
	return strings.Contains(path, "internal/rng") ||
		strings.HasPrefix(path, "cmd/") ||
		strings.Contains(path, "/cmd/")
}

func runWallTime(pass *Pass) error {
	if walltimeExempt(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
			if !ok {
				return true
			}
			switch path := pn.Imported().Path(); path {
			case "time":
				if wallClockFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "time.%s reads the wall clock; simulation time is the cycle counter (deterministic replay contract, see ANALYSIS.md)", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(sel.Pos(), "%s.%s uses the process-global random source; use a seeded repro/internal/rng stream instead", path, sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
