package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapOrder, "maporder/a")
}

func TestWallTime(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.WallTime,
		"walltime/a",            // simulation package: flagged
		"walltime/internal/rng", // seed boundary: exempt
		"walltime/cmd/tool",     // entry point: exempt
	)
}

func TestSnapshotComplete(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.SnapshotComplete,
		"snapshotcomplete/complete", // full coverage incl. helper methods
		"snapshotcomplete/missing",  // deliberately missing fields
		"snapshotcomplete/exempt",   // field- and type-level directives
		"snapshotcomplete/gob",      // whole-receiver encoder escape
	)
}

func TestNoGoroutine(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NoGoroutine,
		"nogoroutine/pipeline", // core package: flagged
		"nogoroutine/util",     // non-core package: allowed
	)
}

// TestRepoIsClean runs the full analyzer suite over this repository's
// internal/ tree, the same invocation as `make lint`. The simulator must stay
// diagnostic-free: a finding here means someone reintroduced the
// mem.ReleaseProcess bug class, dropped a Snapshot field, or added wall-clock
// or goroutine machinery to the core.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export over the whole module")
	}
	pkgs, err := analysis.Load("../..", []string{"./internal/..."})
	if err != nil {
		t.Fatalf("loading repository packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	diags := analysis.Run(pkgs, analysis.Analyzers())
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
