package analysis_test

import (
	"os/exec"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapOrder, "maporder/a")
}

func TestWallTime(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.WallTime,
		"walltime/a",            // simulation package: flagged
		"walltime/dot",          // dot imports: flagged via the Ident fallback
		"walltime/internal/rng", // seed boundary: exempt
		"walltime/cmd/tool",     // entry point: exempt
	)
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HotAlloc, "hotalloc/hot")
}

func TestCounterFlow(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.CounterFlow, "counterflow/missing")
}

func TestSeedFlow(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.SeedFlow, "seedflow/sim")
}

func TestSnapshotComplete(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.SnapshotComplete,
		"snapshotcomplete/complete", // full coverage incl. helper methods
		"snapshotcomplete/missing",  // deliberately missing fields
		"snapshotcomplete/exempt",   // field- and type-level directives
		"snapshotcomplete/gob",      // whole-receiver encoder escape
	)
}

func TestNoGoroutine(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NoGoroutine,
		"nogoroutine/pipeline", // core package: flagged
		"nogoroutine/util",     // non-core package: allowed
	)
}

// TestRepoIsClean runs the full analyzer suite over this repository's
// internal/ tree, the same invocation as `make lint`. The simulator must stay
// diagnostic-free: a finding here means someone reintroduced the
// mem.ReleaseProcess bug class, dropped a Snapshot field, or added wall-clock
// or goroutine machinery to the core.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export over the whole module")
	}
	pkgs, err := analysis.Load("../..", []string{"./internal/...", "./cmd/..."})
	if err != nil {
		t.Fatalf("loading repository packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	diags := analysis.Run(pkgs, analysis.Analyzers())
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestHotAllocAgreesWithZeroAllocGate ties the static allocation gate to the
// dynamic one: hotalloc over the repository must be clean exactly when the
// runtime benchmark gate (pipeline's TestEngineStepZeroAlloc) passes. If the
// two ever disagree, either the analyzer has a hole (static clean, dynamic
// fails) or it over-approximates an idiom the hot path legitimately uses
// (static findings, dynamic passes).
func TestHotAllocAgreesWithZeroAllocGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export and a child go test")
	}
	pkgs, err := analysis.Load("../..", []string{"./internal/..."})
	if err != nil {
		t.Fatalf("loading repository packages: %v", err)
	}
	diags := analysis.Run(pkgs, []*analysis.Analyzer{analysis.HotAlloc})
	staticClean := len(diags) == 0

	cmd := exec.Command("go", "test", "-count=1", "-run", "TestEngineStepZeroAlloc", "./internal/pipeline")
	cmd.Dir = "../.."
	out, runErr := cmd.CombinedOutput()
	dynamicClean := runErr == nil

	if staticClean != dynamicClean {
		for _, d := range diags {
			t.Logf("hotalloc: %s", d)
		}
		t.Fatalf("static and dynamic gates disagree: hotalloc clean=%v, TestEngineStepZeroAlloc pass=%v\n%s",
			staticClean, dynamicClean, out)
	}
}
