package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SeedFlow enforces the seed-partition discipline from PR 3: every random
// stream the simulation draws from must derive from the experiment seed
// through SeedPartitions, with a subsystem-unique derivation, and must never
// be re-seeded after construction. Two subsystems silently sharing a stream
// correlate "independent" randomness; a literal seed decouples a subsystem
// from the -seed flag; both corrupt experiments without failing any test.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc: `require every rng generator to derive uniquely from the seed partitions

Checked at every call to the internal/rng constructor New: the seed argument
must not be a compile-time constant (a literal seed ignores -seed), must
mention a seed-derived identifier (cfg.Seed, subseed, ...), and must not
repeat another call site's derivation fingerprint — the multiset of constants
mixed into the seed — which is how two subsystems end up on one stream.
Generators must not be re-seeded after construction: SetState calls and
assignments to stored *rng.Rand variables are allowed only inside New*/
Restore* functions (construction and checkpoint restore). internal/rng itself
is exempt. Suppress with //detlint:ignore seedflow <reason>.`,
	RunSuite: runSeedFlow,
}

const rngPkgSuffix = "internal/rng"

// seedSite is one rng.New call site that passed the local rules and takes
// part in the cross-site aliasing check.
type seedSite struct {
	pkg         *Package
	pos         token.Pos
	fingerprint string
}

func runSeedFlow(pass *SuitePass) error {
	var sites []seedSite
	for _, pkg := range pass.Suite.Pkgs {
		if strings.HasSuffix(pkg.Types.Path(), rngPkgSuffix) {
			continue
		}
		for _, file := range pkg.Files {
			funcName := enclosingFuncNames(file)
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if fn := calleeFunc(pkg, n); fn != nil {
						switch {
						case fn.Name() == "New" && rngPackage(fn.Pkg()):
							if site, ok := checkSeedArg(pass, pkg, n); ok {
								sites = append(sites, site)
							}
						case fn.Name() == "SetState" && rngPackage(fn.Pkg()):
							if name := funcName(n.Pos()); !seedExemptFunc(name) {
								pass.Reportf(pkg.Fset, n.Pos(), "SetState re-seeds a generator outside a New*/Restore* function (%s); streams are fixed at construction", name)
							}
						}
					}
				case *ast.AssignStmt:
					if n.Tok != token.ASSIGN {
						return true
					}
					for _, lhs := range n.Lhs {
						sel, ok := unparen(lhs).(*ast.SelectorExpr)
						if !ok || !rngRandType(pkg.Info.TypeOf(sel)) {
							continue
						}
						if s := pkg.Info.Selections[sel]; s == nil || s.Kind() != types.FieldVal {
							continue
						}
						if name := funcName(n.Pos()); !seedExemptFunc(name) {
							pass.Reportf(pkg.Fset, lhs.Pos(), "stored generator %s is replaced outside a New*/Restore* function (%s); streams are fixed at construction", exprText(sel), name)
						}
					}
				}
				return true
			})
		}
	}

	// Aliasing: two sites with the same derivation fingerprint draw the same
	// stream. Sites are compared in deterministic position order.
	sort.Slice(sites, func(i, j int) bool {
		a := sites[i].pkg.Fset.Position(sites[i].pos)
		b := sites[j].pkg.Fset.Position(sites[j].pos)
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	first := map[string]seedSite{}
	for _, s := range sites {
		prev, seen := first[s.fingerprint]
		if !seen {
			first[s.fingerprint] = s
			continue
		}
		pass.Reportf(s.pkg.Fset, s.pos,
			"seed derivation {%s} duplicates the stream created at %s; two subsystems would share one random stream — mix in a distinct constant",
			s.fingerprint, prev.pkg.Fset.Position(prev.pos))
	}
	return nil
}

// checkSeedArg applies the per-site rules to one rng.New call; ok means the
// site is well-formed and should join the aliasing comparison.
func checkSeedArg(pass *SuitePass, pkg *Package, call *ast.CallExpr) (seedSite, bool) {
	if len(call.Args) == 0 {
		return seedSite{}, false
	}
	arg := call.Args[0]
	if tv, ok := pkg.Info.Types[arg]; ok && tv.Value != nil {
		pass.Reportf(pkg.Fset, arg.Pos(), "generator is seeded with the constant %s; derive the seed from a SeedPartitions stream so -seed reaches this subsystem", tv.Value.String())
		return seedSite{}, false
	}
	if !mentionsSeedIdent(arg) {
		pass.Reportf(pkg.Fset, arg.Pos(), "seed expression %s does not derive from a SeedPartitions stream (no seed-carrying identifier)", exprText(arg))
		return seedSite{}, false
	}
	return seedSite{pkg: pkg, pos: call.Pos(), fingerprint: constFingerprint(pkg, arg)}, true
}

// mentionsSeedIdent reports whether some identifier in e carries seed-derived
// state (its name contains "seed": cfg.Seed, subseed, seedFor, ...).
func mentionsSeedIdent(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && strings.Contains(strings.ToLower(id.Name), "seed") {
			found = true
		}
		return !found
	})
	return found
}

// constFingerprint renders the multiset of maximal constant subexpressions
// mixed into a seed derivation, e.g. "0x5bec, 32". Two call sites with equal
// fingerprints derive the same stream from the same partitions.
func constFingerprint(pkg *Package, e ast.Expr) string {
	var consts []string
	var walk func(x ast.Expr)
	walk = func(x ast.Expr) {
		x = unparen(x)
		if tv, ok := pkg.Info.Types[x]; ok && tv.Value != nil {
			consts = append(consts, tv.Value.String())
			return
		}
		switch x := x.(type) {
		case *ast.BinaryExpr:
			walk(x.X)
			walk(x.Y)
		case *ast.UnaryExpr:
			walk(x.X)
		case *ast.CallExpr:
			for _, a := range x.Args {
				walk(a)
			}
		case *ast.IndexExpr:
			walk(x.Index)
		}
	}
	walk(e)
	sort.Strings(consts)
	return strings.Join(consts, ", ")
}

// seedExemptFunc reports whether a function may (re)initialize generator
// state: constructors and checkpoint restores.
func seedExemptFunc(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "Restore")
}

// rngPackage reports whether p is the internal/rng package.
func rngPackage(p *types.Package) bool {
	return p != nil && strings.HasSuffix(p.Path(), rngPkgSuffix)
}

// rngRandType reports whether t is (a pointer to) a named type declared in
// internal/rng.
func rngRandType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && rngPackage(n.Obj().Pkg())
}

// calleeFunc resolves the static callee of a call, or nil.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// enclosingFuncNames returns a lookup from position to the name of the
// enclosing function declaration ("<file scope>" outside any).
func enclosingFuncNames(file *ast.File) func(token.Pos) string {
	type span struct {
		lo, hi token.Pos
		name   string
	}
	var spans []span
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			spans = append(spans, span{fd.Pos(), fd.End(), fd.Name.Name})
		}
	}
	return func(p token.Pos) string {
		for _, s := range spans {
			if s.lo <= p && p <= s.hi {
				return s.name
			}
		}
		return "<file scope>"
	}
}
