package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc statically pins the zero-allocation hot path: no function
// reachable from a //detlint:hot root may contain an allocating construct.
// This turns PR 4's dynamic gate (TestEngineStepZeroAlloc, one benchmark over
// one configuration) into a compile-time property of every configuration.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: `flag allocation shapes reachable from //detlint:hot roots

A function marked //detlint:hot <reason> is a hot-path root (the per-cycle
pipeline step, cache/TLB/predictor probes). Every function reachable from a
root through static calls is checked for: make/new, slice and map composite
literals, address-taken composite literals, growing append to anything that
is not amortized scratch (a struct field, pointer-deref storage, or a local
resliced from such storage — the e.fpQ / s.entries[:0] idioms), closures
except those passed directly to another suite function, string concatenation
and string<->[]byte conversions, fmt calls, and interface boxing at call
argument positions. Calls through interface values are a boundary, not an
edge — the pipeline Feed interface is exactly the engine/kernel line the
dynamic gate measures — but boxing into such a call is still flagged at the
call site. Arguments of panic(...) are exempt (crash paths never execute on
the measured path). Suppress a deliberate, amortized allocation with
//detlint:ignore hotalloc <reason>.`,
	RunSuite: runHotAlloc,
}

func runHotAlloc(pass *SuitePass) error {
	g := pass.Suite.Graph()
	parent := g.ReachableFrom(g.HotRoots())
	for _, key := range g.Order {
		if _, ok := parent[key]; !ok {
			continue
		}
		node := g.Funcs[key]
		if node.Decl.Body == nil {
			continue
		}
		checkHotFunc(pass, g, parent, node)
	}
	return nil
}

// checkHotFunc reports every allocation shape in one hot-reachable function.
func checkHotFunc(pass *SuitePass, g *CallGraph, parent map[string]string, node *FuncNode) {
	pkg := node.Pkg
	chain := g.CallChain(parent, node.Key)
	report := func(pos token.Pos, format string, args ...any) {
		args = append(args, chain)
		pass.Reportf(pkg.Fset, pos, format+" on hot path (%s); restructure to engine-owned scratch, or annotate //detlint:ignore hotalloc <reason>", args...)
	}
	scratch := scratchLocals(pkg, node.Decl)

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinSuite(pkg, n.Fun, "panic") {
				return false // crash path: formatting there never runs hot
			}
			checkHotCall(pass, pkg, g, n, report)
		case *ast.CompositeLit:
			t := pkg.Info.TypeOf(n)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "address-taken composite literal escapes to the heap")
				}
			}
		case *ast.FuncLit:
			// A literal passed directly to another function in the suite does
			// not escape there (the suite's own hot functions never store
			// their func parameters); anything else must be assumed heap.
			if !funcLitStaysLocal(pkg, g, n) {
				report(n.Pos(), "closure may be heap-allocated")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pkg.Info.TypeOf(n)) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			checkHotAssign(pkg, n, scratch, report)
		}
		return true
	}
	ast.Inspect(node.Decl.Body, walk)
}

// checkHotCall flags allocating calls and interface boxing at argument
// positions.
func checkHotCall(pass *SuitePass, pkg *Package, g *CallGraph, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	fun := unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isB := pkg.Info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			}
			return
		}
	}

	// Conversions: string<->[]byte/[]rune copy their operand.
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, pkg.Info.TypeOf(call.Args[0])
		if stringByteConversion(to, from) {
			report(call.Pos(), "string/byte-slice conversion allocates")
		}
		if isInterface(to) && from != nil && !isInterface(from) && !isUntypedNil(from) {
			report(call.Pos(), "conversion boxes %s into interface", from.String())
		}
		return
	}

	// fmt calls allocate for formatting regardless of arguments.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if x, ok := unparen(sel.X).(*ast.Ident); ok {
			if pn, ok := pkg.Info.Uses[x].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				report(call.Pos(), "fmt.%s call allocates", sel.Sel.Name)
				return
			}
		}
	}

	// Interface boxing at the argument positions of ordinary calls.
	sig, ok := pkg.Info.TypeOf(fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		p := paramTypeAt(sig, i)
		if p == nil || !isInterface(p) {
			continue
		}
		at := pkg.Info.TypeOf(arg)
		if at == nil || isInterface(at) || isUntypedNil(at) {
			continue
		}
		report(arg.Pos(), "argument boxes %s into interface parameter", at.String())
	}
}

// checkHotAssign flags growing appends to targets that are not amortized
// scratch, and string +=.
func checkHotAssign(pkg *Package, as *ast.AssignStmt, scratch map[types.Object]bool, report func(token.Pos, string, ...any)) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && isStringType(pkg.Info.TypeOf(as.Lhs[0])) {
		report(as.Pos(), "string += allocates")
		return
	}
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinSuite(pkg, call.Fun, "append") {
			continue
		}
		if appendTargetIsScratch(pkg, lhs, scratch) {
			continue
		}
		report(lhs.Pos(), "append grows %s, which is not amortized scratch,", exprText(lhs))
	}
}

// scratchLocals returns the local variables of fd that alias long-lived
// storage: anywhere in the body they are assigned a reslice expression or an
// expression rooted in a selector/index/deref chain (struct fields, pointer
// params). Appending to such a local is amortized growth of caller-owned
// backing storage — the mshr purge / StoreBuffer.Push compaction idiom.
func scratchLocals(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Body == nil {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := objOf(pkg, id)
			if obj == nil || !nonLocalStorageExpr(unparen(as.Rhs[i])) {
				continue
			}
			out[obj] = true
		}
		return true
	})
	return out
}

// nonLocalStorageExpr reports whether e denotes storage owned by something
// longer-lived than the current frame: any reslice, or a selector / index /
// dereference chain.
func nonLocalStorageExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SliceExpr:
		return true
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return nonLocalStorageExpr(unparen(e.X))
	case *ast.StarExpr:
		return true
	}
	return false
}

// appendTargetIsScratch reports whether the assignment target of an append is
// amortized scratch: non-local storage itself, or a local known to alias it.
func appendTargetIsScratch(pkg *Package, lhs ast.Expr, scratch map[types.Object]bool) bool {
	lhs = unparen(lhs)
	if nonLocalStorageExpr(lhs) {
		return true
	}
	if id, ok := lhs.(*ast.Ident); ok {
		return scratch[objOf(pkg, id)]
	}
	return false
}

// funcLitStaysLocal reports whether lit is the direct argument of a call to a
// function declared in the suite (which our hot functions never store).
func funcLitStaysLocal(pkg *Package, g *CallGraph, lit *ast.FuncLit) bool {
	for _, file := range pkg.Files {
		if file.Pos() > lit.Pos() || lit.Pos() > file.End() {
			continue
		}
		parents := parentMap(file)
		p, ok := parents[lit].(*ast.CallExpr)
		if !ok {
			return false
		}
		for _, arg := range p.Args {
			if unparen(arg) == lit {
				for _, k := range calleeKeys(pkg, p) {
					if g.Funcs[k] != nil {
						return true
					}
				}
			}
		}
		return false
	}
	return false
}

// calleeKeys resolves the static callee keys of one call expression.
func calleeKeys(pkg *Package, call *ast.CallExpr) []string {
	var out []string
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			out = append(out, funcKey(fn))
		}
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[fun]; sel != nil {
			if sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					out = append(out, funcKey(fn))
				}
			}
		} else if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			out = append(out, funcKey(fn))
		}
	}
	return out
}

// ------------------------------------------------------------ type helpers

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// stringByteConversion reports whether a conversion between to and from
// copies its operand (string <-> []byte / []rune).
func stringByteConversion(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// paramTypeAt returns the type of parameter i of sig, expanding the variadic
// tail, or nil when i is out of range.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		s, ok := sig.Params().At(n - 1).Type().(*types.Slice)
		if !ok {
			return nil // append-style: already a slice
		}
		return s.Elem()
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// isBuiltinSuite is isBuiltin for suite passes (no *Pass at hand).
func isBuiltinSuite(pkg *Package, fun ast.Expr, name string) bool {
	id, ok := unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

// objOf resolves an identifier against a package's uses/defs.
func objOf(pkg *Package, id *ast.Ident) types.Object {
	if o := pkg.Info.Uses[id]; o != nil {
		return o
	}
	return pkg.Info.Defs[id]
}

// exprText renders a short source form without a *Pass.
func exprText(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprText(e.X) + "[…]"
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	default:
		return "expression"
	}
}
