// Offline package loading for the detlint analyzers.
//
// The usual way to feed go/analysis tools is golang.org/x/tools/go/packages;
// this environment builds with the standard library only, so we do the same
// job directly: one `go list -deps -export -json` invocation enumerates the
// target packages and compiles export data for every dependency into the
// build cache, then each target is parsed from source and type-checked with
// the gc export-data importer resolving its imports. Everything works without
// network access.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the package import path ("repro/internal/mem").
	Path string
	// Fset positions every file of every package of one Load call.
	Fset *token.FileSet
	// Files are the parsed non-test source files, with comments.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the JSON
// package stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load type-checks the packages matched by patterns, resolved relative to
// moduleDir (the directory holding go.mod). Only non-test files are analyzed:
// the determinism contract binds the simulator, and the tests that verify the
// contract legitimately use wall-clock timeouts and unsorted scratch state.
func Load(moduleDir string, patterns []string) ([]*Package, error) {
	listed, err := goList(moduleDir, append([]string{"-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Error"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	return checkAll(fset, targets, exports)
}

// checkAll parses and type-checks each target package against the export map.
func checkAll(fset *token.FileSet, targets []*listedPackage, exports map[string]string) ([]*Package, error) {
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	var out []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		pkg, info, err := check(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		out = append(out, &Package{Path: t.ImportPath, Fset: fset, Files: files, Types: pkg, Info: info})
	}
	return out, nil
}

// CheckFixture type-checks one already-parsed fixture package whose imports
// (standard library only) are resolved through `go list -export` run in the
// current directory. It exists for the analysistest harness.
func CheckFixture(fset *token.FileSet, path string, files []*ast.File, imports []string) (*Package, error) {
	exports := map[string]string{}
	if len(imports) > 0 {
		listed, err := goList(".", append([]string{"-deps", "-export", "-json=ImportPath,Export,Error"}, imports...)...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (fixtures may import the standard library only)", path)
		}
		return os.Open(f)
	})
	pkg, info, err := check(fset, path, files, imp)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// check type-checks one package's parsed files.
func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
