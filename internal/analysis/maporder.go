package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` statements over maps whose bodies perform
// order-sensitive effects — the exact class of the PR 1 mem.ReleaseProcess
// bug, where the page-frame free list was rebuilt in Go's randomized map
// iteration order and every later allocation diverged between runs.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: `flag order-dependent effects inside range-over-map loops

Go randomizes map iteration order, so a map range whose body mutates state
outside the loop replays differently run to run. The analyzer flags, inside
any range over a map: appends to slices declared outside the loop (unless the
slice is sorted immediately after the loop in the same block — the standard
sorted-keys idiom), plain writes to outer variables, fields, or loop-carried
slice indices, method calls on outer receivers (event emission), and channel
sends. Commutative accumulation (+=, -=, *=, |=, &=, ^= and ++/-- on integer
types) is order-independent and allowed. Rewrite flagged loops to iterate
sorted keys, or annotate provably commutative ones with
//detlint:ignore maporder <reason>.`,
	Run: runMapOrder,
}

// effectKind classifies one order-sensitive operation in a loop body.
type effectKind int

const (
	effectWrite effectKind = iota
	effectAppend
	effectCall
	effectSend
)

type effect struct {
	kind effectKind
	pos  token.Pos
	msg  string
	obj  types.Object // for effectAppend: the slice being grown
}

func runMapOrder(pass *Pass) error {
	sums := writeSummaries(pass)
	for _, file := range pass.Files {
		blocks := stmtBlocks(file)
		parents := parentMap(file)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(pass, rs.X) {
				return true
			}
			effects := collectEffects(pass, rs, sums)
			effects = suppressSortedAppends(pass, rs, effects, blocks, parents)
			for _, e := range effects {
				pass.Reportf(e.pos, "%s inside range over map %s is iteration-order dependent; iterate sorted keys, or annotate //detlint:ignore maporder <reason> if provably commutative", e.msg, exprString(pass, rs.X))
			}
			return true
		})
	}
	return nil
}

// isMapType reports whether e has map type.
func isMapType(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// stmtBlocks maps every statement to its enclosing statement list and index,
// so the sorted-keys idiom check can look at what follows a loop.
type stmtListPos struct {
	list []ast.Stmt
	idx  int
}

func stmtBlocks(file *ast.File) map[ast.Stmt]stmtListPos {
	m := map[ast.Stmt]stmtListPos{}
	record := func(list []ast.Stmt) {
		for i, s := range list {
			m[s] = stmtListPos{list: list, idx: i}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			record(n.List)
		case *ast.CaseClause:
			record(n.Body)
		case *ast.CommClause:
			record(n.Body)
		}
		return true
	})
	return m
}

// collectEffects walks the body of a map range and returns every
// order-sensitive operation.
func collectEffects(pass *Pass, rs *ast.RangeStmt, sums map[*types.Func]*writeSummary) []effect {
	local := localObjects(pass, rs)
	isLocal := func(obj types.Object) bool {
		if obj == nil {
			return true // unresolved: stay quiet
		}
		return local[obj]
	}
	var effects []effect
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if e, bad := classifyWrite(pass, lhs, rhs, n.Tok, isLocal); bad {
					effects = append(effects, e)
				}
			}
		case *ast.IncDecStmt:
			// x++ is x += 1: commutative on integers.
			tok := token.ADD_ASSIGN
			if n.Tok == token.DEC {
				tok = token.SUB_ASSIGN
			}
			if e, bad := classifyWrite(pass, n.X, nil, tok, isLocal); bad {
				effects = append(effects, e)
			}
		case *ast.CallExpr:
			if e, bad := classifyCall(pass, n, isLocal, sums); bad {
				effects = append(effects, e)
			}
		case *ast.SendStmt:
			effects = append(effects, effect{kind: effectSend, pos: n.Pos(), msg: "channel send"})
		}
		return true
	})
	return effects
}

// localObjects returns every object declared within the range statement
// (the key/value variables and anything declared in the body).
func localObjects(pass *Pass, rs *ast.RangeStmt) map[types.Object]bool {
	local := map[types.Object]bool{}
	ast.Inspect(rs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})
	return local
}

// classifyWrite decides whether an assignment target is order-sensitive.
func classifyWrite(pass *Pass, lhs, rhs ast.Expr, tok token.Token, isLocal func(types.Object) bool) (effect, bool) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return effect{}, false
	}
	if commutativeAssign(pass, lhs, tok) {
		return effect{}, false
	}
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[lhs]
		if isLocal(obj) {
			return effect{}, false
		}
		// s = append(s, ...) grows an outer slice: the canonical bug shape,
		// but also the first half of the sorted-keys idiom — kept separate so
		// the caller can recognize a sort following the loop.
		if call, ok := unparen(rhs).(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "append") {
			return effect{kind: effectAppend, pos: lhs.Pos(), msg: "append to slice " + lhs.Name + " declared outside the loop", obj: obj}, true
		}
		return effect{kind: effectWrite, pos: lhs.Pos(), msg: "write to " + lhs.Name + " declared outside the loop"}, true
	case *ast.IndexExpr:
		baseT := pass.TypesInfo.TypeOf(lhs.X)
		if baseT != nil {
			if _, ok := baseT.Underlying().(*types.Map); ok {
				return effect{}, false // keyed map write: order-independent per key
			}
		}
		if exprOnlyUses(pass, lhs.Index, isLocal) {
			return effect{}, false // s[k] keyed by the loop variable
		}
		return effect{kind: effectWrite, pos: lhs.Pos(), msg: "write to " + exprString(pass, lhs.X) + " indexed by loop-carried state"}, true
	case *ast.SelectorExpr:
		root := rootIdent(lhs)
		if root == nil || isLocal(objectOf(pass, root)) {
			return effect{}, false
		}
		// s.Field = append(s.Field, …): field-targeted half of the
		// sorted-keys idiom, keyed by the field object so a following
		// sort.Slice(s.Field, …) can clear it.
		if call, ok := unparen(rhs).(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "append") {
			if fieldObj := pass.TypesInfo.Uses[lhs.Sel]; fieldObj != nil {
				return effect{kind: effectAppend, pos: lhs.Pos(), msg: "append to " + exprString(pass, lhs) + " declared outside the loop", obj: fieldObj}, true
			}
		}
		return effect{kind: effectWrite, pos: lhs.Pos(), msg: "write to field of " + root.Name + " declared outside the loop"}, true
	case *ast.StarExpr:
		if root := rootIdent(lhs.X); root != nil && !isLocal(objectOf(pass, root)) {
			return effect{kind: effectWrite, pos: lhs.Pos(), msg: "write through pointer " + root.Name + " declared outside the loop"}, true
		}
		return effect{}, false
	}
	return effect{}, false
}

// commutativeAssign reports whether tok applied to lhs's type is
// order-independent: +=, -=, *=, |=, &=, ^=, &^= over integers commute (all
// are commutative and associative modulo 2^n), while the same operators on
// floats (non-associative rounding) or strings (concatenation) do not.
func commutativeAssign(pass *Pass, lhs ast.Expr, tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
	default:
		return false
	}
	t := pass.TypesInfo.TypeOf(lhs)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// classifyCall flags calls that can observe iteration order: method calls on
// receivers declared outside the loop (event emission, collection mutation),
// and calls to same-package package-level functions whose write summary says
// they mutate package-level state or write through a pointer argument rooted
// outside the loop. Cross-package function calls (sort.Slice, slices.Sort)
// are effect-free by assumption — they are how the sorted-keys idiom is
// spelled.
func classifyCall(pass *Pass, call *ast.CallExpr, isLocal func(types.Object) bool, sums map[*types.Func]*writeSummary) (effect, bool) {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok {
			return effect{}, false
		}
		sum := sums[fn]
		if sum == nil {
			return effect{}, false
		}
		if sum.writesPkgVars {
			return effect{kind: effectCall, pos: call.Pos(), msg: "call to " + fn.Name() + ", which writes package-level state,"}, true
		}
		for i, arg := range call.Args {
			if !sum.writesParam[i] {
				continue
			}
			root := rootIdent(arg)
			if root == nil || isLocal(objectOf(pass, root)) {
				continue
			}
			return effect{kind: effectCall, pos: call.Pos(), msg: "call to " + fn.Name() + ", which writes through its argument " + exprString(pass, arg) + ","}, true
		}
		return effect{}, false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return effect{}, false
	}
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return effect{}, false // package-qualified function, field closure, …
	}
	root := rootIdent(sel.X)
	if root == nil || isLocal(objectOf(pass, root)) {
		return effect{}, false
	}
	if isOrderFreeMethod(s) {
		return effect{}, false
	}
	return effect{kind: effectCall, pos: call.Pos(), msg: "call to method " + exprString(pass, sel) + " on " + root.Name + " declared outside the loop"}, true
}

// isOrderFreeMethod exempts methods that cannot leak iteration order into
// simulation state even on an outer receiver: pure read accessors cannot be
// distinguished from mutators without whole-program analysis, so only a tiny
// hand-audited set is listed.
func isOrderFreeMethod(s *types.Selection) bool {
	f, ok := s.Obj().(*types.Func)
	if !ok {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	// Value receivers cannot mutate the receiver; a value-receiver method
	// with no pointer arguments is effect-free on the outer object.
	if _, ptr := sig.Recv().Type().(*types.Pointer); !ptr {
		for i := 0; i < sig.Params().Len(); i++ {
			if _, isPtr := sig.Params().At(i).Type().Underlying().(*types.Pointer); isPtr {
				return false
			}
		}
		return true
	}
	return false
}

// parentMap records each node's syntactic parent, so the sorted-keys check
// can look at statements following a loop in any enclosing block (a nested
// range over an inner map is typically sorted once, after the outer loop).
func parentMap(file *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// followingStmts returns the statements that execute after rs completes, in
// its own block and every enclosing block out to the function boundary.
func followingStmts(rs ast.Stmt, blocks map[ast.Stmt]stmtListPos, parents map[ast.Node]ast.Node) []ast.Stmt {
	var out []ast.Stmt
	var cur ast.Node = rs
	for cur != nil {
		if s, ok := cur.(ast.Stmt); ok {
			if at, ok := blocks[s]; ok {
				out = append(out, at.list[at.idx+1:]...)
			}
		}
		switch cur.(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return out
		}
		cur = parents[cur]
	}
	return out
}

// suppressSortedAppends removes append effects that feed the standard
// sorted-keys idiom: every flagged operation is an append to outer slices
// (or slice fields), and each appended-to object is passed to a sort.* or
// slices.Sort* call in a statement after the loop.
func suppressSortedAppends(pass *Pass, rs *ast.RangeStmt, effects []effect, blocks map[ast.Stmt]stmtListPos, parents map[ast.Node]ast.Node) []effect {
	if len(effects) == 0 {
		return effects
	}
	for _, e := range effects {
		if e.kind != effectAppend || e.obj == nil {
			return effects
		}
	}
	sorted := map[types.Object]bool{}
	for _, s := range followingStmts(rs, blocks, parents) {
		call, ok := callStmt(s)
		if !ok {
			continue
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		pkg, ok := unparen(sel.X).(*ast.Ident)
		if !ok {
			continue
		}
		if pn, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName); ok {
			if p := pn.Imported().Path(); p == "sort" || p == "slices" {
				for _, arg := range call.Args {
					ast.Inspect(arg, func(n ast.Node) bool {
						if id, ok := n.(*ast.Ident); ok {
							if obj := pass.TypesInfo.Uses[id]; obj != nil {
								sorted[obj] = true
							}
						}
						return true
					})
				}
			}
		}
	}
	var out []effect
	for _, e := range effects {
		if !sorted[e.obj] {
			out = append(out, e)
		}
	}
	return out
}

// callStmt unwraps an expression statement holding a call.
func callStmt(s ast.Stmt) (*ast.CallExpr, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil, false
	}
	call, ok := unparen(es.X).(*ast.CallExpr)
	return call, ok
}

// -------------------------------------------------------- write summaries

// writeSummary records what a package-level function mutates beyond its own
// frame: package-level variables (directly or through same-package callees),
// and which of its parameters it writes through (pointer deref, field set,
// element store).
type writeSummary struct {
	writesPkgVars bool
	writesParam   map[int]bool
}

// writeSummaries computes a summary for every package-level function of the
// package, propagating effects across same-package calls to a fixed point.
// This is the interprocedural half of maporder: a map-range body that calls
// emit(k) is exactly as order-dependent as one that appends to the package
// var emit writes.
func writeSummaries(pass *Pass) map[*types.Func]*writeSummary {
	type fnDecl struct {
		fn     *types.Func
		decl   *ast.FuncDecl
		params []types.Object // in declaration order
	}
	var fns []fnDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			var params []types.Object
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					params = append(params, pass.TypesInfo.Defs[name])
				}
			}
			fns = append(fns, fnDecl{fn: fn, decl: fd, params: params})
		}
	}
	sums := map[*types.Func]*writeSummary{}
	paramIdx := map[*types.Func]map[types.Object]int{}
	for _, f := range fns {
		sums[f.fn] = &writeSummary{writesParam: map[int]bool{}}
		idx := map[types.Object]int{}
		for i, p := range f.params {
			if p != nil {
				idx[p] = i
			}
		}
		paramIdx[f.fn] = idx
	}

	// isPkgVar: a variable owned by package scope.
	isPkgVar := func(obj types.Object) bool {
		v, ok := obj.(*types.Var)
		return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
	}

	// One propagation round; returns whether anything changed.
	round := func() bool {
		changed := false
		for _, f := range fns {
			sum := sums[f.fn]
			idx := paramIdx[f.fn]
			noteWrite := func(lhs ast.Expr) {
				root := rootIdent(lhs)
				if root == nil {
					return
				}
				obj := objectOf(pass, root)
				if obj == nil {
					return
				}
				switch {
				case isPkgVar(obj):
					if !sum.writesPkgVars {
						sum.writesPkgVars = true
						changed = true
					}
				default:
					// Writing through a parameter is caller-visible only when
					// the write goes through indirection (deref, field,
					// element) — rebinding the parameter itself is not.
					i, isParam := idx[obj]
					if !isParam {
						return
					}
					if _, direct := unparen(lhs).(*ast.Ident); direct {
						return
					}
					if !sum.writesParam[i] {
						sum.writesParam[i] = true
						changed = true
					}
				}
			}
			ast.Inspect(f.decl.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if n.Tok == token.DEFINE {
						return true
					}
					for _, lhs := range n.Lhs {
						noteWrite(lhs)
					}
				case *ast.IncDecStmt:
					noteWrite(n.X)
				case *ast.CallExpr:
					id, ok := unparen(n.Fun).(*ast.Ident)
					if !ok {
						return true
					}
					callee, ok := pass.TypesInfo.Uses[id].(*types.Func)
					if !ok {
						return true
					}
					csum := sums[callee]
					if csum == nil {
						return true
					}
					if csum.writesPkgVars && !sum.writesPkgVars {
						sum.writesPkgVars = true
						changed = true
					}
					for ai, arg := range n.Args {
						if !csum.writesParam[ai] {
							continue
						}
						root := rootIdent(arg)
						if root == nil {
							continue
						}
						obj := objectOf(pass, root)
						switch {
						case isPkgVar(obj):
							if !sum.writesPkgVars {
								sum.writesPkgVars = true
								changed = true
							}
						default:
							if i, isParam := idx[obj]; isParam && !sum.writesParam[i] {
								sum.writesParam[i] = true
								changed = true
							}
						}
					}
				}
				return true
			})
		}
		return changed
	}
	for round() {
	}
	return sums
}

// ------------------------------------------------------------ small helpers

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// rootIdent returns the leftmost identifier of a selector/index/deref chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}

// objectOf resolves an identifier to its object (use or definition).
func objectOf(pass *Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}

// exprOnlyUses reports whether every identifier in e satisfies ok (used for
// "is this index derived only from loop-local state").
func exprOnlyUses(pass *Pass, e ast.Expr, ok func(types.Object) bool) bool {
	all := true
	ast.Inspect(e, func(n ast.Node) bool {
		if id, okID := n.(*ast.Ident); okID && id.Name != "_" {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				if _, isConst := obj.(*types.Const); isConst {
					return true
				}
				if _, isFunc := obj.(*types.Func); isFunc {
					return true
				}
				if !ok(obj) {
					all = false
				}
			}
		}
		return true
	})
	return all
}

// isBuiltin reports whether fun resolves to the named builtin.
func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// exprString renders a short source form of e for diagnostics.
func exprString(pass *Pass, e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(pass, e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(pass, e.X) + "[…]"
	case *ast.StarExpr:
		return "*" + exprString(pass, e.X)
	case *ast.CallExpr:
		return exprString(pass, e.Fun) + "(…)"
	default:
		return "expression"
	}
}
