package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoGoroutine forbids goroutines and channel machinery inside the
// cycle-level simulation core. The engine is a single-threaded lock-step
// loop; any scheduling by the Go runtime (goroutine interleaving, channel
// handoff — unbuffered ops in particular block on the peer) would inject
// host-dependent ordering into the simulated machine and break replay.
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc: `forbid go statements and channel operations in the cycle-level core

The packages that advance simulated time (pipeline, kernel, core, mem, cache,
tlb, bpred) must be straight-line deterministic code: no go statements, no
channel makes/sends/receives/selects. Event queues in the core are explicit
slices and heaps, which checkpoint and replay exactly. Concurrency belongs in
cmd/ wrappers around whole simulations, never inside one.`,
	Run: runNoGoroutine,
}

// corePackages are the path segments naming the cycle-level core.
var corePackages = map[string]bool{
	"pipeline": true, "kernel": true, "core": true, "mem": true,
	"cache": true, "tlb": true, "bpred": true,
}

func runNoGoroutine(pass *Pass) error {
	path := pass.Pkg.Path()
	if !corePackages[path[strings.LastIndex(path, "/")+1:]] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in cycle-level package %s: runtime scheduling breaks deterministic replay", pass.Pkg.Name())
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in cycle-level package %s: use an explicit slice or heap queue", pass.Pkg.Name())
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					pass.Reportf(n.Pos(), "channel receive in cycle-level package %s: use an explicit slice or heap queue", pass.Pkg.Name())
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select statement in cycle-level package %s: runtime scheduling breaks deterministic replay", pass.Pkg.Name())
			case *ast.CallExpr:
				if isBuiltin(pass, n.Fun, "make") && len(n.Args) > 0 {
					if t := pass.TypesInfo.TypeOf(n.Args[0]); t != nil {
						if _, ok := t.Underlying().(*types.Chan); ok {
							pass.Reportf(n.Pos(), "channel construction in cycle-level package %s: channel handoff order is host-dependent", pass.Pkg.Name())
						}
					}
				}
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						pass.Reportf(n.Pos(), "range over channel in cycle-level package %s: receive order is host-dependent", pass.Pkg.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}
