// Package sys is the shared vocabulary between workload models (which issue
// system calls) and the behavioral kernel (which services them): syscall
// numbers, the request descriptor a program attaches to a call, and the
// kernel-service categories used by the paper's Figures 2, 6 and 7.
//
// The syscall set is the one the paper's Figure 7 breaks out for Apache —
// smmap, munmap, stat, read, write, writev, close, accept, select, open —
// plus the process-control and file-read calls that dominate SPECInt
// start-up (Figure 4).
package sys

import "fmt"

// Syscall numbers. Zero is reserved (no syscall).
const (
	SysNone uint16 = iota
	SysRead
	SysWrite
	SysWritev
	SysStat
	SysOpen
	SysClose
	SysAccept
	SysSelect
	SysSmmap
	SysMunmap
	SysFork
	SysExec
	SysExit
	SysGetpid
	SysSigaction
	SysIoctl

	// NumSyscalls is the size of dispatch tables.
	NumSyscalls
)

var sysNames = [NumSyscalls]string{
	"none", "read", "write", "writev", "stat", "open", "close",
	"accept", "select", "smmap", "munmap", "fork", "exec", "exit",
	"getpid", "sigaction", "ioctl",
}

// Name returns the syscall's name.
func Name(n uint16) string {
	if int(n) < len(sysNames) {
		return sysNames[n]
	}
	return fmt.Sprintf("sys%d", n)
}

// Structured syscall error results, returned as negative values through the
// syscall result path (the analogues of the Digital Unix errnos). A program
// that receives a negative result from accept/fork retries through its own
// state machine; the network clients recover via retransmit/backoff.
const (
	// ErrMfile: the calling process is at its per-process descriptor limit
	// (EMFILE, errno 24 on OSF/1).
	ErrMfile = -24
	// ErrAgain: a process-table slot (fork) was not available (EAGAIN,
	// errno 35 on OSF/1).
	ErrAgain = -35
	// ErrNobufs: an mbuf or socket-table allocation failed in the network
	// stack (ENOBUFS, errno 55 on OSF/1).
	ErrNobufs = -55
)

// Resource classifies a syscall instance by the resource it operates on,
// for the right-hand chart of Figure 7 (network vs file vs process/other).
type Resource uint8

const (
	// ResNone is for calls with no dominant resource (getpid, sigaction).
	ResNone Resource = iota
	// ResFile operates on the file system.
	ResFile
	// ResNet operates on a socket / the network stack.
	ResNet
	// ResProcess is process creation and control.
	ResProcess
	// ResMemory is address-space manipulation (smmap/munmap).
	ResMemory
)

func (r Resource) String() string {
	switch r {
	case ResFile:
		return "file"
	case ResNet:
		return "network"
	case ResProcess:
		return "process"
	case ResMemory:
		return "memory"
	}
	return "other"
}

// Request describes one system-call invocation by a program.
type Request struct {
	// Num is the syscall number.
	Num uint16
	// Bytes is the payload size (read/write length, file size for stat
	// caching effects); it scales the kernel service's dynamic length.
	Bytes int
	// Resource tags the call for Figure 7's by-resource grouping; the
	// same syscall (read) can be file or network depending on the fd.
	Resource Resource
	// FD is an opaque descriptor; for network calls the kernel uses it to
	// find the socket (and may block the thread until data arrives).
	FD int
	// Addr is the address argument for smmap/munmap.
	Addr uint64
	// Blocking marks calls that may block awaiting external events
	// (select/accept/read on an empty socket).
	Blocking bool
}

// Category is the high-level kernel-time category of Figures 2 and 6.
type Category uint8

const (
	// CatSyscall is explicit system-call processing.
	CatSyscall Category = iota
	// CatDTLB is data-TLB miss handling (PAL + VM code).
	CatDTLB
	// CatITLB is instruction-TLB miss handling.
	CatITLB
	// CatInterrupt is interrupt processing (device + clock stubs).
	CatInterrupt
	// CatNetisr is the netisr protocol-stack kernel threads.
	CatNetisr
	// CatSched is the process scheduler and context switching.
	CatSched
	// CatSpin is kernel spin-lock waiting (§2.2.2: <1.2% of cycles for
	// SPECInt, <4.5% for Apache).
	CatSpin
	// CatIdle is the kernel idle loop.
	CatIdle
	// CatOtherKernel is remaining kernel activity (daemons, callouts).
	CatOtherKernel
	// CatUser is user-mode execution (not kernel, tracked for totals).
	CatUser

	// NumCategories is the number of categories.
	NumCategories = int(CatUser) + 1
)

var catNames = [NumCategories]string{
	"syscall", "dtlb-miss", "itlb-miss", "interrupt", "netisr",
	"scheduler", "spinlock", "idle", "other-kernel", "user",
}

func (c Category) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}
