package sys

import "testing"

func TestNames(t *testing.T) {
	cases := map[uint16]string{
		SysRead:   "read",
		SysWritev: "writev",
		SysStat:   "stat",
		SysAccept: "accept",
		SysSmmap:  "smmap",
		SysExit:   "exit",
	}
	for n, want := range cases {
		if Name(n) != want {
			t.Errorf("Name(%d) = %q, want %q", n, Name(n), want)
		}
	}
	if Name(4242) != "sys4242" {
		t.Errorf("out-of-range name = %q", Name(4242))
	}
}

func TestResourceStrings(t *testing.T) {
	cases := map[Resource]string{
		ResNone:    "other",
		ResFile:    "file",
		ResNet:     "network",
		ResProcess: "process",
		ResMemory:  "memory",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
}

func TestCategoryStrings(t *testing.T) {
	want := []string{
		"syscall", "dtlb-miss", "itlb-miss", "interrupt", "netisr",
		"scheduler", "spinlock", "idle", "other-kernel", "user",
	}
	for i, w := range want {
		if Category(i).String() != w {
			t.Errorf("Category(%d) = %q, want %q", i, Category(i).String(), w)
		}
	}
	if Category(200).String() == "" {
		t.Error("unknown category should stringify")
	}
	if NumCategories != len(want) {
		t.Errorf("NumCategories = %d, want %d", NumCategories, len(want))
	}
}

func TestSyscallNumbersStable(t *testing.T) {
	// The experiment/report layers index arrays by these values; they
	// must not be reordered silently.
	if SysNone != 0 || SysRead != 1 || SysAccept != 7 || SysSelect != 8 {
		t.Fatal("syscall numbering changed; fix dependent indexing")
	}
}
