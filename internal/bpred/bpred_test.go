package bpred

import (
	"testing"

	"repro/internal/conflict"
	"repro/internal/isa"
)

var (
	uag = conflict.Agent{TID: 1}
	kag = conflict.Agent{TID: 2, Priv: true}
)

func condBranch(pc uint64, taken bool) *isa.Inst {
	return &isa.Inst{PC: pc, Class: isa.CondBranch, Taken: taken, Target: pc + 64}
}

func TestColdBranchDefaultsFallThrough(t *testing.T) {
	p := New(8)
	in := condBranch(0x1000, true)
	pred := p.Predict(0, in, uag)
	if pred.BTBHit {
		t.Fatal("cold BTB hit")
	}
	if pred.Taken {
		t.Fatal("cold prediction should be fall-through")
	}
	if !p.Resolve(0, in, pred, uag) {
		t.Fatal("taken branch with fall-through prediction should mispredict")
	}
}

func TestNotTakenColdIsCorrect(t *testing.T) {
	p := New(8)
	in := condBranch(0x2000, false)
	pred := p.Predict(0, in, uag)
	if p.Resolve(0, in, pred, uag) {
		t.Fatal("not-taken branch with fall-through default mispredicted")
	}
}

func TestLearnsAlwaysTaken(t *testing.T) {
	p := New(8)
	in := condBranch(0x3000, true)
	for i := 0; i < 40; i++ {
		pred := p.Predict(0, in, uag)
		p.Resolve(0, in, pred, uag)
	}
	pred := p.Predict(0, in, uag)
	if !pred.BTBHit || !pred.Taken || pred.Target != in.Target {
		t.Fatalf("did not learn taken branch: %+v", pred)
	}
	if p.Resolve(0, in, pred, uag) {
		t.Fatal("trained branch mispredicted")
	}
}

func TestLearnsAlternatingPattern(t *testing.T) {
	p := New(8)
	// Alternating T/N/T/N: local history should capture it.
	misp := 0
	for i := 0; i < 200; i++ {
		in := condBranch(0x4000, i%2 == 0)
		pred := p.Predict(0, in, uag)
		if p.Resolve(0, in, pred, uag) {
			misp++
		}
	}
	// After warm-up the pattern is fully predictable; allow generous slack.
	if misp > 60 {
		t.Fatalf("alternating pattern mispredicted %d/200 times", misp)
	}
}

func TestIndirectTargetChangeMispredicts(t *testing.T) {
	p := New(8)
	j1 := &isa.Inst{PC: 0x5000, Class: isa.IndirectJump, Taken: true, Target: 0x6000}
	pred := p.Predict(0, j1, kag)
	p.Resolve(0, j1, pred, kag)
	// Same jump, same target: predicted correctly.
	pred = p.Predict(0, j1, kag)
	if p.Resolve(0, j1, pred, kag) {
		t.Fatal("stable indirect target mispredicted")
	}
	// Target changes: mispredict (the paper's kernel BTB pathology).
	j2 := &isa.Inst{PC: 0x5000, Class: isa.IndirectJump, Taken: true, Target: 0x7000}
	pred = p.Predict(0, j2, kag)
	if !p.Resolve(0, j2, pred, kag) {
		t.Fatal("changed indirect target predicted correctly")
	}
}

func TestUncondBranchDirectTarget(t *testing.T) {
	p := New(8)
	in := &isa.Inst{PC: 0x8000, Class: isa.UncondBranch, Taken: true, Target: 0x9000}
	pred := p.Predict(0, in, uag)
	if !pred.Taken || pred.Target != 0x9000 {
		t.Fatalf("direct unconditional target not available at decode: %+v", pred)
	}
	if p.Resolve(0, in, pred, uag) {
		t.Fatal("direct unconditional mispredicted")
	}
	// The cold lookup still counts a BTB miss (Tables 3/7 BTB column).
	if p.BTBMisses[0] != 1 {
		t.Fatalf("BTB misses = %d, want 1", p.BTBMisses[0])
	}
}

func TestBTBMissClassification(t *testing.T) {
	p := New(8)
	// Fill one BTB set (4 ways) with kernel branches mapping to same set,
	// evicting a previously learned user branch.
	user := &isa.Inst{PC: 0x1000, Class: isa.UncondBranch, Taken: true, Target: 0x2000}
	pred := p.Predict(0, user, uag)
	p.Resolve(0, user, pred, uag)
	stride := uint64(btbSets * 4) // same set, different tags
	for i := uint64(1); i <= 4; i++ {
		in := &isa.Inst{PC: 0x1000 + i*stride, Class: isa.UncondBranch, Taken: true, Target: 0x3000}
		pr := p.Predict(0, in, kag)
		p.Resolve(0, in, pr, kag)
	}
	p.Predict(0, user, uag) // user branch now misses: user-kernel conflict
	if p.BTBCauses.Counts[0][conflict.UserKernel] == 0 {
		t.Fatal("BTB user-kernel conflict not classified")
	}
	if p.BTBMisses[0] == 0 {
		t.Fatal("BTB miss not counted")
	}
}

func TestReturnAddressStack(t *testing.T) {
	p := New(8)
	call := &isa.Inst{PC: 0x100, Class: isa.UncondBranch, Taken: true, Target: 0x1000}
	ret := &isa.Inst{PC: 0x1040, Class: isa.IndirectJump, Taken: true, Target: 0x104}
	// Train once (allocates BTB entries, pushes/pops RAS).
	pr := p.Predict(0, call, uag)
	p.Resolve(0, call, pr, uag)
	pr = p.Predict(0, ret, uag)
	p.Resolve(0, ret, pr, uag)
	// Second round: call pushes 0x104; return should pop it from RAS even
	// though the BTB's stored target might be stale.
	pr = p.Predict(0, call, uag)
	p.Resolve(0, call, pr, uag)
	pr = p.Predict(0, ret, uag)
	if !pr.BTBHit || pr.Target != 0x104 {
		t.Fatalf("return not predicted via RAS: %+v", pr)
	}
	if p.Resolve(0, ret, pr, uag) {
		t.Fatal("return mispredicted with warm RAS")
	}
}

func TestRASOverflowKeepsNewest(t *testing.T) {
	p := New(1)
	for i := 0; i < rasDepth+5; i++ {
		p.rasPush(0, uint64(0x1000+i*4))
	}
	top, ok := p.rasTop(0)
	if !ok || top != uint64(0x1000+(rasDepth+4)*4) {
		t.Fatalf("RAS top = %#x, %v", top, ok)
	}
	if len(p.ras[0]) != rasDepth {
		t.Fatalf("RAS depth = %d", len(p.ras[0]))
	}
}

func TestFlushContext(t *testing.T) {
	p := New(2)
	p.rasPush(1, 0xdead)
	p.ghr[1] = 0x55
	p.FlushContext(1)
	if _, ok := p.rasTop(1); ok {
		t.Fatal("RAS survived flush")
	}
	if p.ghr[1] != 0 {
		t.Fatal("GHR survived flush")
	}
}

func TestOmitPrivileged(t *testing.T) {
	p := New(8)
	p.OmitPrivileged = true
	in := condBranch(0x100, true)
	pred := p.Predict(0, in, kag)
	if !pred.Taken || pred.Target != in.Target {
		t.Fatal("omitted privileged prediction not perfect")
	}
	if p.Resolve(0, in, pred, kag) {
		t.Fatal("omitted privileged resolve mispredicted")
	}
	if p.BTBLookups[1] != 0 || p.Lookups[1] != 0 {
		t.Fatal("privileged stats recorded in omit mode")
	}
	// User path unaffected.
	pu := p.Predict(0, in, uag)
	if pu.BTBHit {
		t.Fatal("user path affected by omit mode")
	}
}

func TestRates(t *testing.T) {
	p := New(8)
	in := condBranch(0x100, true)
	pred := p.Predict(0, in, uag)
	p.Resolve(0, in, pred, uag)
	if p.MispredictRate(false) != 100 {
		t.Fatalf("user mispredict rate = %.1f", p.MispredictRate(false))
	}
	if p.MispredictRate(true) != 0 || p.BTBMissRate(true) != 0 {
		t.Fatal("kernel rates should be 0")
	}
	if p.BTBMissRateOverall() != 100 {
		t.Fatalf("BTB overall = %.1f", p.BTBMissRateOverall())
	}
	if p.MispredictRateOverall() != 100 {
		t.Fatalf("overall = %.1f", p.MispredictRateOverall())
	}
	empty := New(1)
	if empty.MispredictRateOverall() != 0 || empty.BTBMissRateOverall() != 0 {
		t.Fatal("empty predictor rates should be 0")
	}
}

func TestSeparateContextsSeparateHistories(t *testing.T) {
	p := New(2)
	// Train context 0 on taken, context 1 on not-taken, same PC: the global
	// histories differ per context but tables are shared; just verify no
	// cross-context RAS pollution.
	p.rasPush(0, 0xAAAA)
	if _, ok := p.rasTop(1); ok {
		t.Fatal("RAS shared across contexts")
	}
}
