// Package bpred models the fetch engine's branch hardware from the paper's
// Table 1: a McFarling-style hybrid predictor (a 4K-entry local prediction
// table indexed through a 2K-entry history table, an 8K-entry global
// predictor, and an 8K-entry selector), a 1K-entry 4-way set-associative
// branch target buffer, and per-context return-address stacks.
//
// Direction prediction comes from the hybrid tables; targets of *direct*
// branches are computed at decode (PC-relative), so a BTB miss on a direct
// branch costs only a front-end bubble, not a misprediction. Indirect jumps
// and returns take their targets from the BTB and the per-context return
// stacks — a BTB miss or a changed target there is a full misprediction,
// which is the paper's kernel indirect-jump pathology (§3.1.2). The kernel's
// diamond-shaped, rarely-taken branches predict well despite a 75% BTB miss
// rate because fall-through is the common outcome.
//
// The direction tables and the BTB are shared by all hardware contexts (the
// SMT's fine-grained sharing is the point of the study); the global-history
// registers and return stacks are per-context, as per-context fetch state.
package bpred

import (
	"repro/internal/conflict"
	"repro/internal/isa"
)

const (
	localPHTSize   = 4096
	localHistSize  = 2048
	localHistBits  = 12
	globalSize     = 8192
	globalHistBits = 13
	btbEntries     = 1024
	btbWays        = 4
	btbSets        = btbEntries / btbWays
	rasDepth       = 16
)

// btbEntry is one target-buffer entry.
type btbEntry struct {
	valid   bool
	tag     uint64
	target  uint64
	lastUse uint64
	filler  conflict.Agent
	isRet   bool
}

// Prediction is the fetch-time prediction for one control-transfer
// instruction.
type Prediction struct {
	// Taken is the predicted direction.
	Taken bool
	// Target is the predicted target (meaningful when Taken).
	Target uint64
	// BTBHit reports whether the BTB recognized the branch.
	BTBHit bool
	// usedGlobal records which component predicted, for selector update.
	usedGlobal bool
	// localIdx and globalIdx snapshot the table indices used.
	localIdx, globalIdx int
}

// Predictor is the complete branch hardware.
type Predictor struct {
	localPHT  [localPHTSize]uint8
	localHist [localHistSize]uint16
	global    [globalSize]uint8
	selector  [globalSize]uint8
	ghr       []uint32 // per-context global history
	ras       [][]uint64
	btb       [btbEntries]btbEntry
	tick      uint64

	btbTracker *conflict.Tracker

	// Lookups and Mispredicts are indexed by privilege (0 user, 1 kernel) —
	// conditional-branch direction (+ indirect target) mispredictions.
	Lookups     [2]uint64
	Mispredicts [2]uint64
	// BTBLookups and BTBMisses count target-buffer behavior per privilege.
	BTBLookups [2]uint64
	BTBMisses  [2]uint64
	// BTBCauses classifies BTB misses (Tables 3 and 7).
	BTBCauses conflict.Matrix

	// OmitPrivileged makes privileged lookups perfect and stateless,
	// implementing Table 9's user-only measurement.
	OmitPrivileged bool //detlint:ignore snapshotcomplete configuration set at assembly, not mutable simulation state
}

// New returns a predictor for nContexts hardware contexts. Counters start
// weakly not-taken; histories empty.
func New(nContexts int) *Predictor {
	p := &Predictor{
		ghr:        make([]uint32, nContexts),
		ras:        make([][]uint64, nContexts),
		btbTracker: conflict.NewTracker(),
	}
	for i := range p.localPHT {
		p.localPHT[i] = 1
	}
	for i := range p.global {
		p.global[i] = 1
	}
	for i := range p.selector {
		p.selector[i] = 2 // slight initial preference for the global predictor
	}
	return p
}

func (p *Predictor) btbSet(pc uint64) []btbEntry {
	s := int((pc >> 2) % btbSets)
	return p.btb[s*btbWays : (s+1)*btbWays]
}

func btbTag(pc uint64) uint64 { return pc >> 2 }

// btbLookup probes the BTB without stats.
func (p *Predictor) btbLookup(pc uint64) *btbEntry {
	set := p.btbSet(pc)
	for i := range set {
		if set[i].valid && set[i].tag == btbTag(pc) {
			return &set[i]
		}
	}
	return nil
}

func (p *Predictor) localIndex(pc uint64) int {
	h := p.localHist[(pc>>2)%localHistSize]
	return int(h) & (localPHTSize - 1)
}

func (p *Predictor) globalIndex(ctx int, pc uint64) int {
	return int((uint64(p.ghr[ctx]) ^ (pc >> 2)) & (globalSize - 1))
}

// Predict produces the fetch-time prediction for instruction in running on
// hardware context ctx by agent ag.
//detlint:hot per-branch prediction probe inside Engine.fetchCtx
func (p *Predictor) Predict(ctx int, in *isa.Inst, ag conflict.Agent) Prediction {
	if p.OmitPrivileged && ag.Priv {
		return Prediction{Taken: in.Taken || in.Class != isa.CondBranch, Target: in.Target, BTBHit: true}
	}
	p.tick++
	pi := privIndex(ag.Priv)
	p.BTBLookups[pi]++
	e := p.btbLookup(in.PC)
	pred := Prediction{BTBHit: e != nil}
	if e == nil {
		p.BTBMisses[pi]++
		p.BTBCauses.Add(ag, p.btbTracker.Classify(btbTag(in.PC), ag))
	}
	switch in.Class {
	case isa.CondBranch:
		pred.localIdx = p.localIndex(in.PC)
		pred.globalIdx = p.globalIndex(ctx, in.PC)
		sel := p.selector[pred.globalIdx]
		pred.usedGlobal = sel >= 2
		var counter uint8
		if pred.usedGlobal {
			counter = p.global[pred.globalIdx]
		} else {
			counter = p.localPHT[pred.localIdx]
		}
		pred.Taken = counter >= 2
		// Direct target, available at decode.
		pred.Target = in.Target
	case isa.IndirectJump:
		pred.Taken = true
		if top, ok := p.rasTop(ctx); ok && (e == nil || e.isRet) {
			// Returns predict through the return-address stack.
			pred.Target = top
		} else if e != nil {
			pred.Target = e.target
		} // else: no target available — misprediction.
	default: // UncondBranch, PALCall, PALReturn: direct targets.
		pred.Taken = true
		pred.Target = in.Target
	}
	return pred
}

// Resolve updates all predictor state with the actual outcome and returns
// whether the prediction was wrong (direction or target). fallthrough
// semantics: a taken control transfer with a wrong or unknown target is a
// misprediction.
//detlint:hot per-branch resolution inside Engine.fetchCtx
func (p *Predictor) Resolve(ctx int, in *isa.Inst, pred Prediction, ag conflict.Agent) bool {
	if p.OmitPrivileged && ag.Priv {
		return false
	}
	pi := privIndex(ag.Priv)
	p.Lookups[pi]++

	actualTaken := in.Taken || in.Class != isa.CondBranch
	var misp bool
	switch in.Class {
	case isa.CondBranch:
		misp = pred.Taken != actualTaken
	case isa.IndirectJump:
		misp = pred.Target != in.Target
	default:
		// Direct transfers resolve at decode.
		misp = false
	}
	if misp {
		p.Mispredicts[pi]++
	}

	// Direction-table update (conditionals only).
	if in.Class == isa.CondBranch {
		li, gi := pred.localIdx, pred.globalIdx
		p.localPHT[li] = bump(p.localPHT[li], in.Taken)
		p.global[gi] = bump(p.global[gi], in.Taken)
		localRight := (p.localPHT[li] >= 2) == in.Taken // post-update approximation
		globalRight := (p.global[gi] >= 2) == in.Taken
		if globalRight && !localRight {
			p.selector[gi] = bump(p.selector[gi], true)
		} else if localRight && !globalRight {
			p.selector[gi] = bump(p.selector[gi], false)
		}
		h := &p.localHist[(in.PC>>2)%localHistSize]
		*h = (*h<<1 | bit(in.Taken)) & ((1 << localHistBits) - 1)
		p.ghr[ctx] = (p.ghr[ctx]<<1 | uint32(bit(in.Taken))) & ((1 << globalHistBits) - 1)
	}

	// Return-address stack: calls push, returns pop.
	switch in.Class {
	case isa.UncondBranch, isa.PALCall:
		p.rasPush(ctx, in.PC+4)
	case isa.IndirectJump, isa.PALReturn:
		p.rasPop(ctx)
	}

	// BTB allocation/update on actually-taken transfers.
	if actualTaken {
		p.btbInsert(in, ag)
	}
	return misp
}

func (p *Predictor) btbInsert(in *isa.Inst, ag conflict.Agent) {
	p.tick++
	set := p.btbSet(in.PC)
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range set {
		e := &set[i]
		if e.valid && e.tag == btbTag(in.PC) {
			e.target = in.Target
			e.lastUse = p.tick
			e.isRet = in.Class == isa.IndirectJump || in.Class == isa.PALReturn
			return
		}
		if !e.valid {
			victim = i
			oldest = 0
		} else if e.lastUse < oldest {
			victim = i
			oldest = e.lastUse
		}
	}
	v := &set[victim]
	if v.valid {
		p.btbTracker.Evicted(v.tag, ag)
	}
	p.btbTracker.FirstSeen(btbTag(in.PC), ag)
	*v = btbEntry{
		valid:   true,
		tag:     btbTag(in.PC),
		target:  in.Target,
		lastUse: p.tick,
		filler:  ag,
		isRet:   in.Class == isa.IndirectJump || in.Class == isa.PALReturn,
	}
}

func (p *Predictor) rasPush(ctx int, addr uint64) {
	s := p.ras[ctx]
	if len(s) >= rasDepth {
		copy(s, s[1:])
		s = s[:rasDepth-1]
	}
	p.ras[ctx] = append(s, addr)
}

func (p *Predictor) rasPop(ctx int) {
	if n := len(p.ras[ctx]); n > 0 {
		p.ras[ctx] = p.ras[ctx][:n-1]
	}
}

func (p *Predictor) rasTop(ctx int) (uint64, bool) {
	if n := len(p.ras[ctx]); n > 0 {
		return p.ras[ctx][n-1], true
	}
	return 0, false
}

// FlushContext clears per-context fetch state (on context switch the return
// stack no longer matches the new thread).
func (p *Predictor) FlushContext(ctx int) {
	p.ras[ctx] = p.ras[ctx][:0]
	p.ghr[ctx] = 0
}

// MispredictRate returns the misprediction percentage for one privilege
// class.
func (p *Predictor) MispredictRate(priv bool) float64 {
	pi := privIndex(priv)
	if p.Lookups[pi] == 0 {
		return 0
	}
	return 100 * float64(p.Mispredicts[pi]) / float64(p.Lookups[pi])
}

// MispredictRateOverall returns the total misprediction percentage.
func (p *Predictor) MispredictRateOverall() float64 {
	l := p.Lookups[0] + p.Lookups[1]
	if l == 0 {
		return 0
	}
	return 100 * float64(p.Mispredicts[0]+p.Mispredicts[1]) / float64(l)
}

// BTBMissRate returns the BTB miss percentage for one privilege class.
func (p *Predictor) BTBMissRate(priv bool) float64 {
	pi := privIndex(priv)
	if p.BTBLookups[pi] == 0 {
		return 0
	}
	return 100 * float64(p.BTBMisses[pi]) / float64(p.BTBLookups[pi])
}

// BTBMissRateOverall returns the total BTB miss percentage.
func (p *Predictor) BTBMissRateOverall() float64 {
	l := p.BTBLookups[0] + p.BTBLookups[1]
	if l == 0 {
		return 0
	}
	return 100 * float64(p.BTBMisses[0]+p.BTBMisses[1]) / float64(l)
}

func bump(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

func bit(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}

func privIndex(priv bool) int {
	if priv {
		return 1
	}
	return 0
}
