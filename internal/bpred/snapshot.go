// Checkpoint serialization for the branch predictor.
package bpred

import "repro/internal/conflict"

// BTBSnap is the serialized form of one BTB entry.
type BTBSnap struct {
	Valid   bool
	Tag     uint64
	Target  uint64
	LastUse uint64
	Filler  conflict.Agent
	IsRet   bool
}

// Snapshot captures all mutable predictor state.
type Snapshot struct {
	LocalPHT    [localPHTSize]uint8
	LocalHist   [localHistSize]uint16
	Global      [globalSize]uint8
	Selector    [globalSize]uint8
	GHR         []uint32
	RAS         [][]uint64
	BTB         []BTBSnap
	Tick        uint64
	Tracker     conflict.TrackerSnap
	Lookups     [2]uint64
	Mispredicts [2]uint64
	BTBLookups  [2]uint64
	BTBMisses   [2]uint64
	BTBCauses   conflict.Matrix
}

// Snapshot returns the predictor's complete mutable state.
func (p *Predictor) Snapshot() Snapshot {
	s := Snapshot{
		LocalPHT:    p.localPHT,
		LocalHist:   p.localHist,
		Global:      p.global,
		Selector:    p.selector,
		GHR:         append([]uint32(nil), p.ghr...),
		RAS:         make([][]uint64, len(p.ras)),
		BTB:         make([]BTBSnap, len(p.btb)),
		Tick:        p.tick,
		Tracker:     p.btbTracker.Snapshot(),
		Lookups:     p.Lookups,
		Mispredicts: p.Mispredicts,
		BTBLookups:  p.BTBLookups,
		BTBMisses:   p.BTBMisses,
		BTBCauses:   p.BTBCauses,
	}
	for i, r := range p.ras {
		s.RAS[i] = append([]uint64(nil), r...)
	}
	for i, e := range p.btb {
		s.BTB[i] = BTBSnap{Valid: e.valid, Tag: e.tag, Target: e.target, LastUse: e.lastUse, Filler: e.filler, IsRet: e.isRet}
	}
	return s
}

// Restore overwrites the predictor's state from a snapshot taken on a
// predictor with the same context count.
func (p *Predictor) Restore(s Snapshot) {
	if len(s.GHR) != len(p.ghr) || len(s.BTB) != len(p.btb) {
		panic("bpred: snapshot geometry mismatch")
	}
	p.localPHT = s.LocalPHT
	p.localHist = s.LocalHist
	p.global = s.Global
	p.selector = s.Selector
	copy(p.ghr, s.GHR)
	for i, r := range s.RAS {
		p.ras[i] = append(p.ras[i][:0], r...)
	}
	for i, e := range s.BTB {
		p.btb[i] = btbEntry{valid: e.Valid, tag: e.Tag, target: e.Target, lastUse: e.LastUse, filler: e.Filler, isRet: e.IsRet}
	}
	p.tick = s.Tick
	p.btbTracker.Restore(s.Tracker)
	p.Lookups = s.Lookups
	p.Mispredicts = s.Mispredicts
	p.BTBLookups = s.BTBLookups
	p.BTBMisses = s.BTBMisses
	p.BTBCauses = s.BTBCauses
}
