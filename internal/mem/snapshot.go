// Checkpoint serialization and auditor accessors for the memory model.
package mem

import "sort"

// PTE is one serialized page-table entry.
type PTE struct {
	PID uint64
	VPN uint64
	PFN uint64
}

// Mapping describes one frame's owner (serialized owners[] entry).
type Mapping struct {
	PID uint64
	VPN uint64
}

// SharedRange is one serialized shared user range.
type SharedRange struct {
	Base, End uint64
}

// Snapshot captures all mutable memory state.
type Snapshot struct {
	Shared     []SharedRange
	NextFrame  uint64
	Free       []uint64
	Owners     []Mapping
	FIFO       []uint64
	FIFOHead   int
	Tables     []PTE
	Reserved   uint64
	Allocs     uint64
	Reclaims   uint64
	Refills    uint64
	Unmappings uint64
}

// Snapshot returns the memory's complete mutable state. Page tables are
// emitted in (pid, vpn) sorted order so the serialized bytes of a
// deterministic run are themselves deterministic.
func (m *Memory) Snapshot() Snapshot {
	s := Snapshot{
		NextFrame:  m.nextFrame,
		Free:       append([]uint64(nil), m.free...),
		Owners:     make([]Mapping, len(m.owners)),
		FIFO:       append([]uint64(nil), m.fifo...),
		FIFOHead:   m.fifoHead,
		Reserved:   m.reserved,
		Allocs:     m.Allocs,
		Reclaims:   m.Reclaims,
		Refills:    m.Refills,
		Unmappings: m.Unmappings,
	}
	for _, r := range m.shared {
		s.Shared = append(s.Shared, SharedRange{Base: r.base, End: r.end})
	}
	for i, o := range m.owners {
		s.Owners[i] = Mapping{PID: o.pid, VPN: o.vpn}
	}
	for pid, t := range m.tables {
		for vpn, pfn := range t {
			s.Tables = append(s.Tables, PTE{PID: pid, VPN: vpn, PFN: pfn})
		}
	}
	sort.Slice(s.Tables, func(i, j int) bool {
		if s.Tables[i].PID != s.Tables[j].PID {
			return s.Tables[i].PID < s.Tables[j].PID
		}
		return s.Tables[i].VPN < s.Tables[j].VPN
	})
	return s
}

// Restore overwrites the memory's state from a snapshot taken on a Memory of
// the same physical size.
func (m *Memory) Restore(s Snapshot) {
	if uint64(len(s.Owners)) != m.frames {
		panic("mem: snapshot geometry mismatch")
	}
	m.shared = m.shared[:0]
	for _, r := range s.Shared {
		m.shared = append(m.shared, struct{ base, end uint64 }{r.Base, r.End})
	}
	m.nextFrame = s.NextFrame
	m.free = append(m.free[:0], s.Free...)
	for i, o := range s.Owners {
		m.owners[i] = mapping{pid: o.PID, vpn: o.VPN}
	}
	m.fifo = append(m.fifo[:0], s.FIFO...)
	m.fifoHead = s.FIFOHead
	m.tables = make(map[uint64]map[uint64]uint64)
	for _, e := range s.Tables {
		t := m.tables[e.PID]
		if t == nil {
			t = make(map[uint64]uint64)
			m.tables[e.PID] = t
		}
		t[e.VPN] = e.PFN
	}
	m.reserved = s.Reserved
	m.Allocs = s.Allocs
	m.Reclaims = s.Reclaims
	m.Refills = s.Refills
	m.Unmappings = s.Unmappings
}

// AllMappings returns every page-table entry in (pid, vpn) sorted order
// (auditor access).
func (m *Memory) AllMappings() []PTE {
	var out []PTE
	for pid, t := range m.tables {
		for vpn, pfn := range t {
			out = append(out, PTE{PID: pid, VPN: vpn, PFN: pfn})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PID != out[j].PID {
			return out[i].PID < out[j].PID
		}
		return out[i].VPN < out[j].VPN
	})
	return out
}

// FreeFrames returns a copy of the free list (auditor access).
func (m *Memory) FreeFrames() []uint64 {
	return append([]uint64(nil), m.free...)
}

// TablePIDs returns the PIDs that currently own a page table with at least
// one mapping, sorted (auditor access).
func (m *Memory) TablePIDs() []uint64 {
	var out []uint64
	for pid, t := range m.tables {
		if len(t) > 0 {
			out = append(out, pid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Peek returns the physical frame mapped at (pid, vaddr), if any, without
// creating tables or mappings (auditor access; Translate would instantiate
// an empty page table for an unknown pid).
func (m *Memory) Peek(pid uint64, vaddr uint64) (pfn uint64, ok bool) {
	if IsKernelAddr(vaddr) || m.isShared(vaddr) {
		pid = KernelPID
	}
	t := m.tables[pid]
	if t == nil {
		return 0, false
	}
	pfn, ok = t[VPN(vaddr)]
	return pfn, ok
}
