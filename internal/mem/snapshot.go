// Checkpoint serialization and auditor accessors for the memory model.
package mem

import "sort"

// PTE is one serialized page-table entry.
type PTE struct {
	PID uint64
	VPN uint64
	PFN uint64
}

// Mapping describes one frame's owner (serialized owners[] entry).
type Mapping struct {
	PID uint64
	VPN uint64
}

// SharedRange is one serialized shared user range.
type SharedRange struct {
	Base, End uint64
}

// RSSEntry is one process's serialized resident-set count.
type RSSEntry struct {
	PID   uint64
	Pages uint64
}

// Snapshot captures all mutable memory state.
type Snapshot struct {
	Shared     []SharedRange
	NextFrame  uint64
	Free       []uint64
	Owners     []Mapping
	FIFO       []uint64
	FIFOHead   int
	Ref        []uint64 // pfns with the referenced bit set, sorted
	Dirty      []uint64
	Evict      []Eviction
	RSS        []RSSEntry
	Limit      uint64
	Tables     []PTE
	Reserved   uint64
	Allocs     uint64
	Reclaims   uint64
	Refills    uint64
	Unmappings uint64

	ReclaimScans    uint64
	SecondChances   uint64
	LimitOverruns   uint64
	RSSHighwater    uint64
	FramesHighwater uint64
}

// Snapshot returns the memory's complete mutable state. Page tables are
// emitted in (pid, vpn) sorted order so the serialized bytes of a
// deterministic run are themselves deterministic.
func (m *Memory) Snapshot() Snapshot {
	s := Snapshot{
		NextFrame:  m.nextFrame,
		Free:       append([]uint64(nil), m.free...),
		Owners:     make([]Mapping, len(m.owners)),
		FIFO:       append([]uint64(nil), m.fifo...),
		FIFOHead:   m.fifoHead,
		Dirty:      append([]uint64(nil), m.dirty...),
		Evict:      append([]Eviction(nil), m.evict...),
		Limit:      m.limit,
		Reserved:   m.reserved,
		Allocs:     m.Allocs,
		Reclaims:   m.Reclaims,
		Refills:    m.Refills,
		Unmappings: m.Unmappings,

		ReclaimScans:    m.ReclaimScans,
		SecondChances:   m.SecondChances,
		LimitOverruns:   m.LimitOverruns,
		RSSHighwater:    m.RSSHighwater,
		FramesHighwater: m.FramesHighwater,
	}
	for _, r := range m.shared {
		s.Shared = append(s.Shared, SharedRange{Base: r.base, End: r.end})
	}
	for i, o := range m.owners {
		s.Owners[i] = Mapping{PID: o.pid, VPN: o.vpn}
	}
	for pfn, r := range m.ref {
		if r {
			s.Ref = append(s.Ref, uint64(pfn))
		}
	}
	for pid, pages := range m.rss {
		s.RSS = append(s.RSS, RSSEntry{PID: pid, Pages: pages})
	}
	sort.Slice(s.RSS, func(i, j int) bool { return s.RSS[i].PID < s.RSS[j].PID })
	for pid, t := range m.tables {
		for vpn, pfn := range t {
			s.Tables = append(s.Tables, PTE{PID: pid, VPN: vpn, PFN: pfn})
		}
	}
	sort.Slice(s.Tables, func(i, j int) bool {
		if s.Tables[i].PID != s.Tables[j].PID {
			return s.Tables[i].PID < s.Tables[j].PID
		}
		return s.Tables[i].VPN < s.Tables[j].VPN
	})
	return s
}

// Restore overwrites the memory's state from a snapshot taken on a Memory of
// the same physical size.
func (m *Memory) Restore(s Snapshot) {
	if uint64(len(s.Owners)) != m.frames {
		panic("mem: snapshot geometry mismatch")
	}
	m.shared = m.shared[:0]
	for _, r := range s.Shared {
		m.shared = append(m.shared, struct{ base, end uint64 }{r.Base, r.End})
	}
	m.nextFrame = s.NextFrame
	m.free = append(m.free[:0], s.Free...)
	for i, o := range s.Owners {
		m.owners[i] = mapping{pid: o.PID, vpn: o.VPN}
	}
	m.fifo = append(m.fifo[:0], s.FIFO...)
	m.fifoHead = s.FIFOHead
	for i := range m.ref {
		m.ref[i] = false
	}
	for _, pfn := range s.Ref {
		m.ref[pfn] = true
	}
	m.dirty = append(m.dirty[:0], s.Dirty...)
	m.evict = append(m.evict[:0], s.Evict...)
	m.rss = make(map[uint64]uint64, len(s.RSS))
	for _, e := range s.RSS {
		m.rss[e.PID] = e.Pages
	}
	m.limit = s.Limit
	m.tables = make(map[uint64]map[uint64]uint64)
	for _, e := range s.Tables {
		t := m.tables[e.PID]
		if t == nil {
			t = make(map[uint64]uint64)
			m.tables[e.PID] = t
		}
		t[e.VPN] = e.PFN
	}
	m.reserved = s.Reserved
	m.Allocs = s.Allocs
	m.Reclaims = s.Reclaims
	m.Refills = s.Refills
	m.Unmappings = s.Unmappings
	m.ReclaimScans = s.ReclaimScans
	m.SecondChances = s.SecondChances
	m.LimitOverruns = s.LimitOverruns
	m.RSSHighwater = s.RSSHighwater
	m.FramesHighwater = s.FramesHighwater
}

// AllMappings returns every page-table entry in (pid, vpn) sorted order
// (auditor access).
func (m *Memory) AllMappings() []PTE {
	var out []PTE
	for pid, t := range m.tables {
		for vpn, pfn := range t {
			out = append(out, PTE{PID: pid, VPN: vpn, PFN: pfn})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PID != out[j].PID {
			return out[i].PID < out[j].PID
		}
		return out[i].VPN < out[j].VPN
	})
	return out
}

// FreeFrames returns a copy of the free list (auditor access).
func (m *Memory) FreeFrames() []uint64 {
	return append([]uint64(nil), m.free...)
}

// DirtyFrames returns a copy of the reclaimer's staged-eviction list
// (auditor access).
func (m *Memory) DirtyFrames() []uint64 {
	return append([]uint64(nil), m.dirty...)
}

// RSSEntries returns every process's resident-set count in PID order
// (auditor access).
func (m *Memory) RSSEntries() []RSSEntry {
	out := make([]RSSEntry, 0, len(m.rss))
	for pid, pages := range m.rss {
		out = append(out, RSSEntry{PID: pid, Pages: pages})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// TablePIDs returns the PIDs that currently own a page table with at least
// one mapping, sorted (auditor access).
func (m *Memory) TablePIDs() []uint64 {
	var out []uint64
	for pid, t := range m.tables {
		if len(t) > 0 {
			out = append(out, pid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Peek returns the physical frame mapped at (pid, vaddr), if any, without
// creating tables or mappings (auditor access; Translate would instantiate
// an empty page table for an unknown pid).
func (m *Memory) Peek(pid uint64, vaddr uint64) (pfn uint64, ok bool) {
	if IsKernelAddr(vaddr) || m.isShared(vaddr) {
		pid = KernelPID
	}
	t := m.tables[pid]
	if t == nil {
		return 0, false
	}
	pfn, ok = t[VPN(vaddr)]
	return pfn, ok
}
