package mem

import (
	"testing"
	"testing/quick"
)

func TestNewMemoryRejectsTiny(t *testing.T) {
	if _, err := NewMemory(100); err == nil {
		t.Fatal("expected error for sub-page memory")
	}
}

func TestTouchThenTranslate(t *testing.T) {
	m, err := NewMemory(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	va := uint64(UserDataBase + 0x1234)
	if _, ok := m.Translate(5, va); ok {
		t.Fatal("unmapped address translated")
	}
	pa, kind := m.Touch(5, va)
	if kind != FaultPageAlloc {
		t.Fatalf("first touch kind = %v, want page-alloc", kind)
	}
	if pa&PageMask != va&PageMask {
		t.Fatal("page offset not preserved")
	}
	pa2, ok := m.Translate(5, va)
	if !ok || pa2 != pa {
		t.Fatalf("Translate = %#x,%v; want %#x,true", pa2, ok, pa)
	}
	// Second touch is a refill only.
	_, kind = m.Touch(5, va+8)
	if kind != FaultNone {
		t.Fatalf("second touch kind = %v, want tlb-refill", kind)
	}
	if m.Allocs != 1 || m.Refills != 1 {
		t.Fatalf("counters: allocs=%d refills=%d", m.Allocs, m.Refills)
	}
}

func TestProcessIsolation(t *testing.T) {
	m, _ := NewMemory(1 << 20)
	va := uint64(UserDataBase + 0x40)
	pa1, _ := m.Touch(1, va)
	pa2, _ := m.Touch(2, va)
	if pa1 == pa2 {
		t.Fatal("two processes share a frame for the same user vaddr")
	}
}

func TestKernelRegionShared(t *testing.T) {
	m, _ := NewMemory(1 << 20)
	va := uint64(KernelTextBase + 0x100)
	pa1, _ := m.Touch(1, va)
	pa2, kind := m.Touch(2, va)
	if pa1 != pa2 {
		t.Fatal("kernel address not shared across processes")
	}
	if kind != FaultNone {
		t.Fatal("second process touching shared kernel page should refill")
	}
}

func TestReclaimUnderPressure(t *testing.T) {
	// 16 frames total.
	m, _ := NewMemory(16 * PageSize)
	for i := uint64(0); i < 16; i++ {
		if _, kind := m.Touch(1, UserDataBase+i*PageSize); kind != FaultPageAlloc {
			t.Fatalf("frame %d: kind %v", i, kind)
		}
	}
	_, kind := m.Touch(1, UserDataBase+16*PageSize)
	if kind != FaultReclaim {
		t.Fatalf("kind = %v, want page-reclaim", kind)
	}
	// The oldest page (index 0) should have been evicted.
	if _, ok := m.Translate(1, UserDataBase); ok {
		t.Fatal("oldest page still mapped after reclaim")
	}
	if m.Reclaims != 1 {
		t.Fatalf("Reclaims = %d", m.Reclaims)
	}
}

func TestUnmapAndReuse(t *testing.T) {
	m, _ := NewMemory(1 << 20)
	va := uint64(UserDataBase)
	m.Touch(3, va)
	if !m.Unmap(3, va) {
		t.Fatal("Unmap failed")
	}
	if m.Unmap(3, va) {
		t.Fatal("double Unmap succeeded")
	}
	if _, ok := m.Translate(3, va); ok {
		t.Fatal("unmapped page still translates")
	}
	inUse := m.FramesInUse()
	m.Touch(3, va+PageSize)
	if m.FramesInUse() != inUse+1 {
		t.Fatal("freed frame not reused from free list accounting")
	}
}

func TestReleaseProcess(t *testing.T) {
	m, _ := NewMemory(1 << 20)
	for i := uint64(0); i < 10; i++ {
		m.Touch(7, UserDataBase+i*PageSize)
	}
	m.Touch(7, KernelTextBase) // kernel page must survive
	if n := m.ReleaseProcess(7); n != 10 {
		t.Fatalf("released %d pages, want 10", n)
	}
	if m.MappedPages(7) != 0 {
		t.Fatal("user pages remain after release")
	}
	if _, ok := m.Translate(7, KernelTextBase); !ok {
		t.Fatal("kernel page lost on process release")
	}
}

func TestReleaseKernelPIDIsNoop(t *testing.T) {
	m, _ := NewMemory(1 << 20)
	m.Touch(1, KernelTextBase)
	if n := m.ReleaseProcess(KernelPID); n != 0 {
		t.Fatalf("released %d kernel pages", n)
	}
}

// Property: translation is stable and offset-preserving for any address,
// and two touches of the same page yield the same frame.
func TestTranslateProperties(t *testing.T) {
	m, _ := NewMemory(1 << 22)
	f := func(off uint32, pidSel uint8) bool {
		pid := uint64(pidSel%4) + 1
		va := UserDataBase + uint64(off)
		pa1, _ := m.Touch(pid, va)
		pa2, ok := m.Translate(pid, va)
		if !ok || pa1 != pa2 {
			return false
		}
		if pa1&PageMask != va&PageMask {
			return false
		}
		paSame, _ := m.Touch(pid, (va&^uint64(PageMask))|0x7)
		return paSame>>PageShift == pa1>>PageShift
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIsKernelAddr(t *testing.T) {
	if IsKernelAddr(UserTextBase) || IsKernelAddr(UserStackBase) {
		t.Fatal("user address classified as kernel")
	}
	if !IsKernelAddr(KernelTextBase) || !IsKernelAddr(PALTextBase) || !IsKernelAddr(KernelDataBase) {
		t.Fatal("kernel address not classified as kernel")
	}
}

func TestFaultKindString(t *testing.T) {
	if FaultNone.String() != "tlb-refill" || FaultPageAlloc.String() != "page-alloc" ||
		FaultReclaim.String() != "page-reclaim" {
		t.Fatal("FaultKind strings wrong")
	}
	if FaultKind(9).String() == "" {
		t.Fatal("unknown kind should stringify")
	}
}

func TestExhaustionRecyclesForever(t *testing.T) {
	m, _ := NewMemory(8 * PageSize)
	for i := uint64(0); i < 100; i++ {
		m.Touch(1, UserDataBase+i*PageSize)
	}
	if m.FramesInUse() > 8 {
		t.Fatalf("in use %d > 8 frames", m.FramesInUse())
	}
	if m.Reclaims == 0 {
		t.Fatal("no reclaims recorded under heavy pressure")
	}
}

func TestSharedRange(t *testing.T) {
	m, _ := NewMemory(1 << 20)
	base := uint64(UserTextBase)
	m.ShareRange(base, 4*PageSize)
	pa1, _ := m.Touch(1, base+100)
	pa2, kind := m.Touch(2, base+100)
	if pa1 != pa2 {
		t.Fatal("shared range not shared across processes")
	}
	if kind != FaultNone {
		t.Fatal("second process should refill, not allocate")
	}
	// Outside the range stays private.
	p1, _ := m.Touch(1, base+10*PageSize)
	p2, _ := m.Touch(2, base+10*PageSize)
	if p1 == p2 {
		t.Fatal("private pages shared")
	}
}
