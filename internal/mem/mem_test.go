package mem

import (
	"testing"
	"testing/quick"
)

func TestNewMemoryRejectsTiny(t *testing.T) {
	if _, err := NewMemory(100); err == nil {
		t.Fatal("expected error for sub-page memory")
	}
}

func TestTouchThenTranslate(t *testing.T) {
	m, err := NewMemory(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	va := uint64(UserDataBase + 0x1234)
	if _, ok := m.Translate(5, va); ok {
		t.Fatal("unmapped address translated")
	}
	pa, kind := m.Touch(5, va)
	if kind != FaultPageAlloc {
		t.Fatalf("first touch kind = %v, want page-alloc", kind)
	}
	if pa&PageMask != va&PageMask {
		t.Fatal("page offset not preserved")
	}
	pa2, ok := m.Translate(5, va)
	if !ok || pa2 != pa {
		t.Fatalf("Translate = %#x,%v; want %#x,true", pa2, ok, pa)
	}
	// Second touch is a refill only.
	_, kind = m.Touch(5, va+8)
	if kind != FaultNone {
		t.Fatalf("second touch kind = %v, want tlb-refill", kind)
	}
	if m.Allocs != 1 || m.Refills != 1 {
		t.Fatalf("counters: allocs=%d refills=%d", m.Allocs, m.Refills)
	}
}

func TestProcessIsolation(t *testing.T) {
	m, _ := NewMemory(1 << 20)
	va := uint64(UserDataBase + 0x40)
	pa1, _ := m.Touch(1, va)
	pa2, _ := m.Touch(2, va)
	if pa1 == pa2 {
		t.Fatal("two processes share a frame for the same user vaddr")
	}
}

func TestKernelRegionShared(t *testing.T) {
	m, _ := NewMemory(1 << 20)
	va := uint64(KernelTextBase + 0x100)
	pa1, _ := m.Touch(1, va)
	pa2, kind := m.Touch(2, va)
	if pa1 != pa2 {
		t.Fatal("kernel address not shared across processes")
	}
	if kind != FaultNone {
		t.Fatal("second process touching shared kernel page should refill")
	}
}

func TestReclaimUnderPressure(t *testing.T) {
	// 16 frames total.
	m, _ := NewMemory(16 * PageSize)
	for i := uint64(0); i < 16; i++ {
		if _, kind := m.Touch(1, UserDataBase+i*PageSize); kind != FaultPageAlloc {
			t.Fatalf("frame %d: kind %v", i, kind)
		}
	}
	_, kind := m.Touch(1, UserDataBase+16*PageSize)
	if kind != FaultReclaim {
		t.Fatalf("kind = %v, want page-reclaim", kind)
	}
	// The oldest page (index 0) should have been evicted.
	if _, ok := m.Translate(1, UserDataBase); ok {
		t.Fatal("oldest page still mapped after reclaim")
	}
	if m.Reclaims != 1 {
		t.Fatalf("Reclaims = %d", m.Reclaims)
	}
}

func TestUnmapAndReuse(t *testing.T) {
	m, _ := NewMemory(1 << 20)
	va := uint64(UserDataBase)
	m.Touch(3, va)
	if !m.Unmap(3, va) {
		t.Fatal("Unmap failed")
	}
	if m.Unmap(3, va) {
		t.Fatal("double Unmap succeeded")
	}
	if _, ok := m.Translate(3, va); ok {
		t.Fatal("unmapped page still translates")
	}
	inUse := m.FramesInUse()
	m.Touch(3, va+PageSize)
	if m.FramesInUse() != inUse+1 {
		t.Fatal("freed frame not reused from free list accounting")
	}
}

func TestReleaseProcess(t *testing.T) {
	m, _ := NewMemory(1 << 20)
	for i := uint64(0); i < 10; i++ {
		m.Touch(7, UserDataBase+i*PageSize)
	}
	m.Touch(7, KernelTextBase) // kernel page must survive
	if n := m.ReleaseProcess(7); n != 10 {
		t.Fatalf("released %d pages, want 10", n)
	}
	if m.MappedPages(7) != 0 {
		t.Fatal("user pages remain after release")
	}
	if _, ok := m.Translate(7, KernelTextBase); !ok {
		t.Fatal("kernel page lost on process release")
	}
}

func TestReleaseKernelPIDIsNoop(t *testing.T) {
	m, _ := NewMemory(1 << 20)
	m.Touch(1, KernelTextBase)
	if n := m.ReleaseProcess(KernelPID); n != 0 {
		t.Fatalf("released %d kernel pages", n)
	}
}

// Property: translation is stable and offset-preserving for any address,
// and two touches of the same page yield the same frame.
func TestTranslateProperties(t *testing.T) {
	m, _ := NewMemory(1 << 22)
	f := func(off uint32, pidSel uint8) bool {
		pid := uint64(pidSel%4) + 1
		va := UserDataBase + uint64(off)
		pa1, _ := m.Touch(pid, va)
		pa2, ok := m.Translate(pid, va)
		if !ok || pa1 != pa2 {
			return false
		}
		if pa1&PageMask != va&PageMask {
			return false
		}
		paSame, _ := m.Touch(pid, (va&^uint64(PageMask))|0x7)
		return paSame>>PageShift == pa1>>PageShift
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIsKernelAddr(t *testing.T) {
	if IsKernelAddr(UserTextBase) || IsKernelAddr(UserStackBase) {
		t.Fatal("user address classified as kernel")
	}
	if !IsKernelAddr(KernelTextBase) || !IsKernelAddr(PALTextBase) || !IsKernelAddr(KernelDataBase) {
		t.Fatal("kernel address not classified as kernel")
	}
}

func TestFaultKindString(t *testing.T) {
	if FaultNone.String() != "tlb-refill" || FaultPageAlloc.String() != "page-alloc" ||
		FaultReclaim.String() != "page-reclaim" {
		t.Fatal("FaultKind strings wrong")
	}
	if FaultKind(9).String() == "" {
		t.Fatal("unknown kind should stringify")
	}
}

func TestExhaustionRecyclesForever(t *testing.T) {
	m, _ := NewMemory(8 * PageSize)
	for i := uint64(0); i < 100; i++ {
		m.Touch(1, UserDataBase+i*PageSize)
	}
	if m.FramesInUse() > 8 {
		t.Fatalf("in use %d > 8 frames", m.FramesInUse())
	}
	if m.Reclaims == 0 {
		t.Fatal("no reclaims recorded under heavy pressure")
	}
}

// Regression (ReleaseProcess vs shared text): a shared text frame mapped by
// live processes is pinned — reclaim must never evict it, even when one of
// the sharing processes has exited and heavy pressure forces every private
// page through the reclaimer.
func TestReclaimNeverEvictsSharedText(t *testing.T) {
	m, _ := NewMemory(16 * PageSize)
	base := uint64(UserTextBase)
	m.ShareRange(base, 2*PageSize)
	m.Touch(1, base)          // shared text, charged to KernelPID
	m.Touch(1, base+PageSize) // second shared text page
	m.Touch(2, base)          // pid 2 maps the same frames (refill)
	sharedPA, ok := m.Translate(2, base)
	if !ok {
		t.Fatal("shared text not mapped")
	}
	// pid 1 exits; pid 2 lives on, still executing the shared text.
	for i := uint64(0); i < 4; i++ {
		m.Touch(1, UserDataBase+i*PageSize)
	}
	m.ReleaseProcess(1)
	// Drive far more private allocations through pid 2 than there are
	// frames, forcing reclaim to cycle the whole paged pool repeatedly.
	for i := uint64(0); i < 64; i++ {
		m.Touch(2, UserDataBase+PIDStride+i*PageSize)
	}
	if m.Reclaims == 0 {
		t.Fatal("pressure loop never reclaimed")
	}
	pa, ok := m.Translate(2, base)
	if !ok {
		t.Fatal("shared text frame evicted while still mapped by a live process")
	}
	if pa != sharedPA {
		t.Fatalf("shared text moved: %#x -> %#x", sharedPA, pa)
	}
}

// Regression (ReleaseProcess determinism): released frames re-enter the
// free list in sorted frame order regardless of map iteration order, and
// feed subsequent allocations LIFO from that order.
func TestReleaseProcessFreeOrderDeterministic(t *testing.T) {
	alloc := func() (*Memory, []uint64) {
		m, _ := NewMemory(1 << 20)
		// Interleave two processes so pid 9's frames are non-contiguous.
		for i := uint64(0); i < 6; i++ {
			m.Touch(9, UserDataBase+i*PageSize)
			m.Touch(4, UserDataBase+i*PageSize)
		}
		m.ReleaseProcess(9)
		return m, m.FreeFrames()
	}
	m1, f1 := alloc()
	_, f2 := alloc()
	if len(f1) != 6 {
		t.Fatalf("free list has %d frames, want 6", len(f1))
	}
	for i := 1; i < len(f1); i++ {
		if f1[i-1] >= f1[i] {
			t.Fatalf("free list not sorted: %v", f1)
		}
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("free order differs across identical runs: %v vs %v", f1, f2)
		}
	}
	// The next allocation must consume the highest freed frame (LIFO).
	want := f1[len(f1)-1]
	pa, _ := m1.Touch(11, UserDataBase)
	if pa>>PageShift != want {
		t.Fatalf("reused frame %d, want %d", pa>>PageShift, want)
	}
}

// Second chance: a page referenced after its first queue pass survives the
// next reclaim scan; the unreferenced one behind it is evicted instead.
func TestSecondChanceSparesReferencedPage(t *testing.T) {
	m, _ := NewMemory(4 * PageSize)
	for i := uint64(0); i < 4; i++ {
		m.Touch(1, UserDataBase+i*PageSize)
	}
	// First overflow: one full clearing pass, then page 0 is evicted.
	m.Touch(1, UserDataBase+4*PageSize)
	if _, ok := m.Translate(1, UserDataBase); ok {
		t.Fatal("page 0 should have been evicted")
	}
	// Re-reference page 1 (sets its ref bit); page 2 stays cold.
	m.Touch(1, UserDataBase+1*PageSize)
	m.Touch(1, UserDataBase+5*PageSize)
	if _, ok := m.Translate(1, UserDataBase+1*PageSize); !ok {
		t.Fatal("referenced page evicted despite second chance")
	}
	if _, ok := m.Translate(1, UserDataBase+2*PageSize); ok {
		t.Fatal("cold page 2 should have been the victim")
	}
	if m.SecondChances == 0 {
		t.Fatal("no second chances recorded")
	}
}

func TestFrameLimitCapsUsage(t *testing.T) {
	m, _ := NewMemory(1 << 20) // 128 frames
	m.Touch(1, KernelTextBase) // kernel resident set: 1 page
	applied := m.SetFrameLimit(80)
	if applied != 80 {
		t.Fatalf("applied limit %d, want 80", applied)
	}
	for i := uint64(0); i < 120; i++ {
		m.Touch(1, UserDataBase+i*PageSize)
	}
	// In use may exceed the limit only by the reclaimer's staged batch.
	if got := m.FramesInUse(); got > 80 {
		t.Fatalf("frames in use %d exceeds limit 80", got)
	}
	if m.Reclaims == 0 {
		t.Fatal("limit pressure produced no reclaims")
	}
	if m.nextFrame >= m.frames {
		t.Fatal("bump pointer ran to the physical wall despite the limit")
	}
	// The floor clamp refuses a limit below kernel RSS + minUserFrames.
	if got := m.SetFrameLimit(1); got != m.RSS(KernelPID)+minUserFrames {
		t.Fatalf("floor clamp applied %d", got)
	}
	if m.SetFrameLimit(0) != 0 || m.FrameLimit() != 0 {
		t.Fatal("limit removal failed")
	}
}

func TestRSSAccounting(t *testing.T) {
	m, _ := NewMemory(1 << 20)
	m.ShareRange(UserTextBase, 2*PageSize)
	m.Touch(5, UserTextBase) // charged to KernelPID
	for i := uint64(0); i < 8; i++ {
		m.Touch(5, UserDataBase+i*PageSize)
	}
	if got := m.RSS(5); got != 8 {
		t.Fatalf("RSS(5) = %d, want 8", got)
	}
	if got := m.RSS(KernelPID); got != 1 {
		t.Fatalf("kernel RSS = %d, want 1", got)
	}
	if m.RSSHighwater != 8 {
		t.Fatalf("RSSHighwater = %d, want 8", m.RSSHighwater)
	}
	m.Unmap(5, UserDataBase)
	if got := m.RSS(5); got != 7 {
		t.Fatalf("RSS(5) after unmap = %d, want 7", got)
	}
	m.ReleaseProcess(5)
	if got := m.RSS(5); got != 0 {
		t.Fatalf("RSS(5) after release = %d, want 0", got)
	}
	// Sum of RSS entries equals frames in use.
	var sum uint64
	for _, e := range m.RSSEntries() {
		sum += e.Pages
	}
	if sum != m.FramesInUse() {
		t.Fatalf("RSS sum %d != frames in use %d", sum, m.FramesInUse())
	}
}

func TestTakeEvictionsDrains(t *testing.T) {
	m, _ := NewMemory(4 * PageSize)
	for i := uint64(0); i < 5; i++ {
		m.Touch(1, UserDataBase+i*PageSize)
	}
	evs := m.TakeEvictions()
	if len(evs) != 1 {
		t.Fatalf("%d evictions recorded, want 1", len(evs))
	}
	if evs[0].PID != 1 || evs[0].VPN != VPN(UserDataBase) {
		t.Fatalf("eviction = %+v, want pid 1 vpn of page 0", evs[0])
	}
	if m.TakeEvictions() != nil {
		t.Fatal("second TakeEvictions not empty")
	}
}

func TestSnapshotRoundTripPressureState(t *testing.T) {
	m, _ := NewMemory(8 * PageSize)
	m.SetFrameLimit(7)
	for i := uint64(0); i < 12; i++ {
		m.Touch(3, UserDataBase+i*PageSize)
	}
	s := m.Snapshot()
	m2, _ := NewMemory(8 * PageSize)
	m2.Restore(s)
	// Identical state must produce identical snapshots and identical
	// behavior on the next pressure event.
	s2 := m2.Snapshot()
	if len(s2.RSS) != len(s.RSS) || len(s2.Ref) != len(s.Ref) ||
		len(s2.Dirty) != len(s.Dirty) || s2.Limit != s.Limit ||
		s2.SecondChances != s.SecondChances || s2.FramesHighwater != s.FramesHighwater {
		t.Fatalf("snapshot round trip differs:\n%+v\n%+v", s, s2)
	}
	pa1, k1 := m.Touch(3, UserDataBase+20*PageSize)
	pa2, k2 := m2.Touch(3, UserDataBase+20*PageSize)
	if pa1 != pa2 || k1 != k2 {
		t.Fatalf("post-restore divergence: %#x/%v vs %#x/%v", pa1, k1, pa2, k2)
	}
}

func TestSharedRange(t *testing.T) {
	m, _ := NewMemory(1 << 20)
	base := uint64(UserTextBase)
	m.ShareRange(base, 4*PageSize)
	pa1, _ := m.Touch(1, base+100)
	pa2, kind := m.Touch(2, base+100)
	if pa1 != pa2 {
		t.Fatal("shared range not shared across processes")
	}
	if kind != FaultNone {
		t.Fatal("second process should refill, not allocate")
	}
	// Outside the range stays private.
	p1, _ := m.Touch(1, base+10*PageSize)
	p2, _ := m.Touch(2, base+10*PageSize)
	if p1 == p2 {
		t.Fatal("private pages shared")
	}
}
