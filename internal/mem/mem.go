// Package mem models the machine's physical memory and per-process virtual
// address spaces: page tables, a physical-frame allocator, and the
// translation step used by the TLB-refill path of the behavioral kernel.
//
// The simulated machine follows the paper's Table 1: 128 MB of physical
// memory. Pages are 8 KB, as on the Alpha 21264. Virtual-to-physical
// mappings are created on first touch by the kernel's memory-management
// model — first-touch page allocation is what dominates the kernel
// memory-management entries of the paper's Figure 3.
package mem

import (
	"fmt"
	"sort"
)

const (
	// PageShift is log2 of the page size (8 KB pages, as on Alpha).
	PageShift = 13
	// PageSize is the virtual-memory page size in bytes.
	PageSize = 1 << PageShift
	// PageMask masks the offset within a page.
	PageMask = PageSize - 1
)

// VPN returns the virtual page number of a virtual address.
func VPN(vaddr uint64) uint64 { return vaddr >> PageShift }

// FrameBase returns the first physical address of a physical frame number.
func FrameBase(pfn uint64) uint64 { return pfn << PageShift }

// Canonical address-space layout used by the synthetic workloads. Each
// process's regions are offset by its PID so that distinct processes have
// distinct virtual PCs and data addresses (they also map to distinct
// physical frames).
const (
	// UserTextBase is the base virtual address of user program text.
	UserTextBase = 0x0000_0001_2000_0000
	// UserDataBase is the base virtual address of user data/heap.
	UserDataBase = 0x0000_0002_0000_0000
	// UserStackBase is the base virtual address of user stacks.
	UserStackBase = 0x0000_0003_f000_0000
	// PIDStride separates the address regions of different processes.
	PIDStride = 0x0000_0010_0000_0000

	// KernelTextBase is the base of the (shared, globally mapped) kernel
	// text region, mimicking the Alpha's high kseg addresses.
	KernelTextBase = 0xffff_fc00_0000_0000
	// KernelDataBase is the base of kernel data structures.
	KernelDataBase = 0xffff_fd00_0000_0000
	// PALTextBase is the base of PALcode, below the OS proper.
	PALTextBase = 0xffff_fe00_0000_0000
)

// KernelPID is the process ID that owns the shared kernel address space.
const KernelPID = 0

// Physical-memory layout of the simulated 128 MB machine (Table 1). The
// page allocator hands out frames below KernelPhysBase; the ranges above it
// are reserved for the kernel's directly (physically) addressed data and
// for PALcode, mirroring how Alpha PAL and kseg data sit outside the paged
// pool.
const (
	// PhysMemBytes is the machine's physical memory size.
	PhysMemBytes = 128 << 20
	// AllocatorBytes is the portion managed by the page allocator.
	AllocatorBytes = 96 << 20
	// KernelPhysBase..KernelPhysBase+KernelPhysSize is the kernel's
	// physically-addressed data region (TLB-bypassing accesses).
	KernelPhysBase = 96 << 20
	// KernelPhysSize is the size of the kernel physical data region.
	KernelPhysSize = 28 << 20
	// PALPhysBase..PALPhysBase+PALPhysSize holds PALcode text.
	PALPhysBase = 124 << 20
	// PALPhysSize is the size of the PAL text region.
	PALPhysSize = 4 << 20
)

// IsKernelAddr reports whether a virtual address lies in the shared kernel
// (or PAL) region.
func IsKernelAddr(vaddr uint64) bool { return vaddr >= KernelTextBase }

// FaultKind classifies why the kernel VM model was entered for an address,
// feeding the paper's Figure 3 (incursions into kernel memory management).
type FaultKind uint8

const (
	// FaultNone: the mapping already existed; only a TLB refill was needed.
	FaultNone FaultKind = iota
	// FaultPageAlloc: first touch; a physical frame was allocated.
	FaultPageAlloc
	// FaultReclaim: allocation required reclaiming a frame from another
	// mapping (memory pressure).
	FaultReclaim
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "tlb-refill"
	case FaultPageAlloc:
		return "page-alloc"
	case FaultReclaim:
		return "page-reclaim"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// mapping records one virtual page's frame, for reclaim bookkeeping.
type mapping struct {
	pid uint64
	vpn uint64
}

// Memory is the machine's physical memory plus all page tables.
type Memory struct {
	// shared lists user-space address ranges whose mappings are common to
	// all processes (e.g. the text of a forked server: all Apache
	// processes execute one set of physical pages).
	shared []struct{ base, end uint64 }

	frames     uint64 //detlint:ignore snapshotcomplete geometry fixed at construction; Restore panics on mismatch
	nextFrame  uint64 // bump pointer
	free       []uint64
	owners     []mapping // indexed by pfn: current owner, for reclaim
	fifo       []uint64  // allocation order, for FIFO reclaim
	fifoHead   int
	tables     map[uint64]map[uint64]uint64 // pid -> vpn -> pfn
	reserved   uint64                       // frames reserved for kernel text/data
	Allocs     uint64                       // frames allocated (Figure 3: page allocation)
	Reclaims   uint64                       // frames reclaimed under pressure
	Refills    uint64                       // translations that only refilled the TLB
	Unmappings uint64                       // explicit unmaps (munmap, exit)
}

// NewMemory returns a Memory with the given physical size in bytes.
// Sizes below one page are rejected.
func NewMemory(physBytes uint64) (*Memory, error) {
	if physBytes < PageSize {
		return nil, fmt.Errorf("mem: physical size %d smaller than one page", physBytes)
	}
	m := &Memory{
		frames: physBytes >> PageShift,
		tables: make(map[uint64]map[uint64]uint64),
	}
	m.owners = make([]mapping, m.frames)
	return m, nil
}

// Frames returns the number of physical frames.
func (m *Memory) Frames() uint64 { return m.frames }

// FramesInUse returns the number of currently allocated frames.
func (m *Memory) FramesInUse() uint64 {
	return m.nextFrame - uint64(len(m.free))
}

// ShareRange declares [base, base+size) as shared among all processes:
// every process maps those pages to the same frames (forked program text,
// shared libraries).
func (m *Memory) ShareRange(base, size uint64) {
	m.shared = append(m.shared, struct{ base, end uint64 }{base, base + size})
}

// isShared reports whether vaddr falls in a shared user range.
func (m *Memory) isShared(vaddr uint64) bool {
	for _, r := range m.shared {
		if vaddr >= r.base && vaddr < r.end {
			return true
		}
	}
	return false
}

// table returns (creating if needed) the page table for pid. Kernel-region
// addresses and shared user ranges always use the shared kernel table
// regardless of pid.
func (m *Memory) table(pid uint64, vaddr uint64) (uint64, map[uint64]uint64) {
	if IsKernelAddr(vaddr) || m.isShared(vaddr) {
		pid = KernelPID
	}
	t := m.tables[pid]
	if t == nil {
		t = make(map[uint64]uint64)
		m.tables[pid] = t
	}
	return pid, t
}

// Translate looks up the physical address for (pid, vaddr). ok is false if
// the page is not mapped; the caller (the kernel VM model) must then call
// Touch to establish the mapping.
func (m *Memory) Translate(pid uint64, vaddr uint64) (paddr uint64, ok bool) {
	_, t := m.table(pid, vaddr)
	pfn, ok := t[VPN(vaddr)]
	if !ok {
		return 0, false
	}
	return FrameBase(pfn) | (vaddr & PageMask), true
}

// Touch ensures (pid, vaddr) is mapped, allocating (and if necessary
// reclaiming) a frame, and returns the physical address plus the kind of
// memory-management work that was required. This is the operation the
// kernel's page-fault / TLB-miss path performs.
func (m *Memory) Touch(pid uint64, vaddr uint64) (paddr uint64, kind FaultKind) {
	owner, t := m.table(pid, vaddr)
	vpn := VPN(vaddr)
	if pfn, ok := t[vpn]; ok {
		m.Refills++
		return FrameBase(pfn) | (vaddr & PageMask), FaultNone
	}
	pfn, reclaimed := m.allocFrame()
	t[vpn] = pfn
	m.owners[pfn] = mapping{pid: owner, vpn: vpn}
	m.fifo = append(m.fifo, pfn)
	kind = FaultPageAlloc
	m.Allocs++
	if reclaimed {
		kind = FaultReclaim
		m.Reclaims++
	}
	return FrameBase(pfn) | (vaddr & PageMask), kind
}

// allocFrame returns a free frame, reclaiming the oldest allocation (FIFO)
// when physical memory is exhausted — a deliberately simple model of paging
// under pressure (the paper simulates a zero-latency disk, so reclaim cost
// is the kernel code executed, not disk time).
func (m *Memory) allocFrame() (pfn uint64, reclaimed bool) {
	if n := len(m.free); n > 0 {
		pfn = m.free[n-1]
		m.free = m.free[:n-1]
		return pfn, false
	}
	if m.nextFrame < m.frames {
		pfn = m.nextFrame
		m.nextFrame++
		return pfn, false
	}
	// Reclaim the oldest mapped frame.
	for m.fifoHead < len(m.fifo) {
		victim := m.fifo[m.fifoHead]
		m.fifoHead++
		own := m.owners[victim]
		t := m.tables[own.pid]
		if t != nil {
			if cur, ok := t[own.vpn]; ok && cur == victim {
				delete(t, own.vpn)
				return victim, true
			}
		}
	}
	// All fifo entries were stale (unmapped); compact and retry. The frame
	// list is sorted so the rebuilt fifo does not depend on map iteration
	// order (the simulation must be deterministic).
	m.fifo = m.fifo[:0]
	m.fifoHead = 0
	for pid, t := range m.tables {
		for vpn, pfn := range t {
			m.owners[pfn] = mapping{pid: pid, vpn: vpn}
			m.fifo = append(m.fifo, pfn)
		}
	}
	if len(m.fifo) == 0 {
		panic("mem: no frames to reclaim")
	}
	sort.Slice(m.fifo, func(i, j int) bool { return m.fifo[i] < m.fifo[j] })
	victim := m.fifo[0]
	m.fifoHead = 1
	own := m.owners[victim]
	delete(m.tables[own.pid], own.vpn)
	return victim, true
}

// Unmap removes the mapping for one page if present (munmap). The frame
// returns to the free list.
func (m *Memory) Unmap(pid uint64, vaddr uint64) bool {
	_, t := m.table(pid, vaddr)
	vpn := VPN(vaddr)
	pfn, ok := t[vpn]
	if !ok {
		return false
	}
	delete(t, vpn)
	m.free = append(m.free, pfn)
	m.Unmappings++
	return true
}

// ReleaseProcess drops every user-region mapping of a process (exit).
func (m *Memory) ReleaseProcess(pid uint64) int {
	if pid == KernelPID {
		return 0
	}
	t := m.tables[pid]
	// Free frames in sorted page order: map iteration order is randomized,
	// and the free list feeds later allocations, so an unsorted release
	// would make every post-exit allocation nondeterministic.
	pfns := make([]uint64, 0, len(t))
	for _, pfn := range t {
		pfns = append(pfns, pfn)
	}
	sort.Slice(pfns, func(i, j int) bool { return pfns[i] < pfns[j] })
	for vpn := range t {
		delete(t, vpn)
	}
	m.free = append(m.free, pfns...)
	m.Unmappings += uint64(len(pfns))
	return len(pfns)
}

// MappedPages returns the number of pages mapped for pid (kernel uses
// KernelPID).
func (m *Memory) MappedPages(pid uint64) int { return len(m.tables[pid]) }
