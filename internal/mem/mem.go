// Package mem models the machine's physical memory and per-process virtual
// address spaces: page tables, a physical-frame allocator, and the
// translation step used by the TLB-refill path of the behavioral kernel.
//
// The simulated machine follows the paper's Table 1: 128 MB of physical
// memory. Pages are 8 KB, as on the Alpha 21264. Virtual-to-physical
// mappings are created on first touch by the kernel's memory-management
// model — first-touch page allocation is what dominates the kernel
// memory-management entries of the paper's Figure 3.
package mem

import (
	"fmt"
	"sort"
)

const (
	// PageShift is log2 of the page size (8 KB pages, as on Alpha).
	PageShift = 13
	// PageSize is the virtual-memory page size in bytes.
	PageSize = 1 << PageShift
	// PageMask masks the offset within a page.
	PageMask = PageSize - 1
)

// VPN returns the virtual page number of a virtual address.
func VPN(vaddr uint64) uint64 { return vaddr >> PageShift }

// FrameBase returns the first physical address of a physical frame number.
func FrameBase(pfn uint64) uint64 { return pfn << PageShift }

// Canonical address-space layout used by the synthetic workloads. Each
// process's regions are offset by its PID so that distinct processes have
// distinct virtual PCs and data addresses (they also map to distinct
// physical frames).
const (
	// UserTextBase is the base virtual address of user program text.
	UserTextBase = 0x0000_0001_2000_0000
	// UserDataBase is the base virtual address of user data/heap.
	UserDataBase = 0x0000_0002_0000_0000
	// UserStackBase is the base virtual address of user stacks.
	UserStackBase = 0x0000_0003_f000_0000
	// PIDStride separates the address regions of different processes.
	PIDStride = 0x0000_0010_0000_0000

	// KernelTextBase is the base of the (shared, globally mapped) kernel
	// text region, mimicking the Alpha's high kseg addresses.
	KernelTextBase = 0xffff_fc00_0000_0000
	// KernelDataBase is the base of kernel data structures.
	KernelDataBase = 0xffff_fd00_0000_0000
	// PALTextBase is the base of PALcode, below the OS proper.
	PALTextBase = 0xffff_fe00_0000_0000
)

// KernelPID is the process ID that owns the shared kernel address space.
const KernelPID = 0

// Physical-memory layout of the simulated 128 MB machine (Table 1). The
// page allocator hands out frames below KernelPhysBase; the ranges above it
// are reserved for the kernel's directly (physically) addressed data and
// for PALcode, mirroring how Alpha PAL and kseg data sit outside the paged
// pool.
const (
	// PhysMemBytes is the machine's physical memory size.
	PhysMemBytes = 128 << 20
	// AllocatorBytes is the portion managed by the page allocator.
	AllocatorBytes = 96 << 20
	// KernelPhysBase..KernelPhysBase+KernelPhysSize is the kernel's
	// physically-addressed data region (TLB-bypassing accesses).
	KernelPhysBase = 96 << 20
	// KernelPhysSize is the size of the kernel physical data region.
	KernelPhysSize = 28 << 20
	// PALPhysBase..PALPhysBase+PALPhysSize holds PALcode text.
	PALPhysBase = 124 << 20
	// PALPhysSize is the size of the PAL text region.
	PALPhysSize = 4 << 20
)

// IsKernelAddr reports whether a virtual address lies in the shared kernel
// (or PAL) region.
func IsKernelAddr(vaddr uint64) bool { return vaddr >= KernelTextBase }

// FaultKind classifies why the kernel VM model was entered for an address,
// feeding the paper's Figure 3 (incursions into kernel memory management).
type FaultKind uint8

const (
	// FaultNone: the mapping already existed; only a TLB refill was needed.
	FaultNone FaultKind = iota
	// FaultPageAlloc: first touch; a physical frame was allocated.
	FaultPageAlloc
	// FaultReclaim: allocation required reclaiming a frame from another
	// mapping (memory pressure).
	FaultReclaim
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "tlb-refill"
	case FaultPageAlloc:
		return "page-alloc"
	case FaultReclaim:
		return "page-reclaim"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// mapping records one virtual page's frame, for reclaim bookkeeping.
type mapping struct {
	pid uint64
	vpn uint64
}

// Eviction records one page evicted by the reclaimer, so the kernel can
// invalidate the victim's TLB entries and flush its cache lines — the frame
// is about to be handed to a different mapping.
type Eviction struct {
	PID uint64
	VPN uint64
	PFN uint64
}

// Low-watermark reclaim parameters. When an effective frame limit is
// configured (memory pressure from the exhaustion fault domain), the
// reclaimer behaves like a pagedaemon: one scan evicts a batch of victims so
// a small reserve of frames is on hand for the next allocations. Without a
// limit the allocator is at the true physical wall, where a reserve cannot
// help (every freed frame is consumed immediately), so it reclaims exactly
// one frame on demand — the pre-existing behavior.
const (
	lowWaterFrames = 8
	// minUserFrames is the floor of user-available frames SetFrameLimit
	// preserves above the kernel's resident set, so a squeeze can thrash
	// the machine but never wedge it.
	minUserFrames = 64
)

// Memory is the machine's physical memory plus all page tables.
type Memory struct {
	// shared lists user-space address ranges whose mappings are common to
	// all processes (e.g. the text of a forked server: all Apache
	// processes execute one set of physical pages).
	shared []struct{ base, end uint64 }

	frames     uint64 //detlint:ignore snapshotcomplete geometry fixed at construction; Restore panics on mismatch
	nextFrame  uint64 //detlint:ignore counterflow frame allocator bump pointer, not a metric
	free       []uint64
	owners     []mapping // indexed by pfn: current owner, for reclaim
	fifo       []uint64  // allocation order, for FIFO reclaim
	fifoHead   int
	ref        []bool     // per-pfn second-chance referenced bit
	dirty      []uint64   // frames evicted by the reclaimer, awaiting reuse
	evict      []Eviction // evictions pending kernel TLB/cache invalidation
	rss        map[uint64]uint64
	limit      uint64                       // effective frame limit (0 = all of frames)
	tables     map[uint64]map[uint64]uint64 // pid -> vpn -> pfn
	reserved   uint64                       // frames reserved for kernel text/data
	Allocs     uint64                       // frames allocated (Figure 3: page allocation)
	Reclaims   uint64                       // frames reclaimed under pressure
	Refills    uint64                       // translations that only refilled the TLB
	Unmappings uint64                       // explicit unmaps (munmap, exit)

	// Reclaimer and pressure observability (reported beside the overload
	// counters; see internal/report).
	ReclaimScans    uint64 // fifo entries examined by the reclaimer
	SecondChances   uint64 // referenced pages spared (ref cleared, re-queued)
	LimitOverruns   uint64 // allocations that overran the soft frame limit
	RSSHighwater    uint64 // peak resident set of any single user process
	FramesHighwater uint64 // peak frames in use
}

// NewMemory returns a Memory with the given physical size in bytes.
// Sizes below one page are rejected.
func NewMemory(physBytes uint64) (*Memory, error) {
	if physBytes < PageSize {
		return nil, fmt.Errorf("mem: physical size %d smaller than one page", physBytes)
	}
	m := &Memory{
		frames: physBytes >> PageShift,
		tables: make(map[uint64]map[uint64]uint64),
		rss:    make(map[uint64]uint64),
	}
	m.owners = make([]mapping, m.frames)
	m.ref = make([]bool, m.frames)
	return m, nil
}

// Frames returns the number of physical frames.
func (m *Memory) Frames() uint64 { return m.frames }

// FramesInUse returns the number of currently allocated frames.
func (m *Memory) FramesInUse() uint64 {
	return m.nextFrame - uint64(len(m.free)) - uint64(len(m.dirty))
}

// effFrames returns the effective frame limit the allocator works against.
func (m *Memory) effFrames() uint64 {
	if m.limit > 0 && m.limit < m.frames {
		return m.limit
	}
	return m.frames
}

// SetFrameLimit caps the frames the allocator will keep in use (the
// exhaustion fault domain shrinking effective physical memory mid-run). The
// limit is soft — pinned kernel pages can force an overrun, counted in
// LimitOverruns — and is clamped so the kernel's resident set plus a minimal
// user working store always fits. n = 0 removes the limit. The applied value
// is returned.
func (m *Memory) SetFrameLimit(n uint64) uint64 {
	if n == 0 {
		m.limit = 0
		return 0
	}
	if floor := m.rss[KernelPID] + minUserFrames; n < floor {
		n = floor
	}
	if n > m.frames {
		n = m.frames
	}
	m.limit = n
	return n
}

// FrameLimit returns the configured soft frame limit (0 = none).
func (m *Memory) FrameLimit() uint64 { return m.limit }

// RSS returns the resident-set size of a process in pages. Shared text and
// kernel pages are charged to KernelPID, matching the page-table redirect.
func (m *Memory) RSS(pid uint64) uint64 { return m.rss[pid] }

// TakeEvictions drains and returns the pages evicted by the reclaimer since
// the last call. The kernel calls this after every Touch to invalidate the
// victims' TLB entries and flush their cache lines before the frames are
// reused.
func (m *Memory) TakeEvictions() []Eviction {
	if len(m.evict) == 0 {
		return nil
	}
	evs := m.evict
	m.evict = nil
	return evs
}

// ShareRange declares [base, base+size) as shared among all processes:
// every process maps those pages to the same frames (forked program text,
// shared libraries).
func (m *Memory) ShareRange(base, size uint64) {
	m.shared = append(m.shared, struct{ base, end uint64 }{base, base + size})
}

// isShared reports whether vaddr falls in a shared user range.
func (m *Memory) isShared(vaddr uint64) bool {
	for _, r := range m.shared {
		if vaddr >= r.base && vaddr < r.end {
			return true
		}
	}
	return false
}

// table returns (creating if needed) the page table for pid. Kernel-region
// addresses and shared user ranges always use the shared kernel table
// regardless of pid.
func (m *Memory) table(pid uint64, vaddr uint64) (uint64, map[uint64]uint64) {
	if IsKernelAddr(vaddr) || m.isShared(vaddr) {
		pid = KernelPID
	}
	t := m.tables[pid]
	if t == nil {
		t = make(map[uint64]uint64)
		m.tables[pid] = t
	}
	return pid, t
}

// Translate looks up the physical address for (pid, vaddr). ok is false if
// the page is not mapped; the caller (the kernel VM model) must then call
// Touch to establish the mapping.
func (m *Memory) Translate(pid uint64, vaddr uint64) (paddr uint64, ok bool) {
	_, t := m.table(pid, vaddr)
	pfn, ok := t[VPN(vaddr)]
	if !ok {
		return 0, false
	}
	return FrameBase(pfn) | (vaddr & PageMask), true
}

// Touch ensures (pid, vaddr) is mapped, allocating (and if necessary
// reclaiming) a frame, and returns the physical address plus the kind of
// memory-management work that was required. This is the operation the
// kernel's page-fault / TLB-miss path performs.
func (m *Memory) Touch(pid uint64, vaddr uint64) (paddr uint64, kind FaultKind) {
	owner, t := m.table(pid, vaddr)
	vpn := VPN(vaddr)
	if pfn, ok := t[vpn]; ok {
		m.Refills++
		m.ref[pfn] = true
		return FrameBase(pfn) | (vaddr & PageMask), FaultNone
	}
	pfn, reclaimed := m.allocFrame()
	t[vpn] = pfn
	m.owners[pfn] = mapping{pid: owner, vpn: vpn}
	m.ref[pfn] = true
	// Kernel pages (and shared text, which the table redirect charges to
	// KernelPID) are pinned: they never enter the reclaim queue, so the
	// reclaimer cannot evict a frame still mapped by every live process.
	if owner != KernelPID {
		m.fifo = append(m.fifo, pfn)
	}
	m.rss[owner]++
	if owner != KernelPID && m.rss[owner] > m.RSSHighwater {
		m.RSSHighwater = m.rss[owner]
	}
	kind = FaultPageAlloc
	m.Allocs++
	if reclaimed {
		kind = FaultReclaim
		m.Reclaims++
	}
	if fiu := m.FramesInUse(); fiu > m.FramesHighwater {
		m.FramesHighwater = fiu
	}
	return FrameBase(pfn) | (vaddr & PageMask), kind
}

// allocFrame returns a free frame, evicting victims under memory pressure —
// a deliberately simple model of paging under pressure (the paper simulates
// a zero-latency disk, so reclaim cost is the kernel code executed, not disk
// time). Below the effective limit it hands out clean frames (free list,
// then the bump pointer); at the limit it consumes reclaimer-evicted frames,
// waking the reclaimer when none are staged.
func (m *Memory) allocFrame() (pfn uint64, reclaimed bool) {
	if m.FramesInUse() >= m.effFrames() {
		// Under a configured (squeezed) limit, refill to the low watermark
		// in one scan; at the physical wall, take exactly one victim.
		batch := 1
		if m.limit > 0 && m.limit < m.frames {
			batch = lowWaterFrames
		}
		m.reclaimBatch(batch)
	}
	// Frames the reclaimer staged are reused before anything clean — they
	// were evicted precisely to serve these allocations.
	if len(m.dirty) > 0 {
		pfn = m.dirty[0]
		m.dirty = m.dirty[1:]
		return pfn, true
	}
	if m.FramesInUse() < m.effFrames() {
		if n := len(m.free); n > 0 {
			pfn = m.free[n-1]
			m.free = m.free[:n-1]
			return pfn, false
		}
		if m.nextFrame < m.frames {
			pfn = m.nextFrame
			m.nextFrame++
			return pfn, false
		}
	}
	// Nothing reclaimable (every mapped frame is pinned): overrun the soft
	// limit if physical room remains, else the machine is truly out of
	// memory.
	m.LimitOverruns++
	if n := len(m.free); n > 0 {
		pfn = m.free[n-1]
		m.free = m.free[:n-1]
		return pfn, false
	}
	if m.nextFrame < m.frames {
		pfn = m.nextFrame
		m.nextFrame++
		return pfn, false
	}
	panic("mem: no frames to reclaim")
}

// reclaimBatch evicts up to want victims: FIFO order with second chance —
// a page whose referenced bit is set since the last pass is spared once
// (bit cleared, page re-queued), the oldest unreferenced page is evicted.
// Evicted frames are staged on the dirty list for allocFrame and recorded
// for the kernel's TLB/cache invalidation.
func (m *Memory) reclaimBatch(want int) {
	// The scan budget covers one full ref-clearing pass plus one eviction
	// pass over the queue as it stands now; re-queued entries past that mean
	// no victim exists.
	budget := 2*(len(m.fifo)-m.fifoHead) + int(m.frames) + lowWaterFrames
	for got := 0; got < want && budget > 0; {
		if m.fifoHead >= len(m.fifo) {
			if !m.compactFIFO() {
				return
			}
		}
		budget--
		m.ReclaimScans++
		victim := m.fifo[m.fifoHead]
		m.fifoHead++
		own := m.owners[victim]
		t := m.tables[own.pid]
		if t == nil {
			continue
		}
		cur, ok := t[own.vpn]
		if !ok || cur != victim {
			continue // stale entry: page was unmapped or remapped
		}
		if m.ref[victim] {
			m.SecondChances++
			m.ref[victim] = false
			m.fifo = append(m.fifo, victim)
			continue
		}
		delete(t, own.vpn)
		if m.rss[own.pid] > 0 {
			m.rss[own.pid]--
		}
		m.dirty = append(m.dirty, victim)
		m.evict = append(m.evict, Eviction{PID: own.pid, VPN: own.vpn, PFN: victim})
		got++
	}
}

// compactFIFO rebuilds the reclaim queue from the live page tables after
// every entry was consumed. Pinned kernel/shared pages stay out; the frame
// list is sorted so the rebuilt queue does not depend on map iteration
// order (the simulation must be deterministic). Reports whether any
// reclaimable page exists.
func (m *Memory) compactFIFO() bool {
	m.fifo = m.fifo[:0]
	m.fifoHead = 0
	for pid, t := range m.tables {
		if pid == KernelPID {
			continue
		}
		for vpn, pfn := range t {
			m.owners[pfn] = mapping{pid: pid, vpn: vpn}
			m.fifo = append(m.fifo, pfn)
		}
	}
	if len(m.fifo) == 0 {
		return false
	}
	sort.Slice(m.fifo, func(i, j int) bool { return m.fifo[i] < m.fifo[j] })
	return true
}

// Unmap removes the mapping for one page if present (munmap). The frame
// returns to the free list.
func (m *Memory) Unmap(pid uint64, vaddr uint64) bool {
	owner, t := m.table(pid, vaddr)
	vpn := VPN(vaddr)
	pfn, ok := t[vpn]
	if !ok {
		return false
	}
	delete(t, vpn)
	m.free = append(m.free, pfn)
	if m.rss[owner] > 0 {
		m.rss[owner]--
	}
	m.Unmappings++
	return true
}

// ReleaseProcess drops every user-region mapping of a process (exit).
func (m *Memory) ReleaseProcess(pid uint64) int {
	if pid == KernelPID {
		return 0
	}
	t := m.tables[pid]
	// Free frames in sorted page order: map iteration order is randomized,
	// and the free list feeds later allocations, so an unsorted release
	// would make every post-exit allocation nondeterministic.
	pfns := make([]uint64, 0, len(t))
	for _, pfn := range t {
		pfns = append(pfns, pfn)
	}
	sort.Slice(pfns, func(i, j int) bool { return pfns[i] < pfns[j] })
	for vpn := range t {
		delete(t, vpn)
	}
	m.free = append(m.free, pfns...)
	delete(m.rss, pid)
	m.Unmappings += uint64(len(pfns))
	return len(pfns)
}

// MappedPages returns the number of pages mapped for pid (kernel uses
// KernelPID).
func (m *Memory) MappedPages(pid uint64) int { return len(m.tables[pid]) }
