package pipeline

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sys"
)

// testFeed is a scripted Feed: per-context instruction buffers with splice
// support, mimicking the contract the behavioral kernel implements.
type testFeed struct {
	e          *Engine
	bufs       [][]FedInst
	retired    [][]uint64
	traps      []trapRec
	interrupts map[uint64][]int
	// pauseAfterSyscall makes InstAt return false past an unretired
	// syscall PALCall, and resume (with resumeInsts) when it retires.
	pauseAfterSyscall bool
	resumeInsts       []FedInst
	paused            []bool
}

type trapRec struct {
	ctx   int
	idx   uint64
	kind  TrapKind
	vaddr uint64
}

func newTestFeed(nctx int) *testFeed {
	return &testFeed{
		bufs:       make([][]FedInst, nctx),
		retired:    make([][]uint64, nctx),
		paused:     make([]bool, nctx),
		interrupts: map[uint64][]int{},
	}
}

func (f *testFeed) InstAt(ctx int, idx uint64) (FedInst, bool) {
	if f.paused[ctx] {
		// find position of the pending syscall; anything after it is
		// withheld.
		for i, in := range f.bufs[ctx] {
			if in.Class == isa.PALCall && in.Syscall != 0 && uint64(i) < idx {
				return FedInst{}, false
			}
		}
	}
	if idx < uint64(len(f.bufs[ctx])) {
		return f.bufs[ctx][idx], true
	}
	return FedInst{}, false
}

func (f *testFeed) Retired(ctx int, idx uint64, in *FedInst) {
	f.retired[ctx] = append(f.retired[ctx], idx)
	if in.Class == isa.PALCall && in.Syscall != 0 && f.pauseAfterSyscall {
		f.paused[ctx] = false
		f.bufs[ctx] = append(f.bufs[ctx], f.resumeInsts...)
	}
}

func (f *testFeed) Trap(ctx int, idx uint64, in *FedInst, kind TrapKind, vaddr uint64) {
	f.traps = append(f.traps, trapRec{ctx: ctx, idx: idx, kind: kind, vaddr: vaddr})
	switch kind {
	case TrapITLB:
		// Install the translation and splice a short PAL handler.
		f.e.ITLB.Insert(in.ASN, vaddr, f.Translate(in, vaddr), agentOf(in))
		f.splice(ctx, idx, palHandler(3))
	case TrapDTLB:
		f.e.DTLB.Insert(in.ASN, vaddr, f.Translate(in, vaddr), agentOf(in))
		f.splice(ctx, idx, palHandler(5))
	case TrapInterrupt:
		f.splice(ctx, idx, palHandler(4))
	}
}

func (f *testFeed) splice(ctx int, idx uint64, ins []FedInst) {
	buf := f.bufs[ctx]
	out := make([]FedInst, 0, len(buf)+len(ins))
	out = append(out, buf[:idx]...)
	out = append(out, ins...)
	out = append(out, buf[idx:]...)
	f.bufs[ctx] = out
}

func (f *testFeed) Cycle(now uint64) []int { return f.interrupts[now] }

func (f *testFeed) Halted(ctx int) bool { return false }

func (f *testFeed) Translate(in *FedInst, vaddr uint64) uint64 {
	// Deterministic page-granular hash, scattering frames the way a real
	// allocator does (a plain modulus would alias all contexts' code into
	// the same cache sets).
	vpn := vaddr >> 13
	frame := (vpn * 2654435761) % (1 << 13)
	return frame<<13 | (vaddr & 0x1fff)
}

// palHandler builds n PAL-mode ALU instructions.
func palHandler(n int) []FedInst {
	out := make([]FedInst, n)
	for i := range out {
		out[i] = FedInst{
			Inst: isa.Inst{
				PC:    mem.PALTextBase + uint64(i)*4,
				Class: isa.IntALU,
				Mode:  isa.PAL,
			},
			TID: 1000,
			Cat: sys.CatDTLB,
		}
	}
	return out
}

func userALU(pc uint64, dep uint16) FedInst {
	return FedInst{
		Inst: isa.Inst{PC: pc, Class: isa.IntALU, Mode: isa.User, Dep1: dep},
		TID:  1, ASN: 1, PID: 1, Cat: sys.CatUser,
	}
}

func build(t *testing.T, cfg Config, feed *testFeed) *Engine {
	t.Helper()
	e := New(cfg, feed, cache.NewHierarchy(cache.DefaultHierConfig()))
	feed.e = e
	return e
}

// fillALU populates ctx 0 with n independent ALU instructions at mapped PCs.
func fillALU(f *testFeed, ctx, n int) {
	for i := 0; i < n; i++ {
		f.bufs[ctx] = append(f.bufs[ctx], userALU(0x12000000+uint64(i)*4, 0))
	}
}

func TestSimpleRetirement(t *testing.T) {
	f := newTestFeed(8)
	fillALU(f, 0, 100)
	e := build(t, SMTConfig(), f)
	e.Run(1500)
	e.CheckInvariants()
	// 100 user instructions + 3 spliced ITLB-handler instructions.
	if e.Metrics.Retired != 103 {
		t.Fatalf("retired %d, want 103", e.Metrics.Retired)
	}
	// Retired in order.
	for i, idx := range f.retired[0] {
		if idx != uint64(i) {
			t.Fatalf("retire order broken at %d: idx=%d", i, idx)
		}
	}
	// ITLB cold-start trap must have fired once for the first line.
	if e.Metrics.ITLBTraps == 0 {
		t.Fatal("no ITLB trap on cold start")
	}
}

func TestDependenceChainsSlower(t *testing.T) {
	// Loop over a small PC footprint so fetch stays warm and execution
	// dominates.
	mkBuf := func(f *testFeed, dep uint16) {
		for i := 0; i < 2000; i++ {
			f.bufs[0] = append(f.bufs[0], userALU(0x12000000+uint64(i%64)*4, dep))
		}
	}
	fIndep := newTestFeed(8)
	mkBuf(fIndep, 0)
	eIndep := build(t, SMTConfig(), fIndep)
	eIndep.Run(1500)

	fChain := newTestFeed(8)
	mkBuf(fChain, 1)
	eChain := build(t, SMTConfig(), fChain)
	eChain.Run(1500)

	if eChain.Metrics.Retired >= eIndep.Metrics.Retired {
		t.Fatalf("dependent chain not slower: chain=%d indep=%d",
			eChain.Metrics.Retired, eIndep.Metrics.Retired)
	}
}

func TestLoadsAccessCache(t *testing.T) {
	f := newTestFeed(8)
	for i := 0; i < 50; i++ {
		in := userALU(0x12000000+uint64(i)*4, 0)
		in.Class = isa.Load
		in.Addr = 0x20000000 + uint64(i)*64
		f.bufs[0] = append(f.bufs[0], in)
	}
	e := build(t, SMTConfig(), f)
	e.Run(2000)
	e.CheckInvariants()
	// 50 loads + 3 ITLB-handler + 5 DTLB-handler instructions.
	if e.Metrics.Retired != 58 {
		t.Fatalf("retired %d, want 58", e.Metrics.Retired)
	}
	if got := e.Hier.L1D.Accesses[0]; got != 50 {
		t.Fatalf("L1D accesses = %d, want 50", got)
	}
	if e.Metrics.DTLBTraps == 0 {
		t.Fatal("no DTLB trap for unmapped loads")
	}
	// Handler code retired too (PAL instructions counted kernel).
	if e.Mix.Total(true) == 0 {
		t.Fatal("no privileged instructions retired")
	}
}

func TestStoresDrainThroughBuffer(t *testing.T) {
	f := newTestFeed(8)
	for i := 0; i < 40; i++ {
		in := userALU(0x12000000+uint64(i)*4, 0)
		in.Class = isa.Store
		in.Addr = 0x20000000 + uint64(i)*64
		f.bufs[0] = append(f.bufs[0], in)
	}
	e := build(t, SMTConfig(), f)
	e.Run(2000)
	if e.Metrics.Retired != 48 { // 40 stores + 3 ITLB + 5 DTLB handler insts
		t.Fatalf("retired %d, want 48", e.Metrics.Retired)
	}
	if e.Hier.L1D.Accesses[0] != 40 {
		t.Fatalf("store cache writes = %d, want 40", e.Hier.L1D.Accesses[0])
	}
	if e.SB.Pushed != 40 {
		t.Fatalf("store buffer pushes = %d, want 40", e.SB.Pushed)
	}
}

func TestMispredictionSquashes(t *testing.T) {
	f := newTestFeed(8)
	// ALUs, then a cold taken branch (must mispredict: BTB empty), then more.
	fillALU(f, 0, 10)
	br := userALU(0x12000000+10*4, 0)
	br.Class = isa.CondBranch
	br.Taken = true
	br.Target = 0x12000000 + 40*4
	f.bufs[0] = append(f.bufs[0], br)
	for i := 11; i < 60; i++ {
		f.bufs[0] = append(f.bufs[0], userALU(0x12000000+40*4+uint64(i)*4, 0))
	}
	e := build(t, SMTConfig(), f)
	e.Run(2000)
	e.CheckInvariants()
	if e.Metrics.Squashed == 0 {
		t.Fatal("mispredicted branch squashed nothing")
	}
	if e.Metrics.Retired != 63 { // 60 user + 3 ITLB handler insts
		t.Fatalf("retired %d, want 63", e.Metrics.Retired)
	}
	if e.Pred.Mispredicts[0] == 0 {
		t.Fatal("no mispredict recorded")
	}
	if e.Metrics.Fetched <= e.Metrics.Retired {
		t.Fatal("wrong-path fetches missing")
	}
}

func TestSyscallSerializes(t *testing.T) {
	f := newTestFeed(8)
	f.pauseAfterSyscall = true
	f.paused[0] = true
	fillALU(f, 0, 5)
	sc := userALU(0x12000000+5*4, 0)
	sc.Class = isa.PALCall
	sc.Syscall = uint16(sys.SysRead)
	sc.Target = mem.PALTextBase
	f.bufs[0] = append(f.bufs[0], sc)
	for i := 0; i < 7; i++ {
		f.resumeInsts = append(f.resumeInsts, userALU(0x12000000+uint64(100+i)*4, 0))
	}
	e := build(t, SMTConfig(), f)
	e.Run(2000)
	if e.Metrics.Retired != 16 { // 13 user + 3 ITLB handler insts
		t.Fatalf("retired %d, want 16", e.Metrics.Retired)
	}
	if e.Metrics.SyscallsSeen != 1 {
		t.Fatalf("syscalls seen = %d", e.Metrics.SyscallsSeen)
	}
}

func TestInterruptDelivery(t *testing.T) {
	f := newTestFeed(8)
	fillALU(f, 0, 200)
	f.interrupts[500] = []int{0}
	e := build(t, SMTConfig(), f)
	e.Run(2000)
	found := false
	for _, tr := range f.traps {
		if tr.kind == TrapInterrupt {
			found = true
		}
	}
	if !found || e.Metrics.Interrupts != 1 {
		t.Fatalf("interrupt not delivered: traps=%v n=%d", f.traps, e.Metrics.Interrupts)
	}
	// All user instructions plus the interrupt and ITLB handlers retire.
	if e.Metrics.Retired != 200+4+3 {
		t.Fatalf("retired %d, want 207", e.Metrics.Retired)
	}
}

func TestAppOnlyNoTraps(t *testing.T) {
	cfg := SMTConfig()
	cfg.AppOnly = true
	f := newTestFeed(8)
	for i := 0; i < 50; i++ {
		in := userALU(0x12000000+uint64(i)*4, 0)
		if i%2 == 0 {
			in.Class = isa.Load
			in.Addr = 0x20000000 + uint64(i)*4096
		}
		f.bufs[0] = append(f.bufs[0], in)
	}
	e := build(t, cfg, f)
	e.Run(3000)
	if len(f.traps) != 0 {
		t.Fatalf("app-only mode raised traps: %v", f.traps)
	}
	if e.Metrics.Retired != 50 {
		t.Fatalf("retired %d, want 50", e.Metrics.Retired)
	}
	// TLB misses still counted.
	if e.DTLB.Misses[0] == 0 {
		t.Fatal("app-only mode should still record DTLB misses")
	}
}

func TestMultiContextFairness(t *testing.T) {
	f := newTestFeed(8)
	for ctx := 0; ctx < 8; ctx++ {
		for i := 0; i < 500; i++ {
			// Offset each context within its page to avoid pathological
			// set-group aliasing of page-aligned hot loops.
			in := userALU(0x12000000+uint64(ctx)<<20+uint64(ctx)*1024+uint64(i%256)*4, 1)
			in.TID = uint32(ctx + 1)
			in.ASN = uint16(ctx + 1)
			f.bufs[ctx] = append(f.bufs[ctx], in)
		}
	}
	e := build(t, SMTConfig(), f)
	e.Run(8000)
	e.CheckInvariants()
	if e.Metrics.Retired != 8*(500+3) { // +3 ITLB handler insts per context
		t.Fatalf("retired %d, want 4024", e.Metrics.Retired)
	}
	for ctx := 0; ctx < 8; ctx++ {
		if len(f.retired[ctx]) != 503 {
			t.Fatalf("ctx %d retired %d", ctx, len(f.retired[ctx]))
		}
	}
	if e.Metrics.AvgFetchable() <= 0 {
		t.Fatal("no fetchable contexts recorded")
	}
}

func TestSMTFasterThanSuperscalarOnParallelWork(t *testing.T) {
	mk := func(cfg Config, nctx int) uint64 {
		f := newTestFeed(cfg.Contexts)
		for ctx := 0; ctx < nctx && ctx < cfg.Contexts; ctx++ {
			for i := 0; i < 20000; i++ {
				in := userALU(0x12000000+uint64(ctx)<<20+uint64(ctx)*1024+uint64(i%256)*4, 2)
				in.TID = uint32(ctx + 1)
				in.ASN = uint16(ctx + 1)
				f.bufs[ctx] = append(f.bufs[ctx], in)
			}
		}
		e := build(t, cfg, f)
		e.Run(6000)
		return e.Metrics.Retired
	}
	smt := mk(SMTConfig(), 8)
	ss := mk(SuperscalarConfig(), 1)
	if smt*2 <= ss*3 { // expect at least 1.5x on parallel integer work

		t.Fatalf("SMT throughput %d not >> superscalar %d", smt, ss)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Metrics, uint64) {
		f := newTestFeed(8)
		for ctx := 0; ctx < 4; ctx++ {
			for i := 0; i < 300; i++ {
				in := userALU(0x12000000+uint64(ctx)<<20+uint64(i)*4, uint16(i%3))
				in.TID = uint32(ctx + 1)
				if i%7 == 3 {
					in.Class = isa.Load
					in.Addr = 0x20000000 + uint64(ctx)<<22 + uint64(i)*256
				}
				f.bufs[ctx] = append(f.bufs[ctx], in)
			}
		}
		f.interrupts[200] = []int{1}
		e := build(t, SMTConfig(), f)
		e.Run(5000)
		return e.Metrics, e.Cycles.Total
	}
	m1, c1 := run()
	m2, c2 := run()
	if m1 != m2 || c1 != c2 {
		t.Fatalf("nondeterministic: %+v vs %+v", m1, m2)
	}
}

func TestCycleAttribution(t *testing.T) {
	f := newTestFeed(8)
	fillALU(f, 0, 100)
	e := build(t, SMTConfig(), f)
	e.Run(500)
	if e.Cycles.Total != 500*8 {
		t.Fatalf("context-cycles = %d, want 4000", e.Cycles.Total)
	}
	if e.Cycles.ByCat[sys.CatUser] == 0 {
		t.Fatal("no user cycles attributed")
	}
	if e.Cycles.ByCat[sys.CatIdle] == 0 {
		t.Fatal("idle contexts should attribute idle cycles")
	}
}

func TestInvariantsUnderStress(t *testing.T) {
	f := newTestFeed(8)
	for ctx := 0; ctx < 8; ctx++ {
		for i := 0; i < 400; i++ {
			in := userALU(0x12000000+uint64(ctx)<<20+uint64(i%97)*4, uint16(i%5))
			in.TID = uint32(ctx + 1)
			in.ASN = uint16(ctx + 1)
			switch i % 11 {
			case 1:
				in.Class = isa.Load
				in.Addr = 0x20000000 + uint64(i%13)*8192
			case 2:
				in.Class = isa.Store
				in.Addr = 0x20000000 + uint64(i%17)*4096
			case 3:
				in.Class = isa.CondBranch
				in.Taken = i%2 == 0
				in.Target = in.PC + 32
			case 4:
				in.Class = isa.FPALU
			}
			f.bufs[ctx] = append(f.bufs[ctx], in)
		}
	}
	f.interrupts[100] = []int{0, 3}
	f.interrupts[300] = []int{5}
	e := build(t, SMTConfig(), f)
	for i := 0; i < 50; i++ {
		e.Run(100)
		e.CheckInvariants()
	}
	if e.Metrics.Retired == 0 {
		t.Fatal("nothing retired under stress")
	}
}
