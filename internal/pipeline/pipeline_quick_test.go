package pipeline

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/rng"
)

// randomFeed builds a deterministic pseudo-random instruction buffer from a
// seed, covering every instruction class the pipeline accepts. The feed is
// sized for the full 8-context machine; only nctx contexts carry work.
func randomFeed(seed uint64, nctx, perCtx int) *testFeed {
	f := newTestFeed(8)
	r := rng.New(seed)
	for ctx := 0; ctx < nctx; ctx++ {
		base := 0x12000000 + uint64(ctx)<<20 + uint64(ctx)*2048
		for i := 0; i < perCtx; i++ {
			in := userALU(base+uint64(i%512)*4, uint16(r.Intn(6)))
			in.TID = uint32(ctx + 1)
			in.ASN = uint16(ctx + 1)
			switch r.Intn(10) {
			case 0:
				in.Class = isa.Load
				in.Addr = 0x20000000 + uint64(ctx)<<24 + uint64(r.Intn(64))*512
			case 1:
				in.Class = isa.Store
				in.Addr = 0x20000000 + uint64(ctx)<<24 + uint64(r.Intn(64))*512
			case 2:
				in.Class = isa.CondBranch
				in.Taken = r.Bool(0.5)
				in.Target = in.PC + uint64(4+r.Intn(16)*4)
			case 3:
				in.Class = isa.FPALU
			case 4:
				in.Class = isa.Sync
				in.Addr = 0x20000000 + uint64(ctx)<<24 + uint64(r.Intn(16))*512
			}
			f.bufs[ctx] = append(f.bufs[ctx], in)
		}
	}
	return f
}

// TestPipelinePropertyInvariants runs random programs and checks the
// engine's structural invariants plus conservation laws hold at every
// sampled point.
func TestPipelinePropertyInvariants(t *testing.T) {
	prop := func(seedRaw uint16, interruptAt uint8) bool {
		seed := uint64(seedRaw) + 1
		f := randomFeed(seed, 4, 150)
		f.interrupts[uint64(interruptAt)*7+50] = []int{int(seed % 4)}
		e := New(SMTConfig(), f, cache.NewHierarchy(cache.DefaultHierConfig()))
		f.e = e
		for i := 0; i < 20; i++ {
			e.Run(200)
			e.CheckInvariants()
			inFlight := e.Metrics.Fetched - e.Metrics.Retired - e.Metrics.Squashed
			if inFlight > uint64(e.Cfg.Contexts*e.Cfg.ROBSize) {
				return false
			}
			if e.Mix.TotalAll() != e.Metrics.Retired {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineRetirementOrderProperty verifies per-context program-order
// retirement over random programs.
func TestPipelineRetirementOrderProperty(t *testing.T) {
	prop := func(seedRaw uint16) bool {
		f := randomFeed(uint64(seedRaw)+99, 3, 120)
		e := New(SMTConfig(), f, cache.NewHierarchy(cache.DefaultHierConfig()))
		f.e = e
		e.Run(20_000)
		for ctx := range f.retired {
			for i := 1; i < len(f.retired[ctx]); i++ {
				if f.retired[ctx][i] != f.retired[ctx][i-1]+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
