package pipeline

import (
	"fmt"

	"repro/internal/conflict"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sys"
)

// Run advances the simulation by n cycles. With sampling enabled the
// cycles are split between functional fast-forward and detailed windows
// (see sample.go); otherwise every cycle runs the full detailed step.
func (e *Engine) Run(n uint64) {
	if e.smp.phase != sampleOff {
		e.runSampled(n)
		return
	}
	for i := uint64(0); i < n; i++ {
		e.step()
	}
}

// step simulates one cycle: interrupt delivery, completion/branch
// resolution, retire, dispatch, issue, fetch, and cycle attribution.
//detlint:hot per-cycle pipeline step: TestEngineStepZeroAlloc pins 0 allocs/op
func (e *Engine) step() {
	for _, ctx := range e.Feed.Cycle(e.now) {
		e.deliverInterrupt(ctx)
	}
	e.completions()
	e.retire()
	e.dispatch()
	e.issue()
	e.fetch()
	e.attribute()
	e.Metrics.Cycles++
	e.now++
}

func agentOf(in *FedInst) conflict.Agent {
	return conflict.Agent{TID: in.TID, Priv: in.Mode.Privileged()}
}

// ---------------------------------------------------------------- interrupts

func (e *Engine) deliverInterrupt(ctx int) {
	c := &e.ctxs[ctx]
	idx := c.fetchIdx
	for i := 0; i < c.sz; i++ {
		if u := c.robAt(i); !u.wrongPath {
			idx = u.idx
			break
		}
	}
	e.squashAll(c)
	c.fetchIdx = idx
	c.wrong = nil
	c.redirectAt = e.now + uint64(e.Cfg.RedirectPenalty)
	e.Feed.Trap(ctx, idx, nil, TrapInterrupt, 0)
	e.Metrics.Interrupts++
}

// ---------------------------------------------------------------- completion

func (e *Engine) completions() {
	for len(e.events) > 0 && e.events[0].at <= e.now {
		ev := e.events.pop()
		c := &e.ctxs[ev.ctx]
		u := e.lookup(c, ev.seq, ev.id)
		if u == nil {
			continue // squashed
		}
		u.state = stDone
		if u.mispred && !u.wrongPath {
			// Branch resolved wrong: squash everything younger in this
			// context and redirect fetch to the correct path (the feed
			// index was left pointing there when the wrong path began).
			e.squashFrom(c, ev.seq+1)
			c.wrong = nil
			c.redirectAt = e.now + 1 + uint64(e.Cfg.RedirectPenalty)
		}
	}
}

// lookup finds an in-flight uop by sequence number, validating identity.
func (e *Engine) lookup(c *ctxState, seq, id uint64) *uop {
	if seq < c.headSeq {
		return nil
	}
	off := int(seq - c.headSeq)
	if off >= c.sz {
		return nil
	}
	u := c.robAt(off)
	if u.id != id {
		return nil
	}
	return u
}

// ---------------------------------------------------------------- squash

func (e *Engine) freeRes(u *uop) {
	if u.usesInt {
		e.intRegsUsed--
	}
	if u.usesFP {
		e.fpRegsUsed--
	}
	u.inQueue = false // queue refs are invalidated by id checks
}

// squashFrom removes all uops with seq >= seqStart from context c.
func (e *Engine) squashFrom(c *ctxState, seqStart uint64) {
	for c.sz > 0 {
		tailSeq := c.headSeq + uint64(c.sz) - 1
		if tailSeq < seqStart {
			break
		}
		u := c.robAt(c.sz - 1)
		e.freeRes(u)
		u.id = 0
		c.sz--
		e.Metrics.Squashed++
	}
	if c.dispatch > c.sz {
		c.dispatch = c.sz
	}
	c.nextSeq = c.headSeq + uint64(c.sz)
}

// squashAll removes every uop from context c (trap or interrupt redirect).
func (e *Engine) squashAll(c *ctxState) {
	e.squashFrom(c, c.headSeq)
}

// ---------------------------------------------------------------- retire

func (e *Engine) retire() {
	budget := e.Cfg.RetireWidth
	n := e.Cfg.Contexts
	for k := 0; k < n && budget > 0; k++ {
		ctx := (e.rrRetire + k) % n
		c := &e.ctxs[ctx]
		for budget > 0 && c.sz > 0 {
			u := c.robAt(0)
			if u.state != stDone || u.doneAt > e.now {
				break
			}
			if u.wrongPath {
				panic("pipeline: wrong-path uop reached retire")
			}
			if u.faulted {
				e.trapAtHead(ctx, c, u)
				break
			}
			if u.in.Class == isa.Store || (u.in.Class == isa.Sync && u.in.Physical) {
				if _, ok := e.SB.Push(e.now); !ok {
					e.Metrics.RetireStallSB++
					break
				}
				// The buffered store drains into the data cache; perform
				// the state-changing access now (timing is decoupled via
				// the buffer).
				e.storeAccess(u)
			}
			e.Mix.Add(&u.in.Inst)
			e.Metrics.Retired++
			e.threadStat(u.in.TID).Retired++
			if u.in.Class == isa.PALCall && u.in.Syscall != 0 {
				e.Metrics.SyscallsSeen++
			}
			// Copy into the engine-owned scratch before freeing the slot:
			// passing &local would force a heap allocation per retired
			// instruction (the pointer escapes into the Feed call).
			idx := u.idx
			e.retireScratch = u.in
			in := &e.retireScratch
			e.freeRes(u)
			u.id = 0
			c.head = (c.head + 1) & (len(c.rob) - 1)
			c.sz--
			c.headSeq++
			if c.dispatch > 0 {
				c.dispatch--
			}
			c.lastCat, c.lastMode, c.lastSys = in.Cat, in.Mode, in.Sys
			c.lastTID = in.TID
			budget--
			e.Feed.Retired(ctx, idx, in)
		}
	}
	e.rrRetire = (e.rrRetire + 1) % n
}

// storeAccess performs the cache write for a retiring store, using the
// physical address resolved at issue.
func (e *Engine) storeAccess(u *uop) {
	e.Hier.DrainStore(u.paddr, agentOf(&u.in), e.now)
}

// trapAtHead delivers a precise DTLB-miss trap for the faulted uop at the
// head of context ctx.
func (e *Engine) trapAtHead(ctx int, c *ctxState, u *uop) {
	e.Metrics.DTLBTraps++
	idx, vaddr := u.idx, u.in.Addr
	e.trapScratch = u.in // copy before squash frees the slot; &local would escape
	e.squashAll(c)
	c.fetchIdx = idx
	c.wrong = nil
	c.redirectAt = e.now + uint64(e.Cfg.RedirectPenalty)
	e.Feed.Trap(ctx, idx, &e.trapScratch, TrapDTLB, vaddr)
}

// ---------------------------------------------------------------- dispatch

func (e *Engine) dispatch() {
	fl := e.Cfg.frontLatency()
	n := e.Cfg.Contexts
	for k := 0; k < n; k++ {
		ctx := (e.rrDispatch + k) % n
		c := &e.ctxs[ctx]
		for c.dispatch < c.sz {
			u := c.robAt(c.dispatch)
			if u.state != stFetched || u.fetchedAt+fl > e.now {
				break
			}
			if u.in.Class.UsesFP() {
				if len(e.fpQ) >= e.Cfg.FPQueueSize || e.fpRegsUsed >= e.Cfg.FPRegs {
					break
				}
				e.fpRegsUsed++
				u.usesFP = true
				u.state = stQueued
				u.inQueue = true
				e.fpQ = append(e.fpQ, qref{ctx: ctx, seq: u.seq, id: u.id})
			} else {
				if len(e.intQ) >= e.Cfg.IntQueueSize {
					break
				}
				needsReg := u.in.Class == isa.IntALU || u.in.Class == isa.Load ||
					u.in.Class == isa.Sync
				if needsReg && e.intRegsUsed >= e.Cfg.IntRegs {
					break
				}
				if needsReg {
					e.intRegsUsed++
					u.usesInt = true
				}
				u.state = stQueued
				u.inQueue = true
				e.intQ = append(e.intQ, qref{ctx: ctx, seq: u.seq, id: u.id})
			}
			c.dispatch++
		}
	}
	e.rrDispatch = (e.rrDispatch + 1) % n
}

// ---------------------------------------------------------------- issue

// operandsReady checks register dependences against the same context's
// in-flight window.
func (e *Engine) operandsReady(c *ctxState, u *uop) bool {
	for _, d := range [2]uint16{u.in.Dep1, u.in.Dep2} {
		if d == 0 {
			continue
		}
		if uint64(d) > u.seq {
			continue
		}
		target := u.seq - uint64(d)
		if target < c.headSeq {
			continue // already retired (in-order retirement ⇒ done)
		}
		dep := c.robAt(int(target - c.headSeq))
		if dep.state != stDone || dep.doneAt > e.now {
			return false
		}
	}
	return true
}

func (e *Engine) issue() {
	intUnits := e.Cfg.IntUnits
	lsUnits := e.Cfg.LSUnits
	syncUnits := e.Cfg.SyncUnits
	fpUnits := e.Cfg.FPUnits
	dports := e.Cfg.DCachePorts
	issuedInt, issuedFP := 0, 0

	e.intQ = e.issueQueue(e.intQ, func(u *uop, c *ctxState, ctx int) bool {
		if intUnits == 0 {
			return false
		}
		switch u.in.Class {
		case isa.Load:
			if lsUnits == 0 || dports == 0 {
				return false
			}
			if !e.memIssue(u, false) {
				// MSHR stall: the probe still occupied the port; retry
				// next cycle.
				lsUnits--
				dports--
				return false
			}
			lsUnits--
			dports--
		case isa.Store:
			if lsUnits == 0 {
				return false
			}
			if !e.memIssue(u, true) {
				return false
			}
			lsUnits--
		case isa.Sync:
			if syncUnits == 0 || dports == 0 {
				return false
			}
			if !e.memIssue(u, false) {
				return false
			}
			syncUnits--
			dports--
		default:
			u.doneAt = e.now + uint64(u.in.Latency())
		}
		intUnits--
		issuedInt++
		return true
	})

	e.fpQ = e.issueQueue(e.fpQ, func(u *uop, c *ctxState, ctx int) bool {
		if fpUnits == 0 {
			return false
		}
		fpUnits--
		issuedFP++
		u.doneAt = e.now + uint64(u.in.Latency())
		return true
	})

	e.Metrics.IntIssued += uint64(issuedInt)
	e.Metrics.FPIssued += uint64(issuedFP)
	if issuedInt+issuedFP == 0 {
		e.Metrics.ZeroIssue++
	}
	if issuedInt == e.Cfg.IntUnits {
		e.Metrics.MaxIssue++
	}
}

// issueQueue walks a queue oldest-first, issuing entries accepted by try and
// compacting out dead or issued entries. try sets u.doneAt on success.
func (e *Engine) issueQueue(q []qref, try func(u *uop, c *ctxState, ctx int) bool) []qref {
	out := q[:0]
	for _, ref := range q {
		c := &e.ctxs[ref.ctx]
		u := e.lookup(c, ref.seq, ref.id)
		if u == nil || u.state != stQueued {
			continue // squashed or already handled
		}
		if !e.operandsReady(c, u) {
			out = append(out, ref)
			continue
		}
		if !try(u, c, ref.ctx) {
			out = append(out, ref)
			continue
		}
		u.state = stIssued
		u.inQueue = false
		e.events.push(event{at: u.doneAt, ctx: ref.ctx, seq: ref.seq, id: ref.id})
	}
	return out
}

// memIssue translates and (for loads/syncs) accesses the data cache.
// It returns false on a structural stall (retry); on a DTLB miss it marks
// the uop faulted and lets it reach the head for a precise trap.
func (e *Engine) memIssue(u *uop, storeOnly bool) bool {
	if u.wrongPath {
		// Wrong-path memory ops do not access the data side (documented
		// simplification); they just burn an FU.
		u.doneAt = e.now + 1
		return true
	}
	ag := agentOf(&u.in)
	paddr := u.in.Addr
	if !u.in.Physical {
		pa, hit := e.DTLB.Lookup(u.in.ASN, u.in.Addr, ag)
		if !hit {
			if e.Cfg.AppOnly {
				pa = e.Feed.Translate(&u.in, u.in.Addr)
				e.DTLB.Insert(u.in.ASN, u.in.Addr, pa, ag)
			} else {
				u.faulted = true
				u.doneAt = e.now + 1
				return true
			}
		}
		paddr = pa
	}
	u.paddr = paddr
	if storeOnly {
		// Stores write at retire via the store buffer; issue just resolves
		// the address.
		u.doneAt = e.now + 1
		return true
	}
	res := e.Hier.AccessD(paddr, ag, false, e.now)
	if res.Stall {
		return false
	}
	u.doneAt = res.Ready
	return true
}

// ---------------------------------------------------------------- fetch

// fetchable reports whether a context can fetch this cycle.
func (e *Engine) fetchable(ctx int) bool {
	c := &e.ctxs[ctx]
	if e.now < c.redirectAt {
		e.Metrics.StallRedirect++
		return false
	}
	if c.icacheReadyAt > e.now {
		e.Metrics.StallIMiss++
		return false
	}
	if c.full() {
		e.Metrics.StallROBFull++
		return false
	}
	if c.wrong != nil {
		return true
	}
	if _, ok := e.Feed.InstAt(ctx, c.fetchIdx); !ok {
		e.Metrics.StallFeed++
		return false
	}
	return true
}

func (e *Engine) fetch() {
	// Determine the fetchable set (the paper's "fetchable contexts":
	// not servicing an I-miss or interrupt redirect, with work to fetch).
	f := e.fetchableScratch[:0]
	for ctx := 0; ctx < e.Cfg.Contexts; ctx++ {
		ok := e.fetchable(ctx)
		e.ctxs[ctx].hadWork = ok || e.ctxs[ctx].sz > 0
		if ok {
			f = append(f, ctx)
		}
	}
	e.fetchableScratch = f
	e.Metrics.FetchableSum += uint64(len(f))

	// ICOUNT: prefer contexts with the fewest in-flight instructions
	// (or plain rotation under the round-robin ablation). The rotation-
	// distance tie-break makes the order a strict total order, so this
	// closure-free insertion sort (stable by construction) yields exactly
	// the ordering sort.SliceStable produced, at ≤8 elements and with no
	// per-cycle closure/swapper allocation.
	rr := e.rrFetch
	for i := 1; i < len(f); i++ {
		for j := i; j > 0 && e.fetchLess(f[j], f[j-1], rr); j-- {
			f[j], f[j-1] = f[j-1], f[j]
		}
	}
	e.rrFetch = (e.rrFetch + 1) % e.Cfg.Contexts

	width := e.Cfg.FetchWidth
	fetched := 0
	for i := 0; i < len(f) && i < e.Cfg.FetchContexts && width > 0; i++ {
		n := e.fetchCtx(f[i], width)
		fetched += n
		width -= n
	}
	if fetched == 0 {
		e.Metrics.ZeroFetch++
	}
}

// fetchLess is the ICOUNT fetch-priority order: fewest in-flight
// instructions first, rotation distance from rr breaking ties.
func (e *Engine) fetchLess(a, b, rr int) bool {
	if !e.Cfg.RoundRobinFetch {
		if sa, sb := e.ctxs[a].sz, e.ctxs[b].sz; sa != sb {
			return sa < sb
		}
	}
	n := e.Cfg.Contexts
	return (a-rr+n)%n < (b-rr+n)%n
}

// fetchCtx fetches up to width instructions from one context, returning the
// number fetched.
func (e *Engine) fetchCtx(ctx, width int) int {
	c := &e.ctxs[ctx]
	n := 0
	firstLine := true
	// fin aliases engine-owned scratch: its address flows into Feed interface
	// calls (Trap/Translate), so a per-iteration local would be forced to the
	// heap on every fetchCtx call.
	fin := &e.fetchScratch
	for n < width && !c.full() {
		fromWrong := c.wrong != nil
		if fromWrong {
			*fin = c.wrong.next()
		} else {
			var ok bool
			*fin, ok = e.Feed.InstAt(ctx, c.fetchIdx)
			if !ok {
				break
			}
		}

		line := fin.PC >> 6
		if firstLine || line != c.lastILine {
			if line == c.pendingILine {
				// The fill we were waiting on has returned (fetchable()
				// held us until icacheReadyAt); consume it directly.
				c.pendingILine = ^uint64(0)
				c.lastILine = line
				firstLine = false
			} else {
				paddr, ok := e.ifetchTranslate(ctx, fin, fromWrong)
				if !ok {
					break // ITLB trap spliced (correct path) or wrong path stalled
				}
				res := e.Hier.AccessI(paddr, agentOf(fin), e.now)
				if res.Stall {
					break
				}
				c.lastILine = line
				firstLine = false
				if res.Ready > e.now+1 {
					c.icacheReadyAt = res.Ready
					c.pendingILine = line
					break // I-miss: nothing from this line this cycle
				}
			}
		}

		if !fromWrong {
			c.fetchIdx++
		}
		u := e.push(c, *fin, fromWrong)
		e.Metrics.Fetched++
		n++

		if fin.Class.IsBranch() && !fromWrong {
			ag := agentOf(fin)
			pred := e.Pred.Predict(ctx, &fin.Inst, ag)
			misp := e.Pred.Resolve(ctx, &fin.Inst, pred, ag)
			if misp {
				u.mispred = true
				wpc := fin.PC + 4
				if pred.Taken && pred.Target != 0 {
					wpc = pred.Target
				}
				c.startWrong(wpc, *fin)
				break
			}
			if fin.ControlTransfer() {
				break // taken-branch fetch break
			}
		}
		if fin.Class == isa.PALCall && fin.Syscall != 0 {
			break // syscalls serialize the front end
		}
	}
	return n
}

// push appends a fetched instruction to the context's ROB.
func (e *Engine) push(c *ctxState, fin FedInst, wrongPath bool) *uop {
	pos := (c.head + c.sz) & (len(c.rob) - 1)
	e.nextID++
	idx := uint64(0)
	if wrongPath {
		idx = ^uint64(0)
	} else {
		idx = c.fetchIdx - 1
	}
	c.rob[pos] = uop{
		in:        fin,
		idx:       idx,
		seq:       c.nextSeq,
		id:        e.nextID,
		state:     stFetched,
		fetchedAt: e.now,
		wrongPath: wrongPath,
	}
	c.nextSeq++
	c.sz++
	return &c.rob[pos]
}

// ifetchTranslate translates an instruction fetch address. PAL-mode fetches
// bypass the ITLB (PAL code runs physically addressed on the Alpha); other
// modes use the shared ITLB. ok=false means the fetch cannot proceed this
// cycle (and, on the correct path, an ITLB handler has been spliced).
func (e *Engine) ifetchTranslate(ctx int, fin *FedInst, fromWrong bool) (uint64, bool) {
	if fin.Mode == isa.PAL {
		return mem.PALPhysBase + (fin.PC-mem.PALTextBase)%mem.PALPhysSize, true
	}
	ag := agentOf(fin)
	pa, hit := e.ITLB.Lookup(fin.ASN, fin.PC, ag)
	if hit {
		return pa, true
	}
	if e.Cfg.AppOnly {
		pa = e.Feed.Translate(fin, fin.PC)
		e.ITLB.Insert(fin.ASN, fin.PC, pa, ag)
		return pa, true
	}
	if fromWrong {
		return 0, false
	}
	e.Metrics.ITLBTraps++
	c := &e.ctxs[ctx]
	e.Feed.Trap(ctx, c.fetchIdx, fin, TrapITLB, fin.PC)
	return 0, false
}

// ---------------------------------------------------------------- accounting

func (e *Engine) attribute() {
	for ctx := range e.ctxs {
		c := &e.ctxs[ctx]
		if c.sz == 0 && !c.hadWork && e.Feed.Halted(ctx) {
			// Nothing in flight, nothing to fetch, no runnable thread:
			// a truly idle (halted) context. Momentary starvation (trap
			// serialization) keeps its current attribution instead.
			e.Cycles.Add(sys.CatIdle, 0, isa.Idle)
			continue
		}
		cat, mode, sysno := c.lastCat, c.lastMode, c.lastSys
		tid := c.lastTID
		for i := 0; i < c.sz; i++ {
			u := c.robAt(i)
			if !u.wrongPath {
				cat, mode, sysno = u.in.Cat, u.in.Mode, u.in.Sys
				tid = u.in.TID
				break
			}
		}
		e.Cycles.Add(cat, sysno, mode)
		e.threadStat(tid).CtxCycles++
	}
}

// CheckInvariants panics if internal bookkeeping is inconsistent; tests call
// it after stepping.
func (e *Engine) CheckInvariants() {
	if e.intRegsUsed < 0 || e.fpRegsUsed < 0 {
		panic(fmt.Sprintf("pipeline: negative reg usage int=%d fp=%d", e.intRegsUsed, e.fpRegsUsed))
	}
	usedInt, usedFP := 0, 0
	for ctx := range e.ctxs {
		c := &e.ctxs[ctx]
		if c.dispatch > c.sz || c.dispatch < 0 {
			panic("pipeline: dispatch pointer out of range")
		}
		for i := 0; i < c.sz; i++ {
			u := c.robAt(i)
			if u.seq != c.headSeq+uint64(i) {
				panic("pipeline: non-contiguous ROB sequence")
			}
			if u.usesInt {
				usedInt++
			}
			if u.usesFP {
				usedFP++
			}
		}
	}
	if usedInt != e.intRegsUsed || usedFP != e.fpRegsUsed {
		panic(fmt.Sprintf("pipeline: reg accounting mismatch int %d!=%d fp %d!=%d",
			usedInt, e.intRegsUsed, usedFP, e.fpRegsUsed))
	}
}
