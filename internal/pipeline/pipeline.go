// Package pipeline implements the cycle-level simultaneous-multithreaded
// out-of-order core of the paper's Table 1, and its superscalar baseline.
//
// The engine is execution-driven on instruction feeds supplied by the
// behavioral kernel (package kernel): each hardware context fetches from a
// per-context stream of decoded instructions, with branch prediction,
// wrong-path fetch after mispredictions, ICOUNT-2.8 fetch chooser, register
// renaming limits, 32-entry issue queues, the paper's functional-unit
// complement (6 integer — 4 load/store + 2 synchronization — and 4 floating
// point), a 12-wide in-order-per-thread retire stage, TLB-miss and
// interrupt traps, and the shared cache hierarchy/branch hardware from
// internal/cache and internal/bpred.
//
// The superscalar baseline is the same engine configured with one hardware
// context and a 2-stage-shorter front end (§2.1: the superscalar lacks the
// extra contexts and two pipeline stages, due to its smaller register file).
//
// Documented simplifications (all shape-preserving):
//   - Branch-predictor tables are updated at fetch time rather than at
//     branch resolution (standard trace-simulation practice); mispredict
//     *timing* is still resolution-based: wrong-path fetch continues until
//     the branch's execute completes, then the context squashes and
//     redirects.
//   - Wrong-path instructions exercise the fetch path (ITLB, I-cache,
//     fetch bandwidth) but do not access the data cache or raise traps.
//   - Register dependency distances resolve against the same context's
//     recent instructions, approximating dependences across trap splices.
package pipeline

import (
	"fmt"
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/sys"
	"repro/internal/tlb"
	"strings"
)

// TrapKind identifies why the pipeline is re-entering the feed.
type TrapKind uint8

const (
	// TrapDTLB is a data-TLB miss (precise, at head of the context's ROB).
	TrapDTLB TrapKind = iota
	// TrapITLB is an instruction-TLB miss (at fetch).
	TrapITLB
	// TrapInterrupt is an external interrupt delivered to the context.
	TrapInterrupt
)

func (k TrapKind) String() string {
	switch k {
	case TrapDTLB:
		return "dtlb"
	case TrapITLB:
		return "itlb"
	case TrapInterrupt:
		return "interrupt"
	}
	return "trap?"
}

// FedInst is one decoded instruction delivered by the OS feed, carrying the
// software-thread identity the hardware needs.
type FedInst struct {
	isa.Inst
	// TID is the software thread (for conflict classification and
	// dependence tracking).
	TID uint32
	// ASN is the address-space number for TLB lookups.
	ASN uint16
	// PID is the process for page-table operations.
	PID uint64
	// Cat attributes the instruction's cycles for Figures 1–7.
	Cat sys.Category
	// Sys refines CatSyscall by syscall number (Figure 7).
	Sys uint16
}

// Feed is the interface the behavioral kernel implements to supply each
// hardware context's instruction stream and react to pipeline events.
type Feed interface {
	// InstAt returns the instruction at stream index idx of context ctx.
	// ok=false means the context has nothing to fetch (trap serialization,
	// blocked generation); the pipeline will retry later. Indices are
	// stable: re-reading an index returns the same instruction unless a
	// Trap spliced new code at or before it.
	InstAt(ctx int, idx uint64) (FedInst, bool)
	// Retired notifies, in program order, that the instruction at idx
	// committed. The kernel uses this to unpause generation after
	// serializing instructions (syscall entry, PAL return).
	Retired(ctx int, idx uint64, in *FedInst)
	// Trap asks the kernel to splice handler code into ctx's stream at
	// idx (the instruction previously at idx, if any, follows the spliced
	// code). For TrapDTLB/TrapITLB the kernel also installs the
	// translation for vaddr. The pipeline refetches from idx afterwards.
	Trap(ctx int, idx uint64, in *FedInst, kind TrapKind, vaddr uint64)
	// Cycle is called once per cycle; the kernel returns the contexts to
	// which it wants to deliver interrupts this cycle.
	Cycle(now uint64) []int
	// Translate returns the physical address for vaddr in in's address
	// space, creating the mapping if needed; used only in application-only
	// mode, where TLB misses fill instantly (§2.3.1).
	Translate(in *FedInst, vaddr uint64) uint64
	// Halted reports whether the context is truly idle (no runnable
	// thread), as opposed to momentarily starved (trap serialization);
	// cycle attribution uses it.
	Halted(ctx int) bool
}

// Config sets the core's resources (defaults per the paper's Table 1).
type Config struct {
	// Contexts is the number of hardware contexts (8 SMT, 1 superscalar).
	Contexts int
	// FetchWidth is instructions fetched per cycle (8).
	FetchWidth int
	// FetchContexts is the number of contexts fetched per cycle (2; the
	// 2.8 ICOUNT scheme).
	FetchContexts int
	// Depth is the pipeline depth (9 SMT, 7 superscalar); it sets the
	// fetch-to-issue latency and thus the mispredict penalty.
	Depth int
	// IntQueueSize and FPQueueSize are the instruction-queue capacities (32).
	IntQueueSize, FPQueueSize int
	// IntRegs and FPRegs are renaming-register counts (100 each).
	IntRegs, FPRegs int
	// RetireWidth is instructions retired per cycle (12).
	RetireWidth int
	// IntUnits is the number of integer units (6), of which LSUnits (4)
	// can execute loads/stores and SyncUnits (2) synchronization ops.
	IntUnits, LSUnits, SyncUnits, FPUnits int
	// DCachePorts is concurrent data-cache accesses per cycle (2).
	DCachePorts int
	// ROBSize is the per-context in-flight instruction cap.
	ROBSize int
	// AppOnly selects application-only simulation: system calls and TLB
	// traps complete instantly with no kernel code (§2.3.1).
	AppOnly bool
	// RedirectPenalty is extra bubble cycles on squash/redirect beyond
	// the front-end refill implied by Depth.
	RedirectPenalty int
	// RoundRobinFetch replaces the ICOUNT fetch chooser with plain
	// round-robin (the ablation for the paper's 2.8 ICOUNT scheme).
	RoundRobinFetch bool
}

// SMTConfig returns the paper's 8-context SMT configuration.
func SMTConfig() Config {
	return Config{
		Contexts:        8,
		FetchWidth:      8,
		FetchContexts:   2,
		Depth:           9,
		IntQueueSize:    32,
		FPQueueSize:     32,
		IntRegs:         100,
		FPRegs:          100,
		RetireWidth:     12,
		IntUnits:        6,
		LSUnits:         4,
		SyncUnits:       2,
		FPUnits:         4,
		DCachePorts:     2,
		ROBSize:         64,
		RedirectPenalty: 2,
	}
}

// SuperscalarConfig returns the out-of-order superscalar baseline:
// identical resources minus the extra contexts, with a 2-stage-shorter
// pipeline (§2.1).
func SuperscalarConfig() Config {
	c := SMTConfig()
	c.Contexts = 1
	c.FetchContexts = 1
	c.Depth = 7
	return c
}

// frontLatency is the fetch-to-issue-eligibility latency implied by the
// pipeline depth (fetch, decode, rename, queue stages ahead of issue).
func (c Config) frontLatency() uint64 {
	fl := c.Depth - 4
	if fl < 1 {
		fl = 1
	}
	return uint64(fl)
}

type uopState uint8

const (
	stFetched uopState = iota
	stQueued
	stIssued
	stDone
)

// uop is one in-flight instruction.
type uop struct {
	in        FedInst
	idx       uint64 // feed stream index (wrong-path: ^0)
	seq       uint64 // per-context sequence number
	id        uint64 // globally unique, validates completion events
	state     uopState
	fetchedAt uint64
	doneAt    uint64
	wrongPath bool
	mispred   bool   // correct-path branch that was mispredicted
	faulted   bool   // DTLB miss awaiting precise trap at ROB head
	paddr     uint64 // translated data address (memory classes, set at issue)
	usesInt   bool   // consumed an integer renaming register
	usesFP    bool
	inQueue   bool // occupying an issue-queue slot
}

// event is a completion event.
type event struct {
	at  uint64
	ctx int
	seq uint64
	id  uint64
}

// eventHeap is a typed min-heap ordered by completion cycle. It implements
// the exact sift algorithms of container/heap so that the raw array layout
// (which the checkpoint snapshot copies verbatim) is bit-identical to the
// previous container/heap-based implementation — but without boxing every
// event through interface{} on the per-cycle hot path.
type eventHeap []event

// push inserts ev, restoring the heap property by sifting up.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	q := *h
	j := len(q) - 1
	for j > 0 {
		i := (j - 1) / 2 // parent
		if q[j].at >= q[i].at {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
}

// pop removes and returns the minimum element. It mirrors container/heap.Pop:
// swap the root with the last element, sift the new root down over the
// shortened heap, then strip the tail.
func (h *eventHeap) pop() event {
	q := *h
	n := len(q) - 1
	q[0], q[n] = q[n], q[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && q[j2].at < q[j1].at {
			j = j2
		}
		if q[j].at >= q[i].at {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
	ev := q[n]
	*h = q[:n]
	return ev
}

// wrongGen generates wrong-path junk instructions from a mispredicted
// target: sequential PCs, mostly ALU ops with occasional branches, never
// raising traps.
type wrongGen struct {
	pc    uint64
	state uint64
	tmpl  FedInst
}

// startWrong (re)initializes the context's embedded wrong-path generator and
// installs it; the zero-allocation replacement for the old newWrongGen.
func (c *ctxState) startWrong(pc uint64, tmpl FedInst) {
	c.wrongBuf = wrongGen{pc: pc, state: pc ^ 0x9e3779b97f4a7c15, tmpl: tmpl}
	c.wrong = &c.wrongBuf
}

func (w *wrongGen) next() FedInst {
	w.state = w.state*6364136223846793005 + 1442695040888963407
	in := w.tmpl
	in.PC = w.pc
	in.Addr = 0
	in.Physical = false
	in.Taken = false
	in.Syscall = 0
	r := w.state >> 59
	switch {
	case r < 20:
		in.Class = isa.IntALU
	case r < 24:
		in.Class = isa.Load
	default:
		in.Class = isa.IntALU
	}
	in.Dep1 = uint16(1 + (w.state>>32)%8)
	in.Dep2 = 0
	w.pc += 4
	return in
}

// ctxState is the per-hardware-context pipeline state.
type ctxState struct {
	rob      []uop
	head, sz int
	headSeq  uint64
	nextSeq  uint64
	fetchIdx uint64
	dispatch int // count of dispatched uops from head (<= sz)

	icacheReadyAt uint64
	redirectAt    uint64
	wrong         *wrongGen
	// wrongBuf is the backing store for wrong: mispredictions are frequent
	// enough that allocating a fresh generator per wrong path shows up in
	// profiles, so wrong always points at this embedded value.
	wrongBuf  wrongGen //detlint:ignore snapshotcomplete backing store; serialized through the wrong pointer's fields
	lastILine uint64
	// hadWork records whether the context had anything to fetch this
	// cycle; attribution uses it to distinguish a drained-but-stalled
	// context from a truly idle one.
	hadWork bool
	// pendingILine is the line whose fill the context is waiting on; when
	// the fill returns, its instructions are delivered directly to the
	// fetch buffer even if the line has since been evicted (critical-word
	// bypass — guarantees forward progress under heavy set conflicts).
	pendingILine uint64
	lastCat      sys.Category
	lastMode     isa.Mode
	lastSys      uint16
	lastTID      uint32
}

func (c *ctxState) robAt(i int) *uop { // i-th from head
	return &c.rob[(c.head+i)&(len(c.rob)-1)]
}

func (c *ctxState) full() bool { return c.sz == len(c.rob) }

// qref locates a queued uop for the shared issue-queue lists.
type qref struct {
	ctx int
	seq uint64
	id  uint64
}

// ThreadStat accumulates per-software-thread execution counters, for
// per-benchmark breakdowns (not a paper artifact, but what a user of the
// tool wants when one program of the mix behaves oddly).
type ThreadStat struct {
	// Retired counts committed instructions.
	Retired uint64
	// CtxCycles counts context-cycles attributed to the thread.
	CtxCycles uint64
}

// Metrics aggregates the engine-level counters of Tables 4 and 6.
type Metrics struct {
	Cycles        uint64
	Retired       uint64
	Fetched       uint64
	Squashed      uint64
	ZeroFetch     uint64
	ZeroIssue     uint64
	MaxIssue      uint64
	FetchableSum  uint64
	IntIssued     uint64
	FPIssued      uint64
	Interrupts    uint64
	DTLBTraps     uint64
	ITLBTraps     uint64
	SyscallsSeen  uint64
	RetireStallSB uint64
	// Per-context-cycle unfetchability reasons (diagnostics).
	StallRedirect uint64
	StallIMiss    uint64
	StallROBFull  uint64
	StallFeed     uint64
}

// IPC returns retired instructions per cycle.
func (m *Metrics) IPC() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Retired) / float64(m.Cycles)
}

// SquashPct returns squashed instructions as a percentage of fetched.
func (m *Metrics) SquashPct() float64 {
	if m.Fetched == 0 {
		return 0
	}
	return 100 * float64(m.Squashed) / float64(m.Fetched)
}

// AvgFetchable returns the average number of fetchable contexts per cycle.
func (m *Metrics) AvgFetchable() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.FetchableSum) / float64(m.Cycles)
}

// PctCycles returns n as a percentage of total cycles.
func (m *Metrics) PctCycles(n uint64) float64 {
	if m.Cycles == 0 {
		return 0
	}
	return 100 * float64(n) / float64(m.Cycles)
}

// Engine is the simulated core plus all shared hardware structures.
type Engine struct {
	Cfg  Config //detlint:ignore snapshotcomplete configuration fixed at construction
	Feed Feed   //detlint:ignore snapshotcomplete kernel wiring attached at assembly, not serializable

	Hier *cache.Hierarchy
	ITLB *tlb.TLB
	DTLB *tlb.TLB
	Pred *bpred.Predictor
	SB   *cache.StoreBuffer

	Metrics Metrics
	Cycles  stats.Cycles
	Mix     stats.Mix

	now       uint64
	ctxs      []ctxState
	events    eventHeap
	nextID    uint64
	perThread []ThreadStat

	intQ, fpQ        []qref // issue-queue occupants
	intRegsUsed      int
	fpRegsUsed       int
	rrRetire         int
	rrFetch          int
	rrDispatch       int
	fetchableScratch []int   //detlint:ignore snapshotcomplete scratch buffer, carries no state across cycles
	retireScratch    FedInst //detlint:ignore snapshotcomplete scratch copy handed to Feed.Retired, dead after the call
	trapScratch      FedInst //detlint:ignore snapshotcomplete scratch copy handed to Feed.Trap, dead after the call
	fetchScratch     FedInst //detlint:ignore snapshotcomplete scratch for the instruction being fetched, dead after fetchCtx
	ffScratch        FedInst //detlint:ignore snapshotcomplete scratch for the instruction being fast-forwarded, dead after ffExec

	// smp is the sampling FSM (sample.go); zero value means sampling off.
	smp sampler
}

// New builds an engine over the given feed and hardware structures.
func New(cfg Config, feed Feed, hier *cache.Hierarchy) *Engine {
	if cfg.ROBSize&(cfg.ROBSize-1) != 0 {
		panic("pipeline: ROBSize must be a power of two")
	}
	e := &Engine{
		Cfg:  cfg,
		Feed: feed,
		Hier: hier,
		ITLB: tlb.New("ITLB", 128),
		DTLB: tlb.New("DTLB", 128),
		Pred: bpred.New(cfg.Contexts),
		SB:   cache.NewStoreBuffer(hier.Cfg.StoreBufferEntries),
		ctxs: make([]ctxState, cfg.Contexts),
		// Preallocate every per-cycle scratch structure at its steady-state
		// bound so the cycle loop never grows a slice: the issue queues are
		// hard-capped by configuration, the completion heap by the total
		// in-flight window, and the fetchable set by the context count.
		events:           make(eventHeap, 0, cfg.Contexts*cfg.ROBSize),
		intQ:             make([]qref, 0, cfg.IntQueueSize),
		fpQ:              make([]qref, 0, cfg.FPQueueSize),
		fetchableScratch: make([]int, 0, cfg.Contexts),
	}
	for i := range e.ctxs {
		e.ctxs[i].rob = make([]uop, cfg.ROBSize)
		e.ctxs[i].lastCat = sys.CatIdle
		e.ctxs[i].lastMode = isa.Idle
		e.ctxs[i].pendingILine = ^uint64(0)
	}
	return e
}

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.now }

// DiagString renders a one-look snapshot of per-context pipeline state for
// watchdog diagnostics: in-flight count, fetch position, and why a context
// is not making progress (halted, awaiting redirect, or an I-miss).
func (e *Engine) DiagString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline: cycle=%d retired=%d fetched=%d intQ=%d fpQ=%d\n",
		e.now, e.Metrics.Retired, e.Metrics.Fetched, len(e.intQ), len(e.fpQ))
	for i := range e.ctxs {
		c := &e.ctxs[i]
		state := "running"
		switch {
		case e.Feed.Halted(i) && c.sz == 0:
			state = "halted"
		case e.now < c.redirectAt:
			state = fmt.Sprintf("redirect(+%d)", c.redirectAt-e.now)
		case c.icacheReadyAt > e.now:
			state = fmt.Sprintf("imiss(+%d)", c.icacheReadyAt-e.now)
		case c.wrong != nil:
			state = "wrong-path"
		}
		fmt.Fprintf(&b, "  ctx%d: inflight=%d fetchIdx=%d %s\n", i, c.sz, c.fetchIdx, state)
	}
	return b.String()
}

// threadStat returns the stat slot for tid, growing the table as needed.
func (e *Engine) threadStat(tid uint32) *ThreadStat {
	// Interrupt/wrong-path pseudo-TIDs share one overflow slot.
	if tid > 1<<16 {
		tid = 0
	}
	for uint32(len(e.perThread)) <= tid {
		e.perThread = append(e.perThread, ThreadStat{})
	}
	return &e.perThread[tid]
}

// ThreadStats returns a copy of the per-thread counters for tid.
func (e *Engine) ThreadStats(tid uint32) ThreadStat {
	if tid > 1<<16 {
		tid = 0
	}
	if uint32(len(e.perThread)) <= tid {
		return ThreadStat{}
	}
	return e.perThread[tid]
}
