package pipeline

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
)

func TestROBSizeMustBePowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two ROB accepted")
		}
	}()
	cfg := SMTConfig()
	cfg.ROBSize = 48
	New(cfg, newTestFeed(8), cache.NewHierarchy(cache.DefaultHierConfig()))
}

func TestRenameRegisterLimitStallsDispatch(t *testing.T) {
	// 2000 dependent-on-nothing ALU ops across 8 contexts: in-flight
	// reg-consuming uops must never exceed IntRegs.
	cfg := SMTConfig()
	cfg.IntRegs = 10
	f := newTestFeed(8)
	for ctx := 0; ctx < 8; ctx++ {
		for i := 0; i < 200; i++ {
			in := userALU(0x12000000+uint64(ctx)<<20+uint64(i%64)*4, 0)
			in.TID = uint32(ctx + 1)
			in.ASN = uint16(ctx + 1)
			f.bufs[ctx] = append(f.bufs[ctx], in)
		}
	}
	e := build(t, cfg, f)
	for i := 0; i < 50; i++ {
		e.Run(100)
		e.CheckInvariants() // includes reg accounting vs limit consistency
		if e.intRegsUsed > cfg.IntRegs {
			t.Fatalf("int regs in use %d > limit %d", e.intRegsUsed, cfg.IntRegs)
		}
	}
	if e.Metrics.Retired == 0 {
		t.Fatal("nothing retired under tight rename limit")
	}
}

func TestIssueQueueCapacityRespected(t *testing.T) {
	cfg := SMTConfig()
	cfg.IntQueueSize = 4
	f := newTestFeed(8)
	fillALU(f, 0, 300)
	e := build(t, cfg, f)
	for i := 0; i < 40; i++ {
		e.Run(50)
		if len(e.intQ) > cfg.IntQueueSize {
			t.Fatalf("int queue holds %d > %d", len(e.intQ), cfg.IntQueueSize)
		}
	}
}

func TestRetireWidthCap(t *testing.T) {
	cfg := SMTConfig()
	cfg.RetireWidth = 3
	f := newTestFeed(8)
	for ctx := 0; ctx < 4; ctx++ {
		for i := 0; i < 300; i++ {
			in := userALU(0x12000000+uint64(ctx)<<20+uint64(i%64)*4, 0)
			in.TID = uint32(ctx + 1)
			f.bufs[ctx] = append(f.bufs[ctx], in)
		}
	}
	e := build(t, cfg, f)
	prev := uint64(0)
	for i := 0; i < 400; i++ {
		e.Run(1)
		d := e.Metrics.Retired - prev
		prev = e.Metrics.Retired
		if d > 3 {
			t.Fatalf("retired %d in one cycle with width 3", d)
		}
	}
}

func TestFPQueueAndUnits(t *testing.T) {
	f := newTestFeed(8)
	for i := 0; i < 100; i++ {
		in := userALU(0x12000000+uint64(i%64)*4, 0)
		if i%2 == 0 {
			in.Class = isa.FPALU
		}
		f.bufs[0] = append(f.bufs[0], in)
	}
	e := build(t, SMTConfig(), f)
	e.Run(3000)
	if e.Metrics.FPIssued == 0 {
		t.Fatal("no FP instructions issued")
	}
	if e.Metrics.Retired != 100+3 { // +ITLB handler
		t.Fatalf("retired %d", e.Metrics.Retired)
	}
	if e.fpRegsUsed != 0 {
		t.Fatalf("fp regs leaked: %d", e.fpRegsUsed)
	}
}

func TestSyncOpsUseSyncUnits(t *testing.T) {
	f := newTestFeed(8)
	for i := 0; i < 60; i++ {
		in := userALU(0x12000000+uint64(i%64)*4, 0)
		if i%3 == 0 {
			in.Class = isa.Sync
			in.Addr = 0x20000000 + uint64(i)*64
		}
		f.bufs[0] = append(f.bufs[0], in)
	}
	e := build(t, SMTConfig(), f)
	e.Run(4000)
	if e.Metrics.Retired < 60 {
		t.Fatalf("retired %d", e.Metrics.Retired)
	}
	if e.Hier.L1D.Accesses[0] == 0 {
		t.Fatal("sync ops never accessed the data cache")
	}
}

func TestRoundRobinFetchRuns(t *testing.T) {
	cfg := SMTConfig()
	cfg.RoundRobinFetch = true
	f := newTestFeed(8)
	for ctx := 0; ctx < 8; ctx++ {
		for i := 0; i < 200; i++ {
			in := userALU(0x12000000+uint64(ctx)<<20+uint64(ctx)*1024+uint64(i%128)*4, 1)
			in.TID = uint32(ctx + 1)
			in.ASN = uint16(ctx + 1)
			f.bufs[ctx] = append(f.bufs[ctx], in)
		}
	}
	e := build(t, cfg, f)
	e.Run(6000)
	e.CheckInvariants()
	if e.Metrics.Retired != 8*(200+3) {
		t.Fatalf("retired %d under round-robin fetch", e.Metrics.Retired)
	}
}

func TestSuperscalarShorterFrontEnd(t *testing.T) {
	smt, ss := SMTConfig(), SuperscalarConfig()
	if ss.Depth >= smt.Depth {
		t.Fatal("superscalar pipeline not shorter")
	}
	if ss.Contexts != 1 || ss.IntUnits != smt.IntUnits || ss.IntRegs != smt.IntRegs {
		t.Fatal("superscalar must differ only in contexts and depth")
	}
}

func TestTrapKindStrings(t *testing.T) {
	if TrapDTLB.String() != "dtlb" || TrapITLB.String() != "itlb" ||
		TrapInterrupt.String() != "interrupt" || TrapKind(9).String() == "" {
		t.Fatal("trap kind strings wrong")
	}
}

func TestMetricsHelpersEmpty(t *testing.T) {
	var m Metrics
	if m.IPC() != 0 || m.SquashPct() != 0 || m.AvgFetchable() != 0 || m.PctCycles(5) != 0 {
		t.Fatal("zero metrics should report zeros")
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	cfg := SMTConfig()
	hcfg := cache.DefaultHierConfig()
	hcfg.StoreBufferEntries = 2
	f := newTestFeed(8)
	for i := 0; i < 50; i++ {
		in := userALU(0x12000000+uint64(i%32)*4, 0)
		in.Class = isa.Store
		in.Addr = 0x20000000 + uint64(i%8)*64
		f.bufs[0] = append(f.bufs[0], in)
	}
	e := New(cfg, f, cache.NewHierarchy(hcfg))
	f.e = e
	e.Run(4000)
	if e.Metrics.Retired < 50 {
		t.Fatalf("retired %d with tiny store buffer", e.Metrics.Retired)
	}
	if e.Metrics.RetireStallSB == 0 {
		t.Fatal("tiny store buffer never stalled retirement")
	}
}

func TestICOUNTPrefersEmptierContext(t *testing.T) {
	// Context 0 gets long-latency dependent loads (clogs its ROB); context
	// 1 gets cheap ALU work. ICOUNT should give ctx 1 the fetch slots, so
	// it retires far more.
	f := newTestFeed(8)
	for i := 0; i < 400; i++ {
		in := userALU(0x12000000+uint64(i%64)*4, 1)
		in.Class = isa.Load
		in.Addr = 0x20000000 + uint64(i)*8192 // new page per load: slow
		f.bufs[0] = append(f.bufs[0], in)
	}
	for i := 0; i < 4000; i++ {
		in := userALU(0x12100000+1024+uint64(i%64)*4, 0)
		in.TID = 2
		in.ASN = 2
		f.bufs[1] = append(f.bufs[1], in)
	}
	e := build(t, SMTConfig(), f)
	e.Run(15_000)
	slow := len(f.retired[0])
	fast := len(f.retired[1])
	if fast < slow*3 {
		t.Fatalf("ICOUNT did not shield the fast context: slow=%d fast=%d", slow, fast)
	}
}

func TestWrongPathPollutesFetchPath(t *testing.T) {
	// A tight loop around one always-mispredicting branch (alternating
	// direction defeats a cold predictor long enough) must fetch more than
	// it retires, and the extra fetches must touch the I-cache.
	f := newTestFeed(8)
	for i := 0; i < 400; i++ {
		in := userALU(0x12000000+uint64(i%32)*4, 0)
		if i%8 == 7 {
			in.Class = isa.CondBranch
			in.Taken = (i/8)%2 == 0
			in.Target = in.PC + 64
		}
		f.bufs[0] = append(f.bufs[0], in)
	}
	e := build(t, SMTConfig(), f)
	e.Run(10_000)
	if e.Metrics.Squashed == 0 {
		t.Fatal("no wrong-path instructions")
	}
	if e.Metrics.Fetched <= e.Metrics.Retired+e.Metrics.Squashed-1 &&
		e.Metrics.Fetched < e.Metrics.Retired {
		t.Fatalf("fetch accounting wrong: fetched=%d retired=%d squashed=%d",
			e.Metrics.Fetched, e.Metrics.Retired, e.Metrics.Squashed)
	}
	// Wrong-path PCs extend past the loop's 2 lines.
	if e.Hier.L1I.Accesses[0] == 0 {
		t.Fatal("no instruction-cache activity")
	}
}

func TestPerThreadStats(t *testing.T) {
	f := newTestFeed(8)
	for ctx := 0; ctx < 2; ctx++ {
		for i := 0; i < 200; i++ {
			in := userALU(0x12000000+uint64(ctx)<<20+uint64(ctx)*1024+uint64(i%64)*4, 0)
			in.TID = uint32(ctx + 1)
			in.ASN = uint16(ctx + 1)
			f.bufs[ctx] = append(f.bufs[ctx], in)
		}
	}
	e := build(t, SMTConfig(), f)
	e.Run(8_000)
	s1, s2 := e.ThreadStats(1), e.ThreadStats(2)
	if s1.Retired != 200 || s2.Retired != 200 { // handler insts carry their own TID
		t.Fatalf("per-thread retired: %d / %d, want 200 each", s1.Retired, s2.Retired)
	}
	if s1.CtxCycles == 0 || s2.CtxCycles == 0 {
		t.Fatal("no per-thread cycles attributed")
	}
	if e.ThreadStats(9999).Retired != 0 {
		t.Fatal("unknown thread has stats")
	}
}
