// Sampled simulation: deterministic functional fast-forward alternating
// with full-detail measurement windows (SMARTS-style).
//
// In fast-forward the engine drains the kernel feed with no
// rename/queues/issue modeling, but every instruction still drives the real
// microarchitectural state: instruction fetches go through the ITLB and L1I,
// branches train the shared predictor, and loads/stores translate through
// the DTLB and access the L1D/L2 — so when a detail window opens, caches,
// TLBs and branch tables are warm. The drain rate is paced at the IPC the
// detail windows measure (capped at commit width): an unpaced drain on a
// closed-loop workload like SPECWeb would execute several times the
// instructions per cycle the detailed machine can retire — simulated time
// would race ahead of program progress, skewing every per-10ms interaction
// and making fast-forward cycles *more* expensive than detailed ones. Detail windows run the unmodified
// cycle-accurate step() and contribute one observation per window to the
// per-metric Series estimators; fast-forward cycles contribute nothing to
// cycle attribution, so windowed percentages (kernel/user/idle shares) read
// directly as the sampled estimate.
//
// The schedule is a fixed period, with the warmup+detail block placed at a
// seeded pseudo-random offset inside each period (splitmix64 on the
// configured seed). The jitter decorrelates windows from the 10 ms interrupt
// tick without perturbing the period, and is pure engine state: same seed ⇒
// bit-identical schedule, on any host and any worker count.
package pipeline

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/sys"
)

// SampleConfig parameterizes sampling mode. All values are cycles.
type SampleConfig struct {
	// Period is the schedule period: each period contains one warmup+detail
	// block, the rest is fast-forward.
	Period uint64
	// DetailWindow is the length of the full-detail measurement window.
	DetailWindow uint64
	// Warmup is the full-detail run-in before each measurement window; it
	// refills pipeline state (ROB, queues, in-flight misses) that the
	// functional path does not model, and is excluded from the estimators.
	Warmup uint64
	// Seed drives the per-period placement jitter.
	Seed uint64
}

// samplePhase is the sampling FSM state. sampleOff must be the zero value so
// snapshots from pre-sampling checkpoints restore as "disabled".
type samplePhase uint8

const (
	sampleOff     samplePhase = iota // sampling disabled (full detail)
	sampleFFPre                      // fast-forward before the detail block
	sampleWarm                       // detailed warmup (not measured)
	sampleMeasure                    // detailed measurement window
	sampleFFPost                     // fast-forward after the detail block
)

// sampler is the sampling FSM embedded in the engine.
type sampler struct {
	cfg   SampleConfig
	phase samplePhase
	// left is cycles remaining in the current phase; post is the
	// fast-forward length scheduled after the current period's detail block.
	left, post uint64
	// rng is the splitmix64 state behind the placement jitter.
	rng uint64
	// pace is the fast-forward drain rate in instructions per cycle, as
	// paceFrac-bit fixed point; acc accumulates the fractional remainder
	// across cycles. pace starts at commit width and tracks the IPC each
	// measurement window observes, so fast-forwarded simulated time
	// advances program progress at the rate the detailed machine would.
	pace, acc uint64

	windows      uint64 // completed measurement windows
	ffCycles     uint64 // cycles spent in fast-forward
	detailCycles uint64 // cycles spent in detail (warmup + measure)

	// atWindow is set when the FSM opens a warmup+detail block and cleared
	// the moment the next cycle executes, so a checkpoint-library builder
	// stepping with RunToNextWindow can recognize the exact window-start
	// boundary (phase == sampleWarm, zero cycles of warmup executed).
	atWindow bool
	// libBuild switches the engine into library-generation mode: the FSM
	// still walks the identical window schedule (same RNG draws, same
	// placement), but warmup and measurement phases execute functionally
	// and closed windows contribute no observations — the detail work is
	// deferred to the per-window restore pass.
	libBuild bool

	// base* snapshot the counters at measurement-window open, so window
	// observations are deltas.
	baseCycles     stats.Cycles
	baseRetired    uint64
	baseCycleCount uint64

	// Per-window observation series (one data point per completed window).
	ipc, kernelPct, userPct, idlePct stats.Series
}

// paceFrac is the number of fractional bits in sampler.pace/acc.
const paceFrac = 8

// detailed reports whether the current phase runs the cycle-accurate step.
// In library-build mode every phase executes functionally: the schedule (and
// therefore the RNG stream and window placement) is identical, but the warmup
// and measurement cycles are deferred to the restore pass.
func (s *sampler) detailed() bool {
	return !s.libBuild && (s.phase == sampleWarm || s.phase == sampleMeasure)
}

// nextRand is splitmix64: deterministic, allocation-free, engine-local.
func (s *sampler) nextRand() uint64 {
	s.rng += 0x9e3779b97f4a7c15
	z := s.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SamplerSnap is the serialized sampling FSM.
type SamplerSnap struct {
	Cfg            SampleConfig
	Phase          uint8
	Left, Post     uint64
	RNG            uint64
	Pace, Acc      uint64
	Windows        uint64
	FFCycles       uint64
	DetailCycles   uint64
	BaseCycles     stats.Cycles
	BaseRetired    uint64
	BaseCycleCount uint64
	IPC            stats.Series
	KernelPct      stats.Series
	UserPct        stats.Series
	IdlePct        stats.Series
	AtWindow       bool
	LibBuild       bool
}

// Snapshot captures the sampling FSM.
func (s *sampler) Snapshot() SamplerSnap {
	return SamplerSnap{
		Cfg:            s.cfg,
		Phase:          uint8(s.phase),
		Left:           s.left,
		Post:           s.post,
		RNG:            s.rng,
		Pace:           s.pace,
		Acc:            s.acc,
		Windows:        s.windows,
		FFCycles:       s.ffCycles,
		DetailCycles:   s.detailCycles,
		BaseCycles:     s.baseCycles,
		BaseRetired:    s.baseRetired,
		BaseCycleCount: s.baseCycleCount,
		IPC:            s.ipc,
		KernelPct:      s.kernelPct,
		UserPct:        s.userPct,
		IdlePct:        s.idlePct,
		AtWindow:       s.atWindow,
		LibBuild:       s.libBuild,
	}
}

// Restore overwrites the sampling FSM from a snapshot.
func (s *sampler) Restore(sn SamplerSnap) {
	s.cfg = sn.Cfg
	s.phase = samplePhase(sn.Phase)
	s.left = sn.Left
	s.post = sn.Post
	s.rng = sn.RNG
	s.pace = sn.Pace
	s.acc = sn.Acc
	s.windows = sn.Windows
	s.ffCycles = sn.FFCycles
	s.detailCycles = sn.DetailCycles
	s.baseCycles = sn.BaseCycles
	s.baseRetired = sn.BaseRetired
	s.baseCycleCount = sn.BaseCycleCount
	s.ipc = sn.IPC
	s.kernelPct = sn.KernelPct
	s.userPct = sn.UserPct
	s.idlePct = sn.IdlePct
	s.atWindow = sn.AtWindow
	s.libBuild = sn.LibBuild
}

// SampleStats is the exported view of the sampling estimators, for reports.
type SampleStats struct {
	// Enabled reports whether the engine runs in sampling mode.
	Enabled bool
	// Windows is the number of completed measurement windows.
	Windows uint64
	// FFCycles and DetailCycles split total cycles by execution mode.
	FFCycles, DetailCycles uint64
	// IPC, KernelPct, UserPct, IdlePct hold one observation per window.
	IPC, KernelPct, UserPct, IdlePct stats.Series
}

// SampleStats returns the current sampling estimators.
func (e *Engine) SampleStats() SampleStats {
	s := &e.smp
	return SampleStats{
		Enabled:      s.phase != sampleOff,
		Windows:      s.windows,
		FFCycles:     s.ffCycles,
		DetailCycles: s.detailCycles,
		IPC:          s.ipc,
		KernelPct:    s.kernelPct,
		UserPct:      s.userPct,
		IdlePct:      s.idlePct,
	}
}

// Sub returns the difference s - prev (windowed reporting, like the other
// counter deltas in report.Delta).
func (s SampleStats) Sub(prev SampleStats) SampleStats {
	return SampleStats{
		Enabled:      s.Enabled,
		Windows:      s.Windows - prev.Windows,
		FFCycles:     s.FFCycles - prev.FFCycles,
		DetailCycles: s.DetailCycles - prev.DetailCycles,
		IPC:          s.IPC.Sub(prev.IPC),
		KernelPct:    s.KernelPct.Sub(prev.KernelPct),
		UserPct:      s.UserPct.Sub(prev.UserPct),
		IdlePct:      s.IdlePct.Sub(prev.IdlePct),
	}
}

// Merge combines two windowed SampleStats deltas (the additive inverse of
// Sub). Folding per-window deltas left-to-right in window order is exactly
// the accumulation a serial run performs, so the result is bit-identical
// regardless of how the windows were partitioned across workers.
func (s SampleStats) Merge(o SampleStats) SampleStats {
	return SampleStats{
		Enabled:      s.Enabled || o.Enabled,
		Windows:      s.Windows + o.Windows,
		FFCycles:     s.FFCycles + o.FFCycles,
		DetailCycles: s.DetailCycles + o.DetailCycles,
		IPC:          s.IPC.Merge(o.IPC),
		KernelPct:    s.KernelPct.Merge(o.KernelPct),
		UserPct:      s.UserPct.Merge(o.UserPct),
		IdlePct:      s.IdlePct.Merge(o.IdlePct),
	}
}

// EnableSampling switches the engine into sampling mode. It panics on an
// invalid configuration (core.Options.Validate rejects these earlier with a
// friendlier message). Safe on a freshly built engine; enabling drains any
// in-flight state to a functional boundary first.
func (e *Engine) EnableSampling(cfg SampleConfig) {
	if cfg.Period == 0 || cfg.DetailWindow == 0 {
		panic("pipeline: sampling needs Period > 0 and DetailWindow > 0")
	}
	if cfg.Warmup+cfg.DetailWindow >= cfg.Period {
		panic(fmt.Sprintf("pipeline: sampling warmup %d + window %d must leave fast-forward room in period %d",
			cfg.Warmup, cfg.DetailWindow, cfg.Period))
	}
	// Until the first window measures real IPC, fast-forward drains at
	// commit width (the machine's upper bound).
	e.smp = sampler{cfg: cfg, rng: cfg.Seed, pace: uint64(e.Cfg.RetireWidth) << paceFrac}
	e.drainToFunctional()
	// The first period opens with its detail block instead of a jittered
	// fast-forward lead: the window calibrates the pace to the workload's
	// measured IPC before any significant fast-forwarding happens.
	s := &e.smp
	s.phase = sampleWarm
	s.left = cfg.Warmup
	s.post = cfg.Period - cfg.Warmup - cfg.DetailWindow
	s.atWindow = true
}

// SetSampleLibraryBuild toggles library-generation mode (see sampler.libBuild).
// The engine must already be in sampling mode.
func (e *Engine) SetSampleLibraryBuild(on bool) {
	if e.smp.phase == sampleOff {
		panic("pipeline: SetSampleLibraryBuild requires sampling mode")
	}
	e.smp.libBuild = on
}

// AtWindowStart reports whether the engine sits exactly at the opening
// boundary of a warmup+detail block: the next detailed cycle is the first
// warmup cycle of the window. This is the point a checkpoint-library builder
// snapshots.
func (e *Engine) AtWindowStart() bool {
	return e.smp.atWindow
}

// SampleWindow returns the configured warmup and detail-window lengths, in
// cycles. It panics when sampling is off.
func (e *Engine) SampleWindow() (warmup, detail uint64) {
	if e.smp.phase == sampleOff {
		panic("pipeline: SampleWindow requires sampling mode")
	}
	return e.smp.cfg.Warmup, e.smp.cfg.DetailWindow
}

// RunToNextWindow advances the engine by at most max cycles, stopping early
// at the opening boundary of the next warmup+detail block. It returns the
// number of cycles actually executed and whether the engine stopped at a
// window boundary (false means the cycle budget ran out first). Intended for
// library generation: the caller checkpoints at each true return.
func (e *Engine) RunToNextWindow(max uint64) (ran uint64, atWindow bool) {
	if e.smp.phase == sampleOff {
		panic("pipeline: RunToNextWindow requires sampling mode")
	}
	e.smp.atWindow = false
	for i := uint64(0); i < max; i++ {
		for e.smp.left == 0 {
			e.sampleAdvance()
		}
		if e.smp.atWindow {
			return i, true
		}
		e.smp.left--
		if e.smp.detailed() {
			e.step()
			e.smp.detailCycles++
		} else {
			e.ffStep()
			e.smp.ffCycles++
		}
	}
	for e.smp.left == 0 {
		e.sampleAdvance()
	}
	return max, e.smp.atWindow
}

// runSampled is the sampling-mode Run loop: each cycle runs either the
// unmodified detailed step or one fast-forward cycle, per the FSM. Phase
// transitions at a Run boundary are applied eagerly so a window that closed
// on the last cycle is already folded into the estimators when the caller
// snapshots — the state is identical to advancing lazily on the next Run.
func (e *Engine) runSampled(n uint64) {
	for i := uint64(0); i < n; i++ {
		for e.smp.left == 0 {
			e.sampleAdvance()
		}
		e.smp.atWindow = false
		e.smp.left--
		if e.smp.detailed() {
			e.step()
			e.smp.detailCycles++
		} else {
			e.ffStep()
			e.smp.ffCycles++
		}
	}
	for e.smp.left == 0 {
		e.sampleAdvance()
	}
}

// sampleAdvance moves the FSM to the next phase. The chain always
// terminates: the measurement window has nonzero length.
func (e *Engine) sampleAdvance() {
	s := &e.smp
	switch s.phase {
	case sampleFFPre:
		s.phase = sampleWarm
		s.left = s.cfg.Warmup
		s.atWindow = true
	case sampleWarm:
		s.phase = sampleMeasure
		s.left = s.cfg.DetailWindow
		s.baseRetired = e.Metrics.Retired
		s.baseCycleCount = e.Metrics.Cycles
		s.baseCycles = e.Cycles
	case sampleMeasure:
		e.endWindow()
		e.drainToFunctional()
		s.phase = sampleFFPost
		s.left = s.post
	case sampleFFPost:
		e.schedulePeriod()
	default:
		panic("pipeline: sampleAdvance with sampling disabled")
	}
}

// schedulePeriod starts a new period: the warmup+detail block lands at a
// jittered offset, the remaining fast-forward budget is split around it.
func (e *Engine) schedulePeriod() {
	s := &e.smp
	ff := s.cfg.Period - s.cfg.Warmup - s.cfg.DetailWindow
	pre := s.nextRand() % (ff + 1)
	s.phase = sampleFFPre
	s.left = pre
	s.post = ff - pre
}

// endWindow folds the just-closed measurement window into the estimators.
// Library-build runs skip the fold entirely: their windows executed
// functionally, so there is no detailed observation to record and the pace
// stays at its current value (the restore pass re-runs each window in full
// detail from the checkpointed state).
func (e *Engine) endWindow() {
	s := &e.smp
	if s.libBuild {
		return
	}
	cycles := e.Metrics.Cycles - s.baseCycleCount
	if cycles == 0 {
		return
	}
	ipc := float64(e.Metrics.Retired-s.baseRetired) / float64(cycles)
	s.ipc.Add(ipc)
	// Re-pace fast-forward at the measured IPC: at least half an
	// instruction per cycle (so a near-idle window cannot stall program
	// progress), at most commit width.
	p := uint64(ipc*(1<<paceFrac) + 0.5)
	if min := uint64(1) << (paceFrac - 1); p < min {
		p = min
	}
	if max := uint64(e.Cfg.RetireWidth) << paceFrac; p > max {
		p = max
	}
	s.pace = p
	d := e.Cycles.Sub(&s.baseCycles)
	s.kernelPct.Add(d.KernelPct())
	s.userPct.Add(d.PctMode(isa.User))
	s.idlePct.Add(d.PctCat(sys.CatIdle))
	s.windows++
}

// drainToFunctional squashes all in-flight state so the functional path can
// take over: per context, fetch rewinds to the oldest unretired correct-path
// instruction (exactly the interrupt-redirect rule), then the completion
// heap and issue queues are emptied. Squashed instructions were never
// Retired, so the feed replays them functionally — nothing is lost.
func (e *Engine) drainToFunctional() {
	for ctx := range e.ctxs {
		c := &e.ctxs[ctx]
		idx := c.fetchIdx
		for i := 0; i < c.sz; i++ {
			if u := c.robAt(i); !u.wrongPath {
				idx = u.idx
				break
			}
		}
		e.squashAll(c)
		c.fetchIdx = idx
		c.wrong = nil
		c.pendingILine = ^uint64(0)
	}
	e.events = e.events[:0]
	e.intQ = e.intQ[:0]
	e.fpQ = e.fpQ[:0]
}

// ffTrapGuard caps consecutive non-retiring feed interactions (trap
// splices) per context per fast-forward cycle; a genuine trap storm is a
// kernel bug the detailed path's watchdog would also trip on, and the guard
// keeps a single ffStep call finite regardless.
const ffTrapGuard = 16

// ffStep is one functional fast-forward cycle: interrupt delivery, then the
// paced instruction budget drained across the contexts in the same
// round-robin order the detailed retire stage uses. No cycle attribution
// happens here — percentages over a sampled run thereby estimate the
// detail-window population, not the fast-forwarded one.
func (e *Engine) ffStep() {
	for _, ctx := range e.Feed.Cycle(e.now) {
		// Nothing is in flight, so interrupt delivery needs no squash: the
		// handler splices at the current fetch position.
		e.Feed.Trap(ctx, e.ctxs[ctx].fetchIdx, nil, TrapInterrupt, 0)
		e.Metrics.Interrupts++
	}
	s := &e.smp
	s.acc += s.pace
	budget := int(s.acc >> paceFrac)
	s.acc &= 1<<paceFrac - 1
	n := e.Cfg.Contexts
	for k := 0; k < n && budget > 0; k++ {
		ctx := (e.rrRetire + k) % n
		c := &e.ctxs[ctx]
		stalls := 0
		for budget > 0 {
			progressed, retired := e.ffExec(ctx, c)
			if !progressed {
				break
			}
			if retired {
				budget--
				stalls = 0
			} else {
				stalls++
				if stalls >= ffTrapGuard {
					break
				}
			}
		}
	}
	e.rrRetire = (e.rrRetire + 1) % n
	e.Metrics.Cycles++
	e.now++
}

// ffExec functionally executes the next instruction of one context:
// translate and touch the I-side once per cache line, train the branch
// predictor, translate and touch the D-side, then commit to the feed.
// progressed=false means the context has nothing to execute this cycle;
// retired=false with progressed=true means a trap handler was spliced (the
// handler's instructions execute on the following iterations).
func (e *Engine) ffExec(ctx int, c *ctxState) (progressed, retired bool) {
	// fin aliases engine-owned scratch: its address flows into Feed calls,
	// so a local would be forced to the heap on every instruction.
	fin := &e.ffScratch
	var ok bool
	*fin, ok = e.Feed.InstAt(ctx, c.fetchIdx)
	if !ok {
		return false, false
	}
	ag := agentOf(fin)

	// Instruction-side warming, once per line (sequential fetch within a
	// line hits trivially; the detailed path makes the same approximation).
	if line := fin.PC >> 6; line != c.lastILine {
		if fin.Mode == isa.PAL {
			e.Hier.WarmI(mem.PALPhysBase+(fin.PC-mem.PALTextBase)%mem.PALPhysSize, ag)
		} else {
			pa, hit := e.ITLB.Lookup(fin.ASN, fin.PC, ag)
			if !hit {
				if e.Cfg.AppOnly {
					pa = e.Feed.Translate(fin, fin.PC)
					e.ITLB.Insert(fin.ASN, fin.PC, pa, ag)
				} else {
					e.Metrics.ITLBTraps++
					e.Feed.Trap(ctx, c.fetchIdx, fin, TrapITLB, fin.PC)
					return true, false
				}
			}
			e.Hier.WarmI(pa, ag)
		}
		c.lastILine = line
	}

	// Branch-predictor warming: predict and resolve back to back. There is
	// no wrong path in fast-forward — mispredictions have no timing to model.
	if fin.Class.IsBranch() {
		pred := e.Pred.Predict(ctx, &fin.Inst, ag)
		e.Pred.Resolve(ctx, &fin.Inst, pred, ag)
	}

	// Data-side warming, mirroring the detailed path's cache semantics:
	// loads and syncs read (physical syncs also write at commit, like the
	// store-buffer drain), stores write at commit.
	switch fin.Class {
	case isa.Load, isa.Store, isa.Sync:
		paddr := fin.Addr
		if !fin.Physical {
			pa, hit := e.DTLB.Lookup(fin.ASN, fin.Addr, ag)
			if !hit {
				if e.Cfg.AppOnly {
					pa = e.Feed.Translate(fin, fin.Addr)
					e.DTLB.Insert(fin.ASN, fin.Addr, pa, ag)
				} else {
					e.Metrics.DTLBTraps++
					e.trapScratch = *fin
					e.Feed.Trap(ctx, c.fetchIdx, &e.trapScratch, TrapDTLB, fin.Addr)
					return true, false
				}
			}
			paddr = pa
		}
		if fin.Class != isa.Store {
			e.Hier.WarmD(paddr, ag, false)
		}
		if fin.Class == isa.Store || (fin.Class == isa.Sync && fin.Physical) {
			e.Hier.WarmD(paddr, ag, true)
		}
	}

	// Commit: the same bookkeeping the detailed retire stage performs.
	e.Mix.Add(&fin.Inst)
	e.Metrics.Retired++
	e.Metrics.Fetched++
	e.threadStat(fin.TID).Retired++
	if fin.Class == isa.PALCall && fin.Syscall != 0 {
		e.Metrics.SyscallsSeen++
	}
	idx := c.fetchIdx
	c.fetchIdx++
	c.lastCat, c.lastMode, c.lastSys = fin.Cat, fin.Mode, fin.Sys
	c.lastTID = fin.TID
	e.Feed.Retired(ctx, idx, fin)
	return true, true
}
