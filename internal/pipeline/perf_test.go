package pipeline

import (
	"container/heap"
	"sort"
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/sys"
)

// lcg is a tiny deterministic generator for test inputs (tests must not use
// the global math/rand; see the walltime analyzer in ANALYSIS.md).
type lcg uint64

func (g *lcg) next(mod uint64) uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g>>33) % mod
}

// ---------------------------------------------------------------- event heap

// refHeap is a container/heap reference implementation identical to the one
// the engine used before the typed eventHeap replaced it. The checkpoint
// format serializes the raw heap array, so the typed heap must reproduce the
// exact array layout container/heap would have produced — not just pop order.
type refHeap []event

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// TestEventHeapMatchesContainerHeap drives the typed heap and the
// container/heap reference through the same randomized push/pop sequence
// (with many equal-priority ties) and requires the raw backing arrays to stay
// bit-identical after every operation.
func TestEventHeapMatchesContainerHeap(t *testing.T) {
	var a eventHeap
	var b refHeap
	g := lcg(12345)
	for op := 0; op < 50000; op++ {
		if len(a) == 0 || g.next(3) != 0 {
			ev := event{at: g.next(64), ctx: int(g.next(8)), seq: g.next(1000), id: g.next(1 << 30)}
			a.push(ev)
			heap.Push(&b, ev)
		} else {
			x := a.pop()
			y := heap.Pop(&b).(event)
			if x != y {
				t.Fatalf("op %d: pop mismatch: typed %+v vs container/heap %+v", op, x, y)
			}
		}
		if len(a) != len(b) {
			t.Fatalf("op %d: length mismatch %d vs %d", op, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("op %d: raw array layout diverged at index %d: %+v vs %+v",
					op, i, a[i], b[i])
			}
		}
	}
}

// ---------------------------------------------------------------- fetch order

// TestFetchOrderMatchesSliceStable checks that the closure-free insertion
// sort in fetch() produces exactly the ordering the previous
// sort.SliceStable call produced, across random fetchable sets, in-flight
// counts (with ties), and rotation offsets, for both ICOUNT and the
// round-robin ablation.
func TestFetchOrderMatchesSliceStable(t *testing.T) {
	for _, rrf := range []bool{false, true} {
		cfg := SMTConfig()
		cfg.RoundRobinFetch = rrf
		e := &Engine{Cfg: cfg, ctxs: make([]ctxState, cfg.Contexts)}
		g := lcg(99)
		for trial := 0; trial < 5000; trial++ {
			for i := range e.ctxs {
				e.ctxs[i].sz = int(g.next(4)) // small range forces ties
			}
			rr := int(g.next(uint64(cfg.Contexts)))
			var f []int
			for ctx := 0; ctx < cfg.Contexts; ctx++ {
				if g.next(4) != 0 {
					f = append(f, ctx)
				}
			}
			want := append([]int(nil), f...)
			sort.SliceStable(want, func(i, j int) bool {
				return e.fetchLess(want[i], want[j], rr)
			})
			got := append([]int(nil), f...)
			for i := 1; i < len(got); i++ {
				for j := i; j > 0 && e.fetchLess(got[j], got[j-1], rr); j-- {
					got[j], got[j-1] = got[j-1], got[j]
				}
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("rrf=%v trial %d: order mismatch: got %v want %v (sz=%v rr=%d)",
						rrf, trial, got, want, sizesOf(e), rr)
				}
			}
			f = f[:0]
		}
	}
}

func sizesOf(e *Engine) []int {
	s := make([]int, len(e.ctxs))
	for i := range e.ctxs {
		s[i] = e.ctxs[i].sz
	}
	return s
}

// ---------------------------------------------------------------- zero alloc

// benchFeed is a minimal allocation-free Feed: a deterministic synthetic
// instruction mix (ALU, loads/stores over a cache-resident working set,
// predictable and mispredicting branches, FP ops) over a short PC loop, so
// the steady-state engine exercises fetch, wrong-path generation, dispatch,
// issue, the event heap, the store buffer, and retire without any kernel
// machinery.
type benchFeed struct{}

func (benchFeed) InstAt(ctx int, idx uint64) (FedInst, bool) {
	s := (uint64(ctx) + 1) * 0x9e3779b97f4a7c15
	s ^= idx * 6364136223846793005
	s = s*6364136223846793005 + 1442695040888963407
	in := FedInst{TID: uint32(ctx), Cat: sys.CatUser}
	in.Mode = isa.User
	in.PC = 0x120000000 + uint64(ctx)<<20 + (idx%1024)*4
	in.Dep1 = uint16(1 + (s>>40)%8)
	switch r := s >> 59; {
	case r < 8:
		in.Class = isa.Load
		in.Addr = 0x1a0000000 + uint64(ctx)<<16 + (s>>13)%8192&^7
		in.Physical = true
	case r < 11:
		in.Class = isa.Store
		in.Addr = 0x1a0000000 + uint64(ctx)<<16 + (s>>13)%8192&^7
		in.Physical = true
	case r < 14:
		in.Class = isa.CondBranch
		in.Taken = s>>7&1 == 0
		in.Target = in.PC + 16
	case r < 16:
		in.Class = isa.FPALU
	default:
		in.Class = isa.IntALU
	}
	return in, true
}

func (benchFeed) Retired(ctx int, idx uint64, in *FedInst)                           {}
func (benchFeed) Trap(ctx int, idx uint64, in *FedInst, kind TrapKind, vaddr uint64) {}
func (benchFeed) Cycle(now uint64) []int                                             { return nil }
func (benchFeed) Translate(in *FedInst, vaddr uint64) uint64                         { return vaddr }
func (benchFeed) Halted(ctx int) bool                                                { return false }

func newBenchEngine() *Engine {
	cfg := SMTConfig()
	cfg.AppOnly = true
	return New(cfg, benchFeed{}, cache.NewHierarchy(cache.DefaultHierConfig()))
}

// TestEngineStepZeroAlloc is the allocation regression gate for the cycle
// loop: after warmup (cold caches and table growth behind it), steady-state
// step() must not allocate at all.
func TestEngineStepZeroAlloc(t *testing.T) {
	e := newBenchEngine()
	e.Run(50000)
	if avg := testing.AllocsPerRun(5000, func() { e.step() }); avg != 0 {
		t.Fatalf("Engine.step steady state allocates %.3f allocs/op, want 0", avg)
	}
}

// BenchmarkEngineStep measures the raw per-cycle cost of the core loop on a
// synthetic feed (no kernel), reporting allocs/op so regressions are visible
// in the BENCH_*.json trajectory.
func BenchmarkEngineStep(b *testing.B) {
	e := newBenchEngine()
	e.Run(50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.step()
	}
}
