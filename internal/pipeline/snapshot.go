// Checkpoint serialization for the pipeline engine: every in-flight
// instruction, the completion-event heap (copied as the raw heap array, so
// pop order is preserved exactly), issue-queue occupancy, renaming-register
// accounting, and all metrics. The attached hardware structures (caches,
// TLBs, predictor, store buffer) snapshot through their own packages.
package pipeline

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/sys"
	"repro/internal/tlb"
)

// UopSnap is the serialized form of one in-flight instruction.
type UopSnap struct {
	In        FedInst
	Idx       uint64
	Seq       uint64
	ID        uint64
	State     uint8
	FetchedAt uint64
	DoneAt    uint64
	WrongPath bool
	Mispred   bool
	Faulted   bool
	Paddr     uint64
	UsesInt   bool
	UsesFP    bool
	InQueue   bool
}

// EventSnap is one completion event.
type EventSnap struct {
	At  uint64
	Ctx int
	Seq uint64
	ID  uint64
}

// QrefSnap is one issue-queue occupant.
type QrefSnap struct {
	Ctx int
	Seq uint64
	ID  uint64
}

// CtxSnap is the serialized form of one hardware context. The ROB ring is
// copied whole (fixed geometry) together with its head/size cursor.
type CtxSnap struct {
	ROB           []UopSnap
	Head, Sz      int
	HeadSeq       uint64
	NextSeq       uint64
	FetchIdx      uint64
	Dispatch      int
	ICacheReadyAt uint64
	RedirectAt    uint64
	HasWrong      bool
	WrongPC       uint64
	WrongState    uint64
	WrongTmpl     FedInst
	LastILine     uint64
	HadWork       bool
	PendingILine  uint64
	LastCat       sys.Category
	LastMode      isa.Mode
	LastSys       uint16
	LastTID       uint32
}

// Snapshot is the engine's complete mutable state, hardware included.
type Snapshot struct {
	Hier    cache.HierSnap
	ITLB    tlb.Snapshot
	DTLB    tlb.Snapshot
	Pred    bpred.Snapshot
	SB      cache.SBSnap
	Metrics Metrics
	Cycles  stats.Cycles
	Mix     stats.Mix

	Now       uint64
	Ctxs      []CtxSnap
	Events    []EventSnap
	NextID    uint64
	PerThread []ThreadStat

	IntQ, FPQ   []QrefSnap
	IntRegsUsed int
	FPRegsUsed  int
	RRRetire    int
	RRFetch     int
	RRDispatch  int

	// Sampler carries the sampling FSM; the zero value (absent in images
	// written before sampling existed) restores as "sampling off".
	Sampler SamplerSnap
}

func snapUop(u *uop) UopSnap {
	return UopSnap{
		In: u.in, Idx: u.idx, Seq: u.seq, ID: u.id, State: uint8(u.state),
		FetchedAt: u.fetchedAt, DoneAt: u.doneAt,
		WrongPath: u.wrongPath, Mispred: u.mispred, Faulted: u.faulted,
		Paddr: u.paddr, UsesInt: u.usesInt, UsesFP: u.usesFP, InQueue: u.inQueue,
	}
}

func restoreUop(s UopSnap) uop {
	return uop{
		in: s.In, idx: s.Idx, seq: s.Seq, id: s.ID, state: uopState(s.State),
		fetchedAt: s.FetchedAt, doneAt: s.DoneAt,
		wrongPath: s.WrongPath, mispred: s.Mispred, faulted: s.Faulted,
		paddr: s.Paddr, usesInt: s.UsesInt, usesFP: s.UsesFP, inQueue: s.InQueue,
	}
}

func snapQrefs(qs []qref) []QrefSnap {
	out := make([]QrefSnap, len(qs))
	for i, q := range qs {
		out[i] = QrefSnap{Ctx: q.ctx, Seq: q.seq, ID: q.id}
	}
	return out
}

func restoreQrefs(dst []qref, ss []QrefSnap) []qref {
	dst = dst[:0]
	for _, s := range ss {
		dst = append(dst, qref{ctx: s.Ctx, seq: s.Seq, id: s.ID})
	}
	return dst
}

// Snapshot captures the engine's mutable state.
func (e *Engine) Snapshot() Snapshot {
	s := Snapshot{
		Hier:        e.Hier.Snapshot(),
		ITLB:        e.ITLB.Snapshot(),
		DTLB:        e.DTLB.Snapshot(),
		Pred:        e.Pred.Snapshot(),
		SB:          e.SB.Snapshot(),
		Metrics:     e.Metrics,
		Cycles:      e.Cycles,
		Mix:         e.Mix,
		Now:         e.now,
		NextID:      e.nextID,
		PerThread:   append([]ThreadStat(nil), e.perThread...),
		IntQ:        snapQrefs(e.intQ),
		FPQ:         snapQrefs(e.fpQ),
		IntRegsUsed: e.intRegsUsed,
		FPRegsUsed:  e.fpRegsUsed,
		RRRetire:    e.rrRetire,
		RRFetch:     e.rrFetch,
		RRDispatch:  e.rrDispatch,
		Sampler:     e.smp.Snapshot(),
	}
	s.Ctxs = make([]CtxSnap, len(e.ctxs))
	for i := range e.ctxs {
		c := &e.ctxs[i]
		cs := &s.Ctxs[i]
		cs.ROB = make([]UopSnap, len(c.rob))
		for j := range c.rob {
			cs.ROB[j] = snapUop(&c.rob[j])
		}
		cs.Head, cs.Sz = c.head, c.sz
		cs.HeadSeq, cs.NextSeq = c.headSeq, c.nextSeq
		cs.FetchIdx, cs.Dispatch = c.fetchIdx, c.dispatch
		cs.ICacheReadyAt, cs.RedirectAt = c.icacheReadyAt, c.redirectAt
		if c.wrong != nil {
			cs.HasWrong = true
			cs.WrongPC = c.wrong.pc
			cs.WrongState = c.wrong.state
			cs.WrongTmpl = c.wrong.tmpl
		}
		cs.LastILine = c.lastILine
		cs.HadWork = c.hadWork
		cs.PendingILine = c.pendingILine
		cs.LastCat, cs.LastMode = c.lastCat, c.lastMode
		cs.LastSys, cs.LastTID = c.lastSys, c.lastTID
	}
	s.Events = make([]EventSnap, len(e.events))
	for i, ev := range e.events {
		s.Events[i] = EventSnap{At: ev.at, Ctx: ev.ctx, Seq: ev.seq, ID: ev.id}
	}
	return s
}

// Restore overwrites the engine's state from a snapshot taken on an engine
// with the same configuration.
func (e *Engine) Restore(s Snapshot) error {
	if len(s.Ctxs) != len(e.ctxs) {
		return fmt.Errorf("pipeline: snapshot has %d contexts, engine has %d", len(s.Ctxs), len(e.ctxs))
	}
	for i := range s.Ctxs {
		if len(s.Ctxs[i].ROB) != len(e.ctxs[i].rob) {
			return fmt.Errorf("pipeline: snapshot ROB size %d, engine %d", len(s.Ctxs[i].ROB), len(e.ctxs[i].rob))
		}
	}
	e.Hier.Restore(s.Hier)
	e.ITLB.Restore(s.ITLB)
	e.DTLB.Restore(s.DTLB)
	e.Pred.Restore(s.Pred)
	e.SB.Restore(s.SB)
	e.Metrics = s.Metrics
	e.Cycles = s.Cycles
	e.Mix = s.Mix
	e.now = s.Now
	e.nextID = s.NextID
	e.perThread = append(e.perThread[:0], s.PerThread...)
	e.intQ = restoreQrefs(e.intQ, s.IntQ)
	e.fpQ = restoreQrefs(e.fpQ, s.FPQ)
	e.intRegsUsed = s.IntRegsUsed
	e.fpRegsUsed = s.FPRegsUsed
	e.rrRetire = s.RRRetire
	e.rrFetch = s.RRFetch
	e.rrDispatch = s.RRDispatch
	e.smp.Restore(s.Sampler)
	for i := range e.ctxs {
		c := &e.ctxs[i]
		cs := &s.Ctxs[i]
		for j := range c.rob {
			c.rob[j] = restoreUop(cs.ROB[j])
		}
		c.head, c.sz = cs.Head, cs.Sz
		c.headSeq, c.nextSeq = cs.HeadSeq, cs.NextSeq
		c.fetchIdx, c.dispatch = cs.FetchIdx, cs.Dispatch
		c.icacheReadyAt, c.redirectAt = cs.ICacheReadyAt, cs.RedirectAt
		c.wrong = nil
		if cs.HasWrong {
			c.wrongBuf = wrongGen{pc: cs.WrongPC, state: cs.WrongState, tmpl: cs.WrongTmpl}
			c.wrong = &c.wrongBuf
		}
		c.lastILine = cs.LastILine
		c.hadWork = cs.HadWork
		c.pendingILine = cs.PendingILine
		c.lastCat, c.lastMode = cs.LastCat, cs.LastMode
		c.lastSys, c.lastTID = cs.LastSys, cs.LastTID
	}
	e.events = e.events[:0]
	for _, ev := range s.Events {
		e.events = append(e.events, event{at: ev.At, ctx: ev.Ctx, seq: ev.Seq, id: ev.ID})
	}
	return nil
}

// CheckQueueConsistency cross-checks the shared issue-queue lists against
// ROB contents: every queue occupant must reference a live, queue-marked
// in-flight instruction, and the queue-marked population must equal queue
// occupancy. It returns one description per violation (auditor access).
func (e *Engine) CheckQueueConsistency() []string {
	var bad []string
	queued := 0
	for _, q := range append(append([]qref(nil), e.intQ...), e.fpQ...) {
		if q.ctx < 0 || q.ctx >= len(e.ctxs) {
			bad = append(bad, fmt.Sprintf("queue entry references context %d of %d", q.ctx, len(e.ctxs)))
			continue
		}
		c := &e.ctxs[q.ctx]
		if q.seq < c.headSeq || q.seq >= c.headSeq+uint64(c.sz) {
			bad = append(bad, fmt.Sprintf("queue entry ctx%d seq%d outside ROB window [%d,%d)",
				q.ctx, q.seq, c.headSeq, c.headSeq+uint64(c.sz)))
			continue
		}
		u := c.robAt(int(q.seq - c.headSeq))
		if u.id != q.id {
			bad = append(bad, fmt.Sprintf("queue entry ctx%d seq%d id mismatch: queue %d, ROB %d",
				q.ctx, q.seq, q.id, u.id))
			continue
		}
		if !u.inQueue {
			bad = append(bad, fmt.Sprintf("queue entry ctx%d seq%d not marked in-queue", q.ctx, q.seq))
		}
	}
	for ctx := range e.ctxs {
		c := &e.ctxs[ctx]
		for i := 0; i < c.sz; i++ {
			if c.robAt(i).inQueue {
				queued++
			}
		}
	}
	if queued != len(e.intQ)+len(e.fpQ) {
		bad = append(bad, fmt.Sprintf("in-flight queue-marked count %d != queue occupancy %d+%d",
			queued, len(e.intQ), len(e.fpQ)))
	}
	return bad
}
