package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 90 {
		t.Fatalf("seed 0 generator looks degenerate: %d distinct of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	parent2 := New(7)
	c1b := parent2.Split(1)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c1b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
	parent3 := New(7)
	c2 := parent3.Split(2)
	d1, d2 := New(7).Split(1), c2
	diff := false
	for i := 0; i < 50; i++ {
		if d1.Uint64() != d2.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("Split with different labels produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(4)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nRange(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(17); v >= 17 {
			t.Fatalf("Uint64n(17) = %d", v)
		}
	}
}

func TestBoolExtremes(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := New(6)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %.4f", got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(8)
	n, sum := 100000, 0
	for i := 0; i < n; i++ {
		v := r.Geometric(5)
		if v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
		sum += v
	}
	mean := float64(sum) / float64(n)
	if mean < 4.5 || mean > 5.5 {
		t.Fatalf("Geometric(5) mean = %.3f", mean)
	}
}

func TestGeometricDegenerate(t *testing.T) {
	r := New(9)
	for i := 0; i < 10; i++ {
		if v := r.Geometric(0.5); v != 1 {
			t.Fatalf("Geometric(0.5) = %d, want 1", v)
		}
	}
}

func TestChooseWeights(t *testing.T) {
	r := New(10)
	w := []float64{1, 0, 3}
	counts := [3]int{}
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.Choose(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight option chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %.3f, want ~3", ratio)
	}
}

func TestChoosePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choose(nil) did not panic")
		}
	}()
	New(1).Choose(nil)
}

func TestZipfSkewAndRange(t *testing.T) {
	r := New(12)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	n := 200000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// rank-1 over rank-2 should be roughly 2:1 for s=1.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("Zipf rank ratio = %.3f, want ~2", ratio)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
