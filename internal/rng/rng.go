// Package rng provides the deterministic pseudo-random number generation
// used throughout the simulator.
//
// The paper's simulation framework enforces lock-step, deterministic
// execution so experiments are repeatable (§2.3). We mirror that: every
// source of randomness in this reproduction — workload instruction streams,
// memory reference patterns, SPECWeb request generation — flows from an
// explicitly seeded generator in this package. Two runs with the same
// configuration and seed produce bit-identical statistics.
//
// The generator is xoshiro256** seeded via splitmix64, implemented here
// rather than taken from math/rand so that the stream is stable across Go
// releases and so that child generators can be split off deterministically.
package rng

import (
	"fmt"
	"math"
)

// Rand is a deterministic random number generator (xoshiro256**).
// The zero value is not usable; construct with New.
type Rand struct {
	s [4]uint64
	// geo memoizes log(1-1/m) for Geometric, which is called in hot loops
	// with a handful of distinct means over and over. The memo is a pure
	// function of the arguments — not stream state — so State/SetState
	// ignore it and results are bit-identical with or without it.
	geo    [6]geoMemo
	geoPos uint8
}

// geoMemo is one cached Geometric parameter (see Rand.geo).
type geoMemo struct {
	m, log float64
}

// New returns a generator seeded from seed via splitmix64.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// Avoid the all-zero state, which is a fixed point of xoshiro.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split returns a new generator whose stream is a deterministic function of
// this generator's current state and the given label. It is used to give
// each simulated thread or subsystem an independent stream so that adding
// instructions to one thread does not perturb another.
func (r *Rand) Split(label uint64) *Rand {
	return New(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean m
// (values >= 1). It is used for run lengths such as loop trip counts.
func (r *Rand) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	n := 1 + int(math.Log(1-u)/r.geoLogOf(m))
	if n < 1 {
		n = 1
	}
	return n
}

// geoLogOf returns log(1-1/m), memoized round-robin over the last few
// distinct means (m > 1; the zero-valued empty slots can never match).
func (r *Rand) geoLogOf(m float64) float64 {
	for i := range r.geo {
		if r.geo[i].m == m {
			return r.geo[i].log
		}
	}
	l := math.Log(1 - 1/m)
	r.geo[r.geoPos] = geoMemo{m: m, log: l}
	r.geoPos = (r.geoPos + 1) % uint8(len(r.geo))
	return l
}

// Choose returns an index in [0, len(weights)) with probability proportional
// to weights[i]. It panics if weights is empty or sums to <= 0.
func (r *Rand) Choose(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("rng: Choose with no positive weights")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Zipf samples from a Zipf-like distribution over [0, n) with exponent s,
// used for skewed access patterns such as web-object popularity. The
// implementation precomputes nothing; for the small n used by workload
// models a linear walk over the harmonic weights is fast enough — callers
// needing a large n should use NewZipf.
type Zipf struct {
	r   *Rand
	cum []float64
}

// NewZipf builds a sampler over [0, n) with exponent s > 0.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{r: r, cum: cum}
}

// Next returns the next sample.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// State returns the generator's internal state, for checkpointing. Restoring
// the same state with SetState resumes the stream bit-identically.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state (checkpoint restore).
func (r *Rand) SetState(s [4]uint64) { r.s = s }

// GobEncode serializes the generator state so *Rand fields embedded in
// snapshot structs round-trip through encoding/gob transparently.
func (r *Rand) GobEncode() ([]byte, error) {
	buf := make([]byte, 32)
	for i, w := range r.s {
		for b := 0; b < 8; b++ {
			buf[i*8+b] = byte(w >> (8 * b))
		}
	}
	return buf, nil
}

// GobDecode restores a generator serialized by GobEncode.
func (r *Rand) GobDecode(buf []byte) error {
	if len(buf) != 32 {
		return fmt.Errorf("rng: bad state length %d", len(buf))
	}
	for i := range r.s {
		var w uint64
		for b := 0; b < 8; b++ {
			w |= uint64(buf[i*8+b]) << (8 * b)
		}
		r.s[i] = w
	}
	return nil
}
