package stats

import "testing"

func TestHistQuantiles(t *testing.T) {
	var h Hist
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if got := h.Quantile(0.50); got != 50 {
		t.Fatalf("p50 = %d, want 50", got)
	}
	if got := h.Quantile(0.99); got != 99 {
		t.Fatalf("p99 = %d, want 99", got)
	}
	if got := h.Quantile(1.0); got != 100 {
		t.Fatalf("p100 = %d, want 100", got)
	}
	if h.Count != 100 || h.Sum != 5050 {
		t.Fatalf("count/sum = %d/%d", h.Count, h.Sum)
	}
	if h.Mean() != 50.5 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistEmptyAndOverflow(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(HistBuckets + 10)
	if h.Over != 1 || h.Count != 1 {
		t.Fatalf("overflow not counted: %+v", h)
	}
	if got := h.Quantile(0.5); got != HistBuckets {
		t.Fatalf("overflow quantile = %d, want saturated %d", got, HistBuckets)
	}
}

func TestHistSub(t *testing.T) {
	var a Hist
	a.Observe(3)
	a.Observe(7)
	before := a
	a.Observe(7)
	a.Observe(HistBuckets * 2)
	d := a.Sub(before)
	if d.Count != 2 || d.Buckets[7] != 1 || d.Buckets[3] != 0 || d.Over != 1 {
		t.Fatalf("window delta wrong: %+v", d)
	}
}
