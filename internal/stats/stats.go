// Package stats holds the measurement machinery of the reproduction: the
// instruction-mix accounting behind Tables 2 and 5, and the cycle
// attribution behind Figures 1–7.
//
// Cycle attribution follows the SimOS convention: every simulated cycle,
// each hardware context attributes one context-cycle to the activity of its
// oldest in-flight instruction (or to its most recent activity while the
// context is drained). Percentages are then shares of total context-cycles,
// which is the paper's "% of execution cycles".
package stats

import (
	"math"

	"repro/internal/isa"
	"repro/internal/sys"
)

// Mix accumulates the dynamic instruction mix split by privilege class,
// reproducing the layout of the paper's Tables 2 and 5.
type Mix struct {
	// Count[priv][class] (priv 0 = user, 1 = kernel incl. PAL).
	Count [2][isa.NumClasses]uint64
	// PhysLoad/PhysStore count memory ops with physical (TLB-bypassing)
	// addresses.
	PhysLoad, PhysStore [2]uint64
	// CondTaken counts taken conditional branches.
	CondTaken [2]uint64
}

// Add records one committed instruction.
func (m *Mix) Add(in *isa.Inst) {
	p := privIndex(in.Mode.Privileged())
	m.Count[p][in.Class]++
	switch in.Class {
	case isa.Load:
		if in.Physical {
			m.PhysLoad[p]++
		}
	case isa.Store:
		if in.Physical {
			m.PhysStore[p]++
		}
	case isa.CondBranch:
		if in.Taken {
			m.CondTaken[p]++
		}
	}
}

// Total returns the committed instructions for one privilege class.
func (m *Mix) Total(priv bool) uint64 {
	var t uint64
	for _, c := range m.Count[privIndex(priv)] {
		t += c
	}
	return t
}

// TotalAll returns all committed instructions.
func (m *Mix) TotalAll() uint64 { return m.Total(false) + m.Total(true) }

// Pct returns class share (percent) within one privilege class.
func (m *Mix) Pct(priv bool, c isa.Class) float64 {
	t := m.Total(priv)
	if t == 0 {
		return 0
	}
	return 100 * float64(m.Count[privIndex(priv)][c]) / float64(t)
}

// PctOverall returns class share across all instructions.
func (m *Mix) PctOverall(c isa.Class) float64 {
	t := m.TotalAll()
	if t == 0 {
		return 0
	}
	return 100 * float64(m.Count[0][c]+m.Count[1][c]) / float64(t)
}

// PhysFrac returns the fraction (percent) of loads or stores that carry
// physical addresses, for one privilege class.
func (m *Mix) PhysFrac(priv bool, store bool) float64 {
	p := privIndex(priv)
	var n, d uint64
	if store {
		n, d = m.PhysStore[p], m.Count[p][isa.Store]
	} else {
		n, d = m.PhysLoad[p], m.Count[p][isa.Load]
	}
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// CondTakenPct returns the percentage of conditional branches taken.
func (m *Mix) CondTakenPct(priv bool) float64 {
	p := privIndex(priv)
	if m.Count[p][isa.CondBranch] == 0 {
		return 0
	}
	return 100 * float64(m.CondTaken[p]) / float64(m.Count[p][isa.CondBranch])
}

// BranchPct returns the share (percent) of branch-class instructions within
// one privilege class (the tables' "Branch" row).
func (m *Mix) BranchPct(priv bool) float64 {
	p := privIndex(priv)
	t := m.Total(priv)
	if t == 0 {
		return 0
	}
	var br uint64
	for c := 0; c < isa.NumClasses; c++ {
		if isa.Class(c).IsBranch() {
			br += m.Count[p][c]
		}
	}
	return 100 * float64(br) / float64(t)
}

// BranchSubPct returns class share among branch instructions (the tables'
// indented conditional/unconditional/indirect/PAL rows).
func (m *Mix) BranchSubPct(priv bool, c isa.Class) float64 {
	p := privIndex(priv)
	var br uint64
	for k := 0; k < isa.NumClasses; k++ {
		if isa.Class(k).IsBranch() {
			br += m.Count[p][k]
		}
	}
	if br == 0 {
		return 0
	}
	n := m.Count[p][c]
	if c == isa.PALCall {
		n += m.Count[p][isa.PALReturn]
	}
	return 100 * float64(n) / float64(br)
}

// Cycles is the cycle-attribution accumulator behind Figures 1, 2, 5, 6
// and 7.
type Cycles struct {
	// ByCat[cat] is context-cycles attributed to each kernel-time category.
	ByCat [sys.NumCategories]uint64
	// BySyscall[n] refines CatSyscall by syscall number (Figure 7).
	BySyscall [sys.NumSyscalls]uint64
	// ByMode[m] is context-cycles per execution mode.
	ByMode [isa.NumModes]uint64
	// Total is all context-cycles.
	Total uint64
}

// Add attributes one context-cycle.
func (c *Cycles) Add(cat sys.Category, syscall uint16, mode isa.Mode) {
	c.ByCat[cat]++
	if cat == sys.CatSyscall && int(syscall) < len(c.BySyscall) {
		c.BySyscall[syscall]++
	}
	c.ByMode[mode]++
	c.Total++
}

// PctCat returns a category's share of all context-cycles in percent.
func (c *Cycles) PctCat(cat sys.Category) float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.ByCat[cat]) / float64(c.Total)
}

// PctSyscall returns one syscall's share of all context-cycles in percent.
func (c *Cycles) PctSyscall(n uint16) float64 {
	if c.Total == 0 || int(n) >= len(c.BySyscall) {
		return 0
	}
	return 100 * float64(c.BySyscall[n]) / float64(c.Total)
}

// PctMode returns a mode's share of all context-cycles in percent.
func (c *Cycles) PctMode(m isa.Mode) float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.ByMode[m]) / float64(c.Total)
}

// KernelPct returns the share of context-cycles spent privileged (kernel +
// PAL), the paper's headline "time in the OS".
func (c *Cycles) KernelPct() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.ByMode[isa.Kernel]+c.ByMode[isa.PAL]) / float64(c.Total)
}

// Sub returns the difference c - prev (for windowed reporting: start-up vs
// steady-state phases, Figure 1's time series).
func (c *Cycles) Sub(prev *Cycles) Cycles {
	var d Cycles
	for i := range c.ByCat {
		d.ByCat[i] = c.ByCat[i] - prev.ByCat[i]
	}
	for i := range c.BySyscall {
		d.BySyscall[i] = c.BySyscall[i] - prev.BySyscall[i]
	}
	for i := range c.ByMode {
		d.ByMode[i] = c.ByMode[i] - prev.ByMode[i]
	}
	d.Total = c.Total - prev.Total
	return d
}

// Merge returns the sum c + o (the inverse of Sub, for combining windowed
// deltas).
func (c *Cycles) Merge(o *Cycles) Cycles {
	var m Cycles
	for i := range c.ByCat {
		m.ByCat[i] = c.ByCat[i] + o.ByCat[i]
	}
	for i := range c.BySyscall {
		m.BySyscall[i] = c.BySyscall[i] + o.BySyscall[i]
	}
	for i := range c.ByMode {
		m.ByMode[i] = c.ByMode[i] + o.ByMode[i]
	}
	m.Total = c.Total + o.Total
	return m
}

// Series accumulates scalar observations as moment sums (count, sum, sum of
// squares) so sampled runs can report a mean with a standard-error estimate.
// Moment sums — unlike Welford state — subtract cleanly, which lets
// report.Delta compute the series for a measurement window as end − start.
type Series struct {
	// N is the number of observations.
	N uint64
	// Sum and SumSq are the running first and second moments.
	Sum, SumSq float64
}

// Add records one observation.
func (s *Series) Add(v float64) {
	s.N++
	s.Sum += v
	s.SumSq += v * v
}

// Mean returns the sample mean (0 with no observations).
func (s *Series) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Var returns the unbiased sample variance (0 with fewer than two
// observations). The naive moment formula can go slightly negative from
// rounding, so the result is clamped at zero.
func (s *Series) Var() float64 {
	if s.N < 2 {
		return 0
	}
	n := float64(s.N)
	v := (s.SumSq - s.Sum*s.Sum/n) / (n - 1)
	if v < 0 {
		return 0
	}
	return v
}

// StdErr returns the standard error of the mean, sqrt(Var/N) — the ± the
// sampled-run report attaches to each estimate (0 with fewer than two
// observations).
func (s *Series) StdErr() float64 {
	if s.N < 2 {
		return 0
	}
	return math.Sqrt(s.Var() / float64(s.N))
}

// Sub returns the difference s - prev, the series of observations recorded
// between two snapshots.
func (s Series) Sub(prev Series) Series {
	return Series{N: s.N - prev.N, Sum: s.Sum - prev.Sum, SumSq: s.SumSq - prev.SumSq}
}

// Merge returns the combined series s + o (the inverse of Sub). Because the
// state is plain moment sums, a left-to-right fold of per-window deltas in
// window order reproduces the serial accumulation bit for bit.
func (s Series) Merge(o Series) Series {
	return Series{N: s.N + o.N, Sum: s.Sum + o.Sum, SumSq: s.SumSq + o.SumSq}
}

func privIndex(priv bool) int {
	if priv {
		return 1
	}
	return 0
}
