package stats

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/sys"
)

func TestMixAccounting(t *testing.T) {
	var m Mix
	m.Add(&isa.Inst{Class: isa.Load, Mode: isa.User})
	m.Add(&isa.Inst{Class: isa.Load, Mode: isa.Kernel, Physical: true})
	m.Add(&isa.Inst{Class: isa.Store, Mode: isa.PAL, Physical: true})
	m.Add(&isa.Inst{Class: isa.CondBranch, Mode: isa.User, Taken: true})
	m.Add(&isa.Inst{Class: isa.CondBranch, Mode: isa.User})
	m.Add(&isa.Inst{Class: isa.IntALU, Mode: isa.User})

	if m.Total(false) != 4 || m.Total(true) != 2 || m.TotalAll() != 6 {
		t.Fatalf("totals: %d/%d/%d", m.Total(false), m.Total(true), m.TotalAll())
	}
	if m.Pct(false, isa.Load) != 25 {
		t.Fatalf("user load pct = %.1f", m.Pct(false, isa.Load))
	}
	if m.PhysFrac(true, false) != 100 {
		t.Fatalf("kernel phys load frac = %.1f", m.PhysFrac(true, false))
	}
	if m.PhysFrac(true, true) != 100 { // PAL store counts privileged
		t.Fatalf("kernel phys store frac = %.1f", m.PhysFrac(true, true))
	}
	if m.CondTakenPct(false) != 50 {
		t.Fatalf("cond taken = %.1f", m.CondTakenPct(false))
	}
	if m.PhysFrac(false, false) != 0 {
		t.Fatal("user load should not be physical")
	}
}

func TestMixBranchBreakdown(t *testing.T) {
	var m Mix
	m.Add(&isa.Inst{Class: isa.CondBranch, Mode: isa.Kernel})
	m.Add(&isa.Inst{Class: isa.UncondBranch, Mode: isa.Kernel})
	m.Add(&isa.Inst{Class: isa.IndirectJump, Mode: isa.Kernel})
	m.Add(&isa.Inst{Class: isa.PALCall, Mode: isa.Kernel})
	m.Add(&isa.Inst{Class: isa.PALReturn, Mode: isa.Kernel})
	m.Add(&isa.Inst{Class: isa.IntALU, Mode: isa.Kernel})
	if got := m.BranchPct(true); got < 83 || got > 84 {
		t.Fatalf("branch pct = %.2f, want 5/6", got)
	}
	if got := m.BranchSubPct(true, isa.PALCall); got != 40 { // call+return of 5 branches
		t.Fatalf("pal sub pct = %.1f, want 40", got)
	}
	if got := m.BranchSubPct(true, isa.CondBranch); got != 20 {
		t.Fatalf("cond sub pct = %.1f", got)
	}
}

func TestMixEmpty(t *testing.T) {
	var m Mix
	if m.Pct(false, isa.Load) != 0 || m.PctOverall(isa.Load) != 0 ||
		m.PhysFrac(true, false) != 0 || m.CondTakenPct(false) != 0 ||
		m.BranchPct(true) != 0 || m.BranchSubPct(false, isa.CondBranch) != 0 {
		t.Fatal("empty mix should report zeros")
	}
}

func TestCyclesAttribution(t *testing.T) {
	var c Cycles
	c.Add(sys.CatUser, 0, isa.User)
	c.Add(sys.CatSyscall, uint16(sys.SysRead), isa.Kernel)
	c.Add(sys.CatSyscall, uint16(sys.SysStat), isa.Kernel)
	c.Add(sys.CatDTLB, 0, isa.PAL)

	if c.Total != 4 {
		t.Fatalf("total = %d", c.Total)
	}
	if c.PctCat(sys.CatSyscall) != 50 {
		t.Fatalf("syscall pct = %.1f", c.PctCat(sys.CatSyscall))
	}
	if c.PctSyscall(uint16(sys.SysRead)) != 25 {
		t.Fatalf("read pct = %.1f", c.PctSyscall(uint16(sys.SysRead)))
	}
	if c.PctMode(isa.Kernel) != 50 {
		t.Fatalf("kernel mode pct = %.1f", c.PctMode(isa.Kernel))
	}
	if c.KernelPct() != 75 { // kernel + PAL
		t.Fatalf("kernel pct = %.1f", c.KernelPct())
	}
}

func TestCyclesSub(t *testing.T) {
	var a, b Cycles
	a.Add(sys.CatUser, 0, isa.User)
	b = a
	b.Add(sys.CatIdle, 0, isa.Idle)
	b.Add(sys.CatSyscall, uint16(sys.SysOpen), isa.Kernel)
	d := b.Sub(&a)
	if d.Total != 2 {
		t.Fatalf("delta total = %d", d.Total)
	}
	if d.ByCat[sys.CatUser] != 0 {
		t.Fatal("user cycles leaked into delta")
	}
	if d.BySyscall[sys.SysOpen] != 1 {
		t.Fatal("syscall delta wrong")
	}
}

func TestCyclesEmptyPcts(t *testing.T) {
	var c Cycles
	if c.PctCat(sys.CatUser) != 0 || c.PctSyscall(1) != 0 ||
		c.PctMode(isa.User) != 0 || c.KernelPct() != 0 {
		t.Fatal("empty cycles should report zeros")
	}
	if c.PctSyscall(9999) != 0 {
		t.Fatal("out-of-range syscall should report zero")
	}
}
