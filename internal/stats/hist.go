package stats

// HistBuckets is the fixed bucket count of Hist. Values are recorded in
// one-unit-wide buckets [0, HistBuckets); anything larger lands in Over.
const HistBuckets = 256

// Hist is a deterministic fixed-geometry histogram for small non-negative
// integer observations (request latencies in network ticks). The geometry is
// frozen — one bucket per unit, HistBuckets buckets, plus an overflow
// counter — so there is no reservoir sampling and no randomness: two runs
// that observe the same values produce bit-identical histograms. The struct
// is comparable (fixed array, no pointers) and subtracts per-field, which
// lets report.Delta compute the histogram of a measurement window as
// end − start, the same contract stats.Series follows.
type Hist struct {
	// Count is the number of observations, including overflows.
	Count uint64
	// Sum is the sum of all observed values (for means).
	Sum uint64
	// Over counts observations >= HistBuckets.
	Over uint64
	// Buckets[v] counts observations of value v.
	Buckets [HistBuckets]uint64
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	h.Count++
	h.Sum += v
	if v >= HistBuckets {
		h.Over++
		return
	}
	h.Buckets[v]++
}

// Quantile returns the smallest value v such that at least q of the
// observations are <= v. Observations in the overflow bucket report
// HistBuckets (a saturated "at least this much" answer). q is clamped to
// (0, 1]; an empty histogram returns 0.
func (h *Hist) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based, rounded up.
	rank := uint64(q * float64(h.Count))
	if float64(rank) < q*float64(h.Count) || rank == 0 {
		rank++
	}
	var cum uint64
	for v := 0; v < HistBuckets; v++ {
		cum += h.Buckets[v]
		if cum >= rank {
			return uint64(v)
		}
	}
	return HistBuckets
}

// Mean returns the average observed value (0 with no observations).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Sub returns the difference h - prev, the histogram of observations
// recorded between two snapshots.
func (h Hist) Sub(prev Hist) Hist {
	d := Hist{Count: h.Count - prev.Count, Sum: h.Sum - prev.Sum, Over: h.Over - prev.Over}
	for i := range h.Buckets {
		d.Buckets[i] = h.Buckets[i] - prev.Buckets[i]
	}
	return d
}

// Merge returns the sum h + o (the inverse of Sub, for combining windowed
// deltas).
func (h Hist) Merge(o Hist) Hist {
	m := Hist{Count: h.Count + o.Count, Sum: h.Sum + o.Sum, Over: h.Over + o.Over}
	for i := range h.Buckets {
		m.Buckets[i] = h.Buckets[i] + o.Buckets[i]
	}
	return m
}
