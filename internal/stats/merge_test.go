package stats

import "testing"

// The Merge methods are the additive inverses of Sub: folding per-window
// deltas in window order must reproduce the serial accumulation exactly.
// The tests below use integer-valued observations so the float moment sums
// in Series are exact and the telescoping identity
// Merge(Sub(b,a), Sub(c,b)) == Sub(c,a) holds bit for bit.

func TestSeriesMergeInverseOfSub(t *testing.T) {
	var a, b, c Series
	for _, v := range []float64{3, 5, 8} {
		a.Add(v)
	}
	b = a
	for _, v := range []float64{2, 13} {
		b.Add(v)
	}
	c = b
	c.Add(21)

	got := b.Sub(a).Merge(c.Sub(b))
	want := c.Sub(a)
	if got != want {
		t.Errorf("Merge(Sub(b,a), Sub(c,b)) = %+v, want Sub(c,a) = %+v", got, want)
	}
	if got.N != 3 || got.Sum != 36 || got.SumSq != 4+169+441 {
		t.Errorf("merged series moments = %+v", got)
	}
}

func TestSeriesMergeZeroIdentity(t *testing.T) {
	var s Series
	s.Add(7)
	s.Add(11)
	if s.Merge(Series{}) != s || (Series{}).Merge(s) != s {
		t.Errorf("zero series is not a Merge identity: %+v", s)
	}
}

func TestCyclesMergeInverseOfSub(t *testing.T) {
	fill := func(k uint64) Cycles {
		var c Cycles
		for i := range c.ByCat {
			c.ByCat[i] = k * uint64(i+1)
		}
		for i := range c.BySyscall {
			c.BySyscall[i] = k * uint64(i+2)
		}
		for i := range c.ByMode {
			c.ByMode[i] = k * uint64(i+3)
		}
		c.Total = k * 1000
		return c
	}
	a, b, c := fill(1), fill(4), fill(9)

	ab, bc := b.Sub(&a), c.Sub(&b)
	got := ab.Merge(&bc)
	want := c.Sub(&a)
	if got != want {
		t.Errorf("Merge(Sub(b,a), Sub(c,b)) = %+v, want Sub(c,a) = %+v", got, want)
	}
}

func TestHistMergeInverseOfSub(t *testing.T) {
	var a, b, c Hist
	for _, v := range []uint64{1, 1, 2, 300} {
		a.Observe(v)
	}
	b = a
	for _, v := range []uint64{2, 255, 1000} {
		b.Observe(v)
	}
	c = b
	c.Observe(0)

	got := b.Sub(a).Merge(c.Sub(b))
	want := c.Sub(a)
	if got != want {
		t.Errorf("Merge(Sub(b,a), Sub(c,b)) != Sub(c,a)")
	}
	if got.Count != 4 || got.Over != 1 || got.Buckets[2] != 1 || got.Buckets[255] != 1 || got.Buckets[0] != 1 {
		t.Errorf("merged histogram = Count %d Over %d", got.Count, got.Over)
	}
}
