// Checkpoint serialization for the cache hierarchy: per-cache tag state,
// MSHR occupancy, bus cursors, and the store buffer.
package cache

import (
	"sort"

	"repro/internal/conflict"
)

// CacheSnap captures one cache's mutable state. The line array is
// serialized sparsely — only lines that differ from the zero value appear —
// and as parallel primitive-typed arrays rather than a slice of per-line
// structs: a fresh L2 is >99% untouched early in a run, and gob decodes
// []uint64/[]uint8 through its fast paths instead of reflecting over every
// element, which matters on the checkpoint-library restore hot path.
// Line i of the snapshot is (LineIdx[i], LineTag[i], ...); LineIdx is
// ascending.
type CacheSnap struct {
	// NumLines is the cache's total line count (the geometry check).
	NumLines int
	// LineIdx names the positions of the serialized lines in the cache's
	// dense line array.
	LineIdx []uint32
	LineTag []uint64
	LineUse []uint64
	// LineTID is the filler agent's thread id; its privilege bit lives in
	// LineFlags.
	LineTID   []uint32
	LineTouch []uint64
	// LineFlags packs the per-line booleans: bit 0 valid, bit 1 dirty,
	// bit 2 filler-privileged.
	LineFlags     []uint8
	Tick          uint64
	Tracker       conflict.TrackerSnap
	Accesses      [2]uint64
	Misses        [2]uint64
	Causes        conflict.Matrix
	Shared        conflict.Sharing
	Invalidations uint64
	Writebacks    uint64
}

const (
	lineValid     = 1 << 0
	lineDirty     = 1 << 1
	lineFillerPrv = 1 << 2
)

// Snapshot returns the cache's complete mutable state.
func (c *Cache) Snapshot() CacheSnap {
	s := CacheSnap{
		NumLines:      len(c.lines),
		Tick:          c.tick,
		Tracker:       c.tracker.Snapshot(),
		Accesses:      c.Accesses,
		Misses:        c.Misses,
		Causes:        c.Causes,
		Shared:        c.Shared,
		Invalidations: c.Invalidations,
		Writebacks:    c.Writebacks,
	}
	for i, l := range c.lines {
		// Invalidated lines keep their stale tag/lastUse, so comparing
		// against the zero value (not l.valid) preserves them exactly.
		if l == (line{}) {
			continue
		}
		var flags uint8
		if l.valid {
			flags |= lineValid
		}
		if l.dirty {
			flags |= lineDirty
		}
		if l.filler.Priv {
			flags |= lineFillerPrv
		}
		s.LineIdx = append(s.LineIdx, uint32(i))
		s.LineTag = append(s.LineTag, l.tag)
		s.LineUse = append(s.LineUse, l.lastUse)
		s.LineTID = append(s.LineTID, l.filler.TID)
		s.LineTouch = append(s.LineTouch, l.touched)
		s.LineFlags = append(s.LineFlags, flags)
	}
	return s
}

// Restore overwrites the cache's state from a snapshot taken on a cache with
// the same geometry.
func (c *Cache) Restore(s CacheSnap) {
	if s.NumLines != len(c.lines) {
		panic("cache: snapshot geometry mismatch")
	}
	clear(c.lines)
	for i, idx := range s.LineIdx {
		c.lines[idx] = line{
			valid:   s.LineFlags[i]&lineValid != 0,
			dirty:   s.LineFlags[i]&lineDirty != 0,
			tag:     s.LineTag[i],
			lastUse: s.LineUse[i],
			filler:  conflict.Agent{TID: s.LineTID[i], Priv: s.LineFlags[i]&lineFillerPrv != 0},
			touched: s.LineTouch[i],
		}
	}
	c.tick = s.Tick
	c.tracker.Restore(s.Tracker)
	c.Accesses = s.Accesses
	c.Misses = s.Misses
	c.Causes = s.Causes
	c.Shared = s.Shared
	c.Invalidations = s.Invalidations
	c.Writebacks = s.Writebacks
}

// MSHRFill is one in-flight fill (serialized sorted by line address).
type MSHRFill struct {
	Line  uint64
	Ready uint64
}

// MSHRSnap captures one MSHR table.
type MSHRSnap struct {
	Inflight    []MSHRFill
	FullStalls  uint64
	LatencyArea uint64
	Fills       uint64
}

func (m *mshr) snapshot() MSHRSnap {
	s := MSHRSnap{
		Inflight:    make([]MSHRFill, 0, len(m.inflight)),
		FullStalls:  m.FullStalls,
		LatencyArea: m.latencyArea,
		Fills:       m.fills,
	}
	for _, f := range m.inflight {
		s.Inflight = append(s.Inflight, MSHRFill{Line: f.la, Ready: f.ready})
	}
	sort.Slice(s.Inflight, func(i, j int) bool { return s.Inflight[i].Line < s.Inflight[j].Line })
	return s
}

func (m *mshr) restore(s MSHRSnap) {
	m.inflight = make([]mshrFill, 0, len(s.Inflight))
	for _, f := range s.Inflight {
		m.inflight = append(m.inflight, mshrFill{la: f.Line, ready: f.Ready})
	}
	m.FullStalls = s.FullStalls
	m.latencyArea = s.LatencyArea
	m.fills = s.Fills
}

// HierSnap captures the hierarchy's complete mutable state.
type HierSnap struct {
	L1I, L1D, L2         CacheSnap
	MSHRI, MSHRD, MSHRL2 MSHRSnap
	L2NextFree           uint64
	MemNextFree          uint64
	BusTransactions      uint64
}

// Snapshot returns the hierarchy's mutable state (configuration excluded).
func (h *Hierarchy) Snapshot() HierSnap {
	return HierSnap{
		L1I: h.L1I.Snapshot(), L1D: h.L1D.Snapshot(), L2: h.L2.Snapshot(),
		MSHRI: h.mshrI.snapshot(), MSHRD: h.mshrD.snapshot(), MSHRL2: h.mshrL2.snapshot(),
		L2NextFree: h.l2NextFree, MemNextFree: h.memNextFree,
		BusTransactions: h.BusTransactions,
	}
}

// Restore overwrites the hierarchy's state from a snapshot.
func (h *Hierarchy) Restore(s HierSnap) {
	h.L1I.Restore(s.L1I)
	h.L1D.Restore(s.L1D)
	h.L2.Restore(s.L2)
	h.mshrI.restore(s.MSHRI)
	h.mshrD.restore(s.MSHRD)
	h.mshrL2.restore(s.MSHRL2)
	h.l2NextFree = s.L2NextFree
	h.memNextFree = s.MemNextFree
	h.BusTransactions = s.BusTransactions
}

// SBSnap captures the store buffer.
type SBSnap struct {
	Entries    []uint64
	FullStalls uint64
	Pushed     uint64
	Drained    uint64
}

// Snapshot returns the store buffer's state.
func (s *StoreBuffer) Snapshot() SBSnap {
	return SBSnap{
		Entries:    append([]uint64(nil), s.entries...),
		FullStalls: s.FullStalls,
		Pushed:     s.Pushed,
		Drained:    s.Drained,
	}
}

// Restore overwrites the store buffer's state.
func (s *StoreBuffer) Restore(snap SBSnap) {
	s.entries = append(s.entries[:0], snap.Entries...)
	s.FullStalls = snap.FullStalls
	s.Pushed = snap.Pushed
	s.Drained = snap.Drained
}
