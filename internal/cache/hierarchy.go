package cache

import "repro/internal/conflict"

// HierConfig sets the timing parameters of the memory system (defaults
// follow the paper's Table 1).
type HierConfig struct {
	// L1HitLatency is the L1 access time in cycles.
	L1HitLatency int
	// L1FillPenalty is the extra fill time into an L1 (2 in the paper).
	L1FillPenalty int
	// L1L2BusLatency is the L1–L2 bus latency (2 cycles, 256 bits wide).
	L1L2BusLatency int
	// L2Latency is the L2 access latency (20 cycles, fully pipelined).
	L2Latency int
	// MemBusLatency is the memory bus latency (4 cycles, 128 bits wide).
	MemBusLatency int
	// MemLatency is physical memory latency (90 cycles, fully pipelined).
	MemLatency int
	// MSHREntries is the number of outstanding-miss registers per L1 cache
	// and for the L2 (32 each in the paper).
	MSHREntries int
	// StoreBufferEntries is the store buffer capacity (32).
	StoreBufferEntries int
	// MemBusOccupancy is the cycles the memory bus is busy per line
	// transfer (64-byte line over a 128-bit bus = 4 beats).
	MemBusOccupancy int
}

// DefaultHierConfig returns the paper's Table 1 memory-system parameters.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1HitLatency:       1,
		L1FillPenalty:      2,
		L1L2BusLatency:     2,
		L2Latency:          20,
		MemBusLatency:      4,
		MemLatency:         90,
		MSHREntries:        32,
		StoreBufferEntries: 32,
		MemBusOccupancy:    4,
	}
}

// AccessResult reports the outcome of a hierarchy access.
type AccessResult struct {
	// Ready is the cycle at which the data is available.
	Ready uint64
	// L1Miss and L2Miss report which levels missed.
	L1Miss, L2Miss bool
	// Stall is true when the access could not be started because the
	// relevant MSHR is full; the requester must retry.
	Stall bool
}

// mshrFill is one in-flight line fill.
type mshrFill struct {
	la    uint64
	ready uint64
}

// mshr tracks in-flight line fills for one cache level. The table is a small
// fixed-capacity slice (32 entries in the paper) rather than a map: linear
// scans over ≤32 entries beat map hashing on the per-access hot path, and the
// preallocated backing array makes every operation allocation-free. Line
// addresses are unique within the table (reserve overwrites in place, exactly
// as the map-keyed version did).
type mshr struct {
	cap         int
	inflight    []mshrFill
	FullStalls  uint64
	latencyArea uint64 // Σ fill durations, for Little's-law avg outstanding
	fills       uint64
}

func newMSHR(capacity int) *mshr {
	return &mshr{cap: capacity, inflight: make([]mshrFill, 0, capacity)}
}

// purge drops completed fills, compacting in place.
func (m *mshr) purge(now uint64) {
	live := m.inflight[:0]
	for _, f := range m.inflight {
		if f.ready > now {
			live = append(live, f)
		}
	}
	m.inflight = live
}

// lookup returns the in-flight completion time for a line, if any; a
// completed entry is dropped on the way.
func (m *mshr) lookup(la, now uint64) (uint64, bool) {
	for i := range m.inflight {
		if m.inflight[i].la != la {
			continue
		}
		if ready := m.inflight[i].ready; ready > now {
			return ready, true
		}
		m.inflight = append(m.inflight[:i], m.inflight[i+1:]...)
		return 0, false
	}
	return 0, false
}

// reserve allocates an entry; reports false when full. An entry for a line
// already in flight is overwritten (the fill was superseded: its line was
// evicted and re-missed before the fill completed), which — like the
// capacity check running first — mirrors the previous map semantics.
func (m *mshr) reserve(la, now, ready uint64) bool {
	if len(m.inflight) >= m.cap {
		m.purge(now)
		if len(m.inflight) >= m.cap {
			m.FullStalls++
			return false
		}
	}
	m.latencyArea += ready - now
	m.fills++
	for i := range m.inflight {
		if m.inflight[i].la == la {
			m.inflight[i].ready = ready
			return true
		}
	}
	m.inflight = append(m.inflight, mshrFill{la: la, ready: ready})
	return true
}

// Hierarchy couples the three caches with bus and memory timing.
type Hierarchy struct {
	Cfg HierConfig //detlint:ignore snapshotcomplete configuration fixed at construction
	L1I *Cache
	L1D *Cache
	L2  *Cache

	mshrI, mshrD, mshrL2 *mshr

	l2NextFree  uint64 // L2 is pipelined at 1 access/cycle
	memNextFree uint64 // memory bus serialization

	// OmitPrivileged, when true, makes privileged (kernel/PAL) accesses
	// complete as ideal hits without touching any cache state. It
	// implements the paper's Table 9 "Apache only" measurement, where OS
	// references to the hardware structures are omitted.
	OmitPrivileged bool //detlint:ignore snapshotcomplete configuration set at assembly, not mutable simulation state

	// BusTransactions counts memory-bus line transfers (the paper's DMA
	// discussion is phrased in bus transactions).
	BusTransactions uint64
}

// NewHierarchy builds the paper's memory system: 128 KB 2-way L1I and L1D,
// 16 MB direct-mapped L2, 64-byte lines throughout.
func NewHierarchy(cfg HierConfig) *Hierarchy {
	return &Hierarchy{
		Cfg:    cfg,
		L1I:    New(Config{Name: "L1I", SizeBytes: 128 << 10, Ways: 2, LineShift: 6}),
		L1D:    New(Config{Name: "L1D", SizeBytes: 128 << 10, Ways: 2, LineShift: 6}),
		L2:     New(Config{Name: "L2", SizeBytes: 16 << 20, Ways: 1, LineShift: 6}),
		mshrI:  newMSHR(cfg.MSHREntries),
		mshrD:  newMSHR(cfg.MSHREntries),
		mshrL2: newMSHR(cfg.MSHREntries),
	}
}

// AccessI performs an instruction fetch of the line containing paddr.
//detlint:hot per-fetch I-cache probe, called every cycle from Engine.fetch
func (h *Hierarchy) AccessI(paddr uint64, ag conflict.Agent, now uint64) AccessResult {
	return h.access(h.L1I, h.mshrI, paddr, ag, false, now, false)
}

// AccessD performs a data access.
//detlint:hot per-issue D-cache probe, called from Engine.memIssue
func (h *Hierarchy) AccessD(paddr uint64, ag conflict.Agent, write bool, now uint64) AccessResult {
	return h.access(h.L1D, h.mshrD, paddr, ag, write, now, false)
}

// WarmI is the functional-warming instruction fetch used by sampled
// fast-forward: it drives the full tag, LRU, sharing and miss-cause state
// of the real caches but skips the MSHR, bus and latency bookkeeping. That
// transient timing state decays within roughly one miss latency (~110
// cycles), long before the next detailed window's warmup opens, whereas
// the tags being warmed persist — so omitting it changes nothing a
// measurement window can observe and makes fast-forward markedly cheaper.
func (h *Hierarchy) WarmI(paddr uint64, ag conflict.Agent) {
	if h.OmitPrivileged && ag.Priv {
		return
	}
	if !h.L1I.Access(paddr, ag, false) {
		h.L2.Access(paddr, ag, false)
	}
}

// WarmD is the data-side counterpart of WarmI; write warms the line the
// way the detailed path's store-buffer drain would.
func (h *Hierarchy) WarmD(paddr uint64, ag conflict.Agent, write bool) {
	if h.OmitPrivileged && ag.Priv {
		return
	}
	if !h.L1D.Access(paddr, ag, write) {
		h.L2.Access(paddr, ag, write)
	}
}

// Probe reports, without side effects, which levels of the hierarchy hold
// the line containing paddr (instruction residency is L1I, data residency
// L1D; either is backed by the shared L2). No LRU, tracker, or counter
// state changes: Probe is safe to call from audits and invariant checks at
// any frequency.
//detlint:hot read-only residency check, usable from per-cycle audit loops
func (h *Hierarchy) Probe(paddr uint64) (l1i, l1d, l2 bool) {
	return h.L1I.Probe(paddr), h.L1D.Probe(paddr), h.L2.Probe(paddr)
}

// DrainStore performs the cache write of a store leaving the store buffer.
// Unlike AccessD it never stalls: the store buffer is the structure that
// holds the data, so the write proceeds even when the MSHRs are saturated
// (the fill is still timed through them).
//detlint:hot per-retired-store cache write, called from Engine.retire
func (h *Hierarchy) DrainStore(paddr uint64, ag conflict.Agent, now uint64) AccessResult {
	return h.access(h.L1D, h.mshrD, paddr, ag, true, now, true)
}

func (h *Hierarchy) access(l1 *Cache, m *mshr, paddr uint64, ag conflict.Agent, write bool, now uint64, noStall bool) AccessResult {
	if h.OmitPrivileged && ag.Priv {
		return AccessResult{Ready: now + uint64(h.Cfg.L1HitLatency)}
	}
	la := l1.LineAddr(paddr)
	// A miss needs an MSHR at each level it will traverse; if none is
	// available the probe stalls *before* perturbing any tag or counter
	// (otherwise the retry would find an allocated tag with no fill in
	// flight and complete instantly).
	if !noStall && !l1.Probe(paddr) {
		m.purge(now)
		if len(m.inflight) >= m.cap {
			m.FullStalls++
			return AccessResult{Stall: true, L1Miss: true}
		}
		if !h.L2.Probe(paddr) {
			h.mshrL2.purge(now)
			if len(h.mshrL2.inflight) >= h.mshrL2.cap {
				h.mshrL2.FullStalls++
				return AccessResult{Stall: true, L1Miss: true}
			}
		}
	}
	if l1.Access(paddr, ag, write) {
		ready := now + uint64(h.Cfg.L1HitLatency)
		// A tag hit on a line whose fill is still in flight completes when
		// the fill does (MSHR merge).
		if inflight, ok := m.lookup(la, now); ok {
			ready = inflight
		}
		return AccessResult{Ready: ready}
	}
	// Genuine L1 miss; MSHR availability was checked before the probe.
	start := now + uint64(h.Cfg.L1L2BusLatency)
	if start < h.l2NextFree {
		start = h.l2NextFree
	}
	h.l2NextFree = start + 1 // L2 accepts one access per cycle

	res := AccessResult{L1Miss: true}
	var ready uint64
	if h.L2.Access(paddr, ag, write) {
		ready = start + uint64(h.Cfg.L2Latency)
		if inflight, ok := h.mshrL2.lookup(la, now); ok && inflight > ready {
			ready = inflight
		}
	} else {
		res.L2Miss = true
		busAt := start + uint64(h.Cfg.L2Latency)
		if busAt < h.memNextFree {
			busAt = h.memNextFree
		}
		h.memNextFree = busAt + uint64(h.Cfg.MemBusOccupancy)
		h.BusTransactions++
		ready = busAt + uint64(h.Cfg.MemBusLatency) + uint64(h.Cfg.MemLatency)
		if inflight, ok := h.mshrL2.lookup(la, now); ok {
			// Merge with an in-flight memory fill of the same line.
			ready = inflight
		} else {
			h.mshrL2.reserve(la, now, ready)
		}
	}
	ready += uint64(h.Cfg.L1FillPenalty)
	m.reserve(la, now, ready)
	res.Ready = ready
	return res
}

// DMA models n direct-memory-access line transfers occupying the memory
// bus (the paper executes disk DMA but omits network DMA, arguing the bus
// delay stays insignificant — the ablation-dma experiment tests exactly
// that claim).
func (h *Hierarchy) DMA(n int, now uint64) {
	busAt := now
	if busAt < h.memNextFree {
		busAt = h.memNextFree
	}
	h.memNextFree = busAt + uint64(n*h.Cfg.MemBusOccupancy)
	h.BusTransactions += uint64(n)
}

// AvgOutstanding returns the average number of in-flight misses for the
// given cache level ("i", "d" or "l2") over total cycles, via Little's law.
func (h *Hierarchy) AvgOutstanding(level string, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	var m *mshr
	switch level {
	case "i":
		m = h.mshrI
	case "d":
		m = h.mshrD
	case "l2":
		m = h.mshrL2
	default:
		return 0
	}
	return float64(m.latencyArea) / float64(cycles)
}

// MSHRStalls returns the number of accesses rejected because the given
// level's MSHR was full.
func (h *Hierarchy) MSHRStalls(level string) uint64 {
	switch level {
	case "i":
		return h.mshrI.FullStalls
	case "d":
		return h.mshrD.FullStalls
	case "l2":
		return h.mshrL2.FullStalls
	}
	return 0
}

// StoreBuffer models the 32-entry store buffer: retired stores enter the
// buffer and drain to the data cache at one per cycle; a full buffer stalls
// retirement.
type StoreBuffer struct {
	capacity int //detlint:ignore snapshotcomplete geometry fixed at construction
	// entries holds the drain-completion cycle of each buffered store.
	entries []uint64
	// FullStalls counts stores rejected because the buffer was full.
	FullStalls uint64
	// Pushed counts stores accepted into the buffer.
	Pushed uint64
	// Drained counts stores observed to have left the buffer (updated
	// lazily, on later pushes).
	Drained uint64
}

// NewStoreBuffer returns a buffer with the given capacity.
func NewStoreBuffer(capacity int) *StoreBuffer {
	return &StoreBuffer{capacity: capacity}
}

// Push inserts a retired store at cycle now; ok is false when the buffer is
// full (the store must retry next cycle). drainAt is when the cache write
// will be performed by the caller.
//detlint:hot per-retired-store buffer insert, called from Engine.retire
func (s *StoreBuffer) Push(now uint64) (drainAt uint64, ok bool) {
	// Lazily drain completed entries (one per cycle drain rate is modeled
	// by spacing completion times one cycle apart).
	live := s.entries[:0]
	for _, t := range s.entries {
		if t > now {
			live = append(live, t)
		} else {
			s.Drained++
		}
	}
	s.entries = live
	if len(s.entries) >= s.capacity {
		s.FullStalls++
		return 0, false
	}
	drainAt = now + 1
	if n := len(s.entries); n > 0 && s.entries[n-1]+1 > drainAt {
		drainAt = s.entries[n-1] + 1
	}
	s.entries = append(s.entries, drainAt)
	s.Pushed++
	return drainAt, true
}

// Occupancy returns the number of buffered stores at cycle now.
func (s *StoreBuffer) Occupancy(now uint64) int {
	n := 0
	for _, t := range s.entries {
		if t > now {
			n++
		}
	}
	return n
}
