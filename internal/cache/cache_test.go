package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/conflict"
)

var (
	u1 = conflict.Agent{TID: 1}
	u2 = conflict.Agent{TID: 2}
	k1 = conflict.Agent{TID: 1, Priv: true}
	k9 = conflict.Agent{TID: 9, Priv: true}
)

func small() *Cache {
	// 4 lines of 64B, 2-way: 2 sets.
	return New(Config{Name: "t", SizeBytes: 256, Ways: 2, LineShift: 6})
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if c.Access(0x40, u1, false) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x40, u1, false) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x7f, u1, false) {
		t.Fatal("same-line access missed")
	}
	if c.Misses[0] != 1 || c.Accesses[0] != 3 {
		t.Fatalf("misses=%d accesses=%d", c.Misses[0], c.Accesses[0])
	}
}

func TestSetConflictAndLRU(t *testing.T) {
	c := small() // 2 sets: line addr parity selects set
	// Three lines mapping to set 0: line addresses 0, 2, 4 (×64).
	c.Access(0*64, u1, false)
	c.Access(2*64, u1, false)
	c.Access(0*64, u1, false) // refresh line 0
	c.Access(4*64, u1, false) // evicts line 2 (LRU)
	if !c.Probe(0 * 64) {
		t.Fatal("MRU line evicted")
	}
	if c.Probe(2 * 64) {
		t.Fatal("LRU line survived")
	}
	// Miss on line 2 again: intrathread conflict.
	c.Access(2*64, u1, false)
	if c.Causes.Counts[0][conflict.Intrathread] != 1 {
		t.Fatalf("intrathread = %d", c.Causes.Counts[0][conflict.Intrathread])
	}
}

func TestInterthreadAndUserKernelClassification(t *testing.T) {
	c := small()
	c.Access(0*64, u1, false)
	c.Access(2*64, u2, false)
	c.Access(4*64, u2, false) // u2 evicts u1's line 0
	c.Access(0*64, u1, false) // u1 misses: interthread
	if c.Causes.Counts[0][conflict.Interthread] != 1 {
		t.Fatalf("interthread = %d", c.Causes.Counts[0][conflict.Interthread])
	}
	// Kernel evicts user line; user remisses -> user-kernel.
	c.Access(6*64, k1, false) // set 1
	c.Access(1*64, u1, false)
	c.Access(3*64, u1, false)
	c.Access(5*64, k9, false) // evicts set-1 LRU (u1's 1*64... order matters)
	// Count at least one user-kernel miss after kernel interference:
	c.Access(1*64, u1, false)
	c.Access(3*64, u1, false)
	uk := c.Causes.Counts[0][conflict.UserKernel]
	if uk == 0 {
		t.Fatal("no user-kernel conflict recorded")
	}
}

func TestWritebackAccounting(t *testing.T) {
	c := small()
	c.Access(0*64, u1, true) // dirty
	c.Access(2*64, u1, false)
	c.Access(4*64, u1, false) // evicts dirty line 0
	if c.Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Writebacks)
	}
}

func TestInvalidateRange(t *testing.T) {
	c := small()
	c.Access(0*64, u1, false)
	c.Access(1*64, u1, false)
	n := c.InvalidateRange(0, 128)
	if n != 2 {
		t.Fatalf("invalidated %d lines, want 2", n)
	}
	c.Access(0*64, u1, false)
	if c.Causes.Counts[0][conflict.Invalidation] != 1 {
		t.Fatal("post-invalidation miss not classified")
	}
}

func TestFlush(t *testing.T) {
	c := small()
	for i := uint64(0); i < 4; i++ {
		c.Access(i*64, u1, false)
	}
	if n := c.Flush(); n != 4 {
		t.Fatalf("flushed %d, want 4", n)
	}
	for i := uint64(0); i < 4; i++ {
		if c.Probe(i * 64) {
			t.Fatal("line survived flush")
		}
	}
}

func TestConstructiveSharing(t *testing.T) {
	c := small()
	c.Access(0x40, k1, false)
	c.Access(0x40, k9, false) // k9 saved by k1's fill
	if c.Shared.Avoided[1][1] != 1 {
		t.Fatalf("kernel-kernel avoided = %d", c.Shared.Avoided[1][1])
	}
	c.Access(0x40, k9, false) // second hit: not counted again
	if c.Shared.Total() != 1 {
		t.Fatalf("total shared = %d", c.Shared.Total())
	}
	c.Access(0x40, u2, false) // user saved by kernel fill
	if c.Shared.Avoided[0][1] != 1 {
		t.Fatalf("user-kernel avoided = %d", c.Shared.Avoided[0][1])
	}
}

func TestMissRates(t *testing.T) {
	c := small()
	c.Access(0x00, u1, false)
	c.Access(0x00, u1, false)
	if r := c.MissRate(false); r != 50 {
		t.Fatalf("user miss rate %.1f", r)
	}
	if r := c.MissRateOverall(); r != 50 {
		t.Fatalf("overall miss rate %.1f", r)
	}
	if c.MissRate(true) != 0 {
		t.Fatal("kernel rate should be 0 with no kernel accesses")
	}
}

func TestGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry did not panic")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 0, Ways: 1, LineShift: 6})
}

// Property: any address is resident immediately after access.
func TestAccessMakesResident(t *testing.T) {
	c := New(Config{Name: "p", SizeBytes: 64 << 10, Ways: 2, LineShift: 6})
	f := func(addr uint64) bool {
		c.Access(addr, u1, false)
		return c.Probe(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyTiming(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	// Cold access: L1 miss + L2 miss -> memory.
	r := h.AccessD(0x1000, u1, false, 100)
	if !r.L1Miss || !r.L2Miss || r.Stall {
		t.Fatalf("cold access: %+v", r)
	}
	wantMin := uint64(100 + 2 + 20 + 4 + 90) // bus+L2+membus+mem (+fill)
	if r.Ready < wantMin {
		t.Fatalf("cold ready=%d < %d", r.Ready, wantMin)
	}
	// Hot access: L1 hit after fill completes.
	r2 := h.AccessD(0x1000, u1, false, r.Ready+1)
	if r2.L1Miss || r2.Ready != r.Ready+1+1 {
		t.Fatalf("hot access: %+v", r2)
	}
}

func TestHierarchyMSHRMerge(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	r1 := h.AccessD(0x2000, u1, false, 10)
	// Same line, different thread, while fill in flight: tag hit that
	// completes with the fill.
	r2 := h.AccessD(0x2010, u2, false, 12)
	if r2.L1Miss {
		t.Fatal("merged access counted as L1 miss")
	}
	if r2.Ready != r1.Ready {
		t.Fatalf("merge ready=%d, want %d", r2.Ready, r1.Ready)
	}
	if h.L1D.Shared.Total() != 1 {
		t.Fatal("merge not counted as constructive sharing")
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	r1 := h.AccessD(0x3000, u1, false, 0)
	// Evict from tiny... L1 is 128KB/2-way = 1024 sets; to force an L1-only
	// miss, access two other lines mapping to the same set: stride =
	// sets*64 = 65536.
	h.AccessD(0x3000+65536, u1, false, r1.Ready)
	h.AccessD(0x3000+2*65536, u1, false, r1.Ready)
	r2 := h.AccessD(0x3000, u1, false, r1.Ready+500)
	if !r2.L1Miss || r2.L2Miss {
		t.Fatalf("expected L1 miss + L2 hit: %+v", r2)
	}
	if r2.Ready <= r1.Ready+500+uint64(1) {
		t.Fatal("L2 hit too fast")
	}
	maxWant := r1.Ready + 500 + uint64(2+20+2+5)
	if r2.Ready > maxWant {
		t.Fatalf("L2 hit too slow: %d > %d", r2.Ready, maxWant)
	}
}

func TestOmitPrivileged(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	h.OmitPrivileged = true
	r := h.AccessD(0x4000, k1, false, 0)
	if r.L1Miss || r.Stall {
		t.Fatal("privileged access touched hierarchy in omit mode")
	}
	if h.L1D.Accesses[1] != 0 {
		t.Fatal("privileged access recorded in omit mode")
	}
	r2 := h.AccessD(0x4000, u1, false, 0)
	if !r2.L1Miss {
		t.Fatal("user access should still miss")
	}
}

func TestMSHRFullStalls(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.MSHREntries = 2
	h := NewHierarchy(cfg)
	now := uint64(0)
	stalled := false
	for i := uint64(0); i < 8; i++ {
		r := h.AccessD(i*0x10000*4, u1, false, now)
		if r.Stall {
			stalled = true
			break
		}
	}
	if !stalled {
		t.Fatal("no stall with 2-entry MSHR and 8 concurrent misses")
	}
	if h.MSHRStalls("d") == 0 {
		t.Fatal("stall not counted")
	}
}

func TestAvgOutstanding(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	h.AccessD(0x5000, u1, false, 0)
	if h.AvgOutstanding("d", 100) <= 0 {
		t.Fatal("no outstanding-miss area recorded")
	}
	if h.AvgOutstanding("bogus", 100) != 0 || h.AvgOutstanding("d", 0) != 0 {
		t.Fatal("degenerate AvgOutstanding not 0")
	}
}

func TestStoreBuffer(t *testing.T) {
	sb := NewStoreBuffer(2)
	d1, ok := sb.Push(10)
	if !ok || d1 != 11 {
		t.Fatalf("push1: %d,%v", d1, ok)
	}
	d2, ok := sb.Push(10)
	if !ok || d2 != 12 {
		t.Fatalf("push2 drain=%d, want 12 (1/cycle drain)", d2)
	}
	if _, ok := sb.Push(10); ok {
		t.Fatal("push into full buffer succeeded")
	}
	if sb.FullStalls != 1 {
		t.Fatalf("FullStalls = %d", sb.FullStalls)
	}
	if sb.Occupancy(10) != 2 {
		t.Fatalf("occupancy = %d", sb.Occupancy(10))
	}
	// After drains complete, pushes succeed again.
	if _, ok := sb.Push(20); !ok {
		t.Fatal("push after drain failed")
	}
	if sb.Drained != 2 {
		t.Fatalf("drained = %d", sb.Drained)
	}
	if sb.Pushed != 3 {
		t.Fatalf("pushed = %d", sb.Pushed)
	}
}

func TestBusTransactionsCounted(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	h.AccessD(0x9000, u1, false, 0)
	h.AccessI(0xA000, u1, 0)
	if h.BusTransactions != 2 {
		t.Fatalf("bus transactions = %d, want 2", h.BusTransactions)
	}
}

// TestAccessDoesNotAllocate pins down that the Access/Probe hot path —
// including the shared locate decode — performs no heap allocation; the
// fast-forward warming path calls it every committed memory instruction.
func TestAccessDoesNotAllocate(t *testing.T) {
	c := New(Config{Name: "L1D", SizeBytes: 128 << 10, Ways: 2, LineShift: 6})
	addr := uint64(0)
	if n := testing.AllocsPerRun(1000, func() {
		c.Access(addr, u1, addr%3 == 0)
		c.Probe(addr ^ 0x4000)
		addr += 832 // stride through sets, mixing hits and misses
	}); n != 0 {
		t.Fatalf("Access/Probe allocated %.1f times per call", n)
	}
}

// BenchmarkCacheAccess measures the tag-lookup hot path so regressions in
// the shared locate path show up. The address stream wraps within capacity:
// after the first lap every access is a hit, which is the path both the
// detailed pipeline and fast-forward warming take most of the time.
func BenchmarkCacheAccess(b *testing.B) {
	c := New(Config{Name: "L1D", SizeBytes: 128 << 10, Ways: 2, LineShift: 6})
	b.ReportAllocs()
	addr := uint64(0)
	for i := 0; i < b.N; i++ {
		c.Access(addr, u1, i&7 == 0)
		addr = (addr + 832) % (128 << 10)
	}
}

// BenchmarkCacheProbe measures the read-only residency check. The timer
// reset matters: without it a b.N=1 round attributes the warming loop's
// allocations to the probe, which is allocation-free.
func BenchmarkCacheProbe(b *testing.B) {
	c := New(Config{Name: "L1D", SizeBytes: 128 << 10, Ways: 2, LineShift: 6})
	for a := uint64(0); a < 128<<10; a += 64 {
		c.Access(a, u1, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Probe(uint64(i) * 832 % (256 << 10))
	}
}

// BenchmarkHierarchyProbe measures the three-level residency check.
func BenchmarkHierarchyProbe(b *testing.B) {
	h := NewHierarchy(DefaultHierConfig())
	for a := uint64(0); a < 128<<10; a += 64 {
		h.WarmD(a, u1, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Probe(uint64(i) * 832 % (256 << 10))
	}
}

// TestHierarchyProbeDoesNotAllocate pins the zero-allocation property the
// //detlint:hot annotation promises: probing from a per-cycle audit loop
// must not create garbage.
func TestHierarchyProbeDoesNotAllocate(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	for a := uint64(0); a < 64<<10; a += 64 {
		h.WarmD(a, u1, a%128 == 0)
		h.WarmI(a, u1)
	}
	allocs := testing.AllocsPerRun(200, func() {
		h.Probe(0x1000)
		h.Probe(0xdead000)
	})
	if allocs != 0 {
		t.Fatalf("Hierarchy.Probe allocates %v times per run, want 0", allocs)
	}
}

// TestHierarchyProbeReportsResidency checks the probe against known fills.
func TestHierarchyProbeReportsResidency(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	h.WarmD(0x4000, u1, false)
	h.WarmI(0x8000, u1)
	if l1i, l1d, l2 := h.Probe(0x4000); l1i || !l1d || !l2 {
		t.Fatalf("Probe(0x4000) = (%v, %v, %v), want (false, true, true)", l1i, l1d, l2)
	}
	if l1i, l1d, l2 := h.Probe(0x8000); !l1i || l1d || !l2 {
		t.Fatalf("Probe(0x8000) = (%v, %v, %v), want (true, false, true)", l1i, l1d, l2)
	}
	if l1i, l1d, l2 := h.Probe(0xffff0000); l1i || l1d || l2 {
		t.Fatalf("Probe(0xffff0000) = (%v, %v, %v), want all false", l1i, l1d, l2)
	}
}
