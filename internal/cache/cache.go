// Package cache models the simulated memory hierarchy of the paper's
// Table 1: 128 KB 2-way L1 instruction and data caches (64-byte lines,
// 2-cycle fill penalty), a 16 MB direct-mapped fully-pipelined L2 with
// 20-cycle latency, 32-entry MSHRs at each level, a 256-bit L1–L2 bus and a
// 128-bit memory bus in front of 90-cycle physical memory.
//
// Each cache line carries ownership metadata so that misses can be
// classified by cause (Tables 3 and 7) and hits on lines fetched by another
// thread can be counted as constructive interthread sharing (Table 8).
//
// Timing simplification: tags are updated at access time (allocate-on-miss)
// while the fill's *timing* is tracked by the hierarchy's MSHR table. A
// second thread touching a line whose fill is still in flight therefore hits
// in the tags but inherits the in-flight completion time — which is exactly
// MSHR merging, and is counted as an avoided miss for Table 8.
package cache

import (
	"fmt"

	"repro/internal/conflict"
)

// Config describes one cache.
type Config struct {
	// Name identifies the cache in reports ("L1I", "L1D", "L2").
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the set associativity (1 = direct mapped).
	Ways int
	// LineShift is log2 of the line size (6 = 64-byte lines).
	LineShift int
}

type line struct {
	valid   bool
	tag     uint64
	lastUse uint64
	filler  conflict.Agent
	touched uint64 // bitmask of tid&63 that hit since fill
	dirty   bool
}

// Cache is one level of the hierarchy (tags + metadata only; the simulator
// does not carry data).
type Cache struct {
	cfg       Config //detlint:ignore snapshotcomplete configuration fixed at construction
	sets      int    //detlint:ignore snapshotcomplete geometry derived from cfg at construction
	lines     []line // sets × ways, row-major
	tick      uint64 //detlint:ignore counterflow LRU clock, timekeeping not a metric
	tracker   *conflict.Tracker
	lineShift uint //detlint:ignore snapshotcomplete geometry derived from cfg at construction

	// Accesses and Misses are indexed by accessor privilege (0 user, 1 kernel).
	Accesses [2]uint64
	Misses   [2]uint64
	// Causes is the miss-cause matrix (Tables 3 and 7).
	Causes conflict.Matrix
	// Shared is the constructive-sharing matrix (Table 8).
	Shared conflict.Sharing
	// Invalidations counts lines removed by explicit flushes.
	Invalidations uint64
	// Writebacks counts dirty evictions.
	Writebacks uint64
}

// New builds a cache from cfg. It panics on a malformed geometry, since
// configurations are static.
func New(cfg Config) *Cache {
	lineSize := 1 << cfg.LineShift
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || lineSize <= 0 {
		panic(fmt.Sprintf("cache %s: bad geometry %+v", cfg.Name, cfg))
	}
	nLines := cfg.SizeBytes / lineSize
	if nLines%cfg.Ways != 0 || nLines == 0 {
		panic(fmt.Sprintf("cache %s: %d lines not divisible by %d ways", cfg.Name, nLines, cfg.Ways))
	}
	return &Cache{
		cfg:       cfg,
		sets:      nLines / cfg.Ways,
		lines:     make([]line, nLines),
		tracker:   conflict.NewTracker(),
		lineShift: uint(cfg.LineShift),
	}
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.cfg.Name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// LineAddr returns the line-aligned address of paddr.
func (c *Cache) LineAddr(paddr uint64) uint64 { return paddr >> c.lineShift }

func (c *Cache) set(lineAddr uint64) []line {
	s := int(lineAddr % uint64(c.sets))
	return c.lines[s*c.cfg.Ways : (s+1)*c.cfg.Ways]
}

// locate decodes paddr into its line address and the set that can hold it —
// the single address-decode path shared by Access and Probe.
func (c *Cache) locate(paddr uint64) (la uint64, set []line) {
	la = paddr >> c.lineShift
	return la, c.set(la)
}

// Access looks up paddr for agent ag; write marks the line dirty. On a miss
// the line is allocated (evicting LRU within the set) and the miss is
// classified. The return value is true on a hit.
func (c *Cache) Access(paddr uint64, ag conflict.Agent, write bool) bool {
	c.tick++
	pi := privIndex(ag.Priv)
	c.Accesses[pi]++
	la, set := c.locate(paddr)
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == la {
			l.lastUse = c.tick
			if write {
				l.dirty = true
			}
			bit := uint64(1) << (ag.TID & 63)
			if l.filler.TID != ag.TID && l.touched&bit == 0 {
				c.Shared.Add(ag, l.filler)
			}
			l.touched |= bit
			return true
		}
		if !l.valid {
			victim = i
			oldest = 0
		} else if l.lastUse < oldest {
			victim = i
			oldest = l.lastUse
		}
	}
	c.Misses[pi]++
	c.Causes.Add(ag, c.tracker.Classify(la, ag))
	v := &set[victim]
	if v.valid {
		c.tracker.Evicted(v.tag, ag)
		if v.dirty {
			c.Writebacks++
		}
	}
	c.tracker.FirstSeen(la, ag)
	*v = line{
		valid:   true,
		tag:     la,
		lastUse: c.tick,
		filler:  ag,
		touched: uint64(1) << (ag.TID & 63),
		dirty:   write,
	}
	return false
}

// Probe reports residency without side effects.
//detlint:hot read-only residency check, safe from any audit or model loop
func (c *Cache) Probe(paddr uint64) bool {
	la, set := c.locate(paddr)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == la {
			return true
		}
	}
	return false
}

// InvalidateRange removes every line overlapping [base, base+size) —
// the architectural cache-flush command used by the OS, e.g. when remapping
// an instruction page (which the paper identifies as the dominant source of
// kernel-induced I-cache misses).
func (c *Cache) InvalidateRange(base, size uint64) int {
	n := 0
	first := base >> c.lineShift
	last := (base + size - 1) >> c.lineShift
	for la := first; la <= last; la++ {
		set := c.set(la)
		for i := range set {
			l := &set[i]
			if l.valid && l.tag == la {
				c.tracker.Invalidated(la)
				if l.dirty {
					c.Writebacks++
				}
				l.valid = false
				n++
			}
		}
	}
	c.Invalidations += uint64(n)
	return n
}

// Flush invalidates the entire cache (the Alpha's whole-cache flush
// command; on SMT this flushes the thread-shared cache, §2.2.2).
func (c *Cache) Flush() int {
	n := 0
	for i := range c.lines {
		l := &c.lines[i]
		if l.valid {
			c.tracker.Invalidated(l.tag)
			if l.dirty {
				c.Writebacks++
			}
			l.valid = false
			n++
		}
	}
	c.Invalidations += uint64(n)
	return n
}

// MissRate returns the miss rate in percent for one privilege class.
func (c *Cache) MissRate(priv bool) float64 {
	pi := privIndex(priv)
	if c.Accesses[pi] == 0 {
		return 0
	}
	return 100 * float64(c.Misses[pi]) / float64(c.Accesses[pi])
}

// MissRateOverall returns the total miss rate in percent.
func (c *Cache) MissRateOverall() float64 {
	acc := c.Accesses[0] + c.Accesses[1]
	if acc == 0 {
		return 0
	}
	return 100 * float64(c.Misses[0]+c.Misses[1]) / float64(acc)
}

func privIndex(priv bool) int {
	if priv {
		return 1
	}
	return 0
}
