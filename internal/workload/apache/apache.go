// Package apache models the Apache 1.3.4 web server of the paper's §2.3 and
// §3.2: a pre-forked pool of 64 server processes, each looping
// accept → read request → stat → open/mmap → read file → writev response →
// close, over a SPECWeb96 file set served from the OS file cache.
//
// All processes share one program text (they are forks of one binary) —
// this is registered as a shared mapping so the instruction cache sees a
// single copy, as on the real machine. Heaps and stacks are private.
//
// The syscall pattern is what produces the paper's Figure 7: stat is issued
// for every request (Apache's URI-to-file translation), reads/writevs move
// the request and response bytes, large files go through smmap/munmap, and
// every request costs an accept (+ an occasional select) on the network
// side — with user-mode parsing/logging bursts in between (Apache spends
// ~22% of cycles in user mode, Figure 5).
package apache

import (
	"encoding/gob"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/rng"
	"repro/internal/sys"
	"repro/internal/workload"
)

func init() {
	// The checkpoint layer serializes ScriptProgram.State as an interface.
	gob.Register(&ProcState{})
}

// Config parameterizes the server model.
type Config struct {
	// Processes is the pre-forked pool size (the paper: 64).
	Processes int
	// Seed drives per-process variation.
	Seed uint64
	// FileSize maps a connection to the requested file's size; wire to
	// netsim.Network.FileSize.
	FileSize func(conn int) int
	// ConnOf maps a socket fd to its connection id; wire to
	// kernel.Kernel.ConnOf.
	ConnOf func(fd int) int
	// MmapThreshold is the file size above which the server maps the file
	// instead of read()ing it.
	MmapThreshold int
	// ReadChunk is the read() granularity for smaller files.
	ReadChunk int
	// KeepAlive, when true, keeps connections open after a response and
	// reads the next request from the same socket (HTTP/1.1 behavior; the
	// paper's Apache 1.3.4 + SPECWeb96 setup is one request per
	// connection).
	KeepAlive bool
}

// DefaultConfig returns the paper's server setup (FileSize/ConnOf must
// still be wired).
func DefaultConfig() Config {
	return Config{
		Processes:     64,
		Seed:          7,
		MmapThreshold: 64 << 10,
		ReadChunk:     8 << 10,
	}
}

// Text layout: one shared text region for the whole pool.
const (
	textBase        = uint64(mem.UserTextBase)
	staticTextInsts = 36000 // ~140 KB of server text
)

// TextRange returns the shared text range to register with
// mem.Memory.ShareRange.
func TextRange() (base, size uint64) {
	return textBase, uint64(staticTextInsts)*4 + mem.PageSize
}

// profile is the Apache user-mode profile, from the user column of the
// paper's Table 5 (loads 21.8%, stores 10.1%, branches 16.7% — 70%
// conditional taken 54% — and no floating point).
func profile() workload.Profile {
	return workload.Profile{
		Name:        "apache",
		Mode:        isa.User,
		StaticInsts: staticTextInsts,
		Mix: workload.Mix{
			Load: 0.218, Store: 0.101, FP: 0,
			// Transfer-class static shares sit below the Table 5 dynamic
			// targets; the walk amplifies them (see kernelMix).
			CondBr: 0.117, UncondBr: 0.012, IndirectJump: 0.016,
		},
		CondTaken:     0.54,
		LoopFrac:      0.12,
		MeanTrips:     8,
		CallFrac:      0.55,
		SwitchTargets: 6,
		Data: []workload.DataSpec{
			// Private heap: request pool, buffers.
			{Size: 128 << 10, Hot: 8 << 10, Weight: 3, SeqFrac: 0.35, ColdFrac: 0.03},
			// Private stack.
			{Size: 32 << 10, Hot: 2 << 10, Weight: 1, SeqFrac: 0.3, ColdFrac: 0.01},
		},
		MeanDep: 7,
	}
}

// reqState is one server process's position in the request loop; the value
// names the next action the process will take.
type reqState uint8

const (
	stAccept reqState = iota
	stReadReq
	stParse
	stStat
	stOpen
	stTransfer
	stPrep
	stWrite
	stUnmap
	stCloseFile
	stCloseConn
	stLog
	stNextOrClose // keep-alive: wait for the next request or the FIN
)

// Server builds the process pool.
type Server struct {
	cfg    Config           //detlint:ignore snapshotcomplete configuration fixed at construction
	region *workload.Region //detlint:ignore snapshotcomplete static code region shared by the pool, rebuilt at assembly
	// nextSlot is the next process slot to hand out; slots beyond the
	// pre-forked pool are used by Respawn.
	nextSlot int
	// RequestsHandled counts completed request loops across the pool.
	RequestsHandled uint64
}

// New builds the server model. Call Programs to get the pool and register
// TextRange with the memory system.
func New(cfg Config) *Server {
	if cfg.Processes <= 0 {
		cfg.Processes = 64
	}
	if cfg.ReadChunk <= 0 {
		cfg.ReadChunk = 8 << 10
	}
	if cfg.MmapThreshold <= 0 {
		cfg.MmapThreshold = 64 << 10
	}
	r := rng.New(cfg.Seed ^ 0xa9ac4e)
	// One shared text region; data bases are rewritten per process.
	reg := workload.Build(profile(), textBase, func(i int, _ workload.DataSpec) uint64 {
		return 0
	}, r)
	return &Server{cfg: cfg, region: reg}
}

// Programs returns the pre-forked pool.
func (s *Server) Programs() []*workload.ScriptProgram {
	out := make([]*workload.ScriptProgram, s.cfg.Processes)
	for i := 0; i < s.cfg.Processes; i++ {
		out[i] = s.process(i + 1)
	}
	s.nextSlot = s.cfg.Processes
	return out
}

// Respawn builds a replacement worker after a crash (fault injection): a
// fresh fork with the shared text but its own slot, heap, and stack, so the
// kernel assigns it a new pid and ASN.
func (s *Server) Respawn() *workload.ScriptProgram {
	s.nextSlot++
	return s.process(s.nextSlot)
}

// ProcState is one server process's mutable script state. It is exported
// (and gob-registered) so the checkpoint layer can serialize it; the process
// closures read and write it through a pointer, which is also published as
// ScriptProgram.State.
type ProcState struct {
	St        reqState
	FD        int
	FileBytes int
	Sent      int
	Mapped    bool
	Served    bool
	MmapAddr  uint64
	Prng      *rng.Rand
}

// ProcessFor rebuilds the process model for an existing slot (checkpoint
// restore). Unlike Respawn it does not advance the slot counter.
func (s *Server) ProcessFor(slot int) *workload.ScriptProgram {
	return s.process(slot)
}

// process builds one server process: shared text, private data.
func (s *Server) process(slot int) *workload.ScriptProgram {
	r := rng.New(s.cfg.Seed ^ uint64(slot)*0x9e37)
	reg := *s.region
	reg.Data = make([]workload.DataRegion, len(s.region.Data))
	copy(reg.Data, s.region.Data)
	heap := uint64(mem.UserDataBase) + uint64(slot)*mem.PIDStride
	stack := uint64(mem.UserStackBase) + uint64(slot)*mem.PIDStride
	reg.Data[0].Base = heap
	reg.Data[1].Base = stack
	w := workload.NewWalker(&reg, r.Split(1))
	w.ResetEvery = uint64(4 * staticTextInsts)

	ps := &ProcState{
		St:       stAccept,
		FD:       -1,
		MmapAddr: heap + 0x0400_0000,
		Prng:     r.Split(2),
	}

	run := func(n int) workload.Step {
		return workload.Step{Kind: workload.StepRun, N: uint64(n)}
	}
	call := func(req sys.Request) workload.Step {
		return workload.Step{Kind: workload.StepSyscall, Req: req}
	}

	next := func() workload.Step {
		switch ps.St {
		case stAccept:
			if ps.Prng.Bool(0.3) {
				// Apache occasionally polls before blocking in accept.
				return call(sys.Request{Num: sys.SysSelect, Resource: sys.ResNet, FD: kernelListenFD})
			}
			ps.St = stReadReq
			return call(sys.Request{Num: sys.SysAccept, Resource: sys.ResNet,
				FD: kernelListenFD, Blocking: true})
		case stReadReq:
			ps.St = stParse
			return call(sys.Request{Num: sys.SysRead, Resource: sys.ResNet,
				FD: ps.FD, Blocking: true})
		case stParse:
			ps.St = stStat
			return run(3600 + ps.Prng.Intn(2400))
		case stStat:
			ps.St = stOpen
			return call(sys.Request{Num: sys.SysStat, Resource: sys.ResFile})
		case stOpen:
			ps.St = stTransfer
			return call(sys.Request{Num: sys.SysOpen, Resource: sys.ResFile})
		case stTransfer:
			if ps.FileBytes > s.cfg.MmapThreshold && !ps.Mapped {
				ps.Mapped = true
				ps.St = stPrep
				return call(sys.Request{Num: sys.SysSmmap, Resource: sys.ResMemory,
					Addr: ps.MmapAddr, Bytes: ps.FileBytes})
			}
			if !ps.Mapped && ps.Sent < ps.FileBytes {
				n := ps.FileBytes - ps.Sent
				if n > s.cfg.ReadChunk {
					n = s.cfg.ReadChunk
				}
				ps.Sent += n
				return call(sys.Request{Num: sys.SysRead, Resource: sys.ResFile, Bytes: n})
			}
			ps.St = stWrite
			return run(5200 + ps.Prng.Intn(2800))
		case stPrep:
			ps.St = stWrite
			return run(1500 + ps.Prng.Intn(800))
		case stWrite:
			if ps.Mapped {
				ps.St = stUnmap
			} else {
				ps.St = stCloseFile
			}
			ps.Served = true
			return call(sys.Request{Num: sys.SysWritev, Resource: sys.ResNet,
				FD: ps.FD, Bytes: ps.FileBytes})
		case stUnmap:
			ps.St = stCloseFile
			return call(sys.Request{Num: sys.SysMunmap, Resource: sys.ResMemory, Addr: ps.MmapAddr})
		case stCloseFile:
			if s.cfg.KeepAlive {
				// The connection stays open; only the file is closed.
				ps.St = stLog
			} else {
				ps.St = stCloseConn
			}
			return call(sys.Request{Num: sys.SysClose, Resource: sys.ResFile})
		case stCloseConn:
			ps.St = stLog
			fdc := ps.FD
			ps.FD = -1
			return call(sys.Request{Num: sys.SysClose, Resource: sys.ResNet, FD: fdc})
		case stLog:
			if s.cfg.KeepAlive && ps.FD >= 0 {
				ps.St = stNextOrClose
			} else {
				ps.St = stAccept
			}
			if ps.Served {
				s.RequestsHandled++
				ps.Served = false
			}
			ps.FileBytes = 0
			ps.Sent = 0
			ps.Mapped = false
			return run(5200 + ps.Prng.Intn(2800))
		case stNextOrClose:
			// Blocking read: either the next request arrives (resultFn
			// moves us to stParse) or the peer closed (result 0 moves us
			// to stCloseConn).
			ps.St = stParse
			return call(sys.Request{Num: sys.SysRead, Resource: sys.ResNet,
				FD: ps.FD, Blocking: true})
		}
		panic("apache: bad state")
	}

	lookupFile := func() {
		ps.FileBytes = 0
		if s.cfg.ConnOf != nil && s.cfg.FileSize != nil {
			if conn := s.cfg.ConnOf(ps.FD); conn >= 0 {
				ps.FileBytes = s.cfg.FileSize(conn)
			}
		}
		if ps.FileBytes == 0 {
			ps.FileBytes = 2048
		}
	}
	resultFn := func(req sys.Request, result int) {
		switch {
		case req.Num == sys.SysAccept:
			if result < 0 {
				// EMFILE: the per-process descriptor limit refused the
				// accept. Loop back and retry; the connection stays queued.
				ps.St = stAccept
				return
			}
			ps.FD = result
			lookupFile()
		case req.Num == sys.SysRead && req.Resource == sys.ResNet:
			if result == 0 {
				// Peer closed (or the kernel's idle reaper tore the
				// connection down): skip serving and close our side. On a
				// perfect wire a request read never returns 0 — the
				// client's request rides the SYN — so this path only runs
				// under fault injection or keep-alive.
				ps.St = stCloseConn
				return
			}
			if !s.cfg.KeepAlive {
				return
			}
			// A fresh request arrived on the open connection.
			lookupFile()
		}
	}

	return &workload.ScriptProgram{
		ProgName: "apache",
		W:        w,
		NextFn:   next,
		ResultFn: resultFn,
		Slot:     slot,
		State:    ps,
	}
}

// ServerSnap captures the pool-level mutable state for checkpointing.
type ServerSnap struct {
	NextSlot        int
	RequestsHandled uint64
}

// Snapshot returns the server's pool-level state.
func (s *Server) Snapshot() ServerSnap {
	return ServerSnap{NextSlot: s.nextSlot, RequestsHandled: s.RequestsHandled}
}

// Restore overwrites the server's pool-level state.
func (s *Server) Restore(snap ServerSnap) {
	s.nextSlot = snap.NextSlot
	s.RequestsHandled = snap.RequestsHandled
}

// kernelListenFD mirrors kernel.ListenFD without importing the kernel
// package (workload models must not depend on the OS implementation).
const kernelListenFD = 0
