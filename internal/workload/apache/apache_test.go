package apache

import (
	"testing"

	"repro/internal/sys"
	"repro/internal/workload"
)

// drive advances a program through steps, answering syscalls like a trivial
// kernel: accept returns fd 7 (conn 7), reads return the chosen file size's
// request, everything else returns 0.
type driver struct {
	prog     *workload.ScriptProgram
	calls    []uint16
	runInsts uint64
}

func (d *driver) step() workload.Step {
	s := d.prog.Next()
	switch s.Kind {
	case workload.StepRun:
		d.runInsts += s.N
	case workload.StepSyscall:
		d.calls = append(d.calls, s.Req.Num)
		res := 0
		switch {
		case s.Req.Num == sys.SysAccept:
			res = 7
		case s.Req.Num == sys.SysRead && s.Req.Resource == sys.ResNet:
			res = 300 // the request bytes
		}
		d.prog.OnSyscallResult(s.Req, res)
	}
	return s
}

func newServer(t *testing.T, fileBytes int) (*Server, *driver) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Processes = 1
	cfg.ConnOf = func(fd int) int { return fd }
	cfg.FileSize = func(conn int) int { return fileBytes }
	srv := New(cfg)
	return srv, &driver{prog: srv.Programs()[0]}
}

func countCalls(calls []uint16, n uint16) int {
	k := 0
	for _, c := range calls {
		if c == n {
			k++
		}
	}
	return k
}

func TestRequestLoopSmallFile(t *testing.T) {
	srv, d := newServer(t, 5000)
	for i := 0; i < 200 && srv.RequestsHandled < 3; i++ {
		d.step()
	}
	if srv.RequestsHandled < 3 {
		t.Fatalf("handled only %d requests", srv.RequestsHandled)
	}
	// Per request: accept, net read, stat, open, file read(s), writev, 2 closes.
	for _, want := range []uint16{sys.SysAccept, sys.SysStat, sys.SysOpen, sys.SysWritev, sys.SysClose} {
		if countCalls(d.calls, want) < 3 {
			t.Fatalf("%s called %d times over 3 requests", sys.Name(want), countCalls(d.calls, want))
		}
	}
	// 5 KB file read in 8 KB chunks: exactly one file read per request, plus
	// the request read on the socket.
	if got := countCalls(d.calls, sys.SysRead); got < 6 {
		t.Fatalf("reads = %d, want >= 6 (request + file per request)", got)
	}
	// Small files never mmap.
	if countCalls(d.calls, sys.SysSmmap) != 0 {
		t.Fatal("small file used mmap")
	}
	if d.runInsts == 0 {
		t.Fatal("no user compute between syscalls")
	}
}

func TestLargeFileUsesMmap(t *testing.T) {
	srv, d := newServer(t, 300_000)
	for i := 0; i < 200 && srv.RequestsHandled < 2; i++ {
		d.step()
	}
	if srv.RequestsHandled < 2 {
		t.Fatalf("handled %d requests", srv.RequestsHandled)
	}
	if countCalls(d.calls, sys.SysSmmap) < 2 || countCalls(d.calls, sys.SysMunmap) < 2 {
		t.Fatalf("mmap/munmap not used for large file: %d/%d",
			countCalls(d.calls, sys.SysSmmap), countCalls(d.calls, sys.SysMunmap))
	}
	// The mmap path must still writev the response.
	if countCalls(d.calls, sys.SysWritev) < 2 {
		t.Fatal("mmap path skipped writev")
	}
}

func TestSharedTextAcrossProcesses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Processes = 3
	srv := New(cfg)
	progs := srv.Programs()
	pcs := map[uint64]bool{}
	for _, p := range progs {
		in, _ := p.Walker().Next()
		pcs[in.PC&^0xffff] = true
	}
	if len(pcs) != 1 {
		t.Fatalf("processes do not share text: %d distinct bases", len(pcs))
	}
	base, size := TextRange()
	if base == 0 || size == 0 {
		t.Fatal("TextRange empty")
	}
}

func TestPrivateDataPerProcess(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Processes = 2
	srv := New(cfg)
	progs := srv.Programs()
	addr := func(p *workload.ScriptProgram) uint64 {
		w := p.Walker()
		for {
			in, _ := w.Next()
			if in.Class.IsMem() {
				return in.Addr
			}
		}
	}
	a, b := addr(progs[0]), addr(progs[1])
	if a>>40 == b>>40 && a == b {
		t.Fatalf("processes share data addresses: %#x %#x", a, b)
	}
}

func TestWritevBytesMatchFile(t *testing.T) {
	srv, d := newServer(t, 12_345)
	var wv []int
	for i := 0; i < 200 && srv.RequestsHandled < 2; i++ {
		s := d.step()
		if s.Kind == workload.StepSyscall && s.Req.Num == sys.SysWritev {
			wv = append(wv, s.Req.Bytes)
		}
	}
	if len(wv) < 2 {
		t.Fatalf("writev count %d", len(wv))
	}
	for _, b := range wv {
		if b != 12_345 {
			t.Fatalf("writev bytes = %d, want 12345", b)
		}
	}
}

func TestKeepAliveServesMultipleRequestsPerConn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Processes = 1
	cfg.KeepAlive = true
	cfg.ConnOf = func(fd int) int { return fd }
	cfg.FileSize = func(conn int) int { return 4000 }
	srv := New(cfg)
	prog := srv.Programs()[0]
	accepts, reads, closes := 0, 0, 0
	served := 0
	for i := 0; i < 400 && srv.RequestsHandled < 3; i++ {
		s := prog.Next()
		if s.Kind != workload.StepSyscall {
			continue
		}
		res := 0
		switch {
		case s.Req.Num == sys.SysAccept:
			accepts++
			res = 9
		case s.Req.Num == sys.SysRead && s.Req.Resource == sys.ResNet:
			reads++
			// Three requests arrive on the connection, then the client
			// closes (read returns 0).
			if served < 3 {
				served++
				res = 300
			} else {
				res = 0
			}
		case s.Req.Num == sys.SysClose && s.Req.Resource == sys.ResNet:
			closes++
		}
		prog.OnSyscallResult(s.Req, res)
	}
	if srv.RequestsHandled < 3 {
		t.Fatalf("handled %d requests", srv.RequestsHandled)
	}
	if accepts != 1 {
		t.Fatalf("accepts = %d, want 1 (keep-alive)", accepts)
	}
	if closes != 0 {
		t.Fatalf("net closes = %d before the client's FIN, want 0", closes)
	}
	// Deliver the FIN: the server's pending keep-alive read returns 0,
	// after which it closes the connection and returns to accept.
	for i := 0; i < 40; i++ {
		s := prog.Next()
		if s.Kind != workload.StepSyscall {
			continue
		}
		res := 0
		if s.Req.Num == sys.SysAccept {
			break
		}
		if s.Req.Num == sys.SysClose && s.Req.Resource == sys.ResNet {
			closes++
		}
		prog.OnSyscallResult(s.Req, res)
	}
	if closes != 1 {
		t.Fatalf("net closes after FIN = %d, want 1", closes)
	}
}
