package workload

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/rng"
	"repro/internal/sys"
)

func testProfile() Profile {
	return Profile{
		Name:        "test",
		Mode:        isa.User,
		StaticInsts: 2000,
		Mix: Mix{
			Load: 0.20, Store: 0.10, FP: 0.02,
			CondBr: 0.10, UncondBr: 0.03, IndirectJump: 0.02,
		},
		CondTaken:     0.55,
		LoopFrac:      0.3,
		MeanTrips:     20,
		CallFrac:      0.5,
		SwitchTargets: 4,
		Data: []DataSpec{
			{Size: 1 << 20, Hot: 64 << 10, Weight: 1, SeqFrac: 0.3, ColdFrac: 0.1},
		},
		MeanDep: 5,
	}
}

func flatLayout(i int, spec DataSpec) uint64 {
	return 0x2_0000_0000 + uint64(i)*0x1000_0000
}

func buildTest(t *testing.T, seed uint64) *Region {
	t.Helper()
	return Build(testProfile(), 0x1_2000_0000, flatLayout, rng.New(seed))
}

func TestBuildDeterministic(t *testing.T) {
	a, b := buildTest(t, 1), buildTest(t, 1)
	if len(a.Slots) != len(b.Slots) {
		t.Fatal("slot counts differ")
	}
	for i := range a.Slots {
		if a.Slots[i] != b.Slots[i] {
			t.Fatalf("slot %d differs", i)
		}
	}
}

func TestWalkerDeterministic(t *testing.T) {
	reg := buildTest(t, 2)
	w1 := NewWalker(reg, rng.New(7))
	w2 := NewWalker(reg, rng.New(7))
	for i := 0; i < 5000; i++ {
		a, _ := w1.Next()
		b, _ := w2.Next()
		if a != b {
			t.Fatalf("walkers diverged at %d", i)
		}
	}
}

func TestWalkerPCsWithinRegion(t *testing.T) {
	reg := buildTest(t, 3)
	w := NewWalker(reg, rng.New(1))
	end := reg.Base + reg.Size()
	for i := 0; i < 20000; i++ {
		in, ok := w.Next()
		if !ok {
			t.Fatal("walker exhausted")
		}
		if in.PC < reg.Base || in.PC >= end {
			t.Fatalf("PC %#x outside region [%#x,%#x)", in.PC, reg.Base, end)
		}
		if in.ControlTransfer() && (in.Target < reg.Base || in.Target >= end) {
			t.Fatalf("target %#x outside region", in.Target)
		}
	}
}

func TestWalkerMixMatchesProfile(t *testing.T) {
	reg := buildTest(t, 4)
	w := NewWalker(reg, rng.New(2))
	counts := map[isa.Class]int{}
	n := 200000
	for i := 0; i < n; i++ {
		in, _ := w.Next()
		counts[in.Class]++
	}
	frac := func(c isa.Class) float64 { return float64(counts[c]) / float64(n) }
	// Dynamic mix tracks the static mix loosely (control flow biases it);
	// allow generous tolerances.
	if f := frac(isa.Load); f < 0.12 || f > 0.30 {
		t.Fatalf("load frac = %.3f", f)
	}
	if f := frac(isa.Store); f < 0.05 || f > 0.17 {
		t.Fatalf("store frac = %.3f", f)
	}
	if f := frac(isa.CondBranch); f < 0.04 || f > 0.20 {
		t.Fatalf("cond frac = %.3f", f)
	}
	// FP presence depends on whether the dynamic walk reaches the sparse
	// FP sites; the share is checked statically instead.
	fp := 0
	for _, sl := range reg.Slots {
		if sl.Kind == isa.FPALU {
			fp++
		}
	}
	if fp == 0 {
		t.Fatal("no FP slots generated")
	}
}

func TestWalkerAddressesWithinData(t *testing.T) {
	reg := buildTest(t, 5)
	w := NewWalker(reg, rng.New(3))
	d := reg.Data[0]
	for i := 0; i < 50000; i++ {
		in, _ := w.Next()
		if !in.Class.IsMem() {
			continue
		}
		if in.Addr < d.Base || in.Addr >= d.Base+d.Size {
			t.Fatalf("addr %#x outside region [%#x,%#x)", in.Addr, d.Base, d.Base+d.Size)
		}
		if in.Physical {
			t.Fatal("non-physical region produced physical access")
		}
	}
}

func TestPhysicalRegions(t *testing.T) {
	p := testProfile()
	p.Mode = isa.Kernel
	p.PhysFrac = 0.5
	p.Data = append(p.Data, DataSpec{Size: 1 << 20, Physical: true, Weight: 1})
	reg := Build(p, 0x1000, flatLayout, rng.New(9))
	w := NewWalker(reg, rng.New(9))
	phys, virt := 0, 0
	for i := 0; i < 100000; i++ {
		in, _ := w.Next()
		if !in.Class.IsMem() {
			continue
		}
		if in.Physical {
			phys++
		} else {
			virt++
		}
	}
	if phys == 0 || virt == 0 {
		t.Fatalf("phys=%d virt=%d; want both nonzero", phys, virt)
	}
	ratio := float64(phys) / float64(phys+virt)
	if ratio < 0.3 || ratio > 0.7 {
		t.Fatalf("physical fraction %.2f, want ~0.5", ratio)
	}
}

func TestLoopBranchDeterministicTrips(t *testing.T) {
	reg := &Region{
		Name: "loop", Base: 0x1000, Mode: isa.User,
		Slots: []Slot{
			{Kind: isa.IntALU},
			{Kind: isa.CondBranch, Target: 0, Trips: 3},
			{Kind: isa.IntALU},
		},
	}
	w := NewWalker(reg, rng.New(1))
	var seq []bool
	for i := 0; i < 16; i++ {
		in, _ := w.Next()
		if in.Class == isa.CondBranch {
			seq = append(seq, in.Taken)
		}
	}
	// Trips=3: taken, taken, not-taken, repeating.
	want := []bool{true, true, false, true, true, false}
	for i, v := range want {
		if i >= len(seq) {
			t.Fatalf("only %d branch executions", len(seq))
		}
		if seq[i] != v {
			t.Fatalf("trip %d = %v, want %v (seq %v)", i, seq[i], v, seq[:i+1])
		}
	}
}

func TestCallReturnMatching(t *testing.T) {
	reg := &Region{
		Name: "callret", Base: 0x1000, Mode: isa.User,
		Slots: []Slot{
			{Kind: isa.UncondBranch, Target: 2, IsCall: true}, // 0: call f
			{Kind: isa.IntALU},                    // 1: after call
			{Kind: isa.IntALU},                    // 2: f body
			{Kind: isa.IndirectJump, IsRet: true}, // 3: return
		},
	}
	w := NewWalker(reg, rng.New(1))
	in, _ := w.Next() // call
	if in.Class != isa.UncondBranch || in.Target != reg.PCOf(2) {
		t.Fatalf("call wrong: %+v", in)
	}
	in, _ = w.Next() // f body
	if in.PC != reg.PCOf(2) {
		t.Fatalf("did not enter function: pc=%#x", in.PC)
	}
	in, _ = w.Next() // return
	if in.Class != isa.IndirectJump || in.Target != reg.PCOf(1) {
		t.Fatalf("return target %#x, want %#x", in.Target, reg.PCOf(1))
	}
	in, _ = w.Next()
	if in.PC != reg.PCOf(1) {
		t.Fatalf("did not resume after call: pc=%#x", in.PC)
	}
}

func TestIndirectRotation(t *testing.T) {
	reg := &Region{
		Name: "switch", Base: 0, Mode: isa.Kernel,
		Slots: make([]Slot, 100),
	}
	for i := range reg.Slots {
		reg.Slots[i] = Slot{Kind: isa.IntALU}
	}
	reg.Slots[0] = Slot{Kind: isa.IndirectJump, Target: 10, NumTargets: 3}
	w := NewWalker(reg, rng.New(1))
	seen := map[uint64]bool{}
	for i := 0; i < 4000; i++ {
		in, _ := w.Next()
		if in.PC == 0 && in.Class == isa.IndirectJump {
			seen[in.Target] = true
		}
	}
	if len(seen) < 3 {
		t.Fatalf("indirect produced %d targets, want >= 3", len(seen))
	}
}

func TestLimit(t *testing.T) {
	reg := buildTest(t, 6)
	l := &Limit{G: NewWalker(reg, rng.New(1)), N: 10}
	n := 0
	for {
		_, ok := l.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("Limit emitted %d, want 10", n)
	}
}

func TestTailAndSeq(t *testing.T) {
	reg := buildTest(t, 7)
	ret := isa.Inst{Class: isa.PALReturn, Mode: isa.PAL}
	tl := &Tail{G: &Limit{G: NewWalker(reg, rng.New(1)), N: 5}, Extra: []isa.Inst{ret}}
	var last isa.Inst
	n := 0
	for {
		in, ok := tl.Next()
		if !ok {
			break
		}
		last = in
		n++
	}
	if n != 6 || last.Class != isa.PALReturn {
		t.Fatalf("Tail: n=%d last=%v", n, last.Class)
	}

	s := &Seq{Gs: []Generator{
		&Limit{G: NewWalker(reg, rng.New(1)), N: 3},
		&Limit{G: NewWalker(reg, rng.New(2)), N: 4},
	}}
	n = 0
	for {
		_, ok := s.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 7 {
		t.Fatalf("Seq emitted %d, want 7", n)
	}
}

func TestDrain(t *testing.T) {
	reg := buildTest(t, 8)
	out := Drain(&Limit{G: NewWalker(reg, rng.New(1)), N: 100}, 50)
	if len(out) != 50 {
		t.Fatalf("Drain got %d, want 50", len(out))
	}
	out = Drain(&Limit{G: NewWalker(reg, rng.New(1)), N: 5}, 50)
	if len(out) != 5 {
		t.Fatalf("Drain of short gen got %d, want 5", len(out))
	}
}

func TestScriptProgram(t *testing.T) {
	reg := buildTest(t, 9)
	calls := 0
	var gotReq sys.Request
	p := &ScriptProgram{
		ProgName: "x",
		W:        NewWalker(reg, rng.New(1)),
		NextFn: func() Step {
			calls++
			if calls == 1 {
				return Step{Kind: StepRun, N: 100}
			}
			return Step{Kind: StepExit}
		},
		ResultFn: func(req sys.Request, result int) { gotReq = req },
	}
	if p.Name() != "x" || p.Walker() == nil {
		t.Fatal("accessors broken")
	}
	if s := p.Next(); s.Kind != StepRun || s.N != 100 {
		t.Fatalf("step1 = %+v", s)
	}
	if s := p.Next(); s.Kind != StepExit {
		t.Fatalf("step2 = %+v", s)
	}
	p.OnSyscallResult(sys.Request{Num: sys.SysRead}, 10)
	if gotReq.Num != sys.SysRead {
		t.Fatal("result callback not invoked")
	}
	p.ResultFn = nil
	p.OnSyscallResult(sys.Request{}, 0) // must not panic
}

func TestBuildPanicsOnEmptyProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero-size profile")
		}
	}()
	Build(Profile{Name: "bad"}, 0, flatLayout, rng.New(1))
}

func TestBuildPanicsOnMemWithoutData(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for memory ops without data regions")
		}
	}()
	Build(Profile{Name: "bad", StaticInsts: 10, Mix: Mix{Load: 0.5}}, 0, flatLayout, rng.New(1))
}

func TestStreamRegionsMarchThroughWholeRegion(t *testing.T) {
	reg := &Region{
		Name: "stream", Base: 0x1000, Mode: isa.Kernel,
		Slots: []Slot{
			{Kind: isa.Load, Data: 0, Pattern: PatSeq, Stride: 8},
		},
		Data: []DataRegion{
			{Base: 0x100000, Size: 1 << 20, Hot: 4096, Stream: true},
		},
	}
	w := NewWalker(reg, rng.New(1))
	maxAddr := uint64(0)
	for i := 0; i < 100000; i++ {
		in, _ := w.Next()
		if in.Addr > maxAddr {
			maxAddr = in.Addr
		}
	}
	if maxAddr-0x100000 <= 4096 {
		t.Fatalf("stream stayed within hot window: max offset %d", maxAddr-0x100000)
	}
}

func TestNonStreamSeqWrapsHotWindow(t *testing.T) {
	reg := &Region{
		Name: "loopbuf", Base: 0x1000, Mode: isa.User,
		Slots: []Slot{
			{Kind: isa.Load, Data: 0, Pattern: PatSeq, Stride: 8},
		},
		Data: []DataRegion{
			{Base: 0x100000, Size: 1 << 20, Hot: 4096},
		},
	}
	w := NewWalker(reg, rng.New(1))
	for i := 0; i < 10000; i++ {
		in, _ := w.Next()
		if in.Addr >= 0x100000+4096 {
			t.Fatalf("loop-style seq escaped the hot window: %#x", in.Addr)
		}
	}
}

func TestResetEveryRestartsWalk(t *testing.T) {
	reg := buildTest(t, 21)
	w := NewWalker(reg, rng.New(4))
	w.ResetEvery = 500
	sawBaseAfterReset := false
	for i := 0; i < 2000; i++ {
		in, _ := w.Next()
		if i > 500 && in.PC == reg.Base {
			sawBaseAfterReset = true
			break
		}
	}
	if !sawBaseAfterReset {
		t.Fatal("walk never returned to slot 0 after ResetEvery")
	}
}

func TestHardBranchFracProducesWeakSites(t *testing.T) {
	p := testProfile()
	p.HardBranchFrac = 1.0 // every non-loop conditional is a hard site
	reg := Build(p, 0x1000, flatLayout, rng.New(31))
	weak := 0
	total := 0
	for _, sl := range reg.Slots {
		if sl.Kind == isa.CondBranch && sl.Trips == 0 {
			total++
			if sl.TakenBias >= 0.3 && sl.TakenBias <= 0.7 {
				weak++
			}
		}
	}
	if total == 0 || weak != total {
		t.Fatalf("hard sites %d of %d conditionals", weak, total)
	}
}
