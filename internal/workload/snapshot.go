// Checkpoint serialization for workload walkers. Regions are static after
// Build (they are re-derived from configuration at restore time); everything
// a Walker mutates while running is captured here.
package workload

// WalkerSnap captures one walker's mutable state. The owning Region is not
// serialized: the restorer rebuilds it deterministically and matches walkers
// to regions by name.
type WalkerSnap struct {
	Idx        int
	Loops      []int32
	CallStack  []int32
	Cursors    []uint64
	ColdPage   []uint64
	ColdLeft   []int32
	SwitchPos  []int32
	Count      uint64
	ResetEvery uint64
	RNG        [4]uint64
}

// Snapshot returns the walker's complete mutable state.
func (w *Walker) Snapshot() WalkerSnap {
	return WalkerSnap{
		Idx:        w.idx,
		Loops:      append([]int32(nil), w.loops...),
		CallStack:  append([]int32(nil), w.callStack...),
		Cursors:    append([]uint64(nil), w.cursors...),
		ColdPage:   append([]uint64(nil), w.coldPage...),
		ColdLeft:   append([]int32(nil), w.coldLeft...),
		SwitchPos:  append([]int32(nil), w.switchPos...),
		Count:      w.Count,
		ResetEvery: w.ResetEvery,
		RNG:        w.rng.State(),
	}
}

// Restore overwrites the walker's state from a snapshot taken on a walker
// over a region of identical shape.
func (w *Walker) Restore(s WalkerSnap) {
	if len(s.Loops) != len(w.loops) || len(s.Cursors) != len(w.cursors) {
		panic("workload: walker snapshot shape mismatch")
	}
	w.idx = s.Idx
	copy(w.loops, s.Loops)
	w.callStack = append(w.callStack[:0], s.CallStack...)
	copy(w.cursors, s.Cursors)
	copy(w.coldPage, s.ColdPage)
	copy(w.coldLeft, s.ColdLeft)
	copy(w.switchPos, s.SwitchPos)
	w.Count = s.Count
	w.ResetEvery = s.ResetEvery
	w.rng.SetState(s.RNG)
}

// RNGState exposes the walker's generator state (used by tests).
func (w *Walker) RNGState() [4]uint64 { return w.rng.State() }
