// Checkpoint serialization for workload walkers. Regions are static after
// Build (they are re-derived from configuration at restore time); everything
// a Walker mutates while running is captured here.
//
// The per-slot arrays (loop trip counters, indirect-jump visit counters) are
// almost entirely zero at any instant — well under 0.1% of slots hold a live
// counter — so they are serialized as sparse index/value pairs. A dense
// encoding costs megabytes per checkpoint and dominates library restore
// time; the sparse form is a few hundred bytes.
package workload

// WalkerSnap captures one walker's mutable state. The owning Region is not
// serialized: the restorer rebuilds it deterministically and matches walkers
// to regions by name.
type WalkerSnap struct {
	Idx int
	// NumSlots is the region's slot count, recorded so Restore can reject a
	// snapshot taken over a differently shaped region.
	NumSlots int
	// LoopIdx/LoopVal are the nonzero entries of the per-slot loop trip
	// counters, in ascending slot order.
	LoopIdx []int32
	LoopVal []int32
	// SwitchIdx/SwitchVal are the nonzero entries of the per-slot
	// indirect-jump visit counters, in ascending slot order.
	SwitchIdx  []int32
	SwitchVal  []int32
	CallStack  []int32
	Cursors    []uint64
	ColdPage   []uint64
	ColdLeft   []int32
	Count      uint64
	ResetEvery uint64
	RNG        [4]uint64
}

// sparseInt32 collects the nonzero entries of v as index/value pairs.
func sparseInt32(v []int32) (idx, val []int32) {
	for i, x := range v {
		if x != 0 {
			idx = append(idx, int32(i))
			val = append(val, x)
		}
	}
	return idx, val
}

// Snapshot returns the walker's complete mutable state.
func (w *Walker) Snapshot() WalkerSnap {
	s := WalkerSnap{
		Idx:        w.idx,
		NumSlots:   len(w.loops),
		CallStack:  append([]int32(nil), w.callStack...),
		Cursors:    append([]uint64(nil), w.cursors...),
		ColdPage:   append([]uint64(nil), w.coldPage...),
		ColdLeft:   append([]int32(nil), w.coldLeft...),
		Count:      w.Count,
		ResetEvery: w.ResetEvery,
		RNG:        w.rng.State(),
	}
	s.LoopIdx, s.LoopVal = sparseInt32(w.loops)
	s.SwitchIdx, s.SwitchVal = sparseInt32(w.switchPos)
	return s
}

// Restore overwrites the walker's state from a snapshot taken on a walker
// over a region of identical shape.
func (w *Walker) Restore(s WalkerSnap) {
	if s.NumSlots != len(w.loops) || len(s.Cursors) != len(w.cursors) {
		panic("workload: walker snapshot shape mismatch")
	}
	w.idx = s.Idx
	clear(w.loops)
	for i, slot := range s.LoopIdx {
		w.loops[slot] = s.LoopVal[i]
	}
	clear(w.switchPos)
	for i, slot := range s.SwitchIdx {
		w.switchPos[slot] = s.SwitchVal[i]
	}
	w.callStack = append(w.callStack[:0], s.CallStack...)
	copy(w.cursors, s.Cursors)
	copy(w.coldPage, s.ColdPage)
	copy(w.coldLeft, s.ColdLeft)
	w.Count = s.Count
	w.ResetEvery = s.ResetEvery
	w.rng.SetState(s.RNG)
}

// RNGState exposes the walker's generator state (used by tests).
func (w *Walker) RNGState() [4]uint64 { return w.rng.State() }
