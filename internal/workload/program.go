package workload

import "repro/internal/sys"

// StepKind says what a program does next.
type StepKind uint8

const (
	// StepRun executes N user-mode instructions.
	StepRun StepKind = iota
	// StepSyscall performs the system call described by Req.
	StepSyscall
	// StepExit terminates the process.
	StepExit
)

// Step is one element of a program's life: a compute burst, a system call,
// or exit.
type Step struct {
	Kind StepKind
	// N is the burst length in instructions for StepRun.
	N uint64
	// Req describes the call for StepSyscall.
	Req sys.Request
}

// Program is the behavioral model of one user process: a source of user-mode
// instructions (Walker) plus a script of compute bursts and system calls.
// The behavioral kernel consumes Steps, runs the bursts on the program's
// walker, and executes its own service code for the syscalls.
type Program interface {
	// Name identifies the program ("gcc", "apache-12").
	Name() string
	// Walker is the source of the program's user-mode instructions.
	Walker() *Walker
	// Next returns the program's next step. It is called after the
	// previous step completes (for blocking syscalls, after the kernel
	// unblocks the thread).
	Next() Step
	// OnSyscallResult lets the kernel report a result the program reacts
	// to (e.g. bytes read from a socket, 0 meaning connection closed).
	OnSyscallResult(req sys.Request, result int)
}

// ScriptProgram is a simple Program built from a fixed walker and a Next
// function; the workload packages use it for their process models.
type ScriptProgram struct {
	ProgName string
	W        *Walker
	NextFn   func() Step
	ResultFn func(req sys.Request, result int)

	// Slot distinguishes instances that share a ProgName (e.g. forked Apache
	// workers); together (ProgName, Slot) identify a program for checkpoint
	// restore.
	Slot int
	// State points at the program's script state (a workload-package-specific
	// exported struct that NextFn/ResultFn close over). The checkpoint layer
	// serializes it with gob and copies the decoded value back on restore;
	// programs with no mutable script state leave it nil.
	State any
}

// Name implements Program.
func (p *ScriptProgram) Name() string { return p.ProgName }

// Walker implements Program.
func (p *ScriptProgram) Walker() *Walker { return p.W }

// Next implements Program.
func (p *ScriptProgram) Next() Step { return p.NextFn() }

// OnSyscallResult implements Program.
func (p *ScriptProgram) OnSyscallResult(req sys.Request, result int) {
	if p.ResultFn != nil {
		p.ResultFn(req, result)
	}
}
