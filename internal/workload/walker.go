package workload

import (
	"repro/internal/isa"
	"repro/internal/rng"
)

// Generator produces a finite or infinite stream of dynamic instructions.
// Next returns ok=false when the generator is exhausted.
type Generator interface {
	Next() (isa.Inst, bool)
}

// Walker executes a Region, producing its dynamic instruction stream. It is
// infinite (a region never "ends"; finite excerpts are taken with Limit or
// by the kernel's service wrappers) and fully deterministic given its RNG.
type Walker struct {
	Reg       *Region //detlint:ignore snapshotcomplete static region pointer, re-linked by the owning workload on restore
	rng       *rng.Rand
	idx       int
	loops     []int32
	callStack []int32
	cursors   []uint64
	coldPage  []uint64
	coldLeft  []int32
	switchPos []int32
	// Count is the number of dynamic instructions emitted.
	Count uint64
	// ResetEvery, when nonzero, restarts the walk from slot 0 every that
	// many dynamic instructions — the program's outer event loop. It also
	// guarantees the walk cannot stay trapped in a degenerate cycle.
	ResetEvery uint64
}

// NewWalker returns a walker over reg driven by r.
func NewWalker(reg *Region, r *rng.Rand) *Walker {
	return &Walker{
		Reg:       reg,
		rng:       r,
		loops:     make([]int32, len(reg.Slots)),
		cursors:   make([]uint64, len(reg.Data)),
		coldPage:  make([]uint64, len(reg.Data)),
		coldLeft:  make([]int32, len(reg.Data)),
		switchPos: make([]int32, len(reg.Slots)),
	}
}

// PC returns the program counter of the next instruction.
func (w *Walker) PC() uint64 { return w.Reg.PCOf(w.idx) }

// Next emits the next dynamic instruction (always ok; Walker is infinite).
func (w *Walker) Next() (isa.Inst, bool) {
	reg := w.Reg
	n := len(reg.Slots)
	if w.ResetEvery > 0 && w.Count > 0 && w.Count%w.ResetEvery == 0 {
		w.idx = 0
		w.callStack = w.callStack[:0]
	}
	s := &reg.Slots[w.idx]
	in := isa.Inst{
		PC:    reg.PCOf(w.idx),
		Class: s.Kind,
		Mode:  reg.Mode,
		Dep1:  s.Dep1,
		Dep2:  s.Dep2,
		Size:  8,
	}
	next := w.idx + 1
	if next >= n {
		next = 0
	}

	switch s.Kind {
	case isa.Load, isa.Store, isa.Sync:
		in.Addr, in.Physical = w.dataAddr(s)
	case isa.CondBranch:
		if s.Trips > 0 {
			if w.loops[w.idx] == 0 {
				w.loops[w.idx] = s.Trips
			}
			w.loops[w.idx]--
			in.Taken = w.loops[w.idx] > 0
		} else {
			in.Taken = w.rng.Bool(float64(s.TakenBias))
		}
		in.Target = reg.PCOf(int(s.Target))
		if in.Taken {
			next = int(s.Target)
		}
	case isa.UncondBranch:
		in.Taken = true
		in.Target = reg.PCOf(int(s.Target))
		if s.IsCall {
			ret := w.idx + 1
			if ret >= n {
				ret = 0
			}
			if len(w.callStack) < 64 {
				w.callStack = append(w.callStack, int32(ret))
			}
		}
		next = int(s.Target)
	case isa.IndirectJump:
		in.Taken = true
		var tgt int32
		if s.IsRet && len(w.callStack) > 0 {
			tgt = w.callStack[len(w.callStack)-1]
			w.callStack = w.callStack[:len(w.callStack)-1]
		} else if s.IsRet {
			// Unmatched return (stack drained by a reset or imbalance):
			// scatter deterministically rather than funneling to slot 0.
			w.switchPos[w.idx]++
			tgt = int32((uint64(w.idx)*2654435761 + uint64(w.switchPos[w.idx])*97) % uint64(n))
		} else if s.NumTargets > 1 {
			w.switchPos[w.idx]++
			k := w.switchPos[w.idx]
			if k%16 == 0 {
				// Every fourth execution the dispatch lands somewhere new
				// (hash of site and visit count): this is the kernel's
				// "repeated changes in the target address of indirect
				// jumps" (§3.1.2), and it keeps the walk ergodic — no
				// basin of hot routines can trap it.
				tgt = int32((uint64(w.idx)*2654435761 + uint64(k)*40503) % uint64(n))
			} else {
				tgt = (s.Target + ((k/16)%s.NumTargets)*17) % int32(n)
			}
		} else {
			tgt = s.Target % int32(n)
		}
		in.Target = reg.PCOf(int(tgt))
		next = int(tgt)
	}

	w.idx = next
	w.Count++
	return in, true
}

// dataAddr produces the address for a memory slot.
func (w *Walker) dataAddr(s *Slot) (addr uint64, physical bool) {
	if len(w.Reg.Data) == 0 {
		return 0, false
	}
	d := &w.Reg.Data[s.Data]
	var off uint64
	switch s.Pattern {
	case PatSeq:
		wrap := d.Hot
		if d.Stream {
			wrap = d.Size
		}
		w.cursors[s.Data] = (w.cursors[s.Data] + uint64(s.Stride)) % wrap
		off = w.cursors[s.Data]
	case PatHot:
		off = w.rng.Uint64n(maxU64(d.Hot, 8))
	default: // PatCold
		// Cold accesses roam the whole region but with page-level
		// clustering (real programs touch a dozen-odd spots on a page
		// before moving on); this keeps TLB behavior realistic while the
		// cache still sees mostly-cold lines.
		if w.coldLeft[s.Data] <= 0 {
			w.coldPage[s.Data] = w.rng.Uint64n(maxU64(d.Size>>13, 1)) << 13
			w.coldLeft[s.Data] = int32(2 + w.rng.Intn(12))
		}
		w.coldLeft[s.Data]--
		off = w.coldPage[s.Data] + w.rng.Uint64n(8192)
		if off >= d.Size {
			off = w.rng.Uint64n(maxU64(d.Size, 8))
		}
	}
	return d.Base + (off &^ 7), d.Physical
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Limit wraps a generator to emit at most N instructions.
type Limit struct {
	G Generator
	N uint64
}

// Next implements Generator.
func (l *Limit) Next() (isa.Inst, bool) {
	if l.N == 0 {
		return isa.Inst{}, false
	}
	l.N--
	return l.G.Next()
}

// Tail emits the instructions of G and then the extra instructions in
// sequence (used to terminate a kernel service with a PAL return, or a user
// burst with a syscall PAL call).
type Tail struct {
	G     Generator
	Extra []isa.Inst
	// Pos is the index of the next Extra instruction (exported so the
	// checkpoint layer can serialize a partially drained tail).
	Pos int
}

// Next implements Generator.
func (t *Tail) Next() (isa.Inst, bool) {
	if t.G != nil {
		if in, ok := t.G.Next(); ok {
			return in, true
		}
		t.G = nil
	}
	if t.Pos < len(t.Extra) {
		in := t.Extra[t.Pos]
		t.Pos++
		return in, true
	}
	return isa.Inst{}, false
}

// Seq chains generators back to back.
type Seq struct {
	Gs []Generator
}

// Next implements Generator.
func (s *Seq) Next() (isa.Inst, bool) {
	for len(s.Gs) > 0 {
		if in, ok := s.Gs[0].Next(); ok {
			return in, true
		}
		s.Gs = s.Gs[1:]
	}
	return isa.Inst{}, false
}

// Drain collects up to max instructions from a generator into a slice
// (used by the kernel to splice trap-handler code into a context's feed).
func Drain(g Generator, max int) []isa.Inst {
	out := make([]isa.Inst, 0, minInt(max, 4096))
	for len(out) < max {
		in, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, in)
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
