// Package workload provides the synthetic-code machinery that stands in for
// the binaries the paper executes (SPECInt95 applications, Apache, and
// Digital Unix kernel routines, none of which are redistributable or
// executable here).
//
// A Region is a static synthetic program: an array of instruction slots laid
// out at consecutive PCs, with per-site branch behavior (biases, loop trip
// counts, call/return structure, indirect-jump target sets) and per-site
// memory behavior (which data region, what pattern). A Walker executes a
// Region, producing the deterministic dynamic instruction stream that the
// pipeline fetches. Because branch behavior is attached to static sites,
// the branch predictor can learn it — mispredict rates then *emerge* from
// the site-bias distribution instead of being dialed in directly; likewise
// cache and TLB behavior emerge from code footprint and data working sets.
package workload

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/rng"
)

// Pattern describes how a memory slot generates addresses within its data
// region.
type Pattern uint8

const (
	// PatSeq strides sequentially through the region (array walks).
	PatSeq Pattern = iota
	// PatHot picks uniformly within the region's hot subset.
	PatHot
	// PatCold picks uniformly within the whole region.
	PatCold
)

// DataRegion is one data working-set component of a Region.
type DataRegion struct {
	// Base is the starting address (virtual, or physical if Physical).
	Base uint64
	// Size is the region size in bytes.
	Size uint64
	// Hot is the size of the frequently-touched subset (≤ Size).
	Hot uint64
	// Physical marks addresses as physical (kernel accesses that bypass
	// the DTLB, per Tables 2/5).
	Physical bool
	// Stream makes sequential accesses march through the whole region
	// (buffer-cache/socket copies touching fresh data) instead of looping
	// over the hot subset (array walks).
	Stream bool
}

// Slot is one static instruction.
type Slot struct {
	// Kind is the instruction class.
	Kind isa.Class
	// Target is the taken-target slot index for control transfers.
	Target int32
	// TakenBias is the probability a conditional branch is taken
	// (ignored when Trips > 0).
	TakenBias float32
	// Trips, when > 0, makes the conditional a loop-closing branch taken
	// Trips-1 consecutive times then falling through (deterministic, so
	// the local predictor can learn it).
	Trips int32
	// IsCall marks an unconditional branch as a call (pushes the return
	// slot); IsRet marks an indirect jump as a return (pops it).
	IsCall, IsRet bool
	// NumTargets > 1 gives an indirect jump a rotating set of targets
	// starting at Target (the paper's kernel indirect-jump pathology).
	NumTargets int32
	// Data is the data-region index for memory slots.
	Data int32
	// Pattern is the address pattern for memory slots.
	Pattern Pattern
	// Stride is the sequential step in bytes for PatSeq.
	Stride int32
	// Dep1, Dep2 are register dependency distances.
	Dep1, Dep2 uint16
}

// Region is a static synthetic program or kernel routine.
type Region struct {
	// Name identifies the region in reports.
	Name string
	// Base is the virtual address of slot 0.
	Base uint64
	// Mode is the execution mode of the region's instructions.
	Mode isa.Mode
	// Slots is the static code.
	Slots []Slot
	// Data is the data regions referenced by memory slots.
	Data []DataRegion
}

// Size returns the region's code size in bytes (4 bytes per instruction).
func (r *Region) Size() uint64 { return uint64(len(r.Slots)) * 4 }

// PCOf returns the PC of slot i.
func (r *Region) PCOf(i int) uint64 { return r.Base + uint64(i)*4 }

// Mix gives the fraction of instruction classes in a Profile. Fractions
// need not sum to 1; the remainder is integer ALU work.
type Mix struct {
	Load, Store, FP, Sync          float64
	CondBr, UncondBr, IndirectJump float64
}

// rest returns the IntALU fraction.
func (m Mix) rest() float64 {
	r := 1 - m.Load - m.Store - m.FP - m.Sync - m.CondBr - m.UncondBr - m.IndirectJump
	if r < 0 {
		return 0
	}
	return r
}

// DataSpec describes one data region of a Profile.
type DataSpec struct {
	// Size and Hot are the region and hot-subset sizes in bytes.
	Size, Hot uint64
	// Physical marks the region as physically addressed.
	Physical bool
	// Weight is the relative probability memory slots use this region.
	Weight float64
	// SeqFrac is the fraction of this region's slots that stride
	// sequentially; the rest split between hot and cold random.
	SeqFrac float64
	// ColdFrac is the fraction of random accesses that roam the whole
	// region rather than the hot subset.
	ColdFrac float64
	// Stream selects streaming (whole-region) sequential access.
	Stream bool
	// ShareKey, when non-empty, lets the layout function place several
	// profiles' regions at one shared address (the kernel's single buffer
	// cache, shared socket buffers).
	ShareKey string
}

// Profile parameterizes synthetic code generation. The per-workload values
// are calibrated against the paper's Tables 2 and 5 (instruction mix,
// physical-address fractions, conditional-taken rates) and its qualitative
// descriptions (kernel diamond-shaped branches, few loops; user loop nests).
type Profile struct {
	// Name names the generated region.
	Name string
	// Mode is the execution mode of the code.
	Mode isa.Mode
	// StaticInsts is the static code size in instructions (drives I-cache
	// and BTB footprint).
	StaticInsts int
	// Mix is the instruction-class mix.
	Mix Mix
	// CondTaken is the mean taken bias of non-loop conditional sites.
	CondTaken float64
	// LoopFrac is the fraction of conditional sites that are loop-closing.
	LoopFrac float64
	// MeanTrips is the mean loop trip count.
	MeanTrips float64
	// CallFrac is the fraction of unconditional branches that are calls
	// (matched by returns among the indirect jumps).
	CallFrac float64
	// SwitchTargets is the number of targets of non-return indirect jumps.
	SwitchTargets int
	// Data describes the data regions. At least one non-physical region
	// is required if Mix has memory classes with PhysFrac < 1.
	Data []DataSpec
	// PhysFrac is the fraction of memory slots assigned to physical
	// regions (kernel code only; requires a Physical region in Data).
	PhysFrac float64
	// MeanDep is the mean register-dependency distance (smaller = less
	// ILP; kernel code uses small values, tuned user loops larger).
	MeanDep float64
	// HardBranchFrac is the fraction of conditional sites with weak bias
	// (hard to predict). Zero selects the default of 0.12.
	HardBranchFrac float64
}

// Build generates the static Region for a profile. base is the code's
// starting address; data-region base addresses are produced by layout,
// which maps each DataSpec to an address range (so callers control address-
// space placement). r drives all sampling and must be dedicated to this
// build for determinism.
func Build(p Profile, base uint64, layout func(i int, spec DataSpec) uint64, r *rng.Rand) *Region {
	if p.StaticInsts <= 0 {
		panic(fmt.Sprintf("workload: profile %s has %d static instructions", p.Name, p.StaticInsts))
	}
	reg := &Region{Name: p.Name, Base: base, Mode: p.Mode}

	physRegions := []int{}
	virtRegions := []int{}
	weights := make([]float64, len(p.Data))
	for i, d := range p.Data {
		hot := d.Hot
		if hot == 0 || hot > d.Size {
			hot = d.Size
		}
		reg.Data = append(reg.Data, DataRegion{
			Base:     layout(i, d),
			Size:     d.Size,
			Hot:      hot,
			Physical: d.Physical,
			Stream:   d.Stream,
		})
		weights[i] = d.Weight
		if weights[i] <= 0 {
			weights[i] = 1
		}
		if d.Physical {
			physRegions = append(physRegions, i)
		} else {
			virtRegions = append(virtRegions, i)
		}
	}
	hasMem := p.Mix.Load+p.Mix.Store+p.Mix.Sync > 0
	if hasMem && len(reg.Data) == 0 {
		panic(fmt.Sprintf("workload: profile %s has memory ops but no data regions", p.Name))
	}

	n := p.StaticInsts
	reg.Slots = make([]Slot, n)

	// Pre-plan call targets: function entries scattered through the region,
	// with call sites Zipf-distributed over them — real programs spend most
	// of their time in a few hot routines, which is what lets the BTB and
	// I-cache capture a working set despite a large static footprint.
	nFuncs := n/64 + 1
	entries := make([]int32, nFuncs)
	for i := range entries {
		entries[i] = int32(r.Intn(n))
	}
	callZipf := rng.NewZipf(r, nFuncs, 1.2)

	classWeights := []float64{
		p.Mix.rest(), p.Mix.FP, p.Mix.Load, p.Mix.Store,
		p.Mix.CondBr, p.Mix.UncondBr, p.Mix.IndirectJump, p.Mix.Sync,
	}

	// Returns must balance calls or the walk degenerates: an excess of
	// returns drains the call stack and funnels control to one spot.
	retProb := 0.0
	if p.Mix.IndirectJump > 0 {
		retProb = p.Mix.UncondBr * p.CallFrac / p.Mix.IndirectJump
		if retProb > 0.85 {
			retProb = 0.85
		}
	}
	classes := []isa.Class{
		isa.IntALU, isa.FPALU, isa.Load, isa.Store,
		isa.CondBranch, isa.UncondBranch, isa.IndirectJump, isa.Sync,
	}

	pickData := func() (int32, bool) {
		if len(reg.Data) == 0 {
			return 0, false
		}
		usePhys := len(physRegions) > 0 && r.Bool(p.PhysFrac)
		if usePhys {
			return int32(physRegions[r.Intn(len(physRegions))]), true
		}
		if len(virtRegions) == 0 {
			return int32(physRegions[r.Intn(len(physRegions))]), true
		}
		// Weighted choice among virtual regions.
		w := make([]float64, len(virtRegions))
		for j, ri := range virtRegions {
			w[j] = weights[ri]
		}
		return int32(virtRegions[r.Choose(w)]), false
	}

	for i := 0; i < n; i++ {
		s := &reg.Slots[i]
		s.Kind = classes[r.Choose(classWeights)]
		s.Dep1 = depDist(r, p.MeanDep)
		s.Dep2 = 0
		if r.Bool(0.4) {
			s.Dep2 = depDist(r, p.MeanDep)
		}
		switch s.Kind {
		case isa.Load, isa.Store, isa.Sync:
			di, phys := pickData()
			s.Data = di
			d := reg.Data[di]
			switch {
			case r.Bool(specSeqFrac(p, int(di))):
				s.Pattern = PatSeq
				if reg.Data[di].Stream {
					s.Stride = 8 // copies touch every word
				} else {
					s.Stride = int32(8 << r.Intn(2)) // 8 or 16 byte strides
				}
			case r.Bool(specColdFrac(p, int(di))):
				s.Pattern = PatCold
			default:
				s.Pattern = PatHot
			}
			_ = phys
			_ = d
		case isa.CondBranch:
			if r.Bool(p.LoopFrac) {
				// Loop-closing backward branch. Bodies have a floor so hot
				// loops don't degenerate into branch-every-other-inst
				// cycles that would warp the dynamic instruction mix.
				body := 6 + r.Geometric(10)
				t := i - body
				if t < 0 {
					t = 0
				}
				s.Target = int32(t)
				s.Trips = int32(r.Geometric(p.MeanTrips))
				if s.Trips < 2 {
					s.Trips = 2
				}
			} else {
				// Forward diamond: skip a few instructions.
				skip := 1 + r.Geometric(6)
				t := i + 1 + skip
				if t >= n {
					t = 0
				}
				s.Target = int32(t)
				// Per-site bias: most sites strongly biased around the
				// profile mean, a few unpredictable.
				hard := p.HardBranchFrac
				if hard == 0 {
					hard = 0.12
				}
				if r.Bool(hard) {
					s.TakenBias = float32(0.3 + 0.4*r.Float64()) // hard sites
				} else if r.Bool(p.CondTaken) {
					// Strongly biased, like most real branches.
					s.TakenBias = float32(0.96 + 0.035*r.Float64())
				} else {
					s.TakenBias = float32(0.002 + 0.038*r.Float64())
				}
			}
		case isa.UncondBranch:
			if r.Bool(p.CallFrac) {
				s.IsCall = true
				s.Target = entries[callZipf.Next()]
			} else {
				t := i + 2 + r.Geometric(8)
				if t >= n {
					t = 0
				}
				s.Target = int32(t)
			}
		case isa.IndirectJump:
			// Returns match calls; the rest are switch-style jumps.
			if r.Bool(retProb) {
				s.IsRet = true
			} else {
				// At least two rotating targets: a fixed backward indirect
				// would trap the walk in a tight cycle forever.
				s.NumTargets = int32(2 + r.Intn(maxInt(1, p.SwitchTargets)))
				s.Target = entries[callZipf.Next()]
			}
		}
	}
	return reg
}

func specSeqFrac(p Profile, di int) float64 {
	if di < len(p.Data) {
		return p.Data[di].SeqFrac
	}
	return 0.3
}

func specColdFrac(p Profile, di int) float64 {
	if di < len(p.Data) {
		return p.Data[di].ColdFrac
	}
	return 0.1
}

func depDist(r *rng.Rand, mean float64) uint16 {
	if mean <= 0 {
		mean = 4
	}
	d := r.Geometric(mean)
	if d > 64 {
		d = 64
	}
	return uint16(d)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
