// Package specint models the multiprogrammed SPECInt95 workload of the
// paper's §2.3: all eight integer benchmarks (go, m88ksim, gcc, compress,
// li, ijpeg, perl, vortex) run together, one process each, on the
// 8-context SMT.
//
// The binaries and inputs are not redistributable, so each benchmark is a
// synthetic program (internal/workload) whose static code size, data
// working set, instruction mix, branch structure, and ILP are parameterized
// from the paper's own Table 2 and from the well-known characteristics of
// the suite (gcc/go: large code, hard branches; compress: small code,
// streaming data; li/perl: pointer chasing and indirect jumps; ijpeg:
// loop nests; vortex: large random data; m88ksim: mid-sized loops).
//
// Each program has the two phases the paper measures (Figure 1): a
// start-up phase — reading input files, mapping memory, first-touching the
// working set (which is what drives the kernel's page-allocation activity
// of Figure 3) — and a steady-state phase of long compute bursts with only
// occasional system calls.
package specint

import (
	"encoding/gob"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/rng"
	"repro/internal/sys"
	"repro/internal/workload"
)

func init() {
	// The checkpoint layer serializes ScriptProgram.State as an interface.
	gob.Register(&ProcState{})
}

// AppSpec parameterizes one benchmark model.
type AppSpec struct {
	// Name is the benchmark name.
	Name string
	// StaticInsts is the static code size in instructions.
	StaticInsts int
	// DataKB and HotKB size the main data region.
	DataKB, HotKB int
	// SeqFrac and ColdFrac shape its access pattern.
	SeqFrac, ColdFrac float64
	// CondTaken, LoopFrac, MeanTrips, SwitchTargets shape branches.
	CondTaken, LoopFrac, MeanTrips float64
	SwitchTargets                  int
	// FPFrac is the floating-point fraction (SPECInt has a little).
	FPFrac float64
	// MeanDep is the mean register dependence distance (ILP).
	MeanDep float64
	// InputReads is the number of 8 KB input-file reads at start-up.
	InputReads int
	// StartupInsts is the user-instruction length of the start-up phase.
	StartupInsts uint64
	// SteadyBurst is the compute burst length between steady-state steps.
	SteadyBurst uint64
	// SteadyCallEvery issues one light syscall every N steady bursts.
	SteadyCallEvery int
}

// Suite returns the eight SPECInt95 benchmark models.
func Suite() []AppSpec {
	return []AppSpec{
		{Name: "go", StaticInsts: 24000, DataKB: 512, HotKB: 8, SeqFrac: 0.3, ColdFrac: 0.03,
			CondTaken: 0.55, LoopFrac: 0.18, MeanTrips: 8, SwitchTargets: 5, FPFrac: 0,
			MeanDep: 8, InputReads: 4, StartupInsts: 900_000, SteadyBurst: 60_000, SteadyCallEvery: 10},
		{Name: "m88ksim", StaticInsts: 12000, DataKB: 256, HotKB: 8, SeqFrac: 0.4, ColdFrac: 0.03,
			CondTaken: 0.6, LoopFrac: 0.35, MeanTrips: 25, SwitchTargets: 3, FPFrac: 0.01,
			MeanDep: 9, InputReads: 3, StartupInsts: 700_000, SteadyBurst: 80_000, SteadyCallEvery: 12},
		{Name: "gcc", StaticInsts: 40000, DataKB: 1024, HotKB: 10, SeqFrac: 0.3, ColdFrac: 0.04,
			CondTaken: 0.55, LoopFrac: 0.15, MeanTrips: 6, SwitchTargets: 8, FPFrac: 0,
			MeanDep: 8, InputReads: 8, StartupInsts: 1_300_000, SteadyBurst: 50_000, SteadyCallEvery: 6},
		{Name: "compress", StaticInsts: 4000, DataKB: 2048, HotKB: 12, SeqFrac: 0.75, ColdFrac: 0.04,
			CondTaken: 0.62, LoopFrac: 0.5, MeanTrips: 60, SwitchTargets: 2, FPFrac: 0,
			MeanDep: 10, InputReads: 6, StartupInsts: 500_000, SteadyBurst: 100_000, SteadyCallEvery: 15},
		{Name: "li", StaticInsts: 9000, DataKB: 384, HotKB: 8, SeqFrac: 0.2, ColdFrac: 0.04,
			CondTaken: 0.5, LoopFrac: 0.2, MeanTrips: 10, SwitchTargets: 6, FPFrac: 0,
			MeanDep: 6, InputReads: 2, StartupInsts: 550_000, SteadyBurst: 70_000, SteadyCallEvery: 9},
		{Name: "ijpeg", StaticInsts: 11000, DataKB: 768, HotKB: 10, SeqFrac: 0.7, ColdFrac: 0.03,
			CondTaken: 0.68, LoopFrac: 0.55, MeanTrips: 40, SwitchTargets: 2, FPFrac: 0.06,
			MeanDep: 12, InputReads: 5, StartupInsts: 650_000, SteadyBurst: 120_000, SteadyCallEvery: 14},
		{Name: "perl", StaticInsts: 20000, DataKB: 512, HotKB: 8, SeqFrac: 0.3, ColdFrac: 0.03,
			CondTaken: 0.52, LoopFrac: 0.18, MeanTrips: 7, SwitchTargets: 7, FPFrac: 0.01,
			MeanDep: 8, InputReads: 4, StartupInsts: 800_000, SteadyBurst: 60_000, SteadyCallEvery: 8},
		{Name: "vortex", StaticInsts: 26000, DataKB: 3072, HotKB: 12, SeqFrac: 0.3, ColdFrac: 0.05,
			CondTaken: 0.58, LoopFrac: 0.22, MeanTrips: 12, SwitchTargets: 4, FPFrac: 0,
			MeanDep: 9, InputReads: 7, StartupInsts: 1_000_000, SteadyBurst: 70_000, SteadyCallEvery: 7},
	}
}

// profile maps an AppSpec onto a workload.Profile, with the user-mode
// instruction mix of the paper's Table 2 (loads ~20%, stores ~10%, branches
// ~15% of which two-thirds conditional).
func profile(a AppSpec) workload.Profile {
	return workload.Profile{
		Name:        a.Name,
		Mode:        isa.User,
		StaticInsts: a.StaticInsts,
		Mix: workload.Mix{
			Load: 0.195, Store: 0.105, FP: a.FPFrac,
			// Static transfer shares below Table 2's dynamic targets; the
			// dynamic stream amplifies call and jump sites.
			CondBr: 0.099, UncondBr: 0.014, IndirectJump: 0.013,
		},
		CondTaken:     a.CondTaken,
		LoopFrac:      a.LoopFrac,
		MeanTrips:     a.MeanTrips,
		CallFrac:      0.5,
		SwitchTargets: a.SwitchTargets,
		Data: []workload.DataSpec{
			{Size: uint64(a.DataKB) << 10, Hot: uint64(a.HotKB) << 10, Weight: 3,
				SeqFrac: a.SeqFrac, ColdFrac: a.ColdFrac},
			// A small stack region with tight locality.
			{Size: 64 << 10, Hot: 2 << 10, Weight: 1, SeqFrac: 0.3, ColdFrac: 0.01},
		},
		MeanDep: a.MeanDep,
	}
}

// phase tracks a program's position in its lifecycle.
type phase uint8

const (
	phStartup phase = iota
	phSteady
)

// New builds the benchmark program for spec as process number pid (1-based
// workload slot; address-space placement only).
func New(spec AppSpec, slot int, seed uint64) *workload.ScriptProgram {
	r := rng.New(seed ^ uint64(slot)<<32 ^ 0x5bec)
	base := uint64(mem.UserTextBase) + uint64(slot)*mem.PIDStride
	layout := func(i int, _ workload.DataSpec) uint64 {
		if i == 1 {
			return uint64(mem.UserStackBase) + uint64(slot)*mem.PIDStride
		}
		return uint64(mem.UserDataBase) + uint64(slot)*mem.PIDStride
	}
	reg := workload.Build(profile(spec), base, layout, r.Split(1))
	w := workload.NewWalker(reg, r.Split(2))
	w.ResetEvery = uint64(6 * spec.StaticInsts)

	ps := &ProcState{
		ReadsLeft: spec.InputReads,
		Prng:      r.Split(3),
	}

	next := func() workload.Step {
		switch ps.Ph {
		case phStartup:
			// The very first activity is the shell's fork+exec of the
			// benchmark (the paper's Figure 4 shows process creation and
			// control filling much of the start-up syscall time).
			if ps.Spawn == 0 {
				ps.Spawn = 1
				return workload.Step{Kind: workload.StepSyscall, Req: sys.Request{
					Num: sys.SysFork, Resource: sys.ResProcess,
				}}
			}
			if ps.Spawn == 1 {
				ps.Spawn = 2
				return workload.Step{Kind: workload.StepSyscall, Req: sys.Request{
					Num: sys.SysExec, Resource: sys.ResProcess,
				}}
			}
			if ps.Spawn == 2 {
				ps.Spawn = 3
				return workload.Step{Kind: workload.StepSyscall, Req: sys.Request{
					Num: sys.SysSigaction,
				}}
			}
			// Interleave compute with input-file reads and an occasional
			// mmap, like a program parsing its inputs.
			if ps.Ran >= spec.StartupInsts && ps.ReadsLeft == 0 {
				ps.Ph = phSteady
				return workload.Step{Kind: workload.StepRun, N: spec.SteadyBurst}
			}
			if ps.ReadsLeft > 0 && ps.Prng.Bool(0.35) {
				if !ps.Opened {
					ps.Opened = true
					return workload.Step{Kind: workload.StepSyscall, Req: sys.Request{
						Num: sys.SysOpen, Resource: sys.ResFile,
					}}
				}
				ps.ReadsLeft--
				return workload.Step{Kind: workload.StepSyscall, Req: sys.Request{
					Num: sys.SysRead, Bytes: 8192, Resource: sys.ResFile,
				}}
			}
			if ps.Prng.Bool(0.06) {
				return workload.Step{Kind: workload.StepSyscall, Req: sys.Request{
					Num: sys.SysSmmap, Resource: sys.ResMemory,
				}}
			}
			n := spec.StartupInsts / 20
			if n == 0 {
				n = 1000
			}
			ps.Ran += n
			return workload.Step{Kind: workload.StepRun, N: n}
		default:
			ps.Bursts++
			if spec.SteadyCallEvery > 0 && ps.Bursts%spec.SteadyCallEvery == 0 {
				// Rare steady-state syscalls (status checks, small reads).
				if ps.Prng.Bool(0.5) {
					return workload.Step{Kind: workload.StepSyscall, Req: sys.Request{
						Num: sys.SysRead, Bytes: 4096, Resource: sys.ResFile,
					}}
				}
				return workload.Step{Kind: workload.StepSyscall, Req: sys.Request{
					Num: sys.SysGetpid,
				}}
			}
			return workload.Step{Kind: workload.StepRun, N: spec.SteadyBurst}
		}
	}

	return &workload.ScriptProgram{
		ProgName: spec.Name,
		W:        w,
		NextFn:   next,
		Slot:     slot,
		State:    ps,
	}
}

// ProcState is one benchmark's mutable script state, exported (and
// gob-registered) so the checkpoint layer can serialize it; the program
// closures access it through a pointer published as ScriptProgram.State.
type ProcState struct {
	Ph        phase
	Ran       uint64
	ReadsLeft int
	Opened    bool
	Bursts    int
	Spawn     int
	Prng      *rng.Rand
}

// Programs builds the full multiprogrammed suite.
func Programs(seed uint64) []*workload.ScriptProgram {
	specs := Suite()
	out := make([]*workload.ScriptProgram, len(specs))
	for i, s := range specs {
		out[i] = New(s, i+1, seed)
	}
	return out
}
