package specint

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/sys"
	"repro/internal/workload"
)

func TestSuiteHasEightBenchmarks(t *testing.T) {
	s := Suite()
	if len(s) != 8 {
		t.Fatalf("suite has %d benchmarks, want 8", len(s))
	}
	names := map[string]bool{}
	for _, a := range s {
		names[a.Name] = true
	}
	for _, want := range []string{"go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl", "vortex"} {
		if !names[want] {
			t.Fatalf("missing benchmark %s", want)
		}
	}
}

func TestStartupDoesFileReadsThenSteadyState(t *testing.T) {
	spec := Suite()[2] // gcc: 8 input reads
	p := New(spec, 1, 42)
	reads, opens, runs := 0, 0, uint64(0)
	sawSteady := false
	for i := 0; i < 500; i++ {
		s := p.Next()
		switch s.Kind {
		case workload.StepRun:
			runs += s.N
			if s.N == spec.SteadyBurst {
				sawSteady = true
			}
		case workload.StepSyscall:
			switch s.Req.Num {
			case sys.SysRead:
				if !sawSteady {
					reads++
				}
			case sys.SysOpen:
				opens++
			}
		}
		if sawSteady && runs > spec.StartupInsts+5*spec.SteadyBurst {
			break
		}
	}
	if reads < spec.InputReads {
		t.Fatalf("start-up performed %d reads, want >= %d", reads, spec.InputReads)
	}
	if opens == 0 {
		t.Fatal("input file never opened")
	}
	if !sawSteady {
		t.Fatal("program never reached steady state")
	}
}

func TestSteadyStateRareSyscalls(t *testing.T) {
	spec := Suite()[0]
	p := New(spec, 1, 7)
	// Fast-forward past start-up.
	for i := 0; i < 1000; i++ {
		if s := p.Next(); s.Kind == workload.StepRun && s.N == spec.SteadyBurst {
			break
		}
	}
	calls, bursts := 0, 0
	for i := 0; i < 100; i++ {
		s := p.Next()
		if s.Kind == workload.StepSyscall {
			calls++
		} else {
			bursts++
		}
	}
	if calls == 0 {
		t.Fatal("no steady-state syscalls at all")
	}
	if calls*3 > bursts {
		t.Fatalf("steady state too syscall-heavy: %d calls vs %d bursts", calls, bursts)
	}
}

func TestProgramsDistinctAddressSpaces(t *testing.T) {
	progs := Programs(1)
	if len(progs) != 8 {
		t.Fatalf("%d programs", len(progs))
	}
	bases := map[uint64]bool{}
	for _, p := range progs {
		in, _ := p.Walker().Next()
		bases[in.PC>>36] = true
	}
	if len(bases) != 8 {
		t.Fatalf("programs share text bases: %d distinct", len(bases))
	}
}

func TestMixRoughlyMatchesTable2(t *testing.T) {
	p := New(Suite()[1], 1, 5)
	w := p.Walker()
	counts := map[isa.Class]int{}
	n := 100_000
	for i := 0; i < n; i++ {
		in, _ := w.Next()
		counts[in.Class]++
	}
	loadPct := 100 * float64(counts[isa.Load]) / float64(n)
	storePct := 100 * float64(counts[isa.Store]) / float64(n)
	if loadPct < 10 || loadPct > 32 {
		t.Fatalf("load%% = %.1f", loadPct)
	}
	if storePct < 4 || storePct > 20 {
		t.Fatalf("store%% = %.1f", storePct)
	}
}

func TestDeterministicPrograms(t *testing.T) {
	a, b := New(Suite()[4], 2, 11), New(Suite()[4], 2, 11)
	for i := 0; i < 2000; i++ {
		x, _ := a.Walker().Next()
		y, _ := b.Walker().Next()
		if x != y {
			t.Fatalf("programs diverged at %d", i)
		}
	}
}
