// Package report provides windowed measurement and text rendering for the
// reproduction's experiments. A Snapshot copies every counter of a running
// simulation; Delta(a, b) gives the counters for the window between two
// snapshots — which is how the paper separates program start-up from steady
// state (Figure 1, Table 2) and how benches measure warmed steady-state
// behavior rather than cold-start transients.
package report

import (
	"fmt"
	"strings"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/sys"
)

// StructStats is the per-hardware-structure counter set.
type StructStats struct {
	Accesses [2]uint64
	Misses   [2]uint64
	Causes   conflict.Matrix
	Shared   conflict.Sharing
	Invalid  uint64
}

func (s StructStats) sub(o StructStats) StructStats {
	var d StructStats
	for i := 0; i < 2; i++ {
		d.Accesses[i] = s.Accesses[i] - o.Accesses[i]
		d.Misses[i] = s.Misses[i] - o.Misses[i]
		for c := 0; c < conflict.NumCauses; c++ {
			d.Causes.Counts[i][c] = s.Causes.Counts[i][c] - o.Causes.Counts[i][c]
		}
		for j := 0; j < 2; j++ {
			d.Shared.Avoided[i][j] = s.Shared.Avoided[i][j] - o.Shared.Avoided[i][j]
		}
	}
	d.Invalid = s.Invalid - o.Invalid
	return d
}

// MissRate returns the miss percentage for one privilege class.
func (s StructStats) MissRate(priv bool) float64 {
	i := bidx(priv)
	if s.Accesses[i] == 0 {
		return 0
	}
	return 100 * float64(s.Misses[i]) / float64(s.Accesses[i])
}

// MissRateOverall returns the total miss percentage.
func (s StructStats) MissRateOverall() float64 {
	a := s.Accesses[0] + s.Accesses[1]
	if a == 0 {
		return 0
	}
	return 100 * float64(s.Misses[0]+s.Misses[1]) / float64(a)
}

// TotalMisses returns all misses.
func (s StructStats) TotalMisses() uint64 { return s.Misses[0] + s.Misses[1] }

// AvoidedPct returns Table 8's statistic: misses avoided thanks to a fill by
// fillerPriv code, as a percentage of the structure's total misses, for
// accessors of accPriv.
func (s StructStats) AvoidedPct(accPriv, fillerPriv bool) float64 {
	t := s.TotalMisses()
	if t == 0 {
		return 0
	}
	return 100 * float64(s.Shared.Avoided[bidx(accPriv)][bidx(fillerPriv)]) / float64(t)
}

// Snapshot is a full copy of a simulation's counters.
type Snapshot struct {
	Cycles  uint64
	Metrics pipeline.Metrics
	CycleAt stats.Cycles
	Mix     stats.Mix

	L1I, L1D, L2, ITLB, DTLB, BTB StructStats

	BpLookups     [2]uint64
	BpMispredicts [2]uint64

	OutstandingArea [3]uint64 // I, D, L2 (Little's-law numerators)

	// Memory-system counters surfaced by the counterflow audit (previously
	// counted but unreported).
	Writebacks      [3]uint64 // I, D, L2 dirty evictions
	BusTransactions uint64
	SBPushed        uint64
	SBDrained       uint64
	SBFullStalls    uint64

	// Kernel-side counters.
	ContextSwitches uint64
	Preemptions     uint64
	SyscallCount    [sys.NumSyscalls]uint64
	VMFaults        [3]uint64
	MemAllocs       uint64
	MemRefills      uint64
	MemReclaims     uint64
	MemUnmaps       uint64
	ASNRecycles     uint64
	ClockInterrupts uint64
	NetInterrupts   uint64
	IdleScheduled   uint64
	SvcInstByRes    [5]uint64
	LockContentions uint64
	SpinInsts       uint64
	DiskReads       uint64
	NICDelivered    uint64
	NICDropped      uint64

	// Network-side counters (zero for SPECInt).
	NetRequests  uint64
	NetCompleted uint64
	NetBytes     uint64
	NetPerClass  [4]uint64

	// Resilience counters (all zero with fault injection off).
	NetRetransmits  uint64
	NetAborted      uint64
	NetResets       uint64
	FramesDropped   uint64
	FramesCorrupted uint64
	FramesDelayed   uint64
	WorkerCrashes   uint64
	WorkerRespawns  uint64
	// FaultCrashInjections is the injector-side count of scheduled worker
	// deaths (WorkerCrashes is the kernel-side count of deaths taken).
	FaultCrashInjections uint64

	// Overload counters (all zero unless the accept backlog binds, the
	// idle reaper runs, or the overload fault domain is on).
	ConnsRefused    uint64
	ReapedIdle      uint64
	ReapedSlowloris uint64
	// Latency is the end-to-end request latency histogram in network
	// ticks (populated only under the overload fault domain).
	Latency stats.Hist

	// Resource-exhaustion counters (all zero unless a finite pool or the
	// frame limit binds) and demand gauges. Gauges are instantaneous — in a
	// Delta they report window b's value, not a difference.
	MemReclaimScans  uint64
	MemSecondChances uint64
	MemLimitOverruns uint64
	SockPoolRejects  uint64
	MbufDrops        uint64
	FDRejects        uint64
	ForkRejects      uint64
	Squeezes         uint64
	MemFrameLimit    uint64 // gauge
	MemRSSHighwater  uint64 // gauge
	FramesHighwater  uint64 // gauge
	SockHighwater    int    // gauge
	MbufHighwater    int    // gauge

	// Sampling holds the sampled-run estimators (Enabled=false on full-detail
	// runs; everything else zero then).
	Sampling pipeline.SampleStats
}

// Take captures all counters of sim.
func Take(sim *core.Simulator) Snapshot {
	e := sim.Engine
	k := sim.Kernel
	grab := func(acc, miss [2]uint64, causes conflict.Matrix, shared conflict.Sharing, inval uint64) StructStats {
		return StructStats{Accesses: acc, Misses: miss, Causes: causes, Shared: shared, Invalid: inval}
	}
	s := Snapshot{
		Cycles:  e.Metrics.Cycles,
		Metrics: e.Metrics,
		CycleAt: e.Cycles,
		Mix:     e.Mix,
		L1I:     grab(e.Hier.L1I.Accesses, e.Hier.L1I.Misses, e.Hier.L1I.Causes, e.Hier.L1I.Shared, e.Hier.L1I.Invalidations),
		L1D:     grab(e.Hier.L1D.Accesses, e.Hier.L1D.Misses, e.Hier.L1D.Causes, e.Hier.L1D.Shared, e.Hier.L1D.Invalidations),
		L2:      grab(e.Hier.L2.Accesses, e.Hier.L2.Misses, e.Hier.L2.Causes, e.Hier.L2.Shared, e.Hier.L2.Invalidations),
		ITLB:    grab(e.ITLB.Accesses, e.ITLB.Misses, e.ITLB.Causes, e.ITLB.Shared, e.ITLB.Invalidations),
		DTLB:    grab(e.DTLB.Accesses, e.DTLB.Misses, e.DTLB.Causes, e.DTLB.Shared, e.DTLB.Invalidations),
		BTB: grab(e.Pred.BTBLookups, e.Pred.BTBMisses, e.Pred.BTBCauses,
			conflict.Sharing{}, 0),
		BpLookups:     e.Pred.Lookups,
		BpMispredicts: e.Pred.Mispredicts,

		ContextSwitches: k.ContextSwitches,
		Preemptions:     k.Preemptions,
		SyscallCount:    k.SyscallCount,
		VMFaults:        k.VMFaults,
		MemAllocs:       k.Mem.Allocs,
		MemRefills:      k.Mem.Refills,
		MemReclaims:     k.Mem.Reclaims,
		MemUnmaps:       k.Mem.Unmappings,
		ASNRecycles:     k.ASNRecycles,
		ClockInterrupts: k.ClockInterrupts,
		NetInterrupts:   k.NetInterrupts,
	}
	s.OutstandingArea = [3]uint64{
		uint64(e.Hier.AvgOutstanding("i", 1)),
		uint64(e.Hier.AvgOutstanding("d", 1)),
		uint64(e.Hier.AvgOutstanding("l2", 1)),
	}
	s.Writebacks = [3]uint64{e.Hier.L1I.Writebacks, e.Hier.L1D.Writebacks, e.Hier.L2.Writebacks}
	s.BusTransactions = e.Hier.BusTransactions
	s.SBPushed = e.SB.Pushed
	s.SBDrained = e.SB.Drained
	s.SBFullStalls = e.SB.FullStalls
	s.IdleScheduled = k.IdleScheduled
	s.SvcInstByRes = k.SvcInstByRes
	s.LockContentions = k.LockContentions
	s.SpinInsts = k.SpinInsts
	s.DiskReads = k.DiskReads
	s.NICDelivered, s.NICDropped = k.NICStats()
	if sim.Net != nil {
		s.NetRequests = sim.Net.Requests
		s.NetCompleted = sim.Net.Completed
		s.NetBytes = sim.Net.BytesServed
		s.NetRetransmits = sim.Net.Retransmits
		s.NetAborted = sim.Net.Aborted
		s.NetResets = sim.Net.Resets
		s.NetPerClass = sim.Net.PerClass
		s.Latency = sim.Net.Latency
	}
	s.WorkerCrashes = k.WorkerCrashes
	s.WorkerRespawns = k.WorkerRespawns
	s.ConnsRefused = k.ConnsRefused
	s.ReapedIdle = k.ReapedIdle
	s.ReapedSlowloris = k.ReapedSlowloris
	s.MemReclaimScans = k.Mem.ReclaimScans
	s.MemSecondChances = k.Mem.SecondChances
	s.MemLimitOverruns = k.Mem.LimitOverruns
	s.SockPoolRejects = k.SockPoolRejects
	s.MbufDrops = k.MbufDrops
	s.FDRejects = k.FDRejects
	s.ForkRejects = k.ForkRejects
	s.MemFrameLimit = k.Mem.FrameLimit()
	s.MemRSSHighwater = k.Mem.RSSHighwater
	s.FramesHighwater = k.Mem.FramesHighwater
	s.SockHighwater = k.SockHighwater
	s.MbufHighwater = k.MbufHighwater
	s.Sampling = e.SampleStats()
	if sim.Faults != nil {
		s.FramesDropped = sim.Faults.DroppedToServer + sim.Faults.DroppedToClient
		s.FramesCorrupted = sim.Faults.Corrupted
		s.FramesDelayed = sim.Faults.Delayed
		s.Squeezes = sim.Faults.Squeezes
		s.FaultCrashInjections = sim.Faults.Crashes
	}
	return s
}

// Delta returns the window b - a.
func Delta(a, b Snapshot) Snapshot {
	d := Snapshot{
		Cycles:  b.Cycles - a.Cycles,
		CycleAt: b.CycleAt.Sub(&a.CycleAt),
		L1I:     b.L1I.sub(a.L1I),
		L1D:     b.L1D.sub(a.L1D),
		L2:      b.L2.sub(a.L2),
		ITLB:    b.ITLB.sub(a.ITLB),
		DTLB:    b.DTLB.sub(a.DTLB),
		BTB:     b.BTB.sub(a.BTB),
	}
	d.Metrics = pipeline.Metrics{
		Cycles:        b.Metrics.Cycles - a.Metrics.Cycles,
		Retired:       b.Metrics.Retired - a.Metrics.Retired,
		Fetched:       b.Metrics.Fetched - a.Metrics.Fetched,
		Squashed:      b.Metrics.Squashed - a.Metrics.Squashed,
		ZeroFetch:     b.Metrics.ZeroFetch - a.Metrics.ZeroFetch,
		ZeroIssue:     b.Metrics.ZeroIssue - a.Metrics.ZeroIssue,
		MaxIssue:      b.Metrics.MaxIssue - a.Metrics.MaxIssue,
		FetchableSum:  b.Metrics.FetchableSum - a.Metrics.FetchableSum,
		IntIssued:     b.Metrics.IntIssued - a.Metrics.IntIssued,
		FPIssued:      b.Metrics.FPIssued - a.Metrics.FPIssued,
		Interrupts:    b.Metrics.Interrupts - a.Metrics.Interrupts,
		DTLBTraps:     b.Metrics.DTLBTraps - a.Metrics.DTLBTraps,
		ITLBTraps:     b.Metrics.ITLBTraps - a.Metrics.ITLBTraps,
		SyscallsSeen:  b.Metrics.SyscallsSeen - a.Metrics.SyscallsSeen,
		RetireStallSB: b.Metrics.RetireStallSB - a.Metrics.RetireStallSB,
	}
	for p := 0; p < 2; p++ {
		for c := 0; c < isa.NumClasses; c++ {
			d.Mix.Count[p][c] = b.Mix.Count[p][c] - a.Mix.Count[p][c]
		}
		d.Mix.PhysLoad[p] = b.Mix.PhysLoad[p] - a.Mix.PhysLoad[p]
		d.Mix.PhysStore[p] = b.Mix.PhysStore[p] - a.Mix.PhysStore[p]
		d.Mix.CondTaken[p] = b.Mix.CondTaken[p] - a.Mix.CondTaken[p]
		d.BpLookups[p] = b.BpLookups[p] - a.BpLookups[p]
		d.BpMispredicts[p] = b.BpMispredicts[p] - a.BpMispredicts[p]
	}
	for i := range d.SyscallCount {
		d.SyscallCount[i] = b.SyscallCount[i] - a.SyscallCount[i]
	}
	for i := range d.VMFaults {
		d.VMFaults[i] = b.VMFaults[i] - a.VMFaults[i]
	}
	for i := range d.OutstandingArea {
		d.OutstandingArea[i] = b.OutstandingArea[i] - a.OutstandingArea[i]
	}
	for i := range d.Writebacks {
		d.Writebacks[i] = b.Writebacks[i] - a.Writebacks[i]
	}
	for i := range d.SvcInstByRes {
		d.SvcInstByRes[i] = b.SvcInstByRes[i] - a.SvcInstByRes[i]
	}
	for i := range d.NetPerClass {
		d.NetPerClass[i] = b.NetPerClass[i] - a.NetPerClass[i]
	}
	d.BusTransactions = b.BusTransactions - a.BusTransactions
	d.SBPushed = b.SBPushed - a.SBPushed
	d.SBDrained = b.SBDrained - a.SBDrained
	d.SBFullStalls = b.SBFullStalls - a.SBFullStalls
	d.IdleScheduled = b.IdleScheduled - a.IdleScheduled
	d.LockContentions = b.LockContentions - a.LockContentions
	d.SpinInsts = b.SpinInsts - a.SpinInsts
	d.DiskReads = b.DiskReads - a.DiskReads
	d.NICDelivered = b.NICDelivered - a.NICDelivered
	d.NICDropped = b.NICDropped - a.NICDropped
	d.FaultCrashInjections = b.FaultCrashInjections - a.FaultCrashInjections
	d.ContextSwitches = b.ContextSwitches - a.ContextSwitches
	d.Preemptions = b.Preemptions - a.Preemptions
	d.MemAllocs = b.MemAllocs - a.MemAllocs
	d.MemRefills = b.MemRefills - a.MemRefills
	d.MemReclaims = b.MemReclaims - a.MemReclaims
	d.MemUnmaps = b.MemUnmaps - a.MemUnmaps
	d.ASNRecycles = b.ASNRecycles - a.ASNRecycles
	d.ClockInterrupts = b.ClockInterrupts - a.ClockInterrupts
	d.NetInterrupts = b.NetInterrupts - a.NetInterrupts
	d.NetRequests = b.NetRequests - a.NetRequests
	d.NetCompleted = b.NetCompleted - a.NetCompleted
	d.NetBytes = b.NetBytes - a.NetBytes
	d.NetRetransmits = b.NetRetransmits - a.NetRetransmits
	d.NetAborted = b.NetAborted - a.NetAborted
	d.NetResets = b.NetResets - a.NetResets
	d.FramesDropped = b.FramesDropped - a.FramesDropped
	d.FramesCorrupted = b.FramesCorrupted - a.FramesCorrupted
	d.FramesDelayed = b.FramesDelayed - a.FramesDelayed
	d.WorkerCrashes = b.WorkerCrashes - a.WorkerCrashes
	d.WorkerRespawns = b.WorkerRespawns - a.WorkerRespawns
	d.ConnsRefused = b.ConnsRefused - a.ConnsRefused
	d.ReapedIdle = b.ReapedIdle - a.ReapedIdle
	d.ReapedSlowloris = b.ReapedSlowloris - a.ReapedSlowloris
	d.MemReclaimScans = b.MemReclaimScans - a.MemReclaimScans
	d.MemSecondChances = b.MemSecondChances - a.MemSecondChances
	d.MemLimitOverruns = b.MemLimitOverruns - a.MemLimitOverruns
	d.SockPoolRejects = b.SockPoolRejects - a.SockPoolRejects
	d.MbufDrops = b.MbufDrops - a.MbufDrops
	d.FDRejects = b.FDRejects - a.FDRejects
	d.ForkRejects = b.ForkRejects - a.ForkRejects
	d.Squeezes = b.Squeezes - a.Squeezes
	// Gauges: a window inherits the end snapshot's instantaneous values.
	d.MemFrameLimit = b.MemFrameLimit
	d.MemRSSHighwater = b.MemRSSHighwater
	d.FramesHighwater = b.FramesHighwater
	d.SockHighwater = b.SockHighwater
	d.MbufHighwater = b.MbufHighwater
	d.Latency = b.Latency.Sub(a.Latency)
	d.Sampling = b.Sampling.Sub(a.Sampling)
	return d
}

// IPC returns instructions per cycle in the window.
func (s Snapshot) IPC() float64 { return s.Metrics.IPC() }

// BpMispredictRate returns the branch misprediction percentage (overall, or
// for one privilege class via BpMispredictRateFor).
func (s Snapshot) BpMispredictRate() float64 {
	l := s.BpLookups[0] + s.BpLookups[1]
	if l == 0 {
		return 0
	}
	return 100 * float64(s.BpMispredicts[0]+s.BpMispredicts[1]) / float64(l)
}

// BpMispredictRateFor returns the misprediction rate for one privilege class.
func (s Snapshot) BpMispredictRateFor(priv bool) float64 {
	i := bidx(priv)
	if s.BpLookups[i] == 0 {
		return 0
	}
	return 100 * float64(s.BpMispredicts[i]) / float64(s.BpLookups[i])
}

// AvgOutstanding returns the average in-flight misses for level 0=I,1=D,2=L2.
func (s Snapshot) AvgOutstanding(level int) float64 {
	if s.Metrics.Cycles == 0 {
		return 0
	}
	return float64(s.OutstandingArea[level]) / float64(s.Metrics.Cycles)
}

func bidx(priv bool) int {
	if priv {
		return 1
	}
	return 0
}

// ------------------------------------------------------------- text tables

// Table is a simple fixed-width text table builder.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(cols ...string) *Table { return &Table{header: cols} }

// Row appends a row; values are formatted with %v (floats with %.1f / %.2f
// via F1/F2 helpers).
func (t *Table) Row(vals ...string) { t.rows = append(t.rows, vals) }

// F1 formats a float with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// I formats an integer.
func I(v uint64) string { return fmt.Sprintf("%d", v) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, v := range r {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
