package report

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/sys"
)

// Summary renders the headline metrics of a measurement window.
func Summary(title string, w Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "cycles %d  retired %d  IPC %.2f\n", w.Metrics.Cycles, w.Metrics.Retired, w.IPC())
	fmt.Fprintf(&b, "mode cycles: user %.1f%%  kernel %.1f%%  pal %.1f%%  idle %.1f%%\n",
		w.CycleAt.PctMode(isa.User), w.CycleAt.PctMode(isa.Kernel),
		w.CycleAt.PctMode(isa.PAL), w.CycleAt.PctCat(sys.CatIdle))
	fmt.Fprintf(&b, "fetch: avg fetchable %.1f  squashed %.1f%%  0-fetch %.1f%%  0-issue %.1f%%  max-issue %.1f%%\n",
		w.Metrics.AvgFetchable(), w.Metrics.SquashPct(),
		w.Metrics.PctCycles(w.Metrics.ZeroFetch), w.Metrics.PctCycles(w.Metrics.ZeroIssue),
		w.Metrics.PctCycles(w.Metrics.MaxIssue))
	fmt.Fprintf(&b, "branches: mispredict %.1f%% (user %.1f / kernel %.1f)  BTB miss %.1f%%\n",
		w.BpMispredictRate(), w.BpMispredictRateFor(false), w.BpMispredictRateFor(true),
		w.BTB.MissRateOverall())
	fmt.Fprintf(&b, "caches: L1I %.2f%%  L1D %.2f%%  L2 %.2f%%   TLBs: I %.2f%%  D %.2f%%\n",
		w.L1I.MissRateOverall(), w.L1D.MissRateOverall(), w.L2.MissRateOverall(),
		w.ITLB.MissRateOverall(), w.DTLB.MissRateOverall())
	fmt.Fprintf(&b, "outstanding misses: I$ %.1f  D$ %.1f  L2$ %.1f\n",
		w.AvgOutstanding(0), w.AvgOutstanding(1), w.AvgOutstanding(2))
	fmt.Fprintf(&b, "kernel categories:")
	for c := 0; c < sys.NumCategories; c++ {
		fmt.Fprintf(&b, " %s %.1f%%", sys.Category(c), w.CycleAt.PctCat(sys.Category(c)))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "events: syscalls %d  dtlb traps %d  itlb traps %d  interrupts %d  ctx switches %d\n",
		w.Metrics.SyscallsSeen, w.Metrics.DTLBTraps, w.Metrics.ITLBTraps,
		w.Metrics.Interrupts, w.ContextSwitches)
	if w.NetRequests > 0 {
		fmt.Fprintf(&b, "web: requests %d  completed %d  bytes served %d\n",
			w.NetRequests, w.NetCompleted, w.NetBytes)
	}
	if w.NetRetransmits+w.NetAborted+w.NetResets+w.FramesDropped+w.FramesCorrupted+
		w.FramesDelayed+w.WorkerCrashes+w.WorkerRespawns > 0 {
		fmt.Fprintf(&b, "faults: dropped %d  corrupted %d  delayed %d  retransmits %d  aborted %d  resets %d  crashes %d  respawns %d\n",
			w.FramesDropped, w.FramesCorrupted, w.FramesDelayed,
			w.NetRetransmits, w.NetAborted, w.NetResets,
			w.WorkerCrashes, w.WorkerRespawns)
	}
	if w.ConnsRefused+w.ReapedIdle+w.ReapedSlowloris+w.Latency.Count > 0 {
		fmt.Fprintf(&b, "overload: refused %d  reaped idle %d  reaped slowloris %d  latency ticks p50 %d  p99 %d  p999 %d\n",
			w.ConnsRefused, w.ReapedIdle, w.ReapedSlowloris,
			w.Latency.Quantile(0.50), w.Latency.Quantile(0.99), w.Latency.Quantile(0.999))
	}
	if w.MemAllocs+w.MemRefills > 0 {
		fmt.Fprintf(&b, "memory: allocs %d  refills %d  reclaims %d  scans %d  second chances %d  rss peak %d  frames peak %d  limit %d\n",
			w.MemAllocs, w.MemRefills, w.MemReclaims, w.MemReclaimScans,
			w.MemSecondChances, w.MemRSSHighwater, w.FramesHighwater, w.MemFrameLimit)
	}
	if w.SockPoolRejects+w.MbufDrops+w.FDRejects+w.ForkRejects+w.Squeezes > 0 {
		fmt.Fprintf(&b, "resources: sock rejects %d  mbuf drops %d  fd rejects %d  fork rejects %d  squeezes %d  sock peak %d  mbuf peak %d\n",
			w.SockPoolRejects, w.MbufDrops, w.FDRejects, w.ForkRejects,
			w.Squeezes, w.SockHighwater, w.MbufHighwater)
	}
	if sp := w.Sampling; sp.Enabled {
		detailPct := 0.0
		if t := sp.FFCycles + sp.DetailCycles; t > 0 {
			detailPct = 100 * float64(sp.DetailCycles) / float64(t)
		}
		fmt.Fprintf(&b, "sampled: windows %d  detail %.1f%% of cycles (ff %d / detail %d)\n",
			sp.Windows, detailPct, sp.FFCycles, sp.DetailCycles)
		fmt.Fprintf(&b, "sampled estimates: IPC %.2f +/- %.2f  kernel %.1f%% +/- %.1f  user %.1f%% +/- %.1f  idle %.1f%% +/- %.1f\n",
			sp.IPC.Mean(), sp.IPC.StdErr(),
			sp.KernelPct.Mean(), sp.KernelPct.StdErr(),
			sp.UserPct.Mean(), sp.UserPct.StdErr(),
			sp.IdlePct.Mean(), sp.IdlePct.StdErr())
		est := sp.IPC.Mean() * float64(w.Metrics.Cycles)
		fmt.Fprintf(&b, "sampled extrapolation: retired ~= %.0f +/- %.0f over %d cycles\n",
			est, sp.IPC.StdErr()*float64(w.Metrics.Cycles), w.Metrics.Cycles)
	}
	return b.String()
}

// PerProgram renders a per-software-thread breakdown of committed
// instructions and attributed context-cycles — which benchmark of the mix
// got what share of the machine.
func PerProgram(sim *core.Simulator) string {
	t := NewTable("thread", "tid", "retired", "ctx-cycles", "cycle share%")
	var total uint64
	type row struct {
		name string
		tid  uint32
		st   pipelineThreadStat
	}
	var rows []row
	for _, th := range sim.Kernel.Threads() {
		st := sim.Engine.ThreadStats(th.TID())
		if st.Retired == 0 && st.CtxCycles == 0 {
			continue
		}
		rows = append(rows, row{name: th.ThreadName(), tid: th.TID(),
			st: pipelineThreadStat{Retired: st.Retired, CtxCycles: st.CtxCycles}})
		total += st.CtxCycles
	}
	for _, r := range rows {
		share := 0.0
		if total > 0 {
			share = 100 * float64(r.st.CtxCycles) / float64(total)
		}
		t.Row(r.name, fmt.Sprintf("%d", r.tid), I(r.st.Retired), I(r.st.CtxCycles), F1(share))
	}
	return t.String()
}

// pipelineThreadStat mirrors pipeline.ThreadStat without re-exporting it.
type pipelineThreadStat struct {
	Retired   uint64
	CtxCycles uint64
}
