package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
)

// golden pins the exact measurement window the seed tree produced before the
// fault-injection layer landed. With faults disabled (the default), every
// fault path must consume no randomness and change no behavior, so these
// values must stay bit-identical forever ("zero perturbation").
type golden struct {
	retired, fetched, syscalls uint64
	netDone, netReq            uint64
	ctxSwitches, dtlbTraps     uint64
}

func captureWindow(t *testing.T, o core.Options) golden {
	t.Helper()
	o.CyclesPer10ms = 80_000
	sim := core.NewApache(o)
	sim.Run(250_000)
	a := Take(sim)
	sim.Run(350_000)
	w := Delta(a, Take(sim))
	return golden{
		retired:     w.Metrics.Retired,
		fetched:     w.Metrics.Fetched,
		syscalls:    w.Metrics.SyscallsSeen,
		netDone:     w.NetCompleted,
		netReq:      w.NetRequests,
		ctxSwitches: w.ContextSwitches,
		dtlbTraps:   w.Metrics.DTLBTraps,
	}
}

func TestZeroPerturbationGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation")
	}
	want := map[uint64]golden{
		1: {retired: 881390, fetched: 1676220, syscalls: 94,
			netDone: 10, netReq: 7, ctxSwitches: 12, dtlbTraps: 472},
		7: {retired: 778971, fetched: 1551382, syscalls: 81,
			netDone: 5, netReq: 5, ctxSwitches: 11, dtlbTraps: 428},
	}
	for seed, w := range want {
		if got := captureWindow(t, core.Options{Seed: seed}); got != w {
			t.Errorf("seed %d drifted from pre-fault-layer golden values:\n got %+v\nwant %+v",
				seed, got, w)
		}
	}
	// Superscalar path too.
	got := captureWindow(t, core.Options{Seed: 3, Processor: core.Superscalar})
	ss := golden{retired: 141612, fetched: 317904, syscalls: 27, netDone: 0,
		netReq: got.netReq, ctxSwitches: got.ctxSwitches, dtlbTraps: got.dtlbTraps}
	if got != ss {
		t.Errorf("superscalar seed 3 drifted: got %+v want retired=141612 fetched=317904 syscalls=27 netdone=0", got)
	}
}

// TestFaultWindowDeterministic: same seed + same fault config ⇒ the full
// snapshot of the measured window is identical across two runs, resilience
// counters included.
func TestFaultWindowDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation")
	}
	run := func() Snapshot {
		sim := core.NewApache(core.Options{
			Seed:              6,
			CyclesPer10ms:     60_000,
			KeepAliveRequests: 3,
			Faults:            faults.Config{LossRate: 0.08, CrashRate: 0.01},
		})
		sim.Run(400_000)
		a := Take(sim)
		sim.Run(800_000)
		return Delta(a, Take(sim))
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical faulted runs produced different windows:\n a=%+v\n b=%+v", a, b)
	}
	if a.NetRetransmits == 0 {
		t.Fatal("keep-alive + 8% loss produced no retransmits")
	}
	if a.WorkerCrashes == 0 || a.WorkerRespawns == 0 {
		t.Fatalf("no crash/respawn activity in window: %+v", a)
	}
}

func TestSummaryRendersFaultLine(t *testing.T) {
	var w Snapshot
	w.Metrics.Cycles = 1000
	if strings.Contains(Summary("t", w), "faults:") {
		t.Fatal("fault line rendered with all counters zero")
	}
	w.NetRetransmits = 3
	w.WorkerCrashes = 1
	out := Summary("t", w)
	if !strings.Contains(out, "faults:") ||
		!strings.Contains(out, "retransmits 3") ||
		!strings.Contains(out, "crashes 1") {
		t.Fatalf("fault line missing or wrong:\n%s", out)
	}
}

func TestSummaryRendersOverloadLine(t *testing.T) {
	var w Snapshot
	w.Metrics.Cycles = 1000
	if strings.Contains(Summary("t", w), "overload:") {
		t.Fatal("overload line rendered with all counters zero")
	}
	w.ConnsRefused = 7
	w.ReapedIdle = 2
	w.ReapedSlowloris = 5
	for i := 0; i < 100; i++ {
		w.Latency.Observe(uint64(i % 12))
	}
	out := Summary("t", w)
	if !strings.Contains(out, "overload:") ||
		!strings.Contains(out, "refused 7") ||
		!strings.Contains(out, "reaped idle 2") ||
		!strings.Contains(out, "reaped slowloris 5") ||
		!strings.Contains(out, "p99") {
		t.Fatalf("overload line missing or wrong:\n%s", out)
	}
}
