package report

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func smallSim() *core.Simulator {
	return core.NewSPECInt(core.Options{Seed: 1, CyclesPer10ms: 100_000})
}

func TestSnapshotDeltaConsistency(t *testing.T) {
	sim := smallSim()
	sim.Run(200_000)
	a := Take(sim)
	sim.Run(200_000)
	b := Take(sim)
	d := Delta(a, b)
	if d.Metrics.Cycles != 200_000 {
		t.Fatalf("window cycles = %d", d.Metrics.Cycles)
	}
	if d.Metrics.Retired == 0 {
		t.Fatal("no retirement in window")
	}
	if d.Metrics.Retired != b.Metrics.Retired-a.Metrics.Retired {
		t.Fatal("retired delta wrong")
	}
	// Context-cycles in the window = cycles × contexts.
	if d.CycleAt.Total != 200_000*8 {
		t.Fatalf("context-cycles = %d", d.CycleAt.Total)
	}
	// Rates computable and sane.
	if d.IPC() <= 0 || d.IPC() > 8 {
		t.Fatalf("IPC = %.2f", d.IPC())
	}
	if r := d.L1D.MissRateOverall(); r < 0 || r > 100 {
		t.Fatalf("L1D miss rate = %.2f", r)
	}
}

func TestDeltaOfSameSnapshotIsZero(t *testing.T) {
	sim := smallSim()
	sim.Run(100_000)
	a := Take(sim)
	d := Delta(a, a)
	if d.Metrics.Cycles != 0 || d.Metrics.Retired != 0 || d.CycleAt.Total != 0 ||
		d.L1I.TotalMisses() != 0 || d.BpLookups[0] != 0 {
		t.Fatal("self-delta not zero")
	}
}

func TestSummaryRenders(t *testing.T) {
	sim := smallSim()
	sim.Run(150_000)
	a := Take(sim)
	sim.Run(150_000)
	w := Delta(a, Take(sim))
	out := Summary("test window", w)
	for _, want := range []string{"IPC", "mode cycles", "caches:", "kernel categories", "events:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("a", "longer-header")
	tb.Row("1", "2")
	tb.Row("333333", "4")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
	// All lines padded to same prefix width.
	if !strings.Contains(lines[0], "longer-header") || !strings.Contains(lines[1], "---") {
		t.Fatalf("bad table:\n%s", out)
	}
}

func TestStructStatsHelpers(t *testing.T) {
	var s StructStats
	if s.MissRate(false) != 0 || s.MissRateOverall() != 0 || s.AvoidedPct(false, false) != 0 {
		t.Fatal("zero-value stats should report zeros")
	}
	s.Accesses[0] = 10
	s.Misses[0] = 5
	if s.MissRate(false) != 50 || s.MissRateOverall() != 50 {
		t.Fatal("miss rates wrong")
	}
	s.Shared.Avoided[1][1] = 5
	if s.AvoidedPct(true, true) != 100 {
		t.Fatalf("avoided pct = %.1f", s.AvoidedPct(true, true))
	}
}

func TestFormatters(t *testing.T) {
	if F1(1.25) != "1.2" && F1(1.25) != "1.3" {
		t.Fatal("F1 wrong")
	}
	if F2(1.255) == "" || I(42) != "42" {
		t.Fatal("formatters wrong")
	}
}

func TestPerProgram(t *testing.T) {
	sim := smallSim()
	sim.Run(400_000)
	out := PerProgram(sim)
	for _, want := range []string{"gcc", "compress", "retired"} {
		if !strings.Contains(out, want) {
			t.Fatalf("per-program table missing %q:\n%s", want, out)
		}
	}
}
