package report

import (
	"repro/internal/conflict"
	"repro/internal/isa"
	"repro/internal/pipeline"
)

func (s StructStats) merge(o StructStats) StructStats {
	var m StructStats
	for i := 0; i < 2; i++ {
		m.Accesses[i] = s.Accesses[i] + o.Accesses[i]
		m.Misses[i] = s.Misses[i] + o.Misses[i]
		for c := 0; c < conflict.NumCauses; c++ {
			m.Causes.Counts[i][c] = s.Causes.Counts[i][c] + o.Causes.Counts[i][c]
		}
		for j := 0; j < 2; j++ {
			m.Shared.Avoided[i][j] = s.Shared.Avoided[i][j] + o.Shared.Avoided[i][j]
		}
	}
	m.Invalid = s.Invalid + o.Invalid
	return m
}

// Merge combines two window deltas a + b, the additive inverse of Delta:
// Merge(Delta(x, y), Delta(y, z)) accumulates the same counters Delta(x, z)
// would. Counters add; gauges — which a Delta carries as the end snapshot's
// instantaneous values — take the later window's value, so b must be the
// later window. Folding per-window deltas left-to-right in window order makes
// the result independent of which worker or process produced each window.
func Merge(a, b Snapshot) Snapshot {
	m := Snapshot{
		Cycles:  a.Cycles + b.Cycles,
		CycleAt: a.CycleAt.Merge(&b.CycleAt),
		L1I:     a.L1I.merge(b.L1I),
		L1D:     a.L1D.merge(b.L1D),
		L2:      a.L2.merge(b.L2),
		ITLB:    a.ITLB.merge(b.ITLB),
		DTLB:    a.DTLB.merge(b.DTLB),
		BTB:     a.BTB.merge(b.BTB),
	}
	m.Metrics = pipeline.Metrics{
		Cycles:        a.Metrics.Cycles + b.Metrics.Cycles,
		Retired:       a.Metrics.Retired + b.Metrics.Retired,
		Fetched:       a.Metrics.Fetched + b.Metrics.Fetched,
		Squashed:      a.Metrics.Squashed + b.Metrics.Squashed,
		ZeroFetch:     a.Metrics.ZeroFetch + b.Metrics.ZeroFetch,
		ZeroIssue:     a.Metrics.ZeroIssue + b.Metrics.ZeroIssue,
		MaxIssue:      a.Metrics.MaxIssue + b.Metrics.MaxIssue,
		FetchableSum:  a.Metrics.FetchableSum + b.Metrics.FetchableSum,
		IntIssued:     a.Metrics.IntIssued + b.Metrics.IntIssued,
		FPIssued:      a.Metrics.FPIssued + b.Metrics.FPIssued,
		Interrupts:    a.Metrics.Interrupts + b.Metrics.Interrupts,
		DTLBTraps:     a.Metrics.DTLBTraps + b.Metrics.DTLBTraps,
		ITLBTraps:     a.Metrics.ITLBTraps + b.Metrics.ITLBTraps,
		SyscallsSeen:  a.Metrics.SyscallsSeen + b.Metrics.SyscallsSeen,
		RetireStallSB: a.Metrics.RetireStallSB + b.Metrics.RetireStallSB,
	}
	for p := 0; p < 2; p++ {
		for c := 0; c < isa.NumClasses; c++ {
			m.Mix.Count[p][c] = a.Mix.Count[p][c] + b.Mix.Count[p][c]
		}
		m.Mix.PhysLoad[p] = a.Mix.PhysLoad[p] + b.Mix.PhysLoad[p]
		m.Mix.PhysStore[p] = a.Mix.PhysStore[p] + b.Mix.PhysStore[p]
		m.Mix.CondTaken[p] = a.Mix.CondTaken[p] + b.Mix.CondTaken[p]
		m.BpLookups[p] = a.BpLookups[p] + b.BpLookups[p]
		m.BpMispredicts[p] = a.BpMispredicts[p] + b.BpMispredicts[p]
	}
	for i := range m.SyscallCount {
		m.SyscallCount[i] = a.SyscallCount[i] + b.SyscallCount[i]
	}
	for i := range m.VMFaults {
		m.VMFaults[i] = a.VMFaults[i] + b.VMFaults[i]
	}
	for i := range m.OutstandingArea {
		m.OutstandingArea[i] = a.OutstandingArea[i] + b.OutstandingArea[i]
	}
	for i := range m.Writebacks {
		m.Writebacks[i] = a.Writebacks[i] + b.Writebacks[i]
	}
	for i := range m.SvcInstByRes {
		m.SvcInstByRes[i] = a.SvcInstByRes[i] + b.SvcInstByRes[i]
	}
	for i := range m.NetPerClass {
		m.NetPerClass[i] = a.NetPerClass[i] + b.NetPerClass[i]
	}
	m.BusTransactions = a.BusTransactions + b.BusTransactions
	m.SBPushed = a.SBPushed + b.SBPushed
	m.SBDrained = a.SBDrained + b.SBDrained
	m.SBFullStalls = a.SBFullStalls + b.SBFullStalls
	m.IdleScheduled = a.IdleScheduled + b.IdleScheduled
	m.LockContentions = a.LockContentions + b.LockContentions
	m.SpinInsts = a.SpinInsts + b.SpinInsts
	m.DiskReads = a.DiskReads + b.DiskReads
	m.NICDelivered = a.NICDelivered + b.NICDelivered
	m.NICDropped = a.NICDropped + b.NICDropped
	m.FaultCrashInjections = a.FaultCrashInjections + b.FaultCrashInjections
	m.ContextSwitches = a.ContextSwitches + b.ContextSwitches
	m.Preemptions = a.Preemptions + b.Preemptions
	m.MemAllocs = a.MemAllocs + b.MemAllocs
	m.MemRefills = a.MemRefills + b.MemRefills
	m.MemReclaims = a.MemReclaims + b.MemReclaims
	m.MemUnmaps = a.MemUnmaps + b.MemUnmaps
	m.ASNRecycles = a.ASNRecycles + b.ASNRecycles
	m.ClockInterrupts = a.ClockInterrupts + b.ClockInterrupts
	m.NetInterrupts = a.NetInterrupts + b.NetInterrupts
	m.NetRequests = a.NetRequests + b.NetRequests
	m.NetCompleted = a.NetCompleted + b.NetCompleted
	m.NetBytes = a.NetBytes + b.NetBytes
	m.NetRetransmits = a.NetRetransmits + b.NetRetransmits
	m.NetAborted = a.NetAborted + b.NetAborted
	m.NetResets = a.NetResets + b.NetResets
	m.FramesDropped = a.FramesDropped + b.FramesDropped
	m.FramesCorrupted = a.FramesCorrupted + b.FramesCorrupted
	m.FramesDelayed = a.FramesDelayed + b.FramesDelayed
	m.WorkerCrashes = a.WorkerCrashes + b.WorkerCrashes
	m.WorkerRespawns = a.WorkerRespawns + b.WorkerRespawns
	m.ConnsRefused = a.ConnsRefused + b.ConnsRefused
	m.ReapedIdle = a.ReapedIdle + b.ReapedIdle
	m.ReapedSlowloris = a.ReapedSlowloris + b.ReapedSlowloris
	m.MemReclaimScans = a.MemReclaimScans + b.MemReclaimScans
	m.MemSecondChances = a.MemSecondChances + b.MemSecondChances
	m.MemLimitOverruns = a.MemLimitOverruns + b.MemLimitOverruns
	m.SockPoolRejects = a.SockPoolRejects + b.SockPoolRejects
	m.MbufDrops = a.MbufDrops + b.MbufDrops
	m.FDRejects = a.FDRejects + b.FDRejects
	m.ForkRejects = a.ForkRejects + b.ForkRejects
	m.Squeezes = a.Squeezes + b.Squeezes
	// Gauges: the later window's instantaneous values win, matching Delta.
	m.MemFrameLimit = b.MemFrameLimit
	m.MemRSSHighwater = b.MemRSSHighwater
	m.FramesHighwater = b.FramesHighwater
	m.SockHighwater = b.SockHighwater
	m.MbufHighwater = b.MbufHighwater
	m.Latency = a.Latency.Merge(b.Latency)
	m.Sampling = a.Sampling.Merge(b.Sampling)
	return m
}
