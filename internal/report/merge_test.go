package report

import (
	"reflect"
	"testing"
)

// fillSnapshot sets every numeric leaf of a Snapshot to a distinct
// deterministic value scaled by k, walking the struct with reflection so a
// counter added to Snapshot (or any nested struct) in the future is covered
// automatically. Values are integers — exact in float64 — so the telescoping
// identity Merge(Delta(a,b), Delta(b,c)) == Delta(a,c) must hold bit for
// bit, not just approximately. Scaling by k keeps every leaf monotone in k,
// so deltas between fills never underflow the unsigned counters.
func fillSnapshot(k uint64) Snapshot {
	var s Snapshot
	leaf := uint64(0)
	var walk func(v reflect.Value)
	walk = func(v reflect.Value) {
		switch v.Kind() {
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				walk(v.Field(i))
			}
		case reflect.Array:
			for i := 0; i < v.Len(); i++ {
				walk(v.Index(i))
			}
		case reflect.Uint64, reflect.Uint32, reflect.Uint16, reflect.Uint8, reflect.Uint:
			leaf++
			v.SetUint(k * leaf)
		case reflect.Int64, reflect.Int32, reflect.Int16, reflect.Int8, reflect.Int:
			leaf++
			v.SetInt(int64(k * leaf))
		case reflect.Float64, reflect.Float32:
			leaf++
			v.SetFloat(float64(k * leaf))
		case reflect.Bool:
			v.SetBool(true)
		default:
			panic("fillSnapshot: unhandled kind " + v.Kind().String() +
				" — extend the filler and check Merge/Delta handle the new field")
		}
	}
	walk(reflect.ValueOf(&s).Elem())
	return s
}

// TestMergeMirrorsDelta pins the contract the windowed pipeline depends on:
// report.Merge is the additive inverse of report.Delta, so folding
// per-window deltas in window order reconstructs the whole-run delta
// exactly. Because the fill covers every field reflectively, a counter added
// to Snapshot but forgotten in either Merge or Delta fails this test.
func TestMergeMirrorsDelta(t *testing.T) {
	a, b, c := fillSnapshot(1), fillSnapshot(10), fillSnapshot(100)

	got := Merge(Delta(a, b), Delta(b, c))
	want := Delta(a, c)
	if !reflect.DeepEqual(got, want) {
		tg, tw := reflect.ValueOf(got), reflect.ValueOf(want)
		for i := 0; i < tg.NumField(); i++ {
			if !reflect.DeepEqual(tg.Field(i).Interface(), tw.Field(i).Interface()) {
				t.Errorf("field %s: Merge(Delta(a,b), Delta(b,c)) != Delta(a,c)",
					tg.Type().Field(i).Name)
			}
		}
	}
}

// TestMergeZeroIdentity checks a zero delta is a Merge identity for counters
// (gauges follow the later operand by design, so only the counter fields are
// compared via a round trip through Delta of identical snapshots).
func TestMergeZeroIdentity(t *testing.T) {
	a, b := fillSnapshot(1), fillSnapshot(7)
	d := Delta(a, b)
	zero := Delta(b, b) // zero counters, gauges = b's instantaneous values

	got := Merge(d, zero)
	if !reflect.DeepEqual(got, d) {
		t.Errorf("Merge(d, Delta(b,b)) != d")
	}
}
