package conflict

import "sort"

// TrackerEntry is the serialized form of one tracked key (checkpointing).
type TrackerEntry struct {
	Key         uint64
	TID         uint32
	Priv        bool
	Invalidated bool
}

// Snapshot returns the tracker's contents as a key-sorted slice, so that the
// serialized form of a deterministic run is itself deterministic.
func (t *Tracker) Snapshot() []TrackerEntry {
	out := make([]TrackerEntry, 0, len(t.seen))
	for k, ev := range t.seen {
		out = append(out, TrackerEntry{Key: k, TID: ev.tid, Priv: ev.priv, Invalidated: ev.invalidated})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Restore replaces the tracker's contents with a snapshot.
func (t *Tracker) Restore(entries []TrackerEntry) {
	t.seen = make(map[uint64]evictor, len(entries))
	for _, e := range entries {
		t.seen[e.Key] = evictor{tid: e.TID, priv: e.Priv, invalidated: e.Invalidated}
	}
}
