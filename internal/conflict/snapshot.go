package conflict

import "sort"

// TrackerSnap is the serialized form of a Tracker. It is a struct of
// parallel arrays rather than a slice of per-key structs: gob decodes
// primitive-typed slices through its fast paths instead of reflecting over
// every element, and checkpoint restore decodes trackers with tens of
// thousands of keys on the hot path of checkpoint-library regeneration.
// Entry i is (Keys[i], TIDs[i], Flags[i]); Keys are sorted ascending.
type TrackerSnap struct {
	Keys []uint64
	TIDs []uint32
	// Flags packs the evictor booleans: bit 0 priv, bit 1 invalidated.
	Flags []uint8
}

const (
	trackerPriv        = 1 << 0
	trackerInvalidated = 1 << 1
)

// Snapshot returns the tracker's contents key-sorted, so that the
// serialized form of a deterministic run is itself deterministic.
func (t *Tracker) Snapshot() TrackerSnap {
	keys := make([]uint64, 0, len(t.seen))
	for k := range t.seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	s := TrackerSnap{
		Keys: keys,
		TIDs: make([]uint32, len(keys)),
		// A fully zero []uint8 still gob-encodes per element; that is fine
		// at this size, and Flags is rarely all zero in practice.
		Flags: make([]uint8, len(keys)),
	}
	for i, k := range keys {
		ev := t.seen[k]
		s.TIDs[i] = ev.tid
		if ev.priv {
			s.Flags[i] |= trackerPriv
		}
		if ev.invalidated {
			s.Flags[i] |= trackerInvalidated
		}
	}
	return s
}

// Restore replaces the tracker's contents with a snapshot. The existing map
// is reused when present, so repeated restores onto one tracker do not
// reallocate.
func (t *Tracker) Restore(s TrackerSnap) {
	if t.seen == nil {
		t.seen = make(map[uint64]evictor, len(s.Keys))
	} else {
		clear(t.seen)
	}
	for i, k := range s.Keys {
		t.seen[k] = evictor{
			tid:         s.TIDs[i],
			priv:        s.Flags[i]&trackerPriv != 0,
			invalidated: s.Flags[i]&trackerInvalidated != 0,
		}
	}
}
