package conflict

import (
	"testing"
	"testing/quick"
)

func TestClassifyCompulsoryOnce(t *testing.T) {
	tr := NewTracker()
	a := Agent{TID: 1}
	if c := tr.Classify(100, a); c != Compulsory {
		t.Fatalf("first miss = %v, want compulsory", c)
	}
	// Classify does not implicitly mark seen; the structure records the
	// eviction explicitly. After an eviction the miss is a conflict.
	tr.Evicted(100, Agent{TID: 1})
	if c := tr.Classify(100, a); c == Compulsory {
		t.Fatal("miss after eviction still compulsory")
	}
}

func TestClassifyCauses(t *testing.T) {
	tr := NewTracker()
	user1 := Agent{TID: 1, Priv: false}
	user2 := Agent{TID: 2, Priv: false}
	kern1 := Agent{TID: 1, Priv: true}
	kern3 := Agent{TID: 3, Priv: true}

	tr.Evicted(1, user1)
	if c := tr.Classify(1, user1); c != Intrathread {
		t.Fatalf("same agent = %v, want intrathread", c)
	}
	if c := tr.Classify(1, user2); c != Interthread {
		t.Fatalf("other user = %v, want interthread", c)
	}
	if c := tr.Classify(1, kern1); c != UserKernel {
		t.Fatalf("kernel after user eviction = %v, want user-kernel", c)
	}

	tr.Evicted(2, kern3)
	if c := tr.Classify(2, kern3); c != Intrathread {
		t.Fatalf("kernel same thread = %v, want intrathread", c)
	}
	if c := tr.Classify(2, kern1); c != Interthread {
		t.Fatalf("kernel other thread = %v, want interthread", c)
	}
	if c := tr.Classify(2, user1); c != UserKernel {
		t.Fatalf("user after kernel eviction = %v, want user-kernel", c)
	}

	tr.Invalidated(3)
	if c := tr.Classify(3, user1); c != Invalidation {
		t.Fatalf("after invalidation = %v, want invalidation", c)
	}
}

func TestFirstSeenDoesNotOverwrite(t *testing.T) {
	tr := NewTracker()
	tr.Evicted(9, Agent{TID: 5, Priv: true})
	tr.FirstSeen(9, Agent{TID: 6})
	if c := tr.Classify(9, Agent{TID: 7}); c != UserKernel {
		t.Fatalf("FirstSeen overwrote eviction record: %v", c)
	}
	tr.FirstSeen(10, Agent{TID: 6})
	if !tr.Seen(10) {
		t.Fatal("FirstSeen did not mark key seen")
	}
}

func TestMatrixPercentagesSumTo100(t *testing.T) {
	var m Matrix
	agents := []Agent{{TID: 1}, {TID: 2, Priv: true}, {TID: 3}}
	causes := []Cause{Compulsory, Intrathread, Interthread, UserKernel, Invalidation}
	for i := 0; i < 1000; i++ {
		m.Add(agents[i%len(agents)], causes[i%len(causes)])
	}
	var sum float64
	for _, priv := range []bool{false, true} {
		for c := 0; c < NumCauses; c++ {
			sum += m.Percent(priv, Cause(c))
		}
	}
	if sum < 99.99 || sum > 100.01 {
		t.Fatalf("percentages sum to %.4f", sum)
	}
	if m.Total() != 1000 {
		t.Fatalf("total = %d", m.Total())
	}
}

func TestMatrixEmptyPercent(t *testing.T) {
	var m Matrix
	if m.Percent(false, Intrathread) != 0 {
		t.Fatal("empty matrix percent should be 0")
	}
}

func TestSharing(t *testing.T) {
	var s Sharing
	s.Add(Agent{TID: 1}, Agent{TID: 2, Priv: true})             // user saved by kernel
	s.Add(Agent{TID: 3, Priv: true}, Agent{TID: 4, Priv: true}) // kernel saved by kernel
	if s.Avoided[0][1] != 1 || s.Avoided[1][1] != 1 || s.Total() != 2 {
		t.Fatalf("sharing counts wrong: %+v", s)
	}
}

// Property: classification is a total function consistent with the recorded
// evictor.
func TestClassifyConsistency(t *testing.T) {
	tr := NewTracker()
	f := func(key uint64, evTID, accTID uint32, evPriv, accPriv bool) bool {
		ev := Agent{TID: evTID, Priv: evPriv}
		acc := Agent{TID: accTID, Priv: accPriv}
		tr.Evicted(key, ev)
		c := tr.Classify(key, acc)
		switch {
		case evPriv != accPriv:
			return c == UserKernel
		case evTID == accTID:
			return c == Intrathread
		default:
			return c == Interthread
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCauseString(t *testing.T) {
	if Compulsory.String() != "compulsory" || Invalidation.String() != "invalidation" {
		t.Fatal("cause names wrong")
	}
	if Cause(77).String() == "" {
		t.Fatal("unknown cause should stringify")
	}
}
