// Package conflict implements the miss-cause classification used throughout
// the paper's Tables 3 and 7: every miss in a hardware structure (cache,
// TLB, BTB) is attributed to the activity that displaced the entry —
// the same thread (intrathread conflict), a different thread in the same
// privilege class (interthread conflict), the opposite privilege class
// (user-kernel conflict), an explicit OS invalidation, or a first reference
// (compulsory).
//
// The paper's wording (Table 3 caption): "user-kernel conflicts are misses
// in which the user thread conflicted with some type of kernel activity
// (the kernel executing on behalf of this user thread, some other user
// thread, a kernel thread, or an interrupt)" — i.e. the classification is by
// privilege class, not by software-thread identity alone.
package conflict

import "fmt"

// Agent identifies who performed an access: a software thread and whether
// it was executing privileged (kernel or PAL) code at the time.
type Agent struct {
	// TID is the software thread identifier.
	TID uint32
	// Priv is true for kernel/PAL-mode execution.
	Priv bool
}

// Cause classifies a miss.
type Cause uint8

const (
	// Compulsory: the entry was never resident before.
	Compulsory Cause = iota
	// Intrathread: displaced by the same thread in the same privilege class.
	Intrathread
	// Interthread: displaced by a different thread in the same privilege class.
	Interthread
	// UserKernel: displaced by activity of the opposite privilege class.
	UserKernel
	// Invalidation: removed by an explicit OS invalidation (cache flush,
	// TLB shootdown, ASN recycling).
	Invalidation

	// NumCauses is the number of miss causes.
	NumCauses = int(Invalidation) + 1
)

var causeNames = [NumCauses]string{
	"compulsory", "intrathread", "interthread", "user-kernel", "invalidation",
}

// String returns the cause name.
func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("Cause(%d)", uint8(c))
}

// evictor records what displaced an entry.
type evictor struct {
	tid         uint32
	priv        bool
	invalidated bool
}

// Tracker remembers, for every key (cache line address, TLB page, BTB slot
// tag) that was ever displaced, who displaced it, so that the next miss on
// that key can be classified.
type Tracker struct {
	seen map[uint64]evictor
}

// NewTracker returns an empty Tracker.
func NewTracker() *Tracker {
	return &Tracker{seen: make(map[uint64]evictor)}
}

// Evicted records that key was displaced by agent (e.g. the agent whose fill
// replaced it).
func (t *Tracker) Evicted(key uint64, by Agent) {
	t.seen[key] = evictor{tid: by.TID, priv: by.Priv}
}

// Invalidated records that key was removed by an explicit OS action.
func (t *Tracker) Invalidated(key uint64) {
	t.seen[key] = evictor{invalidated: true}
}

// FirstSeen records that key has been resident at least once, so a future
// miss on it is not compulsory even if it was never formally evicted
// (e.g. trackers shared across structures).
func (t *Tracker) FirstSeen(key uint64, by Agent) {
	if _, ok := t.seen[key]; !ok {
		t.seen[key] = evictor{tid: by.TID, priv: by.Priv}
	}
}

// Seen reports whether key has ever been resident.
func (t *Tracker) Seen(key uint64) bool {
	_, ok := t.seen[key]
	return ok
}

// Classify returns the cause of a miss on key by agent. A key never seen is
// a compulsory miss (and is marked seen so the next miss is a conflict).
func (t *Tracker) Classify(key uint64, by Agent) Cause {
	ev, ok := t.seen[key]
	if !ok {
		return Compulsory
	}
	switch {
	case ev.invalidated:
		return Invalidation
	case ev.priv != by.Priv:
		return UserKernel
	case ev.tid == by.TID:
		return Intrathread
	default:
		return Interthread
	}
}

// Len returns the number of keys tracked (for memory accounting in tests).
func (t *Tracker) Len() int { return len(t.seen) }

// Matrix accumulates classified misses split by the accessor's privilege
// class, exactly the layout of the paper's Tables 3 and 7 (User and Kernel
// columns × cause rows).
type Matrix struct {
	// Counts[priv][cause]: priv 0 = user, 1 = kernel.
	Counts [2][NumCauses]uint64
}

func privIndex(priv bool) int {
	if priv {
		return 1
	}
	return 0
}

// Add records one miss.
func (m *Matrix) Add(by Agent, c Cause) {
	m.Counts[privIndex(by.Priv)][c]++
}

// Total returns all misses recorded.
func (m *Matrix) Total() uint64 {
	var t uint64
	for p := range m.Counts {
		for c := range m.Counts[p] {
			t += m.Counts[p][c]
		}
	}
	return t
}

// Percent returns Counts[priv][cause] as a percentage of all misses in the
// matrix (the tables' "percentage of misses due to conflicts, sums to 100%").
func (m *Matrix) Percent(priv bool, c Cause) float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(m.Counts[privIndex(priv)][c]) / float64(t)
}

// Sharing accumulates the constructive interthread-sharing statistic of the
// paper's Table 8: accesses that hit only because *another* thread had
// already fetched the entry ("misses avoided due to interthread
// cooperation"), split by the privilege class of the thread that would have
// missed and of the thread that prefetched.
type Sharing struct {
	// Avoided[accessorPriv][fillerPriv].
	Avoided [2][2]uint64
}

// Add records one avoided miss.
func (s *Sharing) Add(accessor, filler Agent) {
	s.Avoided[privIndex(accessor.Priv)][privIndex(filler.Priv)]++
}

// Total returns all avoided misses.
func (s *Sharing) Total() uint64 {
	return s.Avoided[0][0] + s.Avoided[0][1] + s.Avoided[1][0] + s.Avoided[1][1]
}
