package kernel

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/sys"
	"repro/internal/workload"
)

func TestMunmapInvalidatesTLBAndCache(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CyclesPer10ms = 1 << 40
	k, e := sim(t, cfg, pipeline.SMTConfig())
	addr := uint64(0x2_4000_0000)
	state := 0
	k.AddProgram(userProgram("p1", 1, 77, func(call int) workload.Step {
		switch state {
		case 0:
			state = 1
			return workload.Step{Kind: workload.StepSyscall, Req: sys.Request{
				Num: sys.SysSmmap, Resource: sys.ResMemory, Addr: addr,
			}}
		case 1:
			state = 2
			return workload.Step{Kind: workload.StepSyscall, Req: sys.Request{
				Num: sys.SysMunmap, Resource: sys.ResMemory, Addr: addr,
			}}
		default:
			return workload.Step{Kind: workload.StepRun, N: 500}
		}
	}))
	// Pre-map the page so the munmap has something to tear down.
	var th *Thread
	for _, x := range k.Threads() {
		if x.kind == tkUser {
			th = x
		}
	}
	paddr, _ := k.Mem.Touch(th.pid, addr)
	e.DTLB.Insert(th.asn, addr, paddr, agentFor(&pipeline.FedInst{TID: th.tid, ASN: th.asn}))
	e.Run(600_000)
	if k.SyscallCount[sys.SysMunmap] != 1 {
		t.Fatalf("munmap count %d", k.SyscallCount[sys.SysMunmap])
	}
	if _, ok := k.Mem.Translate(th.pid, addr); ok {
		t.Fatal("page still mapped after munmap")
	}
	if e.DTLB.Invalidations == 0 && e.ITLB.Invalidations == 0 {
		t.Fatal("munmap performed no TLB invalidation")
	}
}

func TestNetisrDrainsBatches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CyclesPer10ms = 15_000
	k, e := sim(t, cfg, pipeline.SMTConfig())
	nic := &scriptNIC{arrivals: map[uint64][]Frame{}}
	// A burst of 12 connections on tick 2: more than one netisr batch.
	var burst []Frame
	for i := 0; i < 12; i++ {
		burst = append(burst, Frame{Conn: 100 + i, Bytes: 200, Open: true})
	}
	nic.arrivals[2] = burst
	k.SetNIC(nic)
	e.Run(900_000)
	if k.net.Delivered != 12 {
		t.Fatalf("delivered %d frames, want 12", k.net.Delivered)
	}
	ls := k.net.sock(ListenFD)
	if len(ls.acceptQ) != 12 {
		t.Fatalf("accept queue has %d conns", len(ls.acceptQ))
	}
}

func TestAckFramesAreProtocolWorkOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CyclesPer10ms = 15_000
	k, e := sim(t, cfg, pipeline.SMTConfig())
	nic := &scriptNIC{arrivals: map[uint64][]Frame{
		2: {{Conn: 5, Bytes: 100, Open: true}, {Conn: 5, Ack: true}},
	}}
	k.SetNIC(nic)
	e.Run(600_000)
	if k.net.Delivered != 2 {
		t.Fatalf("delivered %d", k.net.Delivered)
	}
	if k.net.Dropped != 0 {
		t.Fatalf("ack dropped: %d", k.net.Dropped)
	}
	// Exactly one socket created (the ack made no socket).
	if len(k.net.socks) != 2 { // listen + one conn
		t.Fatalf("%d sockets", len(k.net.socks))
	}
}

func TestHaltedSemantics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CyclesPer10ms = 1 << 40
	k, e := sim(t, cfg, pipeline.SMTConfig())
	_ = e
	// With no programs, every context is halted once its feed settles.
	for ctx := 0; ctx < cfg.Contexts; ctx++ {
		if !k.Halted(ctx) {
			t.Fatalf("empty machine context %d not halted", ctx)
		}
	}
	k.AddProgram(userProgram("p1", 1, 5, computeOnly(100000)))
	e.Run(50_000)
	halted := 0
	for ctx := 0; ctx < cfg.Contexts; ctx++ {
		if k.Halted(ctx) {
			halted++
		}
	}
	if halted != cfg.Contexts-1 {
		t.Fatalf("halted contexts = %d, want %d", halted, cfg.Contexts-1)
	}
}

func TestIdleSpinExecutesIdleLoop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdleSpin = true
	cfg.CyclesPer10ms = 1 << 40
	k, e := sim(t, cfg, pipeline.SMTConfig())
	k.AddProgram(userProgram("p1", 1, 5, computeOnly(1000)))
	e.Run(100_000)
	if e.Cycles.ByCat[sys.CatIdle] == 0 {
		t.Fatal("no idle cycles attributed")
	}
	// The spin loop retires instructions (Mode Idle contributes to user bin
	// of mix? idle mode is unprivileged); total retired far exceeds the
	// program's instructions.
	if e.Metrics.Retired < 50_000 {
		t.Fatalf("spinning idle retired only %d", e.Metrics.Retired)
	}
}

func TestAffinitySchedulerPrefersLastContext(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AffinityScheduler = true
	cfg.Contexts = 2
	cfg.QuantumInsts = 1_000
	pcfg := pipeline.SMTConfig()
	pcfg.Contexts = 2
	k, e := sim(t, cfg, pcfg)
	for i := 0; i < 4; i++ {
		k.AddProgram(userProgram("p", i+1, uint64(40+i), computeOnly(800)))
	}
	e.Run(1_200_000)
	if k.ContextSwitches == 0 || k.Preemptions == 0 {
		t.Fatalf("no scheduling activity: sw=%d pre=%d", k.ContextSwitches, k.Preemptions)
	}
	// Sanity: everything still progresses deterministically.
	if e.Metrics.Retired == 0 {
		t.Fatal("nothing retired with affinity scheduler")
	}
}

func TestNetworkDMAOccupiesBus(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ModelNetworkDMA = true
	cfg.CyclesPer10ms = 20_000
	k, e := sim(t, cfg, pipeline.SMTConfig())
	nic := &scriptNIC{arrivals: map[uint64][]Frame{
		1: {{Conn: 1, Bytes: 100, Open: true}},
		2: {{Conn: 2, Bytes: 100, Open: true}},
	}}
	k.SetNIC(nic)
	before := e.Hier.BusTransactions
	e.Run(100_000)
	if e.Hier.BusTransactions <= before {
		t.Fatal("network DMA produced no bus transactions")
	}
}

func TestSyscallNamesAndResources(t *testing.T) {
	if sys.Name(sys.SysRead) != "read" || sys.Name(9999) == "" {
		t.Fatal("syscall naming broken")
	}
	if sys.ResNet.String() != "network" || sys.ResFile.String() != "file" ||
		sys.Resource(99).String() != "other" {
		t.Fatal("resource naming broken")
	}
	if sys.CatNetisr.String() != "netisr" || sys.Category(99).String() == "" {
		t.Fatal("category naming broken")
	}
}

func TestDynLenScalesWithBytes(t *testing.T) {
	small := dynLen(sys.Request{Num: sys.SysRead, Bytes: 1024})
	big := dynLen(sys.Request{Num: sys.SysRead, Bytes: 64 * 1024})
	if big <= small {
		t.Fatalf("dynLen not scaling: %d vs %d", small, big)
	}
	if dynLen(sys.Request{Num: 999}) <= 0 {
		t.Fatal("unknown syscall has no default cost")
	}
}

func TestConnOf(t *testing.T) {
	cfg := DefaultConfig()
	k := New(cfg)
	if k.ConnOf(ListenFD) != -1 {
		t.Fatal("listen socket should have no conn")
	}
	if k.ConnOf(12345) != -1 {
		t.Fatal("unknown fd should report -1")
	}
	k.deliverFrames([]Frame{{Conn: 42, Bytes: 10, Open: true}})
	fd, _ := k.net.byConn.Get(42)
	if k.ConnOf(fd) != 42 {
		t.Fatalf("ConnOf(%d) = %d, want 42", fd, k.ConnOf(fd))
	}
}

func TestSpinLockContention(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CyclesPer10ms = 1 << 40
	k, e := sim(t, cfg, pipeline.SMTConfig())
	// Several processes hammering the same file-class lock.
	for i := 0; i < 6; i++ {
		k.AddProgram(userProgram("p", i+1, uint64(60+i), func(call int) workload.Step {
			if call%2 == 1 {
				return workload.Step{Kind: workload.StepRun, N: 200}
			}
			return workload.Step{Kind: workload.StepSyscall, Req: sys.Request{
				Num: sys.SysStat, Resource: sys.ResFile,
			}}
		}))
	}
	e.Run(2_500_000)
	if k.LockContentions == 0 || k.SpinInsts == 0 {
		t.Fatalf("no lock contention observed: cont=%d spin=%d", k.LockContentions, k.SpinInsts)
	}
	if e.Cycles.ByCat[sys.CatSpin] == 0 {
		t.Fatal("no spin cycles attributed")
	}
	// The paper's bound: spin-waiting stays a small share of cycles.
	if pct := e.Cycles.PctCat(sys.CatSpin); pct > 15 {
		t.Fatalf("spin share %.1f%% is implausibly high", pct)
	}
}

func TestDiskDriverPathOnCacheMiss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CyclesPer10ms = 1 << 40
	cfg.BufferCacheHitRate = 0 // every file read misses the buffer cache
	k, e := sim(t, cfg, pipeline.SMTConfig())
	k.AddProgram(userProgram("p1", 1, 71, func(call int) workload.Step {
		if call%2 == 1 {
			return workload.Step{Kind: workload.StepRun, N: 400}
		}
		return workload.Step{Kind: workload.StepSyscall, Req: sys.Request{
			Num: sys.SysRead, Bytes: 8192, Resource: sys.ResFile,
		}}
	}))
	before := e.Hier.BusTransactions
	e.Run(2_000_000)
	if k.DiskReads == 0 {
		t.Fatal("no disk-driver invocations with 0% buffer-cache hit rate")
	}
	if k.DiskReads != k.SyscallCount[sys.SysRead] {
		t.Fatalf("disk reads %d != file reads %d", k.DiskReads, k.SyscallCount[sys.SysRead])
	}
	if e.Hier.BusTransactions <= before {
		t.Fatal("disk DMA produced no memory-bus transactions")
	}
}

func TestBufferCacheHitRateRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferCacheHitRate = 1 // fully cached fileset: no disk traffic
	k, e := sim(t, cfg, pipeline.SMTConfig())
	k.AddProgram(userProgram("p1", 1, 72, func(call int) workload.Step {
		if call%2 == 1 {
			return workload.Step{Kind: workload.StepRun, N: 400}
		}
		return workload.Step{Kind: workload.StepSyscall, Req: sys.Request{
			Num: sys.SysRead, Bytes: 4096, Resource: sys.ResFile,
		}}
	}))
	e.Run(1_000_000)
	if k.DiskReads != 0 {
		t.Fatalf("disk reads %d with a fully cached fileset", k.DiskReads)
	}
}

func TestColdBootSkipsPrewarm(t *testing.T) {
	warm := New(DefaultConfig())
	if warm.Mem.MappedPages(0) == 0 {
		t.Fatal("booted kernel has no resident pages")
	}
	cfg := DefaultConfig()
	cfg.ColdBoot = true
	cold := New(cfg)
	if cold.Mem.MappedPages(0) != 0 {
		t.Fatalf("cold boot pre-mapped %d pages", cold.Mem.MappedPages(0))
	}
}

func TestPrewarmResetsSetupCounters(t *testing.T) {
	k := New(DefaultConfig())
	if k.Mem.Allocs != 0 || k.Mem.Refills != 0 {
		t.Fatalf("prewarm leaked setup counters: allocs=%d refills=%d", k.Mem.Allocs, k.Mem.Refills)
	}
}
