// Package kernel is the behavioral model of Digital Unix 4.0d running on
// the simulated SMT, as modified by the paper's authors (§2.2.2).
//
// It implements pipeline.Feed: for every hardware context it generates the
// instruction stream the context fetches — interleaving user-program code
// (from workload.Program models) with the kernel's own synthetic code:
// system-call services, PAL TLB-miss handlers, the virtual-memory layer,
// an SMP-style scheduler with Alpha ASN management, netisr protocol-stack
// threads, interrupt stubs, and the idle loop.
//
// The kernel's code regions are synthetic (internal/workload) but laid out
// in a realistically large kernel text segment, with data split between
// globally-mapped virtual pages and physically-addressed (TLB-bypassing)
// accesses, calibrated against the paper's Tables 2 and 5. Everything the
// paper measures about the OS — cache/TLB/BTB interference between kernel
// threads, TLB-miss handling cost, syscall time by service, netisr load —
// is emergent from these streams executing on the pipeline.
package kernel

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/sys"
	"repro/internal/tlb"
	"repro/internal/workload"
)

// Config parameterizes the kernel model.
type Config struct {
	// Contexts is the number of hardware contexts fed.
	Contexts int
	// Seed drives all kernel-side randomness.
	Seed uint64
	// AppOnly selects the paper's application-only methodology (§2.3.1):
	// system calls and traps complete instantly with no kernel code.
	AppOnly bool
	// CyclesPer10ms is the clock/network interrupt granularity in cycles
	// (the paper's simulated 10 ms; scaled so that multi-interrupt
	// behavior is observable in laptop-scale runs).
	CyclesPer10ms uint64
	// QuantumInsts is the scheduling quantum in user instructions.
	QuantumInsts uint64
	// NetisrThreads is the number of netisr kernel threads (the paper's
	// "set of identical threads responsible for managing the network
	// protocol stack").
	NetisrThreads int
	// MaxASN is the number of address-space numbers before recycling
	// (Alpha-style); recycling invalidates TLB entries.
	MaxASN uint16
	// BufferCacheHitRate is the probability a file read/open is served
	// from the OS buffer cache; misses execute the disk driver and DMA
	// (the disk itself is zero-latency, as in the paper's §2.2.1).
	BufferCacheHitRate float64
	// ColdBoot skips the pre-mapping of kernel text and data that models
	// the paper's methodology of measuring a booted, resident OS (SimOS
	// boots Digital Unix before measurement). With ColdBoot every kernel
	// page takes the full first-touch VM path during the run.
	ColdBoot bool
	// ModelNetworkDMA adds the network interface's DMA transfers to the
	// memory bus (the paper omits them; §2.2.1 argues the average bus
	// delay stays insignificant — this flag lets the claim be tested).
	ModelNetworkDMA bool
	// AffinityScheduler makes the scheduler prefer re-running a thread on
	// the hardware context it last used (a cache-affinity policy, in the
	// spirit of the SMT-aware scheduling the paper lists as future work).
	AffinityScheduler bool
	// IdleSpin makes idle contexts execute the OS spin-wait idle loop,
	// competing for fetch bandwidth — the SMT resource waste the paper
	// calls out in §2.2.2. The default models a halting idle (WTINT-style):
	// an idle context fetches nothing until work arrives. Idle cycles are
	// attributed either way.
	IdleSpin bool
	// AcceptBacklog bounds the listen socket's accept queue (0 =
	// DefaultAcceptBacklog, modeling Digital Unix's somaxconn). A SYN
	// arriving at a full backlog is dropped; the client recovers through
	// its retransmit path.
	AcceptBacklog int
	// IdleTimeoutTicks, when > 0, reaps accepted connection sockets idle
	// for that many 10 ms network ticks: stalled slowloris requests and
	// idle keep-alive connections alike.
	IdleTimeoutTicks uint64
	// SocketTableSize bounds the kernel socket table (0 =
	// DefaultSocketTable). A SYN arriving with the table full is dropped
	// (ENOBUFS in the stack); the client recovers via retransmit.
	SocketTableSize int
	// MbufPoolSize bounds the frames the NIC may queue for netisr
	// processing (0 = DefaultMbufPool). Arrivals beyond it are dropped at
	// the interface, as a real mbuf exhaustion drops packets.
	MbufPoolSize int
	// ProcTableSize bounds the process/thread table slots available to
	// user processes (0 = DefaultProcTable). fork beyond it fails with the
	// EAGAIN analogue and the master retries.
	ProcTableSize int
	// FDLimit bounds per-process open network descriptors (0 =
	// DefaultFDLimit). accept beyond it fails with the EMFILE analogue.
	FDLimit int
	// MemFrameLimit, when > 0, caps the frame allocator below its physical
	// size at boot (see mem.SetFrameLimit); the exhaustion fault domain can
	// shrink it further mid-run.
	MemFrameLimit uint64
}

// DefaultAcceptBacklog is the default listen-queue bound (Digital Unix
// shipped somaxconn-sized listen queues of this order).
const DefaultAcceptBacklog = 1024

// Default resource-pool capacities. They are sized like a period Digital
// Unix installation relative to this simulation's scale: generous enough
// that no default workload ever binds on them, small enough that the
// exhaustion fault domain can squeeze them into range of real demand.
const (
	// DefaultSocketTable bounds concurrently open sockets.
	DefaultSocketTable = 4096
	// DefaultMbufPool bounds NIC frames queued for netisr processing.
	DefaultMbufPool = 8192
	// DefaultProcTable bounds live user processes.
	DefaultProcTable = 256
	// DefaultFDLimit bounds per-process open network descriptors
	// (getdtablesize-style).
	DefaultFDLimit = 64
)

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		Contexts:           8,
		Seed:               1,
		CyclesPer10ms:      2_000_000,
		QuantumInsts:       400_000,
		NetisrThreads:      2,
		MaxASN:             63,
		BufferCacheHitRate: 0.92,
	}
}

// threadState is the scheduler state of a software thread.
type threadState uint8

const (
	tsRunnable threadState = iota
	tsRunning
	tsBlocked
	tsExited
)

// threadKind distinguishes the thread models.
type threadKind uint8

const (
	tkUser threadKind = iota
	tkNetisr
	tkIdle
)

// Thread is one software thread known to the scheduler.
type Thread struct {
	tid   uint32
	pid   uint64
	asn   uint16
	kind  threadKind
	state threadState
	prog  workload.Program
	// burst is the remaining user instructions of the current StepRun.
	burst uint64
	// sinceSched counts user instructions since last scheduling, for the
	// preemption quantum.
	sinceSched uint64
	// lastCtx is the hardware context the thread last ran on.
	lastCtx int
	// wakeReq is the blocked syscall to complete when rescheduled.
	wakeReq *sys.Request
	// wakeResult is the result to report for wakeReq.
	wakeResult int
	// sock is the socket index the thread is blocked on (-1 none).
	sock int
	// ownHead is the head of the thread's intrusive owned-socket list
	// (socket ids chained through ownNext; 0 = empty, since socket 0 is
	// the listen socket and never owned). Derived state: rebuilt from
	// socket owners on restore.
	ownHead int
	// worker marks a crashable, respawnable server process (the
	// fault-injection process domain targets only these).
	worker bool
	// released is set once the exit teardown (address-space release, ASN
	// invalidation) has retired. Between tsExited and released the thread
	// legitimately still owns its pages and TLB entries.
	released bool
	// fds counts the thread's open network descriptors, against the
	// per-process FD limit.
	fds int
	// slot is the process-table slot a user thread occupies (-1 for kernel
	// threads, and after the slot is freed at exit teardown).
	slot int
}

// TID returns the thread's identifier.
func (t *Thread) TID() uint32 { return t.tid }

// Kernel implements pipeline.Feed.
type Kernel struct {
	cfg Config //detlint:ignore snapshotcomplete configuration fixed at construction
	rng *rng.Rand

	Mem *mem.Memory

	// Hardware hooks, wired after pipeline construction.
	itlb    *tlb.TLB         //detlint:ignore snapshotcomplete hardware wiring re-attached by core assembly on restore
	dtlb    *tlb.TLB         //detlint:ignore snapshotcomplete hardware wiring re-attached by core assembly on restore
	hier    cacheInvalidator //detlint:ignore snapshotcomplete hardware wiring re-attached by core assembly on restore
	hierDMA dmaSink          //detlint:ignore snapshotcomplete hardware wiring re-attached by core assembly on restore

	code *codebase // kernel code regions + walkers

	threads []*Thread
	runQ    []*Thread
	feeds   []ctxFeed

	nextASN   uint16
	asnEpoch  uint64 //detlint:ignore counterflow ASN generation stamp, allocator state not a metric
	nextTID   uint32
	nextPID   uint64 //detlint:ignore counterflow PID allocator bump pointer, not a metric
	rrIntCtx  int
	lastTick  uint64
	interrupt []int //detlint:ignore snapshotcomplete scratch buffer returned by Cycle, carries no state across cycles

	// limitPool recycles the workload.Limit generators that bound every code
	// burst: the feed would otherwise allocate one per user burst and per
	// trap handler, which dominates the allocation profile.
	limitPool []*workload.Limit //detlint:ignore snapshotcomplete allocation freelist, holds no simulation state
	// handlerBuf is the scratch the trap handlers assemble spliced code in;
	// Trap consumes it before returning.
	handlerBuf []pipeline.FedInst //detlint:ignore snapshotcomplete scratch buffer, dead once Trap returns

	net *netState

	// faults is the fault injector (nil = no process faults); respawn
	// builds a replacement worker after an injected crash.
	faults  *faults.Injector        //detlint:ignore snapshotcomplete fault wiring re-attached by core assembly on restore
	respawn func() workload.Program //detlint:ignore snapshotcomplete fault wiring re-attached by core assembly on restore

	// Counters surfaced in reports.
	ContextSwitches uint64
	Preemptions     uint64
	SyscallCount    [sys.NumSyscalls]uint64
	VMFaults        [3]uint64 // indexed by mem.FaultKind
	ASNRecycles     uint64
	ClockInterrupts uint64
	NetInterrupts   uint64
	IdleScheduled   uint64
	// SvcInstByRes counts service instructions by resource class, the
	// grouping of Figure 7's right-hand chart.
	SvcInstByRes [5]uint64
	// lockHolder[i] is the thread currently holding the kernel lock for
	// resource class i (0 = free); LockContentions and SpinInsts count
	// the resulting spin-waiting.
	lockHolder      [5]uint32
	LockContentions uint64
	SpinInsts       uint64
	// DiskReads counts buffer-cache misses that ran the disk-driver path.
	DiskReads uint64
	// WorkerCrashes and WorkerRespawns count the fault-injection process
	// domain: injected worker deaths and the master's re-forks.
	WorkerCrashes  uint64
	WorkerRespawns uint64
	// ConnsRefused counts SYNs dropped at a full accept backlog;
	// ReapedIdle and ReapedSlowloris count idle-timer teardowns of idle
	// keep-alive connections and stalled (slow-trickle) requests.
	ConnsRefused    uint64
	ReapedIdle      uint64
	ReapedSlowloris uint64

	// Finite-pool state: free-listed flat tables whose exhaustion returns
	// structured errors through the syscall path instead of growing
	// unbounded (see DefaultSocketTable and friends).
	//
	// procSlots[i] is the tid occupying process-table slot i (0 = free);
	// procFree is its LIFO freelist.
	procSlots []uint32
	procFree  []int
	// liveUsers counts user threads between fork and exit teardown (they
	// hold a process slot the whole time).
	liveUsers int
	// pendingRespawns counts master re-forks refused at a full process
	// table, retried each network tick.
	pendingRespawns int
	// Effective capacities: equal to the configured sizes until the
	// exhaustion fault domain squeezes them (squeezed latches that the
	// one-shot squeeze has been applied).
	sockCapEff int
	mbufCapEff int
	fdLimEff   int
	procCapEff int
	squeezed   bool

	// Pool-exhaustion counters and demand gauges.
	SockPoolRejects uint64 // SYNs dropped at a full socket table (ENOBUFS)
	MbufDrops       uint64 // NIC arrivals dropped at a full mbuf pool
	FDRejects       uint64 // accepts refused at the per-process FD limit (EMFILE)
	ForkRejects     uint64 // forks refused at a full process table (EAGAIN)
	SockHighwater   int    // peak sockets in use
	MbufHighwater   int    // peak mbuf-pool occupancy
}

// cacheInvalidator is the slice of the cache hierarchy the kernel needs for
// the architectural flush commands.
type cacheInvalidator interface {
	FlushIRange(base, size uint64)
	FlushDRange(base, size uint64)
}

// dmaSink accepts DMA bus traffic (network-interface transfers).
type dmaSink interface {
	DMA(n int, now uint64)
}

// New builds a kernel model. Wire the hardware with AttachEngine before use.
func New(cfg Config) *Kernel {
	if cfg.Contexts <= 0 {
		panic("kernel: no contexts")
	}
	if cfg.MaxASN == 0 {
		cfg.MaxASN = 63
	}
	if cfg.CyclesPer10ms == 0 {
		cfg.CyclesPer10ms = 2_000_000
	}
	m, err := mem.NewMemory(mem.AllocatorBytes)
	if err != nil {
		panic(fmt.Sprintf("kernel: %v", err))
	}
	if cfg.SocketTableSize <= 0 {
		cfg.SocketTableSize = DefaultSocketTable
	}
	if cfg.MbufPoolSize <= 0 {
		cfg.MbufPoolSize = DefaultMbufPool
	}
	if cfg.ProcTableSize <= 0 {
		cfg.ProcTableSize = DefaultProcTable
	}
	if cfg.FDLimit <= 0 {
		cfg.FDLimit = DefaultFDLimit
	}
	k := &Kernel{
		cfg:        cfg,
		rng:        rng.New(cfg.Seed ^ 0xfeedface),
		Mem:        m,
		feeds:      make([]ctxFeed, cfg.Contexts),
		nextTID:    1,
		nextPID:    1,
		nextASN:    1,
		sockCapEff: cfg.SocketTableSize,
		mbufCapEff: cfg.MbufPoolSize,
		fdLimEff:   cfg.FDLimit,
		procCapEff: cfg.ProcTableSize,
	}
	k.procSlots = make([]uint32, cfg.ProcTableSize)
	k.procFree = make([]int, cfg.ProcTableSize)
	for i := range k.procFree {
		// LIFO freelist popped from the tail: slot 0 is handed out first.
		k.procFree[i] = cfg.ProcTableSize - 1 - i
	}
	k.code = buildCodebase(k.rng.Split(1), cfg.Contexts)
	k.net = newNetState()
	for i := range k.feeds {
		k.feeds[i].init()
		// Every context gets an idle thread of its own.
		idle := k.newThread(tkIdle, nil)
		idle.state = tsRunning
		k.feeds[i].idle = idle
		k.feeds[i].cur = idle
	}
	for i := 0; i < cfg.NetisrThreads; i++ {
		n := k.newThread(tkNetisr, nil)
		n.state = tsBlocked
		n.sock = -1
	}
	if !cfg.ColdBoot {
		k.prewarm()
	}
	if cfg.MemFrameLimit > 0 {
		k.Mem.SetFrameLimit(cfg.MemFrameLimit)
	}
	return k
}

// prewarm maps the kernel's text and virtual data pages, modeling the
// booted, memory-resident OS the paper measures (SimOS checkpoints after
// boot). TLBs and caches still start cold.
func (k *Kernel) prewarm() {
	for _, reg := range k.code.all {
		if reg.Mode != isa.PAL { // PAL text is physically addressed
			for va := reg.Base; va < reg.Base+reg.Size(); va += mem.PageSize {
				k.Mem.Touch(mem.KernelPID, va)
			}
		}
		for _, d := range reg.Data {
			if d.Physical {
				continue
			}
			for va := d.Base; va < d.Base+d.Size; va += mem.PageSize {
				k.Mem.Touch(mem.KernelPID, va)
			}
		}
	}
	// Pre-mapping is setup, not measured workload behavior.
	k.Mem.Allocs = 0
	k.Mem.Refills = 0
}

// AttachEngine wires the kernel to the engine's TLBs and caches. It must be
// called once before simulation starts.
func (k *Kernel) AttachEngine(e *pipeline.Engine) {
	k.itlb = e.ITLB
	k.dtlb = e.DTLB
	k.hier = hierAdapter{e}
	k.hierDMA = e.Hier
}

type hierAdapter struct{ e *pipeline.Engine }

func (h hierAdapter) FlushIRange(base, size uint64) { h.e.Hier.L1I.InvalidateRange(base, size) }
func (h hierAdapter) FlushDRange(base, size uint64) { h.e.Hier.L1D.InvalidateRange(base, size) }

// newThread registers a thread. A user thread needs a process-table slot;
// newThread returns nil when the table is full (the fork-time admission
// control — callers surface the EAGAIN analogue).
func (k *Kernel) newThread(kind threadKind, prog workload.Program) *Thread {
	t := &Thread{
		tid:  k.nextTID,
		kind: kind,
		prog: prog,
		sock: -1,
		slot: -1,
	}
	if kind == tkUser {
		if !k.canFork() {
			return nil
		}
		n := len(k.procFree)
		t.slot = k.procFree[n-1]
		k.procFree = k.procFree[:n-1]
		k.procSlots[t.slot] = t.tid
		k.liveUsers++
		k.nextTID++
		k.nextPID++
		t.pid = k.nextPID
		t.asn = k.allocASN()
	} else {
		k.nextTID++
		t.pid = mem.KernelPID
		t.asn = tlb.GlobalASN
	}
	k.threads = append(k.threads, t)
	return t
}

// canFork reports whether a process-table slot is available under the
// effective (possibly squeezed) capacity.
func (k *Kernel) canFork() bool {
	return len(k.procFree) > 0 && k.liveUsers < k.procCapEff
}

// freeProcSlot returns a thread's process-table slot at exit teardown.
func (k *Kernel) freeProcSlot(t *Thread) {
	if t.slot < 0 {
		return
	}
	k.procSlots[t.slot] = 0
	k.procFree = append(k.procFree, t.slot)
	t.slot = -1
	k.liveUsers--
}

// allocASN hands out address-space numbers, recycling (with TLB
// invalidation, the §2.2.2 modification) when they run out.
func (k *Kernel) allocASN() uint16 {
	asn := k.nextASN
	k.nextASN++
	if k.nextASN > k.cfg.MaxASN {
		k.nextASN = 1
		k.asnEpoch++
	}
	if k.asnEpoch > 0 && k.itlb != nil {
		// The ASN is being reused: flush stale translations.
		k.itlb.InvalidateASN(asn)
		k.dtlb.InvalidateASN(asn)
		k.ASNRecycles++
	}
	return asn
}

// AddProgram registers a user process running prog and makes it runnable.
// It returns the thread (for tests and reporting). Initial wiring must fit
// the process table; size ProcTableSize for the workload.
func (k *Kernel) AddProgram(prog workload.Program) *Thread {
	t := k.newThread(tkUser, prog)
	if t == nil {
		panic(fmt.Sprintf("kernel: process table full (%d slots); raise Config.ProcTableSize",
			k.cfg.ProcTableSize))
	}
	t.state = tsRunnable
	k.runQ = append(k.runQ, t)
	return t
}

// AddWorker registers a user process that the fault-injection process
// domain may crash (an Apache pool worker).
func (k *Kernel) AddWorker(prog workload.Program) *Thread {
	t := k.AddProgram(prog)
	t.worker = true
	return t
}

// SetFaults attaches the fault injector (nil disables process faults).
func (k *Kernel) SetFaults(inj *faults.Injector) { k.faults = inj }

// applySqueeze is the exhaustion fault domain landing mid-run: the frame
// allocator and the effective pool capacities shrink to (1-frac) of their
// pre-squeeze sizes, with floors that leave the machine degraded but
// functional (the sweep's graceful-degradation contract).
func (k *Kernel) applySqueeze(memFrac, poolFrac float64) {
	k.squeezed = true
	if k.faults != nil {
		k.faults.Squeezes++
	}
	if memFrac > 0 {
		base := k.Mem.FrameLimit()
		if base == 0 {
			base = k.Mem.Frames()
		}
		k.Mem.SetFrameLimit(uint64(float64(base) * (1 - memFrac)))
	}
	if poolFrac > 0 {
		scale := func(v, floor int) int {
			n := int(float64(v) * (1 - poolFrac))
			if n < floor {
				n = floor
			}
			return n
		}
		k.sockCapEff = scale(k.cfg.SocketTableSize, 2)
		k.mbufCapEff = scale(k.cfg.MbufPoolSize, netisrBatch)
		k.fdLimEff = scale(k.cfg.FDLimit, 1)
		k.procCapEff = scale(k.cfg.ProcTableSize, 1)
	}
}

// SetRespawn installs the master's re-fork hook: called after an injected
// worker crash to build the replacement process.
func (k *Kernel) SetRespawn(fn func() workload.Program) { k.respawn = fn }

// StateCounts returns the scheduler population by state, for watchdog
// diagnostics.
func (k *Kernel) StateCounts() (runnable, running, blocked, exited int) {
	for _, t := range k.threads {
		switch t.state {
		case tsRunnable:
			runnable++
		case tsRunning:
			running++
		case tsBlocked:
			blocked++
		case tsExited:
			exited++
		}
	}
	return
}

// RunQLen returns the number of queued runnable threads.
func (k *Kernel) RunQLen() int { return len(k.runQ) }

// Threads returns all registered threads.
func (k *Kernel) Threads() []*Thread { return k.threads }

// ThreadName returns a human-readable name for a thread.
func (t *Thread) ThreadName() string {
	switch t.kind {
	case tkNetisr:
		return "netisr"
	case tkIdle:
		return "idle"
	}
	if t.prog != nil {
		return t.prog.Name()
	}
	return "thread"
}

// wake makes a blocked thread runnable.
func (k *Kernel) wake(t *Thread) {
	if t.state != tsBlocked {
		return
	}
	t.state = tsRunnable
	k.runQ = append(k.runQ, t)
}

// pickNext pops the next runnable thread for ctx, or nil. Under the
// affinity policy, a thread that last ran on ctx is preferred (its cache
// and TLB state may survive).
func (k *Kernel) pickNext(ctx int) *Thread {
	if k.cfg.AffinityScheduler {
		for i, t := range k.runQ {
			if t.state == tsRunnable && t.lastCtx == ctx {
				k.runQ = append(k.runQ[:i], k.runQ[i+1:]...)
				t.state = tsRunning
				t.lastCtx = ctx
				return t
			}
		}
	}
	for len(k.runQ) > 0 {
		t := k.runQ[0]
		k.runQ = k.runQ[1:]
		if t.state == tsRunnable {
			t.state = tsRunning
			t.lastCtx = ctx
			return t
		}
	}
	return nil
}
