package kernel

import "repro/internal/sys"

// actionKind enumerates the completion actions a generation-stack entry can
// carry. Actions used to be closures; they are plain data so that a
// checkpoint can serialize a context's generation stack mid-flight and a
// restored kernel replays exactly the same completion behavior.
type actionKind uint8

const (
	// actNone does nothing (entries with no completion behavior).
	actNone actionKind = iota
	// actSwitchTo installs thread TID on the context after scheduler code
	// drains (completing a context switch).
	actSwitchTo
	// actSyscallPause records the pending request and pauses generation
	// until the syscall PALCall retires (or resolves the retire race).
	actSyscallPause
	// actSvcDone runs when a service body drains: release the resource
	// lock, apply the syscall effect, then block or push the return path.
	actSvcDone
	// actSvcResult reports a completed syscall's result to the program.
	actSvcResult
	// actClearCur detaches the current thread from the context (exit paths).
	actClearCur
	// actNetisrDone releases the network lock and delivers the processed
	// frame batch to sockets.
	actNetisrDone
)

// action is a serialized completion behavior: the kind plus the operands the
// kinds need (threads are referenced by TID, never by pointer).
type action struct {
	Kind  actionKind
	TID   uint32
	Req   sys.Request
	Res   int
	Batch []Frame
}

// threadByTID resolves a thread id (0 resolves to nil).
func (k *Kernel) threadByTID(tid uint32) *Thread {
	if tid == 0 {
		return nil
	}
	for _, t := range k.threads {
		if t.tid == tid {
			return t
		}
	}
	return nil
}

// runAction executes a completion action on behalf of context ctx. It is the
// single dispatcher for everything that used to live in per-entry closures.
func (k *Kernel) runAction(ctx int, a action) {
	f := &k.feeds[ctx]
	switch a.Kind {
	case actNone:
	case actSwitchTo:
		next := k.threadByTID(a.TID)
		if next == nil {
			panic("kernel: actSwitchTo on unknown thread")
		}
		f.cur = next
		next.sinceSched = 0
		if next.wakeReq != nil {
			k.resumeBlockedSyscall(ctx, next)
		}
	case actSyscallPause:
		f.pendingReq = a.Req
		if f.syscallRetired {
			f.syscallRetired = false
			k.enterSyscall(ctx)
		} else {
			f.paused = true
		}
	case actSvcDone:
		t := k.threadByTID(a.TID)
		if t == nil {
			panic("kernel: actSvcDone on unknown thread")
		}
		k.unlock(a.Req.Resource, t.tid)
		res, block := k.syscallEffect(t, a.Req)
		if block {
			t.wakeReq = &sys.Request{}
			*t.wakeReq = a.Req
			t.state = tsBlocked
			f.cur = nil
			return
		}
		k.pushSvcReturn(ctx, t, a.Req, res)
	case actSvcResult:
		t := k.threadByTID(a.TID)
		if t == nil {
			panic("kernel: actSvcResult on unknown thread")
		}
		t.prog.OnSyscallResult(a.Req, a.Res)
	case actClearCur:
		f.cur = nil
	case actNetisrDone:
		k.unlock(sys.ResNet, a.TID)
		k.deliverFrames(a.Batch)
	}
}
