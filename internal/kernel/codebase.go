package kernel

import (
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/rng"
	"repro/internal/sys"
	"repro/internal/workload"
)

// svcSpec sets a system-call service's dynamic cost: a fixed dispatch/
// bookkeeping part plus a per-KB data-movement part. The values are
// calibrated so that the Apache workload's Figure 7 shape (stat and
// network read/write dominating; file and network services roughly
// balanced) and the SPECInt workload's Figure 4 shape (file reads during
// start-up) emerge from the programs' call patterns.
type svcSpec struct {
	base  int
	perKB int
	res   sys.Resource
}

var svcSpecs = map[uint16]svcSpec{
	sys.SysRead:      {base: 2200, perKB: 400, res: sys.ResFile},
	sys.SysWrite:     {base: 2200, perKB: 400, res: sys.ResFile},
	sys.SysWritev:    {base: 2600, perKB: 280, res: sys.ResNet},
	sys.SysStat:      {base: 5600, perKB: 0, res: sys.ResFile},
	sys.SysOpen:      {base: 3600, perKB: 0, res: sys.ResFile},
	sys.SysClose:     {base: 1400, perKB: 0, res: sys.ResFile},
	sys.SysAccept:    {base: 3800, perKB: 0, res: sys.ResNet},
	sys.SysSelect:    {base: 3200, perKB: 0, res: sys.ResNet},
	sys.SysSmmap:     {base: 4200, perKB: 0, res: sys.ResMemory},
	sys.SysMunmap:    {base: 3600, perKB: 0, res: sys.ResMemory},
	sys.SysFork:      {base: 28000, perKB: 0, res: sys.ResProcess},
	sys.SysExec:      {base: 36000, perKB: 0, res: sys.ResProcess},
	sys.SysExit:      {base: 14000, perKB: 0, res: sys.ResProcess},
	sys.SysGetpid:    {base: 350, perKB: 0, res: sys.ResNone},
	sys.SysSigaction: {base: 700, perKB: 0, res: sys.ResNone},
	sys.SysIoctl:     {base: 1600, perKB: 0, res: sys.ResFile},
}

// dynLen returns the dynamic instruction count for one invocation.
func dynLen(req sys.Request) int {
	sp, ok := svcSpecs[req.Num]
	if !ok {
		return 800
	}
	n := sp.base
	if req.Bytes > 0 && sp.perKB > 0 {
		n += sp.perKB * ((req.Bytes + 1023) / 1024)
	}
	return n
}

// Fixed dynamic lengths of the non-syscall kernel paths.
const (
	palDTLBLen     = 36  // PAL dstream miss handler (fast path)
	vmFaultLen     = 520 // kernel VM: page allocation on first touch
	vmReclaimLen   = 1400
	palITLBLen     = 30
	palSysEntryLen = 90 // callsys PAL entry + kernel preamble trampoline
	preambleLen    = 260
	palIntrLen     = 70
	intrDevLen     = 900 // device interrupt processing (wakes netisr)
	clockIntrLen   = 350
	schedLen       = 1500 // context switch: pick thread, swap ASN state
	netisrFrameLen = 8000
	spinMeanLen    = 260  // mean spin-wait burst when a kernel lock is busy
	diskDriverLen  = 2600 // disk-driver + DMA-setup path on a buffer-cache miss // protocol stack work per frame
	idleChunk      = 24   // idle-loop instructions generated per refill
)

// regionWalker couples a static region with per-context dynamic walkers.
// Kernel code is reentrant and each hardware context runs its own kernel
// control flow (its own kernel stack), so walkers are per context — sharing
// one would interleave call/return chains across contexts, which no
// return-address stack could follow.
type regionWalker struct {
	reg *workload.Region
	ws  []*workload.Walker
}

// walker returns the dynamic walker this code uses on context ctx. Bounded
// traversals wrap it via Kernel.limit, which pools the Limit values.
func (rw *regionWalker) walker(ctx int) *workload.Walker {
	return rw.ws[ctx%len(rw.ws)]
}

// codebase holds every kernel and PAL code region.
type codebase struct {
	all []*workload.Region // every region, for prewarming
	// byName indexes every regionWalker by its (unique) region name, for
	// checkpoint serialization of walker state and stack-entry descriptors.
	byName map[string]*regionWalker

	palDTLB *regionWalker
	palITLB *regionWalker
	palSys  *regionWalker
	palIntr *regionWalker

	preamble *regionWalker
	spin     *regionWalker
	disk     *regionWalker
	vm       *regionWalker
	sched    *regionWalker
	netisr   *regionWalker
	intrDev  *regionWalker
	idle     *regionWalker
	other    *regionWalker

	services map[uint16]*regionWalker
}

// kernelMix is the instruction mix of kernel code, from the kernel columns
// of the paper's Tables 2 and 5 (loads ~16%, stores ~13%, branches ~16%
// with mostly conditional, little FP, a few synchronization ops for the
// kernel's spin locks).
func kernelMix() workload.Mix {
	return workload.Mix{
		Load: 0.17, Store: 0.12, FP: 0,
		Sync: 0.015,
		// Static shares are set below their Table 2/5 dynamic targets for
		// the transfer classes: the dynamic stream amplifies call/jump
		// sites (hot functions are *reached* through them).
		CondBr: 0.110, UncondBr: 0.012, IndirectJump: 0.015,
	}
}

// buildCodebase lays out kernel text, PAL text and kernel data, and builds
// all regions with per-context walkers.
func buildCodebase(r *rng.Rand, contexts int) *codebase {
	cb := &codebase{
		services: map[uint16]*regionWalker{},
		byName:   map[string]*regionWalker{},
	}

	kernText := uint64(mem.KernelTextBase)
	palText := uint64(mem.PALTextBase)
	kernData := uint64(mem.KernelDataBase)
	physData := uint64(mem.KernelPhysBase)

	carveText := func(base *uint64, insts int) uint64 {
		a := *base
		*base += uint64(insts)*4 + 0x2000 // pad to separate regions
		return a
	}
	sharedBases := map[string]uint64{}
	carveData := func(base *uint64, size uint64) uint64 {
		a := *base
		*base += size + 0x4000
		return a
	}

	build := func(name string, mode isa.Mode, static int, p workload.Profile, textBase *uint64) *regionWalker {
		p.Name = name
		p.Mode = mode
		p.StaticInsts = static
		layout := func(i int, spec workload.DataSpec) uint64 {
			if spec.ShareKey != "" {
				if b, ok := sharedBases[spec.ShareKey]; ok {
					return b
				}
			}
			var b uint64
			if spec.Physical {
				if physData+spec.Size >= mem.KernelPhysBase+mem.KernelPhysSize {
					physData = mem.KernelPhysBase // wrap: regions may share
				}
				b = carveData(&physData, spec.Size)
			} else {
				b = carveData(&kernData, spec.Size)
			}
			if spec.ShareKey != "" {
				sharedBases[spec.ShareKey] = b
			}
			return b
		}
		reg := workload.Build(p, carveText(textBase, static), layout, r.Split(uint64(len(cb.services))^uint64(static)))
		cb.all = append(cb.all, reg)
		rw := &regionWalker{reg: reg}
		for c := 0; c < contexts; c++ {
			w := workload.NewWalker(reg, r.Split(uint64(static)*31+uint64(c)))
			w.ResetEvery = uint64(8 * static)
			rw.ws = append(rw.ws, w)
		}
		cb.byName[name] = rw
		return rw
	}

	// Kernel-mode profile template. PhysFrac ~0.5 reproduces the paper's
	// observation that about half of kernel memory operations bypass the
	// TLB. Kernel branch sites are mostly forward diamonds, rarely taken.
	kp := func(data []workload.DataSpec) workload.Profile {
		return workload.Profile{
			Mix:            kernelMix(),
			CondTaken:      0.35,
			LoopFrac:       0.06,
			MeanTrips:      6,
			CallFrac:       0.55,
			SwitchTargets:  3,
			Data:           data,
			PhysFrac:       0.5,
			MeanDep:        5,
			HardBranchFrac: 0.06,
		}
	}
	// Shared kernel data: a virtual region (globally mapped) and a
	// physical region.
	sharedData := func(virtMB, virtHotKB, physMB, physHotKB int) []workload.DataSpec {
		return []workload.DataSpec{
			{Size: uint64(virtMB) << 20, Hot: uint64(virtHotKB) << 10, Weight: 1, SeqFrac: 0.3, ColdFrac: 0.06},
			{Size: uint64(physMB) << 20, Hot: uint64(physHotKB) << 10, Weight: 1, Physical: true, SeqFrac: 0.35, ColdFrac: 0.05},
		}
	}

	// PAL code: physically addressed data only, straight-line style.
	pp := func() workload.Profile {
		return workload.Profile{
			Mix: workload.Mix{
				Load: 0.18, Store: 0.10,
				CondBr: 0.08, UncondBr: 0.02, IndirectJump: 0.015,
			},
			CondTaken:     0.3,
			LoopFrac:      0.02,
			MeanTrips:     3,
			CallFrac:      0.3,
			SwitchTargets: 3,
			Data: []workload.DataSpec{
				{Size: 512 << 10, Hot: 8 << 10, Weight: 1, Physical: true, SeqFrac: 0.3, ColdFrac: 0.04},
			},
			PhysFrac: 1,
			MeanDep:  2,
		}
	}

	cb.palDTLB = build("pal-dtlb", isa.PAL, 160, pp(), &palText)
	cb.palITLB = build("pal-itlb", isa.PAL, 128, pp(), &palText)
	cb.palSys = build("pal-callsys", isa.PAL, 220, pp(), &palText)
	cb.palIntr = build("pal-interrupt", isa.PAL, 200, pp(), &palText)

	cb.preamble = build("preamble", isa.Kernel, 4000, kp(sharedData(1, 4, 1, 4)), &kernText)
	// The VM layer runs on the TLB-miss path: like the real PAL/PTE walk,
	// it must reference its data physically, or handling one fault could
	// raise another without bound.
	vmProf := kp([]workload.DataSpec{
		{Size: 2 << 20, Hot: 8 << 10, Weight: 1, Physical: true, SeqFrac: 0.4, ColdFrac: 0.04},
	})
	vmProf.PhysFrac = 1
	cb.vm = build("vm", isa.Kernel, 16000, vmProf, &kernText)
	cb.sched = build("sched", isa.Kernel, 12000, kp(sharedData(1, 4, 1, 4)), &kernText)
	cb.netisr = build("netisr", isa.Kernel, 30000, kp(sharedData(1, 8, 1, 8)), &kernText)
	cb.intrDev = build("intr-dev", isa.Kernel, 7000, kp(sharedData(1, 4, 1, 4)), &kernText)
	cb.other = build("other", isa.Kernel, 16000, kp(sharedData(1, 4, 1, 4)), &kernText)

	// Spin-lock wait loop: load-locked/store-conditional retries over a
	// handful of lock words.
	spinProf := workload.Profile{
		Mix:       workload.Mix{Load: 0.25, Sync: 0.25, CondBr: 0.2},
		CondTaken: 0.9,
		LoopFrac:  0.9,
		MeanTrips: 30,
		Data: []workload.DataSpec{
			{Size: 4 << 10, Hot: 512, Weight: 1, Physical: true},
		},
		PhysFrac: 1,
		MeanDep:  2,
	}
	cb.spin = build("spinlock", isa.Kernel, 64, spinProf, &kernText)
	// The disk driver: executed in full on buffer-cache misses even though
	// the simulated disk itself has zero latency (§2.2.1).
	cb.disk = build("disk-driver", isa.Kernel, 9000, kp(sharedData(1, 8, 1, 8)), &kernText)

	// The idle loop: a tiny spin over a few kernel lines.
	idleProf := workload.Profile{
		Mix:       workload.Mix{Load: 0.1, CondBr: 0.2},
		CondTaken: 0.9,
		LoopFrac:  0.9,
		MeanTrips: 50,
		Data: []workload.DataSpec{
			{Size: 8 << 10, Hot: 1 << 10, Weight: 1, Physical: true},
		},
		PhysFrac: 1,
		MeanDep:  2,
	}
	cb.idle = build("idle", isa.Idle, 48, idleProf, &kernText)

	// System-call services. The file-oriented ones share a large
	// physically-addressed buffer-cache region (the paper's Apache file
	// set lives in the OS file cache); network ones a socket-buffer
	// region.
	// One buffer cache and one socket-buffer pool, shared by every service
	// (a kernel has a single instance of each).
	fileData := []workload.DataSpec{
		{Size: 1 << 20, Hot: 8 << 10, Weight: 1, SeqFrac: 0.3, ColdFrac: 0.06, ShareKey: "fs-virt"},
		{Size: 3 << 20, Hot: 8 << 10, Weight: 2.2, Physical: true, SeqFrac: 0.5, ColdFrac: 0.03, Stream: true, ShareKey: "bufcache"},
	}
	netData := []workload.DataSpec{
		{Size: 1 << 20, Hot: 8 << 10, Weight: 1, SeqFrac: 0.3, ColdFrac: 0.06, ShareKey: "net-virt"},
		{Size: 2 << 20, Hot: 8 << 10, Weight: 2, Physical: true, SeqFrac: 0.5, ColdFrac: 0.03, Stream: true, ShareKey: "sockbuf"},
	}
	staticSize := map[uint16]int{
		sys.SysRead: 26000, sys.SysWrite: 26000, sys.SysWritev: 28000,
		sys.SysStat: 22000, sys.SysOpen: 24000, sys.SysClose: 10000,
		sys.SysAccept: 24000, sys.SysSelect: 20000,
		sys.SysSmmap: 18000, sys.SysMunmap: 16000,
		sys.SysFork: 36000, sys.SysExec: 44000, sys.SysExit: 20000,
		sys.SysGetpid: 1500, sys.SysSigaction: 4000, sys.SysIoctl: 8000,
	}
	for no := uint16(1); no < sys.NumSyscalls; no++ {
		data := fileData
		if sp := svcSpecs[no]; sp.res == sys.ResNet {
			data = netData
		}
		p := kp(data)
		static := staticSize[no]
		if static == 0 {
			static = 4000
		}
		cb.services[no] = build("sys-"+sys.Name(no), isa.Kernel, static, p, &kernText)
	}
	return cb
}
