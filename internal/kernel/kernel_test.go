package kernel

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/sys"
	"repro/internal/workload"
)

// userProgram builds a small looping user program that computes and issues
// the scripted syscalls.
func userProgram(name string, pid int, seed uint64, script func(call int) workload.Step) *workload.ScriptProgram {
	prof := workload.Profile{
		Name:        name,
		Mode:        isa.User,
		StaticInsts: 3000,
		Mix: workload.Mix{
			Load: 0.2, Store: 0.1,
			CondBr: 0.1, UncondBr: 0.03, IndirectJump: 0.02,
		},
		CondTaken: 0.55, LoopFrac: 0.3, MeanTrips: 15,
		CallFrac: 0.5, SwitchTargets: 4,
		Data: []workload.DataSpec{
			{Size: 256 << 10, Hot: 64 << 10, Weight: 1, SeqFrac: 0.3, ColdFrac: 0.1},
		},
		MeanDep: 5,
	}
	base := uint64(mem.UserTextBase) + uint64(pid)*mem.PIDStride
	layout := func(i int, spec workload.DataSpec) uint64 {
		return uint64(mem.UserDataBase) + uint64(pid)*mem.PIDStride + uint64(i)*0x1000_0000
	}
	r := rng.New(seed)
	reg := workload.Build(prof, base, layout, r)
	calls := 0
	return &workload.ScriptProgram{
		ProgName: name,
		W:        workload.NewWalker(reg, r.Split(2)),
		NextFn: func() workload.Step {
			calls++
			return script(calls)
		},
	}
}

func computeOnly(n uint64) func(int) workload.Step {
	return func(int) workload.Step { return workload.Step{Kind: workload.StepRun, N: n} }
}

// sim couples a kernel and engine for tests.
func sim(t *testing.T, cfg Config, pcfg pipeline.Config) (*Kernel, *pipeline.Engine) {
	t.Helper()
	k := New(cfg)
	e := pipeline.New(pcfg, k, cache.NewHierarchy(cache.DefaultHierConfig()))
	k.AttachEngine(e)
	return k, e
}

func TestComputeProgramRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CyclesPer10ms = 50_000
	k, e := sim(t, cfg, pipeline.SMTConfig())
	k.AddProgram(userProgram("p1", 1, 7, computeOnly(5000)))
	e.Run(300_000)
	e.CheckInvariants()
	if e.Metrics.Retired < 10_000 {
		t.Fatalf("retired only %d", e.Metrics.Retired)
	}
	if e.Mix.Total(false) == 0 {
		t.Fatal("no user instructions retired")
	}
	if e.Mix.Total(true) == 0 {
		t.Fatal("no kernel instructions retired (TLB handlers expected)")
	}
	if e.Metrics.DTLBTraps == 0 || e.Metrics.ITLBTraps == 0 {
		t.Fatalf("no TLB traps: d=%d i=%d", e.Metrics.DTLBTraps, e.Metrics.ITLBTraps)
	}
	if k.ClockInterrupts == 0 {
		t.Fatal("no clock interrupts")
	}
	// Other contexts idle.
	if e.Cycles.ByCat[sys.CatIdle] == 0 {
		t.Fatal("no idle cycles on unused contexts")
	}
}

func TestSyscallsExecuteKernelCode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CyclesPer10ms = 1 << 40 // no interrupts
	k, e := sim(t, cfg, pipeline.SMTConfig())
	k.AddProgram(userProgram("p1", 1, 9, func(call int) workload.Step {
		if call%2 == 1 {
			return workload.Step{Kind: workload.StepRun, N: 800}
		}
		return workload.Step{Kind: workload.StepSyscall, Req: sys.Request{
			Num: sys.SysRead, Bytes: 8192, Resource: sys.ResFile,
		}}
	}))
	e.Run(2_000_000)
	if k.SyscallCount[sys.SysRead] < 3 {
		t.Fatalf("only %d reads serviced", k.SyscallCount[sys.SysRead])
	}
	if e.Metrics.SyscallsSeen == 0 {
		t.Fatal("pipeline saw no syscall instructions")
	}
	if e.Cycles.ByCat[sys.CatSyscall] == 0 {
		t.Fatal("no cycles attributed to syscalls")
	}
	if e.Cycles.BySyscall[sys.SysRead] == 0 {
		t.Fatal("no cycles attributed to read")
	}
	// Kernel mode should dominate the busy context: each read costs ~6.7k
	// kernel instructions vs 800 user (the other 7 contexts sit idle, so
	// compare within non-idle cycles).
	nonIdle := e.Cycles.Total - e.Cycles.ByCat[sys.CatIdle]
	kern := e.Cycles.ByMode[isa.Kernel] + e.Cycles.ByMode[isa.PAL]
	if nonIdle == 0 || float64(kern)/float64(nonIdle) < 0.4 {
		t.Fatalf("kernel share of busy cycles = %d/%d, expected high", kern, nonIdle)
	}
}

func TestMultiprogramSchedulingAndPreemption(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CyclesPer10ms = 100_000
	cfg.QuantumInsts = 2_000
	pcfg := pipeline.SMTConfig()
	pcfg.Contexts = 2
	cfg.Contexts = 2
	k, e := sim(t, cfg, pcfg)
	var ths []*Thread
	for i := 0; i < 6; i++ {
		ths = append(ths, k.AddProgram(userProgram("p", i+1, uint64(20+i), computeOnly(1000))))
	}
	e.Run(1_500_000)
	if k.Preemptions == 0 {
		t.Fatal("no preemptions with 6 programs on 2 contexts")
	}
	if k.ContextSwitches == 0 {
		t.Fatal("no context switches")
	}
	_ = ths
	if e.Cycles.ByCat[sys.CatSched] == 0 {
		t.Fatal("no scheduler cycles")
	}
}

func TestExitReleasesResources(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CyclesPer10ms = 1 << 40
	k, e := sim(t, cfg, pipeline.SMTConfig())
	done := false
	k.AddProgram(userProgram("p1", 1, 31, func(call int) workload.Step {
		if call == 1 {
			return workload.Step{Kind: workload.StepRun, N: 3000}
		}
		done = true
		return workload.Step{Kind: workload.StepExit}
	}))
	e.Run(800_000)
	if !done {
		t.Fatal("program never reached exit")
	}
	if k.SyscallCount[sys.SysExit] != 1 {
		t.Fatalf("exit count = %d", k.SyscallCount[sys.SysExit])
	}
	var exited *Thread
	for _, th := range k.Threads() {
		if th.kind == tkUser {
			exited = th
		}
	}
	if exited.state != tsExited {
		t.Fatal("thread not exited")
	}
	if k.Mem.MappedPages(exited.pid) != 0 {
		t.Fatal("pages not released on exit")
	}
}

// scriptNIC injects frames at fixed ticks.
type scriptNIC struct {
	arrivals map[uint64][]Frame // keyed by tick count
	ticks    uint64
	sent     []Frame
}

func (n *scriptNIC) Tick(now uint64) []Frame {
	n.ticks++
	return n.arrivals[n.ticks]
}

func (n *scriptNIC) Transmit(fr Frame, now uint64) { n.sent = append(n.sent, fr) }

func TestNetworkAcceptReadWrite(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CyclesPer10ms = 20_000
	k, e := sim(t, cfg, pipeline.SMTConfig())
	nic := &scriptNIC{arrivals: map[uint64][]Frame{
		2: {{Conn: 100, Bytes: 300, Open: true}},
	}}
	k.SetNIC(nic)

	var fd int
	state := 0
	k.AddProgram(userProgram("srv", 1, 44, func(call int) workload.Step {
		switch state {
		case 0:
			state = 1
			return workload.Step{Kind: workload.StepSyscall, Req: sys.Request{
				Num: sys.SysAccept, Resource: sys.ResNet, FD: ListenFD, Blocking: true,
			}}
		case 2:
			state = 3
			return workload.Step{Kind: workload.StepSyscall, Req: sys.Request{
				Num: sys.SysRead, Resource: sys.ResNet, FD: fd, Blocking: true,
			}}
		case 4:
			state = 5
			return workload.Step{Kind: workload.StepSyscall, Req: sys.Request{
				Num: sys.SysWritev, Resource: sys.ResNet, FD: fd, Bytes: 4096,
			}}
		default:
			return workload.Step{Kind: workload.StepRun, N: 500}
		}
	}))
	// Advance program state from syscall results.
	prog := k.Threads()[len(k.Threads())-1].prog.(*workload.ScriptProgram)
	prog.ResultFn = func(req sys.Request, result int) {
		switch req.Num {
		case sys.SysAccept:
			fd = result
			state = 2
		case sys.SysRead:
			if result != 300 {
				t.Errorf("read result = %d, want 300", result)
			}
			state = 4
		}
	}

	e.Run(1_500_000)
	if k.NetInterrupts == 0 {
		t.Fatal("no network interrupts")
	}
	if k.net.Delivered == 0 {
		t.Fatal("no frames delivered by netisr")
	}
	if e.Cycles.ByCat[sys.CatNetisr] == 0 {
		t.Fatal("no netisr cycles attributed")
	}
	if state < 5 {
		t.Fatalf("server stalled in state %d", state)
	}
	if len(nic.sent) == 0 || nic.sent[0].Bytes != 4096 {
		t.Fatalf("response not transmitted: %v", nic.sent)
	}
}

func TestAppOnlyModeNoKernelInstructions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AppOnly = true
	cfg.CyclesPer10ms = 50_000
	pcfg := pipeline.SMTConfig()
	pcfg.AppOnly = true
	k, e := sim(t, cfg, pcfg)
	k.AddProgram(userProgram("p1", 1, 55, func(call int) workload.Step {
		if call%3 == 0 {
			return workload.Step{Kind: workload.StepSyscall, Req: sys.Request{
				Num: sys.SysRead, Bytes: 4096, Resource: sys.ResFile,
			}}
		}
		return workload.Step{Kind: workload.StepRun, N: 1000}
	}))
	e.Run(100_000)
	if e.Mix.Total(true) != 0 {
		t.Fatalf("app-only mode retired %d kernel instructions", e.Mix.Total(true))
	}
	if k.SyscallCount[sys.SysRead] == 0 {
		t.Fatal("syscalls not serviced instantly")
	}
	if e.Metrics.Retired == 0 {
		t.Fatal("nothing retired")
	}
	if e.Metrics.DTLBTraps != 0 || e.Metrics.ITLBTraps != 0 {
		t.Fatal("app-only mode trapped")
	}
}

func TestDeterministicSimulation(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		cfg := DefaultConfig()
		cfg.CyclesPer10ms = 30_000
		k, e := sim(t, cfg, pipeline.SMTConfig())
		for i := 0; i < 3; i++ {
			k.AddProgram(userProgram("p", i+1, uint64(70+i), func(call int) workload.Step {
				if call%4 == 0 {
					return workload.Step{Kind: workload.StepSyscall, Req: sys.Request{
						Num: sys.SysStat, Resource: sys.ResFile,
					}}
				}
				return workload.Step{Kind: workload.StepRun, N: 700}
			}))
		}
		e.Run(150_000)
		return e.Metrics.Retired, e.Cycles.ByMode[isa.Kernel], e.Metrics.Squashed
	}
	r1, km1, sq1 := run()
	r2, km2, sq2 := run()
	if r1 != r2 || km1 != km2 || sq1 != sq2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", r1, km1, sq1, r2, km2, sq2)
	}
}

func TestASNRecycling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxASN = 4
	k, e := sim(t, cfg, pipeline.SMTConfig())
	for i := 0; i < 10; i++ {
		k.AddProgram(userProgram("p", i+1, uint64(100+i), computeOnly(100)))
	}
	_ = e
	if k.ASNRecycles == 0 {
		t.Fatal("no ASN recycling with MaxASN=4 and 10 processes")
	}
	// ASNs stay within range.
	for _, th := range k.Threads() {
		if th.kind == tkUser && (th.asn == 0 || th.asn > 4) {
			t.Fatalf("ASN %d out of range", th.asn)
		}
	}
}
