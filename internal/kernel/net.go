package kernel

import (
	"repro/internal/mem"
	"repro/internal/sys"
)

// Frame is one unit of network traffic crossing the simulated NIC (a
// request or response segment on a connection).
type Frame struct {
	// Conn identifies the connection.
	Conn int
	// Bytes is the payload size.
	Bytes int
	// Open marks a new connection (SYN); Close tears it down (FIN).
	Open, Close bool
	// Ack marks a bare acknowledgment: protocol-stack work with no data
	// to deliver.
	Ack bool
	// Corrupt marks a frame damaged in transit (fault injection): the
	// receiver pays the protocol-stack cost, then discards it.
	Corrupt bool
}

// NIC is the device interface the network simulator implements. The kernel
// polls it at the 10 ms interrupt granularity (§2.3: the simulated network
// cards interrupt the CPUs at a time granularity of 10 ms) and transmits
// server responses through it.
type NIC interface {
	// Tick advances the network to cycle now and returns the frames that
	// arrived at the host since the last tick.
	Tick(now uint64) []Frame
	// Transmit sends a frame from the host toward the clients.
	Transmit(fr Frame, now uint64)
}

// socket is a kernel socket: either the listen socket (accept queue) or a
// connection socket (byte stream).
type socket struct {
	id      int
	listen  bool
	conn    int
	acceptQ []int
	data    int
	closed  bool
	waiters []*Thread
	// owner is the tid of the thread that accepted the socket (0 = none);
	// the crash-cleanup path uses it to reap a dead worker's descriptors.
	owner uint32
}

// netState is the kernel's network stack state.
type netState struct {
	nic     NIC
	socks   []*socket
	byConn  map[int]int // connection id -> socket id
	pending []Frame     // frames awaiting netisr processing
	now     uint64
	// Delivered counts frames fully processed by netisr.
	Delivered uint64
	// Dropped counts frames for unknown connections or discarded as
	// corrupt after protocol processing.
	Dropped uint64
}

func newNetState() *netState {
	ns := &netState{byConn: map[int]int{}}
	// Socket 0 is the server's listen socket.
	ns.socks = append(ns.socks, &socket{id: 0, listen: true})
	return ns
}

func (ns *netState) tick(now uint64) []Frame {
	ns.now = now
	if ns.nic == nil {
		return nil
	}
	return ns.nic.Tick(now)
}

func (ns *netState) sock(id int) *socket {
	if id < 0 || id >= len(ns.socks) {
		return nil
	}
	return ns.socks[id]
}

// SetNIC attaches the network simulator.
func (k *Kernel) SetNIC(n NIC) { k.net.nic = n }

// ConnOf returns the connection id behind a socket file descriptor (-1 if
// unknown); workload models use it to ask the client driver what a request
// is for.
func (k *Kernel) ConnOf(fd int) int {
	s := k.net.sock(fd)
	if s == nil || s.listen {
		return -1
	}
	return s.conn
}

// ListenFD is the file descriptor of the server's listen socket.
const ListenFD = 0

// netisrBatch is the number of frames one netisr activation processes.
const netisrBatch = 4

// netisrStep pushes one batch of protocol-stack work for a netisr thread;
// it returns false when no frames are pending.
func (k *Kernel) netisrStep(ctx int, t *Thread) bool {
	ns := k.net
	if len(ns.pending) == 0 {
		return false
	}
	n := len(ns.pending)
	if n > netisrBatch {
		n = netisrBatch
	}
	batch := make([]Frame, n)
	copy(batch, ns.pending[:n])
	ns.pending = ns.pending[n:]
	f := &k.feeds[ctx]
	f.push(genEntry{
		g:    k.limit(k.code.netisr, ctx, n*netisrFrameLen),
		tmpl: kthreadTmpl(t.tid, sys.CatNetisr),
		done: action{Kind: actNetisrDone, TID: t.tid, Batch: batch},
	})
	k.pushLockAcquire(ctx, t, sys.ResNet, sys.CatNetisr, 0)
	return true
}

// deliverFrames demuxes processed frames into sockets and wakes waiters.
func (k *Kernel) deliverFrames(frames []Frame) {
	ns := k.net
	for _, fr := range frames {
		switch {
		case fr.Corrupt:
			// Damaged in transit: the stack walked the frame and dropped
			// it at the checksum.
			ns.Dropped++
		case fr.Ack:
			// Pure protocol work; nothing delivered to a socket.
		case fr.Open && !connKnown(ns, fr.Conn):
			s := &socket{id: len(ns.socks), conn: fr.Conn, data: fr.Bytes}
			ns.socks = append(ns.socks, s)
			ns.byConn[fr.Conn] = s.id
			ls := ns.socks[ListenFD]
			ls.acceptQ = append(ls.acceptQ, s.id)
			if w := popWaiter(ls); w != nil {
				k.completeAccept(w, ls)
			}
		default:
			sid, ok := ns.byConn[fr.Conn]
			if !ok {
				ns.Dropped++
				continue
			}
			s := ns.socks[sid]
			if fr.Close {
				s.closed = true
			} else {
				s.data += fr.Bytes
			}
			if w := popWaiter(s); w != nil {
				k.completeRead(w, s)
			}
		}
		ns.Delivered++
	}
}

// connKnown reports whether a connection already has a socket (a
// retransmitted SYN under fault injection must not open a duplicate; it is
// demuxed as data instead).
func connKnown(ns *netState, conn int) bool {
	_, ok := ns.byConn[conn]
	return ok
}

// reapSockets closes every connection socket owned by a dead thread (the
// kernel closing a crashed process's descriptors; TCP sends the reset the
// client sees) and removes the thread from all waiter queues.
func (k *Kernel) reapSockets(t *Thread) {
	ns := k.net
	for _, s := range ns.socks {
		if len(s.waiters) > 0 {
			kept := s.waiters[:0]
			for _, w := range s.waiters {
				if w != t {
					kept = append(kept, w)
				}
			}
			s.waiters = kept
		}
		if s.listen || s.closed || s.owner != t.tid {
			continue
		}
		s.closed = true
		delete(ns.byConn, s.conn)
		if ns.nic != nil {
			ns.nic.Transmit(Frame{Conn: s.conn, Close: true}, ns.now)
		}
	}
}

// popWaiter removes and returns the oldest thread sleeping on a socket.
func popWaiter(s *socket) *Thread {
	if len(s.waiters) == 0 {
		return nil
	}
	w := s.waiters[0]
	s.waiters = s.waiters[1:]
	return w
}

// completeAccept finishes a blocked accept: pop a pending connection.
func (k *Kernel) completeAccept(t *Thread, ls *socket) {
	if len(ls.acceptQ) == 0 {
		ls.waiters = append(ls.waiters, t)
		return
	}
	sid := ls.acceptQ[0]
	ls.acceptQ = ls.acceptQ[1:]
	k.net.socks[sid].owner = t.tid
	t.wakeResult = sid
	k.wake(t)
}

// completeRead finishes a blocked read: report available bytes (0 = peer
// closed).
func (k *Kernel) completeRead(t *Thread, s *socket) {
	n := s.data
	s.data = 0
	if n == 0 && !s.closed {
		s.waiters = append(s.waiters, t)
		return
	}
	t.wakeResult = n
	k.wake(t)
}

// syscallEffect applies a system call's semantic effect and returns its
// result, or block=true if the calling thread must sleep.
func (k *Kernel) syscallEffect(t *Thread, req sys.Request) (res int, block bool) {
	ns := k.net
	switch req.Num {
	case sys.SysAccept:
		ls := ns.sock(ListenFD)
		if ls == nil {
			return -1, false
		}
		if len(ls.acceptQ) > 0 {
			sid := ls.acceptQ[0]
			ls.acceptQ = ls.acceptQ[1:]
			ns.socks[sid].owner = t.tid
			return sid, false
		}
		ls.waiters = append(ls.waiters, t)
		return 0, true
	case sys.SysSelect:
		// Used non-blocking by the server model: report readiness.
		ls := ns.sock(ListenFD)
		if ls != nil && len(ls.acceptQ) > 0 {
			return 1, false
		}
		if req.Blocking {
			ls.waiters = append(ls.waiters, t)
			return 0, true
		}
		return 0, false
	case sys.SysRead:
		if req.Resource == sys.ResNet {
			s := ns.sock(req.FD)
			if s == nil {
				return -1, false
			}
			if s.data > 0 || s.closed {
				n := s.data
				s.data = 0
				return n, false
			}
			if !req.Blocking {
				return 0, false
			}
			s.waiters = append(s.waiters, t)
			return 0, true
		}
		return req.Bytes, false
	case sys.SysWrite, sys.SysWritev:
		if req.Resource == sys.ResNet {
			s := ns.sock(req.FD)
			if s != nil && ns.nic != nil {
				ns.nic.Transmit(Frame{Conn: s.conn, Bytes: req.Bytes}, ns.now)
			}
		}
		return req.Bytes, false
	case sys.SysClose:
		if req.Resource == sys.ResNet {
			s := ns.sock(req.FD)
			if s != nil {
				s.closed = true
				delete(ns.byConn, s.conn)
				if ns.nic != nil {
					ns.nic.Transmit(Frame{Conn: s.conn, Close: true}, ns.now)
				}
			}
		}
		return 0, false
	case sys.SysSmmap:
		// Mapping is lazy (first touch faults); nothing to do eagerly.
		return 0, false
	case sys.SysMunmap:
		// Unmap the page, with the TLB and cache invalidations the SMT
		// port performs in place of an SMP shootdown (§2.2.2).
		if req.Addr != 0 {
			if paddr, ok := k.Mem.Translate(t.pid, req.Addr); ok {
				base := paddr &^ uint64(mem.PageMask)
				k.hier.FlushDRange(base, mem.PageSize)
			}
			k.Mem.Unmap(t.pid, req.Addr)
			k.dtlb.InvalidatePage(t.asn, req.Addr)
			k.itlb.InvalidatePage(t.asn, req.Addr)
		}
		return 0, false
	case sys.SysStat, sys.SysOpen, sys.SysIoctl, sys.SysGetpid, sys.SysSigaction:
		return 0, false
	case sys.SysFork, sys.SysExec:
		return int(t.pid), false
	}
	return 0, false
}
