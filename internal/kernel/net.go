package kernel

import (
	"slices"

	"repro/internal/flatmap"
	"repro/internal/mem"
	"repro/internal/sys"
	"repro/internal/timerwheel"
)

// Frame is one unit of network traffic crossing the simulated NIC (a
// request or response segment on a connection).
type Frame struct {
	// Conn identifies the connection.
	Conn int
	// Bytes is the payload size.
	Bytes int
	// Open marks a new connection (SYN); Close tears it down (FIN).
	Open, Close bool
	// Ack marks a bare acknowledgment: protocol-stack work with no data
	// to deliver.
	Ack bool
	// Corrupt marks a frame damaged in transit (fault injection): the
	// receiver pays the protocol-stack cost, then discards it.
	Corrupt bool
}

// NIC is the device interface the network simulator implements. The kernel
// polls it at the 10 ms interrupt granularity (§2.3: the simulated network
// cards interrupt the CPUs at a time granularity of 10 ms) and transmits
// server responses through it.
type NIC interface {
	// Tick advances the network to cycle now and returns the frames that
	// arrived at the host since the last tick.
	Tick(now uint64) []Frame
	// Transmit sends a frame from the host toward the clients.
	Transmit(fr Frame, now uint64)
}

// socket is a kernel socket: either the listen socket (accept queue) or a
// connection socket (byte stream).
type socket struct {
	id      int
	listen  bool
	conn    int
	acceptQ []int
	// acceptHead indexes the first live acceptQ entry: accepts advance the
	// head instead of re-slicing so the consumed prefix of the backing
	// array does not leak; the queue compacts amortized (same pattern as
	// ctxFeed in feed.go).
	acceptHead int //detlint:ignore snapshotcomplete normalized away: snapshots serialize acceptQ[acceptHead:]
	data       int
	closed     bool
	waiters    []*Thread
	// owner is the tid of the thread that accepted the socket (0 = none);
	// the crash-cleanup path uses it to reap a dead worker's descriptors.
	owner uint32
	// lastActive is the network tick of the socket's last activity (data
	// arrival, read, write, accept); the idle reaper keys off it.
	lastActive uint64
	// reqBytes counts request bytes received since the last response was
	// written; a reaped socket with reqBytes > 0 (or never served) is a
	// stalled request — slowloris — rather than an idle keep-alive.
	reqBytes int
	// served records that at least one response was written.
	served bool
	// free marks a recycled socket-table slot (on the sockFree list,
	// awaiting reuse by the next connection).
	free bool
	// ownPrev/ownNext link the socket into its owning thread's intrusive
	// owned-socket list (crash teardown walks it in O(owned) instead of
	// scanning the table). 0 is the end-of-list sentinel: socket 0 is the
	// listen socket, which is never owned. ownerT caches the owning
	// Thread so unlinking needs no tid lookup. Derived state: rebuilt
	// from socket owners on restore, never serialized.
	ownPrev, ownNext int
	ownerT           *Thread
	// idleWakeAt is the deadline of the socket's live idle-wheel entry
	// (0 = none); a fired entry whose Due mismatches is stale. The wheel
	// re-arms lazily: activity only moves lastActive, and a fire before
	// lastActive+timeout reschedules instead of reaping. Derived state.
	idleWakeAt uint64
	// dirty marks the socket as having pending readiness work on the
	// per-batch dirty ring (epoll-style deferred waiter wakeups). Always
	// false between deliverFrames batches.
	dirty bool
}

// acceptLen returns the number of pending (unaccepted) connections.
func (s *socket) acceptLen() int { return len(s.acceptQ) - s.acceptHead }

// popAccept removes and returns the oldest pending connection. The consumed
// prefix is reclaimed amortized: the queue resets when it drains and
// compacts once the dead prefix outweighs the live tail.
func (s *socket) popAccept() int {
	sid := s.acceptQ[s.acceptHead]
	s.acceptHead++
	if s.acceptHead == len(s.acceptQ) {
		s.acceptQ = s.acceptQ[:0]
		s.acceptHead = 0
	} else if s.acceptHead >= 64 && s.acceptHead >= len(s.acceptQ)-s.acceptHead {
		n := copy(s.acceptQ, s.acceptQ[s.acceptHead:])
		s.acceptQ = s.acceptQ[:n]
		s.acceptHead = 0
	}
	return sid
}

// netState is the kernel's network stack state.
type netState struct {
	nic   NIC
	socks []*socket
	// byConn maps connection id -> socket id (flat free-listed table;
	// serialized as a conn-sorted pair list, as the map predecessor was).
	byConn *flatmap.IntMap
	// sockFree is the LIFO freelist of recycled socket-table slots; the
	// table is flat and free-listed so socket allocation is bounded and
	// deterministic.
	sockFree []int
	pending  []Frame // frames awaiting netisr processing
	now      uint64
	// ticks counts 10 ms network ticks; idle timers are expressed in it.
	ticks uint64 //detlint:ignore counterflow tick clock for idle timers, not a metric
	// idleWheel holds one entry per idle-timeout candidate socket (stamped
	// via socket.idleWakeAt); reapIdle advances it each tick instead of
	// scanning the socket table. Derived state: rebuilt on restore.
	idleWheel *timerwheel.Wheel
	// idleDue is reapIdle's per-tick scratch of sockets due for reaping,
	// sorted ascending so teardown order matches the old table scan.
	idleDue []int32
	// dirtyRing is deliverFrames' per-batch ring of sockets with deferred
	// readiness wakeups (drained in mark order; empty between batches).
	dirtyRing []int32
	// reapScratch is reapSockets' per-crash scratch of owned socket ids,
	// sorted ascending to match the old table scan's teardown order.
	reapScratch []int32
	// Delivered counts frames fully processed by netisr.
	Delivered uint64
	// Dropped counts frames for unknown connections or discarded as
	// corrupt after protocol processing.
	Dropped uint64
}

func newNetState() *netState {
	ns := &netState{byConn: flatmap.New(0), idleWheel: timerwheel.New(0)}
	// Socket 0 is the server's listen socket.
	ns.socks = append(ns.socks, &socket{id: 0, listen: true})
	return ns
}

func (ns *netState) tick(now uint64) []Frame {
	ns.now = now
	ns.ticks++
	if ns.nic == nil {
		return nil
	}
	return ns.nic.Tick(now)
}

func (ns *netState) sock(id int) *socket {
	if id < 0 || id >= len(ns.socks) {
		return nil
	}
	return ns.socks[id]
}

// sockInUse returns the number of live (non-free) socket-table entries.
func (ns *netState) sockInUse() int { return len(ns.socks) - len(ns.sockFree) }

// allocSocket hands out a socket-table entry: a recycled slot if one is
// free, else a fresh one while the table has room under the effective
// capacity. nil means the table is exhausted (the stack's ENOBUFS).
func (k *Kernel) allocSocket() *socket {
	ns := k.net
	if ns.sockInUse() >= k.sockCapEff {
		return nil
	}
	if n := len(ns.sockFree); n > 0 {
		id := ns.sockFree[n-1]
		ns.sockFree = ns.sockFree[:n-1]
		s := ns.socks[id]
		*s = socket{id: id}
		return s
	}
	if len(ns.socks) >= k.cfg.SocketTableSize {
		return nil
	}
	s := &socket{id: len(ns.socks)} //detlint:ignore hotalloc one-time slot growth; every later alloc reuses the freelist
	ns.socks = append(ns.socks, s)
	return s
}

// freeSocket recycles a closed connection socket's table slot. The listen
// socket is never recycled, and a slot with sleepers cannot be (they would
// wake on a stranger's socket).
func (ns *netState) freeSocket(s *socket) {
	if s.listen || s.free || len(s.waiters) > 0 {
		return
	}
	ns.unlinkOwned(s)
	id := s.id
	*s = socket{id: id, free: true}
	ns.sockFree = append(ns.sockFree, id)
}

// linkOwned pushes a just-accepted socket onto its owner's intrusive
// owned-socket list (head insert; teardown sorts, so list order is free).
func (ns *netState) linkOwned(t *Thread, s *socket) {
	s.ownerT = t
	s.ownPrev = 0
	s.ownNext = t.ownHead
	if t.ownHead != 0 {
		ns.socks[t.ownHead].ownPrev = s.id
	}
	t.ownHead = s.id
}

// unlinkOwned removes a socket from its owner's list (no-op if unowned).
func (ns *netState) unlinkOwned(s *socket) {
	t := s.ownerT
	if t == nil {
		return
	}
	if s.ownPrev != 0 {
		ns.socks[s.ownPrev].ownNext = s.ownNext
	} else if t.ownHead == s.id {
		t.ownHead = s.ownNext
	}
	if s.ownNext != 0 {
		ns.socks[s.ownNext].ownPrev = s.ownPrev
	}
	s.ownerT = nil
	s.ownPrev, s.ownNext = 0, 0
}

// armIdle schedules (or keeps) an idle-timeout wheel entry for an accepted
// socket. Later activity does not reschedule — the fire handler re-arms
// lazily off lastActive — so each socket keeps at most one live entry.
func (k *Kernel) armIdle(s *socket) {
	timeout := k.cfg.IdleTimeoutTicks
	if timeout == 0 || s.listen {
		return
	}
	d := s.lastActive + timeout
	if s.idleWakeAt != 0 && s.idleWakeAt <= d {
		return
	}
	s.idleWakeAt = d
	k.net.idleWheel.Schedule(d, int32(s.id))
}

// SetNIC attaches the network simulator.
func (k *Kernel) SetNIC(n NIC) { k.net.nic = n }

// NICStats reports the network device's frame counters — delivered to the
// protocol stack by netisr, and dropped (unknown connection or corrupt) —
// for report snapshots.
func (k *Kernel) NICStats() (delivered, dropped uint64) {
	return k.net.Delivered, k.net.Dropped
}

// ConnOf returns the connection id behind a socket file descriptor (-1 if
// unknown); workload models use it to ask the client driver what a request
// is for.
func (k *Kernel) ConnOf(fd int) int {
	s := k.net.sock(fd)
	if s == nil || s.listen {
		return -1
	}
	return s.conn
}

// ListenFD is the file descriptor of the server's listen socket.
const ListenFD = 0

// netisrBatch is the number of frames one netisr activation processes.
const netisrBatch = 4

// netisrStep pushes one batch of protocol-stack work for a netisr thread;
// it returns false when no frames are pending.
func (k *Kernel) netisrStep(ctx int, t *Thread) bool {
	ns := k.net
	if len(ns.pending) == 0 {
		return false
	}
	n := len(ns.pending)
	if n > netisrBatch {
		n = netisrBatch
	}
	batch := make([]Frame, n)
	copy(batch, ns.pending[:n])
	ns.pending = ns.pending[n:]
	f := &k.feeds[ctx]
	f.push(genEntry{
		g:    k.limit(k.code.netisr, ctx, n*netisrFrameLen),
		tmpl: kthreadTmpl(t.tid, sys.CatNetisr),
		done: action{Kind: actNetisrDone, TID: t.tid, Batch: batch},
	})
	k.pushLockAcquire(ctx, t, sys.ResNet, sys.CatNetisr, 0)
	return true
}

// deliverFrames demuxes processed frames into sockets and batches
// readiness delivery epoll-style: instead of a waiter wakeup per frame,
// data/close frames mark their socket on a dirty ring that is drained once
// at the end of the batch. Wakeup order and read results are preserved
// exactly: a socket touched again mid-batch flushes first (so its sleeping
// reader observes the same intermediate state the per-frame walk produced),
// and an accept-path wakeup — which stays per-frame — flushes the whole
// ring before it fires so cross-socket wake order never inverts.
//
//detlint:hot per-tick (AppOnly) / per-netisr-batch frame demux
func (k *Kernel) deliverFrames(frames []Frame) {
	ns := k.net
	for _, fr := range frames {
		switch {
		case fr.Corrupt:
			// Damaged in transit: the stack walked the frame and dropped
			// it at the checksum.
			ns.Dropped++
		case fr.Ack:
			// Pure protocol work; nothing delivered to a socket.
		case fr.Open && !connKnown(ns, fr.Conn):
			// An accepted SYN can wake a blocked accepter immediately;
			// flush deferred readiness first to keep global wake order.
			k.drainDirty()
			ls := ns.socks[ListenFD]
			if ls.acceptLen() >= k.backlogLimit() {
				// Listen queue full: the SYN is dropped (Digital Unix's
				// somaxconn behavior). The client sees it as loss and
				// recovers through its retransmit path.
				ns.Dropped++
				k.ConnsRefused++
				continue
			}
			s := k.allocSocket()
			if s == nil {
				// Socket table exhausted: the stack fails the PCB
				// allocation (ENOBUFS) and the SYN is dropped; the client
				// recovers through its retransmit path.
				ns.Dropped++
				k.SockPoolRejects++
				continue
			}
			s.conn = fr.Conn
			s.data = fr.Bytes
			s.lastActive = ns.ticks
			s.reqBytes = fr.Bytes
			ns.byConn.Put(fr.Conn, s.id)
			ls.acceptQ = append(ls.acceptQ, s.id)
			if inUse := ns.sockInUse(); inUse > k.SockHighwater {
				k.SockHighwater = inUse
			}
			if w := popWaiter(ls); w != nil {
				k.completeAccept(w, ls)
			}
		default:
			sid, ok := ns.byConn.Get(fr.Conn)
			if !ok {
				ns.Dropped++
				continue
			}
			s := ns.socks[sid]
			if s.dirty {
				// Second touch this batch: deliver the earlier readiness
				// before the new mutation lands, exactly as the per-frame
				// walk would have.
				k.flushDirty(s)
			}
			s.lastActive = ns.ticks
			if fr.Close {
				s.closed = true
			} else {
				s.data += fr.Bytes
				s.reqBytes += fr.Bytes
			}
			s.dirty = true
			ns.dirtyRing = append(ns.dirtyRing, int32(sid))
		}
		ns.Delivered++
	}
	k.drainDirty()
}

// flushDirty delivers one socket's deferred readiness.
func (k *Kernel) flushDirty(s *socket) {
	s.dirty = false
	if w := popWaiter(s); w != nil {
		k.completeRead(w, s)
	}
}

// drainDirty delivers all deferred readiness in mark order and empties the
// ring. Re-marked sockets appear twice; the stale occurrence is skipped by
// the dirty flag.
//
//detlint:hot readiness batch drain on the frame-delivery path
func (k *Kernel) drainDirty() {
	ns := k.net
	for _, sid := range ns.dirtyRing {
		if s := ns.socks[sid]; s.dirty {
			k.flushDirty(s)
		}
	}
	ns.dirtyRing = ns.dirtyRing[:0]
}

// connKnown reports whether a connection already has a socket (a
// retransmitted SYN under fault injection must not open a duplicate; it is
// demuxed as data instead).
func connKnown(ns *netState, conn int) bool {
	_, ok := ns.byConn.Get(conn)
	return ok
}

// reapSockets closes every connection socket owned by a dead thread (the
// kernel closing a crashed process's descriptors; TCP sends the reset the
// client sees) and removes the thread from the one waiter queue it may be
// sleeping on. Cost is O(owned sockets): the owned-socket intrusive list
// replaces the old full-table scan, and t.sock replaces the old
// every-waiter-queue sweep. It returns the number of sockets visited so
// regression tests can pin the complexity claim.
//
//detlint:hot crash teardown; bounded by the dead thread's descriptors
func (k *Kernel) reapSockets(t *Thread) int {
	ns := k.net
	// A thread sleeps on at most one socket at a time (accept, select, or
	// read); t.sock tracks which.
	if t.sock >= 0 {
		if s := ns.sock(t.sock); s != nil {
			kept := s.waiters[:0]
			for _, w := range s.waiters {
				if w != t {
					kept = append(kept, w)
				}
			}
			s.waiters = kept
		}
		t.sock = -1
	}
	// Collect the owned list, then tear down in ascending id order — the
	// order the old table scan produced (FIN transmit order feeds the
	// fault injector's streams, so it is behaviorally significant).
	ns.reapScratch = ns.reapScratch[:0]
	for sid := t.ownHead; sid != 0; sid = ns.socks[sid].ownNext {
		ns.reapScratch = append(ns.reapScratch, int32(sid))
	}
	slices.Sort(ns.reapScratch)
	for _, sid := range ns.reapScratch {
		s := ns.socks[sid]
		if !s.closed {
			s.closed = true
			ns.byConn.Delete(s.conn)
			if ns.nic != nil {
				ns.nic.Transmit(Frame{Conn: s.conn, Close: true}, ns.now)
			}
		}
		// The dead process's descriptor table is gone: recycle the slot
		// even if the socket was already closed (e.g. by the idle reaper)
		// but never released — no FD or socket may leak past teardown.
		ns.freeSocket(s)
	}
	visited := len(ns.reapScratch)
	t.fds = 0
	return visited
}

// backlogLimit returns the effective accept-backlog bound.
func (k *Kernel) backlogLimit() int {
	if k.cfg.AcceptBacklog > 0 {
		return k.cfg.AcceptBacklog
	}
	return DefaultAcceptBacklog
}

// reapIdle tears down accepted connection sockets that have seen no
// activity for IdleTimeoutTicks network ticks: stalled slowloris requests
// and idle keep-alive connections both go through the same path the crash
// reaper uses — mark closed, drop the demux entry, send the client a FIN,
// and wake any blocked reader with 0 so the owning worker runs its ordinary
// connection-close path. Unaccepted connections still in the backlog are
// not timed; the backlog bound is what limits those.
//
// The reaper is driven by the lastActive timestamp wheel instead of a
// per-tick full-table scan: each accepted socket carries at most one wheel
// entry (armed at accept), activity only moves lastActive, and a fired
// entry for a socket that has since been active re-arms lazily at
// lastActive+timeout. Per tick this costs O(entries due), and each socket
// fires at most ceil(idle span / timeout) times over its life — the same
// reap ticks as the scan, independent of table size. Due sockets are torn
// down in ascending id order, matching the scan (FIN transmit order feeds
// the fault injector's streams).
//
//detlint:hot per-tick idle-timeout sweep; O(due), not O(table)
func (k *Kernel) reapIdle() {
	ns := k.net
	timeout := k.cfg.IdleTimeoutTicks
	ns.idleDue = ns.idleDue[:0]
	for _, e := range ns.idleWheel.Advance(ns.ticks) {
		s := ns.sock(int(e.ID))
		if s == nil || e.Due != s.idleWakeAt {
			continue // stale entry: socket re-armed later or recycled
		}
		s.idleWakeAt = 0
		if s.listen || s.free || s.closed || s.owner == 0 {
			continue
		}
		if ns.ticks-s.lastActive < timeout {
			// Active since arming: push the deadline out lazily.
			k.armIdle(s)
			continue
		}
		ns.idleDue = append(ns.idleDue, e.ID)
	}
	slices.Sort(ns.idleDue)
	for _, sid := range ns.idleDue {
		s := ns.socks[sid]
		if s.served && s.reqBytes == 0 {
			k.ReapedIdle++
		} else {
			k.ReapedSlowloris++
		}
		s.closed = true
		ns.byConn.Delete(s.conn)
		if ns.nic != nil {
			ns.nic.Transmit(Frame{Conn: s.conn, Close: true}, ns.now)
		}
		if w := popWaiter(s); w != nil {
			k.completeRead(w, s)
		}
	}
}

// popWaiter removes and returns the oldest thread sleeping on a socket.
func popWaiter(s *socket) *Thread {
	if len(s.waiters) == 0 {
		return nil
	}
	w := s.waiters[0]
	s.waiters = s.waiters[1:]
	w.sock = -1
	return w
}

// sleepOn parks a thread on a socket's waiter queue and records which
// socket it sleeps on (a thread waits on at most one; crash teardown uses
// t.sock for O(1) waiter removal).
func sleepOn(s *socket, t *Thread) {
	s.waiters = append(s.waiters, t)
	t.sock = s.id
}

// completeAccept finishes a blocked accept: pop a pending connection.
func (k *Kernel) completeAccept(t *Thread, ls *socket) {
	if ls.acceptLen() == 0 {
		sleepOn(ls, t)
		return
	}
	sid := ls.popAccept()
	so := k.net.socks[sid]
	so.owner = t.tid
	so.lastActive = k.net.ticks
	k.net.linkOwned(t, so)
	k.armIdle(so)
	t.fds++
	t.wakeResult = sid
	k.wake(t)
}

// completeRead finishes a blocked read: report available bytes (0 = peer
// closed).
func (k *Kernel) completeRead(t *Thread, s *socket) {
	n := s.data
	s.data = 0
	if n == 0 && !s.closed {
		sleepOn(s, t)
		return
	}
	t.wakeResult = n
	k.wake(t)
}

// syscallEffect applies a system call's semantic effect and returns its
// result, or block=true if the calling thread must sleep.
func (k *Kernel) syscallEffect(t *Thread, req sys.Request) (res int, block bool) {
	ns := k.net
	switch req.Num {
	case sys.SysAccept:
		ls := ns.sock(ListenFD)
		if ls == nil {
			return -1, false
		}
		if t.fds >= k.fdLimEff {
			// Per-process descriptor table full: fail with the EMFILE
			// analogue instead of handing out an unbounded fd. The server
			// model backs off and retries the accept.
			k.FDRejects++
			return sys.ErrMfile, false
		}
		if ls.acceptLen() > 0 {
			sid := ls.popAccept()
			so := ns.socks[sid]
			so.owner = t.tid
			so.lastActive = ns.ticks
			ns.linkOwned(t, so)
			k.armIdle(so)
			t.fds++
			return sid, false
		}
		sleepOn(ls, t)
		return 0, true
	case sys.SysSelect:
		// Used non-blocking by the server model: report readiness.
		ls := ns.sock(ListenFD)
		if ls != nil && ls.acceptLen() > 0 {
			return 1, false
		}
		if req.Blocking {
			sleepOn(ls, t)
			return 0, true
		}
		return 0, false
	case sys.SysRead:
		if req.Resource == sys.ResNet {
			s := ns.sock(req.FD)
			if s == nil {
				return -1, false
			}
			if s.data > 0 || s.closed {
				n := s.data
				s.data = 0
				s.lastActive = ns.ticks
				return n, false
			}
			if !req.Blocking {
				return 0, false
			}
			sleepOn(s, t)
			return 0, true
		}
		return req.Bytes, false
	case sys.SysWrite, sys.SysWritev:
		if req.Resource == sys.ResNet {
			s := ns.sock(req.FD)
			if s != nil && ns.nic != nil {
				ns.nic.Transmit(Frame{Conn: s.conn, Bytes: req.Bytes}, ns.now)
			}
			if s != nil {
				s.lastActive = ns.ticks
				s.served = true
				s.reqBytes = 0
			}
		}
		return req.Bytes, false
	case sys.SysClose:
		if req.Resource == sys.ResNet {
			s := ns.sock(req.FD)
			if s != nil && !s.listen && !s.free {
				s.closed = true
				ns.byConn.Delete(s.conn)
				if ns.nic != nil {
					ns.nic.Transmit(Frame{Conn: s.conn, Close: true}, ns.now)
				}
				if s.owner == t.tid && t.fds > 0 {
					t.fds--
				}
				// The descriptor is gone: recycle the table slot so the
				// bounded socket pool drains as connections close.
				ns.freeSocket(s)
			}
		}
		return 0, false
	case sys.SysSmmap:
		// Mapping is lazy (first touch faults); nothing to do eagerly.
		return 0, false
	case sys.SysMunmap:
		// Unmap the page, with the TLB and cache invalidations the SMT
		// port performs in place of an SMP shootdown (§2.2.2).
		if req.Addr != 0 {
			if paddr, ok := k.Mem.Translate(t.pid, req.Addr); ok {
				base := paddr &^ uint64(mem.PageMask)
				k.hier.FlushDRange(base, mem.PageSize)
			}
			k.Mem.Unmap(t.pid, req.Addr)
			k.dtlb.InvalidatePage(t.asn, req.Addr)
			k.itlb.InvalidatePage(t.asn, req.Addr)
		}
		return 0, false
	case sys.SysStat, sys.SysOpen, sys.SysIoctl, sys.SysGetpid, sys.SysSigaction:
		return 0, false
	case sys.SysFork:
		// Admission control: a fork that would overflow the process table
		// fails with EAGAIN instead of wedging the kernel. Callers retry.
		if !k.canFork() {
			k.ForkRejects++
			return sys.ErrAgain, false
		}
		return int(t.pid), false
	case sys.SysExec:
		return int(t.pid), false
	}
	return 0, false
}
