// Read-only accessors for the runtime invariant auditor (internal/audit):
// thread and socket inventories with no pointers into kernel internals.
package kernel

// ThreadInfo describes one thread for auditing.
type ThreadInfo struct {
	TID    uint32
	PID    uint64
	ASN    uint16
	Kind   string // "user", "netisr", "idle"
	Exited bool
	// Released is set once an exited thread's teardown (address-space
	// release, ASN invalidation) has retired; until then the thread
	// legitimately still owns pages and TLB entries.
	Released bool
	Worker   bool
}

// ThreadInfos returns a summary of every registered thread.
func (k *Kernel) ThreadInfos() []ThreadInfo {
	out := make([]ThreadInfo, 0, len(k.threads))
	for _, t := range k.threads {
		kind := "user"
		switch t.kind {
		case tkNetisr:
			kind = "netisr"
		case tkIdle:
			kind = "idle"
		}
		out = append(out, ThreadInfo{
			TID: t.tid, PID: t.pid, ASN: t.asn, Kind: kind,
			Exited: t.state == tsExited, Released: t.released,
			Worker: t.worker,
		})
	}
	return out
}

// SocketInfo describes one kernel socket for auditing.
type SocketInfo struct {
	ID      int
	Listen  bool
	Conn    int
	Closed  bool
	Owner   uint32
	Waiters int
	// AcceptQ is a copy of the live accept-queue window (listen sockets).
	AcceptQ []int
	// LastActive is the network tick of the socket's last activity.
	LastActive uint64
}

// SocketInfos returns a summary of every kernel socket.
func (k *Kernel) SocketInfos() []SocketInfo {
	out := make([]SocketInfo, 0, len(k.net.socks))
	for _, s := range k.net.socks {
		si := SocketInfo{
			ID: s.id, Listen: s.listen, Conn: s.conn,
			Closed: s.closed, Owner: s.owner, Waiters: len(s.waiters),
			LastActive: s.lastActive,
		}
		if s.listen && s.acceptLen() > 0 {
			si.AcceptQ = append([]int(nil), s.acceptQ[s.acceptHead:]...)
		}
		out = append(out, si)
	}
	return out
}

// AcceptBacklogLimit returns the effective accept-queue bound (for audits).
func (k *Kernel) AcceptBacklogLimit() int { return k.backlogLimit() }

// NetTicks returns the number of elapsed 10 ms network ticks (for audits).
func (k *Kernel) NetTicks() uint64 { return k.net.ticks }
