// Read-only accessors for the runtime invariant auditor (internal/audit):
// thread and socket inventories with no pointers into kernel internals.
package kernel

// ThreadInfo describes one thread for auditing.
type ThreadInfo struct {
	TID    uint32
	PID    uint64
	ASN    uint16
	Kind   string // "user", "netisr", "idle"
	Exited bool
	// Released is set once an exited thread's teardown (address-space
	// release, ASN invalidation) has retired; until then the thread
	// legitimately still owns pages and TLB entries.
	Released bool
	Worker   bool
	// FDs is the thread's open-descriptor count against the per-process
	// limit; Slot is its process-table slot (-1 for kernel threads and
	// torn-down processes).
	FDs  int
	Slot int
}

// ThreadInfos returns a summary of every registered thread.
func (k *Kernel) ThreadInfos() []ThreadInfo {
	out := make([]ThreadInfo, 0, len(k.threads))
	for _, t := range k.threads {
		kind := "user"
		switch t.kind {
		case tkNetisr:
			kind = "netisr"
		case tkIdle:
			kind = "idle"
		}
		out = append(out, ThreadInfo{
			TID: t.tid, PID: t.pid, ASN: t.asn, Kind: kind,
			Exited: t.state == tsExited, Released: t.released,
			Worker: t.worker, FDs: t.fds, Slot: t.slot,
		})
	}
	return out
}

// SocketInfo describes one kernel socket for auditing.
type SocketInfo struct {
	ID      int
	Listen  bool
	Conn    int
	Closed  bool
	Free    bool
	Owner   uint32
	Waiters int
	// AcceptQ is a copy of the live accept-queue window (listen sockets).
	AcceptQ []int
	// LastActive is the network tick of the socket's last activity.
	LastActive uint64
}

// SocketInfos returns a summary of every kernel socket.
func (k *Kernel) SocketInfos() []SocketInfo {
	out := make([]SocketInfo, 0, len(k.net.socks))
	for _, s := range k.net.socks {
		si := SocketInfo{
			ID: s.id, Listen: s.listen, Conn: s.conn,
			Closed: s.closed, Free: s.free, Owner: s.owner,
			Waiters: len(s.waiters), LastActive: s.lastActive,
		}
		if s.listen && s.acceptLen() > 0 {
			si.AcceptQ = append([]int(nil), s.acceptQ[s.acceptHead:]...)
		}
		out = append(out, si)
	}
	return out
}

// AcceptBacklogLimit returns the effective accept-queue bound (for audits).
func (k *Kernel) AcceptBacklogLimit() int { return k.backlogLimit() }

// NetTicks returns the number of elapsed 10 ms network ticks (for audits).
func (k *Kernel) NetTicks() uint64 { return k.net.ticks }

// SockFreeIDs returns a copy of the socket-table freelist (for audits).
func (k *Kernel) SockFreeIDs() []int { return append([]int(nil), k.net.sockFree...) }

// ProcTable returns a copy of the process-table slots plus the freelist
// length, for the resource-accounting audit.
func (k *Kernel) ProcTable() (slots []uint32, free int) {
	return append([]uint32(nil), k.procSlots...), len(k.procFree)
}

// LiveUserProcs returns the number of process-table slots in use.
func (k *Kernel) LiveUserProcs() int { return k.liveUsers }

// PoolCaps reports the effective (possibly squeezed) resource capacities:
// socket table, mbuf pool, per-process FD limit, process table.
func (k *Kernel) PoolCaps() (sock, mbuf, fd, proc int) {
	return k.sockCapEff, k.mbufCapEff, k.fdLimEff, k.procCapEff
}

// PoolSizes reports the configured (static) pool capacities, the hard upper
// bounds that hold regardless of squeezes: socket table, mbuf pool,
// per-process FD limit, process table.
func (k *Kernel) PoolSizes() (sock, mbuf, fd, proc int) {
	return k.cfg.SocketTableSize, k.cfg.MbufPoolSize, k.cfg.FDLimit, k.cfg.ProcTableSize
}

// SockInUse returns the number of live (non-free) socket-table entries.
func (k *Kernel) SockInUse() int { return k.net.sockInUse() }

// MbufPending returns the current mbuf-pool occupancy.
func (k *Kernel) MbufPending() int { return len(k.net.pending) }
