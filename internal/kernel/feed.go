package kernel

import (
	"fmt"

	"repro/internal/conflict"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/sys"
	"repro/internal/tlb"
	"repro/internal/workload"
)

// genEntry is one element of a context's generation stack: a generator plus
// the annotation template its instructions carry, and an action to perform
// when it is exhausted. The action is plain data (see action.go) so the
// whole stack serializes into a checkpoint.
type genEntry struct {
	g    workload.Generator
	tmpl pipeline.FedInst
	done action
}

// ctxFeed is the per-hardware-context generation state.
type ctxFeed struct {
	buf []pipeline.FedInst
	// head indexes the first live instruction in buf: retirement advances it
	// instead of reslicing (which would strand the front capacity and force
	// the generator to reallocate the buffer every refill). Compaction is
	// amortized in Retired; snapshots serialize buf[head:], so the head never
	// appears in the checkpoint format.
	head  int //detlint:ignore snapshotcomplete normalized away: snapshots serialize buf[head:]
	base  uint64
	stack []genEntry
	cur   *Thread
	idle  *Thread
	// paused blocks generation until the pending syscall PALCall retires.
	paused     bool
	pendingReq sys.Request
	// syscallRetired records a PALCall retirement that arrived before
	// generation reached its pause point (the retire/generation race).
	syscallRetired bool
	// intrNet marks the next interrupt stub as a network (vs clock) one.
	intrNet bool
}

func (f *ctxFeed) init() {
	f.buf = make([]pipeline.FedInst, 0, 1024)
}

func (f *ctxFeed) push(e genEntry) { f.stack = append(f.stack, e) }

// newLimit returns a bounded generator over g, reusing a pooled
// workload.Limit when one is free (fill recycles them as stack entries
// drain; see recycleLimit).
func (k *Kernel) newLimit(g workload.Generator, n uint64) *workload.Limit {
	if p := len(k.limitPool) - 1; p >= 0 {
		l := k.limitPool[p]
		k.limitPool = k.limitPool[:p]
		l.G = g
		l.N = n
		return l
	}
	return &workload.Limit{G: g, N: n}
}

// recycleLimit returns an exhausted generator to the freelist if it is a
// bare pooled Limit (wrapped generators — Tail, modeForce — are not pooled).
func (k *Kernel) recycleLimit(g workload.Generator) {
	if l, ok := g.(*workload.Limit); ok {
		l.G = nil
		l.N = 0
		k.limitPool = append(k.limitPool, l)
	}
}

// limit returns a pooled generator for n instructions of rw's code on ctx.
func (k *Kernel) limit(rw *regionWalker, ctx, n int) workload.Generator {
	return k.newLimit(rw.walker(ctx), uint64(n))
}

// tmplFor builds the annotation for code run on behalf of thread t.
func tmplFor(t *Thread, cat sys.Category, sysno uint16) pipeline.FedInst {
	return pipeline.FedInst{
		TID: t.tid,
		ASN: t.asn,
		PID: t.pid,
		Cat: cat,
		Sys: sysno,
	}
}

// ------------------------------------------------------------ pipeline.Feed

// InstAt implements pipeline.Feed.
func (k *Kernel) InstAt(ctx int, idx uint64) (pipeline.FedInst, bool) {
	f := &k.feeds[ctx]
	if idx < f.base {
		return pipeline.FedInst{}, false
	}
	off := idx - f.base
	for uint64(len(f.buf)-f.head) <= off {
		if !k.fill(ctx) {
			return pipeline.FedInst{}, false
		}
	}
	return f.buf[f.head+int(off)], true
}

// Retired implements pipeline.Feed.
func (k *Kernel) Retired(ctx int, idx uint64, in *pipeline.FedInst) {
	f := &k.feeds[ctx]
	if idx < f.base {
		return
	}
	off := idx - f.base + 1
	if off > uint64(len(f.buf)-f.head) {
		off = uint64(len(f.buf) - f.head)
	}
	f.head += int(off)
	f.base = idx + 1
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	} else if f.head >= 1024 && f.head >= len(f.buf)-f.head {
		// Amortized compaction: once the dead prefix outweighs the live
		// tail, slide the tail to the front so capacity is reused.
		n := copy(f.buf, f.buf[f.head:])
		f.buf = f.buf[:n]
		f.head = 0
	}
	if in.Class == isa.PALReturn && in.Sys == sys.SysExit {
		k.finishExit(in.TID)
	}
	if in.Class == isa.PALCall && in.Syscall != 0 {
		if f.paused {
			k.enterSyscall(ctx)
		} else {
			// Generation has not reached the pause point yet; remember the
			// retirement so the pause resolves immediately when it does.
			f.syscallRetired = true
		}
	}
}

// Trap implements pipeline.Feed.
func (k *Kernel) Trap(ctx int, idx uint64, in *pipeline.FedInst, kind pipeline.TrapKind, vaddr uint64) {
	f := &k.feeds[ctx]
	var handler []pipeline.FedInst
	switch kind {
	case pipeline.TrapDTLB:
		handler = k.dtlbHandler(ctx, in, vaddr)
	case pipeline.TrapITLB:
		handler = k.itlbHandler(ctx, in, vaddr)
	case pipeline.TrapInterrupt:
		handler = k.interruptHandler(ctx)
	}
	if len(handler) == 0 {
		return
	}
	off := int(idx - f.base)
	if off < 0 || off > len(f.buf)-f.head {
		panic(fmt.Sprintf("kernel: trap splice at %d outside buffer [%d,%d)", idx, f.base, f.base+uint64(len(f.buf)-f.head)))
	}
	// In-place splice: grow the buffer, slide the tail right, copy the
	// handler in. Amortized this reuses the buffer's capacity instead of
	// allocating a fresh buffer per trap.
	pos := f.head + off
	n := len(handler)
	f.buf = append(f.buf, handler...)
	copy(f.buf[pos+n:], f.buf[pos:])
	copy(f.buf[pos:], handler)
}

// Cycle implements pipeline.Feed: clock/network interrupt generation at the
// 10 ms granularity of §2.3.
func (k *Kernel) Cycle(now uint64) []int {
	k.interrupt = k.interrupt[:0]
	if now-k.lastTick < k.cfg.CyclesPer10ms {
		return k.interrupt
	}
	k.lastTick = now
	frames := k.net.tick(now)
	if k.faults != nil && !k.squeezed {
		// The exhaustion fault domain lands once, at its scheduled tick.
		if tick, ok := k.faults.SqueezeTick(); ok && k.net.ticks >= tick {
			k.applySqueeze(k.faults.Cfg.MemSqueezeFrac, k.faults.Cfg.PoolSqueezeFrac)
		}
	}
	if k.cfg.IdleTimeoutTicks > 0 {
		k.reapIdle()
	}
	// hasNet reflects NIC arrivals: the device interrupts even if the mbuf
	// pool then forces some frames to be dropped at the driver.
	hasNet := len(frames) > 0
	if hasNet {
		if room := k.mbufCapEff - len(k.net.pending); len(frames) > room {
			if room < 0 {
				room = 0
			}
			drop := uint64(len(frames) - room)
			k.MbufDrops += drop
			k.net.Dropped += drop
			frames = frames[:room]
		}
		k.net.pending = append(k.net.pending, frames...)
		if len(k.net.pending) > k.MbufHighwater {
			k.MbufHighwater = len(k.net.pending)
		}
		if k.cfg.ModelNetworkDMA && k.hierDMA != nil && len(frames) > 0 {
			k.hierDMA.DMA(len(frames), now)
		}
	}
	if k.cfg.AppOnly {
		// Application-only mode: deliver instantly, no kernel code.
		if hasNet {
			k.deliverFrames(k.net.pending)
			k.net.pending = k.net.pending[:0]
		}
		for k.pendingRespawns > 0 && k.canFork() {
			k.pendingRespawns--
			k.doRespawn(0)
		}
		return k.interrupt
	}
	if hasNet {
		// Wake the netisr threads to drain the protocol stack.
		for _, t := range k.threads {
			if t.kind == tkNetisr {
				k.wake(t)
			}
		}
		k.NetInterrupts++
	} else {
		k.ClockInterrupts++
	}
	ctx := k.rrIntCtx
	k.rrIntCtx = (k.rrIntCtx + 1) % k.cfg.Contexts
	k.feeds[ctx].intrNet = hasNet
	// Deferred re-forks: the master retries EAGAIN'd respawns at clock
	// granularity, once table slots free up.
	for k.pendingRespawns > 0 && k.canFork() {
		k.pendingRespawns--
		k.doRespawn(ctx)
	}
	k.interrupt = append(k.interrupt, ctx)
	return k.interrupt
}

// Halted implements pipeline.Feed: a context is idle when its idle thread
// is installed with nothing runnable and nothing mid-generation.
func (k *Kernel) Halted(ctx int) bool {
	f := &k.feeds[ctx]
	return f.cur != nil && f.cur.kind == tkIdle && len(f.stack) == 0 &&
		len(k.runQ) == 0 && !f.paused
}

// Translate implements pipeline.Feed (application-only instant TLB fills,
// and the store-retire refill path).
func (k *Kernel) Translate(in *pipeline.FedInst, vaddr uint64) uint64 {
	pid := in.PID
	if mem.IsKernelAddr(vaddr) {
		pid = mem.KernelPID
	}
	paddr, _ := k.Mem.Touch(pid, vaddr)
	k.flushEvictions()
	return paddr
}

// ------------------------------------------------------------ trap handlers

// kthreadTmpl annotates code not tied to a user thread. (Instruction mode
// comes from the generated instructions themselves.)
func kthreadTmpl(tid uint32, cat sys.Category) pipeline.FedInst {
	return pipeline.FedInst{
		TID: tid,
		ASN: tlb.GlobalASN,
		PID: mem.KernelPID,
		Cat: cat,
	}
}

func palReturn(pc uint64, tmpl pipeline.FedInst) pipeline.FedInst {
	out := tmpl
	out.Inst = isa.Inst{PC: pc, Class: isa.PALReturn, Mode: isa.PAL, Taken: true, Target: pc + 4}
	return out
}

// dtlbHandler resolves a data-TLB miss: PAL fast path, plus the kernel VM
// layer when the page needed allocating (first touch) or reclaiming.
func (k *Kernel) dtlbHandler(ctx int, in *pipeline.FedInst, vaddr uint64) []pipeline.FedInst {
	pid := in.PID
	asn := in.ASN
	if mem.IsKernelAddr(vaddr) {
		pid = mem.KernelPID
		asn = tlb.GlobalASN
	}
	paddr, kind := k.Mem.Touch(pid, vaddr)
	k.flushEvictions()
	if int(kind) < len(k.VMFaults) {
		k.VMFaults[kind]++
	}
	k.dtlb.Insert(asn, vaddr, paddr, agentFor(in))

	tmplPAL := *in
	tmplPAL.Cat = sys.CatDTLB
	tmplPAL.Sys = 0
	out := k.drainRegion(k.handlerBuf[:0], k.code.palDTLB, ctx, palDTLBLen, tmplPAL, isa.PAL)
	if kind != mem.FaultNone {
		tmplVM := tmplPAL
		n := vmFaultLen
		if kind == mem.FaultReclaim {
			// A reclaimed frame is remapped; the victim's shootdown and
			// cache flushes were issued by flushEvictions above, and the
			// longer VM path below charges the OS reclaim work.
			n = vmReclaimLen
		}
		out = k.drainRegion(out, k.code.vm, ctx, n, tmplVM, isa.Kernel)
	}
	out = append(out, palReturn(k.code.palDTLB.reg.Base, tmplPAL))
	k.handlerBuf = out
	return out
}

// itlbHandler resolves an instruction-TLB miss.
func (k *Kernel) itlbHandler(ctx int, in *pipeline.FedInst, vaddr uint64) []pipeline.FedInst {
	pid := in.PID
	asn := in.ASN
	if mem.IsKernelAddr(vaddr) {
		pid = mem.KernelPID
		asn = tlb.GlobalASN
	}
	paddr, kind := k.Mem.Touch(pid, vaddr)
	k.flushEvictions()
	if int(kind) < len(k.VMFaults) {
		k.VMFaults[kind]++
	}
	k.itlb.Insert(asn, vaddr, paddr, agentFor(in))

	tmpl := *in
	tmpl.Cat = sys.CatITLB
	tmpl.Sys = 0
	out := k.drainRegion(k.handlerBuf[:0], k.code.palITLB, ctx, palITLBLen, tmpl, isa.PAL)
	if kind != mem.FaultNone {
		out = k.drainRegion(out, k.code.vm, ctx, vmFaultLen, tmpl, isa.Kernel)
	}
	out = append(out, palReturn(k.code.palITLB.reg.Base, tmpl))
	k.handlerBuf = out
	return out
}

// interruptHandler builds the interrupt stub spliced into the interrupted
// context: PAL entry, then the device (network) or clock handler.
func (k *Kernel) interruptHandler(ctx int) []pipeline.FedInst {
	f := &k.feeds[ctx]
	tid := uint32(0xffff) // interrupts execute on no particular thread
	if f.cur != nil {
		tid = f.cur.tid
	}
	tmpl := kthreadTmpl(tid, sys.CatInterrupt)
	out := k.drainRegion(k.handlerBuf[:0], k.code.palIntr, ctx, palIntrLen, tmpl, isa.PAL)
	n := clockIntrLen
	if f.intrNet {
		n = intrDevLen
	}
	out = k.drainRegion(out, k.code.intrDev, ctx, n, tmpl, isa.Kernel)
	out = append(out, palReturn(k.code.palIntr.reg.Base, tmpl))
	f.intrNet = false
	k.handlerBuf = out
	return out
}

// agentFor builds the conflict agent used for TLB inserts from a trap.
func agentFor(in *pipeline.FedInst) conflict.Agent {
	return conflict.Agent{TID: in.TID, Priv: in.Mode.Privileged()}
}

// drainAs runs a generator to exhaustion, appending its instructions to dst
// stamped with tmpl and forced to the given mode.
func drainAs(dst []pipeline.FedInst, g workload.Generator, tmpl pipeline.FedInst, mode isa.Mode) []pipeline.FedInst {
	for {
		in, ok := g.Next()
		if !ok {
			return dst
		}
		in.Mode = mode
		dst = append(dst, tmpl)
		dst[len(dst)-1].Inst = in
	}
}

// drainRegion appends n instructions of rw's code for ctx to dst, recycling
// the bounding Limit when the traversal completes.
func (k *Kernel) drainRegion(dst []pipeline.FedInst, rw *regionWalker, ctx, n int, tmpl pipeline.FedInst, mode isa.Mode) []pipeline.FedInst {
	l := k.newLimit(rw.walker(ctx), uint64(n))
	dst = drainAs(dst, l, tmpl, mode)
	k.recycleLimit(l)
	return dst
}

// ------------------------------------------------------------ generation

const burstChunk = 192

// fill generates at least one more instruction for ctx, returning false if
// the context has nothing to run right now (serialized or fully blocked).
func (k *Kernel) fill(ctx int) bool {
	f := &k.feeds[ctx]
	// The guard bounds true livelocks only; one pass can legitimately walk
	// the whole thread pool (e.g. 64 server processes blocking in turn, or
	// long chains of instant syscalls in application-only mode).
	for guard := 0; guard < 1_000_000; guard++ {
		if n := len(f.stack); n > 0 {
			top := &f.stack[n-1]
			in, ok := top.g.Next()
			if ok {
				// Append the template then patch the instruction in place:
				// one FedInst copy instead of wrap's build-then-append two.
				f.buf = append(f.buf, top.tmpl)
				f.buf[len(f.buf)-1].Inst = in
				return true
			}
			done := top.done
			k.recycleLimit(top.g)
			f.stack = f.stack[:n-1]
			k.runAction(ctx, done)
			continue
		}
		if f.paused {
			return false
		}
		t := f.cur
		if t == nil {
			k.schedule(ctx)
			continue
		}
		switch t.kind {
		case tkIdle:
			if len(k.runQ) > 0 {
				f.cur = nil // let the scheduler pick real work
				continue
			}
			if !k.cfg.IdleSpin {
				// Halting idle: nothing to fetch until work arrives.
				return false
			}
			f.push(genEntry{
				g:    k.limit(k.code.idle, ctx, idleChunk),
				tmpl: kthreadTmpl(t.tid, sys.CatIdle),
			})
		case tkNetisr:
			if !k.netisrStep(ctx, t) {
				// Nothing to process: block and reschedule.
				t.state = tsBlocked
				f.cur = nil
			}
		case tkUser:
			if !k.userStep(ctx, t) {
				return false
			}
		}
	}
	// The state machine above always either pushes work, blocks, or
	// switches; hitting the guard means a logic bug.
	panic("kernel: fill made no progress")
}

// schedule installs the next thread on ctx, generating scheduler code
// (unless coming out of idle with nothing to do, which parks the idle
// thread without cost).
func (k *Kernel) schedule(ctx int) {
	f := &k.feeds[ctx]
	next := k.pickNext(ctx)
	if next == nil {
		f.idle.state = tsRunning
		f.cur = f.idle
		k.IdleScheduled++
		return
	}
	k.ContextSwitches++
	if k.cfg.AppOnly {
		// No kernel code in application-only mode: switch instantly.
		f.cur = next
		next.sinceSched = 0
		if next.wakeReq != nil {
			k.resumeBlockedSyscall(ctx, next)
		}
		return
	}
	tmpl := kthreadTmpl(next.tid, sys.CatSched)
	f.push(genEntry{
		g:    k.limit(k.code.sched, ctx, schedLen),
		tmpl: tmpl,
		done: action{Kind: actSwitchTo, TID: next.tid},
	})
}

// userStep advances a user thread's program by one action. It returns false
// only when the context must pause (syscall serialization).
func (k *Kernel) userStep(ctx int, t *Thread) bool {
	f := &k.feeds[ctx]
	if t.burst > 0 {
		n := t.burst
		if n > burstChunk {
			n = burstChunk
		}
		t.burst -= n
		t.sinceSched += n
		f.push(genEntry{
			g:    k.newLimit(t.prog.Walker(), n),
			tmpl: tmplFor(t, sys.CatUser, 0),
		})
		return true
	}
	// Preemption at step boundaries once the quantum expires.
	if k.cfg.QuantumInsts > 0 && t.sinceSched >= k.cfg.QuantumInsts && len(k.runQ) > 0 {
		k.Preemptions++
		t.state = tsRunnable
		t.sinceSched = 0
		k.runQ = append(k.runQ, t)
		f.cur = nil
		return true
	}
	step := t.prog.Next()
	switch step.Kind {
	case workload.StepRun:
		if step.N == 0 {
			step.N = 1
		}
		t.burst = step.N
		return true
	case workload.StepSyscall:
		return k.startSyscall(ctx, t, step.Req)
	case workload.StepExit:
		k.exitThread(ctx, t)
		return true
	}
	panic("kernel: unknown program step")
}

// startSyscall emits the user-side PAL call; the service itself is pushed
// when the call retires (syscalls serialize the pipeline).
func (k *Kernel) startSyscall(ctx int, t *Thread, req sys.Request) bool {
	f := &k.feeds[ctx]
	if k.maybeCrash(ctx, t) {
		// The worker died at this syscall boundary instead of issuing it.
		return true
	}
	if k.cfg.AppOnly {
		// §2.3.1: the call completes instantly with no hardware effect.
		k.SyscallCount[req.Num]++
		res, block := k.syscallEffect(t, req)
		if block {
			t.wakeReq = &sys.Request{}
			*t.wakeReq = req
			t.state = tsBlocked
			f.cur = nil
			return true
		}
		t.prog.OnSyscallResult(req, res)
		return true
	}
	call := isa.Inst{
		PC:      t.prog.Walker().PC(),
		Class:   isa.PALCall,
		Mode:    isa.User,
		Taken:   true,
		Target:  k.code.palSys.reg.Base,
		Syscall: req.Num,
	}
	f.push(genEntry{
		g:    &workload.Tail{Extra: []isa.Inst{call}},
		tmpl: tmplFor(t, sys.CatSyscall, req.Num),
		done: action{Kind: actSyscallPause, Req: req},
	})
	return true
}

// enterSyscall runs when the PAL call retires: generate the PAL entry, the
// kernel preamble, and the service body.
func (k *Kernel) enterSyscall(ctx int) {
	f := &k.feeds[ctx]
	f.paused = false
	req := f.pendingReq
	t := f.cur
	if t == nil {
		return
	}
	k.SyscallCount[req.Num]++
	if int(req.Resource) < len(k.SvcInstByRes) {
		k.SvcInstByRes[req.Resource] += uint64(dynLen(req))
	}
	// Stack order: pushed last runs first.
	f.push(genEntry{
		g:    k.limit(k.code.services[req.Num], ctx, dynLen(req)),
		tmpl: tmplFor(t, sys.CatSyscall, req.Num),
		done: action{Kind: actSvcDone, TID: t.tid, Req: req},
	})
	if k.diskPath(req) {
		// Buffer-cache miss: the zero-latency disk still costs the full
		// driver path and a DMA transfer on the memory bus.
		k.DiskReads++
		if k.hierDMA != nil {
			k.hierDMA.DMA((req.Bytes+63)/64+1, k.lastTick)
		}
		f.push(genEntry{
			g:    k.limit(k.code.disk, ctx, diskDriverLen),
			tmpl: tmplFor(t, sys.CatSyscall, req.Num),
		})
	}
	k.pushLockAcquire(ctx, t, req.Resource, sys.CatSyscall, req.Num)
	f.push(genEntry{
		g:    k.limit(k.code.preamble, ctx, preambleLen),
		tmpl: tmplFor(t, sys.CatSyscall, req.Num),
	})
	palTmpl := tmplFor(t, sys.CatSyscall, req.Num)
	f.push(genEntry{
		g:    &modeForce{g: k.limit(k.code.palSys, ctx, palSysEntryLen), mode: isa.PAL},
		tmpl: palTmpl,
	})
}

// diskPath decides whether a file operation misses the buffer cache.
func (k *Kernel) diskPath(req sys.Request) bool {
	if req.Resource != sys.ResFile {
		return false
	}
	if req.Num != sys.SysRead && req.Num != sys.SysOpen {
		return false
	}
	return !k.rng.Bool(k.cfg.BufferCacheHitRate)
}

// pushLockAcquire models the kernel lock guarding a resource class: if a
// service on another context holds it, the caller spin-waits (the SMT
// resource waste the paper quantifies in §2.2.2) before taking it.
func (k *Kernel) pushLockAcquire(ctx int, t *Thread, res sys.Resource, cat sys.Category, sysno uint16) {
	f := &k.feeds[ctx]
	i := int(res)
	if i >= len(k.lockHolder) {
		return
	}
	if holder := k.lockHolder[i]; holder != 0 && holder != t.tid {
		k.LockContentions++
		n := spinMeanLen/2 + int(k.rng.Uint64n(spinMeanLen))
		k.SpinInsts += uint64(n)
		tm := tmplFor(t, sys.CatSpin, sysno)
		// The spin must run before the lock is considered taken; it is
		// pushed after the acquire marker below, so it executes first.
		defer f.push(genEntry{
			g:    k.limit(k.code.spin, ctx, n),
			tmpl: tm,
		})
	}
	k.lockHolder[i] = t.tid
	_ = cat
}

// unlock releases a resource-class lock if t still holds it.
func (k *Kernel) unlock(res sys.Resource, tid uint32) {
	i := int(res)
	if i < len(k.lockHolder) && k.lockHolder[i] == tid {
		k.lockHolder[i] = 0
	}
}

// pushSvcReturn emits the PAL return to user mode and reports the result to
// the program.
func (k *Kernel) pushSvcReturn(ctx int, t *Thread, req sys.Request, res int) {
	f := &k.feeds[ctx]
	ret := isa.Inst{
		PC:     k.code.palSys.reg.Base + k.code.palSys.reg.Size() - 4,
		Class:  isa.PALReturn,
		Mode:   isa.PAL,
		Taken:  true,
		Target: t.prog.Walker().PC(),
	}
	f.push(genEntry{
		g:    &workload.Tail{Extra: []isa.Inst{ret}},
		tmpl: tmplFor(t, sys.CatSyscall, req.Num),
		done: action{Kind: actSvcResult, TID: t.tid, Req: req, Res: res},
	})
}

// resumeBlockedSyscall finishes a syscall whose thread blocked: the wakeup
// path executes a completion slice of the service, then returns to user.
func (k *Kernel) resumeBlockedSyscall(ctx int, t *Thread) {
	f := &k.feeds[ctx]
	req := *t.wakeReq
	res := t.wakeResult
	t.wakeReq = nil
	if k.cfg.AppOnly {
		t.prog.OnSyscallResult(req, res)
		return
	}
	k.pushSvcReturn(ctx, t, req, res)
	f.push(genEntry{
		g:    k.limit(k.code.services[req.Num], ctx, dynLen(req)/3),
		tmpl: tmplFor(t, sys.CatSyscall, req.Num),
	})
}

// exitThread terminates a user process. The address space is torn down when
// the exit path's final instruction retires (resources must not vanish under
// the thread's still-in-flight instructions).
func (k *Kernel) exitThread(ctx int, t *Thread) {
	f := &k.feeds[ctx]
	t.state = tsExited
	k.SyscallCount[sys.SysExit]++
	if k.cfg.AppOnly {
		k.finishExit(t.tid)
		f.cur = nil
		return
	}
	ret := isa.Inst{
		PC:     k.code.palSys.reg.Base + k.code.palSys.reg.Size() - 4,
		Class:  isa.PALReturn,
		Mode:   isa.PAL,
		Taken:  true,
		Target: k.code.sched.reg.Base,
	}
	f.push(genEntry{
		g: &workload.Tail{
			G:     k.limit(k.code.services[sys.SysExit], ctx, dynLen(sys.Request{Num: sys.SysExit})),
			Extra: []isa.Inst{ret},
		},
		tmpl: tmplFor(t, sys.CatSyscall, sys.SysExit),
		done: action{Kind: actClearCur},
	})
}

// maybeCrash samples the process-fault domain: with fault injection armed,
// a worker thread may die at a syscall boundary. It returns true when the
// thread was killed (and a replacement scheduled).
func (k *Kernel) maybeCrash(ctx int, t *Thread) bool {
	if k.faults == nil || !t.worker || !k.faults.CrashNow() {
		return false
	}
	k.crashWorker(ctx, t)
	return true
}

// crashWorker kills a running worker mid-request: locks it held are
// released, its sockets are reaped (the client sees a reset), the kernel
// runs the involuntary-exit path (reusing the same teardown as a voluntary
// exit — ASN invalidation and address-space release at retirement), and the
// master re-forks a replacement.
func (k *Kernel) crashWorker(ctx int, t *Thread) {
	f := &k.feeds[ctx]
	k.WorkerCrashes++
	t.state = tsExited
	t.burst = 0
	for i := range k.lockHolder {
		if k.lockHolder[i] == t.tid {
			k.lockHolder[i] = 0
		}
	}
	k.reapSockets(t)
	k.SyscallCount[sys.SysExit]++
	if k.cfg.AppOnly {
		k.finishExit(t.tid)
		f.cur = nil
		k.respawnWorker(ctx)
		return
	}
	// The master's re-fork work is charged first on the stack (runs after
	// the exit path drains).
	k.respawnWorker(ctx)
	ret := isa.Inst{
		PC:     k.code.palSys.reg.Base + k.code.palSys.reg.Size() - 4,
		Class:  isa.PALReturn,
		Mode:   isa.PAL,
		Taken:  true,
		Target: k.code.sched.reg.Base,
	}
	f.push(genEntry{
		g: &workload.Tail{
			G:     k.limit(k.code.services[sys.SysExit], ctx, dynLen(sys.Request{Num: sys.SysExit})),
			Extra: []isa.Inst{ret},
		},
		tmpl: tmplFor(t, sys.CatSyscall, sys.SysExit),
		done: action{Kind: actClearCur},
	})
}

// respawnWorker is the master's reaction to a worker death: fork a
// replacement process into the pool (fresh pid and ASN — exercising ASN
// recycling once the space wraps — and a cold address space). At a full
// process table the fork fails with EAGAIN and is queued for retry at the
// next clock tick (admission control, not a wedge).
func (k *Kernel) respawnWorker(ctx int) {
	if k.respawn == nil {
		return
	}
	if !k.canFork() {
		k.ForkRejects++
		k.pendingRespawns++
		return
	}
	k.doRespawn(ctx)
}

// doRespawn performs the admitted re-fork: builds the replacement program,
// registers the worker, and charges the fork service code to ctx.
func (k *Kernel) doRespawn(ctx int) {
	prog := k.respawn()
	if prog == nil {
		return
	}
	nt := k.AddWorker(prog)
	k.WorkerRespawns++
	k.SyscallCount[sys.SysFork]++
	forkReq := sys.Request{Num: sys.SysFork, Resource: sys.ResProcess}
	if int(forkReq.Resource) < len(k.SvcInstByRes) {
		k.SvcInstByRes[forkReq.Resource] += uint64(dynLen(forkReq))
	}
	if k.cfg.AppOnly {
		return
	}
	tmpl := kthreadTmpl(nt.tid, sys.CatSyscall)
	tmpl.Sys = sys.SysFork
	k.feeds[ctx].push(genEntry{
		g:    k.limit(k.code.services[sys.SysFork], ctx, dynLen(forkReq)),
		tmpl: tmpl,
	})
}

// finishExit tears down an exited process's address space.
func (k *Kernel) finishExit(tid uint32) {
	for _, t := range k.threads {
		if t.tid == tid && t.kind == tkUser {
			k.Mem.ReleaseProcess(t.pid)
			k.dtlb.InvalidateASN(t.asn)
			k.itlb.InvalidateASN(t.asn)
			t.released = true
			k.freeProcSlot(t)
			return
		}
	}
}

// flushEvictions applies the architectural consequences of page reclaims
// staged by the VM layer: each victim's TLB entry is shot down and its cache
// lines flushed before the frame is remapped (§2.2.2 — the dominant source
// of kernel-induced I-cache misses under memory pressure).
func (k *Kernel) flushEvictions() {
	evs := k.Mem.TakeEvictions()
	if evs == nil {
		return
	}
	for _, ev := range evs {
		if asn, ok := k.asnOfPID(ev.PID); ok {
			vaddr := ev.VPN << mem.PageShift
			if k.dtlb != nil {
				k.dtlb.InvalidatePage(asn, vaddr)
			}
			if k.itlb != nil {
				k.itlb.InvalidatePage(asn, vaddr)
			}
		}
		if k.hier != nil {
			base := mem.FrameBase(ev.PFN)
			k.hier.FlushIRange(base, mem.PageSize)
			k.hier.FlushDRange(base, mem.PageSize)
		}
	}
}

// asnOfPID resolves a live process's address-space number for eviction
// shootdowns. Released processes have no translations left to shoot down.
func (k *Kernel) asnOfPID(pid uint64) (uint16, bool) {
	for _, t := range k.threads {
		if t.kind == tkUser && t.pid == pid && !t.released {
			return t.asn, true
		}
	}
	return 0, false
}

// modeForce overrides the mode of generated instructions (PAL trampolines
// reuse kernel-style generation but execute in PAL mode).
type modeForce struct {
	g    workload.Generator
	mode isa.Mode
}

func (m *modeForce) Next() (isa.Inst, bool) {
	in, ok := m.g.Next()
	if !ok {
		return in, false
	}
	in.Mode = m.mode
	return in, true
}
