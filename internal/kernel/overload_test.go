package kernel

import (
	"testing"

	"repro/internal/sys"
)

// netCfg is a kernel config for white-box network-stack tests (no engine
// attached; ticks driven by hand).
func netCfg() Config {
	cfg := DefaultConfig()
	cfg.CyclesPer10ms = 1 << 40
	return cfg
}

// openFrames delivers n fresh connections (conn ids 1..n) to the kernel.
func openFrames(k *Kernel, n int) {
	frames := make([]Frame, n)
	for i := range frames {
		frames[i] = Frame{Conn: i + 1, Bytes: 300, Open: true}
	}
	k.deliverFrames(frames)
}

// accept pops one pending connection through the syscall path and returns
// the socket id.
func accept(t *testing.T, k *Kernel, owner *Thread) int {
	t.Helper()
	sid, block := k.syscallEffect(owner, sys.Request{Num: sys.SysAccept, Resource: sys.ResNet})
	if block {
		t.Fatal("accept blocked with pending connections")
	}
	return sid
}

// TestAcceptQueueOrderAndCompaction: the head-indexed accept queue hands
// out connections FIFO across hundreds of accepts, and the consumed prefix
// is reclaimed (head never grows without bound).
func TestAcceptQueueOrderAndCompaction(t *testing.T) {
	cfg := netCfg()
	// One thread holds all 300 accepted sockets here; lift the per-process
	// descriptor limit so only queue mechanics are under test.
	cfg.FDLimit = 512
	k := New(cfg)
	owner := k.threads[0]
	openFrames(k, 300)
	ls := k.net.socks[ListenFD]
	if ls.acceptLen() != 300 {
		t.Fatalf("acceptLen = %d, want 300", ls.acceptLen())
	}
	prev := -1
	for i := 0; i < 300; i++ {
		sid := accept(t, k, owner)
		if sid <= prev {
			t.Fatalf("accept %d returned socket %d after %d: order broken", i, sid, prev)
		}
		prev = sid
		if so := k.net.socks[sid]; so.owner != owner.tid {
			t.Fatalf("accepted socket %d owner = %d, want %d", sid, so.owner, owner.tid)
		}
		// Post-pop invariant: the dead prefix stays below the compaction
		// floor or below the live tail — it never dominates the array.
		if ls.acceptHead >= 64 && ls.acceptHead >= ls.acceptLen() {
			t.Fatalf("after accept %d: dead prefix %d outweighs live tail %d, compaction never ran",
				i, ls.acceptHead, ls.acceptLen())
		}
	}
	if ls.acceptLen() != 0 || len(ls.acceptQ) != 0 || ls.acceptHead != 0 {
		t.Fatalf("drained queue not reset: len=%d head=%d", len(ls.acceptQ), ls.acceptHead)
	}
}

// TestAcceptQueuePartialConsumptionRoundTrip: a snapshot taken with a
// partially-consumed accept queue serializes only the live window, and the
// restored kernel hands out the remaining connections in the same order.
func TestAcceptQueuePartialConsumptionRoundTrip(t *testing.T) {
	cfg := netCfg()
	k := New(cfg)
	owner := k.threads[0]
	openFrames(k, 10)
	var takenBefore []int
	for i := 0; i < 4; i++ {
		takenBefore = append(takenBefore, accept(t, k, owner))
	}
	ls := k.net.socks[ListenFD]
	if ls.acceptHead == 0 {
		t.Fatal("test did not produce a partially-consumed queue")
	}

	snap := k.Snapshot()
	var lsSnap *SocketSnap
	for i := range snap.Net.Socks {
		if snap.Net.Socks[i].Listen {
			lsSnap = &snap.Net.Socks[i]
		}
	}
	if lsSnap == nil {
		t.Fatal("no listen socket in snapshot")
	}
	if len(lsSnap.AcceptQ) != 6 {
		t.Fatalf("snapshot serialized %d accept-queue entries, want the 6 live ones (head must be normalized away)",
			len(lsSnap.AcceptQ))
	}

	k2 := New(cfg)
	if _, err := k2.RestoreState(snap, nil); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	ls2 := k2.net.socks[ListenFD]
	if ls2.acceptLen() != 6 || ls2.acceptHead != 0 {
		t.Fatalf("restored queue: len=%d head=%d, want 6 live at head 0", ls2.acceptLen(), ls2.acceptHead)
	}
	owner2 := k2.threads[0]
	for i := 0; i < 6; i++ {
		want := lsSnap.AcceptQ[i]
		if got := accept(t, k2, owner2); got != want {
			t.Fatalf("restored accept %d returned socket %d, want %d", i, got, want)
		}
	}
	// The restored sockets carry their overload state too.
	for _, sid := range takenBefore {
		a, b := k.net.socks[sid], k2.net.socks[sid]
		if a.lastActive != b.lastActive || a.reqBytes != b.reqBytes || a.served != b.served {
			t.Fatalf("socket %d overload state diverged: %+v vs %+v", sid, a, b)
		}
	}
}

// TestBacklogBoundRefusesSYNs: connections past the configured backlog are
// dropped and counted; the default bound applies when unset.
func TestBacklogBoundRefusesSYNs(t *testing.T) {
	cfg := netCfg()
	cfg.AcceptBacklog = 4
	k := New(cfg)
	openFrames(k, 7)
	ls := k.net.socks[ListenFD]
	if ls.acceptLen() != 4 {
		t.Fatalf("acceptLen = %d, want the backlog bound 4", ls.acceptLen())
	}
	if k.ConnsRefused != 3 {
		t.Fatalf("ConnsRefused = %d, want 3", k.ConnsRefused)
	}
	if k.net.Dropped != 3 {
		t.Fatalf("net.Dropped = %d, want 3", k.net.Dropped)
	}
	// Refused connections never got sockets or demux entries.
	for conn := 5; conn <= 7; conn++ {
		if _, ok := k.net.byConn.Get(conn); ok {
			t.Fatalf("refused conn %d has a demux entry", conn)
		}
	}

	if def := New(netCfg()); def.backlogLimit() != DefaultAcceptBacklog {
		t.Fatalf("default backlog = %d, want %d", def.backlogLimit(), DefaultAcceptBacklog)
	}
}

// TestIdleReaperClassifiesConnections: the reaper tears down both stalled
// (slowloris) and idle keep-alive connections after the timeout, classifying
// them by whether a response was ever written and request bytes are pending.
func TestIdleReaperClassifiesConnections(t *testing.T) {
	cfg := netCfg()
	cfg.IdleTimeoutTicks = 3
	k := New(cfg)
	owner := k.threads[0]
	openFrames(k, 2)
	slow := accept(t, k, owner) // request bytes pending, never served
	idle := accept(t, k, owner)
	// The idle one was served: the worker read the request and wrote the
	// response, then the client went quiet (keep-alive park).
	if n, block := k.syscallEffect(owner, sys.Request{
		Num: sys.SysRead, Resource: sys.ResNet, FD: idle, Blocking: true,
	}); block || n == 0 {
		t.Fatalf("read on idle socket: n=%d block=%v", n, block)
	}
	k.syscallEffect(owner, sys.Request{Num: sys.SysWrite, Resource: sys.ResNet, FD: idle, Bytes: 1000})

	// Two ticks pass: under the 3-tick timeout, nothing reaped yet.
	k.net.tick(1)
	k.net.tick(2)
	k.reapIdle()
	if k.ReapedIdle+k.ReapedSlowloris != 0 {
		t.Fatalf("reaper fired before the timeout: idle=%d slow=%d", k.ReapedIdle, k.ReapedSlowloris)
	}
	// A third tick crosses the timeout for both sockets.
	k.net.tick(3)
	k.reapIdle()
	if k.ReapedSlowloris != 1 || k.ReapedIdle != 1 {
		t.Fatalf("reap classification: idle=%d slow=%d, want 1 and 1", k.ReapedIdle, k.ReapedSlowloris)
	}
	for _, sid := range []int{slow, idle} {
		so := k.net.socks[sid]
		if !so.closed {
			t.Fatalf("reaped socket %d not closed", sid)
		}
		if _, ok := k.net.byConn.Get(so.conn); ok {
			t.Fatalf("reaped socket %d still demuxed", sid)
		}
	}
	// The listen socket and unaccepted backlog entries are never timed.
	if k.net.socks[ListenFD].closed {
		t.Fatal("reaper closed the listen socket")
	}
}

// TestReapWakesBlockedReader: reaping a connection whose owner is blocked
// in read wakes the reader with 0 (peer closed), so the worker runs its
// ordinary connection-close path.
func TestReapWakesBlockedReader(t *testing.T) {
	cfg := netCfg()
	cfg.IdleTimeoutTicks = 2
	k := New(cfg)
	owner := k.threads[0]
	k.deliverFrames([]Frame{{Conn: 1, Open: true}}) // bare SYN, no data
	sid := accept(t, k, owner)
	if _, block := k.syscallEffect(owner, sys.Request{
		Num: sys.SysRead, Resource: sys.ResNet, FD: sid, Blocking: true,
	}); !block {
		t.Fatal("read on an empty socket did not block")
	}
	k.net.tick(1)
	k.net.tick(2)
	k.reapIdle()
	if k.ReapedSlowloris+k.ReapedIdle != 1 {
		t.Fatalf("stalled socket not reaped: idle=%d slow=%d", k.ReapedIdle, k.ReapedSlowloris)
	}
	so := k.net.socks[sid]
	if len(so.waiters) != 0 {
		t.Fatal("blocked reader still parked on the reaped socket")
	}
	if owner.wakeResult != 0 {
		t.Fatalf("woken reader got %d, want 0 (peer closed)", owner.wakeResult)
	}
}
