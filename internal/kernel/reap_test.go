package kernel

import (
	"testing"

	"repro/internal/sys"
)

// TestCrashTeardownTouchesOnlyOwnedSockets pins the O(owned) complexity of
// crash cleanup: with 100k idle sockets owned by a healthy worker, reaping a
// dead thread visits exactly the dead thread's descriptors — the intrusive
// owned-socket list replaces the old full-table scan, and t.sock replaces
// the old every-waiter-queue sweep.
func TestCrashTeardownTouchesOnlyOwnedSockets(t *testing.T) {
	const bulk = 100_000
	cfg := netCfg()
	cfg.SocketTableSize = 1 << 18
	cfg.AcceptBacklog = 1 << 18
	cfg.FDLimit = 1 << 18
	k := New(cfg)
	survivor := k.threads[0]

	// 100k accepted, idle connections owned by the surviving thread.
	openFrames(k, bulk)
	for i := 0; i < bulk; i++ {
		accept(t, k, survivor)
	}

	// A second thread owns three data connections plus one quiet one it is
	// blocked reading (exercises the t.sock waiter-removal path too).
	dead := &Thread{tid: 4242, sock: -1}
	k.threads = append(k.threads, dead)
	k.deliverFrames([]Frame{
		{Conn: bulk + 1, Bytes: 300, Open: true},
		{Conn: bulk + 2, Bytes: 300, Open: true},
		{Conn: bulk + 3, Bytes: 300, Open: true},
		{Conn: bulk + 4, Open: true}, // bare SYN: no request bytes yet
	})
	deadSids := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		deadSids = append(deadSids, accept(t, k, dead))
	}
	quiet := deadSids[3]
	if _, block := k.syscallEffect(dead, sys.Request{
		Num: sys.SysRead, Resource: sys.ResNet, FD: quiet, Blocking: true,
	}); !block {
		t.Fatal("read on the quiet socket did not block")
	}
	if dead.sock != quiet {
		t.Fatalf("blocked reader's t.sock = %d, want %d", dead.sock, quiet)
	}

	before := k.net.sockInUse()
	visited := k.reapSockets(dead)
	if visited != len(deadSids) {
		t.Fatalf("crash teardown visited %d sockets, want exactly the %d owned by the dead thread",
			visited, len(deadSids))
	}
	if got := before - k.net.sockInUse(); got != len(deadSids) {
		t.Fatalf("teardown freed %d sockets, want %d", got, len(deadSids))
	}
	for _, sid := range deadSids {
		if !k.net.socks[sid].free {
			t.Fatalf("dead thread's socket %d not recycled", sid)
		}
	}
	if dead.sock != -1 || dead.fds != 0 || dead.ownHead != 0 {
		t.Fatalf("dead thread state not cleared: sock=%d fds=%d ownHead=%d",
			dead.sock, dead.fds, dead.ownHead)
	}
	if len(k.net.socks[quiet].waiters) != 0 {
		t.Fatal("dead thread still parked on a waiter queue")
	}
	// The survivor's fleet is untouched.
	if survivor.fds != bulk {
		t.Fatalf("survivor lost descriptors: fds=%d, want %d", survivor.fds, bulk)
	}
	if _, ok := k.net.byConn.Get(1); !ok {
		t.Fatal("survivor's connection lost its demux entry")
	}
}
