// Checkpoint serialization for the kernel: threads, per-context generation
// state (including mid-flight generation stacks), the network stack, the
// codebase walkers, and every counter. Pointers (threads, walkers) are
// serialized as identifiers — TIDs for threads, (region, context) pairs for
// kernel-code walkers — and relinked on restore.
package kernel

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sort"

	"repro/internal/flatmap"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/sys"
	"repro/internal/workload"
)

// Generation-stack entry wrappers and generator sources (see GenSnap).
const (
	wrapNone uint8 = iota // bare *workload.Limit
	wrapTail              // *workload.Tail (optionally around a Limit)
	wrapMode              // *modeForce around a Limit
)

const (
	srcRegion uint8 = iota // Limit around a kernel-code region walker
	srcProg                // Limit around a user program's walker
)

// GenSnap is the serialized form of one generation-stack entry. The walker a
// Limit draws from is identified either by kernel region name plus walker
// index (srcRegion) or by the owning thread (srcProg); the walker's own
// state is serialized elsewhere (CodeWalkers / ThreadSnap).
type GenSnap struct {
	Wrap     uint8
	Mode     isa.Mode   // wrapMode: forced instruction mode
	Extra    []isa.Inst // wrapTail: trailing instructions
	TailPos  int        // wrapTail: next Extra index
	HasInner bool       // an inner Limit exists (Tail may have drained its G)
	Src      uint8
	Region   string // srcRegion: region name
	WCtx     int    // srcRegion: walker index within the region
	TID      uint32 // srcProg: owning thread
	N        uint64 // remaining Limit budget
	Tmpl     pipeline.FedInst
	Done     action
}

// ProgSnap is the serialized form of a user program: identity for the
// factory rebuild, walker state, and the gob-encoded script state.
type ProgSnap struct {
	Name   string
	Slot   int
	Walker workload.WalkerSnap
	State  []byte
}

// ThreadSnap is the serialized form of one thread.
type ThreadSnap struct {
	TID        uint32
	PID        uint64
	ASN        uint16
	Kind       uint8
	State      uint8
	Burst      uint64
	SinceSched uint64
	LastCtx    int
	HasWake    bool
	WakeReq    sys.Request
	WakeResult int
	Sock       int
	Worker     bool
	Released   bool
	FDs        int
	Slot       int
	HasProg    bool
	Prog       ProgSnap
}

// FeedSnap is the serialized form of one context's generation state.
type FeedSnap struct {
	Buf            []pipeline.FedInst
	Base           uint64
	Stack          []GenSnap
	CurTID         uint32 // 0 = none
	IdleTID        uint32
	Paused         bool
	PendingReq     sys.Request
	SyscallRetired bool
	IntrNet        bool
}

// SocketSnap is the serialized form of one kernel socket. AcceptQ holds
// only the live window acceptQ[acceptHead:]; the head index is normalized
// away.
type SocketSnap struct {
	ID         int
	Listen     bool
	Conn       int
	AcceptQ    []int
	Data       int
	Closed     bool
	Waiters    []uint32
	Owner      uint32
	LastActive uint64
	ReqBytes   int
	Served     bool
	Free       bool
}

// NetSnap is the serialized form of the kernel network stack.
type NetSnap struct {
	Socks     []SocketSnap
	ByConn    []ConnSock // sorted by Conn
	SockFree  []int      // socket-table freelist, LIFO order preserved
	Pending   []Frame
	Now       uint64
	Ticks     uint64
	Delivered uint64
	Dropped   uint64
}

// ConnSock is one connection-id-to-socket-id mapping.
type ConnSock struct {
	Conn, Sock int
}

// CodeWalkerSnap is the state of one kernel-code walker.
type CodeWalkerSnap struct {
	Region string
	Ctx    int
	W      workload.WalkerSnap
}

// Snapshot is the kernel's complete mutable state.
type Snapshot struct {
	RNG         [4]uint64
	Mem         mem.Snapshot
	CodeWalkers []CodeWalkerSnap
	Threads     []ThreadSnap
	RunQ        []uint32
	Feeds       []FeedSnap
	Net         NetSnap

	NextASN  uint16
	ASNEpoch uint64
	NextTID  uint32
	NextPID  uint64
	RRIntCtx int
	LastTick uint64

	ContextSwitches uint64
	Preemptions     uint64
	SyscallCount    [sys.NumSyscalls]uint64
	VMFaults        [3]uint64
	ASNRecycles     uint64
	ClockInterrupts uint64
	NetInterrupts   uint64
	IdleScheduled   uint64
	SvcInstByRes    [5]uint64
	LockHolder      [5]uint32
	LockContentions uint64
	SpinInsts       uint64
	DiskReads       uint64
	WorkerCrashes   uint64
	WorkerRespawns  uint64
	ConnsRefused    uint64
	ReapedIdle      uint64
	ReapedSlowloris uint64

	// Finite-resource state: process table, effective (possibly squeezed)
	// pool capacities, and the exhaustion counters/gauges.
	ProcSlots       []uint32
	ProcFree        []int // process-table freelist, LIFO order preserved
	LiveUsers       int
	PendingRespawns int
	SockCapEff      int
	MbufCapEff      int
	FDLimEff        int
	ProcCapEff      int
	Squeezed        bool
	SockPoolRejects uint64
	MbufDrops       uint64
	FDRejects       uint64
	ForkRejects     uint64
	SockHighwater   int
	MbufHighwater   int
}

// ProgFactory rebuilds the structure of a user program identified by
// (name, slot); the checkpoint layer then overwrites its walker and script
// state. core provides one per workload.
type ProgFactory func(name string, slot int) *workload.ScriptProgram

// Snapshot captures the kernel's mutable state.
func (k *Kernel) Snapshot() Snapshot {
	s := Snapshot{
		RNG:             k.rng.State(),
		Mem:             k.Mem.Snapshot(),
		NextASN:         k.nextASN,
		ASNEpoch:        k.asnEpoch,
		NextTID:         k.nextTID,
		NextPID:         k.nextPID,
		RRIntCtx:        k.rrIntCtx,
		LastTick:        k.lastTick,
		ContextSwitches: k.ContextSwitches,
		Preemptions:     k.Preemptions,
		SyscallCount:    k.SyscallCount,
		VMFaults:        k.VMFaults,
		ASNRecycles:     k.ASNRecycles,
		ClockInterrupts: k.ClockInterrupts,
		NetInterrupts:   k.NetInterrupts,
		IdleScheduled:   k.IdleScheduled,
		SvcInstByRes:    k.SvcInstByRes,
		LockHolder:      k.lockHolder,
		LockContentions: k.LockContentions,
		SpinInsts:       k.SpinInsts,
		DiskReads:       k.DiskReads,
		WorkerCrashes:   k.WorkerCrashes,
		WorkerRespawns:  k.WorkerRespawns,
		ConnsRefused:    k.ConnsRefused,
		ReapedIdle:      k.ReapedIdle,
		ReapedSlowloris: k.ReapedSlowloris,
		ProcSlots:       append([]uint32(nil), k.procSlots...),
		ProcFree:        append([]int(nil), k.procFree...),
		LiveUsers:       k.liveUsers,
		PendingRespawns: k.pendingRespawns,
		SockCapEff:      k.sockCapEff,
		MbufCapEff:      k.mbufCapEff,
		FDLimEff:        k.fdLimEff,
		ProcCapEff:      k.procCapEff,
		Squeezed:        k.squeezed,
		SockPoolRejects: k.SockPoolRejects,
		MbufDrops:       k.MbufDrops,
		FDRejects:       k.FDRejects,
		ForkRejects:     k.ForkRejects,
		SockHighwater:   k.SockHighwater,
		MbufHighwater:   k.MbufHighwater,
	}

	// Kernel-code walkers, in deterministic (region, ctx) order.
	names := make([]string, 0, len(k.code.byName))
	for name := range k.code.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	regionOf := map[*workload.Walker]CodeWalkerSnap{}
	for _, name := range names {
		rw := k.code.byName[name]
		for c, w := range rw.ws {
			s.CodeWalkers = append(s.CodeWalkers, CodeWalkerSnap{Region: name, Ctx: c, W: w.Snapshot()})
			regionOf[w] = CodeWalkerSnap{Region: name, Ctx: c}
		}
	}
	progOf := map[*workload.Walker]uint32{}
	for _, t := range k.threads {
		if t.prog != nil {
			progOf[t.prog.Walker()] = t.tid
		}
	}

	for _, t := range k.threads {
		ts := ThreadSnap{
			TID: t.tid, PID: t.pid, ASN: t.asn,
			Kind: uint8(t.kind), State: uint8(t.state),
			Burst: t.burst, SinceSched: t.sinceSched, LastCtx: t.lastCtx,
			WakeResult: t.wakeResult, Sock: t.sock, Worker: t.worker,
			Released: t.released, FDs: t.fds, Slot: t.slot,
		}
		if t.wakeReq != nil {
			ts.HasWake = true
			ts.WakeReq = *t.wakeReq
		}
		if t.prog != nil {
			sp, ok := t.prog.(*workload.ScriptProgram)
			if !ok {
				panic(fmt.Sprintf("kernel: thread %d runs a non-script program %T", t.tid, t.prog))
			}
			ts.HasProg = true
			ts.Prog = ProgSnap{
				Name:   sp.ProgName,
				Slot:   sp.Slot,
				Walker: sp.W.Snapshot(),
				State:  encodeProgState(sp.State),
			}
		}
		s.Threads = append(s.Threads, ts)
	}
	for _, t := range k.runQ {
		s.RunQ = append(s.RunQ, t.tid)
	}

	s.Feeds = make([]FeedSnap, len(k.feeds))
	for i := range k.feeds {
		f := &k.feeds[i]
		fs := &s.Feeds[i]
		fs.Buf = append([]pipeline.FedInst(nil), f.buf[f.head:]...)
		fs.Base = f.base
		fs.Paused = f.paused
		fs.PendingReq = f.pendingReq
		fs.SyscallRetired = f.syscallRetired
		fs.IntrNet = f.intrNet
		if f.cur != nil {
			fs.CurTID = f.cur.tid
		}
		if f.idle != nil {
			fs.IdleTID = f.idle.tid
		}
		for _, e := range f.stack {
			fs.Stack = append(fs.Stack, snapGen(e, regionOf, progOf))
		}
	}

	ns := k.net
	s.Net = NetSnap{Pending: append([]Frame(nil), ns.pending...), Now: ns.now,
		Ticks: ns.ticks, Delivered: ns.Delivered, Dropped: ns.Dropped,
		SockFree: append([]int(nil), ns.sockFree...)}
	for _, so := range ns.socks {
		ss := SocketSnap{
			ID: so.id, Listen: so.listen, Conn: so.conn,
			AcceptQ: append([]int(nil), so.acceptQ[so.acceptHead:]...),
			Data:    so.data, Closed: so.closed, Owner: so.owner,
			LastActive: so.lastActive, ReqBytes: so.reqBytes, Served: so.served,
			Free: so.free,
		}
		for _, w := range so.waiters {
			ss.Waiters = append(ss.Waiters, w.tid)
		}
		s.Net.Socks = append(s.Net.Socks, ss)
	}
	ns.byConn.Range(func(conn, sock int) {
		s.Net.ByConn = append(s.Net.ByConn, ConnSock{Conn: conn, Sock: sock})
	})
	sort.Slice(s.Net.ByConn, func(i, j int) bool { return s.Net.ByConn[i].Conn < s.Net.ByConn[j].Conn })
	return s
}

// snapGen serializes one generation-stack entry. The generator shapes are a
// closed set (see the push sites in feed.go and net.go): a Limit over a
// walker, optionally wrapped in a Tail or a modeForce.
func snapGen(e genEntry, regionOf map[*workload.Walker]CodeWalkerSnap, progOf map[*workload.Walker]uint32) GenSnap {
	s := GenSnap{Tmpl: e.tmpl, Done: e.done}
	var inner *workload.Limit
	switch g := e.g.(type) {
	case *workload.Limit:
		s.Wrap = wrapNone
		inner = g
	case *workload.Tail:
		s.Wrap = wrapTail
		s.Extra = append([]isa.Inst(nil), g.Extra...)
		s.TailPos = g.Pos
		if g.G != nil {
			inner, _ = g.G.(*workload.Limit)
			if inner == nil {
				panic(fmt.Sprintf("kernel: unsnapshotable tail inner generator %T", g.G))
			}
		}
	case *modeForce:
		s.Wrap = wrapMode
		s.Mode = g.mode
		inner, _ = g.g.(*workload.Limit)
		if inner == nil {
			panic(fmt.Sprintf("kernel: unsnapshotable modeForce inner generator %T", g.g))
		}
	default:
		panic(fmt.Sprintf("kernel: unsnapshotable generator %T", e.g))
	}
	if inner == nil {
		return s
	}
	s.HasInner = true
	s.N = inner.N
	w, ok := inner.G.(*workload.Walker)
	if !ok {
		panic(fmt.Sprintf("kernel: unsnapshotable limit source %T", inner.G))
	}
	if ref, ok := regionOf[w]; ok {
		s.Src = srcRegion
		s.Region = ref.Region
		s.WCtx = ref.Ctx
		return s
	}
	if tid, ok := progOf[w]; ok {
		s.Src = srcProg
		s.TID = tid
		return s
	}
	panic("kernel: stack walker is neither kernel code nor a program")
}

// RestoreState overwrites the kernel's mutable state from a snapshot taken
// on a kernel with the same configuration. User programs are rebuilt through
// factory and their walker/script state overwritten; it returns the restored
// programs in thread order so the caller can rebuild its own program list.
func (k *Kernel) RestoreState(s Snapshot, factory ProgFactory) ([]*workload.ScriptProgram, error) {
	if len(s.Feeds) != len(k.feeds) {
		return nil, fmt.Errorf("kernel: snapshot has %d contexts, kernel has %d", len(s.Feeds), len(k.feeds))
	}
	k.rng.SetState(s.RNG)
	k.Mem.Restore(s.Mem)
	for _, cw := range s.CodeWalkers {
		rw := k.code.byName[cw.Region]
		if rw == nil || cw.Ctx < 0 || cw.Ctx >= len(rw.ws) {
			return nil, fmt.Errorf("kernel: snapshot references unknown code walker %s/%d", cw.Region, cw.Ctx)
		}
		rw.ws[cw.Ctx].Restore(cw.W)
	}

	var progs []*workload.ScriptProgram
	k.threads = k.threads[:0]
	for _, ts := range s.Threads {
		t := &Thread{
			tid: ts.TID, pid: ts.PID, asn: ts.ASN,
			kind: threadKind(ts.Kind), state: threadState(ts.State),
			burst: ts.Burst, sinceSched: ts.SinceSched, lastCtx: ts.LastCtx,
			wakeResult: ts.WakeResult, sock: ts.Sock, worker: ts.Worker,
			released: ts.Released, fds: ts.FDs, slot: ts.Slot,
		}
		if ts.HasWake {
			t.wakeReq = &sys.Request{}
			*t.wakeReq = ts.WakeReq
		}
		if ts.HasProg {
			prog := factory(ts.Prog.Name, ts.Prog.Slot)
			if prog == nil {
				return nil, fmt.Errorf("kernel: no factory rebuild for program %q slot %d", ts.Prog.Name, ts.Prog.Slot)
			}
			prog.W.Restore(ts.Prog.Walker)
			if err := decodeProgState(ts.Prog.State, prog.State); err != nil {
				return nil, fmt.Errorf("kernel: program %q slot %d state: %w", ts.Prog.Name, ts.Prog.Slot, err)
			}
			t.prog = prog
			progs = append(progs, prog)
		}
		k.threads = append(k.threads, t)
	}

	k.runQ = k.runQ[:0]
	for _, tid := range s.RunQ {
		t := k.threadByTID(tid)
		if t == nil {
			return nil, fmt.Errorf("kernel: run queue references unknown thread %d", tid)
		}
		k.runQ = append(k.runQ, t)
	}

	for i := range k.feeds {
		f := &k.feeds[i]
		fs := &s.Feeds[i]
		f.buf = append(f.buf[:0], fs.Buf...)
		f.head = 0
		f.base = fs.Base
		f.paused = fs.Paused
		f.pendingReq = fs.PendingReq
		f.syscallRetired = fs.SyscallRetired
		f.intrNet = fs.IntrNet
		f.cur = k.threadByTID(fs.CurTID)
		f.idle = k.threadByTID(fs.IdleTID)
		f.stack = f.stack[:0]
		for _, gs := range fs.Stack {
			e, err := k.rebuildGen(gs)
			if err != nil {
				return nil, fmt.Errorf("kernel: context %d stack: %w", i, err)
			}
			f.stack = append(f.stack, e)
		}
	}

	ns := k.net
	ns.socks = ns.socks[:0]
	for _, ss := range s.Net.Socks {
		so := &socket{
			id: ss.ID, listen: ss.Listen, conn: ss.Conn,
			acceptQ: append([]int(nil), ss.AcceptQ...),
			data:    ss.Data, closed: ss.Closed, owner: ss.Owner,
			lastActive: ss.LastActive, reqBytes: ss.ReqBytes, served: ss.Served,
			free: ss.Free,
		}
		for _, tid := range ss.Waiters {
			t := k.threadByTID(tid)
			if t == nil {
				return nil, fmt.Errorf("kernel: socket %d waiter references unknown thread %d", ss.ID, tid)
			}
			so.waiters = append(so.waiters, t)
		}
		ns.socks = append(ns.socks, so)
	}
	ns.byConn = flatmap.New(len(s.Net.ByConn))
	for _, cs := range s.Net.ByConn {
		ns.byConn.Put(cs.Conn, cs.Sock)
	}
	ns.sockFree = append(ns.sockFree[:0], s.Net.SockFree...)
	ns.pending = append(ns.pending[:0], s.Net.Pending...)
	ns.now = s.Net.Now
	ns.ticks = s.Net.Ticks
	ns.Delivered = s.Net.Delivered
	ns.Dropped = s.Net.Dropped

	// Rebuild derived network state the snapshot format knows nothing about
	// (checkpoint-by-derivation): per-thread owned-socket lists, and the
	// idle-timeout wheel. Fresh Thread/socket structs above already zeroed
	// ownHead, the intrusive links, idleWakeAt, and the dirty flag; the
	// scratch rings are always empty between cycles.
	ns.dirtyRing = ns.dirtyRing[:0]
	ns.idleDue = ns.idleDue[:0]
	ns.reapScratch = ns.reapScratch[:0]
	ns.idleWheel.Reset(ns.ticks)
	for _, so := range ns.socks {
		if so.free || so.listen || so.owner == 0 {
			continue
		}
		t := k.threadByTID(so.owner)
		if t == nil {
			// An orphaned socket (owner thread gone) is a state-consistency
			// problem for the auditor to flag, not a restore failure; the old
			// map-based restore tolerated it the same way.
			continue
		}
		ns.linkOwned(t, so)
		if !so.closed {
			// Canonical re-arm at lastActive+timeout: the live wheel may have
			// held a staler deadline, but a stale fire only re-arms lazily to
			// this same tick, so reap ticks are identical either way.
			k.armIdle(so)
		}
	}

	k.nextASN = s.NextASN
	k.asnEpoch = s.ASNEpoch
	k.nextTID = s.NextTID
	k.nextPID = s.NextPID
	k.rrIntCtx = s.RRIntCtx
	k.lastTick = s.LastTick
	k.ContextSwitches = s.ContextSwitches
	k.Preemptions = s.Preemptions
	k.SyscallCount = s.SyscallCount
	k.VMFaults = s.VMFaults
	k.ASNRecycles = s.ASNRecycles
	k.ClockInterrupts = s.ClockInterrupts
	k.NetInterrupts = s.NetInterrupts
	k.IdleScheduled = s.IdleScheduled
	k.SvcInstByRes = s.SvcInstByRes
	k.lockHolder = s.LockHolder
	k.LockContentions = s.LockContentions
	k.SpinInsts = s.SpinInsts
	k.DiskReads = s.DiskReads
	k.WorkerCrashes = s.WorkerCrashes
	k.WorkerRespawns = s.WorkerRespawns
	k.ConnsRefused = s.ConnsRefused
	k.ReapedIdle = s.ReapedIdle
	k.ReapedSlowloris = s.ReapedSlowloris
	k.procSlots = append(k.procSlots[:0], s.ProcSlots...)
	k.procFree = append(k.procFree[:0], s.ProcFree...)
	k.liveUsers = s.LiveUsers
	k.pendingRespawns = s.PendingRespawns
	k.sockCapEff = s.SockCapEff
	k.mbufCapEff = s.MbufCapEff
	k.fdLimEff = s.FDLimEff
	k.procCapEff = s.ProcCapEff
	k.squeezed = s.Squeezed
	k.SockPoolRejects = s.SockPoolRejects
	k.MbufDrops = s.MbufDrops
	k.FDRejects = s.FDRejects
	k.ForkRejects = s.ForkRejects
	k.SockHighwater = s.SockHighwater
	k.MbufHighwater = s.MbufHighwater
	return progs, nil
}

// rebuildGen reconstructs one generation-stack entry from its snapshot.
func (k *Kernel) rebuildGen(s GenSnap) (genEntry, error) {
	var inner *workload.Limit
	if s.HasInner {
		var w *workload.Walker
		switch s.Src {
		case srcRegion:
			rw := k.code.byName[s.Region]
			if rw == nil || s.WCtx < 0 || s.WCtx >= len(rw.ws) {
				return genEntry{}, fmt.Errorf("unknown code walker %s/%d", s.Region, s.WCtx)
			}
			w = rw.ws[s.WCtx]
		case srcProg:
			t := k.threadByTID(s.TID)
			if t == nil || t.prog == nil {
				return genEntry{}, fmt.Errorf("unknown program walker for thread %d", s.TID)
			}
			w = t.prog.Walker()
		default:
			return genEntry{}, fmt.Errorf("unknown generator source %d", s.Src)
		}
		inner = &workload.Limit{G: w, N: s.N}
	}
	e := genEntry{tmpl: s.Tmpl, done: s.Done}
	switch s.Wrap {
	case wrapNone:
		if inner == nil {
			return genEntry{}, fmt.Errorf("bare entry with no inner generator")
		}
		e.g = inner
	case wrapTail:
		tl := &workload.Tail{Extra: append([]isa.Inst(nil), s.Extra...), Pos: s.TailPos}
		if inner != nil {
			tl.G = inner
		}
		e.g = tl
	case wrapMode:
		if inner == nil {
			return genEntry{}, fmt.Errorf("modeForce entry with no inner generator")
		}
		e.g = &modeForce{g: inner, mode: s.Mode}
	default:
		return genEntry{}, fmt.Errorf("unknown generator wrapper %d", s.Wrap)
	}
	return e, nil
}

// encodeProgState gob-encodes a program's script state (nil encodes empty).
func encodeProgState(v any) []byte {
	if v == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		panic(fmt.Sprintf("kernel: encoding program state %T: %v", v, err))
	}
	return buf.Bytes()
}

// decodeProgState decodes a gob-encoded script state into the freshly built
// program's state pointer (both are pointers to the same concrete type).
func decodeProgState(b []byte, dst any) error {
	if len(b) == 0 {
		if dst != nil {
			return fmt.Errorf("snapshot has no state but program expects %T", dst)
		}
		return nil
	}
	if dst == nil {
		return fmt.Errorf("snapshot has state but program has none")
	}
	var v any
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
		return err
	}
	dv := reflect.ValueOf(v)
	dd := reflect.ValueOf(dst)
	if dv.Type() != dd.Type() {
		return fmt.Errorf("state type mismatch: snapshot %T, program %T", v, dst)
	}
	dd.Elem().Set(dv.Elem())
	return nil
}
