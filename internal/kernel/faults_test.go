package kernel

import (
	"testing"

	"repro/internal/conflict"
	"repro/internal/faults"
	"repro/internal/pipeline"
	"repro/internal/sys"
	"repro/internal/workload"
)

// TestAllocASNWraparound pins the allocator's wrap behavior: numbers run
// 1..MaxASN, wrap back to 1, and every post-wrap allocation invalidates the
// recycled ASN's TLB entries and counts a recycle.
func TestAllocASNWraparound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxASN = 4
	k, e := sim(t, cfg, pipeline.SMTConfig())

	want := []uint16{1, 2, 3, 4, 1, 2, 3, 4, 1}
	ag := conflict.Agent{TID: 1}
	for i, w := range want {
		if i == 4 {
			// Plant a translation under the ASN about to be recycled.
			e.ITLB.Insert(1, 0x1000, 0x2000, ag)
			e.DTLB.Insert(1, 0x3000, 0x4000, ag)
		}
		got := k.allocASN()
		if got != w {
			t.Fatalf("alloc %d: ASN %d, want %d", i, got, w)
		}
	}
	// The epoch flips on the allocation that wraps the counter (index 3),
	// so that call and every later one counts a recycle: indices 3..8.
	if k.ASNRecycles != 6 {
		t.Fatalf("ASNRecycles = %d, want 6", k.ASNRecycles)
	}
	if _, hit := e.ITLB.Lookup(1, 0x1000, ag); hit {
		t.Fatal("ITLB entry survived ASN recycling")
	}
	if _, hit := e.DTLB.Lookup(1, 0x3000, ag); hit {
		t.Fatal("DTLB entry survived ASN recycling")
	}
}

// workerProgram is a worker that alternates compute with a cheap syscall —
// giving the crash injector syscall boundaries to sample.
func workerProgram(name string, pid int, seed uint64) *workload.ScriptProgram {
	return userProgram(name, pid, seed, func(call int) workload.Step {
		if call%2 == 1 {
			return workload.Step{Kind: workload.StepRun, N: 2000}
		}
		return workload.Step{Kind: workload.StepSyscall,
			Req: sys.Request{Num: sys.SysGetpid}}
	})
}

// TestWorkerCrashTeardownAndRespawn: a crash at a syscall boundary runs the
// full involuntary-exit path — the thread exits, its address space is torn
// down at retirement (same path as a voluntary exit) — and the master forks
// a replacement worker that then runs.
func TestWorkerCrashTeardownAndRespawn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CyclesPer10ms = 1 << 40
	k, e := sim(t, cfg, pipeline.SMTConfig())

	k.SetFaults(faults.NewInjector(faults.Config{Seed: 1, CrashRate: 1, MaxCrashes: 1}))
	respawns := 0
	k.SetRespawn(func() workload.Program {
		respawns++
		return workerProgram("respawned", 9, 77)
	})
	victim := k.AddWorker(workerProgram("worker", 1, 31))

	e.Run(1_500_000)
	e.CheckInvariants()

	if k.WorkerCrashes != 1 {
		t.Fatalf("WorkerCrashes = %d, want 1", k.WorkerCrashes)
	}
	if k.WorkerRespawns != 1 || respawns != 1 {
		t.Fatalf("WorkerRespawns = %d (factory calls %d), want 1", k.WorkerRespawns, respawns)
	}
	if victim.state != tsExited {
		t.Fatalf("crashed worker state = %v, want exited", victim.state)
	}
	if k.Mem.MappedPages(victim.pid) != 0 {
		t.Fatal("crashed worker's pages not released")
	}
	if k.SyscallCount[sys.SysExit] == 0 || k.SyscallCount[sys.SysFork] == 0 {
		t.Fatalf("exit/fork not accounted: exit=%d fork=%d",
			k.SyscallCount[sys.SysExit], k.SyscallCount[sys.SysFork])
	}
	// The replacement is a worker too, with its own pid and ASN, and it ran.
	var repl *Thread
	for _, th := range k.Threads() {
		if th.worker && th != victim {
			repl = th
		}
	}
	if repl == nil {
		t.Fatal("no replacement worker thread")
	}
	if repl.pid == victim.pid {
		t.Fatal("replacement reused the crashed worker's pid")
	}
	if repl.state == tsExited {
		t.Fatal("replacement exited")
	}
	if e.ThreadStats(repl.tid).Retired == 0 {
		t.Fatal("replacement worker never retired an instruction")
	}
}

// TestCrashReleasesHeldLocksAndSockets: a worker that dies owning a socket
// has it reaped (a Close goes out so the client learns) and held kernel
// locks are released.
func TestCrashReleasesHeldLocksAndSockets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CyclesPer10ms = 1 << 40
	k, _ := sim(t, cfg, pipeline.SMTConfig())
	nic := &scriptNIC{}
	k.SetNIC(nic)

	th := k.AddWorker(workerProgram("w", 1, 5))
	// Hand the worker an accepted socket and a held lock, then crash it.
	k.net.socks = append(k.net.socks, &socket{id: 1, conn: 42, owner: th.tid})
	k.net.linkOwned(th, k.net.socks[1])
	k.net.byConn.Put(42, 1)
	k.lockHolder[sys.ResFile] = th.tid

	k.SetFaults(faults.NewInjector(faults.Config{Seed: 1, CrashRate: 1, MaxCrashes: 1}))
	k.crashWorker(0, th)

	if k.lockHolder[sys.ResFile] == th.tid {
		t.Fatal("crashed worker still holds a lock")
	}
	s := k.net.socks[1]
	if !s.free {
		t.Fatal("owned socket not reaped and recycled")
	}
	if _, known := k.net.byConn.Get(42); known {
		t.Fatal("reaped connection still demuxable")
	}
	if len(k.net.sockFree) != 1 || k.net.sockFree[0] != 1 {
		t.Fatalf("reaped socket slot not on the free list: %v", k.net.sockFree)
	}
	if len(nic.sent) != 1 || !nic.sent[0].Close || nic.sent[0].Conn != 42 {
		t.Fatalf("no reset sent to the client: %+v", nic.sent)
	}
}

// TestNoCrashWithoutInjector: worker threads without a fault injector never
// take the crash path (zero perturbation).
func TestNoCrashWithoutInjector(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CyclesPer10ms = 1 << 40
	k, e := sim(t, cfg, pipeline.SMTConfig())
	k.AddWorker(workerProgram("w", 1, 3))
	e.Run(400_000)
	if k.WorkerCrashes != 0 || k.WorkerRespawns != 0 {
		t.Fatalf("faults fired without an injector: crashes=%d respawns=%d",
			k.WorkerCrashes, k.WorkerRespawns)
	}
}
