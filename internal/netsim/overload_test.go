package netsim

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/kernel"
)

// TestSlowClientTricklesRequest: a slowloris client opens with a bare SYN,
// then dribbles the request in chunks every TrickleTicks; the retransmit
// timer stays off until the request is fully sent.
func TestSlowClientTricklesRequest(t *testing.T) {
	n, _ := lossy(t,
		faults.Config{Seed: 1, SlowClientRate: 1, TrickleTicks: 4},
		Config{Clients: 1, Seed: 1, RequestBytes: 300})
	if n.clients[0].kind != ckSlow {
		t.Fatalf("client not classified slow: kind=%d", n.clients[0].kind)
	}

	out := n.Tick(0)
	if len(out) != 1 || !out[0].Open || out[0].Bytes != 0 {
		t.Fatalf("slow client should open with a bare SYN, got %+v", out)
	}
	conn := out[0].Conn

	// Chunks of RequestBytes/4 land every 4 ticks; no retransmit fires
	// mid-trickle even though the server never answers.
	var got int
	var chunkTicks []uint64
	for i := uint64(1); i <= 20; i++ {
		for _, fr := range n.Tick(i) {
			if fr.Conn != conn || fr.Bytes == 0 {
				t.Fatalf("tick %d: unexpected frame %+v", i, fr)
			}
			got += fr.Bytes
			chunkTicks = append(chunkTicks, n.ticks)
		}
		if got == 300 {
			break
		}
	}
	if got != 300 {
		t.Fatalf("trickle delivered %d of 300 request bytes (chunks at %v)", got, chunkTicks)
	}
	if len(chunkTicks) != 4 {
		t.Fatalf("expected 4 chunks of 75, saw %d at %v", len(chunkTicks), chunkTicks)
	}
	for i := 1; i < len(chunkTicks); i++ {
		if chunkTicks[i]-chunkTicks[i-1] != 4 {
			t.Fatalf("chunk gap %d ticks, want TrickleTicks=4 (schedule %v)",
				chunkTicks[i]-chunkTicks[i-1], chunkTicks)
		}
	}
	if n.Retransmits != 0 {
		t.Fatalf("retransmit fired mid-trickle: %d", n.Retransmits)
	}
	// Only after the last chunk does the ordinary retry timer arm.
	if n.clients[0].retryAt == 0 {
		t.Fatal("retry timer not armed after trickle completed")
	}

	// The server answers; the request completes and records its latency.
	n.Transmit(kernel.Frame{Conn: conn, Bytes: n.FileSize(conn)}, 0)
	if n.Completed != 1 {
		t.Fatalf("completed = %d", n.Completed)
	}
	if n.Latency.Count != 1 {
		t.Fatalf("latency histogram count = %d, want 1", n.Latency.Count)
	}
}

// TestStormClientHoldsConnection: a keep-alive storm client completes its
// request, then parks on the open connection for StormHoldTicks before the
// next request — which reuses the connection instead of opening fresh.
func TestStormClientHoldsConnection(t *testing.T) {
	n, _ := lossy(t,
		faults.Config{Seed: 2, StormClientRate: 1, StormHoldTicks: 10},
		Config{Clients: 1, Seed: 1, RequestsPerConn: 8})
	if n.clients[0].kind != ckStorm {
		t.Fatalf("client not classified storm: kind=%d", n.clients[0].kind)
	}

	out := n.Tick(0)
	if len(out) != 1 || !out[0].Open {
		t.Fatalf("no opening request: %+v", out)
	}
	conn := out[0].Conn
	n.Transmit(kernel.Frame{Conn: conn, Bytes: n.FileSize(conn)}, 0)
	if n.Completed != 1 {
		t.Fatalf("completed = %d", n.Completed)
	}
	if n.clients[0].conn != conn {
		t.Fatal("storm client released its connection at completion")
	}

	// Hold: nothing issues for StormHoldTicks; then the next request rides
	// the held connection (no Open flag).
	doneAt := n.ticks
	var next []kernel.Frame
	var nextAt uint64
	for i := uint64(1); i <= 20 && len(next) == 0; i++ {
		for _, fr := range n.Tick(doneAt + i) {
			if fr.Ack {
				continue
			}
			next = append(next, fr)
			nextAt = n.ticks
		}
	}
	if len(next) != 1 || next[0].Open || next[0].Conn != conn {
		t.Fatalf("storm client's next request should reuse conn %d without Open: %+v", conn, next)
	}
	if held := nextAt - doneAt; held <= 10 {
		t.Fatalf("storm client held only %d ticks, want > StormHoldTicks=10", held)
	}
}

// TestBurstPoolActivatesInWaves: dormant flash-crowd clients wake BurstSize
// at a time on the BurstEvery cadence, each issuing a one-shot connection
// and returning to the pool after completion.
func TestBurstPoolActivatesInWaves(t *testing.T) {
	n, _ := lossy(t,
		faults.Config{Seed: 3, BurstEvery: 5, BurstSize: 2},
		Config{Clients: 0, Seed: 1, BurstPool: 4})
	// Config.Clients 0 defaults to 128 base clients; park them far in the
	// future so only the burst pool speaks.
	for i := 0; i < n.cfg.Clients; i++ {
		n.clients[i].nextAt = 1 << 62
	}

	opens := map[uint64]int{} // tick -> fresh connections opened
	for i := uint64(0); i < 11; i++ {
		for _, fr := range n.Tick(i) {
			if fr.Open {
				opens[n.ticks]++
				// Serve immediately: one-shot clients finish and re-park.
				n.Transmit(kernel.Frame{Conn: fr.Conn, Bytes: n.FileSize(fr.Conn)}, 0)
			}
		}
	}
	if opens[5] != 2 || opens[10] != 2 {
		t.Fatalf("burst waves of 2 expected at ticks 5 and 10, got %v", opens)
	}
	if len(opens) != 2 {
		t.Fatalf("connections opened outside burst waves: %v", opens)
	}
	for i := n.cfg.Clients; i < len(n.clients); i++ {
		c := &n.clients[i]
		if c.state != csIdle || (c.nextAt != dormantTick && c.nextAt < 1<<32) {
			t.Fatalf("burst client %d did not return to the dormant pool: %+v", i, *c)
		}
		if c.conn != 0 {
			t.Fatalf("burst client %d still holds conn %d after completion", i, c.conn)
		}
	}
}

// TestOverloadDeterministicAndSnapshotRoundTrip: the full overload mix is
// bit-reproducible from a seed, and a mid-run snapshot restored into a
// freshly-built fleet continues identically to the uninterrupted original.
func TestOverloadDeterministicAndSnapshotRoundTrip(t *testing.T) {
	fcfg := faults.Config{
		Seed: 7, SlowClientRate: 0.3, TrickleTicks: 3,
		StormClientRate: 0.3, StormHoldTicks: 6, BurstEvery: 4, BurstSize: 2,
	}
	ncfg := Config{Clients: 8, Seed: 5, RequestsPerConn: 3, BurstPool: 4}
	build := func() *Network {
		n, _ := lossy(t, fcfg, ncfg)
		return n
	}

	type counters struct {
		req, done, retx, abort uint64
		latCount, latSum       uint64
	}
	grab := func(n *Network) counters {
		return counters{n.Requests, n.Completed, n.Retransmits, n.Aborted,
			n.Latency.Count, n.Latency.Sum}
	}

	a := build()
	for i := uint64(0); i < 100; i++ {
		echoServer(a, a.Tick(i))
	}
	snap := a.Snapshot()

	// Restored copy must pick up mid-trickle sends, parked burst clients,
	// held storm connections, and the partial latency histogram.
	b := build()
	b.Restore(snap)
	if grab(a) != grab(b) {
		t.Fatalf("restore lost counters: a=%+v b=%+v", grab(a), grab(b))
	}
	for i := uint64(100); i < 200; i++ {
		echoServer(a, a.Tick(i))
		echoServer(b, b.Tick(i))
	}
	if grab(a) != grab(b) {
		t.Fatalf("restored fleet diverged: a=%+v b=%+v", grab(a), grab(b))
	}
	if a.Latency != b.Latency {
		t.Fatal("latency histograms diverged after restore")
	}
	if a.Completed == 0 || a.Latency.Count == 0 {
		t.Fatalf("overload mix completed nothing (done=%d lat=%d)", a.Completed, a.Latency.Count)
	}

	// And an identically-seeded uninterrupted run matches too.
	c := build()
	for i := uint64(0); i < 200; i++ {
		echoServer(c, c.Tick(i))
	}
	if grab(a) != grab(c) {
		t.Fatalf("seeded rerun diverged: a=%+v c=%+v", grab(a), grab(c))
	}
}

// TestOverloadOffIsInert: a zero overload config classifies nobody, parks
// no burst pool, and records no latency — the zero-perturbation guarantee
// at the netsim layer.
func TestOverloadOffIsInert(t *testing.T) {
	n, _ := lossy(t, faults.Config{Seed: 1, LossRate: 0.1}, Config{Clients: 4, Seed: 9})
	for i := uint64(0); i < 200; i++ {
		echoServer(n, n.Tick(i))
	}
	for i := range n.clients {
		if n.clients[i].kind != ckNormal {
			t.Fatalf("client %d classified %d with overload off", i, n.clients[i].kind)
		}
	}
	if n.Latency.Count != 0 {
		t.Fatalf("latency recorded %d observations with overload off", n.Latency.Count)
	}
}
