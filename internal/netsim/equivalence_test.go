// Equivalence tests: the event-driven driver (timer wheel + due list) must
// produce a frame stream and final state bit-identical to the reference
// full-scan driver across plain, faulty, overload, and churn scenarios.
package netsim

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/kernel"
)

// fakeServer is a minimal deterministic server peer: it accepts
// connections, answers each request with segmented response data at a
// bounded per-tick rate, and (under a stateless hash coin) occasionally
// closes a connection mid-response like a crashed worker would — enough to
// exercise every client path (acks, trickle, retries, resets, bursts,
// keep-alive FINs) without dragging the whole kernel in.
type fakeServer struct {
	net   *Network
	tick  uint64
	left  map[int]int // conn -> unsent response bytes
	known map[int]bool
	order []int // conns in arrival order (deterministic iteration)
	// closeMod, when > 0, closes a conn mid-stream whenever a pure hash
	// of (conn, tick) lands on 0 mod closeMod (≈ 1/closeMod per conn-tick).
	closeMod uint64
}

func newFakeServer(n *Network, closeMod uint64) *fakeServer {
	return &fakeServer{
		net:      n,
		left:     map[int]int{},
		known:    map[int]bool{},
		closeMod: closeMod,
	}
}

// closeCoin is a pure function of (conn, tick): clonable server state.
func (s *fakeServer) closeCoin(conn int) bool {
	if s.closeMod == 0 {
		return false
	}
	h := uint64(conn)*0x9e3779b97f4a7c15 ^ s.tick*0xbf58476d1ce4e5b9
	h ^= h >> 29
	return h%s.closeMod == 0
}

// step consumes one tick's client→server frames and transmits responses.
func (s *fakeServer) step(frames []kernel.Frame) {
	s.tick++
	for _, fr := range frames {
		if fr.Corrupt || fr.Ack || fr.Conn == 0 {
			continue
		}
		if fr.Close {
			delete(s.known, fr.Conn)
			delete(s.left, fr.Conn)
			continue
		}
		if !s.known[fr.Conn] {
			s.known[fr.Conn] = true
			s.order = append(s.order, fr.Conn)
		}
		if fr.Bytes > 0 && s.left[fr.Conn] == 0 {
			if sz := s.net.FileSize(fr.Conn); sz > 0 {
				s.left[fr.Conn] = sz
			}
		}
	}
	kept := s.order[:0]
	for _, conn := range s.order {
		if !s.known[conn] {
			continue
		}
		kept = append(kept, conn)
		if s.closeCoin(conn) {
			delete(s.known, conn)
			delete(s.left, conn)
			kept = kept[:len(kept)-1]
			s.net.Transmit(kernel.Frame{Conn: conn, Close: true}, 0)
			continue
		}
		// Up to two 1460-byte segments per tick per connection.
		for seg := 0; seg < 2 && s.left[conn] > 0; seg++ {
			chunk := 1460
			if chunk > s.left[conn] {
				chunk = s.left[conn]
			}
			s.left[conn] -= chunk
			s.net.Transmit(kernel.Frame{Conn: conn, Bytes: chunk}, 0)
		}
	}
	s.order = kept
}

// clone deep-copies the server for restored-continuation comparisons.
func (s *fakeServer) clone(n *Network) *fakeServer {
	c := newFakeServer(n, s.closeMod)
	c.tick = s.tick
	for k, v := range s.left {
		c.left[k] = v
	}
	for k, v := range s.known {
		c.known[k] = v
	}
	c.order = append([]int{}, s.order...)
	return c
}

type scenario struct {
	name   string
	cfg    Config
	faults faults.Config
	ticks  int
	// serverCloseMod injects server-side mid-stream closes at a rate of
	// about one per conn per serverCloseMod ticks (0 = none).
	serverCloseMod uint64
}

func scenarios() []scenario {
	return []scenario{
		{
			name:  "paper-plain",
			cfg:   Config{Clients: 128, Seed: 99, RequestBytes: 300},
			ticks: 2000,
		},
		{
			name: "keepalive-think",
			cfg:  Config{Clients: 128, Seed: 3, RequestBytes: 300, ThinkTicks: 7, RequestsPerConn: 4},

			ticks: 2000,
		},
		{
			name: "faults-lossy",
			cfg:  Config{Clients: 128, Seed: 5, RequestBytes: 300, ThinkTicks: 2},
			faults: faults.Config{
				Seed: 11, LossRate: 0.05, CorruptRate: 0.02,
				DelayRate: 0.10, MaxDelayTicks: 4,
			},
			ticks:          2500,
			serverCloseMod: 500,
		},
		{
			name: "overload-mixed",
			cfg: Config{
				Clients: 128, Seed: 8, RequestBytes: 300, ThinkTicks: 3,
				RequestsPerConn: 4, BurstPool: 64,
			},
			faults: faults.Config{
				Seed: 13, LossRate: 0.02,
				SlowClientRate: 0.10, TrickleTicks: 3,
				StormClientRate: 0.10, StormHoldTicks: 12,
				BurstEvery: 10, BurstSize: 16,
			},
			ticks:          2500,
			serverCloseMod: 250,
		},
		{
			name: "stagger-large",
			cfg: Config{
				Clients: 1000, Seed: 21, RequestBytes: 300, ThinkTicks: 20,
				StaggerTicks: 50,
			},
			faults: faults.Config{Seed: 17, LossRate: 0.01},
			ticks:  1200,
		},
	}
}

// buildNet constructs a Network (and injector) for a scenario.
func buildNet(sc scenario, ref bool) *Network {
	n := New(sc.cfg)
	n.SetReferenceScan(ref)
	if sc.faults != (faults.Config{}) {
		n.SetFaults(faults.NewInjector(sc.faults))
	}
	return n
}

func snapBytes(t *testing.T, n *Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(n.Snapshot()); err != nil {
		t.Fatalf("encoding snapshot: %v", err)
	}
	return buf.Bytes()
}

// TestEventDrivenMatchesReference pins byte-identity of the event-driven
// driver against the reference full-scan driver: same frames every tick,
// same final serialized state.
func TestEventDrivenMatchesReference(t *testing.T) {
	for _, sc := range scenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			ev := buildNet(sc, false)
			rf := buildNet(sc, true)
			evSrv := newFakeServer(ev, sc.serverCloseMod)
			rfSrv := newFakeServer(rf, sc.serverCloseMod)
			for tick := 1; tick <= sc.ticks; tick++ {
				a := ev.Tick(uint64(tick))
				b := rf.Tick(uint64(tick))
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("tick %d: frame streams diverge\nevent:     %v\nreference: %v", tick, a, b)
				}
				// The kernel copies the batch out within the cycle; do the
				// same before the next Tick reuses the buffer.
				evSrv.step(append([]kernel.Frame{}, a...))
				rfSrv.step(append([]kernel.Frame{}, b...))
			}
			if ev.Completed == 0 {
				t.Fatal("scenario completed no requests; not exercising anything")
			}
			if got, want := snapBytes(t, ev), snapBytes(t, rf); !bytes.Equal(got, want) {
				t.Fatal("final serialized state diverges between drivers")
			}
		})
	}
}

// TestOutstandingMatchesScan pins the O(1) waiting gauge against a direct
// state count while the overload scenario churns.
func TestOutstandingMatchesScan(t *testing.T) {
	sc := scenarios()[3]
	n := buildNet(sc, false)
	srv := newFakeServer(n, sc.serverCloseMod)
	for tick := 1; tick <= 800; tick++ {
		srv.step(append([]kernel.Frame{}, n.Tick(uint64(tick))...))
		want := 0
		for i := range n.clients {
			if n.clients[i].state == csWaiting {
				want++
			}
		}
		if got := n.Outstanding(); got != want {
			t.Fatalf("tick %d: Outstanding() = %d, scan says %d", tick, got, want)
		}
	}
}

// TestSnapshotRoundTripMidWheel checkpoints the overload scenario at a tick
// where retransmit timers are armed and the dormant burst pool is
// populated, restores into a fresh Network, and requires (a) an identical
// re-serialization and (b) a bit-identical continuation — the canonical
// re-arm must reconstruct the wheel, heap, demux index, and waiting gauge
// exactly.
func TestSnapshotRoundTripMidWheel(t *testing.T) {
	sc := scenarios()[3] // overload-mixed: retries + bursts + keep-alive
	const half = 1000

	n := buildNet(sc, false)
	srv := newFakeServer(n, sc.serverCloseMod)
	for tick := 1; tick <= half; tick++ {
		srv.step(append([]kernel.Frame{}, n.Tick(uint64(tick))...))
	}

	// The mid-wheel preconditions the satellite asks for: armed retransmit
	// timers and a non-empty dormant pool at checkpoint time.
	armed, dormant := 0, 0
	for i := range n.clients {
		if n.clients[i].retryAt != 0 {
			armed++
		}
		if n.clients[i].nextAt == dormantTick {
			dormant++
		}
	}
	if armed == 0 {
		t.Fatal("no armed retransmit timers at checkpoint tick; scenario too tame")
	}
	if dormant == 0 {
		t.Fatal("dormant burst pool empty at checkpoint tick; scenario too tame")
	}

	snap := n.Snapshot()
	restored := New(sc.cfg)
	inj := faults.NewInjector(sc.faults)
	inj.Restore(n.inj.Snapshot())
	// SetFaults would redraw client kinds from the injector stream; attach
	// the injector first, then overwrite all client state from the
	// snapshot (the core restore path does the same dance).
	restored.SetFaults(inj)
	restored.Restore(snap)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(restored.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var orig bytes.Buffer
	if err := gob.NewEncoder(&orig).Encode(snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), orig.Bytes()) {
		t.Fatal("restore→snapshot is not the identity")
	}

	// Continue both under identical servers: every subsequent tick must
	// match bit for bit.
	rsrv := srv.clone(restored)
	for tick := half + 1; tick <= half+600; tick++ {
		a := n.Tick(uint64(tick))
		b := restored.Tick(uint64(tick))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("tick %d: restored continuation diverges", tick)
		}
		fr := append([]kernel.Frame{}, a...)
		srv.step(fr)
		rsrv.step(append([]kernel.Frame{}, b...))
	}
}
