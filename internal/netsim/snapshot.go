// Checkpoint serialization for the network simulator and client fleet.
package netsim

import (
	"sort"

	"repro/internal/flatmap"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// ClientSnap is the serialized form of one client state machine.
type ClientSnap struct {
	State     uint8
	Kind      uint8
	Conn      int
	NextAt    uint64
	Got       int
	Want      int
	ReqsLeft  int
	Closing   bool
	Acks      int
	RetryAt   uint64
	Retries   int
	Timeout   int
	SendLeft  int
	SendAt    uint64
	StartTick uint64
}

// DelayedSnap is one frame in transit under fault-injected delay.
type DelayedSnap struct {
	Due   uint64
	Frame kernel.Frame
}

// FileSnap records one connection's requested file size.
type FileSnap struct {
	Conn int
	Size int
}

// Snapshot captures the network's complete mutable state.
type Snapshot struct {
	RNG         [4]uint64
	Clients     []ClientSnap
	Ticks       uint64
	NextID      int
	Files       []FileSnap
	DelayedIn   []DelayedSnap
	DelayedOut  []DelayedSnap
	Requests    uint64
	Completed   uint64
	BytesServed uint64
	PerClass    [4]uint64
	Retransmits uint64
	Aborted     uint64
	Resets      uint64
	Latency     stats.Hist
}

// Snapshot returns the network's mutable state. The files map is emitted
// connection-sorted so serialization of a deterministic run is deterministic.
func (n *Network) Snapshot() Snapshot {
	s := Snapshot{
		RNG:         n.rng.State(),
		Clients:     make([]ClientSnap, len(n.clients)),
		Ticks:       n.ticks,
		NextID:      n.nextID,
		Requests:    n.Requests,
		Completed:   n.Completed,
		BytesServed: n.BytesServed,
		PerClass:    n.PerClass,
		Retransmits: n.Retransmits,
		Aborted:     n.Aborted,
		Resets:      n.Resets,
		Latency:     n.Latency,
	}
	for i, c := range n.clients {
		s.Clients[i] = ClientSnap{
			State: uint8(c.state), Kind: uint8(c.kind), Conn: c.conn, NextAt: c.nextAt,
			Got: c.got, Want: c.want, ReqsLeft: c.reqsLeft, Closing: c.closing,
			Acks: c.acks, RetryAt: c.retryAt, Retries: c.retries, Timeout: c.timeout,
			SendLeft: c.sendLeft, SendAt: c.sendAt, StartTick: c.startTick,
		}
	}
	n.files.Range(func(conn, size int) {
		s.Files = append(s.Files, FileSnap{Conn: conn, Size: size})
	})
	sort.Slice(s.Files, func(i, j int) bool { return s.Files[i].Conn < s.Files[j].Conn })
	for _, d := range n.delayedIn {
		s.DelayedIn = append(s.DelayedIn, DelayedSnap{Due: d.due, Frame: d.fr})
	}
	for _, d := range n.delayedOut {
		s.DelayedOut = append(s.DelayedOut, DelayedSnap{Due: d.due, Frame: d.fr})
	}
	return s
}

// Restore overwrites the network's state from a snapshot taken on a network
// with the same client count.
func (n *Network) Restore(s Snapshot) {
	if len(s.Clients) != len(n.clients) {
		panic("netsim: snapshot geometry mismatch")
	}
	n.rng.SetState(s.RNG)
	for i, c := range s.Clients {
		n.clients[i] = client{
			state: clientState(c.State), kind: clientKind(c.Kind), conn: c.Conn, nextAt: c.NextAt,
			got: c.Got, want: c.Want, reqsLeft: c.ReqsLeft, closing: c.Closing,
			acks: c.Acks, retryAt: c.RetryAt, retries: c.Retries, timeout: c.Timeout,
			sendLeft: c.SendLeft, sendAt: c.SendAt, startTick: c.StartTick,
		}
	}
	n.ticks = s.Ticks
	n.nextID = s.NextID
	n.files = flatmap.New(len(s.Files))
	for _, f := range s.Files {
		n.files.Put(f.Conn, f.Size)
	}
	n.delayedIn = n.delayedIn[:0]
	for _, d := range s.DelayedIn {
		n.delayedIn = append(n.delayedIn, delayedFrame{due: d.Due, fr: d.Frame})
	}
	n.delayedOut = n.delayedOut[:0]
	for _, d := range s.DelayedOut {
		n.delayedOut = append(n.delayedOut, delayedFrame{due: d.Due, fr: d.Frame})
	}
	n.Requests = s.Requests
	n.Completed = s.Completed
	n.BytesServed = s.BytesServed
	n.PerClass = s.PerClass
	n.Retransmits = s.Retransmits
	n.Aborted = s.Aborted
	n.Resets = s.Resets
	n.Latency = s.Latency

	// Rebuild all derived scheduling/demux state from the serialized fields
	// (checkpoint-by-derivation: the on-disk format knows nothing about the
	// wheel, heap, or index layouts).
	n.connClient = flatmap.New(len(n.clients))
	n.waiting = 0
	for i := range n.clients {
		c := &n.clients[i]
		if c.conn != 0 {
			n.connClient.Put(c.conn, i)
		}
		if c.state == csWaiting {
			n.waiting++
		}
	}
	n.rearmAll()
	n.rebuildDormant()
}
