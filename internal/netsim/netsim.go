// Package netsim is the simulated network and SPECWeb96-like client driver
// of the paper's §2.3.
//
// The paper runs two separate SimOS instances, each executing a 64-client
// SPECWeb96 driver, connected to the Apache machine by a simulated
// direct network with no loss and no latency, advancing in lock-step at a
// 10 ms interrupt granularity. We reproduce the same structure with one
// difference documented in DESIGN.md: the client machines' *own* CPU
// execution is outside the measured system (the paper measures only the
// Apache machine), so clients here are request state machines rather than
// simulated CPUs. Packets still arrive only at tick boundaries, the server
// NIC interrupts on arrival, and the whole system is deterministic.
//
// The request mix follows SPECWeb96's four file classes (100 B–900 B,
// 1–9 KB, 10–90 KB, 100–900 KB with 35/50/14/1 percent weights).
//
// With a faults.Injector attached (SetFaults), the wire becomes lossy:
// frames may be dropped, corrupted, or delayed in either direction, and
// clients grow a TCP-like recovery layer — a retransmit timer with capped
// exponential backoff, a bounded retry budget after which the request is
// abandoned, and reconnect-on-reset when the server side dies mid-request.
// All fault sampling comes from the injector's own deterministic stream;
// with no injector (the default) none of these paths execute and behavior
// is bit-identical to the fault-free driver.
//
// The injector's overload domain additionally reshapes the client
// population itself (see FAULTS.md "Overload"): slow-trickle senders that
// open with a bare SYN and dribble the request in chunks, keep-alive storm
// clients that hold connections across long think times, and a dormant
// flash-crowd pool that activates in bursts. With overload on, every
// completed request's end-to-end latency (issue tick to last response
// byte) is recorded in a deterministic fixed-bucket histogram.
//
// # Event-driven driver
//
// The fleet is driven by a hierarchical timer wheel rather than a per-tick
// scan, so a tick costs O(due clients + arrivals) instead of O(fleet): a
// million think-time/dormant clients cost nothing until a timer fires. Every
// client condition the old scan polled (ack flush, trickle sendAt, retryAt,
// think-time nextAt) is folded into one earliest-need deadline per client
// (scheduleNeeds) stamped on client.wakeAt; fired wheel entries that no
// longer match the stamp are stale and skipped. Due clients are processed in
// ascending index order — exactly the old scan order — and a spuriously
// woken client takes no action and consumes no randomness, so the frame
// stream and RNG stream are bit-identical to the reference full-scan driver
// (reference.go keeps that driver alive behind a test hook, and
// equivalence_test.go pins byte-identity). The dormant flash-crowd pool is a
// binary min-heap of client indexes popped in ascending order — the same
// order the scan found them. The conn→file-size and conn→client demux
// tables are flat free-listed hash tables (internal/flatmap), not Go maps.
package netsim

import (
	"slices"

	"repro/internal/faults"
	"repro/internal/flatmap"
	"repro/internal/kernel"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/timerwheel"
)

// Config parameterizes the client driver.
type Config struct {
	// Clients is the number of SPECWeb clients (the paper: two drivers of
	// 64 each = 128).
	Clients int
	// Seed drives file-size and think-time sampling.
	Seed uint64
	// RequestBytes is the HTTP request size.
	RequestBytes int
	// ThinkTicks is the delay, in 10 ms ticks, between a completed
	// response and the client's next request (0 saturates the server).
	ThinkTicks int
	// RequestsPerConn is the number of requests issued per connection
	// (1 = SPECWeb96/HTTP-1.0 behavior; >1 models HTTP/1.1 keep-alive).
	RequestsPerConn int
	// BurstPool is the number of extra dormant flash-crowd clients beyond
	// Clients; they activate in waves under the fault injector's
	// BurstEvery/BurstSize overload config and are inert otherwise.
	BurstPool int
	// StaggerTicks spreads the fleet's first requests over this many ticks
	// (client i starts at tick i%StaggerTicks) instead of issuing them all
	// at tick 1. 0 — the paper configuration — keeps the synchronized
	// start. Million-client sweeps set it to keep the per-tick arrival
	// wave bounded.
	StaggerTicks int
	// MeasureLatency records end-to-end request latency into Latency even
	// without the overload fault domain (which always records it).
	MeasureLatency bool
}

// DefaultConfig returns the paper's client setup.
func DefaultConfig() Config {
	return Config{Clients: 128, Seed: 99, RequestBytes: 300, ThinkTicks: 0}
}

type clientState uint8

const (
	csIdle clientState = iota
	csWaiting
)

// Client kinds under the overload fault domain. Kinds other than ckNormal
// change behavior only while overload config is enabled.
type clientKind uint8

const (
	ckNormal clientKind = iota
	ckSlow              // slowloris: bare SYN, then request chunks every TrickleTicks
	ckStorm             // keep-alive storm: holds the connection across StormHoldTicks
	ckBurst             // flash crowd: dormant until a burst wave activates it
)

// dormantTick is the nextAt sentinel that parks a burst client until a
// wave activates it.
const dormantTick = ^uint64(0)

// fileClassWeights is the SPECWeb96 class mix (35/50/14/1).
var fileClassWeights = []float64{35, 50, 14, 1}

type client struct {
	state  clientState
	kind   clientKind
	conn   int
	nextAt uint64 // tick index when the next request may start
	got    int
	want   int
	// reqsLeft counts further requests to issue on the current
	// connection before closing it (keep-alive).
	reqsLeft int
	// closing marks a connection whose FIN is owed to the server.
	closing bool
	// acks counts acknowledgment frames owed to the server for received
	// response segments (sent at the next tick, like a real TCP peer).
	acks int
	// retryAt is the tick the retransmit timer fires (0 = unarmed; armed
	// only under fault injection). While sendLeft > 0 it is armed but held
	// off — the client is still "typing".
	retryAt uint64
	// retries counts retransmits of the current request.
	retries int
	// timeout is the current backoff interval in ticks.
	timeout int
	// sendLeft is the unsent remainder of a slow client's request; while
	// nonzero the retransmit timer is held off and a chunk goes out every
	// time sendAt passes.
	sendLeft int
	sendAt   uint64
	// startTick is the tick the in-flight request was issued, for
	// end-to-end latency measurement.
	startTick uint64
	// wakeAt is the earliest tick any of this client's conditions needs
	// service, and the deadline of its live wheel entry (0 = no live
	// entry). A fired entry whose Due mismatches wakeAt is stale. Derived
	// scheduling state: rebuilt by canonical re-arm on restore, never
	// serialized.
	wakeAt uint64
}

// delayedFrame is a frame held in transit by the fault injector.
type delayedFrame struct {
	due uint64
	fr  kernel.Frame
}

// Network implements kernel.NIC: the client fleet plus the wire (lossless
// and zero-latency by default; lossy under fault injection).
type Network struct {
	cfg     Config //detlint:ignore snapshotcomplete configuration fixed at construction
	rng     *rng.Rand
	clients []client
	ticks   uint64 //detlint:ignore counterflow tick clock for timers and latency stamps, not a metric
	nextID  int
	// files maps conn → requested file size (flat free-listed table; its
	// contents are serialized sorted by conn, as the map predecessor was).
	files *flatmap.IntMap

	// wheel holds one entry per armed client wake-up; client.wakeAt
	// distinguishes live entries from stale ones.
	wheel *timerwheel.Wheel //detlint:ignore snapshotcomplete derived: rebuilt by canonical re-arm from client deadlines on restore
	// due is the per-tick scratch list of woken client indexes, sorted
	// ascending to match the reference scan order.
	due []int32 //detlint:ignore snapshotcomplete per-tick scratch, empty between ticks
	// dormant is a binary min-heap of dormant flash-crowd client indexes;
	// ascending pops reproduce the reference scan's wake order.
	dormant []int32 //detlint:ignore snapshotcomplete derived: rebuilt from client kind/nextAt on restore
	// connClient maps conn → owning client index while a client holds the
	// conn (waiting or idle keep-alive).
	connClient *flatmap.IntMap //detlint:ignore snapshotcomplete derived index: rebuilt from client conns on restore
	// waiting counts clients in csWaiting (the Outstanding gauge).
	waiting int //detlint:ignore snapshotcomplete derived gauge: recounted from client states on restore
	// outBuf is the arrival batch returned by Tick; the kernel copies it
	// out before the next tick.
	outBuf []kernel.Frame //detlint:ignore snapshotcomplete per-tick scratch, consumed by the kernel within the tick
	// inPre is true during Tick's pre-phase (delayed-frame release, burst
	// waves), where new deadlines may still land on the current tick.
	inPre bool //detlint:ignore snapshotcomplete transient Tick-phase flag, false between ticks
	// refScan selects the reference full-scan driver (test hook, see
	// reference.go).
	refScan bool //detlint:ignore snapshotcomplete test-hook driver selection, not simulation state

	// inj is the fault injector (nil = perfect wire).
	inj *faults.Injector //detlint:ignore snapshotcomplete fault wiring re-attached by core assembly on restore
	// delayedIn holds client→server frames in transit; delayedOut holds
	// server→client frames in transit.
	delayedIn  []delayedFrame
	delayedOut []delayedFrame

	// Requests counts requests issued; Completed counts responses fully
	// received; BytesServed sums response payloads.
	Requests    uint64
	Completed   uint64
	BytesServed uint64
	// PerClass counts completed requests per SPECWeb file class.
	PerClass [4]uint64
	// Retransmits counts timer-driven request retransmissions; Aborted
	// counts requests abandoned after the retry budget; Resets counts
	// connections torn down by the server mid-request (worker crash)
	// that the client answered with a fresh connection.
	Retransmits uint64
	Aborted     uint64
	Resets      uint64
	// Latency is the end-to-end request latency histogram in network
	// ticks, populated while the overload fault domain is enabled or
	// Config.MeasureLatency is set.
	Latency stats.Hist
}

// New builds the client fleet (plus the dormant flash-crowd pool).
func New(cfg Config) *Network {
	if cfg.Clients <= 0 {
		cfg.Clients = 128
	}
	if cfg.RequestBytes <= 0 {
		cfg.RequestBytes = 300
	}
	n := &Network{
		cfg:        cfg,
		rng:        rng.New(cfg.Seed ^ 0x5ec1e75),
		clients:    make([]client, cfg.Clients+cfg.BurstPool),
		nextID:     1,
		files:      flatmap.New(cfg.Clients + cfg.BurstPool),
		connClient: flatmap.New(cfg.Clients + cfg.BurstPool),
		wheel:      timerwheel.New(0),
		refScan:    defaultRefScan,
	}
	if cfg.StaggerTicks > 0 {
		for i := 0; i < cfg.Clients; i++ {
			n.clients[i].nextAt = uint64(i % cfg.StaggerTicks)
		}
	}
	for i := cfg.Clients; i < len(n.clients); i++ {
		n.clients[i].kind = ckBurst
		n.clients[i].nextAt = dormantTick
	}
	n.rearmAll()
	n.rebuildDormant()
	return n
}

// SetFaults attaches a fault injector to the wire (nil detaches). With the
// overload domain enabled, the base client population is classified here —
// one draw per client from the injector's overload stream — so the same
// seed always misbehaves the same clients.
func (n *Network) SetFaults(inj *faults.Injector) {
	n.inj = inj
	if inj == nil || !inj.Cfg.OverloadEnabled() {
		return
	}
	for i := 0; i < n.cfg.Clients && i < len(n.clients); i++ {
		c := &n.clients[i]
		switch {
		case inj.SlowClient():
			c.kind = ckSlow
		case inj.StormClient():
			c.kind = ckStorm
		default:
			c.kind = ckNormal
		}
	}
}

// faultsOn reports whether the lossy-wire and client-retry machinery is
// active.
func (n *Network) faultsOn() bool { return n.inj != nil && n.inj.Cfg.Enabled() }

// overloadOn reports whether the overload client behaviors are active.
func (n *Network) overloadOn() bool { return n.inj != nil && n.inj.Cfg.OverloadEnabled() }

// classOf returns the SPECWeb class index of a file size.
func classOf(bytes int) int {
	switch {
	case bytes < 1000:
		return 0
	case bytes < 10_000:
		return 1
	case bytes < 100_000:
		return 2
	default:
		return 3
	}
}

// sampleFile draws a file size from the SPECWeb96 mix.
func (n *Network) sampleFile() int {
	cls := n.rng.Choose(fileClassWeights)
	mult := 1 + n.rng.Intn(9) // 1..9
	base := 100
	for i := 0; i < cls; i++ {
		base *= 10
	}
	return base * mult
}

// earliest returns the smaller of two deadlines, treating 0 as "none".
func earliest(a, b uint64) uint64 {
	if a == 0 || b < a {
		return b
	}
	return a
}

// later returns the larger of two ticks.
func later(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// scheduleNeeds folds every condition the reference scan polled into one
// earliest-need deadline and arms the wheel if that deadline is earlier
// than the client's live entry. It is called after every mutation that can
// create or advance a need: the end of each step, each server delivery,
// burst activation, construction, and restore. Deadlines are clamped to
// the next serviceable tick — the current tick during Tick's pre-phase
// (the scan would still visit the client this tick), the next tick
// otherwise.
func (n *Network) scheduleNeeds(i int32) {
	c := &n.clients[i]
	lo := n.ticks + 1
	if n.inPre {
		lo = n.ticks
	}
	d := uint64(0)
	if c.acks > 0 {
		d = lo
	}
	if c.state == csWaiting {
		if c.sendLeft > 0 {
			// Trickle chunk; the retransmit timer is held off meanwhile.
			d = earliest(d, later(c.sendAt, lo))
		} else if c.retryAt != 0 {
			d = earliest(d, later(c.retryAt, lo))
		}
	} else if c.nextAt != dormantTick {
		d = earliest(d, later(c.nextAt, lo))
	}
	if d == 0 || (c.wakeAt != 0 && c.wakeAt <= d) {
		return // no need, or an earlier live entry already covers it
	}
	c.wakeAt = d
	n.wheel.Schedule(d, i)
}

// rearmAll clears every wake stamp and canonically re-arms the whole fleet
// from client state (construction and restore).
func (n *Network) rearmAll() {
	for i := range n.clients {
		n.clients[i].wakeAt = 0
	}
	n.wheel.Reset(n.ticks)
	for i := range n.clients {
		n.scheduleNeeds(int32(i))
	}
}

// pushDormant parks a flash-crowd client index on the dormant min-heap.
func (n *Network) pushDormant(i int32) {
	n.dormant = append(n.dormant, i)
	j := len(n.dormant) - 1
	for j > 0 {
		p := (j - 1) / 2
		if n.dormant[p] <= n.dormant[j] {
			break
		}
		n.dormant[p], n.dormant[j] = n.dormant[j], n.dormant[p]
		j = p
	}
}

// popDormant removes and returns the smallest dormant client index — the
// one the reference scan's wave would have found first.
func (n *Network) popDormant() int32 {
	h := n.dormant
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	n.dormant = h[:last]
	h = n.dormant
	j := 0
	for {
		l, r := 2*j+1, 2*j+2
		s := j
		if l < len(h) && h[l] < h[s] {
			s = l
		}
		if r < len(h) && h[r] < h[s] {
			s = r
		}
		if s == j {
			break
		}
		h[j], h[s] = h[s], h[j]
		j = s
	}
	return top
}

// rebuildDormant reconstructs the dormant heap from client state
// (ascending index pushes build a valid heap directly).
func (n *Network) rebuildDormant() {
	n.dormant = n.dormant[:0]
	for i := range n.clients {
		c := &n.clients[i]
		if c.kind == ckBurst && c.state == csIdle && c.nextAt == dormantTick {
			n.pushDormant(int32(i))
		}
	}
}

// bindConn points the conn→client index at client i.
func (n *Network) bindConn(c *client, i int32, conn int) {
	c.conn = conn
	n.connClient.Put(conn, int(i))
}

// unbindConn releases a client's conn and its demux entry.
func (n *Network) unbindConn(c *client) {
	if c.conn != 0 {
		n.connClient.Delete(c.conn)
		c.conn = 0
	}
}

// sendToServer routes a client→server frame through the (possibly lossy)
// wire into the tick's arrival batch.
func (n *Network) sendToServer(fr kernel.Frame) {
	if !n.faultsOn() {
		n.outBuf = append(n.outBuf, fr)
		return
	}
	if n.inj.DropFrame() {
		n.inj.DroppedToServer++
		return
	}
	if n.inj.CorruptFrame() {
		fr.Corrupt = true
	}
	if d := n.inj.DelayTicks(); d > 0 {
		n.delayedIn = append(n.delayedIn, delayedFrame{due: n.ticks + uint64(d), fr: fr})
		return
	}
	n.outBuf = append(n.outBuf, fr)
}

// releaseDueIn moves client→server frames whose transit delay expired into
// the arrival batch.
func (n *Network) releaseDueIn() {
	kept := n.delayedIn[:0]
	for _, d := range n.delayedIn {
		if d.due <= n.ticks {
			n.outBuf = append(n.outBuf, d.fr)
		} else {
			kept = append(kept, d)
		}
	}
	n.delayedIn = kept
}

// releaseDueOut delivers server→client frames whose transit delay expired.
func (n *Network) releaseDueOut() {
	kept := n.delayedOut[:0]
	for _, d := range n.delayedOut {
		if d.due <= n.ticks {
			n.deliverToClient(d.fr)
		} else {
			kept = append(kept, d)
		}
	}
	n.delayedOut = kept
}

// armRetry starts (or restarts) a client's retransmit timer; no-op unless
// fault injection is on.
func (n *Network) armRetry(c *client, fresh bool) {
	if !n.faultsOn() {
		return
	}
	if fresh {
		c.retries = 0
		c.timeout = n.inj.Cfg.RetryTimeoutTicks
	}
	c.retryAt = n.ticks + uint64(c.timeout)
}

// disarmRetry clears the retransmit state after a request resolves.
func (c *client) disarmRetry() {
	c.retryAt = 0
	c.retries = 0
	c.timeout = 0
}

// retryExpired handles a fired retransmit timer: resend the request under
// exponential backoff, or abandon it once the retry budget is spent.
func (n *Network) retryExpired(c *client, i int32) {
	if c.retries >= n.inj.Cfg.MaxRetries {
		// Give up: drop the connection (best-effort FIN so the server can
		// reap the socket) and return to idle for a fresh request.
		n.Aborted++
		n.sendToServer(kernel.Frame{Conn: c.conn, Close: true})
		n.resetClient(c, i)
		return
	}
	c.retries++
	n.Retransmits++
	c.timeout *= 2
	if cap := n.inj.Cfg.BackoffCapTicks; c.timeout > cap {
		c.timeout = cap
	}
	c.retryAt = n.ticks + uint64(c.timeout)
	// The retransmit carries Open so a lost SYN is recovered too; the
	// kernel treats a duplicate open on an established connection as data.
	n.sendToServer(kernel.Frame{Conn: c.conn, Bytes: n.cfg.RequestBytes, Open: true})
}

// resetClient abandons the in-flight request and frees the client to start
// over on a fresh connection.
func (n *Network) resetClient(c *client, i int32) {
	n.files.Delete(c.conn)
	n.unbindConn(c)
	if c.state == csWaiting {
		n.waiting--
	}
	c.state = csIdle
	c.reqsLeft = 0
	c.closing = false
	c.disarmRetry()
	c.sendLeft = 0
	c.sendAt = 0
	c.nextAt = n.ticks + 1 + uint64(n.cfg.ThinkTicks)
	if c.kind == ckBurst && n.overloadOn() {
		// A flash-crowd client that gave up goes back to the dormant pool.
		c.nextAt = dormantTick
		n.pushDormant(i)
	}
}

// Tick implements kernel.NIC: advance one 10 ms step and return the frames
// arriving at the server. The returned slice is reused next tick; the
// kernel copies it out within the cycle.
//
//detlint:hot per-tick client driver; O(active + arrivals), not O(clients)
func (n *Network) Tick(now uint64) []kernel.Frame {
	n.ticks++
	n.outBuf = n.outBuf[:0]
	n.inPre = true
	if n.faultsOn() {
		// Deliver frames whose transit delay expired.
		n.releaseDueIn()
		n.releaseDueOut()
	}
	if n.overloadOn() {
		if be := n.inj.Cfg.BurstEvery; be > 0 && n.ticks%uint64(be) == 0 {
			// Flash-crowd wave: wake up to BurstSize dormant clients, in
			// ascending index order like the reference scan.
			room := n.inj.Cfg.BurstSize
			for room > 0 && len(n.dormant) > 0 {
				i := n.popDormant()
				n.clients[i].nextAt = n.ticks
				n.scheduleNeeds(i)
				room--
			}
		}
	}
	n.inPre = false
	if n.refScan {
		// Reference full-scan driver (test hook): visit every client. The
		// wheel clock still advances and fired stamps clear so the two
		// drivers stay interchangeable mid-run.
		for _, e := range n.wheel.Advance(n.ticks) {
			if c := &n.clients[e.ID]; c.wakeAt == e.Due {
				c.wakeAt = 0
			}
		}
		for i := range n.clients {
			n.stepClient(int32(i))
		}
		return n.outBuf
	}
	n.due = n.due[:0]
	for _, e := range n.wheel.Advance(n.ticks) {
		c := &n.clients[e.ID]
		if c.wakeAt != e.Due {
			continue // stale: superseded by a re-arm
		}
		c.wakeAt = 0
		n.due = append(n.due, e.ID)
	}
	// The wheel fires in slot order; the reference scan ran in client
	// order. Sorting restores the canonical order (and RNG draw order).
	slices.Sort(n.due)
	for _, i := range n.due {
		n.stepClient(i)
	}
	return n.outBuf
}

// stepClient services one client — the loop body of the reference scan —
// then re-arms its wheel entry for the earliest remaining need. Stepping a
// client none of whose conditions hold is a no-op that consumes no
// randomness, which is what makes spurious wake-ups harmless.
func (n *Network) stepClient(i int32) {
	n.stepBody(i)
	n.scheduleNeeds(i)
}

func (n *Network) stepBody(i int32) {
	c := &n.clients[i]
	// Flush pending TCP acknowledgments for in-flight transfers.
	for c.acks > 0 {
		c.acks--
		n.sendToServer(kernel.Frame{Conn: c.conn, Ack: true})
	}
	if c.state == csWaiting && c.sendLeft > 0 && n.ticks >= c.sendAt {
		// Slow trickle: the next request chunk.
		chunk := n.cfg.RequestBytes / 4
		if chunk < 1 {
			chunk = 1
		}
		if chunk > c.sendLeft {
			chunk = c.sendLeft
		}
		c.sendLeft -= chunk
		n.sendToServer(kernel.Frame{Conn: c.conn, Bytes: chunk})
		if c.sendLeft == 0 {
			// Request fully sent; only now does the ordinary
			// retransmit timer take over.
			n.armRetry(c, true)
		} else {
			c.sendAt = n.ticks + uint64(n.inj.Cfg.TrickleTicks)
		}
	}
	if c.state == csWaiting && c.sendLeft == 0 && c.retryAt != 0 && n.ticks >= c.retryAt {
		n.retryExpired(c, i)
	}
	if c.state != csIdle || c.nextAt > n.ticks {
		return
	}
	if c.closing {
		// Tear down the kept-alive connection before the next one.
		c.closing = false
		n.sendToServer(kernel.Frame{Conn: c.conn, Close: true})
		n.unbindConn(c)
	}
	size := n.sampleFile()
	c.got = 0
	c.want = size
	c.state = csWaiting
	n.waiting++
	c.startTick = n.ticks
	n.Requests++
	if c.conn != 0 {
		// Keep-alive: next request travels on the open connection.
		n.files.Put(c.conn, size)
		n.sendToServer(kernel.Frame{Conn: c.conn, Bytes: n.cfg.RequestBytes})
		n.armRetry(c, true)
		return
	}
	conn := n.nextID
	n.nextID++
	n.files.Put(conn, size)
	n.bindConn(c, i, conn)
	c.reqsLeft = n.cfg.RequestsPerConn - 1
	if c.reqsLeft < 0 || (c.kind == ckBurst && n.overloadOn()) {
		// Flash-crowd arrivals are one-shot connections.
		c.reqsLeft = 0
	}
	if c.kind == ckSlow && n.overloadOn() {
		// Slowloris: a bare SYN now, the request body in trickled
		// chunks. The worker that accepts blocks in read meanwhile.
		c.sendLeft = n.cfg.RequestBytes
		c.sendAt = n.ticks + uint64(n.inj.Cfg.TrickleTicks)
		n.sendToServer(kernel.Frame{Conn: conn, Open: true})
	} else {
		n.sendToServer(kernel.Frame{Conn: conn, Bytes: n.cfg.RequestBytes, Open: true})
	}
	n.armRetry(c, true)
}

// Transmit implements kernel.NIC: the server sent a frame toward a client.
//
//detlint:hot per-response-segment server→client path
func (n *Network) Transmit(fr kernel.Frame, now uint64) {
	if n.faultsOn() {
		if n.inj.DropFrame() {
			n.inj.DroppedToClient++
			return
		}
		if n.inj.CorruptFrame() {
			// Damaged segment: the client discards it (no ack, no data);
			// the retransmit timer recovers the payload.
			return
		}
		if d := n.inj.DelayTicks(); d > 0 {
			n.delayedOut = append(n.delayedOut, delayedFrame{due: n.ticks + uint64(d), fr: fr})
			return
		}
	}
	n.deliverToClient(fr)
}

// deliverToClient lands a server frame at the owning client via the
// conn→client demux table (the reference driver scanned the fleet twice:
// once for a waiting owner, once for an idle keep-alive holder — conn ids
// are unique, so one lookup answers both).
//
//detlint:hot per-frame demux into the client fleet
func (n *Network) deliverToClient(fr kernel.Frame) {
	idx, ok := n.connClient.Get(fr.Conn)
	if !ok {
		return
	}
	i := int32(idx)
	c := &n.clients[i]
	if c.state == csWaiting {
		if fr.Close {
			if n.faultsOn() && c.got < c.want {
				// Connection torn down mid-response (worker crash / kernel
				// reaping an orphaned socket): treat as a reset and start
				// over on a fresh connection.
				n.Resets++
				n.resetClient(c, i)
			} else {
				n.finish(c, i)
			}
			n.scheduleNeeds(i)
			return
		}
		c.got += fr.Bytes
		n.BytesServed += uint64(fr.Bytes)
		// One acknowledgment per response segment.
		c.acks++
		if c.got >= c.want {
			n.finish(c, i)
		}
		n.scheduleNeeds(i)
		return
	}
	// No waiting client owns the conn. A server-side close (idle reaping,
	// a crashed worker's cleanup) can land on a connection an idle client
	// is holding between keep-alive requests; release it so the client's
	// next request opens fresh. Never taken on a perfect wire: without
	// faults the server only closes connections the client already let
	// go of.
	if fr.Close {
		n.files.Delete(c.conn)
		n.unbindConn(c)
		c.closing = false
		n.scheduleNeeds(i)
	}
}

func (n *Network) finish(c *client, i int32) {
	n.Completed++
	n.PerClass[classOf(c.want)]++
	if n.overloadOn() || n.cfg.MeasureLatency {
		n.Latency.Observe(n.ticks - c.startTick)
	}
	n.files.Delete(c.conn)
	c.state = csIdle
	n.waiting--
	c.nextAt = n.ticks + 1 + uint64(n.cfg.ThinkTicks)
	c.disarmRetry()
	c.sendLeft = 0
	c.sendAt = 0
	if n.overloadOn() {
		switch c.kind {
		case ckBurst:
			// Flash-crowd client: one request, then back to the dormant
			// pool. The connection is abandoned without a FIN; the
			// server side closes it (or the idle reaper does).
			n.unbindConn(c)
			c.nextAt = dormantTick
			n.pushDormant(i)
			return
		case ckStorm:
			// Keep-alive storm: hold the connection open across a long
			// think time, pinning the worker in its blocked read. Only a
			// server-side close (the idle reaper) ends it.
			c.nextAt = n.ticks + 1 + uint64(n.inj.Cfg.StormHoldTicks)
			if c.reqsLeft > 0 {
				c.reqsLeft--
			}
			return
		}
	}
	if c.reqsLeft > 0 {
		// Connection stays open for the next request.
		c.reqsLeft--
		return
	}
	if n.cfg.RequestsPerConn > 1 {
		// Client-initiated close (the server waits in read for either the
		// next request or the FIN).
		c.closing = true
		return
	}
	n.unbindConn(c)
}

// FileSize returns the file size requested on a connection (0 if unknown);
// the Apache model uses it to drive stat/read/mmap behavior.
func (n *Network) FileSize(conn int) int {
	v, _ := n.files.Get(conn)
	return v
}

// Outstanding returns the number of clients with a request in flight.
func (n *Network) Outstanding() int { return n.waiting }
