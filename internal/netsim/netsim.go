// Package netsim is the simulated network and SPECWeb96-like client driver
// of the paper's §2.3.
//
// The paper runs two separate SimOS instances, each executing a 64-client
// SPECWeb96 driver, connected to the Apache machine by a simulated
// direct network with no loss and no latency, advancing in lock-step at a
// 10 ms interrupt granularity. We reproduce the same structure with one
// difference documented in DESIGN.md: the client machines' *own* CPU
// execution is outside the measured system (the paper measures only the
// Apache machine), so clients here are request state machines rather than
// simulated CPUs. Packets still arrive only at tick boundaries, the server
// NIC interrupts on arrival, and the whole system is deterministic.
//
// The request mix follows SPECWeb96's four file classes (100 B–900 B,
// 1–9 KB, 10–90 KB, 100–900 KB with 35/50/14/1 percent weights).
//
// With a faults.Injector attached (SetFaults), the wire becomes lossy:
// frames may be dropped, corrupted, or delayed in either direction, and
// clients grow a TCP-like recovery layer — a retransmit timer with capped
// exponential backoff, a bounded retry budget after which the request is
// abandoned, and reconnect-on-reset when the server side dies mid-request.
// All fault sampling comes from the injector's own deterministic stream;
// with no injector (the default) none of these paths execute and behavior
// is bit-identical to the fault-free driver.
//
// The injector's overload domain additionally reshapes the client
// population itself (see FAULTS.md "Overload"): slow-trickle senders that
// open with a bare SYN and dribble the request in chunks, keep-alive storm
// clients that hold connections across long think times, and a dormant
// flash-crowd pool that activates in bursts. With overload on, every
// completed request's end-to-end latency (issue tick to last response
// byte) is recorded in a deterministic fixed-bucket histogram.
package netsim

import (
	"repro/internal/faults"
	"repro/internal/kernel"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Config parameterizes the client driver.
type Config struct {
	// Clients is the number of SPECWeb clients (the paper: two drivers of
	// 64 each = 128).
	Clients int
	// Seed drives file-size and think-time sampling.
	Seed uint64
	// RequestBytes is the HTTP request size.
	RequestBytes int
	// ThinkTicks is the delay, in 10 ms ticks, between a completed
	// response and the client's next request (0 saturates the server).
	ThinkTicks int
	// RequestsPerConn is the number of requests issued per connection
	// (1 = SPECWeb96/HTTP-1.0 behavior; >1 models HTTP/1.1 keep-alive).
	RequestsPerConn int
	// BurstPool is the number of extra dormant flash-crowd clients beyond
	// Clients; they activate in waves under the fault injector's
	// BurstEvery/BurstSize overload config and are inert otherwise.
	BurstPool int
}

// DefaultConfig returns the paper's client setup.
func DefaultConfig() Config {
	return Config{Clients: 128, Seed: 99, RequestBytes: 300, ThinkTicks: 0}
}

type clientState uint8

const (
	csIdle clientState = iota
	csWaiting
)

// Client kinds under the overload fault domain. Kinds other than ckNormal
// change behavior only while overload config is enabled.
type clientKind uint8

const (
	ckNormal clientKind = iota
	ckSlow              // slowloris: bare SYN, then request chunks every TrickleTicks
	ckStorm             // keep-alive storm: holds the connection across StormHoldTicks
	ckBurst             // flash crowd: dormant until a burst wave activates it
)

// dormantTick is the nextAt sentinel that parks a burst client until a
// wave activates it.
const dormantTick = ^uint64(0)

type client struct {
	state  clientState
	kind   clientKind
	conn   int
	nextAt uint64 // tick index when the next request may start
	got    int
	want   int
	// reqsLeft counts further requests to issue on the current
	// connection before closing it (keep-alive).
	reqsLeft int
	// closing marks a connection whose FIN is owed to the server.
	closing bool
	// acks counts acknowledgment frames owed to the server for received
	// response segments (sent at the next tick, like a real TCP peer).
	acks int
	// retryAt is the tick the retransmit timer fires (0 = unarmed; armed
	// only under fault injection).
	retryAt uint64
	// retries counts retransmits of the current request.
	retries int
	// timeout is the current backoff interval in ticks.
	timeout int
	// sendLeft is the unsent remainder of a slow client's request; while
	// nonzero the retransmit timer is held off (the client is still
	// "typing") and a chunk goes out every time sendAt passes.
	sendLeft int
	sendAt   uint64
	// startTick is the tick the in-flight request was issued, for
	// end-to-end latency measurement.
	startTick uint64
}

// delayedFrame is a frame held in transit by the fault injector.
type delayedFrame struct {
	due uint64
	fr  kernel.Frame
}

// Network implements kernel.NIC: the client fleet plus the wire (lossless
// and zero-latency by default; lossy under fault injection).
type Network struct {
	cfg     Config //detlint:ignore snapshotcomplete configuration fixed at construction
	rng     *rng.Rand
	clients []client
	ticks   uint64 //detlint:ignore counterflow tick clock for timers and latency stamps, not a metric
	nextID  int
	files   map[int]int // conn -> requested file size

	// inj is the fault injector (nil = perfect wire).
	inj *faults.Injector //detlint:ignore snapshotcomplete fault wiring re-attached by core assembly on restore
	// delayedIn holds client→server frames in transit; delayedOut holds
	// server→client frames in transit.
	delayedIn  []delayedFrame
	delayedOut []delayedFrame

	// Requests counts requests issued; Completed counts responses fully
	// received; BytesServed sums response payloads.
	Requests    uint64
	Completed   uint64
	BytesServed uint64
	// PerClass counts completed requests per SPECWeb file class.
	PerClass [4]uint64
	// Retransmits counts timer-driven request retransmissions; Aborted
	// counts requests abandoned after the retry budget; Resets counts
	// connections torn down by the server mid-request (worker crash)
	// that the client answered with a fresh connection.
	Retransmits uint64
	Aborted     uint64
	Resets      uint64
	// Latency is the end-to-end request latency histogram in network
	// ticks, populated only while the overload fault domain is enabled.
	Latency stats.Hist
}

// New builds the client fleet (plus the dormant flash-crowd pool).
func New(cfg Config) *Network {
	if cfg.Clients <= 0 {
		cfg.Clients = 128
	}
	if cfg.RequestBytes <= 0 {
		cfg.RequestBytes = 300
	}
	n := &Network{
		cfg:     cfg,
		rng:     rng.New(cfg.Seed ^ 0x5ec1e75),
		clients: make([]client, cfg.Clients+cfg.BurstPool),
		nextID:  1,
		files:   map[int]int{},
	}
	for i := cfg.Clients; i < len(n.clients); i++ {
		n.clients[i].kind = ckBurst
		n.clients[i].nextAt = dormantTick
	}
	return n
}

// SetFaults attaches a fault injector to the wire (nil detaches). With the
// overload domain enabled, the base client population is classified here —
// one draw per client from the injector's overload stream — so the same
// seed always misbehaves the same clients.
func (n *Network) SetFaults(inj *faults.Injector) {
	n.inj = inj
	if inj == nil || !inj.Cfg.OverloadEnabled() {
		return
	}
	for i := 0; i < n.cfg.Clients && i < len(n.clients); i++ {
		c := &n.clients[i]
		switch {
		case inj.SlowClient():
			c.kind = ckSlow
		case inj.StormClient():
			c.kind = ckStorm
		default:
			c.kind = ckNormal
		}
	}
}

// faultsOn reports whether the lossy-wire and client-retry machinery is
// active.
func (n *Network) faultsOn() bool { return n.inj != nil && n.inj.Cfg.Enabled() }

// overloadOn reports whether the overload client behaviors are active.
func (n *Network) overloadOn() bool { return n.inj != nil && n.inj.Cfg.OverloadEnabled() }

// classOf returns the SPECWeb class index of a file size.
func classOf(bytes int) int {
	switch {
	case bytes < 1000:
		return 0
	case bytes < 10_000:
		return 1
	case bytes < 100_000:
		return 2
	default:
		return 3
	}
}

// sampleFile draws a file size from the SPECWeb96 mix.
func (n *Network) sampleFile() int {
	cls := n.rng.Choose([]float64{35, 50, 14, 1})
	mult := 1 + n.rng.Intn(9) // 1..9
	base := 100
	for i := 0; i < cls; i++ {
		base *= 10
	}
	return base * mult
}

// sendToServer routes a client→server frame through the (possibly lossy)
// wire, returning the updated arrival batch.
func (n *Network) sendToServer(out []kernel.Frame, fr kernel.Frame) []kernel.Frame {
	if !n.faultsOn() {
		return append(out, fr)
	}
	if n.inj.DropFrame() {
		n.inj.DroppedToServer++
		return out
	}
	if n.inj.CorruptFrame() {
		fr.Corrupt = true
	}
	if d := n.inj.DelayTicks(); d > 0 {
		n.delayedIn = append(n.delayedIn, delayedFrame{due: n.ticks + uint64(d), fr: fr})
		return out
	}
	return append(out, fr)
}

// releaseDue moves frames whose transit delay expired out of q, delivering
// each via deliver; it returns the still-in-transit remainder.
func (n *Network) releaseDue(q []delayedFrame, deliver func(kernel.Frame)) []delayedFrame {
	kept := q[:0]
	for _, d := range q {
		if d.due <= n.ticks {
			deliver(d.fr)
		} else {
			kept = append(kept, d)
		}
	}
	return kept
}

// armRetry starts (or restarts) a client's retransmit timer; no-op unless
// fault injection is on.
func (n *Network) armRetry(c *client, fresh bool) {
	if !n.faultsOn() {
		return
	}
	if fresh {
		c.retries = 0
		c.timeout = n.inj.Cfg.RetryTimeoutTicks
	}
	c.retryAt = n.ticks + uint64(c.timeout)
}

// disarmRetry clears the retransmit state after a request resolves.
func (c *client) disarmRetry() {
	c.retryAt = 0
	c.retries = 0
	c.timeout = 0
}

// retryExpired handles a fired retransmit timer: resend the request under
// exponential backoff, or abandon it once the retry budget is spent.
func (n *Network) retryExpired(c *client, out []kernel.Frame) []kernel.Frame {
	if c.retries >= n.inj.Cfg.MaxRetries {
		// Give up: drop the connection (best-effort FIN so the server can
		// reap the socket) and return to idle for a fresh request.
		n.Aborted++
		out = n.sendToServer(out, kernel.Frame{Conn: c.conn, Close: true})
		n.resetClient(c)
		return out
	}
	c.retries++
	n.Retransmits++
	c.timeout *= 2
	if cap := n.inj.Cfg.BackoffCapTicks; c.timeout > cap {
		c.timeout = cap
	}
	c.retryAt = n.ticks + uint64(c.timeout)
	// The retransmit carries Open so a lost SYN is recovered too; the
	// kernel treats a duplicate open on an established connection as data.
	return n.sendToServer(out, kernel.Frame{Conn: c.conn, Bytes: n.cfg.RequestBytes, Open: true})
}

// resetClient abandons the in-flight request and frees the client to start
// over on a fresh connection.
func (n *Network) resetClient(c *client) {
	delete(n.files, c.conn)
	c.conn = 0
	c.state = csIdle
	c.reqsLeft = 0
	c.closing = false
	c.disarmRetry()
	c.sendLeft = 0
	c.sendAt = 0
	c.nextAt = n.ticks + 1 + uint64(n.cfg.ThinkTicks)
	if c.kind == ckBurst && n.overloadOn() {
		// A flash-crowd client that gave up goes back to the dormant pool.
		c.nextAt = dormantTick
	}
}

// Tick implements kernel.NIC: advance one 10 ms step and return the frames
// arriving at the server.
func (n *Network) Tick(now uint64) []kernel.Frame {
	n.ticks++
	var out []kernel.Frame
	if n.faultsOn() {
		// Deliver frames whose transit delay expired.
		n.delayedIn = n.releaseDue(n.delayedIn, func(fr kernel.Frame) { out = append(out, fr) })
		n.delayedOut = n.releaseDue(n.delayedOut, n.deliverToClient)
	}
	if n.overloadOn() {
		if be := n.inj.Cfg.BurstEvery; be > 0 && n.ticks%uint64(be) == 0 {
			// Flash-crowd wave: wake up to BurstSize dormant clients.
			room := n.inj.Cfg.BurstSize
			for i := range n.clients {
				if room == 0 {
					break
				}
				c := &n.clients[i]
				if c.kind == ckBurst && c.state == csIdle && c.nextAt == dormantTick {
					c.nextAt = n.ticks
					room--
				}
			}
		}
	}
	for i := range n.clients {
		c := &n.clients[i]
		// Flush pending TCP acknowledgments for in-flight transfers.
		for c.acks > 0 {
			c.acks--
			out = n.sendToServer(out, kernel.Frame{Conn: c.conn, Ack: true})
		}
		if c.state == csWaiting && c.sendLeft > 0 && n.ticks >= c.sendAt {
			// Slow trickle: the next request chunk.
			chunk := n.cfg.RequestBytes / 4
			if chunk < 1 {
				chunk = 1
			}
			if chunk > c.sendLeft {
				chunk = c.sendLeft
			}
			c.sendLeft -= chunk
			out = n.sendToServer(out, kernel.Frame{Conn: c.conn, Bytes: chunk})
			if c.sendLeft == 0 {
				// Request fully sent; only now does the ordinary
				// retransmit timer take over.
				n.armRetry(c, true)
			} else {
				c.sendAt = n.ticks + uint64(n.inj.Cfg.TrickleTicks)
			}
		}
		if c.state == csWaiting && c.sendLeft == 0 && c.retryAt != 0 && n.ticks >= c.retryAt {
			out = n.retryExpired(c, out)
		}
		if c.state != csIdle || c.nextAt > n.ticks {
			continue
		}
		if c.closing {
			// Tear down the kept-alive connection before the next one.
			c.closing = false
			out = n.sendToServer(out, kernel.Frame{Conn: c.conn, Close: true})
			c.conn = 0
		}
		size := n.sampleFile()
		c.got = 0
		c.want = size
		c.state = csWaiting
		c.startTick = n.ticks
		n.Requests++
		if c.conn != 0 {
			// Keep-alive: next request travels on the open connection.
			n.files[c.conn] = size
			out = n.sendToServer(out, kernel.Frame{Conn: c.conn, Bytes: n.cfg.RequestBytes})
			n.armRetry(c, true)
			continue
		}
		conn := n.nextID
		n.nextID++
		n.files[conn] = size
		c.conn = conn
		c.reqsLeft = n.cfg.RequestsPerConn - 1
		if c.reqsLeft < 0 || (c.kind == ckBurst && n.overloadOn()) {
			// Flash-crowd arrivals are one-shot connections.
			c.reqsLeft = 0
		}
		if c.kind == ckSlow && n.overloadOn() {
			// Slowloris: a bare SYN now, the request body in trickled
			// chunks. The worker that accepts blocks in read meanwhile.
			c.sendLeft = n.cfg.RequestBytes
			c.sendAt = n.ticks + uint64(n.inj.Cfg.TrickleTicks)
			out = n.sendToServer(out, kernel.Frame{Conn: conn, Open: true})
		} else {
			out = n.sendToServer(out, kernel.Frame{Conn: conn, Bytes: n.cfg.RequestBytes, Open: true})
		}
		n.armRetry(c, true)
	}
	return out
}

// Transmit implements kernel.NIC: the server sent a frame toward a client.
func (n *Network) Transmit(fr kernel.Frame, now uint64) {
	if n.faultsOn() {
		if n.inj.DropFrame() {
			n.inj.DroppedToClient++
			return
		}
		if n.inj.CorruptFrame() {
			// Damaged segment: the client discards it (no ack, no data);
			// the retransmit timer recovers the payload.
			return
		}
		if d := n.inj.DelayTicks(); d > 0 {
			n.delayedOut = append(n.delayedOut, delayedFrame{due: n.ticks + uint64(d), fr: fr})
			return
		}
	}
	n.deliverToClient(fr)
}

// deliverToClient lands a server frame at the owning client.
func (n *Network) deliverToClient(fr kernel.Frame) {
	for i := range n.clients {
		c := &n.clients[i]
		if c.state != csWaiting || c.conn != fr.Conn {
			continue
		}
		if fr.Close {
			if n.faultsOn() && c.got < c.want {
				// Connection torn down mid-response (worker crash / kernel
				// reaping an orphaned socket): treat as a reset and start
				// over on a fresh connection.
				n.Resets++
				n.resetClient(c)
				return
			}
			n.finish(c)
			return
		}
		c.got += fr.Bytes
		n.BytesServed += uint64(fr.Bytes)
		// One acknowledgment per response segment.
		c.acks++
		if c.got >= c.want {
			n.finish(c)
		}
		return
	}
	// No waiting client matched. A server-side close (idle reaping, a
	// crashed worker's cleanup) can land on a connection an idle client is
	// holding between keep-alive requests; release it so the client's next
	// request opens fresh. Never taken on a perfect wire: without faults
	// the server only closes connections the client already let go of.
	if fr.Close {
		for i := range n.clients {
			c := &n.clients[i]
			if c.state == csIdle && c.conn != 0 && c.conn == fr.Conn {
				delete(n.files, c.conn)
				c.conn = 0
				c.closing = false
				return
			}
		}
	}
}

func (n *Network) finish(c *client) {
	n.Completed++
	n.PerClass[classOf(c.want)]++
	if n.overloadOn() {
		n.Latency.Observe(n.ticks - c.startTick)
	}
	delete(n.files, c.conn)
	c.state = csIdle
	c.nextAt = n.ticks + 1 + uint64(n.cfg.ThinkTicks)
	c.disarmRetry()
	c.sendLeft = 0
	c.sendAt = 0
	if n.overloadOn() {
		switch c.kind {
		case ckBurst:
			// Flash-crowd client: one request, then back to the dormant
			// pool. The connection is abandoned without a FIN; the
			// server side closes it (or the idle reaper does).
			c.conn = 0
			c.nextAt = dormantTick
			return
		case ckStorm:
			// Keep-alive storm: hold the connection open across a long
			// think time, pinning the worker in its blocked read. Only a
			// server-side close (the idle reaper) ends it.
			c.nextAt = n.ticks + 1 + uint64(n.inj.Cfg.StormHoldTicks)
			if c.reqsLeft > 0 {
				c.reqsLeft--
			}
			return
		}
	}
	if c.reqsLeft > 0 {
		// Connection stays open for the next request.
		c.reqsLeft--
		return
	}
	if n.cfg.RequestsPerConn > 1 {
		// Client-initiated close (the server waits in read for either the
		// next request or the FIN).
		c.closing = true
		return
	}
	c.conn = 0
}

// FileSize returns the file size requested on a connection (0 if unknown);
// the Apache model uses it to drive stat/read/mmap behavior.
func (n *Network) FileSize(conn int) int { return n.files[conn] }

// Outstanding returns the number of clients with a request in flight.
func (n *Network) Outstanding() int {
	k := 0
	for i := range n.clients {
		if n.clients[i].state == csWaiting {
			k++
		}
	}
	return k
}
