// Package netsim is the simulated network and SPECWeb96-like client driver
// of the paper's §2.3.
//
// The paper runs two separate SimOS instances, each executing a 64-client
// SPECWeb96 driver, connected to the Apache machine by a simulated
// direct network with no loss and no latency, advancing in lock-step at a
// 10 ms interrupt granularity. We reproduce the same structure with one
// difference documented in DESIGN.md: the client machines' *own* CPU
// execution is outside the measured system (the paper measures only the
// Apache machine), so clients here are request state machines rather than
// simulated CPUs. Packets still arrive only at tick boundaries, the server
// NIC interrupts on arrival, and the whole system is deterministic.
//
// The request mix follows SPECWeb96's four file classes (100 B–900 B,
// 1–9 KB, 10–90 KB, 100–900 KB with 35/50/14/1 percent weights).
//
// With a faults.Injector attached (SetFaults), the wire becomes lossy:
// frames may be dropped, corrupted, or delayed in either direction, and
// clients grow a TCP-like recovery layer — a retransmit timer with capped
// exponential backoff, a bounded retry budget after which the request is
// abandoned, and reconnect-on-reset when the server side dies mid-request.
// All fault sampling comes from the injector's own deterministic stream;
// with no injector (the default) none of these paths execute and behavior
// is bit-identical to the fault-free driver.
package netsim

import (
	"repro/internal/faults"
	"repro/internal/kernel"
	"repro/internal/rng"
)

// Config parameterizes the client driver.
type Config struct {
	// Clients is the number of SPECWeb clients (the paper: two drivers of
	// 64 each = 128).
	Clients int
	// Seed drives file-size and think-time sampling.
	Seed uint64
	// RequestBytes is the HTTP request size.
	RequestBytes int
	// ThinkTicks is the delay, in 10 ms ticks, between a completed
	// response and the client's next request (0 saturates the server).
	ThinkTicks int
	// RequestsPerConn is the number of requests issued per connection
	// (1 = SPECWeb96/HTTP-1.0 behavior; >1 models HTTP/1.1 keep-alive).
	RequestsPerConn int
}

// DefaultConfig returns the paper's client setup.
func DefaultConfig() Config {
	return Config{Clients: 128, Seed: 99, RequestBytes: 300, ThinkTicks: 0}
}

type clientState uint8

const (
	csIdle clientState = iota
	csWaiting
)

type client struct {
	state  clientState
	conn   int
	nextAt uint64 // tick index when the next request may start
	got    int
	want   int
	// reqsLeft counts further requests to issue on the current
	// connection before closing it (keep-alive).
	reqsLeft int
	// closing marks a connection whose FIN is owed to the server.
	closing bool
	// acks counts acknowledgment frames owed to the server for received
	// response segments (sent at the next tick, like a real TCP peer).
	acks int
	// retryAt is the tick the retransmit timer fires (0 = unarmed; armed
	// only under fault injection).
	retryAt uint64
	// retries counts retransmits of the current request.
	retries int
	// timeout is the current backoff interval in ticks.
	timeout int
}

// delayedFrame is a frame held in transit by the fault injector.
type delayedFrame struct {
	due uint64
	fr  kernel.Frame
}

// Network implements kernel.NIC: the client fleet plus the wire (lossless
// and zero-latency by default; lossy under fault injection).
type Network struct {
	cfg     Config //detlint:ignore snapshotcomplete configuration fixed at construction
	rng     *rng.Rand
	clients []client
	ticks   uint64
	nextID  int
	files   map[int]int // conn -> requested file size

	// inj is the fault injector (nil = perfect wire).
	inj *faults.Injector //detlint:ignore snapshotcomplete fault wiring re-attached by core assembly on restore
	// delayedIn holds client→server frames in transit; delayedOut holds
	// server→client frames in transit.
	delayedIn  []delayedFrame
	delayedOut []delayedFrame

	// Requests counts requests issued; Completed counts responses fully
	// received; BytesServed sums response payloads.
	Requests    uint64
	Completed   uint64
	BytesServed uint64
	// PerClass counts completed requests per SPECWeb file class.
	PerClass [4]uint64
	// Retransmits counts timer-driven request retransmissions; Aborted
	// counts requests abandoned after the retry budget; Resets counts
	// connections torn down by the server mid-request (worker crash)
	// that the client answered with a fresh connection.
	Retransmits uint64
	Aborted     uint64
	Resets      uint64
}

// New builds the client fleet.
func New(cfg Config) *Network {
	if cfg.Clients <= 0 {
		cfg.Clients = 128
	}
	if cfg.RequestBytes <= 0 {
		cfg.RequestBytes = 300
	}
	return &Network{
		cfg:     cfg,
		rng:     rng.New(cfg.Seed ^ 0x5ec1e75),
		clients: make([]client, cfg.Clients),
		nextID:  1,
		files:   map[int]int{},
	}
}

// SetFaults attaches a fault injector to the wire (nil detaches).
func (n *Network) SetFaults(inj *faults.Injector) { n.inj = inj }

// faultsOn reports whether the lossy-wire and client-retry machinery is
// active.
func (n *Network) faultsOn() bool { return n.inj != nil && n.inj.Cfg.Enabled() }

// classOf returns the SPECWeb class index of a file size.
func classOf(bytes int) int {
	switch {
	case bytes < 1000:
		return 0
	case bytes < 10_000:
		return 1
	case bytes < 100_000:
		return 2
	default:
		return 3
	}
}

// sampleFile draws a file size from the SPECWeb96 mix.
func (n *Network) sampleFile() int {
	cls := n.rng.Choose([]float64{35, 50, 14, 1})
	mult := 1 + n.rng.Intn(9) // 1..9
	base := 100
	for i := 0; i < cls; i++ {
		base *= 10
	}
	return base * mult
}

// sendToServer routes a client→server frame through the (possibly lossy)
// wire, returning the updated arrival batch.
func (n *Network) sendToServer(out []kernel.Frame, fr kernel.Frame) []kernel.Frame {
	if !n.faultsOn() {
		return append(out, fr)
	}
	if n.inj.DropFrame() {
		n.inj.DroppedToServer++
		return out
	}
	if n.inj.CorruptFrame() {
		fr.Corrupt = true
	}
	if d := n.inj.DelayTicks(); d > 0 {
		n.delayedIn = append(n.delayedIn, delayedFrame{due: n.ticks + uint64(d), fr: fr})
		return out
	}
	return append(out, fr)
}

// releaseDue moves frames whose transit delay expired out of q, delivering
// each via deliver; it returns the still-in-transit remainder.
func (n *Network) releaseDue(q []delayedFrame, deliver func(kernel.Frame)) []delayedFrame {
	kept := q[:0]
	for _, d := range q {
		if d.due <= n.ticks {
			deliver(d.fr)
		} else {
			kept = append(kept, d)
		}
	}
	return kept
}

// armRetry starts (or restarts) a client's retransmit timer; no-op unless
// fault injection is on.
func (n *Network) armRetry(c *client, fresh bool) {
	if !n.faultsOn() {
		return
	}
	if fresh {
		c.retries = 0
		c.timeout = n.inj.Cfg.RetryTimeoutTicks
	}
	c.retryAt = n.ticks + uint64(c.timeout)
}

// disarmRetry clears the retransmit state after a request resolves.
func (c *client) disarmRetry() {
	c.retryAt = 0
	c.retries = 0
	c.timeout = 0
}

// retryExpired handles a fired retransmit timer: resend the request under
// exponential backoff, or abandon it once the retry budget is spent.
func (n *Network) retryExpired(c *client, out []kernel.Frame) []kernel.Frame {
	if c.retries >= n.inj.Cfg.MaxRetries {
		// Give up: drop the connection (best-effort FIN so the server can
		// reap the socket) and return to idle for a fresh request.
		n.Aborted++
		out = n.sendToServer(out, kernel.Frame{Conn: c.conn, Close: true})
		n.resetClient(c)
		return out
	}
	c.retries++
	n.Retransmits++
	c.timeout *= 2
	if cap := n.inj.Cfg.BackoffCapTicks; c.timeout > cap {
		c.timeout = cap
	}
	c.retryAt = n.ticks + uint64(c.timeout)
	// The retransmit carries Open so a lost SYN is recovered too; the
	// kernel treats a duplicate open on an established connection as data.
	return n.sendToServer(out, kernel.Frame{Conn: c.conn, Bytes: n.cfg.RequestBytes, Open: true})
}

// resetClient abandons the in-flight request and frees the client to start
// over on a fresh connection.
func (n *Network) resetClient(c *client) {
	delete(n.files, c.conn)
	c.conn = 0
	c.state = csIdle
	c.reqsLeft = 0
	c.closing = false
	c.disarmRetry()
	c.nextAt = n.ticks + 1 + uint64(n.cfg.ThinkTicks)
}

// Tick implements kernel.NIC: advance one 10 ms step and return the frames
// arriving at the server.
func (n *Network) Tick(now uint64) []kernel.Frame {
	n.ticks++
	var out []kernel.Frame
	if n.faultsOn() {
		// Deliver frames whose transit delay expired.
		n.delayedIn = n.releaseDue(n.delayedIn, func(fr kernel.Frame) { out = append(out, fr) })
		n.delayedOut = n.releaseDue(n.delayedOut, n.deliverToClient)
	}
	for i := range n.clients {
		c := &n.clients[i]
		// Flush pending TCP acknowledgments for in-flight transfers.
		for c.acks > 0 {
			c.acks--
			out = n.sendToServer(out, kernel.Frame{Conn: c.conn, Ack: true})
		}
		if c.state == csWaiting && c.retryAt != 0 && n.ticks >= c.retryAt {
			out = n.retryExpired(c, out)
		}
		if c.state != csIdle || c.nextAt > n.ticks {
			continue
		}
		if c.closing {
			// Tear down the kept-alive connection before the next one.
			c.closing = false
			out = n.sendToServer(out, kernel.Frame{Conn: c.conn, Close: true})
			c.conn = 0
		}
		size := n.sampleFile()
		c.got = 0
		c.want = size
		c.state = csWaiting
		n.Requests++
		if c.conn != 0 {
			// Keep-alive: next request travels on the open connection.
			n.files[c.conn] = size
			out = n.sendToServer(out, kernel.Frame{Conn: c.conn, Bytes: n.cfg.RequestBytes})
			n.armRetry(c, true)
			continue
		}
		conn := n.nextID
		n.nextID++
		n.files[conn] = size
		c.conn = conn
		c.reqsLeft = n.cfg.RequestsPerConn - 1
		if c.reqsLeft < 0 {
			c.reqsLeft = 0
		}
		out = n.sendToServer(out, kernel.Frame{Conn: conn, Bytes: n.cfg.RequestBytes, Open: true})
		n.armRetry(c, true)
	}
	return out
}

// Transmit implements kernel.NIC: the server sent a frame toward a client.
func (n *Network) Transmit(fr kernel.Frame, now uint64) {
	if n.faultsOn() {
		if n.inj.DropFrame() {
			n.inj.DroppedToClient++
			return
		}
		if n.inj.CorruptFrame() {
			// Damaged segment: the client discards it (no ack, no data);
			// the retransmit timer recovers the payload.
			return
		}
		if d := n.inj.DelayTicks(); d > 0 {
			n.delayedOut = append(n.delayedOut, delayedFrame{due: n.ticks + uint64(d), fr: fr})
			return
		}
	}
	n.deliverToClient(fr)
}

// deliverToClient lands a server frame at the owning client.
func (n *Network) deliverToClient(fr kernel.Frame) {
	for i := range n.clients {
		c := &n.clients[i]
		if c.state != csWaiting || c.conn != fr.Conn {
			continue
		}
		if fr.Close {
			if n.faultsOn() && c.got < c.want {
				// Connection torn down mid-response (worker crash / kernel
				// reaping an orphaned socket): treat as a reset and start
				// over on a fresh connection.
				n.Resets++
				n.resetClient(c)
				return
			}
			n.finish(c)
			return
		}
		c.got += fr.Bytes
		n.BytesServed += uint64(fr.Bytes)
		// One acknowledgment per response segment.
		c.acks++
		if c.got >= c.want {
			n.finish(c)
		}
		return
	}
}

func (n *Network) finish(c *client) {
	n.Completed++
	n.PerClass[classOf(c.want)]++
	delete(n.files, c.conn)
	c.state = csIdle
	c.nextAt = n.ticks + 1 + uint64(n.cfg.ThinkTicks)
	c.disarmRetry()
	if c.reqsLeft > 0 {
		// Connection stays open for the next request.
		c.reqsLeft--
		return
	}
	if n.cfg.RequestsPerConn > 1 {
		// Client-initiated close (the server waits in read for either the
		// next request or the FIN).
		c.closing = true
		return
	}
	c.conn = 0
}

// FileSize returns the file size requested on a connection (0 if unknown);
// the Apache model uses it to drive stat/read/mmap behavior.
func (n *Network) FileSize(conn int) int { return n.files[conn] }

// Outstanding returns the number of clients with a request in flight.
func (n *Network) Outstanding() int {
	k := 0
	for i := range n.clients {
		if n.clients[i].state == csWaiting {
			k++
		}
	}
	return k
}
