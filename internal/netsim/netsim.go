// Package netsim is the simulated network and SPECWeb96-like client driver
// of the paper's §2.3.
//
// The paper runs two separate SimOS instances, each executing a 64-client
// SPECWeb96 driver, connected to the Apache machine by a simulated
// direct network with no loss and no latency, advancing in lock-step at a
// 10 ms interrupt granularity. We reproduce the same structure with one
// difference documented in DESIGN.md: the client machines' *own* CPU
// execution is outside the measured system (the paper measures only the
// Apache machine), so clients here are request state machines rather than
// simulated CPUs. Packets still arrive only at tick boundaries, the server
// NIC interrupts on arrival, and the whole system is deterministic.
//
// The request mix follows SPECWeb96's four file classes (100 B–900 B,
// 1–9 KB, 10–90 KB, 100–900 KB with 35/50/14/1 percent weights).
package netsim

import (
	"repro/internal/kernel"
	"repro/internal/rng"
)

// Config parameterizes the client driver.
type Config struct {
	// Clients is the number of SPECWeb clients (the paper: two drivers of
	// 64 each = 128).
	Clients int
	// Seed drives file-size and think-time sampling.
	Seed uint64
	// RequestBytes is the HTTP request size.
	RequestBytes int
	// ThinkTicks is the delay, in 10 ms ticks, between a completed
	// response and the client's next request (0 saturates the server).
	ThinkTicks int
	// RequestsPerConn is the number of requests issued per connection
	// (1 = SPECWeb96/HTTP-1.0 behavior; >1 models HTTP/1.1 keep-alive).
	RequestsPerConn int
}

// DefaultConfig returns the paper's client setup.
func DefaultConfig() Config {
	return Config{Clients: 128, Seed: 99, RequestBytes: 300, ThinkTicks: 0}
}

type clientState uint8

const (
	csIdle clientState = iota
	csWaiting
)

type client struct {
	state  clientState
	conn   int
	nextAt uint64 // tick index when the next request may start
	got    int
	want   int
	// reqsLeft counts further requests to issue on the current
	// connection before closing it (keep-alive).
	reqsLeft int
	// closing marks a connection whose FIN is owed to the server.
	closing bool
	// acks counts acknowledgment frames owed to the server for received
	// response segments (sent at the next tick, like a real TCP peer).
	acks int
}

// Network implements kernel.NIC: the client fleet plus the lossless,
// zero-latency wire.
type Network struct {
	cfg     Config
	rng     *rng.Rand
	clients []client
	ticks   uint64
	nextID  int
	files   map[int]int // conn -> requested file size

	// Requests counts requests issued; Completed counts responses fully
	// received; BytesServed sums response payloads.
	Requests    uint64
	Completed   uint64
	BytesServed uint64
	// PerClass counts completed requests per SPECWeb file class.
	PerClass [4]uint64
}

// New builds the client fleet.
func New(cfg Config) *Network {
	if cfg.Clients <= 0 {
		cfg.Clients = 128
	}
	if cfg.RequestBytes <= 0 {
		cfg.RequestBytes = 300
	}
	return &Network{
		cfg:     cfg,
		rng:     rng.New(cfg.Seed ^ 0x5ec1e75),
		clients: make([]client, cfg.Clients),
		nextID:  1,
		files:   map[int]int{},
	}
}

// classOf returns the SPECWeb class index of a file size.
func classOf(bytes int) int {
	switch {
	case bytes < 1000:
		return 0
	case bytes < 10_000:
		return 1
	case bytes < 100_000:
		return 2
	default:
		return 3
	}
}

// sampleFile draws a file size from the SPECWeb96 mix.
func (n *Network) sampleFile() int {
	cls := n.rng.Choose([]float64{35, 50, 14, 1})
	mult := 1 + n.rng.Intn(9) // 1..9
	base := 100
	for i := 0; i < cls; i++ {
		base *= 10
	}
	return base * mult
}

// Tick implements kernel.NIC: advance one 10 ms step and return the frames
// arriving at the server.
func (n *Network) Tick(now uint64) []kernel.Frame {
	n.ticks++
	var out []kernel.Frame
	for i := range n.clients {
		c := &n.clients[i]
		// Flush pending TCP acknowledgments for in-flight transfers.
		for c.acks > 0 {
			c.acks--
			out = append(out, kernel.Frame{Conn: c.conn, Ack: true})
		}
		if c.state != csIdle || c.nextAt > n.ticks {
			continue
		}
		if c.closing {
			// Tear down the kept-alive connection before the next one.
			c.closing = false
			out = append(out, kernel.Frame{Conn: c.conn, Close: true})
			c.conn = 0
		}
		size := n.sampleFile()
		c.got = 0
		c.want = size
		c.state = csWaiting
		n.Requests++
		if c.conn != 0 {
			// Keep-alive: next request travels on the open connection.
			n.files[c.conn] = size
			out = append(out, kernel.Frame{Conn: c.conn, Bytes: n.cfg.RequestBytes})
			continue
		}
		conn := n.nextID
		n.nextID++
		n.files[conn] = size
		c.conn = conn
		c.reqsLeft = n.cfg.RequestsPerConn - 1
		if c.reqsLeft < 0 {
			c.reqsLeft = 0
		}
		out = append(out, kernel.Frame{Conn: conn, Bytes: n.cfg.RequestBytes, Open: true})
	}
	return out
}

// Transmit implements kernel.NIC: the server sent a frame toward a client.
func (n *Network) Transmit(fr kernel.Frame, now uint64) {
	for i := range n.clients {
		c := &n.clients[i]
		if c.state != csWaiting || c.conn != fr.Conn {
			continue
		}
		if fr.Close {
			n.finish(c)
			return
		}
		c.got += fr.Bytes
		n.BytesServed += uint64(fr.Bytes)
		// One acknowledgment per response segment.
		c.acks++
		if c.got >= c.want {
			n.finish(c)
		}
		return
	}
}

func (n *Network) finish(c *client) {
	n.Completed++
	n.PerClass[classOf(c.want)]++
	delete(n.files, c.conn)
	c.state = csIdle
	c.nextAt = n.ticks + 1 + uint64(n.cfg.ThinkTicks)
	if c.reqsLeft > 0 {
		// Connection stays open for the next request.
		c.reqsLeft--
		return
	}
	if n.cfg.RequestsPerConn > 1 {
		// Client-initiated close (the server waits in read for either the
		// next request or the FIN).
		c.closing = true
		return
	}
	c.conn = 0
}

// FileSize returns the file size requested on a connection (0 if unknown);
// the Apache model uses it to drive stat/read/mmap behavior.
func (n *Network) FileSize(conn int) int { return n.files[conn] }

// Outstanding returns the number of clients with a request in flight.
func (n *Network) Outstanding() int {
	k := 0
	for i := range n.clients {
		if n.clients[i].state == csWaiting {
			k++
		}
	}
	return k
}
