package netsim

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/kernel"
)

// lossy builds a 1-client network with an attached injector.
func lossy(t *testing.T, fcfg faults.Config, ncfg Config) (*Network, *faults.Injector) {
	t.Helper()
	if err := fcfg.Validate(); err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(fcfg)
	n := New(ncfg)
	n.SetFaults(inj)
	return n, inj
}

// TestRetransmitBackoffAndAbort: with a wire that loses everything, the
// client retries under exponential backoff until the budget is spent, then
// abandons the request and starts a fresh one.
func TestRetransmitBackoffAndAbort(t *testing.T) {
	n, inj := lossy(t, faults.Config{Seed: 1, LossRate: 1}, Config{Clients: 1, Seed: 1})
	for i := uint64(0); i < 400; i++ {
		if out := n.Tick(i); len(out) != 0 {
			t.Fatalf("tick %d: frame crossed a 100%%-loss wire: %+v", i, out)
		}
	}
	// Each aborted request burned the full retry budget; the request still
	// in flight at the end may hold up to one more budget's worth.
	budget := uint64(faults.DefaultMaxRetries)
	if n.Retransmits < budget*n.Aborted || n.Retransmits > budget*(n.Aborted+1) {
		t.Fatalf("retransmits %d, aborted %d: budget is %d per request",
			n.Retransmits, n.Aborted, budget)
	}
	if n.Aborted < 2 {
		t.Fatalf("aborted %d times in 400 ticks, expected repeated fresh requests", n.Aborted)
	}
	if n.Requests != n.Aborted+1 && n.Requests != n.Aborted {
		t.Fatalf("requests %d vs aborted %d: each abort should trigger a fresh request",
			n.Requests, n.Aborted)
	}
	if inj.DroppedToServer == 0 {
		t.Fatal("no drops counted")
	}
}

// TestBackoffIsExponentialAndCapped pins the retry schedule: with the
// default 3-tick timeout the retransmits of one request fire at +3, +6,
// +12, +24, +48 ticks after issue (doubling, capped at 48).
func TestBackoffIsExponentialAndCapped(t *testing.T) {
	n, _ := lossy(t, faults.Config{Seed: 1, LossRate: 1}, Config{Clients: 1, Seed: 1})
	var fires []uint64
	last := n.Retransmits
	for i := uint64(0); i < 100 && len(fires) < faults.DefaultMaxRetries; i++ {
		n.Tick(i)
		if n.Retransmits != last {
			last = n.Retransmits
			fires = append(fires, n.ticks)
		}
	}
	// The request issues on the first tick (counter 1).
	want := []uint64{1 + 3, 1 + 3 + 6, 1 + 3 + 6 + 12, 1 + 3 + 6 + 12 + 24, 1 + 3 + 6 + 12 + 24 + 48}
	if len(fires) != len(want) {
		t.Fatalf("saw %d retransmits, want %d", len(fires), len(want))
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("retransmit %d fired at tick %d, want %d (schedule %v)", i, fires[i], want[i], fires)
		}
	}
}

// TestLostSynRecovered: a dropped connection-opening request is recovered by
// a retransmit that carries Open, and the request then completes.
func TestLostSynRecovered(t *testing.T) {
	n, inj := lossy(t, faults.Config{Seed: 1, LossRate: 1}, Config{Clients: 1, Seed: 2})
	if out := n.Tick(0); len(out) != 0 {
		t.Fatalf("SYN crossed a 100%%-loss wire: %+v", out)
	}
	if inj.DroppedToServer != 1 {
		t.Fatalf("dropped = %d", inj.DroppedToServer)
	}
	// The wire heals; the retransmit timer fires at tick 3 (tick counter 4).
	inj.Cfg.LossRate = 0
	var retx []kernel.Frame
	for i := uint64(1); i <= 5 && len(retx) == 0; i++ {
		retx = n.Tick(i)
	}
	if len(retx) != 1 || !retx[0].Open || retx[0].Bytes == 0 {
		t.Fatalf("retransmit not emitted or malformed: %+v", retx)
	}
	if n.Retransmits != 1 {
		t.Fatalf("retransmits = %d", n.Retransmits)
	}
	// Server answers in full: the request completes and retry state clears.
	conn := retx[0].Conn
	n.Transmit(kernel.Frame{Conn: conn, Bytes: n.FileSize(conn)}, 0)
	if n.Completed != 1 {
		t.Fatalf("completed = %d", n.Completed)
	}
	if c := &n.clients[0]; c.retryAt != 0 || c.retries != 0 {
		t.Fatalf("retry state survived completion: %+v", c)
	}
}

// TestServerCloseMidRequestIsReset: under fault injection, a Close arriving
// before the response finished (a crashed worker's socket being reaped) is a
// reset — the client abandons the transfer and reconnects fresh.
func TestServerCloseMidRequestIsReset(t *testing.T) {
	// CrashRate>0 arms the recovery layer without any network-side sampling.
	n, _ := lossy(t, faults.Config{Seed: 1, CrashRate: 0.5}, Config{Clients: 1, Seed: 3})
	out := n.Tick(0)
	if len(out) != 1 || !out[0].Open {
		t.Fatalf("no request issued: %+v", out)
	}
	conn := out[0].Conn
	want := n.FileSize(conn)
	n.Transmit(kernel.Frame{Conn: conn, Bytes: want / 2}, 0) // partial response
	n.Transmit(kernel.Frame{Conn: conn, Close: true}, 0)     // worker died
	if n.Resets != 1 || n.Completed != 0 {
		t.Fatalf("resets=%d completed=%d", n.Resets, n.Completed)
	}
	// The client reconnects on a fresh connection id.
	var again []kernel.Frame
	for i := uint64(1); i <= 3 && len(again) == 0; i++ {
		for _, fr := range n.Tick(i) {
			if fr.Open {
				again = append(again, fr)
			}
		}
	}
	if len(again) != 1 || again[0].Conn == conn {
		t.Fatalf("client did not reconnect freshly: %+v", again)
	}
}

// echoServer answers every request frame with the full response, like a
// perfectly fast Apache; used to drive the client fleet deterministically.
func echoServer(n *Network, frames []kernel.Frame) {
	for _, fr := range frames {
		if fr.Corrupt || fr.Ack || fr.Close {
			continue
		}
		if size := n.FileSize(fr.Conn); size > 0 {
			n.Transmit(kernel.Frame{Conn: fr.Conn, Bytes: size}, 0)
		}
	}
}

// TestKeepAliveWithFaultsDeterministic: persistent connections under a lossy
// wire complete requests, and the same seed + fault config reproduces every
// counter bit-identically.
func TestKeepAliveWithFaultsDeterministic(t *testing.T) {
	run := func() *Network {
		n, _ := lossy(t,
			faults.Config{Seed: 11, LossRate: 0.15, CorruptRate: 0.05},
			Config{Clients: 8, Seed: 5, RequestsPerConn: 3})
		for i := uint64(0); i < 600; i++ {
			echoServer(n, n.Tick(i))
		}
		return n
	}
	a, b := run(), run()

	if a.Completed == 0 {
		t.Fatal("no requests completed under keep-alive + loss")
	}
	if a.Retransmits == 0 {
		t.Fatal("no retransmits under 15% loss")
	}
	type counters struct {
		req, done, bytes, retx, abort, resets uint64
		perClass                              [4]uint64
	}
	grab := func(n *Network) counters {
		return counters{n.Requests, n.Completed, n.BytesServed,
			n.Retransmits, n.Aborted, n.Resets, n.PerClass}
	}
	if grab(a) != grab(b) {
		t.Fatalf("identical seeded runs diverged:\n  a=%+v\n  b=%+v", grab(a), grab(b))
	}
}

// TestKeepAliveStillWorksWithoutFaults guards the baseline: RequestsPerConn>1
// with no injector behaves as before (no retry machinery armed).
func TestKeepAliveStillWorksWithoutFaults(t *testing.T) {
	n := New(Config{Clients: 2, Seed: 5, RequestsPerConn: 2})
	for i := uint64(0); i < 50; i++ {
		echoServer(n, n.Tick(i))
	}
	if n.Completed == 0 {
		t.Fatal("keep-alive baseline completed nothing")
	}
	if n.Retransmits+n.Aborted+n.Resets != 0 {
		t.Fatal("recovery counters moved without an injector")
	}
	for i := range n.clients {
		if n.clients[i].retryAt != 0 {
			t.Fatal("retry timer armed without an injector")
		}
	}
}
