package netsim

import (
	"testing"

	"repro/internal/kernel"
)

func TestRequestsIssueAtTicks(t *testing.T) {
	n := New(Config{Clients: 4, Seed: 1, RequestBytes: 200})
	frames := n.Tick(0)
	if len(frames) != 4 {
		t.Fatalf("tick 1 issued %d frames, want 4", len(frames))
	}
	for _, f := range frames {
		if !f.Open || f.Bytes != 200 {
			t.Fatalf("bad request frame: %+v", f)
		}
	}
	if n.Requests != 4 || n.Outstanding() != 4 {
		t.Fatalf("requests=%d outstanding=%d", n.Requests, n.Outstanding())
	}
	// Waiting clients don't reissue.
	if more := n.Tick(1); len(more) != 0 {
		t.Fatalf("waiting clients issued %d more frames", len(more))
	}
}

func TestResponseCompletesAndThinks(t *testing.T) {
	n := New(Config{Clients: 1, Seed: 2, ThinkTicks: 1})
	frames := n.Tick(0)
	conn := frames[0].Conn
	want := n.FileSize(conn)
	if want <= 0 {
		t.Fatal("no file size registered")
	}
	n.Transmit(kernel.Frame{Conn: conn, Bytes: want}, 0)
	if n.Completed != 1 {
		t.Fatalf("completed = %d", n.Completed)
	}
	if n.FileSize(conn) != 0 {
		t.Fatal("file registration not cleaned up")
	}
	// Think time: no new request on the very next tick (pending TCP acks
	// may flush, but no Open frame).
	for _, fr := range n.Tick(1) {
		if fr.Open {
			t.Fatal("client ignored think time")
		}
	}
	// Acks for the received segment flush on the next tick, then a new
	// request once think time passes.
	var sawNew bool
	for i := uint64(2); i < 5 && !sawNew; i++ {
		for _, fr := range n.Tick(i) {
			if fr.Open {
				sawNew = true
			}
		}
	}
	if !sawNew {
		t.Fatal("client never issued its next request")
	}
}

func TestPartialResponseAccumulates(t *testing.T) {
	n := New(Config{Clients: 1, Seed: 3})
	frames := n.Tick(0)
	conn := frames[0].Conn
	want := n.FileSize(conn)
	n.Transmit(kernel.Frame{Conn: conn, Bytes: want / 2}, 0)
	if n.Completed != 0 {
		t.Fatal("half a response completed the request")
	}
	n.Transmit(kernel.Frame{Conn: conn, Bytes: want - want/2}, 0)
	if n.Completed != 1 {
		t.Fatal("full response did not complete")
	}
}

func TestCloseCompletes(t *testing.T) {
	n := New(Config{Clients: 1, Seed: 4})
	frames := n.Tick(0)
	conn := frames[0].Conn
	n.Transmit(kernel.Frame{Conn: conn, Close: true}, 0)
	if n.Completed != 1 {
		t.Fatal("close did not complete the request")
	}
}

func TestFileMixFollowsSPECWebClasses(t *testing.T) {
	n := New(Config{Clients: 1, Seed: 5})
	counts := [4]int{}
	for i := 0; i < 20000; i++ {
		s := n.sampleFile()
		counts[classOf(s)]++
		if s < 100 || s > 900_000 {
			t.Fatalf("file size %d outside SPECWeb range", s)
		}
	}
	// 35/50/14/1 mix with slack.
	if counts[0] < 5000 || counts[1] < 8000 || counts[2] < 1500 {
		t.Fatalf("class counts off: %v", counts)
	}
	if counts[3] == 0 || counts[3] > 600 {
		t.Fatalf("class 3 count %d, want ~1%%", counts[3])
	}
}

func TestDeterministicDriver(t *testing.T) {
	run := func() uint64 {
		n := New(Config{Clients: 8, Seed: 9})
		var sum uint64
		for i := uint64(0); i < 50; i++ {
			frames := n.Tick(i)
			for _, f := range frames {
				sum += uint64(f.Bytes) + uint64(f.Conn)
				n.Transmit(kernel.Frame{Conn: f.Conn, Bytes: n.FileSize(f.Conn)}, i)
			}
		}
		return sum + n.Completed
	}
	if run() != run() {
		t.Fatal("driver nondeterministic")
	}
}

func TestDefaultsApplied(t *testing.T) {
	n := New(Config{})
	if len(n.clients) != 128 || n.cfg.RequestBytes != 300 {
		t.Fatalf("defaults not applied: %d clients, %d bytes", len(n.clients), n.cfg.RequestBytes)
	}
}

func TestKeepAliveConnectionsReused(t *testing.T) {
	n := New(Config{Clients: 1, Seed: 6, RequestsPerConn: 3})
	served := 0
	opens, closes := 0, 0
	reusedConn := -1
	for tick := uint64(0); tick < 20 && n.Completed < 3; tick++ {
		for _, fr := range n.Tick(tick) {
			switch {
			case fr.Ack:
			case fr.Close:
				closes++
			case fr.Open:
				opens++
				reusedConn = fr.Conn
				n.Transmit(kernel.Frame{Conn: fr.Conn, Bytes: n.FileSize(fr.Conn)}, tick)
				served++
			default: // next request on the kept-alive connection
				if fr.Conn != reusedConn {
					t.Fatalf("request on unexpected conn %d (want %d)", fr.Conn, reusedConn)
				}
				n.Transmit(kernel.Frame{Conn: fr.Conn, Bytes: n.FileSize(fr.Conn)}, tick)
				served++
			}
		}
	}
	if n.Completed != 3 || served != 3 {
		t.Fatalf("completed=%d served=%d, want 3", n.Completed, served)
	}
	if opens != 1 {
		t.Fatalf("opens = %d, want 1 (connection reuse)", opens)
	}
	// The FIN arrives with (or before) the next request cycle.
	sawClose := closes > 0
	for tick := uint64(20); tick < 26 && !sawClose; tick++ {
		for _, fr := range n.Tick(tick) {
			if fr.Close {
				sawClose = true
			}
		}
	}
	if !sawClose {
		t.Fatal("client never closed the kept-alive connection")
	}
}
