//go:build !netsimref

package netsim

// defaultRefScan selects the event-driven driver. Build with -tags
// netsimref to default every Network to the reference full-scan driver
// (bisection aid: `go test -tags netsimref ./...` must pass identically).
const defaultRefScan = false
