//go:build netsimref

package netsim

// defaultRefScan under the netsimref tag: every Network starts on the
// reference full-scan driver.
const defaultRefScan = true
