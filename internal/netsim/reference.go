// Reference full-scan driver hook.
//
// The event-driven driver (timer wheel + due list) is an optimization with
// a strong claim attached: its frame stream and RNG stream are
// bit-identical to visiting every client every tick. To keep that claim
// testable forever, the pre-wheel full-scan driver survives as a mode of
// the same code — stepClient is the old loop body, and refScan makes Tick
// run it over the whole fleet instead of the due list. Equivalence tests
// run both drivers over the same seeds and compare outputs byte for byte.
package netsim

// SetReferenceScan switches between the event-driven driver (false, the
// default) and the reference full-scan driver (true). The two produce
// bit-identical output; the reference driver costs O(fleet) per tick and
// exists for equivalence tests and bisection. Safe to flip mid-run: wake
// stamps are maintained in both modes.
func (n *Network) SetReferenceScan(on bool) { n.refScan = on }

// ReferenceScan reports which driver is active.
func (n *Network) ReferenceScan() bool { return n.refScan }
