// Package tlb models the Alpha-style translation lookaside buffers of the
// simulated SMT: 128-entry fully-associative ITLB and DTLB whose entries are
// tagged with address-space numbers (ASNs), as described in §2.2.2 of the
// paper.
//
// Because SMT shares one TLB among all hardware contexts (unlike an SMP,
// where each processor has its own), ASN management is the one piece of
// Digital Unix the authors had to modify. The behavioral kernel in
// internal/kernel performs that management against this model: it assigns
// ASNs to processes, inserts entries from the PAL miss handlers (in parallel
// across contexts, thanks to the paper's replicated internal processor
// registers), and recycles ASNs — which invalidates entries here and shows
// up as "invalidation by the OS" misses in Table 7.
package tlb

import (
	"fmt"
	"math/bits"

	"repro/internal/conflict"
	"repro/internal/mem"
)

// GlobalASN tags entries that match in every address space (Alpha's
// address-space-match bit, used for the shared kernel region).
const GlobalASN = 0xffff

// Entry is one TLB entry.
type Entry struct {
	valid   bool
	asn     uint16
	vpn     uint64
	pfn     uint64
	lastUse uint64
	filler  conflict.Agent
	// touched is a small bitmask of thread IDs (tid mod 64) that have hit
	// this entry since fill; used for the constructive-sharing statistic.
	touched uint64
}

// TLB is a fully-associative, LRU-replaced translation buffer.
type TLB struct {
	name    string //detlint:ignore snapshotcomplete diagnostic label fixed at construction
	entries []Entry
	tick    uint64 //detlint:ignore counterflow LRU clock, timekeeping not a metric
	tracker *conflict.Tracker
	// dmHead/dmNext form a chained hash index over the valid entries, keyed
	// by key(asn, vpn): dmHead[h] holds slot+1 of the first entry in bucket
	// h (0 = empty), dmNext[s] the next slot+1 in the same bucket. Every
	// valid entry is linked at all times, so a failed bucket walk IS a
	// definitive miss — find needs no fallback scan, and its result is
	// exactly what a scan of the fully-associative array would produce,
	// independent of the index's insertion history. The index is derived
	// state: Restore rebuilds it from the entries.
	dmHead  []int32 //detlint:ignore snapshotcomplete derived lookup index rebuilt from entries by Restore
	dmNext  []int32 //detlint:ignore snapshotcomplete derived lookup index rebuilt from entries by Restore
	dmShift uint8   //detlint:ignore snapshotcomplete geometry fixed at construction

	// Accesses and Misses are indexed by accessor privilege (0 user, 1 kernel).
	Accesses [2]uint64
	Misses   [2]uint64
	// Causes is the Table 3 / Table 7 miss-cause matrix.
	Causes conflict.Matrix
	// Shared is the Table 8 constructive-sharing matrix.
	Shared conflict.Sharing
	// Invalidations counts entries removed by explicit OS action.
	Invalidations uint64
}

// New returns a TLB with the given number of entries.
func New(name string, entries int) *TLB {
	if entries <= 0 {
		panic(fmt.Sprintf("tlb: %s with %d entries", name, entries))
	}
	n := dmSize(entries)
	return &TLB{
		name:    name,
		entries: make([]Entry, entries),
		tracker: conflict.NewTracker(),
		dmHead:  make([]int32, n),
		dmNext:  make([]int32, entries),
		dmShift: uint8(64 - (bits.Len(uint(n)) - 1)),
	}
}

// dmSize returns the hash-bucket count for a TLB with n entries: a power of
// two at least 4x the entry count, so bucket chains stay short.
func dmSize(n int) int {
	s := 256
	for s < 4*n {
		s <<= 1
	}
	return s
}

// Name returns the TLB's name (for reports).
func (t *TLB) Name() string { return t.name }

// Size returns the number of entries.
func (t *TLB) Size() int { return len(t.entries) }

// key builds the classification key for (asn, vpn). Global pages share one
// key regardless of ASN.
func key(asn uint16, vpn uint64) uint64 {
	return vpn<<16 | uint64(asn)
}

// dmSlot hashes a key into a bucket (Fibonacci hashing: the high bits of
// the product mix every key bit).
func (t *TLB) dmSlot(k uint64) uint64 {
	return (k * 0x9e3779b97f4a7c15) >> t.dmShift
}

// dmLink adds the valid entry at slot, keyed by k, to the index.
func (t *TLB) dmLink(k uint64, slot int32) {
	h := t.dmSlot(k)
	t.dmNext[slot] = t.dmHead[h]
	t.dmHead[h] = slot + 1
}

// dmUnlink removes the entry at slot, keyed by k, from the index. It must
// be called before the entry is invalidated or its key overwritten.
func (t *TLB) dmUnlink(k uint64, slot int32) {
	h := t.dmSlot(k)
	p := &t.dmHead[h]
	for *p != 0 {
		if *p == slot+1 {
			*p = t.dmNext[slot]
			t.dmNext[slot] = 0
			return
		}
		p = &t.dmNext[*p-1]
	}
}

// find returns the slot holding the valid entry for (asn, vpn). Insert
// keeps at most one valid entry per key, so the bucket walk's result does
// not depend on chain order; a miss here is definitive.
func (t *TLB) find(asn uint16, vpn uint64) (int32, bool) {
	for s := t.dmHead[t.dmSlot(key(asn, vpn))]; s != 0; s = t.dmNext[s-1] {
		e := &t.entries[s-1]
		if e.valid && e.asn == asn && e.vpn == vpn {
			return s - 1, true
		}
	}
	return 0, false
}

// Lookup translates vaddr in address space asn. On a hit it returns the
// physical address and true; on a miss it classifies the miss and returns
// false (the caller then runs the PAL miss handler, which will Insert).
//detlint:hot per-access translation probe on the fetch and issue paths
func (t *TLB) Lookup(asn uint16, vaddr uint64, ag conflict.Agent) (paddr uint64, hit bool) {
	t.tick++
	pi := privIndex(ag.Priv)
	t.Accesses[pi]++
	vpn := mem.VPN(vaddr)
	slot, ok := t.find(asn, vpn)
	if !ok {
		slot, ok = t.find(GlobalASN, vpn)
	}
	if ok {
		e := &t.entries[slot]
		e.lastUse = t.tick
		// Constructive sharing: this access would have missed had
		// another thread not already loaded the entry.
		bit := uint64(1) << (ag.TID & 63)
		if e.filler.TID != ag.TID && e.touched&bit == 0 {
			t.Shared.Add(ag, e.filler)
		}
		e.touched |= bit
		return mem.FrameBase(e.pfn) | (vaddr & mem.PageMask), true
	}
	t.Misses[pi]++
	k := key(asn, vpn)
	if gk := key(GlobalASN, vpn); t.tracker.Seen(gk) && !t.tracker.Seen(k) {
		k = gk
	}
	t.Causes.Add(ag, t.tracker.Classify(k, ag))
	return 0, false
}

// Probe reports whether (asn, vaddr) is resident without touching stats or
// LRU state (used by the kernel model and tests).
func (t *TLB) Probe(asn uint16, vaddr uint64) bool {
	vpn := mem.VPN(vaddr)
	if _, ok := t.find(asn, vpn); ok {
		return true
	}
	_, ok := t.find(GlobalASN, vpn)
	return ok
}

// Insert installs a translation, evicting the LRU entry if necessary. It is
// what the PAL TLB-miss handler does after the kernel VM code produced the
// mapping.
//detlint:hot fill on the AppOnly translate path inside Engine.step
func (t *TLB) Insert(asn uint16, vaddr, paddr uint64, ag conflict.Agent) {
	t.tick++
	vpn := mem.VPN(vaddr)
	if slot, ok := t.find(asn, vpn); ok {
		// Refresh an existing entry (another context may have raced us in;
		// on SMT multiple contexts can process TLB misses in parallel,
		// §2.2.2).
		e := &t.entries[slot]
		e.pfn = paddr >> mem.PageShift
		e.lastUse = t.tick
		return
	}
	if slot, ok := t.find(GlobalASN, vpn); ok && asn != GlobalASN {
		e := &t.entries[slot]
		e.pfn = paddr >> mem.PageShift
		e.lastUse = t.tick
		return
	}
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			victim = i
			oldest = 0
			break
		}
		if e.lastUse < oldest {
			victim = i
			oldest = e.lastUse
		}
	}
	v := &t.entries[victim]
	if v.valid {
		t.tracker.Evicted(key(v.asn, v.vpn), ag)
		t.dmUnlink(key(v.asn, v.vpn), int32(victim))
	}
	t.tracker.FirstSeen(key(asn, vpn), ag)
	*v = Entry{
		valid:   true,
		asn:     asn,
		vpn:     vpn,
		pfn:     paddr >> mem.PageShift,
		lastUse: t.tick,
		filler:  ag,
		touched: uint64(1) << (ag.TID & 63),
	}
	t.dmLink(key(asn, vpn), int32(victim))
}

// InvalidateASN removes all entries of one address space (ASN recycling on
// context switch when ASNs are exhausted).
func (t *TLB) InvalidateASN(asn uint16) int {
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.asn == asn {
			t.tracker.Invalidated(key(e.asn, e.vpn))
			t.dmUnlink(key(e.asn, e.vpn), int32(i))
			e.valid = false
			n++
		}
	}
	t.Invalidations += uint64(n)
	return n
}

// InvalidatePage removes a single translation (e.g. on munmap). On the
// uniprocessor SMT this replaces the SMP's interprocessor TLB shootdown.
func (t *TLB) InvalidatePage(asn uint16, vaddr uint64) bool {
	vpn := mem.VPN(vaddr)
	for _, a := range [2]uint16{asn, GlobalASN} {
		if slot, ok := t.find(a, vpn); ok {
			e := &t.entries[slot]
			t.tracker.Invalidated(key(e.asn, e.vpn))
			t.dmUnlink(key(e.asn, e.vpn), slot)
			e.valid = false
			t.Invalidations++
			return true
		}
	}
	return false
}

// Flush invalidates every entry.
func (t *TLB) Flush() {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid {
			t.tracker.Invalidated(key(e.asn, e.vpn))
			e.valid = false
			t.Invalidations++
		}
	}
	for i := range t.dmHead {
		t.dmHead[i] = 0
	}
	for i := range t.dmNext {
		t.dmNext[i] = 0
	}
}

// MissRate returns the miss rate (percent) for the given privilege class,
// or overall if priv is nil-like (use MissRateOverall).
func (t *TLB) MissRate(priv bool) float64 {
	pi := privIndex(priv)
	if t.Accesses[pi] == 0 {
		return 0
	}
	return 100 * float64(t.Misses[pi]) / float64(t.Accesses[pi])
}

// MissRateOverall returns the total miss rate in percent.
func (t *TLB) MissRateOverall() float64 {
	acc := t.Accesses[0] + t.Accesses[1]
	if acc == 0 {
		return 0
	}
	return 100 * float64(t.Misses[0]+t.Misses[1]) / float64(acc)
}

func privIndex(priv bool) int {
	if priv {
		return 1
	}
	return 0
}
