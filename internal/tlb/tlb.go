// Package tlb models the Alpha-style translation lookaside buffers of the
// simulated SMT: 128-entry fully-associative ITLB and DTLB whose entries are
// tagged with address-space numbers (ASNs), as described in §2.2.2 of the
// paper.
//
// Because SMT shares one TLB among all hardware contexts (unlike an SMP,
// where each processor has its own), ASN management is the one piece of
// Digital Unix the authors had to modify. The behavioral kernel in
// internal/kernel performs that management against this model: it assigns
// ASNs to processes, inserts entries from the PAL miss handlers (in parallel
// across contexts, thanks to the paper's replicated internal processor
// registers), and recycles ASNs — which invalidates entries here and shows
// up as "invalidation by the OS" misses in Table 7.
package tlb

import (
	"fmt"

	"repro/internal/conflict"
	"repro/internal/mem"
)

// GlobalASN tags entries that match in every address space (Alpha's
// address-space-match bit, used for the shared kernel region).
const GlobalASN = 0xffff

// Entry is one TLB entry.
type Entry struct {
	valid   bool
	asn     uint16
	vpn     uint64
	pfn     uint64
	lastUse uint64
	filler  conflict.Agent
	// touched is a small bitmask of thread IDs (tid mod 64) that have hit
	// this entry since fill; used for the constructive-sharing statistic.
	touched uint64
}

// TLB is a fully-associative, LRU-replaced translation buffer.
type TLB struct {
	name    string //detlint:ignore snapshotcomplete diagnostic label fixed at construction
	entries []Entry
	tick    uint64
	tracker *conflict.Tracker
	// index maps key(asn,vpn) -> entry slot, to avoid scanning the
	// fully-associative array on every access.
	index map[uint64]int32 //detlint:ignore snapshotcomplete derived index rebuilt from entries by Restore

	// Accesses and Misses are indexed by accessor privilege (0 user, 1 kernel).
	Accesses [2]uint64
	Misses   [2]uint64
	// Causes is the Table 3 / Table 7 miss-cause matrix.
	Causes conflict.Matrix
	// Shared is the Table 8 constructive-sharing matrix.
	Shared conflict.Sharing
	// Invalidations counts entries removed by explicit OS action.
	Invalidations uint64
}

// New returns a TLB with the given number of entries.
func New(name string, entries int) *TLB {
	if entries <= 0 {
		panic(fmt.Sprintf("tlb: %s with %d entries", name, entries))
	}
	return &TLB{
		name:    name,
		entries: make([]Entry, entries),
		tracker: conflict.NewTracker(),
		index:   make(map[uint64]int32, entries*2),
	}
}

// Name returns the TLB's name (for reports).
func (t *TLB) Name() string { return t.name }

// Size returns the number of entries.
func (t *TLB) Size() int { return len(t.entries) }

// key builds the classification key for (asn, vpn). Global pages share one
// key regardless of ASN.
func key(asn uint16, vpn uint64) uint64 {
	return vpn<<16 | uint64(asn)
}

// Lookup translates vaddr in address space asn. On a hit it returns the
// physical address and true; on a miss it classifies the miss and returns
// false (the caller then runs the PAL miss handler, which will Insert).
func (t *TLB) Lookup(asn uint16, vaddr uint64, ag conflict.Agent) (paddr uint64, hit bool) {
	t.tick++
	pi := privIndex(ag.Priv)
	t.Accesses[pi]++
	vpn := mem.VPN(vaddr)
	slot, ok := t.index[key(asn, vpn)]
	if !ok {
		slot, ok = t.index[key(GlobalASN, vpn)]
	}
	if ok {
		e := &t.entries[slot]
		e.lastUse = t.tick
		// Constructive sharing: this access would have missed had
		// another thread not already loaded the entry.
		bit := uint64(1) << (ag.TID & 63)
		if e.filler.TID != ag.TID && e.touched&bit == 0 {
			t.Shared.Add(ag, e.filler)
		}
		e.touched |= bit
		return mem.FrameBase(e.pfn) | (vaddr & mem.PageMask), true
	}
	t.Misses[pi]++
	k := key(asn, vpn)
	if gk := key(GlobalASN, vpn); t.tracker.Seen(gk) && !t.tracker.Seen(k) {
		k = gk
	}
	t.Causes.Add(ag, t.tracker.Classify(k, ag))
	return 0, false
}

// Probe reports whether (asn, vaddr) is resident without touching stats or
// LRU state (used by the kernel model and tests).
func (t *TLB) Probe(asn uint16, vaddr uint64) bool {
	vpn := mem.VPN(vaddr)
	if _, ok := t.index[key(asn, vpn)]; ok {
		return true
	}
	_, ok := t.index[key(GlobalASN, vpn)]
	return ok
}

// Insert installs a translation, evicting the LRU entry if necessary. It is
// what the PAL TLB-miss handler does after the kernel VM code produced the
// mapping.
func (t *TLB) Insert(asn uint16, vaddr, paddr uint64, ag conflict.Agent) {
	t.tick++
	vpn := mem.VPN(vaddr)
	if slot, ok := t.index[key(asn, vpn)]; ok {
		// Refresh an existing entry (another context may have raced us in;
		// on SMT multiple contexts can process TLB misses in parallel,
		// §2.2.2).
		e := &t.entries[slot]
		e.pfn = paddr >> mem.PageShift
		e.lastUse = t.tick
		return
	}
	if slot, ok := t.index[key(GlobalASN, vpn)]; ok && asn != GlobalASN {
		e := &t.entries[slot]
		e.pfn = paddr >> mem.PageShift
		e.lastUse = t.tick
		return
	}
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			victim = i
			oldest = 0
			break
		}
		if e.lastUse < oldest {
			victim = i
			oldest = e.lastUse
		}
	}
	v := &t.entries[victim]
	if v.valid {
		t.tracker.Evicted(key(v.asn, v.vpn), ag)
		delete(t.index, key(v.asn, v.vpn))
	}
	t.tracker.FirstSeen(key(asn, vpn), ag)
	*v = Entry{
		valid:   true,
		asn:     asn,
		vpn:     vpn,
		pfn:     paddr >> mem.PageShift,
		lastUse: t.tick,
		filler:  ag,
		touched: uint64(1) << (ag.TID & 63),
	}
	t.index[key(asn, vpn)] = int32(victim)
}

// InvalidateASN removes all entries of one address space (ASN recycling on
// context switch when ASNs are exhausted).
func (t *TLB) InvalidateASN(asn uint16) int {
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.asn == asn {
			t.tracker.Invalidated(key(e.asn, e.vpn))
			delete(t.index, key(e.asn, e.vpn))
			e.valid = false
			n++
		}
	}
	t.Invalidations += uint64(n)
	return n
}

// InvalidatePage removes a single translation (e.g. on munmap). On the
// uniprocessor SMT this replaces the SMP's interprocessor TLB shootdown.
func (t *TLB) InvalidatePage(asn uint16, vaddr uint64) bool {
	vpn := mem.VPN(vaddr)
	for _, k := range [2]uint64{key(asn, vpn), key(GlobalASN, vpn)} {
		if slot, ok := t.index[k]; ok {
			e := &t.entries[slot]
			t.tracker.Invalidated(key(e.asn, e.vpn))
			delete(t.index, k)
			e.valid = false
			t.Invalidations++
			return true
		}
	}
	return false
}

// Flush invalidates every entry.
func (t *TLB) Flush() {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid {
			t.tracker.Invalidated(key(e.asn, e.vpn))
			delete(t.index, key(e.asn, e.vpn))
			e.valid = false
			t.Invalidations++
		}
	}
}

// MissRate returns the miss rate (percent) for the given privilege class,
// or overall if priv is nil-like (use MissRateOverall).
func (t *TLB) MissRate(priv bool) float64 {
	pi := privIndex(priv)
	if t.Accesses[pi] == 0 {
		return 0
	}
	return 100 * float64(t.Misses[pi]) / float64(t.Accesses[pi])
}

// MissRateOverall returns the total miss rate in percent.
func (t *TLB) MissRateOverall() float64 {
	acc := t.Accesses[0] + t.Accesses[1]
	if acc == 0 {
		return 0
	}
	return 100 * float64(t.Misses[0]+t.Misses[1]) / float64(acc)
}

func privIndex(priv bool) int {
	if priv {
		return 1
	}
	return 0
}
